package tableseg

import (
	"errors"
	"reflect"
	"testing"
)

// TestNewOptionsEquivalence pins the functional-options path to the
// positional one: NewOptions(WithMethod(m)) must be exactly
// DefaultOptions(m) for every method, so callers can migrate without a
// behavior change.
func TestNewOptionsEquivalence(t *testing.T) {
	for _, m := range []Method{CSP, Probabilistic, Combined} {
		got, err := NewOptions(WithMethod(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !reflect.DeepEqual(got, DefaultOptions(m)) {
			t.Errorf("NewOptions(WithMethod(%v)) != DefaultOptions(%v)", m, m)
		}
	}
	got, err := NewOptions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, DefaultOptions(CSP)) {
		t.Error("NewOptions() != DefaultOptions(CSP)")
	}
}

// TestNewOptionsApplies: helpers override their field and leave the
// rest of the defaults untouched.
func TestNewOptionsApplies(t *testing.T) {
	opts, err := NewOptions(
		WithMethod(Probabilistic),
		WithSolver("greedy"),
		WithMinSlotQuality(0.25),
		WithMineLabels(false),
	)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Method != Probabilistic || opts.Solver != "greedy" {
		t.Errorf("method/solver not applied: %+v", opts)
	}
	if opts.MinSlotQuality != 0.25 || opts.MineLabels {
		t.Errorf("scalar options not applied: %+v", opts)
	}
	want := DefaultOptions(Probabilistic)
	if !reflect.DeepEqual(opts.CSPParams, want.CSPParams) ||
		!reflect.DeepEqual(opts.PHMMParams, want.PHMMParams) {
		t.Error("untouched parameter blocks drifted from defaults")
	}

	cspParams := DefaultOptions(CSP).CSPParams
	cspParams.WSAT.Restarts = 3
	withParams, err := NewOptions(WithCSPParams(cspParams))
	if err != nil {
		t.Fatal(err)
	}
	if withParams.CSPParams.WSAT.Restarts != 3 {
		t.Error("WithCSPParams not applied")
	}
	phmmParams := DefaultOptions(Probabilistic).PHMMParams
	withPHMM, err := NewOptions(WithMethod(Probabilistic), WithPHMMParams(phmmParams))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withPHMM.PHMMParams, phmmParams) {
		t.Error("WithPHMMParams not applied")
	}
}

// TestNewOptionsValidates: construction-time validation rejects bad
// configuration with the typed sentinel.
func TestNewOptionsValidates(t *testing.T) {
	if _, err := NewOptions(WithSolver("no-such-solver")); !errors.Is(err, ErrBadOptions) {
		t.Errorf("unknown solver: err = %v, want ErrBadOptions", err)
	}
	if _, err := NewOptions(WithMinSlotQuality(-2)); !errors.Is(err, ErrBadOptions) {
		t.Errorf("negative quality: err = %v, want ErrBadOptions", err)
	}
}
