package tableseg

import (
	"tableseg/internal/core"
	"tableseg/internal/engine"
)

// ErrEngineClosed: Engine.Submit was called after Engine.Close; the
// engine no longer admits work.
var ErrEngineClosed = engine.ErrClosed

// Sentinel errors re-exported from the pipeline so callers can classify
// failures with errors.Is without importing internal packages. Segment
// and the Engine wrap them with task-specific detail via %w.
var (
	// ErrTooFewListPages: the input carried no list pages (at least one
	// is required; two or more enable cross-page template induction).
	ErrTooFewListPages = core.ErrTooFewListPages
	// ErrNoListPages is a deprecated alias for ErrTooFewListPages kept
	// for callers of the original API.
	ErrNoListPages = core.ErrNoListPages
	// ErrNoDetailPages: the input carried no detail pages.
	ErrNoDetailPages = core.ErrNoDetailPages
	// ErrBadTarget: Input.Target is outside the list-page slice.
	ErrBadTarget = core.ErrBadTarget
	// ErrNoTableSlot: the target page yielded no extracts at all — even
	// the whole-page fallback found nothing segmentable.
	ErrNoTableSlot = core.ErrNoTableSlot
	// ErrNoDetailEvidence: no extract of the table slot appears on any
	// detail page, so there is no evidence to segment with. The
	// returned Segmentation still carries diagnostics.
	ErrNoDetailEvidence = core.ErrNoDetailEvidence
	// ErrCSPUnsatisfiable: the CSP method exhausted the relaxation
	// ladder without a feasible assignment.
	ErrCSPUnsatisfiable = core.ErrCSPUnsatisfiable
	// ErrBadOptions: Options.Validate (or EngineConfig.Validate)
	// rejected the configuration.
	ErrBadOptions = core.ErrBadOptions
)
