package tableseg

// Per-stage microbenchmarks over the stage graph (internal/stage): one
// benchmark per pipeline stage on a representative generated site, plus
// one solver benchmark per registry entry on the same Problem. `make
// bench` exports their results as BENCH_stages.json (via cmd/benchjson)
// so stage-level regressions show up as structured diffs; CI smoke-runs
// them with -benchtime=1x.

import (
	"context"
	"testing"

	"tableseg/internal/core"
	"tableseg/internal/experiments"
	"tableseg/internal/sitegen"
	"tableseg/internal/solvers"
	"tableseg/internal/stage"
	"tableseg/internal/token"
)

// stageFixture carries every intermediate artifact of one pipeline run,
// so each stage benchmark measures exactly its own stage.
type stageFixture struct {
	in     core.Input
	opts   core.Options
	toks   stage.TokenizeOut
	tpl    stage.Template
	slot   stage.Slot
	exs    stage.Extracts
	matrix *stage.ObservationMatrix
	prob   *stage.Problem
	asg    *stage.Assignment
}

// newStageFixture runs the stage graph once over a generated site (the
// same "allegheny" page the whole-pipeline benchmarks use) and keeps
// all the artifacts.
func newStageFixture(b *testing.B) *stageFixture {
	b.Helper()
	ctx := context.Background()
	p, err := sitegen.ProfileBySlug("allegheny")
	if err != nil {
		b.Fatal(err)
	}
	site := sitegen.Generate(p, experiments.DefaultSeed)
	f := &stageFixture{
		in:   experiments.BuildInput(site, 0),
		opts: core.DefaultOptions(core.CSP),
	}
	if f.toks, err = stage.Tokenize(ctx, f.tokenizeIn()); err != nil {
		b.Fatal(err)
	}
	if f.tpl, err = stage.InduceTemplate(ctx, f.templateIn()); err != nil {
		b.Fatal(err)
	}
	if f.slot, err = stage.SelectSlot(ctx, f.slotIn()); err != nil {
		b.Fatal(err)
	}
	if f.exs, err = stage.Extract(ctx, f.extractIn()); err != nil {
		b.Fatal(err)
	}
	if f.matrix, err = stage.Observe(ctx, f.observeIn()); err != nil {
		b.Fatal(err)
	}
	if len(f.matrix.Analyzed) == 0 {
		b.Fatal("fixture has no analyzed extracts")
	}
	f.prob = stage.BuildProblem(f.matrix)
	if f.asg, err = stage.Segment(ctx, stage.SegmentIn{Problem: f.prob, Solver: f.solver(b, "csp")}); err != nil {
		b.Fatal(err)
	}
	return f
}

func (f *stageFixture) tokenizeIn() stage.TokenizeIn {
	return stage.TokenizeIn{ListPages: f.in.ListPages, DetailPages: f.in.DetailPages}
}

func (f *stageFixture) templateIn() stage.TemplateIn {
	return stage.TemplateIn{Lists: f.toks.Lists}
}

func (f *stageFixture) slotIn() stage.SlotIn {
	return stage.SlotIn{
		Template: f.tpl, Lists: f.toks.Lists, Target: f.in.Target,
		MinSlotQuality: 0.5, StripEnumeration: f.opts.StripEnumeration,
	}
}

func (f *stageFixture) extractIn() stage.ExtractIn {
	return stage.ExtractIn{Target: f.toks.Lists[f.in.Target], Slot: f.slot}
}

func (f *stageFixture) observeIn() stage.ObserveIn {
	var others [][]token.Token
	for i := range f.toks.Lists {
		if i != f.in.Target {
			others = append(others, f.toks.Lists[i].Tokens)
		}
	}
	return stage.ObserveIn{
		Extracts: f.exs, Details: f.toks.Details, OtherLists: others,
		DetectVertical: f.opts.DetectVertical,
	}
}

func (f *stageFixture) postIn() stage.PostIn {
	return stage.PostIn{
		Extracts: f.exs, Matrix: f.matrix, Assignment: f.asg,
		Details: f.toks.Details, MineLabels: true,
	}
}

// solver builds a registry solver under the default reproduction
// parameters.
func (f *stageFixture) solver(b *testing.B, name string) stage.Solver {
	b.Helper()
	s, err := stage.NewSolver(name, solvers.Config{
		CSP:        core.DefaultOptions(core.CSP).CSPParams,
		PHMM:       core.DefaultOptions(core.Probabilistic).PHMMParams,
		CSPColumns: core.DefaultOptions(core.CSP).CSPColumns,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStageTokenize(b *testing.B) {
	f := newStageFixture(b)
	in := f.tokenizeIn()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := stage.Tokenize(context.Background(), in)
		if err != nil || len(out.Lists) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkStageInduceTemplate(b *testing.B) {
	f := newStageFixture(b)
	in := f.templateIn()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tpl, err := stage.InduceTemplate(context.Background(), in)
		if err != nil || tpl.Tpl == nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStageSelectSlot(b *testing.B) {
	f := newStageFixture(b)
	in := f.slotIn()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot, err := stage.SelectSlot(context.Background(), in)
		if err != nil || slot.End <= slot.Start {
			b.Fatal(err)
		}
	}
}

func BenchmarkStageExtract(b *testing.B) {
	f := newStageFixture(b)
	in := f.extractIn()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exs, err := stage.Extract(context.Background(), in)
		if err != nil || len(exs.Items) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkStageObserve(b *testing.B) {
	f := newStageFixture(b)
	in := f.observeIn()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := stage.Observe(context.Background(), in)
		if err != nil || len(m.Analyzed) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkStagePostProcess(b *testing.B) {
	f := newStageFixture(b)
	in := f.postIn()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := stage.PostProcess(context.Background(), in)
		if err != nil || len(out.Records) == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolver runs every registered solver over the fixture's
// Problem (the Segment stage with each pluggable algorithm). Solvers
// may exhaust their fallbacks on this input (Exhausted is a result, not
// an error); only hard errors fail the benchmark.
func BenchmarkSolver(b *testing.B) {
	f := newStageFixture(b)
	for _, name := range stage.RegisteredSolvers() {
		s := f.solver(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				asg, err := stage.Segment(context.Background(), stage.SegmentIn{Problem: f.prob, Solver: s})
				if err != nil || asg == nil {
					b.Fatal(err)
				}
			}
		})
	}
}
