package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
// Test files (_test.go) are excluded: tests legitimately mint
// contexts, measure wall-clock time and compare floats exactly.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using
// only the standard library: module-local imports are resolved
// recursively from disk, everything else through the compiler's
// source importer. Loaded packages are cached by import path.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at dir with the
// given module path (the "module" line of its go.mod).
func NewLoader(dir, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleDir:  dir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// Packages returns every module-local package loaded so far, sorted
// by import path — the input BuildFacts wants after the driver has
// loaded the tree.
func (l *Loader) Packages() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.pkgs[p])
	}
	return out
}

// ModulePathOf reads the module path out of dir's go.mod.
func ModulePathOf(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", filepath.Join(dir, "go.mod"))
}

// Load parses and type-checks the package with the given import path,
// which must lie inside the loader's module.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirOf(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir loads the package in dir, which must be inside the module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	rootAbs, err := filepath.Abs(l.ModuleDir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	rel, err := filepath.Rel(rootAbs, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.Load(l.ModulePath)
	}
	return l.Load(l.ModulePath + "/" + filepath.ToSlash(rel))
}

func (l *Loader) dirOf(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	rel, ok := strings.CutPrefix(path, l.ModulePath+"/")
	if !ok {
		return "", fmt.Errorf("analysis: import %q is outside module %q", path, l.ModulePath)
	}
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), nil
}

func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// importPkg is the types.Importer used during checking: module-local
// paths load recursively, the rest fall through to the stdlib source
// importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
