package analysis

import (
	"go/ast"
	"go/types"

	"tableseg/internal/analysis/cfg"
	"tableseg/internal/analysis/dataflow"
)

// RNGFlow returns the analyzer enforcing RNG provenance. The WSAT
// restarts and EM initialization behind Tables 1–4 are reproducible
// only because a single seeded *rand.Rand is threaded from Options
// down through every randomized call; a generator materializing from
// anywhere else — the shared top-level source, a package-level
// variable, an unseeded declaration — silently breaks byte-identical
// output. Where the determinism analyzer pattern-matches forbidden
// selectors, rngflow answers the provenance question: for every
// *rand.Rand reaching a call site it walks the use-def chains built by
// internal/analysis/dataflow back to the value's origin and accepts
// only seeded constructors, parameters, fields and other call results.
func RNGFlow() *Analyzer {
	a := &Analyzer{
		Name: "rngflow",
		Doc:  "require every *rand.Rand at a call site to derive, via def-use chains, from a seeded or threaded source",
	}
	a.Run = func(pass *Pass) {
		if isInternal(pass.Pkg.Path) {
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if sel, ok := n.(*ast.SelectorExpr); ok {
						checkTopLevelRand(pass, sel)
					}
					return true
				})
			}
		}
		if !matchesAny(pass.Pkg.Path, pass.Cfg.RNGPkgs) {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkRNGProvenance(pass, fd.Body)
			}
		}
	}
	return a
}

// checkTopLevelRand flags top-level math/rand functions (minus the
// seeded-constructor allowlist) anywhere under internal/. This widens
// the determinism analyzer's same check from the solver packages to
// the whole internal tree: there is no package where the shared global
// source is acceptable.
func checkTopLevelRand(pass *Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	switch pass.pkgNameOf(id) {
	case "math/rand", "math/rand/v2":
		if randAllowed[sel.Sel.Name] {
			return
		}
		if _, isFunc := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); isFunc {
			pass.Reportf(sel.Pos(), "top-level math/rand.%s bypasses the seeded generator threaded through Options; derive from the threaded *rand.Rand", sel.Sel.Name)
		}
	}
}

// checkRNGProvenance traces every *rand.Rand identifier used at a call
// site in body back through its reaching definitions.
func checkRNGProvenance(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	g := cfg.New(body)
	chains := dataflow.NewChains(body, g, info)

	seen := map[*ast.Ident]bool{}
	report := func(id *ast.Ident) {
		if seen[id] {
			return
		}
		seen[id] = true
		if reason := traceRNG(pass, chains, id, map[*dataflow.Def]bool{}); reason != "" {
			pass.Reportf(id.Pos(), "*rand.Rand %q %s", id.Name, reason)
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate unit: its own graph if ever needed
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// rng.Intn(...): the receiver carries the provenance.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && isRandRand(info, id) {
				report(id)
			}
		}
		// f(..., rng, ...): the argument does.
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && isRandRand(info, id) {
				report(id)
			}
		}
		return true
	})
}

// traceRNG follows id's reaching definitions to their origins and
// returns a non-empty reason when any origin is unacceptable. visited
// breaks cycles through loops (rng = rng reassignments).
func traceRNG(pass *Pass, chains *dataflow.Chains, id *ast.Ident, visited map[*dataflow.Def]bool) string {
	defs := chains.DefsOf(id)
	if len(defs) == 0 {
		// Not a chained use (e.g. a variable captured by the enclosing
		// function and written only there): stay quiet rather than
		// guess.
		return ""
	}
	for _, d := range defs {
		if visited[d] {
			continue
		}
		visited[d] = true
		switch d.Kind {
		case dataflow.DefEntry:
			// Parameters, receivers and captures are threaded sources;
			// a package-level generator is shared mutable state.
			if d.Obj.Parent() == pass.Pkg.Types.Scope() {
				return "originates from a package-level generator (shared mutable state); thread the seeded *rand.Rand through parameters"
			}
		case dataflow.DefDecl:
			if d.RHS == nil {
				return "is declared without a source and may be used unseeded (nil); initialize it from rand.New(rand.NewSource(seed))"
			}
			if reason := traceRNGExpr(pass, chains, d.RHS, visited); reason != "" {
				return reason
			}
		case dataflow.DefAssign, dataflow.DefRange:
			if reason := traceRNGExpr(pass, chains, d.RHS, visited); reason != "" {
				return reason
			}
		}
	}
	return ""
}

// traceRNGExpr classifies the defining expression of a *rand.Rand:
// identifiers recurse through the chains; package-level identifiers
// are rejected; calls, selectors, indexes and the rest are accepted as
// threaded or constructed sources.
func traceRNGExpr(pass *Pass, chains *dataflow.Chains, e ast.Expr, visited map[*dataflow.Def]bool) string {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pass.Pkg.Info.ObjectOf(e); obj != nil && obj.Parent() == pass.Pkg.Types.Scope() {
			return "originates from a package-level generator (shared mutable state); thread the seeded *rand.Rand through parameters"
		}
		return traceRNG(pass, chains, e, visited)
	case *ast.ParenExpr:
		return traceRNGExpr(pass, chains, e.X, visited)
	}
	return ""
}

// isRandRand reports whether id is a variable of type *rand.Rand
// (math/rand or math/rand/v2).
func isRandRand(info *types.Info, id *ast.Ident) bool {
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	ptr, ok := obj.Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if tn.Name() != "Rand" || tn.Pkg() == nil {
		return false
	}
	switch tn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		return true
	}
	return false
}
