package analysis

import (
	"go/ast"
	"go/types"

	"tableseg/internal/analysis/cfg"
	"tableseg/internal/analysis/dataflow"
	"tableseg/internal/analysis/escape"
)

// BorrowFlow returns the analyzer enforcing the zero-copy borrowing
// contract. The planned hot-path refactor makes tokens hold []byte
// views into a shared input buffer instead of copied strings; from
// that moment a view retained anywhere that outlives the tokenizing
// call — a struct field, a global, a channel, a goroutine, a map — is
// a use-after-reuse bug that corrupts a *later* task while Tables 1–4
// keep looking plausible. borrowflow makes the discipline checkable
// before the refactor lands: in the declared borrow packages
// (Cfg.BorrowPkgs), every []byte parameter is treated as a borrowed
// source-buffer view, the escape tracker of internal/analysis/escape
// follows it through sub-slices, field reads, range bindings and phi
// joins, and every sink where the borrow outlives the function is
// reported. Passing a borrow to a module-local callee is checked
// against that callee's escape summary (computed bottom-up over the
// call-graph SCCs), so a store three helpers deep is caught at the
// call site that handed the view away. Plain returns only lift the
// borrow to the caller and are reported solely at stage boundaries —
// exported stage-shaped functions (context first, error last), where
// aliasflow already demands copy-out — because a returned view is
// otherwise the normal shape of a zero-copy API.
func BorrowFlow() *Analyzer {
	a := &Analyzer{
		Name: "borrowflow",
		Doc:  "forbid borrowed []byte views from outliving their source buffer (field/global/channel/goroutine stores anywhere; returns at stage boundaries)",
	}
	a.Run = func(pass *Pass) {
		if !matchesAny(pass.Pkg.Path, pass.Cfg.BorrowPkgs) {
			return
		}
		sums := escape.For(pass.Facts)
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkBorrowFlow(pass, fd, sums)
			}
		}
	}
	return a
}

// byteSliceView reports whether t is a []byte-shaped type — the only
// parameter shape borrowflow treats as a borrowed source-buffer view.
func byteSliceView(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// checkBorrowFlow tracks fd's []byte parameters and reports every sink
// where a view outlives the call.
func checkBorrowFlow(pass *Pass, fd *ast.FuncDecl, sums *escape.Set) {
	info := pass.Pkg.Info
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	node := pass.Facts.NodeOf(fn)
	if node == nil {
		return
	}

	// One provenance bit per []byte parameter, so reports name exactly
	// which buffer leaked. Outlive also carries the receiver and the
	// non-view parameters: a store through any of them escapes the
	// caller's storage.
	entry := map[types.Object]dataflow.Mask{}
	bitName := map[int]string{}
	outlive := map[types.Object]bool{}
	bit := 0
	addField := func(field *ast.Field) {
		for _, name := range field.Names {
			obj := info.ObjectOf(name)
			if obj == nil {
				continue
			}
			outlive[obj] = true
			if !byteSliceView(obj.Type()) || bit >= 64 {
				continue
			}
			entry[obj] = 1 << bit
			bitName[bit] = name.Name
			bit++
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			addField(field)
		}
	}
	for _, field := range fd.Type.Params.List {
		addField(field)
	}
	if len(entry) == 0 {
		return
	}

	tr := escape.NewTracker(node, cfg.New(fd.Body), sums, escape.TrackerConfig{
		Info:    info,
		Entry:   entry,
		Outlive: outlive,
	})

	boundary := fd.Name.IsExported() && stageShaped(info, fd)
	for _, ev := range tr.Events() {
		if ev.Kind == escape.EvReturn && !boundary {
			continue // a returned view just lifts the borrow to the caller
		}
		pass.Reportf(ev.At.Pos(), "borrowed view of source buffer%s %s %s; copy out before the buffer's lifetime ends (or document the seam with a tableseglint:ignore directive)",
			plural(ev.Mask), maskNames(ev.Mask, bitName), borrowSinkPhrase(ev))
	}
}

// borrowSinkPhrase renders how the borrow escapes, for the diagnostic.
func borrowSinkPhrase(ev escape.Event) string {
	switch ev.Kind {
	case escape.EvStoreGlobal:
		return "is stored in package-level storage"
	case escape.EvStoreField:
		return "is stored through storage that outlives the call"
	case escape.EvSend:
		return "is sent on a channel"
	case escape.EvGoArg:
		return "is handed to a goroutine"
	case escape.EvGoClosure:
		return "is captured by a goroutine closure"
	case escape.EvReturn:
		return "is returned across the stage boundary"
	case escape.EvCallEscape:
		return "is passed to " + ev.Callee + ", which retains it (escapes via " + ev.CalleeRoutes.String() + ")"
	}
	return "escapes"
}
