package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap returns the analyzer enforcing the typed-error contract:
// every error operand of fmt.Errorf must be formatted with %w (so
// errors.Is/As classification survives the wrap), and fmt.Errorf
// results returned by internal/core's exported functions must wrap
// something with %w — by convention a sentinel declared in
// internal/core/errors.go, or an error received from a callee — since
// the root package's typed-error API promises callers an errors.Is
// answer for every failure crossing the core boundary.
func ErrWrap() *Analyzer {
	a := &Analyzer{
		Name: "errwrap",
		Doc:  "require %w for error operands of fmt.Errorf and sentinel-wrapped errors across the core boundary",
	}
	a.Run = func(pass *Pass) {
		core := pathMatches(pass.Pkg.Path, pass.Cfg.CorePkg)
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkErrorfOperands(pass, n)
				case *ast.FuncDecl:
					if core {
						checkCoreBoundary(pass, n)
					}
				}
				return true
			})
		}
	}
	return a
}

// errorfVerbs parses a fmt.Errorf call and returns the format verbs
// positionally matched to its variadic operands ('*' width/precision
// arguments consume a slot). ok is false when the call is not a
// fmt.Errorf with a constant format string.
func errorfVerbs(pass *Pass, call *ast.CallExpr) (verbs map[int]byte, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID || pass.pkgNameOf(id) != "fmt" || sel.Sel.Name != "Errorf" || len(call.Args) == 0 {
		return nil, false
	}
	tv, found := pass.Pkg.Info.Types[call.Args[0]]
	if !found || tv.Value == nil {
		return nil, false
	}
	format, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return nil, false
	}
	verbs = map[int]byte{}
	arg := 1 // operand index into call.Args
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision; '*' consumes an operand.
		for i < len(format) && strings.IndexByte("+-# 0123456789.*", format[i]) >= 0 {
			if format[i] == '*' {
				arg++
			}
			i++
		}
		if i >= len(format) || format[i] == '%' {
			continue
		}
		verbs[arg] = format[i]
		arg++
	}
	return verbs, true
}

func checkErrorfOperands(pass *Pass, call *ast.CallExpr) {
	verbs, ok := errorfVerbs(pass, call)
	if !ok {
		return
	}
	for i := 1; i < len(call.Args); i++ {
		verb, hasVerb := verbs[i]
		if !hasVerb || verb == 'w' {
			continue
		}
		if t := pass.Pkg.Info.TypeOf(call.Args[i]); t != nil && isErrorType(t) {
			pass.Reportf(call.Args[i].Pos(), "error operand of fmt.Errorf formatted with %%%c loses errors.Is classification; use %%w", verb)
		}
	}
}

// checkCoreBoundary flags return statements in exported core
// functions that hand back a fmt.Errorf carrying no %w at all: such
// an error cannot be matched against any sentinel by callers.
func checkCoreBoundary(pass *Pass, fn *ast.FuncDecl) {
	if !ast.IsExported(fn.Name.Name) || fn.Body == nil {
		return
	}
	returnsError := false
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			if t := pass.Pkg.Info.TypeOf(field.Type); t != nil && isErrorType(t) {
				returnsError = true
			}
		}
	}
	if !returnsError {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner.Pos() != fn.Body.Pos() {
			return true // still descend: closures return across the boundary too
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := res.(*ast.CallExpr)
			if !ok {
				continue
			}
			verbs, ok := errorfVerbs(pass, call)
			if !ok {
				continue
			}
			wraps := false
			for _, v := range verbs {
				if v == 'w' {
					wraps = true
				}
			}
			if !wraps {
				pass.Reportf(call.Pos(), "%s returns a fmt.Errorf with no %%w across the core boundary; wrap a sentinel from internal/core/errors.go", fn.Name.Name)
			}
		}
		return true
	})
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}
