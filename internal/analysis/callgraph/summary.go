package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"tableseg/internal/analysis/cfg"
)

// This file computes the per-function summary facts, bottom-up over
// the SCCs of the call graph:
//
//   - may-block: the transitive closure of the may-block classifier in
//     block.go — a function may block if its own body contains a
//     blocking operation, or it calls (or defers) a function that may
//     block. Goroutine launches do not charge to the launcher. The
//     fact is a Kind bitset, so clients can distinguish
//     cancellation-relevant parking from plain lock acquisition.
//   - ctx-threaded: for a function with a context.Context parameter,
//     whether that context reaches every cancellation-relevant
//     blocking callee — each such callee either receives a context
//     derived from the parameter or is itself a violation (no context
//     parameter at all, or one it fails to thread onward).
//   - responds: for a function with an http.ResponseWriter parameter,
//     whether every path to the exit performs a respond event (writes
//     the status or body, or delegates to something that provably
//     does), and whether every path explicitly sets the status.
//
// All three facts are monotone on their lattices (Blocks only grows,
// CtxIssues only grows, RespondsAll/SetsStatus only flip false→true
// as callee facts grow), so iterating each SCC to a fixpoint in
// reverse topological order terminates with the least/greatest
// solution.

// Summary is the interprocedural fact set of one function.
type Summary struct {
	// Blocks is the union of ways the function may block, transitively
	// through calls and defers. Zero means provably non-blocking under
	// the classifier (module-external calls excepted, matching the
	// intra-procedural analyzers' under-approximation).
	Blocks Kind
	// BlockWhat/BlockPos witness the first blocking operation found.
	BlockWhat string
	BlockPos  token.Pos
	// CancelWhat/CancelPos witness the first cancellation-relevant
	// (non-lock) blocking operation.
	CancelWhat string
	CancelPos  token.Pos

	// HasCtx reports a context.Context parameter in the signature.
	HasCtx bool
	// CtxIssues are the ways the function fails to thread its context
	// into blocking work; empty means ctx-threaded.
	CtxIssues []CtxIssue

	// HasRW reports an http.ResponseWriter parameter in the signature.
	HasRW bool
	// RespondsAll reports that every path to the exit performs a
	// respond event on the writer.
	RespondsAll bool
	// SetsStatus reports that every path to the exit performs an
	// explicit status-setting event (WriteHeader, http.Error, or a
	// callee that does).
	SetsStatus bool
}

// CtxThreaded reports that the function has a context parameter and
// propagates it into every cancellation-relevant blocking call.
func (s *Summary) CtxThreaded() bool { return s.HasCtx && len(s.CtxIssues) == 0 }

// CtxIssueKind classifies one failure to thread a context.
type CtxIssueKind uint8

const (
	// CtxSevered: the callee may block but takes no context at all —
	// cancellation cannot reach it.
	CtxSevered CtxIssueKind = iota
	// CtxDropped: the callee accepts a context but none of the
	// caller's derived contexts is passed.
	CtxDropped
	// CtxUnthreaded: the caller passes its context, but the callee
	// itself fails to thread it onward into its blocking work.
	CtxUnthreaded
	// CtxSleep: a bare time.Sleep, which no context can interrupt.
	CtxSleep
)

// CtxIssue is one context-threading failure at a call site.
type CtxIssue struct {
	Kind CtxIssueKind
	// Site is the offending call (or sleep) expression.
	Site ast.Node
	// Callee names the blocking callee for diagnostics ("" for
	// direct operations).
	Callee string
	// CalleePath is the import path of a module-local callee, "" when
	// external or unresolved.
	CalleePath string
	// What describes the blocking behavior being severed.
	What string
}

// RespondEvent classifies one call site's effect on the HTTP response.
type RespondEvent struct {
	Call *ast.CallExpr
	// Status: the event explicitly sets the response status
	// (WriteHeader-class). Responding twice with Status events is the
	// superfluous-WriteHeader bug.
	Status bool
	// Respond: the event starts or continues the response (status or
	// body write, or delegation to something that writes).
	Respond bool
	// HeaderMut: the event mutates the response headers, which is lost
	// (and vet-warned at runtime) once the body has started.
	HeaderMut bool
	// What describes the event for diagnostics.
	What string
}

// Summarize computes every node's Summary, bottom-up over SCCs.
// It is idempotent.
func (g *Graph) Summarize() {
	if g.summarized {
		return
	}
	g.summarized = true
	for _, scc := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				next := g.computeSummary(n)
				if !summariesEqual(&next, &n.Summary) {
					n.Summary = next
					changed = true
				}
			}
		}
	}
}

func summariesEqual(a, b *Summary) bool {
	return a.Blocks == b.Blocks &&
		a.HasCtx == b.HasCtx && a.HasRW == b.HasRW &&
		len(a.CtxIssues) == len(b.CtxIssues) &&
		a.RespondsAll == b.RespondsAll &&
		a.SetsStatus == b.SetsStatus
}

// signature returns the node's function signature.
func (n *Node) signature() *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		if t := n.Info.TypeOf(n.Lit); t != nil {
			sig, _ := t.(*types.Signature)
			return sig
		}
	}
	return nil
}

func (s *Summary) addBlock(k Kind, what string, pos token.Pos) {
	if k == 0 {
		return
	}
	if s.Blocks == 0 {
		s.BlockWhat, s.BlockPos = what, pos
	}
	if s.CancelWhat == "" && k&KindCancel != 0 {
		s.CancelWhat, s.CancelPos = what, pos
	}
	s.Blocks |= k
}

// edgeCalleeName renders the callee of e for diagnostics.
func edgeCalleeName(e *Edge) string {
	switch {
	case e.CalleeFn != nil:
		return FuncDisplayName(e.CalleeFn)
	case e.Callee != nil:
		return e.Callee.Name()
	}
	return "function value"
}

// computeSummary derives n's summary from its body and the current
// summaries of its callees (which, mid-fixpoint, may still grow).
func (g *Graph) computeSummary(n *Node) Summary {
	var s Summary
	sig := n.signature()
	if sig != nil {
		s.HasCtx = ctxParamIndex(sig) >= 0
		s.HasRW = rwParamIndex(sig) >= 0
	}
	if n.Body == nil {
		return s
	}

	// Intrinsic blocking operations of the body itself.
	exempt := NonBlockingComms(n.Body)
	for _, op := range CollectBlocking(n.Info, n.Body, exempt) {
		s.addBlock(op.Kind, op.What, op.Node.Pos())
	}
	// Long-running entry points block by project contract, whatever
	// their bodies look like today (mirrors the intra classifier's
	// treatment of their call sites).
	if n.Fn != nil && n.Fn.Exported() && HasEntryPrefix(n.Fn.Name()) {
		s.addBlock(KindSolver, "long-running entry point "+n.Fn.Name()+" by contract", n.posOf())
	}

	// Transitive blocking through calls and defers.
	for i := range n.Out {
		e := &n.Out[i]
		switch e.Kind {
		case EdgeCall, EdgeDefer:
			if e.Callee != nil {
				if cs := &e.Callee.Summary; cs.Blocks != 0 {
					name := edgeCalleeName(e)
					pos := e.Site.Pos()
					if s.Blocks == 0 {
						s.BlockWhat, s.BlockPos = "calls "+name+" ("+cs.BlockWhat+")", pos
					}
					// Chain the cancellation-relevant description
					// separately: a callee can block first on a lock
					// (not cancellation-relevant) and then on a channel,
					// and the diagnostic must name the latter.
					if s.CancelWhat == "" && cs.Blocks&KindCancel != 0 {
						cw := cs.CancelWhat
						if cw == "" {
							cw = cs.BlockWhat
						}
						s.CancelWhat, s.CancelPos = "calls "+name+" ("+cw+")", pos
					}
					s.Blocks |= cs.Blocks
				}
			} else if e.Kind == EdgeDefer {
				// Deferred external calls are skipped by the intrinsic
				// walk (registration does not block) but still run in
				// this goroutine at exit.
				if call, ok := e.Site.(*ast.CallExpr); ok {
					if what, k := BlockingCall(n.Info, call); k != 0 {
						s.addBlock(k, "deferred "+what, call.Pos())
					}
				}
			}
		}
	}

	if s.HasCtx {
		s.CtxIssues = g.ctxIssues(n)
	}
	if s.HasRW {
		g.computeRespondEvents(n)
		graph := cfg.New(n.Body)
		s.RespondsAll = graph.AllPathsContain(graph.Entry, -1, func(m ast.Node) bool {
			return n.nodeHasEvent(m, false)
		})
		s.SetsStatus = graph.AllPathsContain(graph.Entry, -1, func(m ast.Node) bool {
			return n.nodeHasEvent(m, true)
		})
	}
	return s
}

// --- context threading ---

// ctxParamIndex returns the index of the first context.Context
// parameter of sig, or -1.
func ctxParamIndex(sig *types.Signature) int {
	if sig == nil {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ctxDerivedObjs computes the objects carrying a context derived from
// n's context parameter(s): the parameters themselves plus every
// context-typed local assigned from an expression mentioning a
// derived object (ctx2, cancel := context.WithTimeout(ctx, d)).
func (g *Graph) ctxDerivedObjs(n *Node) map[types.Object]bool {
	derived := map[types.Object]bool{}
	sig := n.signature()
	if sig == nil {
		return derived
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); isContextType(p.Type()) {
			derived[p] = true
		}
	}

	// Collect candidate (lhs, rhs-mention) pairs once, then iterate to
	// a fixpoint (derivation chains: ctx2 from ctx, ctx3 from ctx2).
	type binding struct {
		obj types.Object
		rhs []ast.Expr
	}
	var bindings []binding
	record := func(lhs ast.Expr, rhs []ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := n.Info.Defs[id]
		if obj == nil {
			obj = n.Info.Uses[id]
		}
		if obj == nil || !isContextType(obj.Type()) {
			return
		}
		bindings = append(bindings, binding{obj: obj, rhs: rhs})
	}
	ast.Inspect(n.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return m == n.Lit
		case *ast.AssignStmt:
			if len(m.Lhs) == len(m.Rhs) {
				for i := range m.Lhs {
					record(m.Lhs[i], m.Rhs[i:i+1])
				}
			} else {
				for _, lhs := range m.Lhs {
					record(lhs, m.Rhs)
				}
			}
		case *ast.ValueSpec:
			for _, name := range m.Names {
				record(name, m.Values)
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, b := range bindings {
			if derived[b.obj] {
				continue
			}
			for _, rhs := range b.rhs {
				if mentionsDerived(n, rhs, derived) {
					derived[b.obj] = true
					changed = true
					break
				}
			}
		}
	}
	return derived
}

// mentionsDerived reports whether expr references any derived object.
func mentionsDerived(n *Node, expr ast.Expr, derived map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if obj := n.Info.Uses[id]; obj != nil && derived[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// ctxIssues finds every way n fails to thread its context into
// cancellation-relevant blocking work.
func (g *Graph) ctxIssues(n *Node) []CtxIssue {
	derived := g.ctxDerivedObjs(n)
	var issues []CtxIssue

	// Bare sleeps: no context can interrupt them.
	exempt := NonBlockingComms(n.Body)
	for _, op := range CollectBlocking(n.Info, n.Body, exempt) {
		if op.Kind == KindSleep {
			issues = append(issues, CtxIssue{Kind: CtxSleep, Site: op.Node, What: op.What})
		}
	}

	for i := range n.Out {
		e := &n.Out[i]
		if e.Kind != EdgeCall && e.Kind != EdgeDefer {
			continue
		}
		kinds, what := g.edgeCancelBlocks(n, e)
		if kinds&KindCancel == 0 {
			continue
		}
		// Bare time.Sleep sites are already reported by the sleep pass
		// above; a severed-callee issue on top would double-report.
		if call, ok := e.Site.(*ast.CallExpr); ok && e.Callee == nil {
			if _, k := BlockingCall(n.Info, call); k == KindSleep {
				continue
			}
		}
		var sig *types.Signature
		if e.CalleeFn != nil {
			sig, _ = e.CalleeFn.Type().(*types.Signature)
		} else if e.Callee != nil {
			sig = e.Callee.signature()
		}
		if sig == nil {
			continue
		}
		name := edgeCalleeName(e)
		path := ""
		if e.Callee != nil {
			path = e.Callee.Path
		}
		if ctxParamIndex(sig) < 0 {
			issues = append(issues, CtxIssue{
				Kind: CtxSevered, Site: e.Site, Callee: name, CalleePath: path, What: what,
			})
			continue
		}
		if !callPassesDerivedCtx(n, e, derived) {
			issues = append(issues, CtxIssue{
				Kind: CtxDropped, Site: e.Site, Callee: name, CalleePath: path, What: what,
			})
			continue
		}
		if e.Callee != nil && e.Callee.Summary.HasCtx && len(e.Callee.Summary.CtxIssues) > 0 {
			inner := e.Callee.Summary.CtxIssues[0]
			issues = append(issues, CtxIssue{
				Kind: CtxUnthreaded, Site: e.Site, Callee: name, CalleePath: path,
				What: inner.What,
			})
		}
	}
	return issues
}

// edgeCancelBlocks reports how the call through e may block: the
// callee's summary when resolved, else the intrinsic classification of
// the call site.
func (g *Graph) edgeCancelBlocks(n *Node, e *Edge) (Kind, string) {
	if e.Callee != nil {
		cs := &e.Callee.Summary
		what := cs.CancelWhat
		if what == "" {
			what = cs.BlockWhat
		}
		return cs.Blocks, what
	}
	if call, ok := e.Site.(*ast.CallExpr); ok {
		what, k := BlockingCall(n.Info, call)
		return k, what
	}
	return 0, ""
}

// callPassesDerivedCtx reports whether the call passes a
// context-typed argument derived from n's context parameter.
func callPassesDerivedCtx(n *Node, e *Edge, derived map[types.Object]bool) bool {
	call, ok := e.Site.(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, a := range call.Args {
		t := n.Info.TypeOf(a)
		if t == nil || !isContextType(t) {
			continue
		}
		if mentionsDerived(n, a, derived) {
			return true
		}
	}
	return false
}

// --- HTTP response facts ---

// rwParamIndex returns the index of the first http.ResponseWriter
// parameter of sig, or -1.
func rwParamIndex(sig *types.Signature) int {
	if sig == nil {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isResponseWriter(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// isRequestPtr reports *net/http.Request.
func isRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// HandlerShaped reports whether sig is handler-shaped: it has both an
// http.ResponseWriter and a *http.Request parameter.
func HandlerShaped(sig *types.Signature) bool {
	if sig == nil || rwParamIndex(sig) < 0 {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isRequestPtr(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// statusFuncs are the net/http package functions that write a status
// (and start the response) through their ResponseWriter argument.
var statusFuncs = map[string]bool{
	"Error": true, "NotFound": true, "Redirect": true,
	"ServeFile": true, "ServeContent": true,
}

// bodyWriters are external functions whose call with a ResponseWriter
// first argument writes the body (implicitly setting the status on
// first write): fmt.Fprint family, io.WriteString, io.Copy.
var bodyWriters = map[string]map[string]bool{
	"fmt": {"Fprint": true, "Fprintf": true, "Fprintln": true},
	"io":  {"WriteString": true, "Copy": true},
}

// inertRWFuncs are net/http functions that take a ResponseWriter but
// never write through it — MaxBytesReader only wraps the request body,
// NewResponseController only hands back a controller. Without this
// list they would be mistaken for the writer escaping into external
// code, which is assumed to respond.
var inertRWFuncs = map[string]bool{
	"MaxBytesReader":        true,
	"NewResponseController": true,
}

// computeRespondEvents classifies every call site of n by its effect
// on the HTTP response and stores the result on the node.
func (g *Graph) computeRespondEvents(n *Node) {
	events := map[*ast.CallExpr]RespondEvent{}
	info := n.Info

	rwTyped := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		return t != nil && isResponseWriter(t)
	}

	for call := range n.sites {
		ev := RespondEvent{Call: call}
		fun := ast.Unparen(call.Fun)
		inert := false

		if sel, ok := fun.(*ast.SelectorExpr); ok {
			// w.WriteHeader / w.Write on the writer itself.
			if rwTyped(sel.X) {
				switch sel.Sel.Name {
				case "WriteHeader":
					ev.Status, ev.Respond, ev.What = true, true, "WriteHeader"
				case "Write":
					ev.Respond, ev.What = true, "body write"
				}
			}
			// w.Header().Set/Add/Del — header mutation.
			if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok && !ev.Respond {
				if isel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok &&
					isel.Sel.Name == "Header" && rwTyped(isel.X) {
					switch sel.Sel.Name {
					case "Set", "Add", "Del":
						ev.HeaderMut, ev.What = true, "Header()."+sel.Sel.Name
					}
				}
			}
			// net/http package helpers and fmt/io writers.
			if id, ok := sel.X.(*ast.Ident); ok && !ev.Respond && !ev.HeaderMut {
				switch pkgNameOf(info, id) {
				case "net/http":
					switch {
					case statusFuncs[sel.Sel.Name] && callHasRWArg(info, call):
						ev.Status, ev.Respond, ev.What = true, true, "http."+sel.Sel.Name
					case sel.Sel.Name == "SetCookie":
						ev.HeaderMut, ev.What = true, "http.SetCookie"
					case inertRWFuncs[sel.Sel.Name]:
						inert = true
					}
				case "fmt", "io":
					pkg := pkgShort(pkgNameOf(info, id))
					if bodyWriters[pkg][sel.Sel.Name] && len(call.Args) > 0 && rwTyped(call.Args[0]) {
						ev.Respond, ev.What = true, pkg+"."+sel.Sel.Name
					}
				}
			}
		}

		// Delegation: the writer passed onward.
		if !inert && !ev.Respond && !ev.HeaderMut && callHasRWArg(info, call) {
			if e := n.EdgeAt(call); e != nil && e.Callee != nil {
				cs := &e.Callee.Summary
				switch {
				case cs.SetsStatus:
					ev.Status, ev.Respond = true, true
					ev.What = "call to " + edgeCalleeName(e) + " (sets the status)"
				case cs.RespondsAll:
					ev.Respond = true
					ev.What = "call to " + edgeCalleeName(e) + " (writes the response)"
				}
				// A resolved callee that provably never responds is not
				// an event; a partial responder is handled by its own
				// httpresp run.
			} else {
				// The writer escapes into an external or unresolved
				// call: assume it responds (delegating to a mux,
				// middleware or template is the normal shape), but make
				// no claim about the status.
				ev.Respond = true
				ev.What = "call passing the ResponseWriter onward"
			}
		}

		if ev.Status || ev.Respond || ev.HeaderMut {
			events[call] = ev
		}
	}
	n.respondEvents = events
}

func pkgShort(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func callHasRWArg(info *types.Info, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if t := info.TypeOf(a); t != nil && isResponseWriter(t) {
			return true
		}
	}
	return false
}

// RespondEvents exposes the classified call sites of a summarized
// node (nil before Summarize, or for nodes without a ResponseWriter).
func (n *Node) RespondEvents() map[*ast.CallExpr]RespondEvent { return n.respondEvents }

// nodeHasEvent reports whether CFG node m contains (shallowly — not
// descending into nested literals or go/defer bodies) a respond event
// of n; statusOnly restricts to explicit status-setting events.
func (n *Node) nodeHasEvent(m ast.Node, statusOnly bool) bool {
	found := false
	ast.Inspect(m, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if ev, ok := n.respondEvents[x]; ok {
				if ev.Respond && (!statusOnly || ev.Status) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// ResolvedCallee returns the module-local callee of a call site of n,
// nil when the call is external or unresolved.
func (n *Node) ResolvedCallee(call *ast.CallExpr) *Node {
	if e := n.EdgeAt(call); e != nil {
		return e.Callee
	}
	return nil
}
