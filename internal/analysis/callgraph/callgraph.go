// Package callgraph builds a static call graph over go/types for the
// module under analysis and computes per-function summary facts
// bottom-up over its strongly connected components. It is the
// interprocedural layer beneath tableseglint: the intra-procedural
// analyzers see one function body at a time, while the summaries here
// answer "does this callee, transitively, block?", "does it thread
// its context into everything that blocks?", and "does it write an
// HTTP response on every path?" — the facts the ctxflow, lockflow and
// httpresp analyzers consume.
//
// The graph resolves:
//
//   - direct calls to package-level functions and methods, across all
//     packages handed to Build;
//   - interface method calls, devirtualized when exactly one named
//     type in the module implements the interface (provably the only
//     concrete receiver the module can supply);
//   - method values and function values bound once to a local
//     variable and later called (f := x.M; f());
//   - function literals, each of which is its own node, including
//     literals launched by go and defer statements (the edge records
//     the launch kind, so summaries can exclude goroutine bodies from
//     the caller's may-block classification while still charging
//     deferred calls to it).
//
// Calls it cannot resolve (interface calls with several
// implementations, func values passed in from elsewhere) keep their
// static callee object when one exists, so signature-level checks
// still apply, and otherwise contribute nothing — the same
// under-approximation the intra-procedural analyzers already make.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Source is one type-checked package to include in the graph.
type Source struct {
	Path  string
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
}

// EdgeKind classifies how a call site transfers control.
type EdgeKind uint8

const (
	// EdgeCall is a plain call: the callee runs before the caller's
	// next statement.
	EdgeCall EdgeKind = iota
	// EdgeDefer is a deferred call: it runs on the caller's exit, in
	// the caller's goroutine (so its blocking charges to the caller).
	EdgeDefer
	// EdgeGo is a goroutine launch: the callee runs elsewhere and its
	// blocking does not charge to the caller.
	EdgeGo
	// EdgeRef is a function or method value referenced outside call
	// position (passed as an argument, stored in a field): a potential
	// call the graph records but charges to nobody.
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDefer:
		return "defer"
	case EdgeGo:
		return "go"
	case EdgeRef:
		return "ref"
	}
	return "?"
}

// Edge is one call site (or function-value reference) in a node.
type Edge struct {
	Kind EdgeKind
	// Site is the *ast.CallExpr for calls, or the referencing
	// expression for EdgeRef.
	Site ast.Node
	// Callee is the resolved module-local target, nil when the callee
	// is external or unresolvable.
	Callee *Node
	// CalleeFn is the static callee object when one exists — set even
	// for interface methods and external functions, so signature
	// checks (does it take a context?) work on unresolved calls too.
	CalleeFn *types.Func
	// Devirt marks an interface call resolved to the single
	// implementing type in the module.
	Devirt bool
}

// Node is one function in the graph: a declared function or method
// (Fn set) or a function literal (Lit set).
type Node struct {
	Fn   *types.Func
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	Info *types.Info
	Path string // import path of the declaring package
	Out  []Edge

	// Summary is filled by Summarize.
	Summary Summary

	sites         map[*ast.CallExpr]*Edge
	respondEvents map[*ast.CallExpr]RespondEvent
}

// Name returns a short display name for diagnostics:
// "pkg.Func", "pkg.(*T).Method" or "pkg.func-literal".
func (n *Node) Name() string {
	if n.Fn != nil {
		return FuncDisplayName(n.Fn)
	}
	return "function literal"
}

// FuncDisplayName renders fn as "pkg.Func" or "pkg.(*T).Method".
func FuncDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			name = "(" + star + named.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// Graph is the module call graph.
type Graph struct {
	// Nodes lists every function node in deterministic (source) order.
	Nodes []*Node

	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node

	// concrete named types of the module, for devirtualization.
	namedTypes []*types.Named

	summarized bool
}

// NodeOf returns the node of a declared function or method, nil when
// fn was not declared (with a body) in any Build source.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// LitNode returns the node of a function literal, nil when the
// literal lies outside every Build source.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Build constructs the call graph over srcs. Edges are resolved
// across all sources, so handing Build every loaded package of the
// module yields whole-module resolution.
func Build(srcs []Source) *Graph {
	g := &Graph{
		byFunc: map[*types.Func]*Node{},
		byLit:  map[*ast.FuncLit]*Node{},
	}
	// Pass 1: create nodes for every declared function and every
	// function literal, and collect the module's concrete named types.
	for _, src := range srcs {
		g.collectTypes(src)
		for _, f := range src.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					fn, _ := src.Info.Defs[n.Name].(*types.Func)
					if fn == nil || n.Body == nil {
						return true // keep descending: the body may hold literals
					}
					node := &Node{Fn: fn, Body: n.Body, Info: src.Info, Path: src.Path}
					g.Nodes = append(g.Nodes, node)
					g.byFunc[fn] = node
				case *ast.FuncLit:
					node := &Node{Lit: n, Body: n.Body, Info: src.Info, Path: src.Path}
					g.Nodes = append(g.Nodes, node)
					g.byLit[n] = node
				}
				return true
			})
		}
	}
	// Pass 2: resolve the edges of every node.
	for _, n := range g.Nodes {
		g.buildEdges(n)
	}
	return g
}

// collectTypes records the concrete (non-interface) named types
// declared at package scope, the candidate set for devirtualization.
func (g *Graph) collectTypes(src Source) {
	if src.Types == nil {
		return
	}
	scope := src.Types.Scope()
	names := scope.Names() // already sorted
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		g.namedTypes = append(g.namedTypes, named)
	}
}

// buildEdges scans n's body shallowly (nested literals are their own
// nodes) and resolves every call site and function-value reference.
func (g *Graph) buildEdges(n *Node) {
	if n.Body == nil {
		return
	}
	n.sites = map[*ast.CallExpr]*Edge{}

	bindings := g.localBindings(n)

	// funPos marks expressions appearing in call position, so the
	// reference walk below can skip them.
	funPos := map[ast.Expr]bool{}

	addCall := func(kind EdgeKind, call *ast.CallExpr) {
		fun := ast.Unparen(call.Fun)
		funPos[fun] = true
		e := Edge{Kind: kind, Site: call}
		g.resolveCallee(n, fun, bindings, &e)
		n.Out = append(n.Out, e)
		n.sites[call] = &n.Out[len(n.Out)-1]
	}

	var visit func(m ast.Node) bool
	visit = func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // its body is its own node
		case *ast.GoStmt:
			addCall(EdgeGo, m.Call)
			for _, a := range m.Call.Args {
				ast.Inspect(a, visit)
			}
			return false
		case *ast.DeferStmt:
			addCall(EdgeDefer, m.Call)
			for _, a := range m.Call.Args {
				ast.Inspect(a, visit)
			}
			return false
		case *ast.CallExpr:
			if g.isConversion(n, m) {
				return true
			}
			addCall(EdgeCall, m)
			// Descend into Fun (for chained calls like f()() and
			// method-value receivers) and the arguments.
			ast.Inspect(m.Fun, visit)
			for _, a := range m.Args {
				ast.Inspect(a, visit)
			}
			return false
		}
		return true
	}
	ast.Inspect(n.Body, visit)

	// Reference walk: function and method values used outside call
	// position (arguments, assignments, composite literals).
	ast.Inspect(n.Body, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != ast.Node(n.Lit) {
			return false
		}
		e, ok := m.(ast.Expr)
		if !ok || funPos[e] {
			return true
		}
		if fn := g.staticFunc(n, e); fn != nil {
			edge := Edge{Kind: EdgeRef, Site: e, CalleeFn: fn, Callee: g.byFunc[fn]}
			n.Out = append(n.Out, edge)
			return false
		}
		return true
	})
}

// isConversion reports whether call is a type conversion rather than
// a function call.
func (g *Graph) isConversion(n *Node, call *ast.CallExpr) bool {
	if tv, ok := n.Info.Types[call.Fun]; ok {
		return tv.IsType()
	}
	return false
}

// staticFunc resolves e to the function or method it names when e is
// a bare function reference (not a call): an identifier bound to a
// *types.Func, or a method-value selector.
func (g *Graph) staticFunc(n *Node, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		if fn, ok := n.Info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := n.Info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		// Qualified reference pkg.Func.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := n.Info.Uses[id].(*types.PkgName); isPkg {
				if fn, ok := n.Info.Uses[e.Sel].(*types.Func); ok {
					return fn
				}
			}
		}
	}
	return nil
}

// bindTarget is what a single-assignment local function variable holds.
type bindTarget struct {
	fn  *types.Func  // method value or function reference
	lit *ast.FuncLit // bound literal
}

// localBindings finds local variables bound exactly once to a
// function literal, a function, or a method value — the shapes
// through which the suite's code makes indirect calls. A variable
// reassigned anywhere (or bound to anything else) is dropped.
func (g *Graph) localBindings(n *Node) map[types.Object]bindTarget {
	out := map[types.Object]bindTarget{}
	poisoned := map[types.Object]bool{}

	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := n.Info.Defs[id]
		if obj == nil {
			obj = n.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, seen := out[obj]; seen || poisoned[obj] {
			// Second binding: no longer single-assignment.
			delete(out, obj)
			poisoned[obj] = true
			return
		}
		rhs = ast.Unparen(rhs)
		if lit, ok := rhs.(*ast.FuncLit); ok {
			out[obj] = bindTarget{lit: lit}
			return
		}
		if fn := g.staticFunc(n, rhs); fn != nil {
			out[obj] = bindTarget{fn: fn}
			return
		}
		poisoned[obj] = true
	}

	ast.Inspect(n.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return m == n.Lit
		case *ast.AssignStmt:
			if len(m.Lhs) == len(m.Rhs) {
				for i := range m.Lhs {
					record(m.Lhs[i], m.Rhs[i])
				}
			} else {
				// Multi-value RHS cannot bind a function variable we
				// track; poison the LHS identifiers.
				for _, lhs := range m.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := n.Info.Defs[id]; obj != nil {
							delete(out, obj)
							poisoned[obj] = true
						} else if obj := n.Info.Uses[id]; obj != nil {
							delete(out, obj)
							poisoned[obj] = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			if len(m.Names) == len(m.Values) {
				for i := range m.Names {
					record(m.Names[i], m.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// resolveCallee fills e.Callee/e.CalleeFn for the call through fun.
func (g *Graph) resolveCallee(n *Node, fun ast.Expr, bindings map[types.Object]bindTarget, e *Edge) {
	switch fun := fun.(type) {
	case *ast.FuncLit:
		e.Callee = g.byLit[fun]
		return
	case *ast.Ident:
		switch obj := n.Info.Uses[fun].(type) {
		case *types.Func:
			e.CalleeFn = obj
			e.Callee = g.byFunc[obj]
		case *types.Var:
			if t, ok := bindings[obj]; ok {
				if t.lit != nil {
					e.Callee = g.byLit[t.lit]
				} else if t.fn != nil {
					e.CalleeFn = t.fn
					e.Callee = g.byFunc[t.fn]
				}
			}
		}
		return
	case *ast.SelectorExpr:
		if sel, ok := n.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			e.CalleeFn = fn
			recv := sel.Recv()
			if _, isIface := recv.Underlying().(*types.Interface); isIface {
				if impl := g.devirtualize(recv, fn); impl != nil {
					e.CalleeFn = impl
					e.Callee = g.byFunc[impl]
					e.Devirt = true
				}
				return
			}
			e.Callee = g.byFunc[fn]
			return
		}
		// Qualified call pkg.Func(...).
		if fn, ok := n.Info.Uses[fun.Sel].(*types.Func); ok {
			e.CalleeFn = fn
			e.Callee = g.byFunc[fn]
		}
	}
}

// devirtualize resolves an interface method call to the concrete
// method when exactly one named type in the module implements the
// interface. Method-set membership uses both the value and pointer
// receivers, matching what the type checker would admit at an
// assignment to the interface.
func (g *Graph) devirtualize(recv types.Type, m *types.Func) *types.Func {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		return nil
	}
	var impls []types.Type
	for _, named := range g.namedTypes {
		switch {
		case types.Implements(named, iface):
			impls = append(impls, named)
		case types.Implements(types.NewPointer(named), iface):
			impls = append(impls, types.NewPointer(named))
		}
		if len(impls) > 1 {
			return nil
		}
	}
	if len(impls) != 1 {
		return nil
	}
	pkg := m.Pkg()
	obj, _, _ := types.LookupFieldOrMethod(impls[0], true, pkg, m.Name())
	if fn, ok := obj.(*types.Func); ok {
		return fn
	}
	return nil
}

// EdgeAt returns the edge recorded for a call site of n, nil when the
// call was not walked (e.g. it lies in a nested literal).
func (n *Node) EdgeAt(call *ast.CallExpr) *Edge {
	if n.sites == nil {
		return nil
	}
	return n.sites[call]
}

// SCCs partitions the graph into strongly connected components over
// Call and Defer edges (the edges whose blocking charges to the
// caller), returned in reverse topological order: every component
// appears after the components it calls into, so a bottom-up summary
// pass can process them in slice order.
func (g *Graph) SCCs() [][]*Node {
	// Tarjan's algorithm, iterative over the deterministic node order.
	index := map[*Node]int{}
	low := map[*Node]int{}
	onStack := map[*Node]bool{}
	var stack []*Node
	var sccs [][]*Node
	next := 0

	var strongconnect func(v *Node)
	strongconnect = func(v *Node) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for i := range v.Out {
			e := &v.Out[i]
			if e.Callee == nil || (e.Kind != EdgeCall && e.Kind != EdgeDefer) {
				continue
			}
			w := e.Callee
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			// Deterministic member order within the component.
			sort.Slice(scc, func(i, j int) bool { return index[scc[i]] < index[scc[j]] })
			sccs = append(sccs, scc)
		}
	}
	for _, v := range g.Nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// posOf returns a position for diagnostics anchored at a node's
// declaration.
func (n *Node) posOf() token.Pos {
	switch {
	case n.Lit != nil:
		return n.Lit.Pos()
	case n.Body != nil:
		return n.Body.Pos()
	}
	return token.NoPos
}
