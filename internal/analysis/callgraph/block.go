package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the may-block call classifier, lifted out of
// internal/analysis/mayblock.go so both the intra-procedural
// concurrency analyzers (through thin wrappers in the analysis
// package) and the interprocedural summary computation share one
// definition of "operation after which a goroutine may park": channel
// sends and receives, selects without a ready branch,
// sync.WaitGroup.Wait, sync.Once.Do (the loser of a concurrent first
// call parks until the winner finishes), acquiring another mutex,
// time.Sleep, and solver invocations (exported
// Segment/Solve/Fit/Run/Train entry points, which by project contract
// can run for a long time).
//
// Classification is syntactic plus types: it inspects the node's own
// expressions but never descends into nested function literals (their
// bodies execute elsewhere) and treats go/defer statements as
// non-blocking at the point of registration (only their argument
// expressions are evaluated there). Each operation carries a Kind so
// interprocedural clients can distinguish cancellation-relevant
// parking (channels, joins, sleeps, solvers) from plain lock
// acquisition, which a short critical section performs routinely.

// Kind is a bitset classifying how an operation (or, transitively, a
// function) may block.
type Kind uint8

const (
	// KindChan marks channel sends, receives and channel-range loops.
	KindChan Kind = 1 << iota
	// KindSync marks sync.WaitGroup.Wait and sync.Once.Do.
	KindSync
	// KindLock marks sync.Mutex/RWMutex Lock and RLock acquisition.
	KindLock
	// KindSleep marks time.Sleep.
	KindSleep
	// KindSolver marks calls to exported entry points carrying the
	// project's long-running verb prefixes (Segment/Solve/Fit/Run/
	// Train), which by contract can run until their context cancels.
	KindSolver
)

// KindAny is every classification at once.
const KindAny = KindChan | KindSync | KindLock | KindSleep | KindSolver

// KindCancel is the subset of kinds that represent indefinite,
// cancellation-relevant parking: everything except taking a lock (a
// short critical section acquires locks routinely and needs no
// context).
const KindCancel = KindChan | KindSync | KindSleep | KindSolver

// String renders the bitset for diagnostics, e.g. "chan|lock".
func (k Kind) String() string {
	var parts []string
	for _, e := range [...]struct {
		k Kind
		s string
	}{
		{KindChan, "chan"}, {KindSync, "sync"}, {KindLock, "lock"},
		{KindSleep, "sleep"}, {KindSolver, "solver"},
	} {
		if k&e.k != 0 {
			parts = append(parts, e.s)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// EntryPointPrefixes are the verb prefixes that mark an exported
// function or method as a pipeline/solver entry point: work that can
// be long-running and therefore must be cancelable from the caller.
// Shared with the analysis package's ctxdiscipline analyzer.
var EntryPointPrefixes = []string{"Segment", "Solve", "Fit", "Run", "Train"}

// HasEntryPrefix reports whether name carries one of the long-running
// entry-point verb prefixes.
func HasEntryPrefix(name string) bool {
	for _, p := range EntryPointPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// BlockingOp is one potentially-blocking operation found in a node.
type BlockingOp struct {
	Node ast.Node
	What string // human-readable classification for diagnostics
	Kind Kind
}

// NonBlockingComms returns the communication clauses (and their
// statements) of every `select` in body that has a default branch:
// those sends and receives only run when already ready, so they never
// block.
func NonBlockingComms(body ast.Node) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	if body == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if comm := c.(*ast.CommClause).Comm; comm != nil {
				out[comm] = true
				// The receive expression inside an assignment or
				// expression statement is what deeper walks encounter.
				ast.Inspect(comm, func(m ast.Node) bool {
					if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						out[u] = true
					}
					return true
				})
			}
		}
		return true
	})
	return out
}

// CollectBlocking returns every potentially-blocking operation in n,
// in source order. exempt marks nodes known to be non-blocking
// (communications of selects with a default). The walk skips nested
// function literals and the calls of go/defer statements.
func CollectBlocking(info *types.Info, n ast.Node, exempt map[ast.Node]bool) []BlockingOp {
	var found []BlockingOp
	var visitExpr func(e ast.Expr)
	var visit func(n ast.Node) bool

	mark := func(node ast.Node, what string, kind Kind) {
		found = append(found, BlockingOp{Node: node, What: what, Kind: kind})
	}
	chanTyped := func(e ast.Expr) bool {
		if t := info.TypeOf(e); t != nil {
			_, ok := t.Underlying().(*types.Chan)
			return ok
		}
		return false
	}
	visitExpr = func(e ast.Expr) {
		if e != nil {
			ast.Inspect(e, visit)
		}
	}
	visit = func(n ast.Node) bool {
		if n == nil || exempt[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				visitExpr(a)
			}
			return false
		case *ast.DeferStmt:
			for _, a := range n.Call.Args {
				visitExpr(a)
			}
			return false
		case *ast.SendStmt:
			mark(n, "channel send", KindChan)
			visitExpr(n.Value)
			return false
		case *ast.RangeStmt:
			// Ranging a channel blocks on every receive until the
			// channel is closed.
			if chanTyped(n.X) {
				mark(n, "channel-range receive", KindChan)
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				mark(n, "channel receive", KindChan)
				return false
			}
		case *ast.CallExpr:
			if what, kind := BlockingCall(info, n); what != "" {
				mark(n, what, kind)
				return false
			}
		}
		return true
	}
	if n != nil {
		// A CFG loop head for `for range ch` is the ranged operand
		// itself; a channel-typed root expression therefore marks the
		// per-iteration blocking receive.
		if e, ok := n.(ast.Expr); ok && chanTyped(e) {
			mark(n, "channel-range receive", KindChan)
		}
		ast.Inspect(n, visit)
	}
	return found
}

// BlockingCall classifies a call expression: "" when it is not a
// known potentially-blocking call.
func BlockingCall(info *types.Info, call *ast.CallExpr) (string, Kind) {
	if recv, method := SyncSelector(info, call); recv != "" {
		switch {
		case method == "Wait" && recv == "WaitGroup":
			return "sync.WaitGroup.Wait", KindSync
		case method == "Do" && recv == "Once":
			return "sync.Once.Do", KindSync
		case (method == "Lock" || method == "RLock") && (recv == "Mutex" || recv == "RWMutex"):
			return "sync." + recv + "." + method, KindLock
		}
	}
	// time.Sleep parks the goroutine.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && pkgNameOf(info, id) == "time" && sel.Sel.Name == "Sleep" {
			return "time.Sleep", KindSleep
		}
	}
	// Solver invocations: exported entry points named with the
	// project's long-running verb prefixes (Segment/Solve/Fit/Run/
	// Train) can run until their context cancels.
	var nameID *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		nameID = fun
	case *ast.SelectorExpr:
		nameID = fun.Sel
	}
	if nameID != nil && ast.IsExported(nameID.Name) && HasEntryPrefix(nameID.Name) {
		if _, isFunc := info.Uses[nameID].(*types.Func); isFunc {
			return "solver invocation " + nameID.Name, KindSolver
		}
	}
	return "", 0
}

// SyncSelector resolves a method call's receiver to a type declared in
// package sync, returning the type and method names ("" when the call
// is not a sync-type method).
func SyncSelector(info *types.Info, call *ast.CallExpr) (recvType, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return "", ""
	}
	t := selection.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	return obj.Name(), sel.Sel.Name
}

// pkgNameOf resolves an identifier to the imported package it names,
// or "" if it is not a package qualifier.
func pkgNameOf(info *types.Info, id *ast.Ident) string {
	if obj, ok := info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
	}
	return ""
}
