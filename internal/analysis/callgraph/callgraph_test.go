package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildGraph type-checks one synthetic package and returns its
// summarized call graph.
func buildGraph(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	g := Build([]Source{{Path: "p", Files: []*ast.File{file}, Info: info, Types: tpkg}})
	g.Summarize()
	return g
}

// nodeNamed finds the declared function node with the given name.
func nodeNamed(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Fn != nil && n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q", name)
	return nil
}

func TestMethodValueResolution(t *testing.T) {
	g := buildGraph(t, `package p

type S struct{ ch chan int }

func (s *S) Recv() { <-s.ch }

func caller(s *S) {
	f := s.Recv
	f()
}
`)
	caller := nodeNamed(t, g, "caller")
	if got := caller.Summary.Blocks; got&KindChan == 0 {
		t.Fatalf("caller Blocks = %v, want chan via method value", got)
	}
	var resolved bool
	for _, e := range caller.Out {
		if e.Kind == EdgeCall && e.CalleeFn != nil && e.CalleeFn.Name() == "Recv" && e.Callee != nil {
			resolved = true
		}
	}
	if !resolved {
		t.Fatalf("method-value call f() not resolved to (*S).Recv; edges: %+v", caller.Out)
	}
}

func TestInterfaceSingleImplDevirtualized(t *testing.T) {
	g := buildGraph(t, `package p

type Waiter interface{ Await() }

type impl struct{ ch chan int }

func (i *impl) Await() { <-i.ch }

func caller(w Waiter) { w.Await() }
`)
	caller := nodeNamed(t, g, "caller")
	var devirt bool
	for _, e := range caller.Out {
		if e.Kind == EdgeCall && e.Devirt && e.Callee != nil && e.Callee.Fn.Name() == "Await" {
			devirt = true
		}
	}
	if !devirt {
		t.Fatalf("interface call with single impl not devirtualized; edges: %+v", caller.Out)
	}
	if caller.Summary.Blocks&KindChan == 0 {
		t.Fatalf("caller Blocks = %v, want chan through devirtualized callee", caller.Summary.Blocks)
	}
}

func TestInterfaceMultiImplNotDevirtualized(t *testing.T) {
	g := buildGraph(t, `package p

type Waiter interface{ Await() }

type a struct{}
type b struct{}

func (a) Await() {}
func (b) Await() {}

func caller(w Waiter) { w.Await() }
`)
	caller := nodeNamed(t, g, "caller")
	for _, e := range caller.Out {
		if e.Devirt {
			t.Fatalf("interface call with two impls was devirtualized: %+v", e)
		}
		if e.Kind == EdgeCall && e.CalleeFn == nil {
			t.Fatalf("static interface method object lost on unresolved call")
		}
	}
}

func TestDeferInLoop(t *testing.T) {
	g := buildGraph(t, `package p

import "sync"

func caller(wgs []*sync.WaitGroup) {
	for _, wg := range wgs {
		defer wg.Wait()
	}
}
`)
	caller := nodeNamed(t, g, "caller")
	var deferred int
	for _, e := range caller.Out {
		if e.Kind == EdgeDefer {
			deferred++
		}
	}
	if deferred != 1 {
		t.Fatalf("defer edges = %d, want 1", deferred)
	}
	if caller.Summary.Blocks&KindSync == 0 {
		t.Fatalf("caller Blocks = %v, want sync from deferred WaitGroup.Wait", caller.Summary.Blocks)
	}
}

func TestGoInClosureDoesNotChargeLauncher(t *testing.T) {
	g := buildGraph(t, `package p

func launcher(ch chan int) func() {
	return func() {
		go func() { <-ch }()
	}
}
`)
	launcher := nodeNamed(t, g, "launcher")
	if launcher.Summary.Blocks != 0 {
		t.Fatalf("launcher Blocks = %v, want none (receive runs in a goroutine)", launcher.Summary.Blocks)
	}
	// The outer closure launches but does not block either.
	var closure *Node
	for _, n := range g.Nodes {
		if n.Lit != nil && n.Body != nil {
			for _, e := range n.Out {
				if e.Kind == EdgeGo {
					closure = n
				}
			}
		}
	}
	if closure == nil {
		t.Fatalf("go statement inside closure produced no EdgeGo on the closure node")
	}
	if closure.Summary.Blocks != 0 {
		t.Fatalf("closure Blocks = %v, want none", closure.Summary.Blocks)
	}
	// The goroutine body itself is a node and does block.
	var body *Node
	for _, e := range closure.Out {
		if e.Kind == EdgeGo {
			body = e.Callee
		}
	}
	if body == nil || body.Summary.Blocks&KindChan == 0 {
		t.Fatalf("goroutine body not resolved or not blocking: %+v", body)
	}
}

func TestSCCFixpointMutualRecursion(t *testing.T) {
	g := buildGraph(t, `package p

func a(ch chan int, n int) {
	if n > 0 {
		b(ch, n-1)
	}
}

func b(ch chan int, n int) {
	<-ch
	a(ch, n)
}
`)
	for _, name := range []string{"a", "b"} {
		n := nodeNamed(t, g, name)
		if n.Summary.Blocks&KindChan == 0 {
			t.Fatalf("%s Blocks = %v, want chan through the recursion cycle", name, n.Summary.Blocks)
		}
	}
}

func TestCtxThreading(t *testing.T) {
	g := buildGraph(t, `package p

import (
	"context"
	"time"
)

func blockNoCtx(ch chan int) { <-ch }

func blockWithCtx(ctx context.Context, ch chan int) {
	select {
	case <-ch:
	case <-ctx.Done():
	}
}

func dropped(ctx context.Context, ch chan int) {
	blockWithCtx(context.Background(), ch)
}

func severed(ctx context.Context, ch chan int) {
	blockNoCtx(ch)
}

func threaded(ctx context.Context, ch chan int) {
	ctx2, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	blockWithCtx(ctx2, ch)
}

func sleeper(ctx context.Context) {
	time.Sleep(time.Second)
}
`)
	check := func(name string, wantKinds ...CtxIssueKind) {
		t.Helper()
		n := nodeNamed(t, g, name)
		if !n.Summary.HasCtx {
			t.Fatalf("%s: HasCtx = false", name)
		}
		var got []CtxIssueKind
		for _, is := range n.Summary.CtxIssues {
			got = append(got, is.Kind)
		}
		if len(got) != len(wantKinds) {
			t.Fatalf("%s: issues = %+v, want kinds %v", name, n.Summary.CtxIssues, wantKinds)
		}
		for i, k := range wantKinds {
			if got[i] != k {
				t.Fatalf("%s: issue %d kind = %v, want %v", name, i, got[i], k)
			}
		}
	}
	check("dropped", CtxDropped)
	check("severed", CtxSevered)
	check("threaded") // derivation through WithTimeout threads cleanly
	check("sleeper", CtxSleep)
	if n := nodeNamed(t, g, "blockWithCtx"); !n.Summary.CtxThreaded() {
		t.Fatalf("blockWithCtx: CtxThreaded = false, issues %+v", n.Summary.CtxIssues)
	}
}

func TestRespondsSummary(t *testing.T) {
	g := buildGraph(t, `package p

import (
	"fmt"
	"net/http"
)

func full(w http.ResponseWriter, r *http.Request, ok bool) {
	if !ok {
		http.Error(w, "bad", http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func partial(w http.ResponseWriter, r *http.Request, ok bool) {
	if !ok {
		return
	}
	w.WriteHeader(http.StatusOK)
}

func delegated(w http.ResponseWriter, r *http.Request, ok bool) {
	if !ok {
		fail(w)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func fail(w http.ResponseWriter) {
	http.Error(w, "bad", http.StatusInternalServerError)
}
`)
	cases := []struct {
		name                    string
		respondsAll, setsStatus bool
	}{
		{"full", true, true},
		{"partial", false, false},
		{"delegated", true, true},
		{"fail", true, true},
	}
	for _, c := range cases {
		n := nodeNamed(t, g, c.name)
		if !n.Summary.HasRW {
			t.Fatalf("%s: HasRW = false", c.name)
		}
		if n.Summary.RespondsAll != c.respondsAll || n.Summary.SetsStatus != c.setsStatus {
			t.Fatalf("%s: RespondsAll=%v SetsStatus=%v, want %v/%v",
				c.name, n.Summary.RespondsAll, n.Summary.SetsStatus, c.respondsAll, c.setsStatus)
		}
	}
}

func TestSCCsReverseTopological(t *testing.T) {
	g := buildGraph(t, `package p

func leaf() {}
func mid()  { leaf() }
func top()  { mid() }
`)
	pos := map[string]int{}
	for i, scc := range g.SCCs() {
		for _, n := range scc {
			if n.Fn != nil {
				pos[n.Fn.Name()] = i
			}
		}
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["top"]) {
		t.Fatalf("SCC order not reverse topological: %v", pos)
	}
}

func TestKindString(t *testing.T) {
	if got := (KindChan | KindLock).String(); got != "chan|lock" {
		t.Fatalf("Kind string = %q, want chan|lock", got)
	}
	if got := Kind(0).String(); got != "none" {
		t.Fatalf("zero Kind string = %q, want none", got)
	}
}

func TestFuncDisplayName(t *testing.T) {
	g := buildGraph(t, `package p

type T struct{}

func (t *T) Method() {}
func Plain()         {}
`)
	method := nodeNamed(t, g, "Method")
	if got := method.Name(); !strings.Contains(got, "(*T).Method") {
		t.Fatalf("method display name = %q", got)
	}
	plain := nodeNamed(t, g, "Plain")
	if got := plain.Name(); got != "p.Plain" {
		t.Fatalf("plain display name = %q", got)
	}
}
