package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureDirs are the package directories of the lint fixture module,
// relative to testdata/lintmod.
var fixtureDirs = []string{
	"api/v1", "internal/core", "internal/csp", "internal/engine",
	"internal/phmm", "internal/server", "internal/solvers",
	"internal/stage", "internal/token", "util",
}

// wantRe matches a golden-diagnostic expectation trailing a fixture
// line: // want <analyzer> "<message substring>"
var wantRe = regexp.MustCompile(`// want (\w+) "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file     string // absolute-ish path as the loader reports it
	line     int
	analyzer string
	substr   string
}

func (e expectation) String() string {
	return fmt.Sprintf("%s:%d: [%s] ~ %q", e.file, e.line, e.analyzer, e.substr)
}

func loadFixtureDiagnostics(t *testing.T) []Diagnostic {
	t.Helper()
	root := filepath.Join("testdata", "lintmod")
	modPath, err := ModulePathOf(root)
	if err != nil {
		t.Fatalf("ModulePathOf: %v", err)
	}
	loader := NewLoader(root, modPath)
	cfg := DefaultConfig()
	// The fixture module commits its own (deliberately drifted) schema
	// locks, so wiredrift and codecdrift run live here too.
	if err := LoadSchemaLocks(&cfg, root); err != nil {
		t.Fatalf("LoadSchemaLocks: %v", err)
	}
	// ... and its own hot-path declaration, so hotalloc runs live too.
	if err := LoadHotPaths(&cfg, root); err != nil {
		t.Fatalf("LoadHotPaths: %v", err)
	}
	var diags []Diagnostic
	for _, dir := range fixtureDirs {
		pkg, err := loader.LoadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		diags = append(diags, Run(pkg, cfg, Suite())...)
	}
	return diags
}

func parseExpectations(t *testing.T) []expectation {
	t.Helper()
	var out []expectation
	for _, dir := range fixtureDirs {
		pattern := filepath.Join("testdata", "lintmod", dir, "*.go")
		files, err := filepath.Glob(pattern)
		if err != nil || len(files) == 0 {
			t.Fatalf("no fixture files match %s (err=%v)", pattern, err)
		}
		for _, file := range files {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					substr, err := strconv.Unquote(`"` + m[2] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %q: %v", file, i+1, m[2], err)
					}
					out = append(out, expectation{file: file, line: i + 1, analyzer: m[1], substr: substr})
				}
			}
		}
	}
	return out
}

// TestFixtureDiagnostics is the golden test for the full suite:
// every `// want` annotation in the fixture module must be matched by
// exactly one diagnostic at that file and line, and no diagnostic may
// appear without an annotation (this also proves the suppression
// directive and the negative-control package stay silent).
func TestFixtureDiagnostics(t *testing.T) {
	diags := loadFixtureDiagnostics(t)
	wants := parseExpectations(t)
	if len(wants) == 0 {
		t.Fatal("fixture module contains no // want annotations")
	}

	used := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for di, d := range diags {
			if used[di] || d.Analyzer != w.analyzer || d.Pos.Line != w.line {
				continue
			}
			if filepath.Clean(d.Pos.Filename) != filepath.Clean(w.file) {
				continue
			}
			if !strings.Contains(d.Message, w.substr) {
				continue
			}
			used[di] = true
			found = true
			break
		}
		if !found {
			t.Errorf("missing diagnostic: want %s", w)
		}
	}
	for di, d := range diags {
		if !used[di] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestDiagnosticsSorted pins the driver contract that Run returns
// file/line/column-ordered output, so CI diffs are stable.
func TestDiagnosticsSorted(t *testing.T) {
	diags := loadFixtureDiagnostics(t)
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
}
