// Package stage is a lint fixture for the stagepurity analyzer: its
// import path ends in internal/stage, so it must stay algorithm-
// agnostic — importing an algorithm, solver or orchestration package
// is a layering violation.
package stage

import (
	"context"

	"lintfixture/internal/core" // want stagepurity "may not import lintfixture/internal/core"
	"lintfixture/internal/csp"  // want stagepurity "may not import lintfixture/internal/csp"
)

// SegmentFixture is a well-formed stage entry point (context first,
// deterministic body); the package is dirty only in its imports.
func SegmentFixture(ctx context.Context, n int) (int, error) {
	if err := core.BuildGood(false); err != nil {
		return 0, err
	}
	return csp.SolveGood(ctx, n), nil
}

// CodecVersion stamps this fixture's codec artifacts. The committed
// fixture lock (lint/schema-artifacts.lock) pins Record's shape at
// version 1 with a digest that deliberately disagrees with the live
// shape, so codecdrift must fire here until the constant is bumped.
const CodecVersion = 1 // want codecdrift "shape of codec-encoded lintfixture/internal/stage.Record changed"

// Record is the codec-encoded artifact whose shape the lock pins.
type Record struct {
	Index int
	Words []string
}

// EchoIn is a mutable stage input; EchoOut the artifact built from it.
type EchoIn struct{ Items []int }

// EchoOut is a stage artifact wrapping a slice.
type EchoOut struct{ Items []int }

// Echo returns the input storage unchanged, so the cached artifact
// aliases the caller's slice: an aliasflow violation.
func Echo(ctx context.Context, in EchoIn) (EchoOut, error) {
	return EchoOut{Items: in.Items}, nil // want aliasflow "aliases mutable input parameter \"in\""
}

// CopyEcho copies the storage before returning: clean.
func CopyEcho(ctx context.Context, in EchoIn) (EchoOut, error) {
	cp := make([]int, len(in.Items))
	copy(cp, in.Items)
	return EchoOut{Items: cp}, nil
}
