// Package server exercises the httpresp analyzer: handler-shaped
// functions must respond on every path, write the status at most once
// per path, and never mutate headers after the response has started.
// The writeJSON helper shows the analyzer seeing through module-local
// delegation via the call-graph summaries.
package server

import (
	"fmt"
	"net/http"
)

func writeJSON(w http.ResponseWriter, status int, body string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintln(w, body)
}

// upgrade stands in for a hijacking upgrader: it responds through the
// raw connection, invisibly to the analyzer. It is not handler-shaped
// (no *http.Request), so the must-respond rule does not bind it.
func upgrade(w http.ResponseWriter) {
	_ = w
}

func handleMissingBranch(w http.ResponseWriter, r *http.Request) { // want httpresp "does not respond on every path"
	if r.Method != http.MethodPost {
		return
	}
	writeJSON(w, http.StatusOK, `{}`)
}

func handleDoubleStatus(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	if r.ContentLength == 0 {
		http.Error(w, "empty", http.StatusBadRequest) // want httpresp "status written twice"
		return
	}
	fmt.Fprintln(w, "ok")
}

func handleLateHeader(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, `{}`)
	w.Header().Set("X-Late", "1") // want httpresp "header mutated after the response started"
}

func handleClean(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, `{}`)
}

//tableseglint:ignore httpresp the upgrader responds through the hijacked connection after this handler returns
func handleUpgrade(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Upgrade") == "" {
		http.Error(w, "not an upgrade", http.StatusBadRequest)
		return
	}
	upgrade(w)
}
