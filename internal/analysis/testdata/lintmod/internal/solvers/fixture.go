// Package solvers is a lint fixture for the stagepurity analyzer: its
// import path ends in internal/solvers, so it may import the algorithm
// packages freely but never the orchestration layer.
package solvers

import (
	"context"

	"lintfixture/internal/core" // want stagepurity "may not import lintfixture/internal/core"
	"lintfixture/internal/csp"  // algorithm import: allowed for solvers
)

// SolveFixture is a well-formed solver entry point (context first)
// that legitimately calls into an algorithm package; only the
// orchestration import above is a violation.
func SolveFixture(ctx context.Context, n int) (int, error) {
	if err := core.BuildGood(false); err != nil {
		return 0, err
	}
	return csp.SolveGood(ctx, n), nil
}
