// Package csp is a lint fixture: its import path ends in
// internal/csp, so the determinism, ctxdiscipline and floateq
// analyzers all apply. Every planted violation carries a trailing
// `// want <analyzer> "<substring>"` expectation consumed by
// TestFixtureDiagnostics.
package csp

import (
	"context"
	"math/rand"
	"sort"
	"time"
)

// SolveBad is an exported solver entry point missing its context.
func SolveBad(n int) int { // want ctxdiscipline "SolveBad must take a context.Context"
	stamp := time.Now()  // want determinism "time.Now is nondeterministic"
	draw := rand.Intn(n) // want determinism "top-level math/rand.Intn" // want rngflow "top-level math/rand.Intn"
	return stamp.Nanosecond() + draw
}

// sharedRNG is a package-level generator: seeded or not, it is shared
// mutable state, so every call-site use is a provenance violation.
var sharedRNG = rand.New(rand.NewSource(1))

func drawShared(n int) int {
	return sharedRNG.Intn(n) // want rngflow "package-level generator"
}

func drawUnseeded(n int) int {
	var rng *rand.Rand
	return rng.Intn(n) // want rngflow "may be used unseeded"
}

// drawThreaded receives the generator as a parameter and passes it on
// through a local copy: both uses trace to the threaded source, clean.
func drawThreaded(rng *rand.Rand, n int) int {
	local := rng
	return local.Intn(n)
}

// SolveGood threads a context and seeds its own generator: clean.
func SolveGood(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	rng := rand.New(rand.NewSource(7))
	return rng.Intn(n)
}

func mint() context.Context {
	return context.Background() // want ctxdiscipline "context.Background inside an internal package"
}

func mapOrder(m map[string]float64) ([]string, float64) {
	var keys []string
	var sum float64
	for k, v := range m {
		keys = append(keys, k) // sorted below: clean
		sum += v               // want determinism "floating-point accumulation into \"sum\""
	}
	sort.Strings(keys)
	var leak []float64
	for _, v := range m {
		leak = append(leak, v) // want determinism "append to \"leak\" inside range over map"
	}
	_ = leak
	return keys, sum
}

func floatCompare(a, b float64) bool {
	if a == b { // want floateq "== on floating-point operands"
		return true
	}
	return a != 0 // want floateq "!= on floating-point operands"
}

func constCompare() bool {
	return 1.5 == 1.5 // both operands constant: clean
}

func suppressed() time.Time {
	//tableseglint:ignore determinism fixture demonstrates the escape hatch
	return time.Now()
}
