// Package core is a lint fixture for the errwrap analyzer: its import
// path ends in internal/core, so the core-boundary sentinel rule
// applies on top of the repo-wide %w-operand rule.
package core

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("core: fixture sentinel")

func wrapWithV(err error) error {
	return fmt.Errorf("inner failure: %v", err) // want errwrap "formatted with %v loses errors.Is classification"
}

// BuildBad hands a bare fmt.Errorf across the core boundary.
func BuildBad(fail bool) error {
	if fail {
		return fmt.Errorf("exploded with no sentinel") // want errwrap "BuildBad returns a fmt.Errorf with no %w"
	}
	return nil
}

// BuildGood wraps the declared sentinel: clean.
func BuildGood(fail bool) error {
	if fail {
		return fmt.Errorf("%w: while building", errSentinel)
	}
	return nil
}

// BuildChained wraps both a sentinel and a callee error (multi-%w):
// clean.
func BuildChained(err error) error {
	return fmt.Errorf("%w: %w", errSentinel, err)
}

// Segmentation mirrors the real engine's journal payload for the
// codecdrift fixture: the artifact lock pins its shape at envelope
// version 1 while the engine fixture's constant is already 2, so the
// drifted digest is sanctioned and must stay silent.
type Segmentation struct {
	Records int      `json:"records"`
	Method  string   `json:"method"`
	Labels  []string `json:"labels"`
}
