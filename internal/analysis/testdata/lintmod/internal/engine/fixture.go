// Package engine is a lint fixture for the CFG-based concurrency
// analyzers: its import path ends in internal/engine, so goroleak,
// lockdiscipline and chancontract all apply (as do the determinism and
// ctxdiscipline scopes, which the fixture deliberately stays clean
// for). Every planted violation carries a trailing
// `// want <analyzer> "<substring>"` expectation consumed by
// TestFixtureDiagnostics; the unannotated shapes are the accepted
// idioms and must stay silent.
package engine

import (
	"context"
	"sync"
)

// Leak launches a goroutine that sends on a channel no consumer is
// guaranteed to drain: no exit proof.
func Leak(sink chan<- int) {
	go func() { // want goroleak "no provable exit path"
		sink <- 1
	}()
}

// Numbers returns a channel its producer never closes: the goroutine
// leaks and every caller ranging the channel strands.
func Numbers(n int) <-chan int {
	ch := make(chan int)
	go func() { // want goroleak "no provable exit path"
		for i := 0; i < n; i++ {
			ch <- i
		}
	}()
	return ch // want chancontract "returns channel ch but never closes it"
}

// Stream is the accepted producer shape: the producing goroutine owns
// the channel, closes it on every path (defer), and selects on
// ctx.Done so cancellation bounds its lifetime. Clean for both
// goroleak and chancontract.
func Stream(ctx context.Context, n int) <-chan int {
	ch := make(chan int)
	go func() {
		defer close(ch)
		for i := 0; i < n; i++ {
			select {
			case ch <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}

// Pump is the accepted worker shape: the goroutine ranges over a
// channel the launcher closes on every path after the launch. Clean.
func Pump(vals []int) int {
	feed := make(chan int)
	sum := make(chan int)
	go func() {
		total := 0
		for v := range feed {
			total += v
		}
		sum <- total
	}()
	for _, v := range vals {
		feed <- v
	}
	close(feed)
	return <-sum
}

// Watch is clean: the goroutine receives from ctx.Done, so
// cancellation bounds its lifetime even though ticks never closes.
func Watch(ctx context.Context, ticks <-chan int) {
	go func() {
		for {
			select {
			case <-ticks:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Park would leak (it ranges a channel nobody provably closes), but
// the monitor is wanted for the process lifetime: the same-line ignore
// directive suppresses the finding.
func Park(beat <-chan int) {
	go func() { //tableseglint:ignore goroleak fixture: process-lifetime monitor
		for range beat {
		}
	}()
}

// Counter is the mutex-discipline fixture receiver.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Bump leaves the mutex held on the early-return path.
func (c *Counter) Bump(limit int) bool {
	c.mu.Lock() // want lockdiscipline "c.mu.Lock is not released on every path"
	if c.n >= limit {
		return false
	}
	c.n++
	c.mu.Unlock()
	return true
}

// Publish blocks on a channel send while holding the mutex: the defer
// releases on every path, but not before the send can park.
func (c *Counter) Publish(out chan<- int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out <- c.n // want lockdiscipline "c.mu held across channel send"
}

// Snapshot copies under the lock and sends after releasing: clean.
func (c *Counter) Snapshot(out chan<- int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	out <- n
}

// Hold blocks while holding the lock by design (the consumer is part
// of the same test harness): the line-above ignore directive
// suppresses the finding.
func (c *Counter) Hold(out chan<- int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//tableseglint:ignore lockdiscipline fixture: consumer is guaranteed ready
	out <- c.n
}

// Finish closes the same channel twice: a latent double-close panic.
func Finish() {
	ch := make(chan int)
	close(ch)
	close(ch) // want chancontract "closed in more than one place"
}

// Drain wrongly closes the channel it consumes: a receiver never owns
// the close.
func Drain(in chan int) int {
	total := 0
	for v := range in {
		total += v
	}
	close(in) // want chancontract "closes channel parameter in"
	return total
}

// Bare carries an ignore directive without a reason, which suppresses
// nothing: the finding must still surface.
func Bare(ch chan int) {
	//tableseglint:ignore chancontract
	close(ch) // want chancontract "closes channel parameter ch"
}

// Merge closes the fan-in output while its forwarder goroutines may
// still be sending: a send-on-closed-channel race.
func Merge(a, b <-chan int) <-chan int {
	out := make(chan int)
	var wg sync.WaitGroup
	wg.Add(2)
	forward := func(in <-chan int) {
		defer wg.Done()
		for v := range in {
			out <- v
		}
	}
	go forward(a)
	go forward(b)
	close(out) // want chancontract "close of out can race sends"
	return out
}

// Engine is the deprecated-API fixture receiver: DefaultConfig retires
// its Run method in favour of StreamTasks. The shapes stay channel- and
// goroutine-free so only the deprecated analyzer speaks here.
type Engine struct {
	total int
}

// Run is the retired batch API. Its own delegation to the replacement
// is a declaration, not a call to Run, so it stays silent.
func (e *Engine) Run(ctx context.Context, n int) int {
	return e.StreamTasks(ctx, n)
}

// StreamTasks is Run's designated replacement.
func (e *Engine) StreamTasks(ctx context.Context, n int) int {
	e.total += n
	return e.total
}

// UseEngine still calls the retired alias; the analyzer points it at
// the replacement.
func UseEngine(ctx context.Context, e *Engine) int {
	return e.Run(ctx, 3) // want deprecated "call to deprecated internal/engine.Engine.Run: use Stream"
}

// UseEngineMigrated calls the replacement: clean.
func UseEngineMigrated(ctx context.Context, e *Engine) int {
	return e.StreamTasks(ctx, 3)
}

// runner is an unrelated type whose same-named method must not match —
// the analyzer resolves receivers through the type checker.
type runner struct{}

func (runner) Run(ctx context.Context, n int) int { return n }

// UseRunner is clean: runner.Run is not Engine.Run.
func UseRunner(ctx context.Context) int {
	var r runner
	return r.Run(ctx, 1)
}

// UseEngineWaived keeps a call on the retired alias deliberately (a
// compatibility shim mid-migration): the ignore directive suppresses
// the finding.
func UseEngineWaived(ctx context.Context, e *Engine) int {
	//tableseglint:ignore deprecated fixture: migration shim exercising the retired path
	return e.Run(ctx, 2)
}

// Gather is the accepted fan-in shape: a dedicated closer joins the
// forwarders (wg.Wait) before closing. Clean for chancontract, and the
// closer goroutine is a joiner, so clean for goroleak too.
func Gather(a, b <-chan int) <-chan int {
	out := make(chan int)
	var wg sync.WaitGroup
	wg.Add(2)
	forward := func(in <-chan int) {
		defer wg.Done()
		for v := range in {
			out <- v
		}
	}
	go forward(a)
	go forward(b)
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}
