package engine

import "lintfixture/internal/core"

// resultEnvelopeVersion is the codecdrift negative control: the
// fixture lock pins core.Segmentation's digest at version 1 and that
// digest deliberately disagrees with the live shape, but this constant
// is already bumped to 2 — a shape change with a version bump is the
// sanctioned evolution path, so the analyzer must stay silent here.
const resultEnvelopeVersion = 2

// envelopeSeg forces the import: the bound type must be reachable from
// the package defining the constant, exactly as in the real engine.
var envelopeSeg core.Segmentation

var _ = envelopeSeg
