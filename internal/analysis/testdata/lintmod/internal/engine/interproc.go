package engine

// Fixtures for the interprocedural analyzers: ctxflow (a held context
// must reach every may-block callee) and lockflow (no mutex held
// across a call to a helper whose summary is may-block). The helpers
// below hide the blocking operation one call deep, exactly the blind
// spot the intra-procedural ctxdiscipline/lockdiscipline cannot see.

import (
	"context"
	"sync"
	"time"
)

type worker struct {
	ctx  context.Context // stored context: the classic threading smell
	done chan struct{}
	wg   sync.WaitGroup
	mu   sync.Mutex
	n    int
}

// awaitDone parks until the worker finishes; context-aware.
func awaitDone(ctx context.Context, w *worker) {
	select {
	case <-w.done:
	case <-ctx.Done():
	}
}

// joinAll parks on the WaitGroup and accepts no context.
func (w *worker) joinAll() {
	w.wg.Wait()
}

// bump is a short critical section: lock-only helpers need no context.
func (w *worker) bump() {
	w.mu.Lock()
	w.n++
	w.mu.Unlock()
}

func severed(ctx context.Context, w *worker) {
	w.joinAll() // want ctxflow "accepts no context"
}

func dropped(ctx context.Context, w *worker) {
	awaitDone(w.ctx, w) // want ctxflow "receives no context derived"
}

func sleepy(ctx context.Context) {
	time.Sleep(time.Millisecond) // want ctxflow "bare time.Sleep"
}

func threaded(ctx context.Context, w *worker) {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	awaitDone(child, w) // ok: a derived context reaches the park
	w.bump()            // ok: lock-only helpers are not cancellation-relevant
}

func warmJoin(ctx context.Context, w *worker) {
	w.joinAll() //tableseglint:ignore ctxflow the pool is empty before Serve runs, so this join returns immediately
}

// recvDone hides a channel receive one call deep.
func (w *worker) recvDone() {
	<-w.done
}

func lockAcrossHelper(w *worker) {
	w.mu.Lock()
	w.recvDone() // want lockflow "may block"
	w.mu.Unlock()
}

func lockReleasedFirst(w *worker) {
	w.mu.Lock()
	w.n++
	w.mu.Unlock()
	w.recvDone() // ok: the lock is released before the blocking call
}

func lockHeldByDesign(w *worker) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.recvDone() //tableseglint:ignore lockflow w.done is closed before this is reachable, so the receive cannot park
}
