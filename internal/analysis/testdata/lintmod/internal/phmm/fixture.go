// Package phmm is a lint fixture for the probflow analyzer: its
// import path ends in internal/phmm, so float values flowing from the
// configured probability sources (alpha, beta, gamma, ... — matched by
// name) must pass a zeroProb-style sanitizer or a constant guard
// before reaching a division, math.Log or two-sided comparison sink.
package phmm

import "math"

// zeroProb mirrors the real package's sanitizer; probflow recognizes
// it by name.
func zeroProb(p float64) bool { return p <= 0 }

// NormalizeBad divides by an unguarded probability mass: the sum of a
// gamma row can underflow to exactly zero.
func NormalizeBad(gamma []float64) []float64 {
	total := 0.0
	for _, v := range gamma {
		total += v
	}
	out := make([]float64, len(gamma))
	for i, v := range gamma {
		out[i] = v / total // want probflow "dividing by probability-tainted total"
	}
	return out
}

// NormalizeGood performs the same normalization behind the sanitizer:
// clean.
func NormalizeGood(gamma []float64) []float64 {
	total := 0.0
	for _, v := range gamma {
		total += v
	}
	if zeroProb(total) {
		return nil
	}
	out := make([]float64, len(gamma))
	for i, v := range gamma {
		out[i] = v / total
	}
	return out
}

// logLikBad takes the log of a possibly-underflowed forward mass.
func logLikBad(alpha []float64) float64 {
	s := 0.0
	for _, v := range alpha {
		s += v
	}
	return math.Log(s) // want probflow "math.Log of probability-tainted s"
}

// logLikGood guards against the underflow with a constant comparison
// before taking the log: clean.
func logLikGood(alpha []float64) float64 {
	s := 0.0
	for _, v := range alpha {
		s += v
	}
	if s <= 0 {
		return math.Inf(-1)
	}
	return math.Log(s)
}

// argmaxBad compares two linear-space probabilities; when both have
// underflowed to zero the tie is resolved arbitrarily.
func argmaxBad(alpha, beta []float64) bool {
	return alpha[0] > beta[0] // want probflow "comparing two probability-tainted values"
}
