// Package token is the golden fixture for the escape/borrow layer:
// borrowflow (this import-path suffix is in the default borrow
// packages), poolsafe (unscoped), and hotalloc (the fixture module's
// lint/hotpaths.conf declares this package hot). Each positive case
// carries a trailing `// want` annotation; the negatives prove the
// copy-out and deferred-Put shapes stay silent.
package token

import (
	"context"
	"fmt"
	"sync"
)

// retained is the package-level sink the positive cases leak into.
var retained []byte

// holder models caller-owned storage reached through a parameter.
type holder struct{ view []byte }

// Slice is a stage artifact wrapping a byte view.
type Slice struct{ Raw []byte }

// --- borrowflow: stores that outlive the call ---

// keepGlobal parks the borrowed view in package-level storage.
func keepGlobal(b []byte) {
	retained = b // want borrowflow "is stored in package-level storage"
}

// keepField stores a sub-slice through a parameter: the caller's
// struct now aliases the source buffer.
func keepField(h *holder, b []byte) {
	h.view = b[2:] // want borrowflow "is stored through storage that outlives the call"
}

// keepSelect sends the view away through one select arm — the borrow
// survives the branch join.
func keepSelect(ch chan []byte, done chan struct{}, b []byte) {
	sub := b[4:]
	select {
	case ch <- sub: // want borrowflow "is sent on a channel"
	case <-done:
	}
}

// keepGoArg hands the borrow to a goroutine by argument.
func keepGoArg(b []byte) {
	go consume(b) // want borrowflow "is handed to a goroutine"
}

// keepGoClosure captures the borrow in a goroutine closure instead of
// passing it — a different AST shape, the same leak.
func keepGoClosure(b []byte) {
	go func() { // want borrowflow "is captured by a goroutine closure"
		consume(b)
	}()
}

// consume only measures the view; it neither stores nor returns it.
func consume(b []byte) { _ = len(b) }

// retainDeep stores its parameter; handoff below is caught at the call
// site through retainDeep's escape summary, not by re-analyzing it.
func retainDeep(b []byte) {
	retained = b // want borrowflow "is stored in package-level storage"
}

func handoff(b []byte) {
	retainDeep(b[8:]) // want borrowflow "which retains it"
}

// CutRaw is an exported stage-shaped function returning a sub-slice of
// a sub-slice of its input: a stage artifact must copy out instead.
func CutRaw(ctx context.Context, b []byte) (Slice, error) {
	head := b[1:]
	cell := head[2:4]
	return Slice{Raw: cell}, nil // want borrowflow "is returned across the stage boundary"
}

// CopyRaw is the same boundary with the mandated copy-out: silent.
func CopyRaw(ctx context.Context, b []byte) (Slice, error) {
	out := make([]byte, len(b))
	copy(out, b)
	return Slice{Raw: out}, nil
}

// appendCopy severs provenance by appending onto fresh storage.
func appendCopy(b []byte) {
	retained = append([]byte(nil), b...)
}

// view returns a sub-slice from an unexported helper: that only lifts
// the borrow to the caller and is not a finding.
func view(b []byte) []byte { return b[1:] }

// --- poolsafe: checkout discipline ---

// bufPool hands out scratch buffers.
var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

// getPutDeferred checks out, defers the Put, and returns early on one
// path: the deferred Put covers every exit, so this is silent.
func getPutDeferred(n int) int {
	buf := bufPool.Get().([]byte)
	defer bufPool.Put(buf)
	if n == 0 {
		return 0
	}
	buf = append(buf, byte(n))
	return len(buf)
}

// putSometimes misses the Put when n is even.
func putSometimes(n int) {
	buf := bufPool.Get().([]byte) // want poolsafe "does not reach bufPool.Put on every path"
	if n%2 == 1 {
		bufPool.Put(buf)
	}
}

// leakCheckout publishes the checkout while it is still checked out.
func leakCheckout() {
	buf := bufPool.Get().([]byte)
	retained = buf // want poolsafe "is stored in package-level storage"
	bufPool.Put(buf)
}

// useAfterPut touches the buffer after returning it to the pool.
func useAfterPut() byte {
	buf := bufPool.Get().([]byte)
	buf = append(buf, 1)
	bufPool.Put(buf)
	return buf[0] // want poolsafe "used after bufPool.Put"
}

// --- hotalloc: declared-hot-path allocation policy ---

// Render converts at a stage boundary: borrowflow is satisfied (the
// string is a copy) but the conversion itself allocates.
func Render(ctx context.Context, b []byte) (string, error) {
	return string(b), nil // want hotalloc "hot-path allocation (string-conv)"
}

func rebytes(s string) []byte {
	return []byte(s) // want hotalloc "hot-path allocation (bytes-conv)"
}

func describe(n int) string {
	return fmt.Sprintf("token-%d", n) // want hotalloc "hot-path allocation (sprintf)"
}

// box forces its argument into an interface.
func box(v any) any { return v }

func boxFloat(f float64) any {
	return box(f) // want hotalloc "hot-path allocation (iface-box)"
}

// gather appends in a loop to a slice declared without capacity.
func gather(words []string) []string {
	var out []string
	for _, w := range words {
		out = append(out, w) // want hotalloc "hot-path allocation (append-loop)"
	}
	return out
}

// gatherPrealloc hints the capacity up front: silent.
func gatherPrealloc(words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		out = append(out, w)
	}
	return out
}
