// Package util is the negative control: it is neither an internal
// package nor in any analyzer's package set, so none of the planted
// patterns below may produce a diagnostic.
package util

import "time"

func Stamp() time.Time { return time.Now() }

func Close(a, b float64) bool { return a == b }
