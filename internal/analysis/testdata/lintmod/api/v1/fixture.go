// Package apiv1 is a lint fixture for the wiredrift analyzer: its
// import path ends in api/v1, so every exported type is held to the
// committed lint/schema-apiv1.lock in this fixture module. Each
// planted drift — a removed field, a retag, a retype, a reorder, an
// unrecorded addition, a changed underlying type, a vanished locked
// type — carries a trailing `// want` expectation; Clean matches its
// locked entry exactly and must stay silent, as must the unexported
// helper (only exported types are wire surface).
package apiv1 // want wiredrift "locked wire type lintfixture/api/v1.Vanished no longer exists"

// Clean matches its locked entry field for field: silent.
type Clean struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// Removed lost its locked field Gone: within v1 that is a break, not
// an evolution.
type Removed struct { // want wiredrift "field lintfixture/api/v1.Removed.Gone (json \"gone\") removed from the v1 wire surface"
	Kept string `json:"kept"`
}

// Retagged keeps the field but renames it on the wire.
type Retagged struct {
	Name string `json:"renamed"` // want wiredrift "json tag of lintfixture/api/v1.Retagged.Name changed \"name\" -> \"renamed\""
}

// Retyped keeps name and tag but changes the payload type.
type Retyped struct {
	Count string `json:"count"` // want wiredrift "type of lintfixture/api/v1.Retyped.Count changed int -> string"
}

// Extended grew a field the lock has not recorded yet: legal within
// v1, but the lock must be regenerated so the diff is the audit trail.
type Extended struct {
	Base string `json:"base"`
	New  int    `json:"new"` // want wiredrift "new field lintfixture/api/v1.Extended.New extends the v1 wire surface"
}

// Shuffled declares its locked fields in a different order: JSON
// output order is declaration order, so this is drift too.
type Shuffled struct { // want wiredrift "wire fields of lintfixture/api/v1.Shuffled reordered relative to the lock"
	B int `json:"b"`
	A int `json:"a"`
}

// Level changed its underlying type relative to the lock.
type Level string // want wiredrift "underlying type of lintfixture/api/v1.Level changed int64 -> string"

// Fresh is a brand-new exported type with no locked entry.
type Fresh struct { // want wiredrift "wire type lintfixture/api/v1.Fresh is not in lint/schema-apiv1.lock"
	ID string `json:"id"`
}

// helper is unexported: not wire surface, no finding.
type helper struct {
	raw []byte
}

// touch keeps helper referenced.
func touch(h helper) int { return len(h.raw) }

var _ = touch
