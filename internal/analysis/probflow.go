package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"tableseg/internal/analysis/cfg"
	"tableseg/internal/analysis/dataflow"
)

// ProbFlow returns the analyzer guarding the EM recursion's numerics.
// Probabilities in the pHMM shrink multiplicatively — forward–backward
// messages, emission rows, transition and period tables — so any of
// them can underflow to exactly zero. Dividing by such a value yields
// Inf/NaN, math.Log yields -Inf, and an ordered comparison of two
// underflowed values ties arbitrarily; all three corrupt Tables 1–4
// silently instead of failing loudly. probflow taints the model tables
// and messages (by configured name) plus the probability-returning
// helpers, propagates the taint through assignments, arithmetic,
// composite literals and range bindings with the solver in
// internal/analysis/dataflow, and reports any tainted value reaching a
// division, math.Log or two-sided comparison sink that was not first
// sanitized by a zeroProb-style call or a guard comparison against a
// constant (`if total <= 0`). Sanitizing is branch-insensitive — the
// CFG has no labeled true/false edges — which errs toward accepting
// guarded code rather than inventing findings.
func ProbFlow() *Analyzer {
	a := &Analyzer{
		Name: "probflow",
		Doc:  "forbid probability-tainted floats from reaching division, math.Log or comparison sinks unguarded",
	}
	a.Run = func(pass *Pass) {
		if !matchesAny(pass.Pkg.Path, pass.Cfg.ProbPkgs) {
			return
		}
		sources := map[string]int{}
		for i, name := range pass.Cfg.ProbSources {
			sources[name] = i % 64
		}
		sourceCalls := map[string]bool{}
		for _, name := range pass.Cfg.ProbSourceCalls {
			sourceCalls[name] = true
		}
		sanitizers := map[string]bool{}
		for _, name := range pass.Cfg.ProbSanitizers {
			sanitizers[name] = true
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkProbFlow(pass, fd.Body, sources, sourceCalls, sanitizers)
			}
		}
	}
	return a
}

// checkProbFlow runs the taint fixpoint over one function body and
// scans every node for sinks under the fact holding there.
func checkProbFlow(pass *Pass, body *ast.BlockStmt, sources map[string]int, sourceCalls, sanitizers map[string]bool) {
	info := pass.Pkg.Info
	g := cfg.New(body)

	calleeName := func(call *ast.CallExpr) string {
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name
		case *ast.SelectorExpr:
			return fun.Sel.Name
		}
		return ""
	}
	tt := dataflow.NewTaint(body, g, dataflow.TaintConfig{
		Info: info,
		ExprSource: func(e ast.Expr) dataflow.Mask {
			var name string
			switch e := e.(type) {
			case *ast.Ident:
				name = e.Name
			case *ast.SelectorExpr:
				name = e.Sel.Name
			}
			if bit, ok := sources[name]; ok {
				return 1 << bit
			}
			return 0
		},
		ResultTaint: func(call *ast.CallExpr) dataflow.Mask {
			if sourceCalls[calleeName(call)] {
				return 1 << 63
			}
			return 0
		},
		SanitizerCall: func(call *ast.CallExpr) bool {
			return sanitizers[calleeName(call)]
		},
		PropagateBinary:  true,
		GuardComparisons: true,
		TypeOK:           floatCarrying,
	})

	reported := map[token.Pos]bool{}
	reportf := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}

	tt.Walk(func(_ *cfg.Block, n ast.Node, fact map[types.Object]dataflow.Mask) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.BinaryExpr:
				switch {
				case m.Op == token.QUO:
					if tt.Mask(fact, m.Y) != 0 {
						reportf(m.Y.Pos(), "dividing by probability-tainted %s, which may have underflowed to zero; guard with zeroProb first", exprText(pass.Pkg.Fset, m.Y))
					}
				case isOrderedCmp(m.Op):
					if tt.Mask(fact, m.X) != 0 && tt.Mask(fact, m.Y) != 0 {
						reportf(m.Pos(), "comparing two probability-tainted values (%s, %s) in linear space; both may have underflowed — compare in log space or guard with zeroProb", exprText(pass.Pkg.Fset, m.X), exprText(pass.Pkg.Fset, m.Y))
					}
				}
			case *ast.AssignStmt:
				if m.Tok == token.QUO_ASSIGN && len(m.Rhs) == 1 {
					if tt.Mask(fact, m.Rhs[0]) != 0 {
						reportf(m.Rhs[0].Pos(), "dividing by probability-tainted %s, which may have underflowed to zero; guard with zeroProb first", exprText(pass.Pkg.Fset, m.Rhs[0]))
					}
				}
			case *ast.CallExpr:
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && pass.pkgNameOf(id) == "math" && sel.Sel.Name == "Log" {
						if len(m.Args) == 1 && tt.Mask(fact, m.Args[0]) != 0 {
							reportf(m.Args[0].Pos(), "math.Log of probability-tainted %s, which may have underflowed to zero (-Inf); guard with zeroProb or stay in log space", exprText(pass.Pkg.Fset, m.Args[0]))
						}
					}
				}
			}
			return true
		})
	})
}

// floatCarrying reports whether t can hold probability mass: a float,
// or a slice/array/map/pointer chain ending in one. Structs do not
// qualify — tainting whole stat structs would drown the analysis.
func floatCarrying(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Slice:
		return floatCarrying(u.Elem())
	case *types.Array:
		return floatCarrying(u.Elem())
	case *types.Map:
		return floatCarrying(u.Elem())
	case *types.Pointer:
		return floatCarrying(u.Elem())
	}
	return false
}

func isOrderedCmp(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// exprText renders an expression for a diagnostic message.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "expression"
	}
	return buf.String()
}
