package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"tableseg/internal/analysis/cfg"
)

// GoroLeak returns the analyzer enforcing provable goroutine exits:
// every `go func(){...}` launched inside an exported function must
// have an exit path the control-flow graph can certify, because a
// leaked goroutine pins its captures (caches, channels, solver state)
// for the process lifetime and — worse for this reproduction — keeps
// racing the next batch's fan-in. A goroutine is accepted when one of
// the following holds:
//
//  1. it ranges over (or receives from) a channel that is provably
//     closed — a close(ch) that lies on every CFG path of the body it
//     appears in (defer close(ch) qualifies), whether that body is
//     the launching function's or a sibling goroutine's;
//  2. it receives from ctx.Done() (directly or in a select case), so
//     cancellation bounds its lifetime;
//  3. it performs no potentially-blocking operation at all and its
//     body's CFG reaches the function exit (straight-line work);
//  4. it is a joiner: its only blocking operations are
//     sync.WaitGroup.Wait calls, so it exits when the goroutines it
//     joins exit (each of which is checked on its own).
//
// The check is intra-procedural: only goroutines launched as function
// literals are analyzed (a named function launched with `go` would
// need cross-function analysis and is left to the race detector).
func GoroLeak() *Analyzer {
	a := &Analyzer{
		Name: "goroleak",
		Doc:  "require a provable exit path for every goroutine launched in an exported function",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !ast.IsExported(fn.Name.Name) {
					continue
				}
				checkGoroutines(pass, fn)
			}
		}
	}
	return a
}

func checkGoroutines(pass *Pass, fn *ast.FuncDecl) {
	exempt := nonBlockingComms(fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		if why := goroutineExitProof(pass, fn, g, lit, exempt); why != "" {
			pass.Reportf(g.Pos(), "goroutine launched in exported %s has no provable exit path (%s); range over a channel closed on all paths, or select on ctx.Done()", fn.Name.Name, why)
		}
		return true
	})
}

// goroutineExitProof returns "" when the goroutine body has a provable
// exit, or a short reason it does not.
func goroutineExitProof(pass *Pass, fn *ast.FuncDecl, g *ast.GoStmt, lit *ast.FuncLit, exempt map[ast.Node]bool) string {
	// Rule 2: a ctx.Done() receive bounds the goroutine's lifetime.
	if receivesCtxDone(pass, lit.Body) {
		return ""
	}
	// Rule 1: range over / receive from a provably-closed channel.
	closedProof := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if closedProof {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == lit // descend into the goroutine's own body only
		case *ast.RangeStmt:
			if obj := channelObject(pass, n.X); obj != nil && channelClosedOnAllPaths(pass, fn, g, obj) {
				closedProof = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := channelObject(pass, n.X); obj != nil && channelClosedOnAllPaths(pass, fn, g, obj) {
					closedProof = true
				}
			}
		}
		return true
	})
	if closedProof {
		return ""
	}
	ops := pass.collectBlocking(lit.Body, exempt)
	// Rule 3: nothing can block and the body terminates.
	if len(ops) == 0 {
		body := cfg.New(lit.Body)
		if body.Reaches(body.Entry) {
			return ""
		}
		return "body loops forever without blocking or exiting"
	}
	// Rule 4: a joiner only waits for goroutines that are themselves
	// checked.
	joiner := true
	for _, op := range ops {
		if op.what != "sync.WaitGroup.Wait" {
			joiner = false
			break
		}
	}
	if joiner {
		return ""
	}
	return "first blocking operation is a " + ops[0].what
}

// receivesCtxDone reports whether body (excluding nested function
// literals) receives from the Done channel of a context.Context.
func receivesCtxDone(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				return true
			}
			if t := pass.Pkg.Info.TypeOf(sel.X); t != nil && isContextType(t) {
				found = true
			}
		}
		return true
	})
	return found
}

// channelObject resolves e to the object of a channel-typed
// identifier, or nil.
func channelObject(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Pkg.Info.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
		return nil
	}
	return obj
}

// channelClosedOnAllPaths reports whether some close(ch) site provably
// runs: it lies on every CFG path of the body it appears in. A site in
// the launching function's own body must cover every path from the go
// statement to the function exit; a site inside another function
// literal (a sibling goroutine, whose own termination goroleak checks
// separately) must cover every path of that literal's body from its
// entry. defer close(ch) registered on all paths qualifies either way,
// since the registration statement is a CFG node.
func channelClosedOnAllPaths(pass *Pass, fn *ast.FuncDecl, g *ast.GoStmt, ch types.Object) bool {
	isClose := func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = n.Call
		case *ast.CallExpr:
			call = n
		}
		if call == nil || len(call.Args) != 1 {
			return false
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "close" {
			return false
		}
		if b, ok := pass.Pkg.Info.ObjectOf(fun).(*types.Builtin); !ok || b.Name() != "close" {
			return false
		}
		id, ok := call.Args[0].(*ast.Ident)
		return ok && pass.Pkg.Info.ObjectOf(id) == ch
	}

	// Contexts holding at least one close site: the outer body and/or
	// specific function literals.
	type closeSite struct {
		lit *ast.FuncLit // nil: in fn's own body
	}
	var sites []closeSite
	var litStack []*ast.FuncLit
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litStack = append(litStack, n)
			ast.Inspect(n.Body, walk)
			litStack = litStack[:len(litStack)-1]
			return false
		case *ast.CallExpr:
			if isClose(n) {
				var lit *ast.FuncLit
				if len(litStack) > 0 {
					lit = litStack[len(litStack)-1]
				}
				sites = append(sites, closeSite{lit: lit})
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)

	// The go statement's own context: the innermost literal containing
	// it, or the outer body.
	goLit := innermostFuncLit(fn.Body, g.Pos())

	tried := map[*ast.FuncLit]bool{}
	for _, s := range sites {
		if tried[s.lit] {
			continue // one graph query per context covers all its sites
		}
		tried[s.lit] = true
		var graph *cfg.Graph
		from, idx := (*cfg.Block)(nil), -1
		if s.lit == nil {
			graph = cfg.New(fn.Body)
			if goLit == nil {
				// Close site shares the launching body: it must cover
				// every path from the launch onward.
				from, idx = graph.Find(g)
			} else {
				from, idx = graph.Entry, -1
			}
		} else {
			graph = cfg.New(s.lit.Body)
			from, idx = graph.Entry, -1
		}
		if from == nil {
			continue
		}
		if graph.AllPathsContain(from, idx, isClose) {
			return true
		}
	}
	return false
}

// innermostFuncLit returns the innermost function literal in root
// whose extent contains pos, or nil.
func innermostFuncLit(root ast.Node, pos token.Pos) *ast.FuncLit {
	var found *ast.FuncLit
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if lit.Pos() <= pos && pos < lit.End() {
			found = lit // keep descending: innermost wins
			return true
		}
		return false
	})
	return found
}
