package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"tableseg/internal/analysis/cfg"
)

// Liveness computes live variables per block: Out[b] is the set of
// variables whose current value may still be read on some path from
// the start of b (Backward direction flips In/Out semantics — see
// Result). It is the suite's backward instantiation of Solve and is
// exercised by tests to keep the solver honest in both directions.
type Liveness struct {
	Graph *cfg.Graph
	res   Result[liveFact]
	info  *types.Info
}

type liveFact map[types.Object]bool

// NewLiveness solves live variables for body under graph g.
func NewLiveness(body *ast.BlockStmt, g *cfg.Graph, info *types.Info) *Liveness {
	l := &Liveness{Graph: g, info: info}
	l.res = Solve(g, Problem[liveFact]{
		Dir:      Backward,
		Boundary: func() liveFact { return liveFact{} },
		Init:     func() liveFact { return liveFact{} },
		Merge: func(dst, src liveFact) liveFact {
			for obj := range src {
				dst[obj] = true
			}
			return dst
		},
		Equal: func(a, b liveFact) bool {
			if len(a) != len(b) {
				return false
			}
			for obj := range a {
				if !b[obj] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in liveFact) liveFact {
			f := liveFact{}
			for obj := range in {
				f[obj] = true
			}
			// Backward: replay the block's nodes last to first.
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				l.applyNode(f, b.Nodes[i])
			}
			return f
		},
	})
	return l
}

// LiveAtEntry reports whether obj is live when block b starts
// executing.
func (l *Liveness) LiveAtEntry(b *cfg.Block, obj types.Object) bool {
	return l.res.Out[b.Index][obj]
}

// applyNode applies one node backward: kill definitions, then add
// uses (so x = x+1 keeps x live before the node).
func (l *Liveness) applyNode(f liveFact, n ast.Node) {
	if a, ok := n.(*ast.AssignStmt); ok && (a.Tok == token.ASSIGN || a.Tok == token.DEFINE) {
		for _, lhs := range a.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := l.info.ObjectOf(id); obj != nil {
					delete(f, obj)
				}
			}
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj, ok := l.info.Uses[m].(*types.Var); ok {
				if !isWriteTarget(n, m) {
					f[obj] = true
				}
			}
		}
		return true
	})
}

// isWriteTarget reports whether id is a pure write target inside n (LHS
// identifier of a plain assignment or short declaration).
func isWriteTarget(n ast.Node, id *ast.Ident) bool {
	a, ok := n.(*ast.AssignStmt)
	if !ok || (a.Tok != token.ASSIGN && a.Tok != token.DEFINE) {
		return false
	}
	for _, lhs := range a.Lhs {
		if lhs == id {
			return true
		}
	}
	return false
}
