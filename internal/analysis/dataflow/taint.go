package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"tableseg/internal/analysis/cfg"
)

// Mask is a provenance bitmask: each configured source contributes one
// bit, so a sink report can name exactly which sources reach it.
type Mask uint64

// TaintConfig parameterizes one taint analysis over a function body.
// The zero value of every optional hook means "off".
type TaintConfig struct {
	// Info is the package's type information (required).
	Info *types.Info

	// Entry seeds objects (parameters, receivers, captures) with taint
	// at function entry.
	Entry map[types.Object]Mask

	// ExprSource returns the intrinsic taint of an expression — e.g. a
	// selector like st.colMass naming a probability table — independent
	// of dataflow. Optional.
	ExprSource func(e ast.Expr) Mask

	// ResultTaint returns the taint of a call's results by summary —
	// e.g. emitType(...) yields a probability. Optional.
	ResultTaint func(call *ast.CallExpr) Mask

	// LiftCall adds summary-lifted taint to a non-conversion call's
	// result: it receives the call plus an evaluator for argument masks
	// under the current fact, and returns the mask the result inherits.
	// This is the hook through which the escape layer maps "callee
	// returns a view of parameter i" onto "the result carries argument
	// i's provenance" — unlike ResultTaint it can see what actually
	// flowed into each argument. Evaluated in addition to ResultTaint.
	// Optional.
	LiftCall func(call *ast.CallExpr, argMask func(ast.Expr) Mask) Mask

	// SanitizerCall reports whether a call is a sanitizer: its result
	// is clean, and the objects passed as plain identifier arguments
	// are killed after the node (branch-insensitively: the CFG has no
	// labeled true/false edges, so `if zeroProb(p) { continue }` clears
	// p on both paths — conservative toward fewer false positives).
	// Optional.
	SanitizerCall func(call *ast.CallExpr) bool

	// PropagateCalls, when set, taints a non-sanitizer call's results
	// with the union of its argument masks. When unset, calls are a
	// clean boundary (summaries via ResultTaint only).
	PropagateCalls bool

	// PropagateBinary, when set, taints arithmetic results with the
	// union of the operand masks. Comparisons never carry taint.
	PropagateBinary bool

	// GuardComparisons, when set, treats an ordered comparison of a
	// plain identifier against a constant (p <= 0, total > eps) as a
	// sanitizer for that identifier, same branch-insensitive caveat as
	// SanitizerCall.
	GuardComparisons bool

	// TypeOK restricts taint to values of matching type; expressions
	// whose type fails the predicate never carry taint. Nil means all
	// types qualify.
	TypeOK func(t types.Type) bool

	// ElemCopyRefs, when set, makes the builtin copy(dst, src) taint
	// dst only when the element type itself carries references
	// (CarriesRefs); a copy of scalar elements is a true deep copy.
	ElemCopyRefs bool
}

// Taint is the per-function taint fixpoint. Facts map tainted objects
// to the provenance mask of the sources that may reach them.
type Taint struct {
	Graph *cfg.Graph

	cfg TaintConfig
	res Result[taintFact]
	// rangeOf maps a RangeStmt's operand — the node cfg.New places in
	// the loop head — to its statement, so key/value binding is part of
	// the fixpoint transfer.
	rangeOf map[ast.Node]*ast.RangeStmt
}

type taintFact map[types.Object]Mask

// NewTaint solves the taint problem for body under config tc.
func NewTaint(body *ast.BlockStmt, g *cfg.Graph, tc TaintConfig) *Taint {
	t := &Taint{Graph: g, cfg: tc, rangeOf: map[ast.Node]*ast.RangeStmt{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			t.rangeOf[n.X] = n
		}
		return true
	})
	t.res = Solve(g, Problem[taintFact]{
		Dir: Forward,
		Boundary: func() taintFact {
			f := taintFact{}
			for obj, m := range tc.Entry {
				f[obj] = m
			}
			return f
		},
		Init: func() taintFact { return taintFact{} },
		Merge: func(dst, src taintFact) taintFact {
			for obj, m := range src {
				dst[obj] |= m
			}
			return dst
		},
		Equal: func(a, b taintFact) bool {
			if len(a) != len(b) {
				return false
			}
			for obj, m := range a {
				if b[obj] != m {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in taintFact) taintFact {
			f := taintFact{}
			for obj, m := range in {
				f[obj] = m
			}
			for _, n := range b.Nodes {
				t.applyNode(f, n)
			}
			return f
		},
	})
	return t
}

// Walk replays every block's nodes in order, invoking fn with the fact
// holding *before* each node. Blocks are visited in index order, so the
// callback sequence is deterministic.
func (t *Taint) Walk(fn func(b *cfg.Block, n ast.Node, fact map[types.Object]Mask)) {
	for _, b := range t.Graph.Blocks {
		f := taintFact{}
		for obj, m := range t.res.In[b.Index] {
			f[obj] = m
		}
		for _, n := range b.Nodes {
			fn(b, n, f)
			t.applyNode(f, n)
		}
	}
}

// Mask evaluates the taint of expression e under fact.
func (t *Taint) Mask(fact map[types.Object]Mask, e ast.Expr) Mask {
	return t.exprMask(taintFact(fact), e)
}

// typeOK applies the TypeOK filter to e's type.
func (t *Taint) typeOK(e ast.Expr) bool {
	if t.cfg.TypeOK == nil {
		return true
	}
	tv, ok := t.cfg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return t.cfg.TypeOK(tv.Type)
}

// exprMask computes the provenance mask of one expression under fact.
func (t *Taint) exprMask(fact taintFact, e ast.Expr) Mask {
	if e == nil {
		return 0
	}
	var src Mask
	if t.cfg.ExprSource != nil && t.typeOK(e) {
		src = t.cfg.ExprSource(e)
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := t.cfg.Info.ObjectOf(e); obj != nil && t.typeOK(e) {
			return src | fact[obj]
		}
		return src
	case *ast.SelectorExpr:
		// A field read carries the base's taint (struct containment)
		// plus any intrinsic source mask of the selector itself.
		if !t.typeOK(e) {
			return src
		}
		return src | t.exprMask(fact, e.X)
	case *ast.IndexExpr:
		if !t.typeOK(e) {
			return src
		}
		return src | t.exprMask(fact, e.X)
	case *ast.CallExpr:
		if t.cfg.SanitizerCall != nil && t.cfg.SanitizerCall(e) {
			return 0
		}
		var m Mask
		if t.cfg.ResultTaint != nil {
			m = t.cfg.ResultTaint(e)
		}
		if conv, operand := t.conversionOperand(e); conv {
			return src | m | t.exprMask(fact, operand)
		}
		if t.cfg.LiftCall != nil {
			m |= t.cfg.LiftCall(e, func(a ast.Expr) Mask { return t.exprMask(fact, a) })
		}
		if id, ok := e.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "append":
				if _, isBuiltin := t.cfg.Info.ObjectOf(id).(*types.Builtin); isBuiltin && len(e.Args) > 0 {
					m |= t.exprMask(fact, e.Args[0])
					for _, a := range e.Args[1:] {
						if !t.cfg.ElemCopyRefs || t.elemCarriesRefs(e.Args[0]) {
							m |= t.exprMask(fact, a)
						}
					}
					return src | m
				}
			case "min", "max":
				if _, isBuiltin := t.cfg.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
					for _, a := range e.Args {
						m |= t.exprMask(fact, a)
					}
					return src | m
				}
			}
		}
		if t.cfg.PropagateCalls {
			for _, a := range e.Args {
				m |= t.exprMask(fact, a)
			}
		}
		return src | m
	case *ast.BinaryExpr:
		if isComparison(e.Op) {
			return 0
		}
		if !t.cfg.PropagateBinary {
			return src
		}
		return src | t.exprMask(fact, e.X) | t.exprMask(fact, e.Y)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return src | t.exprMask(fact, e.X)
		}
		return src | t.exprMask(fact, e.X)
	case *ast.ParenExpr:
		return src | t.exprMask(fact, e.X)
	case *ast.StarExpr:
		return src | t.exprMask(fact, e.X)
	case *ast.SliceExpr:
		return src | t.exprMask(fact, e.X)
	case *ast.TypeAssertExpr:
		return src | t.exprMask(fact, e.X)
	case *ast.CompositeLit:
		var m Mask
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= t.exprMask(fact, kv.Value)
			} else {
				m |= t.exprMask(fact, el)
			}
		}
		return src | m
	}
	return src
}

// conversionOperand reports whether call is a type conversion and, if
// so, returns its single operand.
func (t *Taint) conversionOperand(call *ast.CallExpr) (bool, ast.Expr) {
	if len(call.Args) != 1 {
		return false, nil
	}
	tv, ok := t.cfg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false, nil
	}
	return true, call.Args[0]
}

// elemCarriesRefs reports whether the element type of e (a slice or
// array expression) itself carries references.
func (t *Taint) elemCarriesRefs(e ast.Expr) bool {
	tv, ok := t.cfg.Info.Types[e]
	if !ok || tv.Type == nil {
		return true // unknown: stay conservative
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice:
		return CarriesRefs(u.Elem())
	case *types.Array:
		return CarriesRefs(u.Elem())
	}
	return true
}

// applyNode advances fact f over one CFG node.
func (t *Taint) applyNode(f taintFact, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.applyAssign(f, n)
	case *ast.DeclStmt:
		if gen, ok := n.Decl.(*ast.GenDecl); ok && gen.Tok == token.VAR {
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := t.cfg.Info.ObjectOf(name)
					if obj == nil {
						continue
					}
					var m Mask
					if i < len(vs.Values) {
						m = t.exprMask(f, vs.Values[i])
					} else if len(vs.Values) == 1 {
						m = t.exprMask(f, vs.Values[0])
					}
					t.setObj(f, obj, name, m)
				}
			}
		}
	}
	// Sanitizing effects — sanitizer calls and guard comparisons — may
	// sit anywhere inside the node (an if condition, a call statement,
	// an assignment RHS), so inspect it fully.
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := m.(ast.Expr); ok {
			t.applyExprEffects(f, e)
		}
		return true
	})
	// A range operand in a loop head binds its key/value variables on
	// every iteration.
	if rng, ok := t.rangeOf[n]; ok {
		m := t.exprMask(f, rng.X)
		for _, e := range []ast.Expr{rng.Key, rng.Value} {
			id, ok := e.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if obj := t.cfg.Info.ObjectOf(id); obj != nil {
				t.setObj(f, obj, id, m)
			}
		}
	}
}

// applyAssign transfers taint through one assignment statement.
func (t *Taint) applyAssign(f taintFact, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// Op-assign: x op= e reads and writes x.
		if id, ok := n.Lhs[0].(*ast.Ident); ok {
			if obj := t.cfg.Info.ObjectOf(id); obj != nil {
				m := f[obj]
				if t.cfg.PropagateBinary {
					m |= t.exprMask(f, n.Rhs[0])
				}
				t.setObj(f, obj, id, m)
			}
		}
		return
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Tuple assignment from one call / comma-ok: all targets get
		// the RHS mask.
		m := t.exprMask(f, n.Rhs[0])
		for _, lhs := range n.Lhs {
			t.assignTo(f, lhs, m)
		}
		return
	}
	masks := make([]Mask, len(n.Rhs))
	for i, rhs := range n.Rhs {
		masks[i] = t.exprMask(f, rhs)
	}
	for i, lhs := range n.Lhs {
		t.assignTo(f, lhs, masks[i])
	}
}

// assignTo writes mask m into the storage lhs denotes: a strong update
// for a plain identifier, a weak (|=) update on the root object for
// index/selector/star targets — writing one element may leave others
// tainted, so taint only accumulates.
func (t *Taint) assignTo(f taintFact, lhs ast.Expr, m Mask) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		if obj := t.cfg.Info.ObjectOf(lhs); obj != nil {
			t.setObj(f, obj, lhs, m)
		}
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
		if root := rootIdent(lhs); root != nil {
			if obj := t.cfg.Info.ObjectOf(root); obj != nil {
				if m != 0 {
					f[obj] |= m
				}
			}
		}
	case *ast.ParenExpr:
		t.assignTo(f, lhs.X, m)
	}
}

// setObj strongly updates obj's taint, honoring the type filter via the
// identifier's type.
func (t *Taint) setObj(f taintFact, obj types.Object, at ast.Expr, m Mask) {
	if m != 0 && t.cfg.TypeOK != nil && !t.cfg.TypeOK(obj.Type()) {
		m = 0
	}
	if m == 0 {
		delete(f, obj)
		return
	}
	f[obj] = m
}

// applyCallEffects handles statement-level calls with side effects on
// taint: sanitizer calls kill their identifier arguments, and the
// builtin copy(dst, src) transfers (or not, per ElemCopyRefs) taint
// into dst.
func (t *Taint) applyCallEffects(f taintFact, call *ast.CallExpr) {
	if t.cfg.SanitizerCall != nil && t.cfg.SanitizerCall(call) {
		for _, a := range call.Args {
			if id, ok := a.(*ast.Ident); ok {
				if obj := t.cfg.Info.ObjectOf(id); obj != nil {
					delete(f, obj)
				}
			}
		}
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "copy" && len(call.Args) == 2 {
		if _, isBuiltin := t.cfg.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			transfer := true
			if t.cfg.ElemCopyRefs && !t.elemCarriesRefs(call.Args[0]) {
				transfer = false
			}
			if transfer {
				m := t.exprMask(f, call.Args[1])
				t.assignTo(f, call.Args[0], m)
			}
		}
	}
}

// applyExprEffects applies sanitizing effects of one expression node:
// sanitizer calls and (optionally) guard comparisons.
func (t *Taint) applyExprEffects(f taintFact, e ast.Expr) {
	switch e := e.(type) {
	case *ast.CallExpr:
		t.applyCallEffects(f, e)
	case *ast.BinaryExpr:
		if !t.cfg.GuardComparisons || !isOrdered(e.Op) {
			return
		}
		// ident <op> constant or constant <op> ident.
		for _, pair := range [][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
			id, ok := pair[0].(*ast.Ident)
			if !ok {
				continue
			}
			if tv, ok := t.cfg.Info.Types[pair[1]]; !ok || tv.Value == nil {
				continue
			}
			if obj := t.cfg.Info.ObjectOf(id); obj != nil {
				delete(f, obj)
			}
		}
	}
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func isOrdered(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// rootIdent returns the base identifier of a chain of index, selector,
// star, paren and slice expressions, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// CarriesRefs reports whether values of type t can share mutable
// backing storage: pointers, slices, maps, channels, interfaces and
// functions do; structs and arrays do if any element does; basic
// scalars and strings do not.
func CarriesRefs(t types.Type) bool {
	return carriesRefs(t, map[types.Type]bool{})
}

func carriesRefs(t types.Type, visiting map[types.Type]bool) bool {
	if visiting[t] {
		return false // recursive type: cycle must pass through a pointer, counted there
	}
	visiting[t] = true
	defer delete(visiting, t)
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRefs(u.Field(i).Type(), visiting) {
				return true
			}
		}
		return false
	case *types.Array:
		return carriesRefs(u.Elem(), visiting)
	default:
		return false
	}
}
