package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"tableseg/internal/analysis/cfg"
)

// DefKind classifies how a definition binds its variable.
type DefKind int

const (
	// DefAssign is x = e, x := e or x op= e.
	DefAssign DefKind = iota
	// DefDecl is a var declaration; RHS is nil when there is no
	// initializer (the variable holds its zero value).
	DefDecl
	// DefRange is a range key/value binding; the defining CFG node is
	// the ranged operand, re-executed in the loop head each iteration.
	DefRange
	// DefIncDec is x++ / x--.
	DefIncDec
	// DefEntry is a pseudo-definition at function entry for every
	// variable declared outside the analyzed body: parameters,
	// receivers, named results, captured variables and package-level
	// variables. Its RHS and Node are nil.
	DefEntry
)

// Def is one static definition site of a variable.
type Def struct {
	// Kind classifies the definition.
	Kind DefKind
	// Obj is the defined variable.
	Obj types.Object
	// Node is the CFG node performing the definition (nil for
	// DefEntry).
	Node ast.Node
	// RHS is the defining expression: the assignment's right-hand
	// side, the declaration initializer, or the ranged operand for
	// DefRange. Nil when the definition carries no expression
	// (DefEntry, DefIncDec, uninitialized DefDecl).
	RHS ast.Expr
}

// Chains holds the reaching-definition fixpoint of one function body
// and the use-def/def-use chains derived from it.
type Chains struct {
	Graph *cfg.Graph
	// Defs lists every definition, in deterministic (block, node)
	// order with the DefEntry pseudo-definitions first.
	Defs []*Def

	info      *types.Info
	useDefs   map[*ast.Ident][]*Def
	defUses   map[*Def][]*ast.Ident
	byObj     map[types.Object][]int // def indices per object
	nodeDefs  map[ast.Node][]*Def
	rangeBind map[ast.Node][]*Def // keyed by the ranged operand node
}

// NewChains builds reaching definitions and chains for body, whose
// graph is g. Identifier uses inside nested function literals are not
// chained (the literal body is a separate unit with its own graph).
func NewChains(body *ast.BlockStmt, g *cfg.Graph, info *types.Info) *Chains {
	c := &Chains{
		Graph:     g,
		info:      info,
		useDefs:   map[*ast.Ident][]*Def{},
		defUses:   map[*Def][]*ast.Ident{},
		byObj:     map[types.Object][]int{},
		nodeDefs:  map[ast.Node][]*Def{},
		rangeBind: map[ast.Node][]*Def{},
	}
	c.collectRangeBindings(body)
	c.collectEntryDefs(body)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			for _, d := range c.defsInNode(n) {
				c.addDef(d)
				c.nodeDefs[n] = append(c.nodeDefs[n], d)
			}
		}
	}
	c.solve()
	return c
}

// DefsOf returns the definitions that may reach the given identifier
// use, in Defs order. Nil when id is not a chained use (not a variable,
// a write target, or inside a nested function literal).
func (c *Chains) DefsOf(id *ast.Ident) []*Def { return c.useDefs[id] }

// UsesOf returns the identifier uses a definition may reach, in source
// order.
func (c *Chains) UsesOf(d *Def) []*ast.Ident { return c.defUses[d] }

// addDef registers d in the definition index.
func (c *Chains) addDef(d *Def) {
	c.byObj[d.Obj] = append(c.byObj[d.Obj], len(c.Defs))
	c.Defs = append(c.Defs, d)
}

// collectRangeBindings maps each RangeStmt's ranged operand (the CFG
// node re-evaluated in the loop head) to the key/value definitions it
// performs. Nested function literals are not descended into.
func (c *Chains) collectRangeBindings(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				id, ok := e.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := c.info.ObjectOf(id)
				if obj == nil {
					continue
				}
				c.rangeBind[n.X] = append(c.rangeBind[n.X], &Def{
					Kind: DefRange, Obj: obj, Node: n.X, RHS: n.X,
				})
			}
		}
		return true
	})
}

// collectEntryDefs synthesizes a DefEntry for every variable used in
// body but declared outside it: parameters, receivers, named results,
// captured variables and package-level variables.
func (c *Chains) collectEntryDefs(body *ast.BlockStmt) {
	seen := map[types.Object]bool{}
	var order []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := c.info.Uses[id].(*types.Var)
		if !ok || seen[obj] {
			return true
		}
		if obj.Pos() >= body.Pos() && obj.Pos() < body.End() {
			return true // declared inside: a real def covers it
		}
		seen[obj] = true
		order = append(order, obj)
		return true
	})
	for _, obj := range order {
		c.addDef(&Def{Kind: DefEntry, Obj: obj})
	}
}

// defsInNode extracts the definitions a single CFG node performs.
func (c *Chains) defsInNode(n ast.Node) []*Def {
	if binds, ok := c.rangeBind[n]; ok {
		return binds
	}
	var out []*Def
	add := func(kind DefKind, id *ast.Ident, rhs ast.Expr) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := c.info.ObjectOf(id)
		if obj == nil {
			return
		}
		out = append(out, &Def{Kind: kind, Obj: obj, Node: n, RHS: rhs})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else if len(n.Rhs) == 1 {
				rhs = n.Rhs[0] // tuple assignment from one call/comma-ok
			}
			add(DefAssign, id, rhs)
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			add(DefIncDec, id, nil)
		}
	case *ast.DeclStmt:
		gen, ok := n.Decl.(*ast.GenDecl)
		if !ok || gen.Tok != token.VAR {
			return out
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				if i < len(vs.Values) {
					rhs = vs.Values[i]
				} else if len(vs.Values) == 1 {
					rhs = vs.Values[0]
				}
				add(DefDecl, name, rhs)
			}
		}
	}
	return out
}

// solve runs the reaching-definitions fixpoint and materializes the
// chains. Facts are def-index bitsets.
func (c *Chains) solve() {
	nd := len(c.Defs)
	res := Solve(c.Graph, Problem[bitset]{
		Dir: Forward,
		Boundary: func() bitset {
			// Every DefEntry reaches function entry.
			f := newBitset(nd)
			for i, d := range c.Defs {
				if d.Kind == DefEntry {
					f.set(i)
				}
			}
			return f
		},
		Init:  func() bitset { return newBitset(nd) },
		Merge: func(dst, src bitset) bitset { dst.or(src); return dst },
		Equal: func(a, b bitset) bool { return a.equal(b) },
		Transfer: func(b *cfg.Block, in bitset) bitset {
			f := in.clone()
			for _, n := range b.Nodes {
				c.applyNode(f, n)
			}
			return f
		},
	})

	for _, b := range c.Graph.Blocks {
		f := res.In[b.Index].clone()
		for _, n := range b.Nodes {
			for _, id := range c.usesInNode(n) {
				obj := c.info.ObjectOf(id)
				for _, di := range c.byObj[obj] {
					if f.has(di) {
						d := c.Defs[di]
						c.useDefs[id] = append(c.useDefs[id], d)
						c.defUses[d] = append(c.defUses[d], id)
					}
				}
			}
			c.applyNode(f, n)
		}
	}
	for d, uses := range c.defUses {
		sortIdents(uses)
		c.defUses[d] = uses
	}
}

// applyNode updates fact f with node n's definitions: each kills all
// other definitions of the same object, except range bindings, which
// re-execute in a loop head and therefore merge rather than overwrite
// (a definition from inside the loop body survives the back edge).
func (c *Chains) applyNode(f bitset, n ast.Node) {
	for _, d := range c.nodeDefs[n] {
		di := c.defIndex(d)
		if d.Kind != DefRange {
			for _, other := range c.byObj[d.Obj] {
				f.clear(other)
			}
		}
		f.set(di)
	}
}

func (c *Chains) defIndex(d *Def) int {
	for _, i := range c.byObj[d.Obj] {
		if c.Defs[i] == d {
			return i
		}
	}
	return -1
}

// usesInNode lists the identifier reads inside one CFG node, in source
// order: every variable identifier except pure write targets (LHS of
// plain assignment or declaration; op-assign targets are reads too)
// and anything inside a nested function literal.
func (c *Chains) usesInNode(n ast.Node) []*ast.Ident {
	writes := map[*ast.Ident]bool{}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					writes[id] = true
				}
			}
		}
	case *ast.DeclStmt:
		if gen, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gen.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						writes[name] = true
					}
				}
			}
		}
	}
	var out []*ast.Ident
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if writes[m] {
				return true
			}
			if _, ok := c.info.Uses[m].(*types.Var); ok {
				out = append(out, m)
			}
		}
		return true
	})
	return out
}

func sortIdents(ids []*ast.Ident) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j].Pos() < ids[j-1].Pos(); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// bitset is a fixed-capacity bit vector used as the reaching-defs fact.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool {
	if i < 0 {
		return false
	}
	return b[i/64]&(1<<(i%64)) != 0
}
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}
func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
func (b bitset) clone() bitset {
	o := make(bitset, len(b))
	copy(o, b)
	return o
}
