// Package dataflow implements a generic forward/backward worklist
// solver over the control-flow graphs of internal/analysis/cfg, plus
// the three standard instantiations the tableseglint analyzers are
// built from: reaching definitions with use-def/def-use chains
// (rngflow's RNG provenance), a configurable taint-propagation lattice
// with per-source provenance masks (probflow's probability tracking,
// aliasflow's input-aliasing tracking), and live variables (the
// backward example that keeps the solver honest in both directions).
//
// Everything here is intra-procedural and stdlib-only (go/ast,
// go/types), matching the rest of the suite. Function literals are
// opaque to a graph — cfg.New never descends into them — so chains and
// taint facts never cross a closure boundary; analyzers that care
// analyze each literal body as its own unit.
//
// Facts are per-block: Solve computes the fixpoint of In/Out facts,
// and the chain/taint layers replay a block's nodes in order to answer
// statement-granular queries deterministically.
package dataflow

import (
	"tableseg/internal/analysis/cfg"
)

// Direction selects which way facts propagate through the graph.
type Direction int

const (
	// Forward propagates facts from Entry along successor edges.
	Forward Direction = iota
	// Backward propagates facts from Exit along predecessor edges.
	Backward
)

// Problem describes one monotone dataflow problem with facts of type F.
// Transfer and Merge must be monotone over the fact lattice and Merge
// must be commutative; the worklist iteration then terminates at the
// unique least fixpoint for lattices of finite height.
type Problem[F any] struct {
	// Dir is the propagation direction.
	Dir Direction
	// Boundary returns the fact entering the boundary block (Entry for
	// Forward, Exit for Backward).
	Boundary func() F
	// Init returns the initial ("bottom") fact for every other block.
	Init func() F
	// Merge joins the fact src flowing in from one edge into dst and
	// returns the combined fact. It may mutate and return dst.
	Merge func(dst, src F) F
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal func(a, b F) bool
	// Transfer maps a block's input fact to its output fact. It must
	// not retain or mutate in after returning.
	Transfer func(b *cfg.Block, in F) F
}

// Result holds the per-block fixpoint facts, indexed by Block.Index.
// In[b] is the fact at block entry and Out[b] at block exit, in the
// problem's direction (for Backward problems In is the fact after the
// block's last node, Out the fact before its first).
type Result[F any] struct {
	In, Out []F
}

// Solve runs the worklist algorithm to fixpoint. Blocks are seeded and
// re-queued in index (≈ source) order, so iteration — and therefore
// any diagnostic order derived from it — is deterministic for a given
// graph.
func Solve[F any](g *cfg.Graph, p Problem[F]) Result[F] {
	n := len(g.Blocks)
	res := Result[F]{In: make([]F, n), Out: make([]F, n)}

	// Per direction: the blocks facts flow in from, and the blocks a
	// changed fact must be pushed to.
	preds := predecessors(g)
	succs := make([][]*cfg.Block, n)
	for _, b := range g.Blocks {
		succs[b.Index] = b.Succs
	}
	inEdges, outEdges := preds, succs
	boundary := g.Entry
	if p.Dir == Backward {
		inEdges, outEdges = succs, preds
		boundary = g.Exit
	}

	for _, b := range g.Blocks {
		if b == boundary {
			res.In[b.Index] = p.Boundary()
		} else {
			res.In[b.Index] = p.Init()
		}
		res.Out[b.Index] = p.Transfer(b, res.In[b.Index])
	}

	// FIFO worklist with membership dedupe, seeded in index order.
	queue := make([]*cfg.Block, 0, n)
	queued := make([]bool, n)
	for _, b := range g.Blocks {
		queue = append(queue, b)
		queued[b.Index] = true
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b.Index] = false

		in := res.In[b.Index]
		if b != boundary {
			in = p.Init()
			for _, e := range inEdges[b.Index] {
				in = p.Merge(in, res.Out[e.Index])
			}
			res.In[b.Index] = in
		}
		out := p.Transfer(b, in)
		if p.Equal(out, res.Out[b.Index]) {
			continue
		}
		res.Out[b.Index] = out
		// Requeue everything this block feeds.
		for _, s := range outEdges[b.Index] {
			if !queued[s.Index] {
				queue = append(queue, s)
				queued[s.Index] = true
			}
		}
	}
	return res
}

// predecessors inverts the successor edges of g.
func predecessors(g *cfg.Graph) [][]*cfg.Block {
	preds := make([][]*cfg.Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	return preds
}
