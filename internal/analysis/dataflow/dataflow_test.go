package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"tableseg/internal/analysis/cfg"
)

// compile parses and type-checks one source file and returns the named
// function's declaration plus the type info needed by the clients.
func compile(t *testing.T, src, fn string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("t", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fd, info
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil
}

// identAt finds the n-th (0-based) occurrence of name as a use inside
// body, in source order.
func identAt(t *testing.T, body *ast.BlockStmt, name string, n int) *ast.Ident {
	t.Helper()
	var found *ast.Ident
	count := 0
	ast.Inspect(body, func(m ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && id.Name == name {
			if count == n {
				found = id
				return false
			}
			count++
		}
		return true
	})
	if found == nil {
		t.Fatalf("ident %s #%d not found", name, n)
	}
	return found
}

func TestChainsStraightLine(t *testing.T) {
	fd, info := compile(t, `package t
func f() int {
	x := 1
	x = 2
	return x
}`, "f")
	g := cfg.New(fd.Body)
	c := NewChains(fd.Body, g, info)

	// The x in `return x` (occurrence: x:=1 is a def, x=2 is a def,
	// return x is the first chained use).
	use := identAt(t, fd.Body, "x", 2)
	defs := c.DefsOf(use)
	if len(defs) != 1 {
		t.Fatalf("DefsOf(return x) = %d defs, want 1 (the x = 2 redefinition)", len(defs))
	}
	if defs[0].Kind != DefAssign {
		t.Errorf("reaching def kind = %v, want DefAssign", defs[0].Kind)
	}
	if lit, ok := defs[0].RHS.(*ast.BasicLit); !ok || lit.Value != "2" {
		t.Errorf("reaching def RHS = %v, want the literal 2", defs[0].RHS)
	}
	if uses := c.UsesOf(defs[0]); len(uses) != 1 || uses[0] != use {
		t.Errorf("UsesOf(x=2) = %v, want exactly the return-x use", uses)
	}
}

func TestChainsBranchMerge(t *testing.T) {
	fd, info := compile(t, `package t
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`, "f")
	g := cfg.New(fd.Body)
	c := NewChains(fd.Body, g, info)

	use := identAt(t, fd.Body, "x", 2)
	defs := c.DefsOf(use)
	if len(defs) != 2 {
		t.Fatalf("DefsOf(return x) = %d defs, want 2 (both branch defs reach)", len(defs))
	}
}

func TestChainsLoopSelfUse(t *testing.T) {
	fd, info := compile(t, `package t
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}`, "f")
	g := cfg.New(fd.Body)
	c := NewChains(fd.Body, g, info)

	// The s on the RHS of `s = s + i` must see both the initial s := 0
	// and the loop's own s = s + i (back edge).
	rhsUse := identAt(t, fd.Body, "s", 2)
	defs := c.DefsOf(rhsUse)
	if len(defs) != 2 {
		t.Fatalf("DefsOf(s in s+i) = %d defs, want 2 (init + back edge)", len(defs))
	}
}

func TestChainsEntryDefsForParams(t *testing.T) {
	fd, info := compile(t, `package t
func f(n int) int {
	return n + 1
}`, "f")
	g := cfg.New(fd.Body)
	c := NewChains(fd.Body, g, info)

	use := identAt(t, fd.Body, "n", 0)
	defs := c.DefsOf(use)
	if len(defs) != 1 || defs[0].Kind != DefEntry {
		t.Fatalf("DefsOf(param n) = %v, want one DefEntry", defs)
	}
}

func TestChainsRangeBindings(t *testing.T) {
	fd, info := compile(t, `package t
func f(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}`, "f")
	g := cfg.New(fd.Body)
	c := NewChains(fd.Body, g, info)

	use := identAt(t, fd.Body, "v", 1) // the v in s += v
	defs := c.DefsOf(use)
	if len(defs) != 1 || defs[0].Kind != DefRange {
		t.Fatalf("DefsOf(v) = %v, want one DefRange", defs)
	}
	if _, ok := defs[0].RHS.(*ast.Ident); !ok {
		t.Errorf("range def RHS = %T, want the ranged operand xs", defs[0].RHS)
	}
}

func isFloat(tt types.Type) bool {
	b, ok := tt.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func TestTaintAssignPropagation(t *testing.T) {
	fd, info := compile(t, `package t
func src() float64 { return 0 }
func f() float64 {
	p := src()
	q := p
	r := q * 2
	return r
}`, "f")
	g := cfg.New(fd.Body)
	tt := NewTaint(fd.Body, g, TaintConfig{
		Info: info,
		ResultTaint: func(call *ast.CallExpr) Mask {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "src" {
				return 1
			}
			return 0
		},
		PropagateBinary: true,
		TypeOK:          isFloat,
	})
	var gotReturn Mask
	tt.Walk(func(_ *cfg.Block, n ast.Node, fact map[types.Object]Mask) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			gotReturn = tt.Mask(fact, ret.Results[0])
		}
	})
	if gotReturn != 1 {
		t.Fatalf("taint of returned r = %#x, want 1 (src flows through p, q, r)", gotReturn)
	}
}

func TestTaintSanitizerKillsArgument(t *testing.T) {
	fd, info := compile(t, `package t
func src() float64 { return 0 }
func clean(p float64) bool { return p <= 0 }
func f() float64 {
	p := src()
	if clean(p) {
		return 0
	}
	return p
}`, "f")
	g := cfg.New(fd.Body)
	tt := NewTaint(fd.Body, g, TaintConfig{
		Info: info,
		ResultTaint: func(call *ast.CallExpr) Mask {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "src" {
				return 1
			}
			return 0
		},
		SanitizerCall: func(call *ast.CallExpr) bool {
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "clean"
		},
		TypeOK: isFloat,
	})
	var afterGuard Mask = 0xff
	tt.Walk(func(_ *cfg.Block, n ast.Node, fact map[types.Object]Mask) {
		if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
			if id, ok := ret.Results[0].(*ast.Ident); ok && id.Name == "p" {
				afterGuard = tt.Mask(fact, id)
			}
		}
	})
	if afterGuard != 0 {
		t.Fatalf("taint of p after clean(p) guard = %#x, want 0 (sanitized)", afterGuard)
	}
}

func TestTaintGuardComparison(t *testing.T) {
	fd, info := compile(t, `package t
func src() float64 { return 0 }
func f() float64 {
	p := src()
	if p <= 0 {
		return 0
	}
	return p
}`, "f")
	g := cfg.New(fd.Body)
	tt := NewTaint(fd.Body, g, TaintConfig{
		Info: info,
		ResultTaint: func(call *ast.CallExpr) Mask {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "src" {
				return 1
			}
			return 0
		},
		GuardComparisons: true,
		TypeOK:           isFloat,
	})
	var afterGuard Mask = 0xff
	tt.Walk(func(_ *cfg.Block, n ast.Node, fact map[types.Object]Mask) {
		if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
			if id, ok := ret.Results[0].(*ast.Ident); ok && id.Name == "p" {
				afterGuard = tt.Mask(fact, id)
			}
		}
	})
	if afterGuard != 0 {
		t.Fatalf("taint of p after p <= 0 guard = %#x, want 0", afterGuard)
	}
}

func TestTaintEntryAliasReachesReturn(t *testing.T) {
	fd, info := compile(t, `package t
type Out struct{ Items []int }
func f(in []int) Out {
	return Out{Items: in}
}`, "f")
	g := cfg.New(fd.Body)
	var inObj types.Object
	for _, p := range fd.Type.Params.List {
		inObj = info.ObjectOf(p.Names[0])
	}
	tt := NewTaint(fd.Body, g, TaintConfig{
		Info:         info,
		Entry:        map[types.Object]Mask{inObj: 1},
		ElemCopyRefs: true,
	})
	var retMask Mask
	tt.Walk(func(_ *cfg.Block, n ast.Node, fact map[types.Object]Mask) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			retMask = tt.Mask(fact, ret.Results[0])
		}
	})
	if retMask != 1 {
		t.Fatalf("composite-literal return mask = %#x, want 1 (param aliased)", retMask)
	}
}

func TestTaintCopyOfScalarsIsClean(t *testing.T) {
	fd, info := compile(t, `package t
type Out struct{ Items []int }
func f(in []int) Out {
	cp := make([]int, len(in))
	copy(cp, in)
	return Out{Items: cp}
}`, "f")
	g := cfg.New(fd.Body)
	var inObj types.Object
	for _, p := range fd.Type.Params.List {
		inObj = info.ObjectOf(p.Names[0])
	}
	tt := NewTaint(fd.Body, g, TaintConfig{
		Info:         info,
		Entry:        map[types.Object]Mask{inObj: 1},
		ElemCopyRefs: true,
	})
	var retMask Mask = 0xff
	tt.Walk(func(_ *cfg.Block, n ast.Node, fact map[types.Object]Mask) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			retMask = tt.Mask(fact, ret.Results[0])
		}
	})
	if retMask != 0 {
		t.Fatalf("copy()d scalar slice return mask = %#x, want 0", retMask)
	}
}

func TestLivenessBasic(t *testing.T) {
	fd, info := compile(t, `package t
func g(int)
func f(c bool) {
	x := 1
	y := 2
	if c {
		g(x)
	}
	g(y)
}`, "f")
	g := cfg.New(fd.Body)
	l := NewLiveness(fd.Body, g, info)

	// Find the objects.
	var xObj, yObj types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				switch id.Name {
				case "x":
					xObj = obj
				case "y":
					yObj = obj
				}
			}
		}
		return true
	})
	if xObj == nil || yObj == nil {
		t.Fatal("objects not resolved")
	}
	// x and y are defined before the branch; at entry of the if-body
	// block holding g(x), x is live (used here) and y is live (used
	// after the branch rejoins).
	var found bool
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if arg, ok := call.Args[0].(*ast.Ident); ok && arg.Name == "x" {
						found = true
						if !l.LiveAtEntry(b, xObj) {
							t.Error("x not live at entry of block containing g(x)")
						}
						if !l.LiveAtEntry(b, yObj) {
							t.Error("y not live at entry of block containing g(x)")
						}
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("g(x) call site not located in graph")
	}
}

func TestCarriesRefs(t *testing.T) {
	f64 := types.Typ[types.Float64]
	scalarStruct := types.NewStruct([]*types.Var{
		types.NewField(token.NoPos, nil, "A", f64, false),
	}, nil)
	refStruct := types.NewStruct([]*types.Var{
		types.NewField(token.NoPos, nil, "P", types.NewSlice(types.Typ[types.Int]), false),
	}, nil)
	cases := []struct {
		name string
		typ  types.Type
		want bool
	}{
		{"float64", f64, false},
		{"string", types.Typ[types.String], false},
		{"[]float64", types.NewSlice(f64), true},
		{"*int", types.NewPointer(types.Typ[types.Int]), true},
		{"map", types.NewMap(types.Typ[types.Int], f64), true},
		{"scalar struct", scalarStruct, false},
		{"ref struct", refStruct, true},
		{"[4]float64", types.NewArray(f64, 4), false},
		{"[4][]int", types.NewArray(types.NewSlice(types.Typ[types.Int]), 4), true},
	}
	for _, c := range cases {
		if got := CarriesRefs(c.typ); got != c.want {
			t.Errorf("CarriesRefs(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSolverBackwardLoop(t *testing.T) {
	fd, info := compile(t, `package t
func g(int)
func f(n int) {
	x := 0
	for i := 0; i < n; i++ {
		g(x)
		x = i
	}
}`, "f")
	g := cfg.New(fd.Body)
	l := NewLiveness(fd.Body, g, info)

	var xObj types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "x" {
			if obj := info.Defs[id]; obj != nil {
				xObj = obj
			}
		}
		return true
	})
	// x is used at g(x) inside the loop, so it must be live on the back
	// edge: at entry of the loop-condition block.
	live := false
	for _, b := range g.Blocks {
		if l.LiveAtEntry(b, xObj) {
			live = true
		}
	}
	if !live {
		t.Fatal("x not live anywhere despite g(x) use inside loop")
	}
}
