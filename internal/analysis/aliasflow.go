package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"tableseg/internal/analysis/cfg"
	"tableseg/internal/analysis/dataflow"
)

// AliasFlow returns the analyzer enforcing value-level stage purity.
// The stage graph caches artifacts and hands them to concurrent
// consumers, so a stage output that retains a slice, map or pointer
// into its mutable input lets a later writer mutate a cached (or
// already-consumed) artifact at a distance. stagepurity pins the
// import graph; aliasflow pins the values: every exported stage-shaped
// function (context.Context first, error last) has its reference-
// carrying parameters tainted at entry with one provenance bit each,
// the taint is propagated by internal/analysis/dataflow — through
// assignments, composite literals, index/selector chains and appends,
// but not through copy() into scalar-element storage, which severs the
// alias — and any return value still tainted is reported with the
// parameters it aliases. Deliberate sharing seams are documented with
// a tableseglint:ignore directive instead of silently relied on.
func AliasFlow() *Analyzer {
	a := &Analyzer{
		Name: "aliasflow",
		Doc:  "forbid stage outputs from retaining aliases of mutable inputs (slice/map/pointer flow from parameter to return)",
	}
	a.Run = func(pass *Pass) {
		if !matchesAny(pass.Pkg.Path, pass.Cfg.AliasPkgs) {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				if !stageShaped(pass.Pkg.Info, fd) {
					continue
				}
				checkAliasFlow(pass, fd)
			}
		}
	}
	return a
}

// stageShaped reports whether fd has the stage/solver entry-point
// signature: first parameter context.Context, last result error.
func stageShaped(info *types.Info, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	first := info.TypeOf(params.List[0].Type)
	if first == nil || first.String() != "context.Context" {
		return false
	}
	results := fd.Type.Results
	if results == nil || len(results.List) == 0 {
		return false
	}
	last := info.TypeOf(results.List[len(results.List)-1].Type)
	return last != nil && isErrorType(last)
}

// checkAliasFlow taints fd's mutable parameters and reports returns
// that still carry the taint.
func checkAliasFlow(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	g := cfg.New(fd.Body)

	// One provenance bit per reference-carrying parameter (after the
	// context), so the report can name exactly what leaked.
	entry := map[types.Object]dataflow.Mask{}
	bitName := map[int]string{}
	bit := 0
	for i, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if i == 0 {
				continue // the context
			}
			obj := info.ObjectOf(name)
			if obj == nil || !dataflow.CarriesRefs(obj.Type()) {
				continue
			}
			if bit >= 64 {
				break
			}
			entry[obj] = 1 << bit
			bitName[bit] = name.Name
			bit++
		}
	}
	if len(entry) == 0 {
		return
	}

	tt := dataflow.NewTaint(fd.Body, g, dataflow.TaintConfig{
		Info:         info,
		Entry:        entry,
		TypeOK:       dataflow.CarriesRefs,
		ElemCopyRefs: true,
	})

	// Named results matter for bare returns.
	var namedResults []types.Object
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := info.ObjectOf(name); obj != nil {
					namedResults = append(namedResults, obj)
				}
			}
		}
	}

	tt.Walk(func(_ *cfg.Block, n ast.Node, fact map[types.Object]dataflow.Mask) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		var mask dataflow.Mask
		if len(ret.Results) == 0 {
			for _, obj := range namedResults {
				if !isErrorType(obj.Type()) {
					mask |= fact[obj]
				}
			}
		}
		for _, res := range ret.Results {
			if tv, ok := info.Types[res]; ok && tv.Type != nil && isErrorType(tv.Type) {
				continue // the error result never carries the artifact
			}
			mask |= tt.Mask(fact, res)
		}
		if mask == 0 {
			return
		}
		pass.Reportf(ret.Pos(), "returned artifact aliases mutable input parameter%s %s; copy the slice/map/pointer storage before returning (or document the sharing seam with a tableseglint:ignore directive)", plural(mask), maskNames(mask, bitName))
	})
}

// maskNames renders the parameter names a provenance mask covers.
func maskNames(m dataflow.Mask, bitName map[int]string) string {
	var names []string
	for b, name := range bitName {
		if m&(1<<b) != 0 {
			names = append(names, `"`+name+`"`)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func plural(m dataflow.Mask) string {
	n := 0
	for m != 0 {
		n += int(m & 1)
		m >>= 1
	}
	if n > 1 {
		return "s"
	}
	return ""
}
