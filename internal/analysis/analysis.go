// Package analysis implements tableseglint, the repository's own
// static-analysis suite. The reproduction's headline guarantee —
// byte-identical Table 1–4 output across worker counts and seeds —
// rests on a handful of coding invariants (no wall-clock or unseeded
// randomness in solver paths, no map-iteration order leaking into
// results, contexts threaded rather than minted, errors wrapped so
// sentinel classification survives, goroutines and locks that provably
// wind down) that ordinary Go tooling does not enforce. The twenty
// analyzers in this package check them mechanically over the parsed
// and type-checked source of every package, using only the standard
// library (go/parser, go/ast, go/types). Seven are expression-level;
// the three concurrency analyzers (goroleak, lockdiscipline,
// chancontract) run over the intra-procedural control-flow graphs of
// internal/analysis/cfg, so "on every path" facts — a channel closed,
// a mutex released — are proved rather than pattern-matched; the
// three dataflow analyzers (rngflow, probflow, aliasflow) run the
// worklist solver of internal/analysis/dataflow over those same
// graphs, so "where did this value come from?" facts — RNG
// provenance, probability taint, input aliasing — are answered by
// reaching definitions and taint propagation rather than syntax; and
// the three interprocedural analyzers (ctxflow, lockflow, httpresp)
// consume the whole-module call graph and per-function summaries of
// internal/analysis/callgraph, so a context dropped one call deep, a
// lock held across a helper that blocks, or a handler that forgets to
// respond on an error path are caught across function boundaries;
// the two schema-lock analyzers (wiredrift, codecdrift) compare
// structural type fingerprints from internal/analysis/schema against
// committed lock files, so wire-surface and codec-version drift is
// caught before it corrupts caches or clients; and the two
// escape/borrow analyzers (borrowflow, poolsafe) run the borrowed-
// provenance tracker and per-function escape summaries of
// internal/analysis/escape, so a zero-copy view retained past its
// buffer's lifetime or a pool checkout that misses its Put is proved
// impossible before the hot-path refactor that depends on it lands.
//
// The analyzers are:
//
//   - determinism: forbids time.Now and top-level math/rand functions
//     in the solver packages, and flags range-over-map loops that
//     accumulate into order-sensitive state (appends, floating-point
//     running sums) without a subsequent sort.
//   - ctxdiscipline: forbids context.Background/context.TODO inside
//     internal packages (only the root package's compatibility
//     wrappers may mint contexts) and requires exported
//     pipeline/solver entry points to take a context.Context first.
//   - errwrap: requires %w for error operands of fmt.Errorf, and
//     requires errors returned across internal/core's boundary to
//     wrap a declared sentinel.
//   - floateq: forbids ==/!= on floating-point operands in the
//     numeric solver packages (phmm, csp).
//   - stagepurity: enforces the stage-graph layering — stage packages
//     may not import algorithm, solver or orchestration packages, and
//     solver packages may not import orchestration packages.
//   - deprecated: forbids calls to retired in-repo APIs (resolved
//     through the type checker, so aliases are caught and same-named
//     methods on other types are not), pointing each surviving call
//     site at the designated replacement.
//   - goroleak: every goroutine launched in an exported function must
//     have a provable exit path — it ranges over (or receives from) a
//     channel closed on all CFG paths, receives from ctx.Done(), does
//     no blocking work at all, or only joins other goroutines.
//   - lockdiscipline: a sync.Mutex/RWMutex acquired in a function must
//     be released on every path out of it (defer unlock or per-path
//     unlock) and may not be held across a may-block call (channel
//     send/receive, blocking select, wg.Wait, once.Do, another lock,
//     solver invocation).
//   - chancontract: a channel returned by an exported function must be
//     closed by its producer, exactly once, only after joining any
//     other senders; no function closes a channel it received as a
//     parameter.
//   - rngflow: every *rand.Rand used at a call site in the solver
//     packages must derive — through its def-use chain — from a
//     seeded constructor, a parameter or another threaded source, not
//     from a package-level generator or an unseeded declaration; and
//     top-level math/rand functions are forbidden anywhere under
//     internal/.
//   - probflow: float values tainted as probabilities (model tables,
//     forward–backward messages) may not flow into a division,
//     math.Log, or an ordered comparison of two tainted operands
//     without first passing a zeroProb-style sanitizer or a guard
//     comparison against a constant.
//   - aliasflow: an exported stage-shaped function (context first,
//     error last) may not return an artifact that aliases a mutable
//     input parameter — slice, map or pointer storage must be copied,
//     not retained — making stagepurity's import-level purity hold at
//     the value level.
//   - ctxflow: interprocedural context threading — in the serving and
//     solver packages, a function holding a context.Context must pass
//     a context derived from it into every call whose summary says
//     the callee may park indefinitely (and may not time.Sleep, which
//     no context interrupts).
//   - lockflow: interprocedural lock discipline — a mutex may not be
//     held across a call to a module-local helper whose summary is
//     may-block, closing the helper-function blind spot of
//     lockdiscipline's intra-procedural check.
//   - httpresp: the handler contract — a handler-shaped function must
//     respond on every path (each error branch writes or delegates to
//     something that provably writes), sets the status at most once
//     per path, and does not mutate headers after the body starts.
//   - wiredrift: the api/v1 wire surface is append-only within v1 —
//     every exported wire type is pinned field-by-field in the
//     committed lint/schema-apiv1.lock; removals, renames, retypes,
//     retags and reorders are findings, and pure additions are
//     findings until the lock is regenerated with -update-locks.
//   - codecdrift: every struct the artifact codec encodes is bound to
//     its version constant in lint/schema-artifacts.lock — a shape
//     change while the constant still holds the locked value is a
//     finding (stale cached artifacts would decode wrong), and a
//     version bump clears it.
//   - borrowflow: in the declared borrow packages, a []byte parameter
//     is a borrowed view of a source buffer and may not be stored in a
//     field, global, map, channel send or captured goroutine anywhere,
//     nor returned from an exported stage-shaped function — stage
//     artifacts copy out. Handing a view to a module-local callee is
//     checked against the callee's escape summary, so retention any
//     number of calls deep is caught at the hand-off.
//   - poolsafe: a value checked out of a sync.Pool/arena Get must
//     reach the matching Put on every CFG path, must not escape while
//     checked out, and must not be used after an explicit Put.
//   - hotalloc: inside the packages committed to lint/hotpaths.conf,
//     avoidable allocation sites — string([]byte)/[]byte(string)
//     conversions, fmt.Sprintf, append-in-loop without a capacity
//     hint, float64 interface boxing — are flagged with a parseable
//     allocation kind, feeding the -alloc-inventory artifact and the
//     perf burn-down baseline.
//
// A diagnostic can be suppressed by a "//tableseglint:ignore <name>
// <reason>" comment on the same line or the line above. The reason is
// mandatory — a directive without one does not suppress anything —
// and the directive is expected to be rare (epsilon-comparison
// helpers and deliberately caller-managed channels are the intended
// uses).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"

	"tableseg/internal/analysis/callgraph"
	"tableseg/internal/analysis/schema"
)

// Diagnostic is one finding, positioned for file:line reporting.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's run over one package and collects its
// diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Cfg      Config
	// Facts is the summarized whole-module call graph. The
	// interprocedural analyzers require it; Run builds a single-package
	// graph when the caller supplies none, so the fixture-driven tests
	// and single-package embedding keep working.
	Facts *callgraph.Graph
	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Config scopes the analyzers to sets of packages. Packages are
// matched by import-path suffix (a whole trailing path segment
// sequence, e.g. "internal/csp" matches "tableseg/internal/csp"), so
// the same analyzers run unchanged over the real tree and over the
// fixture packages under testdata.
type Config struct {
	// DeterminismPkgs are the packages where time.Now, top-level
	// math/rand and order-sensitive map iteration are forbidden.
	DeterminismPkgs []string
	// FloatEqPkgs are the packages where ==/!= on floats is forbidden.
	FloatEqPkgs []string
	// EntryPointPkgs are the packages whose exported Segment*/Solve*/
	// Fit*/Run* functions must take a context.Context first.
	EntryPointPkgs []string
	// CorePkg is the package whose exported functions must return
	// sentinel-wrapped errors.
	CorePkg string
	// StagePkgs are the stage-graph packages that must stay
	// algorithm-agnostic: they may import none of AlgorithmPkgs,
	// SolverPkgs or OrchestrationPkgs.
	StagePkgs []string
	// AlgorithmPkgs are the segmentation-algorithm packages that only
	// solver adapters (and orchestration) may import.
	AlgorithmPkgs []string
	// SolverPkgs are the solver adapter packages: they may import the
	// artifact types and the algorithm packages but none of
	// OrchestrationPkgs.
	SolverPkgs []string
	// OrchestrationPkgs are the pipeline-orchestration packages, off
	// limits to both stages and solvers.
	OrchestrationPkgs []string
	// RNGPkgs are the packages where rngflow traces every *rand.Rand
	// reaching a call site back to a seeded constructor, a parameter or
	// another non-global origin via def-use chains.
	RNGPkgs []string
	// ProbPkgs are the packages where probflow tracks probability
	// taint into division, math.Log and comparison sinks.
	ProbPkgs []string
	// ProbSources are the identifier and field names whose
	// float-carrying values are tainted as probabilities (model tables
	// and forward–backward messages).
	ProbSources []string
	// ProbSourceCalls are the function/method names whose results are
	// probabilities.
	ProbSourceCalls []string
	// ProbSanitizers are the function names that validate a
	// probability (zero guards, clamps); passing a value through one
	// clears its taint.
	ProbSanitizers []string
	// AliasPkgs are the packages whose exported stage-shaped functions
	// (context first, error last) may not return artifacts aliasing
	// their mutable inputs.
	AliasPkgs []string
	// CtxFlowPkgs are the packages where ctxflow requires a held
	// context.Context to reach every call whose callee may park
	// indefinitely — the serving path and the solver pipeline.
	CtxFlowPkgs []string
	// DeprecatedAPIs are retired functions and methods whose surviving
	// call sites the deprecated analyzer flags with a pointer at the
	// replacement.
	DeprecatedAPIs []DeprecatedAPI
	// WirePkg is the versioned wire package whose exported types must
	// stay append-only within their version (wiredrift).
	WirePkg string
	// WireLock is the parsed committed wire-surface lock; nil disables
	// wiredrift. WireLockPath names the file in diagnostics.
	WireLock     *schema.Lock
	WireLockPath string
	// SchemaBindings bind codec-encoded struct shapes to version
	// constants (codecdrift).
	SchemaBindings []SchemaBinding
	// CodecLock is the parsed committed artifact-shape lock; nil
	// disables codecdrift. CodecLockPath names the file in diagnostics.
	CodecLock     *schema.Lock
	CodecLockPath string
	// BorrowPkgs are the packages where borrowflow treats every []byte
	// parameter as a borrowed view of a source buffer and forbids it
	// from outliving the call — the packages the zero-copy hot-path
	// refactor will rewrite.
	BorrowPkgs []string
	// HotPkgs are the packages hotalloc inventories for avoidable
	// allocation sites, loaded from the committed hot-paths file by
	// LoadHotPaths; empty leaves hotalloc dormant. HotPathsPath names
	// the file in diagnostics and cache salts.
	HotPkgs      []string
	HotPathsPath string
}

// SchemaBinding ties one codec-encoded struct to the version constant
// that must be bumped when its shape changes. The check runs in the
// package defining the constant (ConstPkg), which resolves the type
// through its own scope or imports.
type SchemaBinding struct {
	// ConstPkg is the import-path suffix of the package declaring the
	// version constant; ConstName the constant (may be unexported —
	// the analyzer looks it up in the package's own scope).
	ConstPkg  string
	ConstName string
	// TypePkg and TypeName identify the encoded struct.
	TypePkg  string
	TypeName string
	// OmitFields are top-level fields the codec deliberately does not
	// serialize, excluded from the fingerprint.
	OmitFields []string
}

// DeprecatedAPI names one retired call target for the deprecated
// analyzer.
type DeprecatedAPI struct {
	// PkgSuffix is the defining package's import-path suffix, matched
	// like every other package scope ("internal/engine").
	PkgSuffix string
	// Type is the receiver type name for methods ("" for package-level
	// functions); pointer receivers are dereferenced before matching.
	Type string
	// Name is the function or method name.
	Name string
	// Use names the replacement, quoted in the diagnostic.
	Use string
}

// DefaultConfig is the project policy enforced by cmd/tableseglint.
func DefaultConfig() Config {
	return Config{
		DeterminismPkgs: []string{
			"internal/csp", "internal/phmm", "internal/core",
			"internal/engine", "internal/experiments",
			"internal/stage", "internal/solvers",
		},
		FloatEqPkgs: []string{"internal/phmm", "internal/csp"},
		EntryPointPkgs: []string{
			"internal/core", "internal/csp", "internal/phmm",
			"internal/engine", "internal/experiments",
			"internal/stage", "internal/solvers",
		},
		CorePkg:       "internal/core",
		StagePkgs:     []string{"internal/stage"},
		AlgorithmPkgs: []string{"internal/csp", "internal/phmm", "internal/baseline"},
		SolverPkgs:    []string{"internal/solvers"},
		OrchestrationPkgs: []string{
			"internal/core", "internal/engine", "internal/experiments",
		},
		RNGPkgs: []string{
			"internal/csp", "internal/phmm", "internal/core",
			"internal/engine", "internal/experiments",
			"internal/stage", "internal/solvers", "internal/sitegen",
		},
		ProbPkgs: []string{"internal/phmm"},
		ProbSources: []string{
			"Theta", "Trans", "Pi",
			"alpha", "beta", "gamma", "emis",
			"colMass", "endC", "typeTrue", "xiCont",
		},
		ProbSourceCalls: []string{
			"emitType", "evidence", "hazard", "startWeight",
		},
		ProbSanitizers: []string{"zeroProb", "maxf"},
		AliasPkgs:      []string{"internal/stage", "internal/solvers"},
		CtxFlowPkgs: []string{
			"internal/server", "internal/server/client", "internal/engine",
			"internal/core", "internal/solvers", "internal/stage",
		},
		DeprecatedAPIs: []DeprecatedAPI{
			{PkgSuffix: "internal/engine", Type: "Engine", Name: "Run", Use: "Stream"},
		},
		BorrowPkgs: []string{
			"internal/htmlx", "internal/token", "internal/stage",
			"internal/phmm", "internal/csp",
		},
		WirePkg:       "api/v1",
		WireLockPath:  WireLockFile,
		CodecLockPath: ArtifactLockFile,
		// The structs the artifact codec serializes (stage/codec.go:
		// tokens, template, result) are bound to stage.CodecVersion;
		// the engine's journal envelope — the Segmentation fields
		// encodeSegmentation writes, PHMM deliberately excluded — to
		// the journal's own envelope version.
		SchemaBindings: []SchemaBinding{
			{ConstPkg: "internal/stage", ConstName: "CodecVersion", TypePkg: "internal/token", TypeName: "Token"},
			{ConstPkg: "internal/stage", ConstName: "CodecVersion", TypePkg: "internal/pagetemplate", TypeName: "TemplateData"},
			{ConstPkg: "internal/stage", ConstName: "CodecVersion", TypePkg: "internal/stage", TypeName: "Record"},
			{ConstPkg: "internal/engine", ConstName: "resultEnvelopeVersion", TypePkg: "internal/core", TypeName: "Segmentation", OmitFields: []string{"PHMM"}},
		},
	}
}

// pathMatches reports whether pkgPath ends with the suffix pattern on
// a path-segment boundary.
func pathMatches(pkgPath, suffix string) bool {
	if pkgPath == suffix {
		return true
	}
	return strings.HasSuffix(pkgPath, "/"+suffix)
}

func matchesAny(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pathMatches(pkgPath, s) {
			return true
		}
	}
	return false
}

// isInternal reports whether pkgPath lies under an internal/ element —
// the scope of the context-minting ban.
func isInternal(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/") ||
		strings.HasPrefix(pkgPath, "internal/") ||
		strings.HasSuffix(pkgPath, "/internal") ||
		pkgPath == "internal"
}

// Suite returns the twenty analyzers: the seven expression-level
// checks, the three CFG-based concurrency checks, the three dataflow
// checks built on internal/analysis/dataflow, the three
// interprocedural checks built on internal/analysis/callgraph, the
// two schema-lock checks built on internal/analysis/schema, and the
// two escape/borrow checks built on internal/analysis/escape. The
// order is fixed — registration is this literal, never init-order or
// map-iteration dependent — because the driver's cache keys and the
// -list output both derive from it.
func Suite() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		CtxDiscipline(),
		ErrWrap(),
		FloatEq(),
		StagePurity(),
		Deprecated(),
		GoroLeak(),
		LockDiscipline(),
		ChanContract(),
		RNGFlow(),
		ProbFlow(),
		AliasFlow(),
		CtxFlow(),
		LockFlow(),
		HTTPResp(),
		WireDrift(),
		CodecDrift(),
		BorrowFlow(),
		PoolSafe(),
		HotAlloc(),
	}
}

// BuildFacts constructs and summarizes the call graph over pkgs — the
// shared fact base the interprocedural analyzers consume. Handing it
// every loaded package of the module yields whole-module resolution;
// the graph is read-only after this returns, so concurrent passes may
// share it.
func BuildFacts(pkgs []*Package) *callgraph.Graph {
	srcs := make([]callgraph.Source, 0, len(pkgs))
	for _, p := range pkgs {
		srcs = append(srcs, callgraph.Source{
			Path:  p.Path,
			Files: p.Files,
			Info:  p.Info,
			Types: p.Types,
		})
	}
	g := callgraph.Build(srcs)
	g.Summarize()
	return g
}

// Run executes every analyzer in the suite over pkg and returns the
// surviving (non-suppressed) diagnostics sorted by position. The fact
// base is built from pkg alone; multi-package callers should
// BuildFacts over the whole module and use RunWithFacts.
func Run(pkg *Package, cfg Config, analyzers []*Analyzer) []Diagnostic {
	return RunWithFacts(pkg, cfg, analyzers, BuildFacts([]*Package{pkg}))
}

// RunWithFacts is Run with a caller-supplied fact base.
func RunWithFacts(pkg *Package, cfg Config, analyzers []*Analyzer, facts *callgraph.Graph) []Diagnostic {
	diags, _ := RunTimed(pkg, cfg, analyzers, facts)
	return diags
}

// AnalyzerTiming is the wall time one analyzer spent on one package.
type AnalyzerTiming struct {
	Analyzer string
	Elapsed  time.Duration
}

// RunTimed is RunWithFacts, additionally reporting per-analyzer wall
// time in suite order.
func RunTimed(pkg *Package, cfg Config, analyzers []*Analyzer, facts *callgraph.Graph) ([]Diagnostic, []AnalyzerTiming) {
	var out []Diagnostic
	timings := make([]AnalyzerTiming, 0, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Cfg: cfg, Facts: facts}
		start := time.Now()
		a.Run(pass)
		timings = append(timings, AnalyzerTiming{Analyzer: a.Name, Elapsed: time.Since(start)})
		out = append(out, pass.diags...)
	}
	out = filterSuppressed(pkg, out)
	SortDiagnostics(out)
	return out, timings
}

// SortDiagnostics orders diagnostics by file, line, column and
// analyzer name. Run applies it per package; the CLI re-applies it
// across packages so multi-package output is one deterministic
// file:line sequence regardless of package load order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

const ignoreDirective = "tableseglint:ignore"

// filterSuppressed drops diagnostics covered by an ignore directive on
// the same line or the line immediately above.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	// ignored[file][line] = set of analyzer names suppressed there.
	ignored := map[string]map[int]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignoreDirective))
				if len(fields) < 2 {
					// The reason is mandatory: a bare
					// "//tableseglint:ignore determinism" suppresses
					// nothing, so unexplained exceptions cannot
					// accumulate.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := ignored[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					ignored[pos.Filename] = byLine
				}
				// The directive covers its own line and the next, so it
				// works both trailing a statement and on its own line.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					byLine[line][fields[0]] = true
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if ignored[d.Pos.Filename][d.Pos.Line][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// pkgNameOf resolves an identifier to the imported package it names,
// or "" if it is not a package qualifier.
func (p *Pass) pkgNameOf(id *ast.Ident) string {
	if obj, ok := p.Pkg.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
	}
	return ""
}
