package analysis

import (
	"path/filepath"

	"tableseg/internal/analysis/schema"
)

// The committed schema-lock files, relative to the module root. The
// wire lock pins the api/v1 surface field by field; the artifact lock
// binds codec-encoded struct digests to their version constants.
const (
	WireLockFile     = "lint/schema-apiv1.lock"
	ArtifactLockFile = "lint/schema-artifacts.lock"
)

// LoadSchemaLocks populates cfg with the parsed lock files committed
// under root. A missing lock file leaves the corresponding analyzer
// disabled (the module has not adopted it yet — the CI lock-drift
// gate regenerates deleted locks, so this cannot silently stick); a
// corrupt or truncated lock is an error, which the driver reports as
// an exit-2 usage failure rather than linting against a half-read
// contract.
func LoadSchemaLocks(cfg *Config, root string) error {
	if cfg.WireLockPath == "" {
		cfg.WireLockPath = WireLockFile
	}
	if cfg.CodecLockPath == "" {
		cfg.CodecLockPath = ArtifactLockFile
	}
	wire, err := schema.LoadFile(filepath.Join(root, filepath.FromSlash(cfg.WireLockPath)))
	if err != nil {
		return err
	}
	codec, err := schema.LoadFile(filepath.Join(root, filepath.FromSlash(cfg.CodecLockPath)))
	if err != nil {
		return err
	}
	cfg.WireLock = wire
	cfg.CodecLock = codec
	return nil
}
