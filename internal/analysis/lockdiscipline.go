package analysis

import (
	"go/ast"
	"go/types"

	"tableseg/internal/analysis/cfg"
)

// LockDiscipline returns the analyzer enforcing mutex hygiene over the
// control-flow graph: a sync.Mutex/RWMutex acquired in a function must
// be released on every path out of it (a defer unlock registered on
// all paths, or a per-path explicit unlock), and must not be held
// across a potentially-blocking operation — a channel send or receive,
// a select case communication (selects with a default are exempt: they
// cannot block), sync.WaitGroup.Wait, sync.Once.Do, acquiring another
// lock, or a solver invocation. Holding a lock across any of these
// turns an unrelated stall into a deadlock of every goroutine sharing
// the cache or registry the lock guards — precisely the failure mode
// that makes batch runs hang instead of reproducing Tables 1–4.
//
// Locks are identified by the printed receiver expression (e.g. e.mu,
// c.cache.mu), which is exact for the suite's shapes: a mutex reached
// through the same selector chain in one function body is the same
// mutex.
func LockDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "lockdiscipline",
		Doc:  "require every mutex acquisition to unlock on all paths and never hold a lock across a may-block call",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						checkLocks(pass, n.Body)
					}
					return true
				case *ast.FuncLit:
					checkLocks(pass, n.Body)
					return true
				}
				return true
			})
		}
	}
	return a
}

// lockEvent is one Lock/RLock call found in a CFG node.
type lockEvent struct {
	call  *ast.CallExpr
	key   string // printed receiver expression, e.g. "e.mu"
	read  bool   // RLock/RUnlock pairing
	block *cfg.Block
	idx   int
}

// mutexCall classifies call as a Lock/Unlock-family method on a
// sync.Mutex or sync.RWMutex and returns the receiver key.
func mutexCall(pass *Pass, call *ast.CallExpr) (key, method string) {
	recv, method := pass.syncSelector(call)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", ""
	}
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		sel := call.Fun.(*ast.SelectorExpr)
		return types.ExprString(sel.X), method
	}
	return "", ""
}

// checkLocks analyzes one function body (outermost statements only;
// nested literals get their own call).
func checkLocks(pass *Pass, body *ast.BlockStmt) {
	graph := cfg.New(body)
	exempt := nonBlockingComms(body)

	// Collect the acquisition events block by block. Node expressions
	// are scanned without descending into nested literals, mirroring
	// the classifier's scoping.
	var locks []lockEvent
	for _, blk := range graph.Blocks {
		for i, node := range blk.Nodes {
			if _, isDefer := node.(*ast.DeferStmt); isDefer {
				continue // defer mu.Lock() is nonsense we don't model
			}
			inspectShallow(node, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if key, method := mutexCall(pass, call); key != "" && (method == "Lock" || method == "RLock") {
					locks = append(locks, lockEvent{
						call: call, key: key, read: method == "RLock",
						block: blk, idx: i,
					})
				}
				return true
			})
		}
	}

	for _, lk := range locks {
		unlockName := "Unlock"
		if lk.read {
			unlockName = "RUnlock"
		}
		isRelease := func(n ast.Node) bool {
			released := false
			inspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if key, method := mutexCall(pass, call); key == lk.key && method == unlockName {
						released = true
					}
				}
				return !released
			})
			// A defer node counts through its call, which
			// inspectShallow skips; look at it directly.
			if d, ok := n.(*ast.DeferStmt); ok && !released {
				if key, method := mutexCall(pass, d.Call); key == lk.key && method == unlockName {
					released = true
				}
			}
			return released
		}
		if !graph.AllPathsContain(lk.block, lk.idx, isRelease) {
			pass.Reportf(lk.call.Pos(), "%s.%s is not released on every path out of the function; unlock on each path or defer %s.%s", lk.key, lockName(lk.read), lk.key, unlockName)
		}
		checkHeldAcross(pass, graph, lk, unlockName, exempt)
	}
}

func lockName(read bool) string {
	if read {
		return "RLock"
	}
	return "Lock"
}

// checkHeldAcross walks every path from the acquisition until its
// release and reports potentially-blocking operations encountered
// while the lock is held. A deferred release never clears the held
// state (the lock stays held to function exit by design), so anything
// blocking after it is still reported.
func checkHeldAcross(pass *Pass, graph *cfg.Graph, lk lockEvent, unlockName string, exempt map[ast.Node]bool) {
	reported := map[ast.Node]bool{}
	releasedBy := func(n ast.Node) bool {
		// Only an explicit (non-deferred) unlock call releases here.
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false
		}
		released := false
		inspectShallow(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if key, method := mutexCall(pass, call); key == lk.key && method == unlockName {
					released = true
				}
			}
			return !released
		})
		return released
	}
	seen := map[*cfg.Block]bool{}
	var walk func(b *cfg.Block, start int)
	walk = func(b *cfg.Block, start int) {
		for i := start; i < len(b.Nodes); i++ {
			n := b.Nodes[i]
			if releasedBy(n) {
				return // lock released on this path
			}
			if op := pass.firstBlocking(n, exempt); op != nil && !reported[op.node] {
				reported[op.node] = true
				pass.Reportf(op.node.Pos(), "%s held across %s; release the lock before blocking (move the %s out of the critical section)", lk.key, op.what, op.what)
			}
		}
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s, 0)
		}
	}
	walk(lk.block, lk.idx+1)
}

// inspectShallow walks n without descending into nested function
// literals or the deferred/spawned calls of defer and go statements.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		return f(m)
	})
}
