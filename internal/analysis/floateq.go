package analysis

import (
	"go/ast"
	"go/token"
)

// FloatEq returns the analyzer forbidding exact equality on
// floating-point operands in the numeric solver packages. The PHMM's
// log-space probabilities and the CSP's scores accumulate rounding
// error, so == / != silently encodes "these two computations took the
// same instruction path" rather than a mathematical statement; the
// packages provide epsilon-comparison helpers instead. Comparisons
// where both operands are compile-time constants are exact and
// allowed.
func FloatEq() *Analyzer {
	a := &Analyzer{
		Name: "floateq",
		Doc:  "forbid ==/!= on floating-point operands in numeric solver packages",
	}
	a.Run = func(pass *Pass) {
		if !matchesAny(pass.Pkg.Path, pass.Cfg.FloatEqPkgs) {
			return
		}
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				xt, yt := info.Types[bin.X], info.Types[bin.Y]
				if xt.Value != nil && yt.Value != nil {
					return true // constant-folded comparison is exact
				}
				if (xt.Type != nil && isFloat(xt.Type)) || (yt.Type != nil && isFloat(yt.Type)) {
					pass.Reportf(bin.Pos(), "%s on floating-point operands is order-of-evaluation sensitive; use an epsilon comparison helper", bin.Op)
				}
				return true
			})
		}
	}
	return a
}
