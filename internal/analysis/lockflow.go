package analysis

import (
	"go/ast"
	"go/types"

	"tableseg/internal/analysis/callgraph"
	"tableseg/internal/analysis/cfg"
)

// LockFlow returns the interprocedural lock-discipline analyzer: a
// mutex may not be held across a call to a module-local function whose
// call-graph summary says it may block. This closes lockdiscipline's
// blind spot — that analyzer sees a blocking operation only when it
// appears literally between Lock and Unlock, so hiding a channel
// receive or a WaitGroup join one helper call deep silenced it. The
// summary makes the helper's transitive behavior visible at the call
// site.
//
// Call sites the intra-procedural classifier already flags (direct
// sync-method calls, solver invocations by name) are skipped here, so
// the two analyzers never double-report one operation.
func LockFlow() *Analyzer {
	a := &Analyzer{
		Name: "lockflow",
		Doc:  "forbid holding a mutex across a call whose interprocedural summary is may-block",
	}
	a.Run = func(pass *Pass) {
		if pass.Facts == nil {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						if fn, _ := pass.Pkg.Info.Defs[n.Name].(*types.Func); fn != nil {
							checkLockFlow(pass, pass.Facts.NodeOf(fn), n.Body)
						}
					}
				case *ast.FuncLit:
					checkLockFlow(pass, pass.Facts.LitNode(n), n.Body)
				}
				return true
			})
		}
	}
	return a
}

// checkLockFlow walks every path from each lock acquisition in body to
// its release and reports calls to may-block module-local callees made
// while the lock is held. The path walk mirrors lockdiscipline's
// checkHeldAcross: a deferred release never clears the held state.
func checkLockFlow(pass *Pass, node *callgraph.Node, body *ast.BlockStmt) {
	if node == nil {
		return
	}
	graph := cfg.New(body)

	var locks []lockEvent
	for _, blk := range graph.Blocks {
		for i, stmt := range blk.Nodes {
			if _, isDefer := stmt.(*ast.DeferStmt); isDefer {
				continue
			}
			inspectShallow(stmt, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if key, method := mutexCall(pass, call); key != "" && (method == "Lock" || method == "RLock") {
					locks = append(locks, lockEvent{
						call: call, key: key, read: method == "RLock",
						block: blk, idx: i,
					})
				}
				return true
			})
		}
	}

	for _, lk := range locks {
		unlockName := "Unlock"
		if lk.read {
			unlockName = "RUnlock"
		}
		releasedBy := func(n ast.Node) bool {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				return false
			}
			released := false
			inspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if key, method := mutexCall(pass, call); key == lk.key && method == unlockName {
						released = true
					}
				}
				return !released
			})
			return released
		}

		reported := map[ast.Node]bool{}
		report := func(stmt ast.Node) {
			inspectShallow(stmt, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				// The intrinsic classifier owns direct blocking calls.
				if what := pass.blockingCall(call); what != "" {
					return true
				}
				callee := node.ResolvedCallee(call)
				if callee == nil || callee.Summary.Blocks == 0 || reported[call] {
					return true
				}
				reported[call] = true
				pass.Reportf(call.Pos(),
					"%s held across call to %s, which may block (%s); release the lock before the call",
					lk.key, callee.Name(), callee.Summary.BlockWhat)
				return true
			})
		}

		seen := map[*cfg.Block]bool{}
		var walk func(b *cfg.Block, start int)
		walk = func(b *cfg.Block, start int) {
			for i := start; i < len(b.Nodes); i++ {
				n := b.Nodes[i]
				if releasedBy(n) {
					return
				}
				report(n)
			}
			if seen[b] {
				return
			}
			seen[b] = true
			for _, s := range b.Succs {
				walk(s, 0)
			}
		}
		walk(lk.block, lk.idx+1)
	}
}
