package analysis

import (
	"go/ast"
	"go/types"
)

// Deprecated returns the analyzer that forbids calls to retired in-repo
// APIs. Go's deprecation story is a doc-comment convention that nothing
// in the standard toolchain enforces, so a "// Deprecated:" alias kept
// for compatibility tends to re-accumulate callers until it can never
// be deleted. This analyzer makes the migration one-way: each entry in
// Config.DeprecatedAPIs names a retired function or method and its
// replacement, call sites are resolved through the type checker (so
// calls through package aliases and embedded receivers are caught, and
// same-named methods on unrelated types are not), and any surviving
// call fails the lint run with a pointer at the replacement.
func Deprecated() *Analyzer {
	a := &Analyzer{
		Name: "deprecated",
		Doc:  "forbid calls to retired in-repo APIs that have a designated replacement",
	}
	a.Run = func(pass *Pass) {
		if len(pass.Cfg.DeprecatedAPIs) == 0 {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass, call)
				if fn == nil {
					return true
				}
				for _, dep := range pass.Cfg.DeprecatedAPIs {
					if dep.matches(fn) {
						pass.Reportf(call.Pos(), "call to deprecated %s: use %s", dep.describe(), dep.Use)
					}
				}
				return true
			})
		}
	}
	return a
}

// calleeFunc resolves a call expression to the function or method it
// invokes, or nil when the callee is not a declared function (a
// conversion, a function-typed variable, a builtin).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// matches reports whether fn is the API this entry retires: same name,
// defining package matching the suffix, and — for methods — the same
// receiver type (pointer receivers are dereferenced, so both e.Run and
// (&e).Run match a Type of "Engine").
func (dep DeprecatedAPI) matches(fn *types.Func) bool {
	if fn.Name() != dep.Name || fn.Pkg() == nil || !pathMatches(fn.Pkg().Path(), dep.PkgSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	recv := sig.Recv()
	if dep.Type == "" {
		return recv == nil
	}
	if recv == nil {
		return false
	}
	return receiverTypeName(recv.Type()) == dep.Type
}

// describe renders the retired API for diagnostics:
// "internal/engine.Engine.Run".
func (dep DeprecatedAPI) describe() string {
	if dep.Type == "" {
		return dep.PkgSuffix + "." + dep.Name
	}
	return dep.PkgSuffix + "." + dep.Type + "." + dep.Name
}

// receiverTypeName names a receiver's defined type, dereferencing one
// pointer level, or "" for receivers that are not defined types.
func receiverTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
