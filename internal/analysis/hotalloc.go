package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Allocation-kind slugs carried in every hotalloc message (inside the
// parenthesized "(kind)" marker), so the allocation inventory and the
// perf work's burn-down tooling can bucket findings mechanically.
const (
	AllocStringConv = "string-conv" // string([]byte): copies the buffer
	AllocBytesConv  = "bytes-conv"  // []byte(string): copies the string
	AllocSprintf    = "sprintf"     // fmt.Sprintf: format machinery + result alloc
	AllocAppendLoop = "append-loop" // append in a loop, slice declared without capacity
	AllocIfaceBox   = "iface-box"   // float64 boxed into an interface argument
)

// HotAlloc returns the analyzer inventorying avoidable allocation
// sites on declared hot paths. Unlike the suite's correctness
// analyzers this one encodes a performance policy, so it only runs
// inside the packages the committed lint/hotpaths.conf opts in
// (Cfg.HotPkgs, loaded by LoadHotPaths; no file, no findings). Each
// finding names its allocation kind in a parseable "(kind)" marker —
// string([]byte) and []byte(string) conversions, fmt.Sprintf calls,
// append-in-loop on a slice declared without a capacity hint, and
// float64 values boxed into interface arguments — so `tableseglint
// -alloc-inventory` can emit the count-by-kind artifact the perf PR
// burns down, with the committed baseline as its worklist.
func HotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "flag avoidable allocation sites (string/[]byte conversions, Sprintf, append-in-loop without prealloc, float64 interface boxing) in declared hot-path packages",
	}
	a.Run = func(pass *Pass) {
		if !matchesAny(pass.Pkg.Path, pass.Cfg.HotPkgs) {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkHotAlloc(pass, fd)
			}
		}
	}
	return a
}

// HotAllocKind extracts the allocation-kind slug from a hotalloc
// message, "" when the message carries none. The inventory mode of the
// driver uses it to bucket findings by kind.
func HotAllocKind(msg string) string {
	const marker = "hot-path allocation ("
	i := strings.Index(msg, marker)
	if i < 0 {
		return ""
	}
	rest := msg[i+len(marker):]
	j := strings.IndexByte(rest, ')')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// checkHotAlloc walks one function body flagging each allocation kind.
func checkHotAlloc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Slices declared in this function without a capacity hint are the
	// append-in-loop candidates; everything else (parameters, fields,
	// preallocated makes) stays silent — an under-approximation, like
	// the rest of the suite.
	noCap := noCapSlices(info, fd.Body)

	loopDepth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its allocations are not per-iteration of our loops
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			if f, ok := n.(*ast.ForStmt); ok {
				ast.Inspect(f.Body, walk)
			} else {
				ast.Inspect(n.(*ast.RangeStmt).Body, walk)
			}
			loopDepth--
			return false
		case *ast.CallExpr:
			checkHotCall(pass, info, n, noCap, loopDepth > 0)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkHotCall classifies one call expression.
func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr, noCap map[types.Object]bool, inLoop bool) {
	// Conversions: string([]byte) and []byte(string).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		if src != nil {
			switch {
			case isStringType(dst) && byteSliceView(src):
				pass.Reportf(call.Pos(), "hot-path allocation (%s): string([]byte) conversion copies the buffer; keep the []byte view or hoist the conversion off the hot path", AllocStringConv)
			case byteSliceView(dst) && isStringType(src):
				pass.Reportf(call.Pos(), "hot-path allocation (%s): []byte(string) conversion copies the string; thread []byte through or hoist the conversion off the hot path", AllocBytesConv)
			}
		}
		return
	}

	// fmt.Sprintf.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				if sel.Sel.Name == "Sprintf" {
					pass.Reportf(call.Pos(), "hot-path allocation (%s): fmt.Sprintf allocates its result and boxes every operand; use strconv or a reused buffer", AllocSprintf)
				}
				// All fmt calls box their operands; the Sprintf finding
				// (or the call being cold-path error formatting) covers
				// it, so skip the iface-box check below for fmt.
				return
			}
		}
	}

	// append in a loop on a slice declared without capacity.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			if inLoop && len(call.Args) > 0 {
				if target, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if obj := info.ObjectOf(target); obj != nil && noCap[obj] {
						pass.Reportf(call.Pos(), "hot-path allocation (%s): append in a loop to %q, declared without a capacity hint; preallocate with make(..., 0, n)", AllocAppendLoop, target.Name)
					}
				}
			}
			return
		}
	}

	// float64 boxed into an interface argument.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil {
			break
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.Float64 {
			pass.Reportf(arg.Pos(), "hot-path allocation (%s): float64 boxed into an interface argument; keep the call monomorphic or hoist it off the hot path", AllocIfaceBox)
		}
	}
}

// noCapSlices collects local slice variables declared without a
// capacity hint: `var x []T`, `x := []T{}`, or `x := make([]T, 0)`.
func noCapSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeclStmt:
			if gen, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gen.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == 0 {
						for _, name := range vs.Names {
							record(name)
						}
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if uncappedSliceExpr(info, n.Rhs[i]) {
					record(id)
				}
			}
		}
		return true
	})
	return out
}

// uncappedSliceExpr reports whether e constructs an empty slice with
// no capacity hint: a literal `[]T{}` or `make([]T, 0)`.
func uncappedSliceExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return false
		}
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); !isBuiltin {
			return false
		}
		// make([]T, 0) without a capacity argument.
		if len(e.Args) != 2 {
			return false
		}
		tv, ok := info.Types[e.Args[1]]
		return ok && tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// callSignature resolves the signature of a (non-conversion) call.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramTypeAt returns the declared type of the parameter receiving
// argument i, unwrapping the variadic slice element; nil past the end
// of a non-variadic signature.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}
