package analysis

import (
	"go/ast"
	"go/types"

	"tableseg/internal/analysis/callgraph"
)

// CtxFlow returns the interprocedural context-threading analyzer. It
// is ctxdiscipline's missing half: ctxdiscipline checks signatures (an
// entry point must accept a context) while ctxflow checks that the
// accepted context actually reaches the work — in the serving and
// solver packages, a function holding a context.Context must pass a
// context derived from it into every call whose interprocedural
// summary says the callee may park indefinitely (channel operations,
// WaitGroup joins, solver invocations, transitively through helpers),
// and may not call bare time.Sleep, which no context interrupts.
//
// Only cancellation-relevant parking counts: acquiring a mutex inside
// a short critical-section helper does not require a context. Direct
// channel operations in the function's own body are likewise out of
// scope here — goroleak and chancontract already govern them, and a
// select on ctx.Done is the normal way to thread a context into one.
//
// When the offending callee is itself in a ctxflow-scoped package and
// merely fails to propagate the context onward, the finding is
// reported at the callee's own definition (by its package's run), not
// at every caller.
func CtxFlow() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "require a held context.Context to reach every may-block callee; forbid bare time.Sleep with a context in hand",
	}
	a.Run = func(pass *Pass) {
		if pass.Facts == nil || !matchesAny(pass.Pkg.Path, pass.Cfg.CtxFlowPkgs) {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := pass.Facts.NodeOf(fn)
				if node == nil {
					continue
				}
				sum := &node.Summary
				if !sum.HasCtx {
					continue
				}
				for _, issue := range sum.CtxIssues {
					reportCtxIssue(pass, fd.Name.Name, issue)
				}
			}
		}
	}
	return a
}

// reportCtxIssue renders one threading failure.
func reportCtxIssue(pass *Pass, fnName string, issue callgraph.CtxIssue) {
	switch issue.Kind {
	case callgraph.CtxSevered:
		pass.Reportf(issue.Site.Pos(),
			"%s holds a context but calls %s, which may block (%s) and accepts no context; cancellation cannot reach it",
			fnName, issue.Callee, issue.What)
	case callgraph.CtxDropped:
		pass.Reportf(issue.Site.Pos(),
			"%s drops its context: the call to %s may block (%s) but receives no context derived from %s's parameter",
			fnName, issue.Callee, issue.What, fnName)
	case callgraph.CtxUnthreaded:
		// In-scope callees report this at their own definition.
		if matchesAny(issue.CalleePath, pass.Cfg.CtxFlowPkgs) {
			return
		}
		pass.Reportf(issue.Site.Pos(),
			"%s passes its context to %s, but the callee does not thread it into its blocking work (%s)",
			fnName, issue.Callee, issue.What)
	case callgraph.CtxSleep:
		pass.Reportf(issue.Site.Pos(),
			"%s holds a context but parks in bare time.Sleep; use a timer select with ctx.Done so cancellation interrupts the wait",
			fnName)
	}
}
