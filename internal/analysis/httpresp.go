package analysis

import (
	"go/ast"
	"go/types"

	"tableseg/internal/analysis/callgraph"
	"tableseg/internal/analysis/cfg"
)

// HTTPResp returns the handler-contract analyzer for the daemon's
// serving path. For every handler-shaped function (one taking both an
// http.ResponseWriter and a *http.Request) it enforces three
// invariants over the control-flow graph, using the call-graph
// summaries to see through response helpers like writeJSON/writeError:
//
//   - every path to the exit responds: each branch (error branches
//     included) writes the status or body, or calls something whose
//     summary proves it does — a handler that silently returns leaves
//     the client a 200 with an empty body it never chose;
//   - the status is written at most once per path: a second
//     WriteHeader (or http.Error after a write) is dropped by net/http
//     with a runtime warning, masking which status the client saw;
//   - headers are not mutated after the response starts: a
//     Header().Set after the first write is silently lost.
//
// Functions that merely take a ResponseWriter (response helpers) get
// the latter two path checks; the must-respond obligation applies only
// to handler-shaped functions, since a helper may legitimately handle
// half the job.
func HTTPResp() *Analyzer {
	a := &Analyzer{
		Name: "httpresp",
		Doc:  "require handlers to respond on every path, set the status at most once, and not mutate headers after the body starts",
	}
	a.Run = func(pass *Pass) {
		if pass.Facts == nil {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := pass.Facts.NodeOf(fn)
				if node == nil || !node.Summary.HasRW {
					continue
				}
				checkHTTPResp(pass, fd, node)
			}
		}
	}
	return a
}

// respSite is one response-affecting call located in the CFG.
type respSite struct {
	ev    callgraph.RespondEvent
	block *cfg.Block
	idx   int
}

func checkHTTPResp(pass *Pass, fd *ast.FuncDecl, node *callgraph.Node) {
	sig, _ := node.Fn.Type().(*types.Signature)
	graph := cfg.New(fd.Body)
	events := node.RespondEvents()

	// Locate every event in the CFG. Events inside nested literals or
	// goroutines are not nodes of this graph and are skipped, matching
	// the summary's own shallow path analysis.
	var sites []respSite
	for _, blk := range graph.Blocks {
		for i, stmt := range blk.Nodes {
			inspectShallow(stmt, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if ev, ok := events[call]; ok {
						sites = append(sites, respSite{ev: ev, block: blk, idx: i})
					}
				}
				return true
			})
		}
	}

	// Must-respond, for handler-shaped functions only.
	if callgraph.HandlerShaped(sig) && !node.Summary.RespondsAll {
		pass.Reportf(fd.Name.Pos(),
			"handler %s does not respond on every path: some branch returns without writing a response or delegating to something that does",
			fd.Name.Name)
	}

	// Status at most once per path, and no header mutation after the
	// response has started.
	for _, later := range sites {
		if !later.ev.Status && !later.ev.HeaderMut {
			continue
		}
		for _, earlier := range sites {
			if earlier.ev.Call == later.ev.Call || !earlier.ev.Respond {
				continue
			}
			if !precedes(graph, earlier, later) {
				continue
			}
			if later.ev.Status {
				pass.Reportf(later.ev.Call.Pos(),
					"status written twice on a path: %s follows %s; net/http drops the second status",
					later.ev.What, earlier.ev.What)
			} else {
				pass.Reportf(later.ev.Call.Pos(),
					"header mutated after the response started: %s follows %s and is silently lost",
					later.ev.What, earlier.ev.What)
			}
			break // one witness per offending site
		}
	}
}

// precedes reports whether a can execute before b on some path: same
// CFG node in source order, earlier in the same block, or in a block
// from which b's block is reachable.
func precedes(graph *cfg.Graph, a, b respSite) bool {
	if a.block == b.block {
		if a.idx != b.idx {
			return a.idx < b.idx
		}
		return a.ev.Call.Pos() < b.ev.Call.Pos()
	}
	seen := map[*cfg.Block]bool{}
	var walk func(blk *cfg.Block) bool
	walk = func(blk *cfg.Block) bool {
		if blk == b.block {
			return true
		}
		if seen[blk] {
			return false
		}
		seen[blk] = true
		for _, s := range blk.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	for _, s := range a.block.Succs {
		if walk(s) {
			return true
		}
	}
	// b later in a's own block is covered by the same-block case; a
	// back-edge from a's block to itself would be caught by Succs.
	return false
}
