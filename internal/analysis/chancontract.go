package analysis

import (
	"go/ast"
	"go/types"
)

// ChanContract returns the analyzer enforcing channel ownership across
// exported APIs: a channel returned by an exported function or method
// is a stream the caller will range over, so the producing side must
// close it — exactly once, and only from a context that cannot race
// its own senders. Concretely:
//
//  1. an exported function whose result list includes a channel must
//     close that channel somewhere (typically in the goroutine that
//     produces into it); a never-closed result channel strands every
//     caller that ranges over it;
//  2. a channel may have at most one close site — two close sites are
//     a latent "close of closed channel" panic;
//  3. if the close site and a send site live in different goroutines,
//     the closer must join the senders first (a sync.WaitGroup.Wait
//     before the close): closing while another goroutine can still
//     send is a "send on closed channel" panic under racing schedules;
//  4. no function may close a channel it received as a parameter: the
//     receiver of a channel is a consumer, and only the producing side
//     knows when the stream is complete.
//
// The analysis is intra-procedural and identifier-based, matching the
// fan-out/fan-in shapes this codebase uses (local channel, worker
// literals, joiner literal).
func ChanContract() *Analyzer {
	a := &Analyzer{
		Name: "chancontract",
		Doc:  "returned channels must be closed exactly once, after joining senders; never close a received channel",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkCloses(pass, fn)
				if ast.IsExported(fn.Name.Name) {
					checkReturnedChannels(pass, fn)
				}
			}
		}
	}
	return a
}

// closeSitesOf finds every close(ch) call in fn for any channel
// object, keyed by the channel's object, with the innermost function
// literal containing each site (nil = the outer body).
type closeSite struct {
	call *ast.CallExpr
	lit  *ast.FuncLit
}

func closeSitesOf(pass *Pass, fn *ast.FuncDecl) map[types.Object][]closeSite {
	sites := map[types.Object][]closeSite{}
	var litStack []*ast.FuncLit
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litStack = append(litStack, n)
			ast.Inspect(n.Body, walk)
			litStack = litStack[:len(litStack)-1]
			return false
		case *ast.CallExpr:
			if obj := closedChannel(pass, n); obj != nil {
				var lit *ast.FuncLit
				if len(litStack) > 0 {
					lit = litStack[len(litStack)-1]
				}
				sites[obj] = append(sites[obj], closeSite{call: n, lit: lit})
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
	return sites
}

// closedChannel returns the channel object closed by call, or nil if
// call is not close(ident).
func closedChannel(pass *Pass, call *ast.CallExpr) types.Object {
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "close" || len(call.Args) != 1 {
		return nil
	}
	if b, ok := pass.Pkg.Info.ObjectOf(fun).(*types.Builtin); !ok || b.Name() != "close" {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Pkg.Info.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
		return nil
	}
	return obj
}

// checkCloses enforces rules 2–4 for every channel closed anywhere in
// fn (exported or not: a double close panics regardless of export).
func checkCloses(pass *Pass, fn *ast.FuncDecl) {
	params := map[types.Object]bool{}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Pkg.Info.ObjectOf(name); obj != nil {
					params[obj] = true
				}
			}
		}
	}
	for ch, sites := range closeSitesOf(pass, fn) {
		for _, s := range sites[1:] {
			pass.Reportf(s.call.Pos(), "channel %s is closed in more than one place; exactly one owner may close a channel", ch.Name())
		}
		if params[ch] {
			pass.Reportf(sites[0].call.Pos(), "%s closes channel parameter %s; only the producing side closes a channel, and %s received this one", fn.Name.Name, ch.Name(), fn.Name.Name)
		}
		checkSendRace(pass, fn, ch, sites[0])
	}
}

// checkSendRace enforces rule 3: a close site in one goroutine with a
// send site in another must be preceded by a WaitGroup.Wait in the
// closer's own body (the join that guarantees the senders are gone).
func checkSendRace(pass *Pass, fn *ast.FuncDecl, ch types.Object, site closeSite) {
	foreignSend := false
	var litStack []*ast.FuncLit
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if foreignSend {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			litStack = append(litStack, n)
			ast.Inspect(n.Body, walk)
			litStack = litStack[:len(litStack)-1]
			return false
		case *ast.SendStmt:
			id, ok := n.Chan.(*ast.Ident)
			if !ok || pass.Pkg.Info.ObjectOf(id) != ch {
				return true
			}
			var lit *ast.FuncLit
			if len(litStack) > 0 {
				lit = litStack[len(litStack)-1]
			}
			if lit != site.lit {
				foreignSend = true
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
	if !foreignSend {
		return
	}
	// The closer must join first: a WaitGroup.Wait positioned before
	// the close in the closer's own context.
	var closerBody ast.Node = fn.Body
	if site.lit != nil {
		closerBody = site.lit.Body
	}
	joined := false
	ast.Inspect(closerBody, func(n ast.Node) bool {
		if joined {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != site.lit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= site.call.Pos() {
			return true
		}
		if recv, method := pass.syncSelector(call); recv == "WaitGroup" && method == "Wait" {
			joined = true
		}
		return true
	})
	if !joined {
		pass.Reportf(site.call.Pos(), "close of %s can race sends from another goroutine; join the senders (wg.Wait) before closing, or close from the sole sender", ch.Name())
	}
}

// checkReturnedChannels enforces rule 1 on exported functions.
func checkReturnedChannels(pass *Pass, fn *ast.FuncDecl) {
	if fn.Type.Results == nil {
		return
	}
	returnsChan := false
	for _, field := range fn.Type.Results.List {
		if t := pass.Pkg.Info.TypeOf(field.Type); t != nil {
			if ch, ok := t.Underlying().(*types.Chan); ok && ch.Dir() != types.SendOnly {
				returnsChan = true
			}
		}
	}
	if !returnsChan {
		return
	}
	sites := closeSitesOf(pass, fn)

	// Gather the channel objects handed back by return statements in
	// the outer body (returns inside literals return from the literal,
	// not from fn).
	seen := map[types.Object]bool{}
	var walkReturns func(n ast.Node) bool
	walkReturns = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				obj := channelObject(pass, res)
				if obj == nil {
					// Returning a fresh or non-local channel expression:
					// nothing in this function can ever close it.
					if t := pass.Pkg.Info.TypeOf(res); t != nil {
						if ch, ok := t.Underlying().(*types.Chan); ok && ch.Dir() != types.SendOnly {
							pass.Reportf(res.Pos(), "%s returns a channel that is never closed; the producing goroutine must close it so callers ranging over it terminate", fn.Name.Name)
						}
					}
					continue
				}
				if seen[obj] {
					continue
				}
				seen[obj] = true
				if len(sites[obj]) == 0 {
					pass.Reportf(n.Pos(), "%s returns channel %s but never closes it; the producing goroutine must close it so callers ranging over it terminate", fn.Name.Name, obj.Name())
				}
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walkReturns)
}
