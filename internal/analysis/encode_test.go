package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Analyzer: "goroleak",
			Pos:      token.Position{Filename: "internal/engine/engine.go", Line: 321, Column: 2},
			Message:  "goroutine launched in exported Run has no provable exit path",
		},
		{
			Analyzer: "floateq",
			Pos:      token.Position{Filename: "internal/csp/solve.go", Line: 7, Column: 5},
			Message:  "== on floating-point operands",
		},
	}
}

func TestEncodeJSON(t *testing.T) {
	out, err := EncodeJSON(sampleDiags())
	if err != nil {
		t.Fatal(err)
	}
	var decoded []JSONDiagnostic
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(decoded) != 2 {
		t.Fatalf("got %d entries, want 2", len(decoded))
	}
	if decoded[0].Analyzer != "goroleak" || decoded[0].File != "internal/engine/engine.go" || decoded[0].Line != 321 {
		t.Errorf("first entry mangled: %+v", decoded[0])
	}
}

func TestEncodeJSONEmpty(t *testing.T) {
	out, err := EncodeJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("empty diagnostics must encode as [], got %q", out)
	}
}

// TestEncodeSARIFValid checks the emitted log against the SARIF 2.1.0
// schema's required properties (the subset that applies to the shapes
// we emit): a log requires version and runs; a run requires tool; a
// tool requires driver; a driver requires name; every result requires
// a message; reportingDescriptors require an id; ruleIndex must index
// the driver's rules array at the entry whose id is ruleId; region
// lines and columns are 1-based.
func TestEncodeSARIFValid(t *testing.T) {
	out, err := EncodeSARIF(sampleDiags(), Suite())
	if err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if v, _ := log["version"].(string); v != "2.1.0" {
		t.Fatalf("version = %q, want 2.1.0", log["version"])
	}
	if s, _ := log["$schema"].(string); !strings.Contains(s, "sarif-2.1.0") {
		t.Errorf("$schema = %q does not pin 2.1.0", s)
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs missing or not a single-element array: %v", log["runs"])
	}
	run := runs[0].(map[string]any)
	tool, ok := run["tool"].(map[string]any)
	if !ok {
		t.Fatal("run.tool missing")
	}
	driver, ok := tool["driver"].(map[string]any)
	if !ok {
		t.Fatal("tool.driver missing")
	}
	if name, _ := driver["name"].(string); name != "tableseglint" {
		t.Errorf("driver.name = %q", driver["name"])
	}
	rules, ok := driver["rules"].([]any)
	if !ok {
		t.Fatal("driver.rules missing")
	}
	if len(rules) != len(Suite()) {
		t.Errorf("rules lists %d analyzers, want %d", len(rules), len(Suite()))
	}
	ruleIDs := make([]string, len(rules))
	for i, r := range rules {
		rule := r.(map[string]any)
		id, _ := rule["id"].(string)
		if id == "" {
			t.Fatalf("rules[%d] has no id", i)
		}
		ruleIDs[i] = id
	}
	results, ok := run["results"].([]any)
	if !ok {
		t.Fatal("run.results missing")
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for i, r := range results {
		res := r.(map[string]any)
		msg, ok := res["message"].(map[string]any)
		if !ok || msg["text"] == "" {
			t.Errorf("results[%d] lacks required message.text", i)
		}
		ruleID, _ := res["ruleId"].(string)
		idx, ok := res["ruleIndex"].(float64)
		if !ok || int(idx) < 0 || int(idx) >= len(ruleIDs) {
			t.Errorf("results[%d].ruleIndex out of range: %v", i, res["ruleIndex"])
			continue
		}
		if ruleIDs[int(idx)] != ruleID {
			t.Errorf("results[%d]: ruleIndex %d resolves to %q, ruleId says %q", i, int(idx), ruleIDs[int(idx)], ruleID)
		}
		locs, ok := res["locations"].([]any)
		if !ok || len(locs) == 0 {
			t.Errorf("results[%d] has no locations", i)
			continue
		}
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		uri, _ := phys["artifactLocation"].(map[string]any)["uri"].(string)
		if uri == "" || strings.Contains(uri, `\`) || strings.HasPrefix(uri, "./") {
			t.Errorf("results[%d] artifact URI not a clean relative URI: %q", i, uri)
		}
		region := phys["region"].(map[string]any)
		if line, _ := region["startLine"].(float64); line < 1 {
			t.Errorf("results[%d] startLine %v not 1-based", i, region["startLine"])
		}
		if col, _ := region["startColumn"].(float64); col < 1 {
			t.Errorf("results[%d] startColumn %v not 1-based", i, region["startColumn"])
		}
	}
}

// TestEncodeSARIFStable pins byte-stability: the same diagnostics must
// serialize identically, so CI artifact diffs mean real changes.
func TestEncodeSARIFStable(t *testing.T) {
	a, err := EncodeSARIF(sampleDiags(), Suite())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSARIF(sampleDiags(), Suite())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("EncodeSARIF is not byte-stable across calls")
	}
}

// TestEncodeSARIFForeignAnalyzer covers the narrowed-suite path: a
// diagnostic whose analyzer is absent from the rules table still gets
// a valid rule entry and index.
func TestEncodeSARIFForeignAnalyzer(t *testing.T) {
	diags := []Diagnostic{{
		Analyzer: "elsewhere",
		Pos:      token.Position{Filename: "x.go", Line: 1, Column: 1},
		Message:  "m",
	}}
	out, err := EncodeSARIF(diags, Suite())
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatal(err)
	}
	res := log.Runs[0].Results[0]
	if res.RuleIndex < 0 || res.RuleIndex >= len(log.Runs[0].Tool.Driver.Rules) {
		t.Fatalf("ruleIndex %d out of range", res.RuleIndex)
	}
	if got := log.Runs[0].Tool.Driver.Rules[res.RuleIndex].ID; got != "elsewhere" {
		t.Errorf("ruleIndex resolves to %q, want elsewhere", got)
	}
}

// TestSortDiagnosticsGlobal pins the cross-package ordering contract
// the CLI relies on.
func TestSortDiagnosticsGlobal(t *testing.T) {
	var diags []Diagnostic
	for _, f := range []string{"b/z.go", "a/cfg/x.go", "a/y.go", "a/y.go"} {
		diags = append(diags, Diagnostic{Analyzer: "determinism", Pos: token.Position{Filename: f, Line: len(diags) + 1, Column: 1}})
	}
	SortDiagnostics(diags)
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		ka := fmt.Sprintf("%s:%06d:%06d:%s", a.Pos.Filename, a.Pos.Line, a.Pos.Column, a.Analyzer)
		kb := fmt.Sprintf("%s:%06d:%06d:%s", b.Pos.Filename, b.Pos.Line, b.Pos.Column, b.Analyzer)
		if ka > kb {
			t.Errorf("out of order: %s before %s", ka, kb)
		}
	}
}

// TestEncodeSARIFInterprocAnalyzers pins the SARIF shape of the three
// interprocedural analyzers: each is a registered rule (so viewers can
// show its doc string) and a diagnostic from each maps ruleId and
// ruleIndex consistently.
func TestEncodeSARIFInterprocAnalyzers(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "ctxflow",
			Pos:      token.Position{Filename: "internal/engine/engine.go", Line: 10, Column: 2},
			Message:  "Run holds a context but calls engine.join, which may block (sync.WaitGroup.Wait) and accepts no context; cancellation cannot reach it",
		},
		{
			Analyzer: "httpresp",
			Pos:      token.Position{Filename: "internal/server/server.go", Line: 20, Column: 6},
			Message:  "handler handleSegment does not respond on every path: some branch returns without writing a response or delegating to something that does",
		},
		{
			Analyzer: "lockflow",
			Pos:      token.Position{Filename: "internal/engine/engine.go", Line: 30, Column: 2},
			Message:  "e.mu held across call to engine.(*Engine).drain, which may block (channel receive); release the lock before the call",
		},
	}
	out, err := EncodeSARIF(diags, Suite())
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("invalid SARIF: %v", err)
	}
	rules := log.Runs[0].Tool.Driver.Rules
	byID := map[string]int{}
	for i, r := range rules {
		byID[r.ID] = i
	}
	for _, name := range []string{"ctxflow", "lockflow", "httpresp"} {
		idx, ok := byID[name]
		if !ok {
			t.Errorf("rule %q missing from driver rules", name)
			continue
		}
		if rules[idx].ShortDescription.Text == "" {
			t.Errorf("rule %q has no short description", name)
		}
	}
	if len(log.Runs[0].Results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(log.Runs[0].Results), len(diags))
	}
	for i, res := range log.Runs[0].Results {
		if res.RuleIndex < 0 || res.RuleIndex >= len(rules) {
			t.Fatalf("results[%d]: ruleIndex %d out of range", i, res.RuleIndex)
		}
		if rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("results[%d]: ruleIndex resolves to %q, ruleId %q", i, rules[res.RuleIndex].ID, res.RuleID)
		}
	}
}
