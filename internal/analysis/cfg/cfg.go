// Package cfg builds lightweight intra-procedural control-flow graphs
// over go/ast function bodies, for the concurrency-safety analyzers in
// internal/analysis (goroleak, lockdiscipline, chancontract). It uses
// only the standard library, matching the rest of the tableseglint
// suite.
//
// The graph is statement-granular: every basic block carries the
// ast.Nodes executed when control passes through it, in source order.
// Control statements are decomposed — an *ast.IfStmt contributes its
// Init and Cond to the block that evaluates them while its branches
// become successor blocks — so walking Block.Nodes never re-enters a
// nested body, and an analyzer can inspect each node without
// double-visiting. Function literals are opaque: a *ast.FuncLit
// appearing in a node is a value, not control flow, and its body is
// graphed separately by the analyzer that cares (New accepts any
// *ast.BlockStmt).
//
// Supported control flow: if/else, for (all three clause shapes),
// range, switch, type switch (incl. fallthrough), select (each comm
// clause becomes a branch whose first node is the communication, so
// path-sensitive analyses see exactly which operation can block on
// which path), return, break, continue, defer, panic-free straight
// lines. Labeled branches and goto are out of scope for this suite's
// shapes and are modeled conservatively as jumps to Exit, which can
// only under-claim "on all paths" facts, never over-claim them.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: the nodes executed when control passes
// through it, and its successor edges.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order,
	// which follows source order).
	Index int
	// Nodes are the statements and decomposed control-statement parts
	// (init statements, conditions, range operands, switch tags)
	// evaluated in this block, in execution order.
	Nodes []ast.Node
	// Succs are the possible next blocks.
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the synthetic sink every return and fall-off-the-end
	// edge targets. It holds no nodes.
	Exit *Block
	// Blocks lists every block including Entry and Exit, in creation
	// (≈ source) order.
	Blocks []*Block
	// Defers are the defer statements of this body (outermost function
	// only — defers inside nested function literals belong to those
	// literals' own graphs). Each also appears as a node in its block,
	// so path queries can reason about where it was registered.
	Defers []*ast.DeferStmt
}

// New builds the graph of body. A nil body yields a two-block graph
// (Entry → Exit) with no nodes.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	cur := b.g.Entry
	if body != nil {
		cur = b.stmtList(cur, body.List)
	}
	b.edge(cur, b.g.Exit)
	return b.g
}

type loopFrame struct {
	brk  *Block // break target (the block after the loop/switch/select)
	cont *Block // continue target (the loop latch); nil for switch/select
}

type builder struct {
	g     *Graph
	loops []loopFrame
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// stmtList extends the graph with each statement in turn and returns
// the fall-through continuation block.
func (b *builder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt extends the graph with s starting at cur and returns the block
// holding the fall-through continuation.
func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		then := b.newBlock()
		b.edge(cur, then)
		join := b.newBlock()
		after := b.stmtList(then, s.Body.List)
		b.edge(after, join)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els)
			b.edge(b.stmt(els, s.Else), join)
		} else {
			b.edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		latch := b.newBlock()
		exit := b.newBlock()
		if s.Post != nil {
			latch.Nodes = append(latch.Nodes, s.Post)
		}
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, exit)
		}
		b.loops = append(b.loops, loopFrame{brk: exit, cont: latch})
		after := b.stmtList(body, s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(after, latch)
		b.edge(latch, head)
		return exit

	case *ast.RangeStmt:
		// The ranged operand is evaluated on entry; modeling it in the
		// loop head (re-scanned per iteration) is conservative for path
		// facts and lets a channel-typed operand register as a blocking
		// receive on every pass.
		head := b.newBlock()
		b.edge(cur, head)
		head.Nodes = append(head.Nodes, s.X)
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		b.edge(head, exit) // ranges may run zero iterations
		b.loops = append(b.loops, loopFrame{brk: exit, cont: head})
		after := b.stmtList(body, s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(after, head)
		return exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.caseClauses(cur, s.Body.List)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.caseClauses(cur, s.Body.List)

	case *ast.SelectStmt:
		// Each comm clause becomes a branch whose first node is the
		// communication, so a path query through a case sees exactly
		// which send/receive can block there; a default clause is a
		// communication-free branch, which is what makes the whole
		// select non-blocking to path-sensitive analyses. A bare
		// `select {}` has no branches at all and never reaches join.
		join := b.newBlock()
		b.loops = append(b.loops, loopFrame{brk: join})
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(cur, cb)
			if comm.Comm != nil {
				cb = b.stmt(cb, comm.Comm)
			}
			b.edge(b.stmtList(cb, comm.Body), join)
		}
		b.loops = b.loops[:len(b.loops)-1]
		return join

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.g.Exit)
		return b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		switch {
		case s.Tok == token.BREAK && s.Label == nil:
			if t := b.branchTarget(func(f loopFrame) *Block { return f.brk }); t != nil {
				b.edge(cur, t)
			}
		case s.Tok == token.CONTINUE && s.Label == nil:
			if t := b.branchTarget(func(f loopFrame) *Block { return f.cont }); t != nil {
				b.edge(cur, t)
			}
		case s.Tok == token.FALLTHROUGH:
			// handled by caseClauses via explicit next-clause edges.
			cur.Nodes = append(cur.Nodes, s)
			return cur
		default:
			// goto / labeled branch: modeled as a jump to Exit
			// (conservative for all-paths facts).
			b.edge(cur, b.g.Exit)
		}
		return b.newBlock()

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		cur.Nodes = append(cur.Nodes, s)
		return cur

	case *ast.LabeledStmt:
		return b.stmt(cur, s.Stmt)

	case nil:
		return cur

	default:
		// Plain statements: assignments, sends, expression statements,
		// declarations, go statements, inc/dec, empty.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// branchTarget walks the loop stack innermost-out and returns the
// first non-nil target selected by pick.
func (b *builder) branchTarget(pick func(loopFrame) *Block) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if t := pick(b.loops[i]); t != nil {
			return t
		}
	}
	return nil
}

// caseClauses wires a switch body: every clause branches from cur,
// fallthrough chains to the next clause, and a missing default adds a
// skip edge.
func (b *builder) caseClauses(cur *Block, clauses []ast.Stmt) *Block {
	join := b.newBlock()
	b.loops = append(b.loops, loopFrame{brk: join})
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(cur, blocks[i])
	}
	hasDefault := false
	for i, cs := range clauses {
		var body []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				blocks[i].Nodes = append(blocks[i].Nodes, e)
			}
			body = cs.Body
		}
		after := b.stmtList(blocks[i], body)
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
				b.edge(after, blocks[i+1])
				continue
			}
		}
		b.edge(after, join)
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		b.edge(cur, join)
	}
	return join
}

// Find locates the block and node index holding n (by node identity).
// It returns (nil, -1) when n is not a node of this graph.
func (g *Graph) Find(n ast.Node) (*Block, int) {
	for _, blk := range g.Blocks {
		for i, node := range blk.Nodes {
			if node == n {
				return blk, i
			}
		}
	}
	return nil, -1
}

// AllPathsContain reports whether every path from the given position
// (the node after index idx of block from; pass idx -1 to include the
// whole block) to Exit passes through a node satisfying pred. It is
// false exactly when some pred-free path reaches Exit; cycles that
// never reach Exit do not count as escapes.
func (g *Graph) AllPathsContain(from *Block, idx int, pred func(ast.Node) bool) bool {
	if from == nil {
		return false
	}
	seen := map[*Block]bool{}
	var escape func(b *Block, start int) bool
	escape = func(b *Block, start int) bool {
		for i := start; i < len(b.Nodes); i++ {
			if pred(b.Nodes[i]) {
				return false // this path is covered
			}
		}
		if b == g.Exit {
			return true // reached Exit without pred
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if escape(s, 0) {
				return true
			}
		}
		return false
	}
	return !escape(from, idx+1)
}

// Reaches reports whether Exit is reachable from block from — i.e.
// the position can terminate at all. A `for {}` with no break has no
// path to Exit.
func (g *Graph) Reaches(from *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == g.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}
