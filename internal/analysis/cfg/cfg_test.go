package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a single function declaration
// and returns its graph.
func parseBody(t *testing.T, src string) *Graph {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// callNamed matches a call statement or expression whose callee is the
// bare identifier name (close, unlock, ...).
func callNamed(name string) func(ast.Node) bool {
	match := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
	return func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			return match(n.X)
		case *ast.DeferStmt:
			return match(n.Call)
		case *ast.CallExpr:
			return match(n)
		}
		return false
	}
}

func TestIfBothBranches(t *testing.T) {
	// close() only in the then-branch: not on all paths.
	g := parseBody(t, `
if cond() {
	closer()
}
tail()`)
	if g.AllPathsContain(g.Entry, -1, callNamed("closer")) {
		t.Error("closer() in one if-branch reported as on all paths")
	}
	if !g.AllPathsContain(g.Entry, -1, callNamed("tail")) {
		t.Error("tail() after the if not reported as on all paths")
	}
	if !g.AllPathsContain(g.Entry, -1, callNamed("cond")) {
		t.Error("the if condition not reported as on all paths")
	}
}

func TestIfElseCoversPaths(t *testing.T) {
	g := parseBody(t, `
if cond() {
	closer()
} else {
	closer()
}`)
	if !g.AllPathsContain(g.Entry, -1, callNamed("closer")) {
		t.Error("closer() in both branches not reported as on all paths")
	}
}

func TestIfEarlyReturnEscapes(t *testing.T) {
	g := parseBody(t, `
if cond() {
	return
}
closer()`)
	if g.AllPathsContain(g.Entry, -1, callNamed("closer")) {
		t.Error("early return path reported as containing closer()")
	}
}

func TestForLoopShape(t *testing.T) {
	// A conditional for loop may run zero times: body nodes are not on
	// all paths, statements after the loop are.
	g := parseBody(t, `
for i := 0; i < n; i++ {
	work()
}
closer()`)
	if g.AllPathsContain(g.Entry, -1, callNamed("work")) {
		t.Error("loop body reported as on all paths")
	}
	if !g.AllPathsContain(g.Entry, -1, callNamed("closer")) {
		t.Error("statement after the loop not reported as on all paths")
	}
	if !g.Reaches(g.Entry) {
		t.Error("conditional loop reported as non-terminating")
	}
}

func TestForeverLoopDoesNotReachExit(t *testing.T) {
	g := parseBody(t, `
for {
	work()
}`)
	if g.Reaches(g.Entry) {
		t.Error("for{} without break reported as reaching Exit")
	}
	// Vacuously true: no path reaches Exit at all, so no pred-free
	// path escapes.
	if !g.AllPathsContain(g.Entry, -1, callNamed("never")) {
		t.Error("non-terminating body reported as escaping")
	}
}

func TestForeverLoopWithBreak(t *testing.T) {
	g := parseBody(t, `
for {
	if done() {
		break
	}
	work()
}
closer()`)
	if !g.Reaches(g.Entry) {
		t.Error("breakable loop reported as non-terminating")
	}
	if !g.AllPathsContain(g.Entry, -1, callNamed("closer")) {
		t.Error("closer() after breakable loop not on all paths")
	}
}

func TestRangeLoopOperandOnAllPaths(t *testing.T) {
	// The ranged operand is evaluated even for zero iterations; the
	// body is not.
	g := parseBody(t, `
for range src() {
	work()
}
closer()`)
	if !g.AllPathsContain(g.Entry, -1, callNamed("src")) {
		t.Error("range operand not reported as on all paths")
	}
	if g.AllPathsContain(g.Entry, -1, callNamed("work")) {
		t.Error("range body reported as on all paths")
	}
	if !g.AllPathsContain(g.Entry, -1, callNamed("closer")) {
		t.Error("statement after the range not on all paths")
	}
}

func TestContinueTargetsLatch(t *testing.T) {
	g := parseBody(t, `
for i := 0; i < n; i++ {
	if skip() {
		continue
	}
	work()
}
closer()`)
	if g.AllPathsContain(g.Entry, -1, callNamed("work")) {
		t.Error("continue-skippable work() reported as on all paths")
	}
	if !g.AllPathsContain(g.Entry, -1, callNamed("closer")) {
		t.Error("closer() after continue loop not on all paths")
	}
}

func TestSelectBranches(t *testing.T) {
	// Every select case runs handle() before join, so it is on all
	// paths; the per-case communications are not.
	g := parseBody(t, `
select {
case v := <-a:
	handle(v)
case b <- x:
	handle(x)
}
closer()`)
	if !g.AllPathsContain(g.Entry, -1, callNamed("handle")) {
		t.Error("handle() in every select case not reported as on all paths")
	}
	if !g.AllPathsContain(g.Entry, -1, callNamed("closer")) {
		t.Error("closer() after select not on all paths")
	}
	// A receive appears as a node on its case path.
	recv := func(n ast.Node) bool {
		if asg, ok := n.(*ast.AssignStmt); ok {
			if u, ok := asg.Rhs[0].(*ast.UnaryExpr); ok {
				return u.Op == token.ARROW
			}
		}
		return false
	}
	if g.AllPathsContain(g.Entry, -1, recv) {
		t.Error("one case's receive reported as on all paths")
	}
}

func TestSelectWithDefaultIsNonBlockingPath(t *testing.T) {
	g := parseBody(t, `
select {
case <-a:
	handle()
default:
}
closer()`)
	// The default branch carries no communication: a path with no
	// receive reaches closer().
	comm := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			u, ok := n.X.(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW
		case *ast.SendStmt:
			return true
		}
		return false
	}
	if g.AllPathsContain(g.Entry, -1, comm) {
		t.Error("select with default reported as communicating on all paths")
	}
}

func TestDeferTracking(t *testing.T) {
	g := parseBody(t, `
defer closer()
if cond() {
	return
}
work()`)
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(g.Defers))
	}
	// The defer registration itself is a node on all paths (it
	// precedes the early return), which is how analyzers prove
	// defer-close/defer-unlock coverage.
	if !g.AllPathsContain(g.Entry, -1, callNamed("closer")) {
		t.Error("entry defer not reported as on all paths")
	}
}

func TestDeferAfterEarlyReturnNotOnAllPaths(t *testing.T) {
	g := parseBody(t, `
if cond() {
	return
}
defer closer()
work()`)
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(g.Defers))
	}
	if g.AllPathsContain(g.Entry, -1, callNamed("closer")) {
		t.Error("defer registered after an early return reported as on all paths")
	}
}

func TestSwitchDefaultCoverage(t *testing.T) {
	// Without default the tag can skip every case.
	g := parseBody(t, `
switch tag() {
case 1:
	handle()
case 2:
	handle()
}
closer()`)
	if g.AllPathsContain(g.Entry, -1, callNamed("handle")) {
		t.Error("switch without default reported as handling on all paths")
	}

	g = parseBody(t, `
switch tag() {
case 1:
	handle()
default:
	handle()
}
closer()`)
	if !g.AllPathsContain(g.Entry, -1, callNamed("handle")) {
		t.Error("switch with default in every arm not on all paths")
	}
}

func TestFallthroughChains(t *testing.T) {
	g := parseBody(t, `
switch tag() {
case 1:
	work()
	fallthrough
case 2:
	handle()
default:
	handle()
}`)
	if !g.AllPathsContain(g.Entry, -1, callNamed("handle")) {
		t.Error("fallthrough into handle() arm not reported as on all paths")
	}
}

func TestFindLocatesNodes(t *testing.T) {
	g := parseBody(t, `
work()
if cond() {
	closer()
}`)
	var target ast.Node
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if callNamed("closer")(n) {
				target = n
			}
		}
	}
	if target == nil {
		t.Fatal("closer() node not present in any block")
	}
	blk, idx := g.Find(target)
	if blk == nil || idx < 0 || blk.Nodes[idx] != target {
		t.Errorf("Find(closer) = (%v, %d)", blk, idx)
	}
	if blk, idx := g.Find(&ast.BadStmt{}); blk != nil || idx != -1 {
		t.Error("Find of a foreign node did not return (nil, -1)")
	}
}

func TestAllPathsFromMidBlock(t *testing.T) {
	// From after work(), the earlier closer() no longer covers paths.
	g := parseBody(t, `
closer()
work()
tail()`)
	blk, idx := (*Block)(nil), -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if callNamed("work")(n) {
				blk, idx = b, i
			}
		}
	}
	if blk == nil {
		t.Fatal("work() not found")
	}
	if g.AllPathsContain(blk, idx, callNamed("closer")) {
		t.Error("closer() before the query point reported as covering")
	}
	if !g.AllPathsContain(blk, idx, callNamed("tail")) {
		t.Error("tail() after the query point not covering")
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if g.Entry == nil || g.Exit == nil || !g.Reaches(g.Entry) {
		t.Error("nil body graph malformed")
	}
}

// findCallBlock locates the block holding the first call statement to
// the named function, or nil.
func findCallBlock(g *Graph, name string) *Block {
	pred := callNamed(name)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if pred(n) {
				return b
			}
		}
	}
	return nil
}

// TestGotoIntoLoopBodyConservative pins the conservative goto model: a
// goto — even one targeting a label inside a loop body — is an edge to
// Exit, so nothing downstream of it may be claimed "on all paths",
// while the loop body itself stays reachable through the normal entry.
func TestGotoIntoLoopBodyConservative(t *testing.T) {
	g := parseBody(t, `
if cond() {
	goto inner
}
for i := 0; i < 3; i++ {
inner:
	work()
}
tail()`)
	if !g.AllPathsContain(g.Entry, -1, callNamed("cond")) {
		t.Error("the if condition not on all paths")
	}
	if g.AllPathsContain(g.Entry, -1, callNamed("work")) {
		t.Error("loop body claimed on all paths despite the goto path modeled as an exit")
	}
	if g.AllPathsContain(g.Entry, -1, callNamed("tail")) {
		t.Error("tail() claimed on all paths despite the goto path modeled as an exit")
	}
	wb := findCallBlock(g, "work")
	if wb == nil {
		t.Fatal("loop body absent from the graph")
	}
	if !g.Reaches(wb) {
		t.Error("loop body cannot reach Exit")
	}
}

// TestLabeledContinueAcrossRangesConservative pins the same
// conservatism for a labeled continue jumping out of a nested range:
// modeled as an exit edge, so the outer loop's tail statements lose
// their all-paths claims but stay reachable.
func TestLabeledContinueAcrossRangesConservative(t *testing.T) {
	g := parseBody(t, `
outer:
	for _, x := range xs() {
		_ = x
		for _, y := range ys() {
			_ = y
			if cond() {
				continue outer
			}
			work()
		}
		mid()
	}
	tail()`)
	if g.AllPathsContain(g.Entry, -1, callNamed("work")) {
		t.Error("inner loop body claimed on all paths")
	}
	if g.AllPathsContain(g.Entry, -1, callNamed("tail")) {
		t.Error("tail() claimed on all paths despite the labeled continue modeled as an exit")
	}
	for _, name := range []string{"work", "mid", "tail"} {
		b := findCallBlock(g, name)
		if b == nil {
			t.Fatalf("%s() absent from the graph", name)
		}
		if !g.Reaches(b) {
			t.Errorf("%s() cannot reach Exit", name)
		}
	}
}

// TestSelectDefaultOnlyArm pins that a select with only a default arm
// is a straight line: the single communication-free branch has no skip
// edge, so its body holds on all paths.
func TestSelectDefaultOnlyArm(t *testing.T) {
	g := parseBody(t, `
select {
default:
	work()
}
tail()`)
	if !g.AllPathsContain(g.Entry, -1, callNamed("work")) {
		t.Error("default-only select body not on all paths")
	}
	if !g.AllPathsContain(g.Entry, -1, callNamed("tail")) {
		t.Error("statement after default-only select not on all paths")
	}
}
