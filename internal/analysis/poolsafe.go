package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"tableseg/internal/analysis/callgraph"
	"tableseg/internal/analysis/cfg"
	"tableseg/internal/analysis/dataflow"
	"tableseg/internal/analysis/escape"
)

// PoolSafe returns the analyzer enforcing pool checkout discipline —
// the arena half of the zero-copy contract. The planned pHMM slab
// reuse checks per-iteration EM matrices out of a pool; a checkout
// that misses its Put on some path silently degrades the pool back to
// per-iteration allocation, a checkout that escapes between Get and
// Put aliases a buffer another task will scribble over, and a use
// after Put reads memory the pool may already have handed out again.
// poolsafe proves all three over the CFG, mirroring lockdiscipline's
// acquire/release reasoning: every value obtained from a
// sync.Pool/arena Get (any receiver of type sync.Pool, or a
// module-local named type ending in Pool or Arena with Get/Put
// methods) must reach the matching Put on every path out of the
// function (cfg.AllPathsContain — a deferred Put covers early returns
// by construction), must not escape while checked out (tracked by the
// borrow machinery of internal/analysis/escape, including through
// module-local callees via their escape summaries), and its binding
// must not be touched on any path after an explicit Put.
func PoolSafe() *Analyzer {
	a := &Analyzer{
		Name: "poolsafe",
		Doc:  "a sync.Pool/arena checkout must reach Put on all paths, must not escape between Get and Put, and must not be used after Put",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkPoolSafe(pass, fd)
			}
		}
	}
	return a
}

// poolCall classifies call as a pool Get/Put: a method named Get or
// Put whose receiver is sync.Pool or a module-local named type ending
// in Pool or Arena. The key identifies the pool instance by its
// printed receiver expression, the same identity lockdiscipline uses
// for mutexes.
func poolCall(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	sel, selOk := call.Fun.(*ast.SelectorExpr)
	if !selOk {
		return "", "", false
	}
	method = sel.Sel.Name
	if method != "Get" && method != "Put" {
		return "", "", false
	}
	if recv, m := callgraph.SyncSelector(info, call); recv == "Pool" && m == method {
		return types.ExprString(sel.X), method, true
	}
	selection, selOk := info.Selections[sel]
	if !selOk {
		return "", "", false
	}
	t := selection.Recv()
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	name := named.Obj().Name()
	if !strings.HasSuffix(name, "Pool") && !strings.HasSuffix(name, "Arena") {
		return "", "", false
	}
	return types.ExprString(sel.X), method, true
}

// poolGet is one checkout site: the Get call, the pool it came from,
// its CFG location, the object the result was bound to (nil when the
// result is used unbound), and its provenance bit.
type poolGet struct {
	call  *ast.CallExpr
	key   string
	block *cfg.Block
	idx   int
	bound types.Object
	bit   dataflow.Mask
}

// checkPoolSafe proves the three checkout obligations for every pool
// Get in fd.
func checkPoolSafe(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Collect Get sites (shallow: nested literals check themselves via
	// their own enclosing-decl walk being out of scope here, matching
	// the suite's other CFG analyzers).
	var getCalls []*ast.CallExpr
	inspectShallowBody(fd.Body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, method, ok := poolCall(info, call); ok && method == "Get" {
				getCalls = append(getCalls, call)
			}
		}
	})
	if len(getCalls) == 0 {
		return
	}

	g := cfg.New(fd.Body)
	gets := make([]*poolGet, 0, len(getCalls))
	bitOf := map[*ast.CallExpr]dataflow.Mask{}
	for i, call := range getCalls {
		if i >= 64 {
			break
		}
		key, _, _ := poolCall(info, call)
		block, idx := g.Find(enclosingNode(fd.Body, call))
		pg := &poolGet{call: call, key: key, block: block, idx: idx, bit: 1 << i}
		pg.bound = boundObject(info, fd.Body, call)
		bitOf[call] = pg.bit
		gets = append(gets, pg)
	}

	// Borrow tracking: each Get result is its own source; any escape
	// event carrying its bit is a checkout leak.
	var node *callgraph.Node
	if fn, _ := info.Defs[fd.Name].(*types.Func); fn != nil {
		node = pass.Facts.NodeOf(fn)
	}
	if node == nil {
		return
	}
	outlive := map[types.Object]bool{}
	for _, obj := range escape.ParamObjects(node) {
		if obj != nil {
			outlive[obj] = true
		}
	}
	tr := escape.NewTracker(node, g, escape.For(pass.Facts), escape.TrackerConfig{
		Info:    info,
		Outlive: outlive,
		SourceCall: func(call *ast.CallExpr) dataflow.Mask {
			return bitOf[call]
		},
	})
	events := tr.Events()

	for _, pg := range gets {
		checkGetReachesPut(pass, g, pg)
		for _, ev := range events {
			if ev.Mask&pg.bit == 0 {
				continue
			}
			pass.Reportf(ev.At.Pos(), "pool checkout from %s.Get %s; the pooled buffer must stay function-local until %s.Put (or document the ownership transfer with a tableseglint:ignore directive)",
				pg.key, poolSinkPhrase(ev), pg.key)
		}
		checkUseAfterPut(pass, g, fd, pg)
	}
}

// poolSinkPhrase renders how a checkout escapes.
func poolSinkPhrase(ev escape.Event) string {
	if ev.Kind == escape.EvReturn {
		return "is returned"
	}
	return borrowSinkPhrase(ev)
}

// checkGetReachesPut requires a Put on the same pool on every path
// from the Get to function exit. A deferred Put registered after the
// Get satisfies every path by construction, including early returns.
func checkGetReachesPut(pass *Pass, g *cfg.Graph, pg *poolGet) {
	if pg.block == nil {
		return
	}
	isPut := func(n ast.Node) bool {
		call := callOf(n)
		if call == nil {
			return false
		}
		key, method, ok := poolCall(pass.Pkg.Info, call)
		return ok && method == "Put" && key == pg.key
	}
	if g.AllPathsContain(pg.block, pg.idx, isPut) {
		return
	}
	pass.Reportf(pg.call.Pos(), "pool checkout from %s.Get does not reach %s.Put on every path; add a deferred Put or a Put on each exit (missed Puts silently degrade the pool to per-call allocation)",
		pg.key, pg.key)
}

// checkUseAfterPut reports uses of the checkout's binding after an
// explicit (non-deferred) Put. The forward walk follows successor
// blocks only while they have a single predecessor, a cheap dominance
// approximation that never flags a use reachable without passing the
// Put.
func checkUseAfterPut(pass *Pass, g *cfg.Graph, fd *ast.FuncDecl, pg *poolGet) {
	if pg.bound == nil {
		return
	}
	info := pass.Pkg.Info
	reportIn := func(e ast.Expr) {
		ast.Inspect(e, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			id, ok := m.(*ast.Ident)
			if !ok || info.Uses[id] != pg.bound {
				return true
			}
			pass.Reportf(id.Pos(), "pool checkout %q used after %s.Put; the buffer may already be checked out by another goroutine", id.Name, pg.key)
			return true
		})
	}
	// scanNode reports uses inside n and returns true when n strongly
	// rebinds the checkout variable (a fresh Get, say) — the old
	// checkout is dead past that point, so the scan must stop rather
	// than flag legitimate uses of the new one.
	scanNode := func(n ast.Node) (rebound bool) {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, rhs := range as.Rhs {
				reportIn(rhs)
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if info.Uses[id] == pg.bound || info.Defs[id] == pg.bound {
						rebound = true
					}
					continue
				}
				reportIn(lhs) // buf[i] = ... is a use of buf
			}
			return rebound
		}
		if e, ok := n.(ast.Expr); ok {
			reportIn(e)
			return false
		}
		if es, ok := n.(*ast.ExprStmt); ok {
			reportIn(es.X)
			return false
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok {
				reportIn(e)
				return false
			}
			return true
		})
		return false
	}
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				continue // a deferred Put runs at exit: nothing follows it
			}
			call := callOf(n)
			if call == nil {
				continue
			}
			key, method, ok := poolCall(info, call)
			if !ok || method != "Put" || key != pg.key {
				continue
			}
			// Same block after the Put, then the single-predecessor
			// successor chain.
			stopped := false
			for _, later := range b.Nodes[i+1:] {
				if scanNode(later) {
					stopped = true
					break
				}
			}
			if stopped {
				continue
			}
			seen := map[*cfg.Block]bool{b: true}
			frontier := b.Succs
			for len(frontier) > 0 {
				var next []*cfg.Block
				for _, s := range frontier {
					if seen[s] || len(predsOf(g, s)) != 1 {
						continue
					}
					seen[s] = true
					rebound := false
					for _, n := range s.Nodes {
						if scanNode(n) {
							rebound = true
							break
						}
					}
					if !rebound {
						next = append(next, s.Succs...)
					}
				}
				frontier = next
			}
		}
	}
}

// predsOf computes a block's predecessors (the graph stores only
// successor edges).
func predsOf(g *cfg.Graph, target *cfg.Block) []*cfg.Block {
	var preds []*cfg.Block
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == target {
				preds = append(preds, b)
				break
			}
		}
	}
	return preds
}

// callOf extracts the call of an expression statement, deferred call,
// or bare call node.
func callOf(n ast.Node) *ast.CallExpr {
	switch n := n.(type) {
	case *ast.CallExpr:
		return n
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			return call
		}
	case *ast.DeferStmt:
		return n.Call
	}
	return nil
}

// boundObject finds the object a Get result is bound to: the single
// LHS identifier of the assignment whose RHS is (or wraps, via a type
// assertion or conversion) the call.
func boundObject(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr) types.Object {
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if !containsCall(as.Rhs[0], call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			obj = info.ObjectOf(id)
		}
		return false
	})
	return obj
}

// containsCall reports whether e is call, possibly wrapped in parens,
// a type assertion or a conversion.
func containsCall(e ast.Expr, call *ast.CallExpr) bool {
	for {
		switch x := e.(type) {
		case *ast.CallExpr:
			if x == call {
				return true
			}
			// A conversion of the result: T(pool.Get()).
			if len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return false
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// enclosingNode maps an expression to the statement-level node the CFG
// records for it: the innermost statement containing it.
func enclosingNode(body *ast.BlockStmt, target ast.Node) ast.Node {
	var best ast.Node = target
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if n == target {
			for i := len(stack) - 1; i >= 0; i-- {
				if _, ok := stack[i].(ast.Stmt); ok {
					best = stack[i]
					return false
				}
			}
			return false
		}
		stack = append(stack, n)
		return true
	})
	return best
}

// inspectShallowBody walks body without descending into nested
// function literals.
func inspectShallowBody(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
