package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// This file implements baseline suppression: `tableseglint -baseline
// old.json` replays a previously recorded -json run and drops every
// finding already present in it, so CI fails only on findings
// introduced since the baseline was cut. Matching deliberately ignores
// line and column — refactors move code — and keys on (analyzer, file,
// message) as a multiset, so two identical findings in one file are
// suppressed only if the baseline recorded two.

// Baseline is a multiset of previously recorded findings.
type Baseline struct {
	counts map[baselineKey]int
}

type baselineKey struct {
	Analyzer string
	File     string
	Message  string
}

// LoadBaseline reads a baseline file in the exact format emitted by
// `tableseglint -json`.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var entries []JSONDiagnostic
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parsing baseline %s (expected the -json output format): %w", path, err)
	}
	b := &Baseline{counts: map[baselineKey]int{}}
	for _, e := range entries {
		b.counts[baselineKey{e.Analyzer, e.File, e.Message}]++
	}
	return b, nil
}

// Filter returns the diagnostics not covered by the baseline, in the
// original order, plus the number suppressed. Each baseline entry
// suppresses at most one diagnostic.
func (b *Baseline) Filter(diags []Diagnostic) (kept []Diagnostic, suppressed int) {
	kept, suppressed, _ = b.FilterStrict(diags)
	return kept, suppressed
}

// FilterStrict is Filter, additionally reporting the stale baseline
// entries: recorded findings that matched nothing in this run, one
// "analyzer file message" line per unmatched count, sorted. A baseline
// accumulating stale entries quietly widens what future regressions it
// can mask, so -baseline-strict turns any staleness into a failure.
func (b *Baseline) FilterStrict(diags []Diagnostic) (kept []Diagnostic, suppressed int, stale []string) {
	remaining := make(map[baselineKey]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	kept = make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		k := baselineKey{d.Analyzer, sarifURI(d.Pos.Filename), d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	for k, n := range remaining {
		for i := 0; i < n; i++ {
			stale = append(stale, fmt.Sprintf("%s %s: %s", k.Analyzer, k.File, k.Message))
		}
	}
	sort.Strings(stale)
	return kept, suppressed, stale
}
