package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the may-block call classifier shared by the
// concurrency analyzers (goroleak, lockdiscipline, chancontract): the
// set of operations after which a goroutine may park indefinitely —
// channel sends and receives, selects without a ready branch,
// sync.WaitGroup.Wait, sync.Once.Do (the loser of a concurrent first
// call parks until the winner finishes), acquiring another mutex, and
// solver invocations (exported Segment/Solve/Fit/Run/Train entry
// points, which by project contract can run for a long time).
//
// Classification is syntactic plus types: it inspects the node's own
// expressions but never descends into nested function literals (their
// bodies execute elsewhere) and treats go/defer statements as
// non-blocking at the point of registration (only their argument
// expressions are evaluated there).

// blockingOp is one potentially-blocking operation found in a node.
type blockingOp struct {
	node ast.Node
	what string // human-readable classification for diagnostics
}

// nonBlockingComms returns the communication clauses (and their
// statements) of every `select` in body that has a default branch:
// those sends and receives only run when already ready, so they never
// block.
func nonBlockingComms(body ast.Node) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	if body == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if comm := c.(*ast.CommClause).Comm; comm != nil {
				out[comm] = true
				// The receive expression inside an assignment or
				// expression statement is what deeper walks encounter.
				ast.Inspect(comm, func(m ast.Node) bool {
					if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						out[u] = true
					}
					return true
				})
			}
		}
		return true
	})
	return out
}

// collectBlocking returns every potentially-blocking operation in n,
// in source order. exempt marks nodes known to be non-blocking
// (communications of selects with a default). The walk skips nested
// function literals and the calls of go/defer statements.
func (p *Pass) collectBlocking(n ast.Node, exempt map[ast.Node]bool) []blockingOp {
	var found []blockingOp
	var visitExpr func(e ast.Expr)
	var visit func(n ast.Node) bool

	mark := func(node ast.Node, what string) {
		found = append(found, blockingOp{node: node, what: what})
	}
	chanTyped := func(e ast.Expr) bool {
		if t := p.Pkg.Info.TypeOf(e); t != nil {
			_, ok := t.Underlying().(*types.Chan)
			return ok
		}
		return false
	}
	visitExpr = func(e ast.Expr) {
		if e != nil {
			ast.Inspect(e, visit)
		}
	}
	visit = func(n ast.Node) bool {
		if n == nil || exempt[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				visitExpr(a)
			}
			return false
		case *ast.DeferStmt:
			for _, a := range n.Call.Args {
				visitExpr(a)
			}
			return false
		case *ast.SendStmt:
			mark(n, "channel send")
			visitExpr(n.Value)
			return false
		case *ast.RangeStmt:
			// Ranging a channel blocks on every receive until the
			// channel is closed.
			if chanTyped(n.X) {
				mark(n, "channel-range receive")
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				mark(n, "channel receive")
				return false
			}
		case *ast.CallExpr:
			if what := p.blockingCall(n); what != "" {
				mark(n, what)
				return false
			}
		}
		return true
	}
	if n != nil {
		// A CFG loop head for `for range ch` is the ranged operand
		// itself; a channel-typed root expression therefore marks the
		// per-iteration blocking receive.
		if e, ok := n.(ast.Expr); ok && chanTyped(e) {
			mark(n, "channel-range receive")
		}
		ast.Inspect(n, visit)
	}
	return found
}

// firstBlocking returns the first potentially-blocking operation in n,
// or nil.
func (p *Pass) firstBlocking(n ast.Node, exempt map[ast.Node]bool) *blockingOp {
	if ops := p.collectBlocking(n, exempt); len(ops) > 0 {
		return &ops[0]
	}
	return nil
}

// blockingCall classifies a call expression: "" when it is not a
// known potentially-blocking call.
func (p *Pass) blockingCall(call *ast.CallExpr) string {
	if recv, method := p.syncSelector(call); recv != "" {
		switch {
		case method == "Wait" && recv == "WaitGroup":
			return "sync.WaitGroup.Wait"
		case method == "Do" && recv == "Once":
			return "sync.Once.Do"
		case (method == "Lock" || method == "RLock") && (recv == "Mutex" || recv == "RWMutex"):
			return "sync." + recv + "." + method
		}
	}
	// time.Sleep parks the goroutine.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && p.pkgNameOf(id) == "time" && sel.Sel.Name == "Sleep" {
			return "time.Sleep"
		}
	}
	// Solver invocations: exported entry points named with the
	// project's long-running verb prefixes (Segment/Solve/Fit/Run/
	// Train) can run until their context cancels.
	var nameID *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		nameID = fun
	case *ast.SelectorExpr:
		nameID = fun.Sel
	}
	if nameID != nil && ast.IsExported(nameID.Name) && hasEntryPrefix(nameID.Name) {
		if _, isFunc := p.Pkg.Info.Uses[nameID].(*types.Func); isFunc {
			return "solver invocation " + nameID.Name
		}
	}
	return ""
}

// syncSelector resolves a method call's receiver to a type declared in
// package sync, returning the type and method names ("" when the call
// is not a sync-type method).
func (p *Pass) syncSelector(call *ast.CallExpr) (recvType, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	selection, ok := p.Pkg.Info.Selections[sel]
	if !ok {
		return "", ""
	}
	t := selection.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	return obj.Name(), sel.Sel.Name
}

// hasEntryPrefix reports whether name carries one of the long-running
// entry-point verb prefixes shared with ctxdiscipline.
func hasEntryPrefix(name string) bool {
	for _, p := range entryPointPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
