package analysis

import (
	"go/ast"

	"tableseg/internal/analysis/callgraph"
)

// This file adapts the shared may-block call classifier — which now
// lives in internal/analysis/callgraph so the interprocedural summary
// computation can use the same definition — to the Pass-method shape
// the intra-procedural concurrency analyzers (goroleak,
// lockdiscipline, chancontract) were written against. The
// classification itself (channel operations, selects without a ready
// branch, sync.WaitGroup.Wait, sync.Once.Do, mutex acquisition,
// time.Sleep, solver invocations) is documented on the callgraph
// package.

// blockingOp is one potentially-blocking operation found in a node.
type blockingOp struct {
	node ast.Node
	what string // human-readable classification for diagnostics
}

// nonBlockingComms returns the communication clauses (and their
// statements) of every `select` in body that has a default branch:
// those sends and receives only run when already ready, so they never
// block.
func nonBlockingComms(body ast.Node) map[ast.Node]bool {
	return callgraph.NonBlockingComms(body)
}

// collectBlocking returns every potentially-blocking operation in n,
// in source order. exempt marks nodes known to be non-blocking
// (communications of selects with a default). The walk skips nested
// function literals and the calls of go/defer statements.
func (p *Pass) collectBlocking(n ast.Node, exempt map[ast.Node]bool) []blockingOp {
	ops := callgraph.CollectBlocking(p.Pkg.Info, n, exempt)
	out := make([]blockingOp, len(ops))
	for i, op := range ops {
		out[i] = blockingOp{node: op.Node, what: op.What}
	}
	return out
}

// firstBlocking returns the first potentially-blocking operation in n,
// or nil.
func (p *Pass) firstBlocking(n ast.Node, exempt map[ast.Node]bool) *blockingOp {
	if ops := p.collectBlocking(n, exempt); len(ops) > 0 {
		return &ops[0]
	}
	return nil
}

// blockingCall classifies a call expression: "" when it is not a
// known potentially-blocking call.
func (p *Pass) blockingCall(call *ast.CallExpr) string {
	what, _ := callgraph.BlockingCall(p.Pkg.Info, call)
	return what
}

// syncSelector resolves a method call's receiver to a type declared in
// package sync, returning the type and method names ("" when the call
// is not a sync-type method).
func (p *Pass) syncSelector(call *ast.CallExpr) (recvType, method string) {
	return callgraph.SyncSelector(p.Pkg.Info, call)
}

// hasEntryPrefix reports whether name carries one of the long-running
// entry-point verb prefixes shared with ctxdiscipline.
func hasEntryPrefix(name string) bool {
	return callgraph.HasEntryPrefix(name)
}
