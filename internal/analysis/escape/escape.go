// Package escape computes the escape-and-borrow facts beneath the
// zero-copy refactor the ROADMAP plans for the tokenization and EM hot
// paths. Once tokens hold byte-slice views into a shared input buffer
// and EM matrices are checked out of an arena, correctness stops being
// a local property: a view retained past a stage boundary, or a slice
// still referenced after its Put, silently corrupts a *later* task
// while Tables 1–4 keep looking plausible. The analyses here turn that
// discipline into provable facts:
//
//   - Summaries: per-function "parameter i may escape via
//     return/field/global/goroutine/channel" route sets, lifted
//     bottom-up over the SCCs of the module call graph exactly like
//     the may-block summaries in internal/analysis/callgraph — so a
//     borrow handed to a helper three calls deep is tracked to where
//     it actually lands.
//   - Tracker (borrow.go): a per-function borrowed-provenance lattice
//     over the taint solver of internal/analysis/dataflow — values
//     derived from a designated source buffer ([]byte-view parameters)
//     or checked out of a sync.Pool/arena stay borrowed through
//     sub-slicing, field reads, range loops and phi joins, and the
//     tracker classifies every sink where a borrow could outlive its
//     lifetime.
//
// The borrowflow and poolsafe analyzers in internal/analysis consume
// both layers; they are the lint-gated contract that must hold before
// the zero-copy PR can land without "hope the race detector catches
// it" as its safety argument.
package escape

import (
	"go/types"
	"strings"
	"sync"

	"tableseg/internal/analysis/callgraph"
	"tableseg/internal/analysis/cfg"
	"tableseg/internal/analysis/dataflow"
)

// Route is a bitset of the ways a value may escape its function.
type Route uint8

const (
	// ViaReturn: the value (or a view of it) may be returned.
	ViaReturn Route = 1 << iota
	// ViaField: the value may be stored into a struct field, map entry,
	// slice element or pointee reachable from a parameter or receiver —
	// storage that outlives the call.
	ViaField
	// ViaGlobal: the value may be stored into package-level state.
	ViaGlobal
	// ViaGoroutine: the value may be captured by a launched goroutine
	// (by closure or by argument), whose lifetime the caller does not
	// bound.
	ViaGoroutine
	// ViaChannel: the value may be sent on a channel, handing it to an
	// unknown receiver.
	ViaChannel
)

// routeNames is ordered by bit, so String renders deterministically.
var routeNames = []struct {
	r    Route
	name string
}{
	{ViaReturn, "return"},
	{ViaField, "field"},
	{ViaGlobal, "global"},
	{ViaGoroutine, "goroutine"},
	{ViaChannel, "channel"},
}

// String renders the route set as "return|field|..." in bit order.
func (r Route) String() string {
	if r == 0 {
		return "none"
	}
	var parts []string
	for _, rn := range routeNames {
		if r&rn.r != 0 {
			parts = append(parts, rn.name)
		}
	}
	return strings.Join(parts, "|")
}

// Retains reports whether the route set contains any outliving store —
// every route except a plain return, which merely lifts the borrow to
// the caller.
func (r Route) Retains() bool { return r&^ViaReturn != 0 }

// Summary is the escape fact of one function: Params[i] is the route
// set through which the i-th parameter (flattened declaration order,
// receiver excluded) may escape. Parameters whose types cannot share
// backing storage always have route 0.
type Summary struct {
	Params []Route
}

// Param returns the route set of parameter i, tolerating out-of-range
// indexes (variadic call sites can supply more arguments than
// parameters).
func (s *Summary) Param(i int) Route {
	if s == nil || i < 0 || i >= len(s.Params) {
		return 0
	}
	return s.Params[i]
}

// Set holds the escape summaries of one summarized call graph. It is
// computed lazily on first use and safe for concurrent readers — the
// lint driver analyzes packages in parallel over one shared graph.
type Set struct {
	graph *callgraph.Graph
	once  sync.Once
	byFn  map[*callgraph.Node]*Summary
}

var (
	setsMu sync.Mutex
	sets   = map[*callgraph.Graph]*Set{}
)

// For returns the (memoized) escape summary set of g. The summaries
// themselves are computed on first Of call, under a sync.Once, so
// concurrent analyzer passes sharing g never race and never duplicate
// the fixpoint.
func For(g *callgraph.Graph) *Set {
	setsMu.Lock()
	defer setsMu.Unlock()
	if s, ok := sets[g]; ok {
		return s
	}
	s := &Set{graph: g}
	sets[g] = s
	return s
}

// Of returns the summary of node n (nil for nodes with no body or no
// reference-carrying parameters).
func (s *Set) Of(n *callgraph.Node) *Summary {
	s.ensure()
	return s.byFn[n]
}

// ensure runs the fixpoint once. Concurrent callers block until it
// completes; compute itself reads summaries through lookup, never
// ensure, so the once is never re-entered.
func (s *Set) ensure() { s.once.Do(s.compute) }

// lookup reads a summary without forcing computation — the accessor
// trackers use from inside the fixpoint, where byFn is mid-flight and
// monotonically growing.
func (s *Set) lookup(n *callgraph.Node) *Summary { return s.byFn[n] }

// OfFunc resolves fn through the graph and returns its summary, nil
// when fn was not declared in the graph's sources.
func (s *Set) OfFunc(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	node := s.graph.NodeOf(fn)
	if node == nil {
		return nil
	}
	return s.Of(node)
}

// fnState caches the per-node pieces that do not change across
// fixpoint iterations: the CFG, the entry seeding, and the flattened
// parameter objects. The tracker itself is rebuilt per iteration
// because its summary lifting must see the routes discovered so far.
type fnState struct {
	node   *callgraph.Node
	graph  *cfg.Graph
	entry  map[types.Object]dataflow.Mask
	params []types.Object
}

// compute runs the summary fixpoint bottom-up over the SCCs of the
// call graph. Callees outside a component are final when the component
// is processed (SCCs come back in reverse topological order), so most
// nodes converge in one iteration; cyclic components iterate until the
// route sets stop growing. Routes only ever grow, so the fixpoint
// terminates.
func (s *Set) compute() {
	s.byFn = map[*callgraph.Node]*Summary{}
	states := map[*callgraph.Node]*fnState{}
	for _, n := range s.graph.Nodes {
		if st := newFnState(n); st != nil {
			states[n] = st
			s.byFn[n] = &Summary{Params: make([]Route, len(st.params))}
		}
	}
	for _, scc := range s.graph.SCCs() {
		if len(scc) == 1 && !selfRecursive(scc[0]) {
			// Callees outside the component are already final and the
			// node cannot feed itself, so one pass is exact — no need
			// for the confirming second iteration of the loop below.
			if st := states[scc[0]]; st != nil {
				cur := s.byFn[scc[0]]
				for i, r := range s.walkEscapes(st) {
					cur.Params[i] |= r
				}
			}
			continue
		}
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				st := states[n]
				if st == nil {
					continue
				}
				next := s.walkEscapes(st)
				cur := s.byFn[n]
				for i, r := range next {
					if cur.Params[i]|r != cur.Params[i] {
						cur.Params[i] |= r
						changed = true
					}
				}
			}
		}
	}
}

// selfRecursive reports whether n calls (or defers a call to) itself.
func selfRecursive(n *callgraph.Node) bool {
	for i := range n.Out {
		e := &n.Out[i]
		if e.Callee == n && (e.Kind == callgraph.EdgeCall || e.Kind == callgraph.EdgeDefer) {
			return true
		}
	}
	return false
}

// newFnState prepares the taint problem of one node: every
// reference-carrying parameter gets one provenance bit. Nodes without
// such parameters need no summary.
func newFnState(n *callgraph.Node) *fnState {
	if n.Body == nil {
		return nil
	}
	params := ParamObjects(n)
	if len(params) == 0 {
		return nil
	}
	entry := map[types.Object]dataflow.Mask{}
	tracked := 0
	for i, obj := range params {
		if i >= 64 {
			break
		}
		if obj != nil && dataflow.CarriesRefs(obj.Type()) {
			entry[obj] = 1 << i
			tracked++
		}
	}
	if tracked == 0 {
		return nil
	}
	return &fnState{node: n, graph: cfg.New(n.Body), entry: entry, params: params}
}

// ParamObjects returns a node's parameter objects in signature order
// (receiver excluded). go/types guarantees these are the same objects
// the body's identifier uses resolve to, so they can seed taint entry
// facts directly. Indexes line up with call-site argument positions.
func ParamObjects(n *callgraph.Node) []types.Object {
	sig := nodeSignature(n)
	if sig == nil {
		return nil
	}
	tuple := sig.Params()
	out := make([]types.Object, tuple.Len())
	for i := 0; i < tuple.Len(); i++ {
		out[i] = tuple.At(i)
	}
	return out
}

// nodeSignature resolves the *types.Signature of a declared function
// or literal node.
func nodeSignature(n *callgraph.Node) *types.Signature {
	switch {
	case n.Fn != nil:
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	case n.Lit != nil:
		if tv, ok := n.Info.Types[n.Lit]; ok && tv.Type != nil {
			sig, _ := tv.Type.Underlying().(*types.Signature)
			return sig
		}
	}
	return nil
}

// paramIndexAt maps call-argument position i onto the callee's
// parameter index, folding variadic spill into the last parameter.
func paramIndexAt(sig *types.Signature, i int) int {
	if sig == nil {
		return i
	}
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		return n - 1
	}
	return i
}

// walkEscapes classifies every sink of one function under the current
// callee summaries and returns the per-parameter route sets.
func (s *Set) walkEscapes(st *fnState) []Route {
	routes := make([]Route, len(st.params))
	add := func(mask dataflow.Mask, r Route) {
		if mask == 0 || r == 0 {
			return
		}
		for i := range st.params {
			if i < 64 && mask&(1<<i) != 0 {
				routes[i] |= r
			}
		}
	}
	tr := newTracker(st.node, st.graph, s, TrackerConfig{
		Info:    st.node.Info,
		Entry:   st.entry,
		Outlive: objectSet(st.params),
	})
	for _, ev := range tr.Events() {
		add(ev.Mask, ev.Route)
	}
	return routes
}

// objectSet builds a membership set, skipping nil placeholders.
func objectSet(objs []types.Object) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, o := range objs {
		if o != nil {
			out[o] = true
		}
	}
	return out
}
