package escape

import (
	"go/ast"
	"go/types"

	"tableseg/internal/analysis/callgraph"
	"tableseg/internal/analysis/cfg"
	"tableseg/internal/analysis/dataflow"
)

// EventKind classifies one sink a borrowed value reached.
type EventKind uint8

const (
	// EvStoreGlobal: assigned into package-level storage.
	EvStoreGlobal EventKind = iota
	// EvStoreField: assigned through a field, element or pointee whose
	// root outlives the function (a parameter or receiver) — the
	// caller's storage now aliases the borrow.
	EvStoreField
	// EvSend: sent on a channel.
	EvSend
	// EvGoArg: passed as an argument to a launched goroutine.
	EvGoArg
	// EvGoClosure: captured by a goroutine's function literal.
	EvGoClosure
	// EvReturn: returned (possibly as a sub-slice or wrapped in a
	// composite) — the borrow is lifted to the caller.
	EvReturn
	// EvCallEscape: passed to a module-local callee whose escape
	// summary retains that parameter (field/global/goroutine/channel).
	EvCallEscape
)

func (k EventKind) String() string {
	switch k {
	case EvStoreGlobal:
		return "store-global"
	case EvStoreField:
		return "store-field"
	case EvSend:
		return "send"
	case EvGoArg:
		return "go-arg"
	case EvGoClosure:
		return "go-closure"
	case EvReturn:
		return "return"
	case EvCallEscape:
		return "call-escape"
	}
	return "?"
}

// Event is one classified escape of borrowed provenance: Mask names
// which sources reached the sink, Route how the value leaves the
// function, At anchors the diagnostic.
type Event struct {
	Kind  EventKind
	Route Route
	Mask  dataflow.Mask
	At    ast.Node
	// Expr is the specific borrowed expression at the sink (the stored
	// value, sent value, return expression, or escaping argument).
	Expr ast.Expr
	// Callee and CalleeRoutes are set for EvCallEscape: the resolved
	// callee's display name and the retaining routes of the parameter
	// the borrow was passed as.
	Callee       string
	CalleeRoutes Route
}

// TrackerConfig parameterizes a borrow tracker over one function body.
type TrackerConfig struct {
	// Info is the package's type information (required).
	Info *types.Info

	// Entry seeds borrowed provenance on parameters/receivers at
	// function entry, one bit per source buffer.
	Entry map[types.Object]dataflow.Mask

	// SourceCall returns the provenance of a call's result — the hook
	// through which poolsafe marks each sync.Pool/arena Get site with
	// its own bit. Optional.
	SourceCall func(call *ast.CallExpr) dataflow.Mask

	// Outlive marks the objects whose storage outlives the call
	// (parameters and the receiver): a store through a selector, index
	// or star rooted at one of them is an EvStoreField. Stores through
	// local roots are not events — the taint weak-update keeps the
	// local's provenance, and any later escape of the local is caught
	// at that sink instead. Optional.
	Outlive map[types.Object]bool
}

// knownCopyCalls are external functions that return freshly allocated
// storage, never a view of their arguments — calls the conservative
// external-propagation fallback must not treat as view-returning.
var knownCopyCalls = map[string]bool{
	"bytes.Clone":   true,
	"strings.Clone": true,
	"slices.Clone":  true,
	"maps.Clone":    true,
	"bytes.Join":    true,
	"bytes.Repeat":  true,
}

// Tracker follows borrowed provenance through one function body: a
// forward taint fixpoint (sub-slices, field reads, range bindings and
// phi joins all preserve provenance; conversions to string and copies
// of scalar elements sever it) plus a sink classification pass that
// turns every place a borrow could outlive the function into an Event.
type Tracker struct {
	Taint *dataflow.Taint

	node  *callgraph.Node
	graph *cfg.Graph
	set   *Set
	cfg   TrackerConfig
}

// NewTracker builds a tracker for node's body using set's escape
// summaries for call lifting. It forces summary computation, so it
// must not be called from inside the fixpoint itself (internal callers
// use newTracker).
func NewTracker(node *callgraph.Node, g *cfg.Graph, set *Set, tc TrackerConfig) *Tracker {
	if set != nil {
		set.ensure()
	}
	return newTracker(node, g, set, tc)
}

func newTracker(node *callgraph.Node, g *cfg.Graph, set *Set, tc TrackerConfig) *Tracker {
	t := &Tracker{node: node, graph: g, set: set, cfg: tc}
	t.Taint = dataflow.NewTaint(node.Body, g, dataflow.TaintConfig{
		Info:         tc.Info,
		Entry:        tc.Entry,
		ResultTaint:  tc.SourceCall,
		LiftCall:     t.liftCall,
		TypeOK:       dataflow.CarriesRefs,
		ElemCopyRefs: true,
	})
	return t
}

// liftCall computes the provenance a call result inherits from its
// arguments. Module-local callees contribute exactly the arguments
// their summary says may escape via return; unresolved or external
// calls with reference-carrying results conservatively propagate every
// reference-carrying argument (bytes.TrimSpace returns a view) unless
// the callee is a known copying function.
func (t *Tracker) liftCall(call *ast.CallExpr, argMask func(ast.Expr) dataflow.Mask) dataflow.Mask {
	// Builtins (append, copy, make, min, max...) are modeled by the
	// taint machinery itself — append of scalar elements is a copy, not
	// a view — so the conservative fallback must not re-taint them.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := t.cfg.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			return 0
		}
	}
	var edge *callgraph.Edge
	if t.node != nil {
		edge = t.node.EdgeAt(call)
	}
	if edge != nil && edge.Callee != nil && t.set != nil {
		if sum := t.set.lookup(edge.Callee); sum != nil {
			var m dataflow.Mask
			sig := nodeSignature(edge.Callee)
			for i, a := range call.Args {
				if sum.Param(paramIndexAt(sig, i))&ViaReturn != 0 {
					m |= argMask(a)
				}
			}
			return m
		}
		// A resolved module-local callee with no summary has no
		// reference-carrying parameters: nothing to lift.
		return 0
	}
	// External or unresolved: a view-returning function is
	// indistinguishable from a copying one, so propagate unless the
	// result cannot share storage or the callee is a known copier.
	if !resultCarriesRefs(t.cfg.Info, call) {
		return 0
	}
	if name := qualifiedCallName(t.cfg.Info, call); knownCopyCalls[name] {
		return 0
	}
	var m dataflow.Mask
	for _, a := range call.Args {
		m |= argMask(a)
	}
	return m
}

// resultCarriesRefs reports whether the call's result type can share
// backing storage. Multi-value results check each component.
func resultCarriesRefs(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return true // unknown: stay conservative
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if dataflow.CarriesRefs(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return dataflow.CarriesRefs(tv.Type)
}

// qualifiedCallName renders pkg.Func for a qualified call, "" for
// anything else.
func qualifiedCallName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isPkg := info.Uses[id].(*types.PkgName); !isPkg {
		return ""
	}
	return id.Name + "." + sel.Sel.Name
}

// Events replays the body over the solved taint and classifies every
// sink a borrowed value reaches. The walk visits blocks in index order,
// so the event sequence is deterministic.
func (t *Tracker) Events() []Event {
	var events []Event
	info := t.cfg.Info
	add := func(ev Event) {
		if ev.Mask != 0 {
			events = append(events, ev)
		}
	}
	t.Taint.Walk(func(b *cfg.Block, n ast.Node, fact map[types.Object]dataflow.Mask) {
		mask := func(e ast.Expr) dataflow.Mask { return t.Taint.Mask(fact, e) }
		switch n := n.(type) {
		case *ast.AssignStmt:
			t.assignEvents(n, mask, add)
		case *ast.SendStmt:
			add(Event{Kind: EvSend, Route: ViaChannel, Mask: mask(n.Value), At: n, Expr: n.Value})
		case *ast.GoStmt:
			t.goEvents(n, fact, mask, add)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if !exprCarriesRefs(info, res) {
					continue
				}
				add(Event{Kind: EvReturn, Route: ViaReturn, Mask: mask(res), At: n, Expr: res})
			}
		}
		// Call lifting applies to calls anywhere inside the node (an
		// assignment RHS, an expression statement, a condition), except
		// under go statements — those are charged as goroutine events.
		if _, isGo := n.(*ast.GoStmt); !isGo {
			t.callEvents(n, mask, add)
		}
	})
	return events
}

// assignEvents classifies the stores of one assignment statement.
func (t *Tracker) assignEvents(n *ast.AssignStmt, mask func(ast.Expr) dataflow.Mask, add func(Event)) {
	rhsMask := func(i int) (dataflow.Mask, ast.Expr) {
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			return mask(n.Rhs[0]), n.Rhs[0]
		}
		if i < len(n.Rhs) {
			return mask(n.Rhs[i]), n.Rhs[i]
		}
		return 0, nil
	}
	for i, lhs := range n.Lhs {
		m, rhs := rhsMask(i)
		if m == 0 {
			continue
		}
		switch target := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if t.isGlobal(target) {
				add(Event{Kind: EvStoreGlobal, Route: ViaGlobal, Mask: m, At: n, Expr: rhs})
			}
		case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
			root := rootIdentOf(lhs)
			if root == nil {
				break
			}
			switch {
			case t.isGlobal(root):
				add(Event{Kind: EvStoreGlobal, Route: ViaGlobal, Mask: m, At: n, Expr: rhs})
			case t.cfg.Outlive[t.cfg.Info.ObjectOf(root)]:
				add(Event{Kind: EvStoreField, Route: ViaField, Mask: m, At: n, Expr: rhs})
			}
		}
	}
}

// goEvents classifies what a goroutine launch carries away: arguments
// evaluated at launch, and free variables the literal (or method
// value) captures by reference.
func (t *Tracker) goEvents(n *ast.GoStmt, fact map[types.Object]dataflow.Mask, mask func(ast.Expr) dataflow.Mask, add func(Event)) {
	for _, a := range n.Call.Args {
		add(Event{Kind: EvGoArg, Route: ViaGoroutine, Mask: mask(a), At: n, Expr: a})
	}
	if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
		var captured dataflow.Mask
		var at ast.Expr
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := t.cfg.Info.Uses[id]
			if obj == nil {
				return true
			}
			if bits := fact[obj]; bits != 0 {
				captured |= bits
				if at == nil {
					at = id
				}
			}
			return true
		})
		add(Event{Kind: EvGoClosure, Route: ViaGoroutine, Mask: captured, At: n, Expr: at})
		return
	}
	// Method value: go x.run — the receiver travels with the goroutine.
	add(Event{Kind: EvGoArg, Route: ViaGoroutine, Mask: mask(n.Call.Fun), At: n, Expr: n.Call.Fun})
}

// callEvents lifts callee escape summaries onto borrowed arguments of
// every call inside node n: passing a borrow to a function that stores
// its parameter is itself a store.
func (t *Tracker) callEvents(n ast.Node, mask func(ast.Expr) dataflow.Mask, add func(Event)) {
	if t.node == nil || t.set == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		edge := t.node.EdgeAt(call)
		if edge == nil || edge.Callee == nil || edge.Kind == callgraph.EdgeGo {
			return true
		}
		sum := t.set.lookup(edge.Callee)
		if sum == nil {
			return true
		}
		sig := nodeSignature(edge.Callee)
		for i, a := range call.Args {
			retained := sum.Param(paramIndexAt(sig, i)) &^ ViaReturn
			if retained == 0 {
				continue
			}
			add(Event{
				Kind:         EvCallEscape,
				Route:        retained,
				Mask:         mask(a),
				At:           call,
				Expr:         a,
				Callee:       edge.Callee.Name(),
				CalleeRoutes: retained,
			})
		}
		return true
	})
}

// isGlobal reports whether id names a package-level variable.
func (t *Tracker) isGlobal(id *ast.Ident) bool {
	obj := t.cfg.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	pkg := v.Pkg()
	return pkg != nil && v.Parent() == pkg.Scope()
}

// exprCarriesRefs reports whether e's static type can share backing
// storage — the filter that lets `return string(b)` pass borrowflow
// while `return b[1:]` does not.
func exprCarriesRefs(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return true // unknown: stay conservative
	}
	return dataflow.CarriesRefs(tv.Type)
}

// rootIdentOf returns the base identifier under a chain of index,
// selector, star, paren and slice expressions, or nil.
func rootIdentOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
