package escape

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"tableseg/internal/analysis/callgraph"
	"tableseg/internal/analysis/cfg"
	"tableseg/internal/analysis/dataflow"
)

// buildGraph type-checks one synthetic package and returns its call
// graph plus the type info, for building trackers directly.
func buildGraph(t *testing.T, src string) (*callgraph.Graph, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return callgraph.Build([]callgraph.Source{{Path: "p", Files: []*ast.File{file}, Info: info, Types: tpkg}}), info
}

// summaryOf returns the escape summary of the named function.
func summaryOf(t *testing.T, g *callgraph.Graph, name string) *Summary {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Fn != nil && n.Fn.Name() == name {
			return For(g).Of(n)
		}
	}
	t.Fatalf("no node named %q", name)
	return nil
}

func nodeNamed(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Fn != nil && n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q", name)
	return nil
}

func TestRouteString(t *testing.T) {
	cases := []struct {
		r    Route
		want string
	}{
		{0, "none"},
		{ViaReturn, "return"},
		{ViaField | ViaReturn, "return|field"},
		{ViaGlobal | ViaChannel | ViaGoroutine, "global|goroutine|channel"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Route(%b).String() = %q, want %q", c.r, got, c.want)
		}
	}
	if ViaReturn.Retains() {
		t.Error("ViaReturn.Retains() = true, want false: a return only lifts the borrow")
	}
	if !(ViaReturn | ViaField).Retains() {
		t.Error("(ViaReturn|ViaField).Retains() = false, want true")
	}
}

func TestSummaryDirectRoutes(t *testing.T) {
	g, _ := buildGraph(t, `package p

var sink []byte

type box struct{ data []byte }

func leakGlobal(b []byte) { sink = b }

func leakField(dst *box, b []byte) { dst.data = b }

func leakChan(ch chan []byte, b []byte) { ch <- b }

func leakGo(b []byte) { go func() { _ = b[0] }() }

func leakReturn(b []byte) []byte { return b[1:] }

func clean(b []byte) int { return len(b) }
`)
	cases := []struct {
		fn    string
		param int
		want  Route
	}{
		{"leakGlobal", 0, ViaGlobal},
		{"leakField", 1, ViaField},
		{"leakChan", 1, ViaChannel},
		{"leakGo", 0, ViaGoroutine},
		{"leakReturn", 0, ViaReturn},
		{"clean", 0, 0},
	}
	for _, c := range cases {
		sum := summaryOf(t, g, c.fn)
		if got := sum.Param(c.param); got != c.want {
			t.Errorf("%s param %d routes = %v, want %v", c.fn, c.param, got, c.want)
		}
	}
	// leakField's dst pointer itself never escapes anywhere.
	if got := summaryOf(t, g, "leakField").Param(0); got != 0 {
		t.Errorf("leakField dst routes = %v, want none", got)
	}
}

func TestSummaryCopySevers(t *testing.T) {
	g, _ := buildGraph(t, `package p

func cloned(b []byte) []byte { return append([]byte(nil), b...) }

func stringified(b []byte) string { return string(b) }

func copied(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
`)
	for _, fn := range []string{"cloned", "stringified", "copied"} {
		sum := summaryOf(t, g, fn)
		if got := sum.Param(0); got != 0 {
			t.Errorf("%s param routes = %v, want none: the result is a fresh copy", fn, got)
		}
	}
}

func TestSummaryTransitiveLifting(t *testing.T) {
	g, _ := buildGraph(t, `package p

var sink []byte

func retain(b []byte) { sink = b }

func wrapper(b []byte) { retain(b) }

func view(b []byte) []byte { return b[2:8] }

func outer(b []byte) []byte {
	v := view(b)
	return v
}

func severed(b []byte) []byte {
	v := view(b)
	return append([]byte(nil), v...)
}
`)
	if got := summaryOf(t, g, "wrapper").Param(0); got != ViaGlobal {
		t.Errorf("wrapper routes = %v, want global (lifted through retain)", got)
	}
	if got := summaryOf(t, g, "outer").Param(0); got != ViaReturn {
		t.Errorf("outer routes = %v, want return (lifted through view)", got)
	}
	if got := summaryOf(t, g, "severed").Param(0); got != 0 {
		t.Errorf("severed routes = %v, want none: the view was cloned before returning", got)
	}
}

func TestSummaryRecursiveSCC(t *testing.T) {
	g, _ := buildGraph(t, `package p

func ping(b []byte, n int) []byte {
	if n == 0 {
		return b
	}
	return pong(b, n-1)
}

func pong(b []byte, n int) []byte { return ping(b, n-1) }
`)
	// pong has no direct return of b: its ViaReturn arrives only by
	// lifting through the mutually recursive SCC fixpoint.
	if got := summaryOf(t, g, "pong").Param(0); got != ViaReturn {
		t.Errorf("pong routes = %v, want return via SCC fixpoint", got)
	}
	if got := summaryOf(t, g, "ping").Param(0); got != ViaReturn {
		t.Errorf("ping routes = %v, want return", got)
	}
}

func TestSummaryExternalCallConservative(t *testing.T) {
	g, _ := buildGraph(t, `package p

import "bytes"

func trimmed(b []byte) []byte { return bytes.TrimSpace(b) }

func cloned(b []byte) []byte { return bytes.Clone(b) }
`)
	// bytes.TrimSpace returns a view of its argument: the conservative
	// external fallback must keep the borrow alive.
	if got := summaryOf(t, g, "trimmed").Param(0); got != ViaReturn {
		t.Errorf("trimmed routes = %v, want return (external view function)", got)
	}
	// bytes.Clone is on the known-copy allowlist.
	if got := summaryOf(t, g, "cloned").Param(0); got != 0 {
		t.Errorf("cloned routes = %v, want none (known copying function)", got)
	}
}

func TestForMemoizes(t *testing.T) {
	g, _ := buildGraph(t, `package p

func id(b []byte) []byte { return b }
`)
	if For(g) != For(g) {
		t.Fatal("For(g) returned distinct sets for the same graph")
	}
}

// trackerFor builds a tracker over fn with every reference-carrying
// parameter seeded, returning the tracker and the parameter objects.
func trackerFor(t *testing.T, g *callgraph.Graph, info *types.Info, fn string) (*Tracker, []types.Object) {
	t.Helper()
	node := nodeNamed(t, g, fn)
	params := ParamObjects(node)
	entry := map[types.Object]dataflow.Mask{}
	for i, obj := range params {
		if obj != nil && dataflow.CarriesRefs(obj.Type()) {
			entry[obj] = 1 << i
		}
	}
	tr := NewTracker(node, cfg.New(node.Body), For(g), TrackerConfig{
		Info:    info,
		Entry:   entry,
		Outlive: objectSet(params),
	})
	return tr, params
}

// kindsOf collects the event kinds seen for a given source bit.
func kindsOf(events []Event, bit dataflow.Mask) map[EventKind]int {
	out := map[EventKind]int{}
	for _, ev := range events {
		if ev.Mask&bit != 0 {
			out[ev.Kind]++
		}
	}
	return out
}

func TestTrackerSelectArms(t *testing.T) {
	// A borrowed value escaping through one arm of a select must be
	// seen even though only that path sends it.
	g, info := buildGraph(t, `package p

func fan(ch chan []byte, done chan struct{}, b []byte) {
	sub := b[4:]
	select {
	case ch <- sub:
	case <-done:
	}
}
`)
	tr, _ := trackerFor(t, g, info, "fan")
	kinds := kindsOf(tr.Events(), 1<<2) // bit of b
	if kinds[EvSend] == 0 {
		t.Fatalf("no EvSend for borrowed sub-slice sent in select arm; kinds: %v", kinds)
	}
}

func TestTrackerSubSliceOfSubSlice(t *testing.T) {
	g, info := buildGraph(t, `package p

func nest(b []byte) []byte {
	head := b[1:]
	cell := head[2:4]
	return cell
}
`)
	tr, _ := trackerFor(t, g, info, "nest")
	kinds := kindsOf(tr.Events(), 1)
	if kinds[EvReturn] == 0 {
		t.Fatalf("no EvReturn for doubly nested sub-slice; kinds: %v", kinds)
	}
}

func TestTrackerGoroutineCaptureShapes(t *testing.T) {
	g, info := buildGraph(t, `package p

func consume(b []byte) {}

func byArg(b []byte) { go consume(b) }

func byClosure(b []byte) {
	go func() {
		consume(b)
	}()
}
`)
	trArg, _ := trackerFor(t, g, info, "byArg")
	if kinds := kindsOf(trArg.Events(), 1); kinds[EvGoArg] == 0 {
		t.Fatalf("goroutine launch by argument not classified EvGoArg; kinds: %v", kinds)
	}
	trClo, _ := trackerFor(t, g, info, "byClosure")
	kinds := kindsOf(trClo.Events(), 1)
	if kinds[EvGoClosure] == 0 {
		t.Fatalf("goroutine capture by closure not classified EvGoClosure; kinds: %v", kinds)
	}
	if kinds[EvGoArg] != 0 {
		t.Fatalf("closure capture double-reported as EvGoArg; kinds: %v", kinds)
	}
}

func TestTrackerSourceCall(t *testing.T) {
	// A SourceCall hook (poolsafe's Get marker) seeds provenance at the
	// call result, and the borrow survives a deferred use check.
	g, info := buildGraph(t, `package p

var sink []byte

type pool struct{}

func (p *pool) Get() []byte { return nil }

func leak(p *pool) {
	buf := p.Get()
	sink = buf[:4]
}
`)
	node := nodeNamed(t, g, "leak")
	const getBit = dataflow.Mask(1) << 40
	tr := NewTracker(node, cfg.New(node.Body), For(g), TrackerConfig{
		Info: info,
		SourceCall: func(call *ast.CallExpr) dataflow.Mask {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" {
				return getBit
			}
			return 0
		},
	})
	kinds := kindsOf(tr.Events(), getBit)
	if kinds[EvStoreGlobal] == 0 {
		t.Fatalf("pool checkout stored in global not classified; kinds: %v", kinds)
	}
}

func TestTrackerCallEscapeEvent(t *testing.T) {
	g, info := buildGraph(t, `package p

var sink []byte

func retain(b []byte) { sink = b }

func handoff(b []byte) { retain(b[8:]) }
`)
	tr, _ := trackerFor(t, g, info, "handoff")
	var found *Event
	for _, ev := range tr.Events() {
		if ev.Kind == EvCallEscape {
			found = &ev
			break
		}
	}
	if found == nil {
		t.Fatal("no EvCallEscape for borrow passed to retaining callee")
	}
	if found.Callee != "p.retain" {
		t.Errorf("EvCallEscape callee = %q, want p.retain", found.Callee)
	}
	if found.CalleeRoutes != ViaGlobal {
		t.Errorf("EvCallEscape routes = %v, want global", found.CalleeRoutes)
	}
}
