package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"tableseg/internal/analysis/callgraph"
)

// entryPointPrefixes are the verb prefixes that mark an exported
// function or method as a pipeline/solver entry point: work that can
// be long-running and therefore must be cancelable from the caller.
// The canonical list lives in the callgraph package, which shares it
// with the interprocedural summaries.
var entryPointPrefixes = callgraph.EntryPointPrefixes

// CtxDiscipline returns the analyzer enforcing context hygiene:
// internal packages may not mint contexts with context.Background or
// context.TODO (only the root package's compatibility wrappers may —
// an internal Background() severs the cancellation chain the batch
// engine depends on), and exported pipeline/solver entry points in the
// solver packages must accept a context.Context as their first
// parameter.
func CtxDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "ctxdiscipline",
		Doc:  "forbid context minting in internal packages; require ctx-first solver entry points",
	}
	a.Run = func(pass *Pass) {
		internal := isInternal(pass.Pkg.Path)
		entry := matchesAny(pass.Pkg.Path, pass.Cfg.EntryPointPkgs)
		if !internal && !entry {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if internal {
						checkMint(pass, n)
					}
				case *ast.FuncDecl:
					if entry {
						checkEntryPoint(pass, n)
					}
				}
				return true
			})
		}
	}
	return a
}

func checkMint(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.pkgNameOf(id) != "context" {
		return
	}
	if name := sel.Sel.Name; name == "Background" || name == "TODO" {
		pass.Reportf(call.Pos(), "context.%s inside an internal package severs cancellation; accept a ctx parameter instead (only the root package's compatibility wrappers mint contexts)", name)
	}
}

func checkEntryPoint(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	if !ast.IsExported(name) {
		return
	}
	isEntry := false
	for _, p := range entryPointPrefixes {
		if strings.HasPrefix(name, p) {
			isEntry = true
			break
		}
	}
	if !isEntry {
		return
	}
	params := fn.Type.Params
	if params != nil && len(params.List) > 0 {
		if t := pass.Pkg.Info.TypeOf(params.List[0].Type); t != nil && isContextType(t) {
			return
		}
	}
	pass.Reportf(fn.Pos(), "exported entry point %s must take a context.Context as its first parameter", name)
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
