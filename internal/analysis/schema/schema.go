// Package schema is the structural type-fingerprinting layer under
// the wiredrift and codecdrift analyzers. Cache correctness in this
// repository hangs on two conventions that were, until now, enforced
// only by doc comments: `internal/stage.CodecVersion` must be bumped
// whenever an encoded artifact struct changes shape (otherwise stale
// cached artifacts decode into wrong segmentations), and the api/v1
// wire surface must stay append-only within v1. Both conventions are
// statements about the *shape* of a type, so this package turns a
// `go/types` type into a canonical textual form and a stable digest
// of it, and defines the committed lock files that pin those digests
// in the tree.
//
// Canonicalization walks the reachable shape of a type: struct fields
// in declaration order with their names, full struct tags and
// canonicalized types; named types expand to their underlying shape
// on first visit and collapse to a reference on revisit, so recursive
// types terminate while nested edits (a field added three structs
// deep) still change the top-level digest. Nil-vs-empty-sensitive
// kinds — slices, maps, pointers — keep their own spellings in the
// grammar, because the artifact codec preserves nil-vs-empty and two
// shapes differing only there must not collide. The digest is the
// sha256 of the canonical form.
package schema

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Field is one JSON-visible struct field of a wire type: its Go name,
// its `json` tag value and a shallow (package-relative) type
// rendering. The wiredrift analyzer diffs these lists field by field,
// so lock entries stay human-writable and the diagnostics can name
// exactly what moved.
type Field struct {
	Name string `json:"name"`
	Tag  string `json:"tag,omitempty"`
	Type string `json:"type"`
}

// Fingerprint is one named type's canonicalized reachable shape.
type Fingerprint struct {
	// Type is the defining package path plus the type name, e.g.
	// "tableseg/api/v1.SegmentRequest".
	Type string
	// Shape is the canonical form — deterministic, whitespace-free,
	// suitable for diffing in a test failure.
	Shape string
	// Digest is the lowercase hex sha256 of Shape.
	Digest string
}

// Options tunes a fingerprint computation.
type Options struct {
	// OmitFields names top-level struct fields excluded from the
	// canonical shape — for types whose codec deliberately skips a
	// field (the engine journal excludes Segmentation.PHMM), so edits
	// to the unserialized field do not demand a version bump.
	OmitFields []string
}

// Of fingerprints the type declared by obj.
func Of(obj *types.TypeName, opts Options) Fingerprint {
	c := &canonicalizer{visited: map[string]bool{}}
	if len(opts.OmitFields) > 0 {
		if st, ok := obj.Type().Underlying().(*types.Struct); ok {
			c.omitIn = st
			c.omit = map[string]bool{}
			for _, f := range opts.OmitFields {
				c.omit[f] = true
			}
		}
	}
	var b strings.Builder
	c.write(&b, obj.Type())
	shape := b.String()
	sum := sha256.Sum256([]byte(shape))
	return Fingerprint{
		Type:   QualifiedName(obj),
		Shape:  shape,
		Digest: hex.EncodeToString(sum[:]),
	}
}

// QualifiedName renders obj as "<package path>.<name>" — the key the
// lock files use.
func QualifiedName(obj *types.TypeName) string {
	if obj.Pkg() == nil {
		return obj.Name() // universe types (error)
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// canonicalizer writes the canonical grammar. Grammar, informally:
//
//	basic      int | string | float64 | ...
//	named      <path.Name>=<canon of underlying>   first visit
//	ref        @<path.Name>                        revisits (cycles)
//	pointer    *T
//	slice      []T
//	array      [N]T
//	map        map[K]V
//	struct     struct{name T `tag`;...}
//
// Slices, maps and pointers keep distinct spellings because the
// artifact codec is nil-vs-empty-sensitive for exactly those kinds.
type canonicalizer struct {
	visited map[string]bool
	omitIn  *types.Struct
	omit    map[string]bool
}

func (c *canonicalizer) write(b *strings.Builder, t types.Type) {
	t = types.Unalias(t)
	switch u := t.(type) {
	case *types.Basic:
		b.WriteString(u.Name())
	case *types.Named:
		name := QualifiedName(u.Obj())
		if c.visited[name] {
			b.WriteString("@")
			b.WriteString(name)
			return
		}
		c.visited[name] = true
		b.WriteString(name)
		b.WriteString("=")
		c.write(b, u.Underlying())
	case *types.Pointer:
		b.WriteString("*")
		c.write(b, u.Elem())
	case *types.Slice:
		b.WriteString("[]")
		c.write(b, u.Elem())
	case *types.Array:
		fmt.Fprintf(b, "[%d]", u.Len())
		c.write(b, u.Elem())
	case *types.Map:
		b.WriteString("map[")
		c.write(b, u.Key())
		b.WriteString("]")
		c.write(b, u.Elem())
	case *types.Struct:
		b.WriteString("struct{")
		first := true
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if u == c.omitIn && c.omit[f.Name()] {
				continue
			}
			if !first {
				b.WriteString(";")
			}
			first = false
			b.WriteString(f.Name())
			b.WriteString(" ")
			c.write(b, f.Type())
			if tag := u.Tag(i); tag != "" {
				fmt.Fprintf(b, " %q", tag)
			}
		}
		b.WriteString("}")
	default:
		// Interfaces, channels, functions: not wire-shaped, but keep a
		// stable rendering so a field retyped to one of them still
		// changes the digest.
		b.WriteString(types.TypeString(t, func(p *types.Package) string { return p.Path() }))
	}
}

// WireFields lists the JSON-visible fields of st in declaration
// order: exported fields whose json tag is not "-", with the tag
// value and a package-relative type rendering.
func WireFields(st *types.Struct, pkg *types.Package) []Field {
	var out []Field
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		if tag == "-" {
			continue
		}
		out = append(out, Field{
			Name: f.Name(),
			Tag:  tag,
			Type: types.TypeString(f.Type(), types.RelativeTo(pkg)),
		})
	}
	return out
}

// WireEntryOf builds the lock entry pinning obj's wire surface:
// field-level detail for structs, the canonical underlying shape for
// everything else, plus the full-shape digest either way. The
// wiredrift analyzer and `tableseglint -update-locks` share this, so
// a committed entry and a fresh computation can never disagree about
// rendering.
func WireEntryOf(obj *types.TypeName) Entry {
	fp := Of(obj, Options{})
	e := Entry{Type: fp.Type, Digest: fp.Digest}
	if st, ok := obj.Type().Underlying().(*types.Struct); ok {
		e.Fields = WireFields(st, obj.Pkg())
	} else {
		c := &canonicalizer{visited: map[string]bool{}}
		var b strings.Builder
		c.write(&b, obj.Type().Underlying())
		e.Underlying = b.String()
	}
	return e
}

// CodecEntryOf builds the lock entry binding obj's shape digest to a
// version constant's current value.
func CodecEntryOf(obj *types.TypeName, constName string, version int64, omit []string) Entry {
	fp := Of(obj, Options{OmitFields: omit})
	return Entry{Type: fp.Type, Digest: fp.Digest, Const: constName, Version: version}
}

// SortEntries orders entries by type name — the committed lock files
// are diff-stable regardless of scope iteration order.
func SortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Type < entries[j].Type })
}
