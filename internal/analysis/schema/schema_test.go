package schema

import (
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkSrc type-checks one self-contained source file and returns its
// package. The sources under test import nothing, so no importer is
// needed.
func checkSrc(t *testing.T, src string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg, err := (&types.Config{}).Check("example.com/fix", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return pkg
}

// fingerprint type-checks src and fingerprints its type named name.
func fingerprint(t *testing.T, src, name string, opts Options) Fingerprint {
	t.Helper()
	pkg := checkSrc(t, src)
	obj, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		t.Fatalf("type %s not found", name)
	}
	return Of(obj, opts)
}

// TestFingerprintStable pins determinism: the same source fingerprints
// identically across independent type-check sessions, which is the
// whole premise of committing digests to a lock file.
func TestFingerprintStable(t *testing.T) {
	const src = `package fix
type Inner struct{ N int }
type T struct {
	Name  string ` + "`json:\"name\"`" + `
	Items []Inner
	ByID  map[string]*Inner
}`
	a := fingerprint(t, src, "T", Options{})
	b := fingerprint(t, src, "T", Options{})
	if a.Shape != b.Shape || a.Digest != b.Digest {
		t.Fatalf("fingerprint not stable:\n%s\nvs\n%s", a.Shape, b.Shape)
	}
	if a.Type != "example.com/fix.T" {
		t.Errorf("Type = %q, want example.com/fix.T", a.Type)
	}
	if len(a.Digest) != 64 {
		t.Errorf("digest %q is not a sha256 hex", a.Digest)
	}
}

// TestDigestSensitivity: every shape edit the drift analyzers care
// about — added field, retype, retag, nested edit through a named
// type, and the nil-vs-empty-sensitive spellings — must land on a
// distinct digest.
func TestDigestSensitivity(t *testing.T) {
	variants := map[string]string{
		"base": `package fix
type Inner struct{ N int }
type T struct{ A string; In Inner }`,
		"added field": `package fix
type Inner struct{ N int }
type T struct{ A string; B int; In Inner }`,
		"retyped field": `package fix
type Inner struct{ N int }
type T struct{ A int; In Inner }`,
		"retagged field": `package fix
type Inner struct{ N int }
type T struct{ A string ` + "`json:\"a\"`" + `; In Inner }`,
		"nested edit": `package fix
type Inner struct{ N int64 }
type T struct{ A string; In Inner }`,
		"slice": `package fix
type Inner struct{ N int }
type T struct{ A []string; In Inner }`,
		"pointer": `package fix
type Inner struct{ N int }
type T struct{ A *string; In Inner }`,
		"map": `package fix
type Inner struct{ N int }
type T struct{ A map[string]string; In Inner }`,
		"array": `package fix
type Inner struct{ N int }
type T struct{ A [4]string; In Inner }`,
	}
	digests := map[string]string{}
	for label, src := range variants {
		fp := fingerprint(t, src, "T", Options{})
		for prev, d := range digests {
			if d == fp.Digest {
				t.Errorf("variant %q collides with %q (digest %s)", label, prev, d)
			}
		}
		digests[label] = fp.Digest
	}
}

// TestRecursiveType: self-referential shapes terminate via the @ref
// spelling and still fingerprint deterministically.
func TestRecursiveType(t *testing.T) {
	const src = `package fix
type Node struct {
	Value string
	Next  *Node
}`
	fp := fingerprint(t, src, "Node", Options{})
	if !strings.Contains(fp.Shape, "@example.com/fix.Node") {
		t.Errorf("recursive shape lacks a cycle reference: %s", fp.Shape)
	}
	if again := fingerprint(t, src, "Node", Options{}); again.Digest != fp.Digest {
		t.Errorf("recursive fingerprint unstable: %s vs %s", fp.Digest, again.Digest)
	}
}

// TestOmitFields: an omitted top-level field neither appears in the
// shape nor lets its own edits move the digest — but the omission only
// applies to the top level, not to same-named fields nested deeper.
func TestOmitFields(t *testing.T) {
	const src = `package fix
type Extra struct{ Big []float64 }
type T struct {
	Keep string
	Skip *Extra
}`
	const editedSkip = `package fix
type Extra struct{ Big []float64; More map[string]int }
type T struct {
	Keep string
	Skip *Extra
}`
	omit := Options{OmitFields: []string{"Skip"}}
	base := fingerprint(t, src, "T", omit)
	if strings.Contains(base.Shape, "Skip") {
		t.Errorf("omitted field still in shape: %s", base.Shape)
	}
	if edited := fingerprint(t, editedSkip, "T", omit); edited.Digest != base.Digest {
		t.Errorf("edit under an omitted field moved the digest")
	}
	if full := fingerprint(t, src, "T", Options{}); full.Digest == base.Digest {
		t.Errorf("omitting a field did not change the digest")
	}
}

// TestWireFields pins the wire-surface projection: declaration order,
// unexported and json:"-" fields dropped, tag values extracted.
func TestWireFields(t *testing.T) {
	const src = `package fix
type T struct {
	Name    string ` + "`json:\"name\"`" + `
	Count   int    ` + "`json:\"count,omitempty\"`" + `
	hidden  bool
	Skipped string ` + "`json:\"-\"`" + `
	Untag   float64
}`
	pkg := checkSrc(t, src)
	obj := pkg.Scope().Lookup("T").(*types.TypeName)
	st := obj.Type().Underlying().(*types.Struct)
	got := WireFields(st, pkg)
	want := []Field{
		{Name: "Name", Tag: "name", Type: "string"},
		{Name: "Count", Tag: "count,omitempty", Type: "int"},
		{Name: "Untag", Type: "float64"},
	}
	if len(got) != len(want) {
		t.Fatalf("WireFields = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("field %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestWireEntryOf: structs lock field lists, non-structs lock their
// canonical underlying shape; both carry the full-shape digest.
func TestWireEntryOf(t *testing.T) {
	const src = `package fix
type Code string
type Req struct{ ID string ` + "`json:\"id\"`" + ` }`
	pkg := checkSrc(t, src)
	code := WireEntryOf(pkg.Scope().Lookup("Code").(*types.TypeName))
	if code.Underlying != "string" || code.Fields != nil {
		t.Errorf("non-struct entry = %+v, want underlying string", code)
	}
	req := WireEntryOf(pkg.Scope().Lookup("Req").(*types.TypeName))
	if req.Underlying != "" || len(req.Fields) != 1 || req.Fields[0].Tag != "id" {
		t.Errorf("struct entry = %+v", req)
	}
	if code.Digest == "" || req.Digest == "" {
		t.Error("entries missing digests")
	}
}

// TestLockRoundTrip: Encode is deterministic (sorted, trailing
// newline) and Parse inverts it.
func TestLockRoundTrip(t *testing.T) {
	l := &Lock{Types: []Entry{
		{Type: "b.Later", Digest: "22", Const: "b.V", Version: 3},
		{Type: "a.Earlier", Underlying: "string"},
	}}
	data, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("encoded lock lacks trailing newline")
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse of own encoding: %v", err)
	}
	if back.Schema != LockSchema {
		t.Errorf("schema = %q", back.Schema)
	}
	if len(back.Types) != 2 || back.Types[0].Type != "a.Earlier" || back.Types[1].Type != "b.Later" {
		t.Errorf("entries not sorted: %+v", back.Types)
	}
	if e := back.Entry("b.Later"); e == nil || e.Version != 3 || e.Const != "b.V" {
		t.Errorf("Entry(b.Later) = %+v", e)
	}
	if back.Entry("absent") != nil {
		t.Error("Entry(absent) != nil")
	}
	again, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Errorf("re-encoding not byte-identical:\n%s\nvs\n%s", data, again)
	}
}

// TestParseRejects: every malformed input is an ErrLock error, never a
// panic and never a silently empty contract.
func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"truncated JSON":  `{"schema": "tableseg-schema-lock-v1", "types": [`,
		"foreign schema":  `{"schema": "something-else", "types": []}`,
		"missing schema":  `{"types": []}`,
		"empty type name": `{"schema": "tableseg-schema-lock-v1", "types": [{"type": ""}]}`,
		"duplicate entry": `{"schema": "tableseg-schema-lock-v1", "types": [{"type": "a.T"}, {"type": "a.T"}]}`,
	}
	for label, src := range cases {
		if _, err := Parse([]byte(src)); !errors.Is(err, ErrLock) {
			t.Errorf("%s: err = %v, want ErrLock", label, err)
		}
	}
}

// TestLoadFile: absent means not-adopted (nil, nil); corrupt means a
// real error naming the file.
func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	if l, err := LoadFile(filepath.Join(dir, "nope.lock")); l != nil || err != nil {
		t.Errorf("missing file: (%v, %v), want (nil, nil)", l, err)
	}
	bad := filepath.Join(dir, "bad.lock")
	if err := os.WriteFile(bad, []byte(`{"schema":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); !errors.Is(err, ErrLock) || !strings.Contains(err.Error(), "bad.lock") {
		t.Errorf("corrupt file: err = %v, want ErrLock naming the file", err)
	}
}
