package schema

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// LockSchema identifies the lock file format; Parse rejects anything
// else, so a truncated or foreign file is a loud error rather than an
// empty contract.
const LockSchema = "tableseg-schema-lock-v1"

// ErrLock is the sentinel wrapped by every lock parse/validation
// failure.
var ErrLock = errors.New("schema: lock")

// Lock is one committed schema-lock file: the recorded contract the
// drift analyzers compare the live tree against. `lint/schema-apiv1.lock`
// pins the wire surface (field-level entries); `lint/schema-artifacts.lock`
// pins codec-encoded struct digests to their version constants.
type Lock struct {
	Schema string  `json:"schema"`
	Types  []Entry `json:"types"`
}

// Entry is one locked type.
type Entry struct {
	// Type is the qualified name ("tableseg/api/v1.SegmentRequest").
	Type string `json:"type"`
	// Digest is the sha256 of the canonical reachable shape.
	Digest string `json:"digest,omitempty"`
	// Underlying is the canonical underlying shape of non-struct wire
	// types (e.g. `type Code string` records "string").
	Underlying string `json:"underlying,omitempty"`
	// Fields is the JSON-visible field list of struct wire types, in
	// declaration order.
	Fields []Field `json:"fields,omitempty"`
	// Const and Version bind a codec-encoded type's digest to a
	// version constant: Const names it ("internal/stage.CodecVersion"),
	// Version records its value when the digest was taken. A digest
	// change at an unchanged version is the codecdrift finding.
	Const   string `json:"const,omitempty"`
	Version int64  `json:"version,omitempty"`
}

// Entry returns the locked entry for the qualified type name, or nil.
func (l *Lock) Entry(typeName string) *Entry {
	for i := range l.Types {
		if l.Types[i].Type == typeName {
			return &l.Types[i]
		}
	}
	return nil
}

// Encode renders the lock deterministically: schema line first,
// entries sorted by type name, two-space indent, trailing newline.
// `tableseglint -update-locks` is a byte-identical no-op when nothing
// changed because this is the only writer.
func (l *Lock) Encode() ([]byte, error) {
	cp := Lock{Schema: l.Schema, Types: append([]Entry(nil), l.Types...)}
	if cp.Schema == "" {
		cp.Schema = LockSchema
	}
	SortEntries(cp.Types)
	data, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("%w: encoding: %w", ErrLock, err)
	}
	return append(data, '\n'), nil
}

// Parse decodes and validates lock bytes. Any malformed input — bad
// JSON, a missing or foreign schema line, duplicate type entries —
// is an error wrapping ErrLock; nothing panics.
func Parse(data []byte) (*Lock, error) {
	var l Lock
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("%w: corrupt or truncated: %w", ErrLock, err)
	}
	if l.Schema != LockSchema {
		return nil, fmt.Errorf("%w: schema %q, want %q", ErrLock, l.Schema, LockSchema)
	}
	seen := map[string]bool{}
	for _, e := range l.Types {
		if e.Type == "" {
			return nil, fmt.Errorf("%w: entry with empty type name", ErrLock)
		}
		if seen[e.Type] {
			return nil, fmt.Errorf("%w: duplicate entry for %s", ErrLock, e.Type)
		}
		seen[e.Type] = true
	}
	return &l, nil
}

// LoadFile reads and parses the lock at path. A missing file is
// (nil, nil) — the analyzers treat an absent lock as "not adopted
// yet" — while an unreadable or corrupt file is an error the driver
// turns into an exit-2 usage failure.
func LoadFile(path string) (*Lock, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: %s: %w", ErrLock, path, err)
	}
	l, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}
