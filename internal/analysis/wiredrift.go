package analysis

import (
	"go/token"
	"go/types"
	"strings"

	"tableseg/internal/analysis/schema"
)

// WireDrift returns the analyzer that holds the api/v1 wire surface
// to its append-only contract. The contract used to live in a doc
// comment ("any breaking change belongs in a new version package");
// this analyzer makes it mechanical: every exported type of the wire
// package is pinned, field by field, in the committed
// lint/schema-apiv1.lock, and any removal, rename, retype, retag or
// reorder of a locked field — or the disappearance of a locked type —
// is a finding that names the break. Pure additions are legal within
// v1 but must be recorded: they produce a regenerate-the-lock finding
// until `tableseglint -update-locks` is run, so the lock diff (not a
// reviewer's memory) is the audit trail of the growing surface.
//
// With no lock loaded (Config.WireLock nil) the analyzer is silent —
// the driver loads the committed lock and fails hard on a corrupt
// one, so silence means "not adopted", never "file rotted".
func WireDrift() *Analyzer {
	a := &Analyzer{
		Name: "wiredrift",
		Doc:  "api/v1 wire types must stay append-only within v1: no locked field removed, retyped, retagged or reordered",
	}
	a.Run = func(pass *Pass) {
		lock := pass.Cfg.WireLock
		if lock == nil || pass.Cfg.WirePkg == "" || !pathMatches(pass.Pkg.Path, pass.Cfg.WirePkg) {
			return
		}
		lockName := pass.Cfg.WireLockPath
		if lockName == "" {
			lockName = WireLockFile
		}
		scope := pass.Pkg.Types.Scope()
		prefix := pass.Pkg.Path + "."

		// Locked contract vs live tree: every locked type must still
		// exist with every locked field intact.
		locked := map[string]bool{}
		for i := range lock.Types {
			entry := &lock.Types[i]
			name, ok := strings.CutPrefix(entry.Type, prefix)
			if !ok {
				continue // an entry for some other package: not ours to check
			}
			locked[name] = true
			obj, _ := scope.Lookup(name).(*types.TypeName)
			if obj == nil {
				pass.Reportf(packagePos(pass), "locked wire type %s no longer exists — v1 is append-only; restore it or start api/v2", entry.Type)
				continue
			}
			checkWireType(pass, obj, entry, lockName)
		}

		// Live tree vs locked contract: additions are legal but must be
		// recorded before the gate goes green again.
		for _, name := range scope.Names() {
			obj, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || !obj.Exported() || locked[name] {
				continue
			}
			pass.Reportf(obj.Pos(), "wire type %s is not in %s; additions extend the v1 surface — regenerate the lock with tableseglint -update-locks", prefix+name, lockName)
		}
	}
	return a
}

// checkWireType diffs one live type against its locked entry.
func checkWireType(pass *Pass, obj *types.TypeName, entry *schema.Entry, lockName string) {
	st, isStruct := obj.Type().Underlying().(*types.Struct)
	if entry.Fields == nil && entry.Underlying != "" {
		// Non-struct contract (e.g. `type Code string`).
		if isStruct {
			pass.Reportf(obj.Pos(), "wire type %s became a struct (locked underlying %s) — breaking within v1", entry.Type, entry.Underlying)
			return
		}
		cur := schema.WireEntryOf(obj)
		if cur.Underlying != entry.Underlying {
			pass.Reportf(obj.Pos(), "underlying type of %s changed %s -> %s — breaking within v1", entry.Type, entry.Underlying, cur.Underlying)
		}
		return
	}
	if !isStruct {
		pass.Reportf(obj.Pos(), "wire type %s is no longer a struct — breaking within v1", entry.Type)
		return
	}
	cur := schema.WireFields(st, obj.Pkg())
	curByName := map[string]schema.Field{}
	curPos := map[string]token.Pos{}
	for _, f := range cur {
		curByName[f.Name] = f
	}
	for i := 0; i < st.NumFields(); i++ {
		curPos[st.Field(i).Name()] = st.Field(i).Pos()
	}
	lockedByName := map[string]bool{}
	for _, lf := range entry.Fields {
		lockedByName[lf.Name] = true
		cf, ok := curByName[lf.Name]
		if !ok {
			pass.Reportf(obj.Pos(), "field %s.%s (json %q) removed from the v1 wire surface — v1 is append-only; restore it or start api/v2", entry.Type, lf.Name, lf.Tag)
			continue
		}
		if cf.Tag != lf.Tag {
			pass.Reportf(curPos[lf.Name], "json tag of %s.%s changed %q -> %q — breaking within v1", entry.Type, lf.Name, lf.Tag, cf.Tag)
		}
		if cf.Type != lf.Type {
			pass.Reportf(curPos[lf.Name], "type of %s.%s changed %s -> %s — breaking within v1", entry.Type, lf.Name, lf.Type, cf.Type)
		}
	}
	for _, cf := range cur {
		if !lockedByName[cf.Name] {
			pass.Reportf(curPos[cf.Name], "new field %s.%s extends the v1 wire surface; regenerate %s with tableseglint -update-locks", entry.Type, cf.Name, lockName)
		}
	}
	// Fields common to both must keep their locked relative order:
	// encoding/json emits in declaration order, and byte-identical
	// output across the daemon/client/CLI is part of the contract.
	var lockedOrder, curOrder []string
	for _, lf := range entry.Fields {
		if _, ok := curByName[lf.Name]; ok {
			lockedOrder = append(lockedOrder, lf.Name)
		}
	}
	for _, cf := range cur {
		if lockedByName[cf.Name] {
			curOrder = append(curOrder, cf.Name)
		}
	}
	for i := range lockedOrder {
		if lockedOrder[i] != curOrder[i] {
			pass.Reportf(obj.Pos(), "wire fields of %s reordered relative to the lock — JSON field order is part of the v1 surface", entry.Type)
			break
		}
	}
}

// packagePos is the deterministic fallback position for findings with
// no surviving declaration to point at: the package clause of the
// first (name-sorted) file.
func packagePos(pass *Pass) token.Pos {
	return pass.Pkg.Files[0].Name.Pos()
}
