package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism returns the analyzer enforcing the solver packages'
// reproducibility invariants: Table 1–4 output must be byte-identical
// across runs, worker counts and machines, so the packages that feed
// those tables may not read the wall clock (inject internal/clock),
// may not draw from math/rand's shared top-level source (thread a
// seeded *rand.Rand), and may not let map-iteration order leak into
// order-sensitive accumulators.
func Determinism() *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock reads, top-level math/rand and order-sensitive map iteration in solver packages",
	}
	a.Run = func(pass *Pass) {
		if !matchesAny(pass.Pkg.Path, pass.Cfg.DeterminismPkgs) {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					checkSelector(pass, n)
				case *ast.FuncDecl:
					if n.Body != nil {
						checkMapRanges(pass, n.Body)
					}
				}
				return true
			})
		}
	}
	return a
}

// randAllowed lists the math/rand package-level functions that are
// deterministic to reference: constructors for an explicitly seeded
// generator.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func checkSelector(pass *Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	switch pass.pkgNameOf(id) {
	case "time":
		if sel.Sel.Name == "Now" {
			pass.Reportf(sel.Pos(), "time.Now is nondeterministic; use internal/clock (the audited wall-clock seam) instead")
		}
	case "math/rand", "math/rand/v2":
		if randAllowed[sel.Sel.Name] {
			return
		}
		if _, isFunc := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); isFunc {
			pass.Reportf(sel.Pos(), "top-level math/rand.%s uses the shared unseeded source; thread a seeded *rand.Rand", sel.Sel.Name)
		}
	}
}

// checkMapRanges flags range-over-map loops inside body whose bodies
// accumulate into order-sensitive state declared outside the loop —
// appending to a slice, or compound floating-point arithmetic (float
// addition is not associative, so the sum depends on iteration order)
// — unless the slice accumulator is sorted later in the same function.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Objects passed to a sort.* or slices.Sort* call anywhere in the
	// function, keyed to the call's position: an append accumulator is
	// fine if it is sorted after the loop finishes.
	type sortedAt struct {
		obj types.Object
		pos token.Pos
	}
	var sorts []sortedAt
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch pass.pkgNameOf(pkgID) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					sorts = append(sorts, sortedAt{obj, call.Pos()})
				}
			}
		}
		return true
	})
	sortedAfter := func(obj types.Object, pos token.Pos) bool {
		for _, s := range sorts {
			if s.obj == obj && s.pos > pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		outer := func(id *ast.Ident) types.Object {
			obj := info.ObjectOf(id)
			if obj == nil || obj.Pos() == token.NoPos {
				return nil
			}
			if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
				return nil // declared inside the loop; dies with it
			}
			return obj
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range asg.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := outer(id)
				if obj == nil {
					continue
				}
				switch asg.Tok {
				case token.ASSIGN, token.DEFINE:
					if i < len(asg.Rhs) && isAppendOf(info, asg.Rhs[i], obj) && !sortedAfter(obj, rng.End()) {
						pass.Reportf(asg.Pos(), "append to %q inside range over map: iteration order leaks into the slice; iterate sorted keys or sort afterwards", obj.Name())
					}
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					if isFloat(obj.Type()) {
						pass.Reportf(asg.Pos(), "floating-point accumulation into %q inside range over map: float arithmetic is not associative, so the result depends on iteration order; iterate sorted keys", obj.Name())
					}
				}
			}
			return true
		})
		return true
	})
}

// isAppendOf reports whether e is append(obj, ...).
func isAppendOf(info *types.Info, e ast.Expr, obj types.Object) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := info.ObjectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
