package analysis

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
)

// This file renders diagnostics in the two machine-readable formats
// cmd/tableseglint emits: a flat JSON array for scripting, and SARIF
// 2.1.0 for CI code-scanning annotation. Both encoders take the
// already-sorted diagnostic slice, so their output is byte-stable for
// a given tree.

// JSONDiagnostic is the scripting-friendly projection of a Diagnostic.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// EncodeJSON renders diags as an indented JSON array (never null: an
// empty tree encodes as []).
func EncodeJSON(diags []Diagnostic) ([]byte, error) {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			Analyzer: d.Analyzer,
			File:     sarifURI(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// SARIF 2.1.0 document skeleton — only the fields the format requires
// plus the ones GitHub code scanning consumes. The struct names follow
// the SARIF property names.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// EncodeSARIF renders diags as a SARIF 2.1.0 log with one run. The
// rules table lists every suite analyzer (not just the firing ones),
// so a clean run still documents what was checked; results reference
// rules by both id and index as the code-scanning ingesters expect.
func EncodeSARIF(diags []Diagnostic, analyzers []*Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	index := map[string]int{}
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// Diagnostics from an analyzer outside the provided suite (possible
	// when a caller narrows the analyzer list) still need a rule entry.
	var extra []string
	for _, d := range diags {
		if _, ok := index[d.Analyzer]; !ok {
			index[d.Analyzer] = -1
			extra = append(extra, d.Analyzer)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		index[name] = len(rules)
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: name}})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: index[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "tableseglint",
				InformationURI: "https://github.com/tableseg/tableseg",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// sarifURI normalizes a reported filename to a slash-separated
// relative URI (SARIF artifactLocation wants URIs, and CI ingesters
// want them repo-relative).
func sarifURI(name string) string {
	u := filepath.ToSlash(name)
	u = strings.TrimPrefix(u, "./")
	return u
}
