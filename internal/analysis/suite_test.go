package analysis

import (
	"testing"
)

// suiteOrder is the pinned registration order. The driver's cache keys,
// the -list output and the SARIF rule array all derive from Suite(), so
// a reorder (or an accidental map-iteration dependence) is a breaking
// change this test makes explicit.
var suiteOrder = []string{
	"determinism",
	"ctxdiscipline",
	"errwrap",
	"floateq",
	"stagepurity",
	"deprecated",
	"goroleak",
	"lockdiscipline",
	"chancontract",
	"rngflow",
	"probflow",
	"aliasflow",
	"ctxflow",
	"lockflow",
	"httpresp",
	"wiredrift",
	"codecdrift",
	"borrowflow",
	"poolsafe",
	"hotalloc",
}

// TestSuiteOrderPinned pins the exact analyzer count and registration
// order, and checks each analyzer is well-formed (unique non-empty
// name, doc string, runner).
func TestSuiteOrderPinned(t *testing.T) {
	suite := Suite()
	if len(suite) != len(suiteOrder) {
		t.Fatalf("Suite() has %d analyzers, want %d", len(suite), len(suiteOrder))
	}
	seen := map[string]bool{}
	for i, a := range suite {
		if a.Name != suiteOrder[i] {
			t.Errorf("Suite()[%d] = %q, want %q", i, a.Name, suiteOrder[i])
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc string", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no runner", a.Name)
		}
	}
}

// TestSuiteOrderStable checks that repeated Suite() calls agree — the
// registry is a literal, not accumulated global state.
func TestSuiteOrderStable(t *testing.T) {
	first, second := Suite(), Suite()
	if len(first) != len(second) {
		t.Fatalf("Suite() length changed between calls: %d then %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Name != second[i].Name {
			t.Errorf("Suite()[%d] changed between calls: %q then %q", i, first[i].Name, second[i].Name)
		}
	}
}

// TestSortDiagnosticsDeterministic feeds SortDiagnostics a scrambled
// slice (including same-position findings from different analyzers)
// and pins the exact output order; a second sort must be a no-op.
func TestSortDiagnosticsDeterministic(t *testing.T) {
	d := func(file string, line, col int, analyzer string) Diagnostic {
		diag := Diagnostic{Analyzer: analyzer, Message: "m"}
		diag.Pos.Filename = file
		diag.Pos.Line = line
		diag.Pos.Column = col
		return diag
	}
	scrambled := []Diagnostic{
		d("b.go", 3, 1, "poolsafe"),
		d("a.go", 9, 2, "hotalloc"),
		d("b.go", 3, 1, "borrowflow"),
		d("a.go", 9, 2, "aliasflow"),
		d("a.go", 2, 7, "determinism"),
		d("b.go", 1, 1, "hotalloc"),
	}
	want := []Diagnostic{
		d("a.go", 2, 7, "determinism"),
		d("a.go", 9, 2, "aliasflow"),
		d("a.go", 9, 2, "hotalloc"),
		d("b.go", 1, 1, "hotalloc"),
		d("b.go", 3, 1, "borrowflow"),
		d("b.go", 3, 1, "poolsafe"),
	}
	SortDiagnostics(scrambled)
	for i := range want {
		if scrambled[i].Pos != want[i].Pos || scrambled[i].Analyzer != want[i].Analyzer {
			t.Errorf("after sort, [%d] = %s:%d:%d %s, want %s:%d:%d %s", i,
				scrambled[i].Pos.Filename, scrambled[i].Pos.Line, scrambled[i].Pos.Column, scrambled[i].Analyzer,
				want[i].Pos.Filename, want[i].Pos.Line, want[i].Pos.Column, want[i].Analyzer)
		}
	}
	resorted := append([]Diagnostic(nil), scrambled...)
	SortDiagnostics(resorted)
	for i := range scrambled {
		if resorted[i] != scrambled[i] {
			t.Errorf("SortDiagnostics is not idempotent at [%d]", i)
		}
	}
}
