package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// HotPathsFile is the committed hot-path declaration, relative to the
// module root: one import-path suffix per line ('#' comments and blank
// lines ignored). The packages listed there are the ones whose
// profiles the perf work targets, and the only ones hotalloc runs
// over — hot-path discipline is a policy the repo opts packages into,
// not a global style rule.
const HotPathsFile = "lint/hotpaths.conf"

// LoadHotPaths populates cfg.HotPkgs from the hot-paths file committed
// under root. A missing file leaves hotalloc dormant (the module has
// not declared hot paths yet); an unreadable file or one declaring no
// packages at all (every line blank or comment) is an error the driver
// reports as an exit-2 usage failure — a present-but-empty declaration
// is far more likely a truncated commit than a deliberate opt-out,
// which deleting the file already expresses.
func LoadHotPaths(cfg *Config, root string) error {
	if cfg.HotPathsPath == "" {
		cfg.HotPathsPath = HotPathsFile
	}
	path := filepath.Join(root, filepath.FromSlash(cfg.HotPathsPath))
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()

	var pkgs []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.ContainsAny(line, " \t") {
			return fmt.Errorf("%s: malformed line %q: one import-path suffix per line", cfg.HotPathsPath, line)
		}
		pkgs = append(pkgs, line)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", cfg.HotPathsPath, err)
	}
	if len(pkgs) == 0 {
		return fmt.Errorf("%s: declares no packages; delete the file to opt out of hotalloc", cfg.HotPathsPath)
	}
	cfg.HotPkgs = pkgs
	return nil
}
