package analysis

import (
	"strconv"
)

// StagePurity returns the analyzer enforcing the stage-graph layering
// introduced with internal/stage: the stage package holds pure stage
// functions over artifact types and must stay algorithm-agnostic (no
// imports of the CSP, PHMM or baseline algorithm packages — algorithms
// plug in behind the Solver registry), and the solver adapter packages
// must depend only on the artifact types and their algorithm packages,
// never on the orchestration layer (core, engine, experiments). The
// rule keeps the dependency arrows one-directional — orchestration →
// stages ← solvers → algorithms — so a new solver can be added, and a
// stage reused, without linking in the rest of the pipeline.
func StagePurity() *Analyzer {
	a := &Analyzer{
		Name: "stagepurity",
		Doc:  "forbid algorithm imports in stage packages and orchestration imports in solver packages",
	}
	a.Run = func(pass *Pass) {
		var banned []string
		var why string
		switch {
		case matchesAny(pass.Pkg.Path, pass.Cfg.StagePkgs):
			banned = append(banned, pass.Cfg.AlgorithmPkgs...)
			banned = append(banned, pass.Cfg.SolverPkgs...)
			banned = append(banned, pass.Cfg.OrchestrationPkgs...)
			why = "stages are algorithm-agnostic; algorithms reach the Segment stage through the Solver registry"
		case matchesAny(pass.Pkg.Path, pass.Cfg.SolverPkgs):
			banned = pass.Cfg.OrchestrationPkgs
			why = "solvers depend only on the artifact types and their algorithm packages, never on orchestration"
		default:
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if matchesAny(path, banned) {
					pass.Reportf(imp.Pos(), "package %s may not import %s: %s", pass.Pkg.Path, path, why)
				}
			}
		}
	}
	return a
}
