package crawl

import (
	"context"
	"testing"

	"tableseg/internal/core"
	"tableseg/internal/eval"
	"tableseg/internal/sitegen"
)

func TestAnchors(t *testing.T) {
	html := `<a href="x.html">First <b>Link</b></a> plain <a href="y.html">Next</a><a>bare</a>`
	got := anchors(html)
	if len(got) != 3 {
		t.Fatalf("%d anchors", len(got))
	}
	if got[0].href != "x.html" || got[0].text != "First Link" {
		t.Errorf("anchor 0 = %+v", got[0])
	}
	if got[1].text != "Next" {
		t.Errorf("anchor 1 = %+v", got[1])
	}
	if got[2].href != "" {
		t.Errorf("anchor 2 = %+v", got[2])
	}
}

func TestNextLink(t *testing.T) {
	html := `<a href="detail1.html">More Info</a> <a href="list2.html">Next</a>`
	if got := NextLink("http://s.example/list1.html", html); got != "http://s.example/list2.html" {
		t.Errorf("NextLink = %q", got)
	}
	if got := NextLink("/x.html", `<a href="y.html">Previous</a>`); got != "" {
		t.Errorf("no-next page gave %q", got)
	}
	// Case-insensitive labels.
	if got := NextLink("/a/l.html", `<a href="l2.html">NEXT</a>`); got != "/a/l2.html" {
		t.Errorf("NEXT label gave %q", got)
	}
}

func TestDiscoverListPages(t *testing.T) {
	site, err := sitegen.GenerateBySlug("ohio", 42)
	if err != nil {
		t.Fatal(err)
	}
	f := MapFetcher(site.SiteMap())
	urls, bodies, err := DiscoverListPages(f, "/list1.html", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 2 || urls[0] != "/list1.html" || urls[1] != "/list2.html" {
		t.Fatalf("urls = %v", urls)
	}
	if len(bodies) != 2 {
		t.Fatalf("%d bodies", len(bodies))
	}
}

func TestDiscoverBreaksCycles(t *testing.T) {
	f := MapFetcher{
		"/a.html": `<a href="b.html">Next</a>`,
		"/b.html": `<a href="a.html">Next</a>`,
	}
	urls, _, err := DiscoverListPages(f, "/a.html", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 2 {
		t.Fatalf("cycle not broken: %v", urls)
	}
}

func TestDiscoverDeadNextLink(t *testing.T) {
	f := MapFetcher{"/a.html": `<a href="gone.html">Next</a>`}
	urls, _, err := DiscoverListPages(f, "/a.html", 10)
	if err != nil || len(urls) != 1 {
		t.Fatalf("urls=%v err=%v", urls, err)
	}
	if _, _, err := DiscoverListPages(f, "/missing.html", 0); err == nil {
		t.Error("unfetchable entry must error")
	}
}

// HarvestFrom: the full §3 vision from one URL.
func TestHarvestFromEntryURL(t *testing.T) {
	for _, slug := range []string{"butler", "superpages"} {
		site, err := sitegen.GenerateBySlug(slug, 42)
		if err != nil {
			t.Fatal(err)
		}
		h := &Harvester{
			Fetcher: MapFetcher(site.SiteMap()),
			Options: core.DefaultOptions(core.Probabilistic),
		}
		res, err := h.HarvestFrom(context.Background(), "/list1.html")
		if err != nil {
			t.Fatal(err)
		}
		counts := eval.Score(res.Segmentation, site.Lists[0].Truth)
		if counts.Cor != len(site.Lists[0].Truth) {
			t.Errorf("%s: HarvestFrom scored %v", slug, counts)
		}
	}
}

func TestHarvestAllMergesRelation(t *testing.T) {
	site, err := sitegen.GenerateBySlug("butler", 42)
	if err != nil {
		t.Fatal(err)
	}
	h := &Harvester{
		Fetcher: MapFetcher(site.SiteMap()),
		Options: core.DefaultOptions(core.Probabilistic),
	}
	table, results, err := h.HarvestAll(context.Background(), "/list1.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d pages harvested", len(results))
	}
	want := len(site.Lists[0].Truth) + len(site.Lists[1].Truth)
	if table.NumRows() != want {
		t.Errorf("%d relation rows, want %d", table.NumRows(), want)
	}
}
