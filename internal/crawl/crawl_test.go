package crawl

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"tableseg/internal/core"
	"tableseg/internal/eval"
	"tableseg/internal/sitegen"
)

func TestLinksResolutionAndDedup(t *testing.T) {
	html := `<a href="list1_detail1.html">A</a>
	<a href="/abs.html">B</a>
	<a href="list1_detail1.html">dup</a>
	<a href="#frag">skip</a>
	<a href="mailto:x@y">skip</a>
	<a href="http://other.example/x">keep</a>
	<a>no href</a>`
	got := Links("http://site.example/dir/list1.html", html)
	want := []string{
		"http://site.example/dir/list1_detail1.html",
		"http://site.example/abs.html",
		"http://other.example/x",
	}
	if len(got) != len(want) {
		t.Fatalf("links = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("link %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMapFetcher(t *testing.T) {
	m := MapFetcher{"/a.html": "body"}
	if body, err := m.Fetch("/a.html"); err != nil || body != "body" {
		t.Errorf("direct fetch: %q, %v", body, err)
	}
	if body, err := m.Fetch("http://x.example/a.html"); err != nil || body != "body" {
		t.Errorf("path-fallback fetch: %q, %v", body, err)
	}
	if _, err := m.Fetch("/missing.html"); err == nil {
		t.Error("missing page must error")
	}
}

func TestDirFetcher(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(dir+"/page.html", "content"); err != nil {
		t.Fatal(err)
	}
	d := DirFetcher{Root: dir}
	if body, err := d.Fetch("/page.html"); err != nil || body != "content" {
		t.Errorf("fetch: %q, %v", body, err)
	}
	if _, err := d.Fetch("/../../etc/passwd"); err == nil {
		t.Error("path traversal must be rejected")
	}
	if _, err := d.Fetch("/missing.html"); err == nil {
		t.Error("missing file must error")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// harvestSite runs the harvester over a generated site's in-memory map
// and scores the result.
func harvestSite(t *testing.T, slug string, target int, method core.Method) (eval.Counts, *Result) {
	t.Helper()
	site, err := sitegen.GenerateBySlug(slug, 42)
	if err != nil {
		t.Fatal(err)
	}
	h := &Harvester{
		Fetcher: MapFetcher(site.SiteMap()),
		Options: core.DefaultOptions(method),
	}
	res, err := h.Harvest(context.Background(), []string{"/list1.html", "/list2.html"}, target)
	if err != nil {
		t.Fatal(err)
	}
	return eval.Score(res.Segmentation, site.Lists[target].Truth), res
}

func TestHarvestEndToEnd(t *testing.T) {
	for _, slug := range []string{"allegheny", "canada411", "ohio"} {
		counts, res := harvestSite(t, slug, 0, core.Probabilistic)
		if counts.Recall() < 1 || counts.Precision() < 0.95 {
			t.Errorf("%s: harvest scored %v", slug, counts)
		}
		// The ad links must have been rejected, and detail order must
		// follow link order.
		if len(res.RejectedURLs) < 3 {
			t.Errorf("%s: only %d rejected links (ads not filtered?)", slug, len(res.RejectedURLs))
		}
		for _, u := range res.DetailURLs {
			if strings.Contains(u, "_ad") {
				t.Errorf("%s: ad page %s classified as detail", slug, u)
			}
		}
		for i := 1; i < len(res.DetailURLs); i++ {
			if res.DetailURLs[i] <= res.DetailURLs[i-1] && len(res.DetailURLs[i]) == len(res.DetailURLs[i-1]) {
				t.Errorf("%s: detail order broken: %v", slug, res.DetailURLs)
			}
		}
	}
}

func TestHarvestOverHTTP(t *testing.T) {
	site, err := sitegen.GenerateBySlug("butler", 42)
	if err != nil {
		t.Fatal(err)
	}
	pages := site.SiteMap()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, ok := pages[r.URL.Path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html")
		_, _ = w.Write([]byte(body))
	}))
	defer srv.Close()

	h := &Harvester{
		Fetcher: HTTPFetcher{Client: srv.Client()},
		Options: core.DefaultOptions(core.CSP),
	}
	res, err := h.Harvest(context.Background(), []string{srv.URL + "/list1.html", srv.URL + "/list2.html"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := eval.Score(res.Segmentation, site.Lists[0].Truth)
	if counts.Cor != len(site.Lists[0].Truth) {
		t.Errorf("HTTP harvest: %v", counts)
	}
}

func TestHarvestErrors(t *testing.T) {
	h := &Harvester{Fetcher: MapFetcher{}}
	if _, err := h.Harvest(context.Background(), nil, 0); err == nil {
		t.Error("no URLs must error")
	}
	if _, err := h.Harvest(context.Background(), []string{"/x.html"}, 5); err == nil {
		t.Error("bad target must error")
	}
	if _, err := h.Harvest(context.Background(), []string{"/x.html"}, 0); err == nil {
		t.Error("unfetchable list page must error")
	}
	// A list page with no links.
	h2 := &Harvester{Fetcher: MapFetcher{"/l.html": "<p>no links here</p>"}}
	if _, err := h2.Harvest(context.Background(), []string{"/l.html"}, 0); err == nil {
		t.Error("linkless page must error")
	}
	// Links exist but all of them 404.
	h3 := &Harvester{Fetcher: MapFetcher{"/l.html": `<a href="gone.html">x</a>`}}
	if _, err := h3.Harvest(context.Background(), []string{"/l.html"}, 0); err == nil {
		t.Error("all-broken links must error")
	}
}

func TestHarvestSkipsBrokenLinks(t *testing.T) {
	site, err := sitegen.GenerateBySlug("lee", 42)
	if err != nil {
		t.Fatal(err)
	}
	pages := site.SiteMap()
	// Break one ad link; the harvest must still succeed.
	delete(pages, "/list1_ad1.html")
	h := &Harvester{Fetcher: MapFetcher(pages), Options: core.DefaultOptions(core.Probabilistic)}
	res, err := h.Harvest(context.Background(), []string{"/list1.html", "/list2.html"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := eval.Score(res.Segmentation, site.Lists[0].Truth)
	if counts.Cor != len(site.Lists[0].Truth) {
		t.Errorf("harvest with broken ad link: %v", counts)
	}
}
