// Package crawl implements the paper's §3 vision: "the user provides a
// pointer to the top-level page ... and the system automatically
// navigates the site, retrieving all pages, classifying them as list
// and detail pages, and extracting structured data from these pages."
//
// The harvester starts from the sampled list-page URLs, fetches every
// page they link to, separates the detail pages from advertisements and
// navigation with the structural classifier of §6.1, and runs the
// segmentation pipeline — producing records without any manual page
// selection. Fetching is abstracted behind a Fetcher so the same
// harvester walks an in-memory site, a directory on disk, or a live
// HTTP server.
package crawl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"tableseg/internal/classify"
	"tableseg/internal/core"
	"tableseg/internal/htmlx"
	"tableseg/internal/token"
)

// Fetcher retrieves the body of a page by URL.
type Fetcher interface {
	Fetch(pageURL string) (string, error)
}

// MapFetcher serves pages from an in-memory URL→HTML map (the shape
// sitegen.Site.SiteMap produces). Lookups fall back to the URL's path
// component so absolute and site-relative URLs both resolve.
type MapFetcher map[string]string

// Fetch implements Fetcher.
func (m MapFetcher) Fetch(pageURL string) (string, error) {
	if body, ok := m[pageURL]; ok {
		return body, nil
	}
	if u, err := url.Parse(pageURL); err == nil {
		if body, ok := m[u.Path]; ok {
			return body, nil
		}
	}
	return "", fmt.Errorf("crawl: page %q not found", pageURL)
}

// DirFetcher serves pages from files under a root directory; the URL's
// path (relative to "/") names the file. Path traversal outside the
// root is rejected.
type DirFetcher struct {
	Root string
}

// Fetch implements Fetcher.
func (d DirFetcher) Fetch(pageURL string) (string, error) {
	u, err := url.Parse(pageURL)
	if err != nil {
		return "", fmt.Errorf("crawl: bad url %q: %w", pageURL, err)
	}
	rel := strings.TrimPrefix(u.Path, "/")
	full := filepath.Join(d.Root, filepath.FromSlash(rel))
	clean, err := filepath.Abs(full)
	if err != nil {
		return "", err
	}
	rootAbs, err := filepath.Abs(d.Root)
	if err != nil {
		return "", err
	}
	if clean != rootAbs && !strings.HasPrefix(clean, rootAbs+string(filepath.Separator)) {
		return "", fmt.Errorf("crawl: %q escapes the root directory", pageURL)
	}
	body, err := os.ReadFile(clean)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// HTTPFetcher fetches pages over HTTP with the given client (or
// http.DefaultClient when nil).
type HTTPFetcher struct {
	Client *http.Client
}

// Fetch implements Fetcher.
func (h HTTPFetcher) Fetch(pageURL string) (string, error) {
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(pageURL)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("crawl: GET %s: %s", pageURL, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// Links returns the href targets of a page's <a> elements, resolved
// against the page URL, in document order, deduplicated (first
// occurrence wins). Fragment-only and non-http(s)/relative schemes are
// skipped.
func Links(pageURL, html string) []string {
	base, err := url.Parse(pageURL)
	if err != nil {
		base = &url.URL{Path: "/"}
	}
	var out []string
	seen := map[string]bool{}
	for _, tok := range htmlx.Tokenize(html) {
		if tok.Kind != htmlx.StartTag || tok.Data != "a" {
			continue
		}
		href, ok := tok.Attr("href")
		if !ok || href == "" || strings.HasPrefix(href, "#") {
			continue
		}
		ref, err := url.Parse(href)
		if err != nil {
			continue
		}
		if ref.Scheme != "" && ref.Scheme != "http" && ref.Scheme != "https" {
			continue
		}
		resolved := base.ResolveReference(ref).String()
		if seen[resolved] {
			continue
		}
		seen[resolved] = true
		out = append(out, resolved)
	}
	return out
}

// Harvester walks a site and extracts its records.
type Harvester struct {
	Fetcher Fetcher
	// Options configures the segmentation pipeline; zero value selects
	// the probabilistic defaults.
	Options core.Options
	// ClassifyThreshold tunes detail-page clustering (0 = default).
	ClassifyThreshold float64
	// Concurrency bounds parallel fetches of the linked pages (0 = 8).
	// Fetch order does not affect results: pages keep link order.
	Concurrency int
}

// Result is the outcome of one harvested list page.
type Result struct {
	// Segmentation is the extracted table.
	Segmentation *core.Segmentation
	// ListURL is the harvested page.
	ListURL string
	// DetailURLs are the linked pages classified as detail pages, in
	// link order (record order).
	DetailURLs []string
	// RejectedURLs are linked pages classified as non-details.
	RejectedURLs []string
}

// errNoLinks is wrapped into the harvest error when a list page links
// to nothing.
var errNoLinks = errors.New("list page has no outgoing links")

// Harvest fetches the sampled list pages, follows every link from the
// target page, classifies the detail set, and segments the target.
func (h *Harvester) Harvest(ctx context.Context, listURLs []string, target int) (*Result, error) {
	if len(listURLs) == 0 {
		return nil, errors.New("crawl: no list page URLs")
	}
	if target < 0 || target >= len(listURLs) {
		return nil, fmt.Errorf("crawl: target %d out of range", target)
	}
	opts := h.Options
	if opts == (core.Options{}) { // zero Options: use method defaults
		opts = core.DefaultOptions(opts.Method)
	} else if opts.MinSlotQuality == 0 {
		opts.MinSlotQuality = core.DefaultOptions(opts.Method).MinSlotQuality
	}

	in := core.Input{Target: target}
	var listBodies []string
	for _, u := range listURLs {
		body, err := h.Fetcher.Fetch(u)
		if err != nil {
			return nil, fmt.Errorf("crawl: list page %s: %w", u, err)
		}
		listBodies = append(listBodies, body)
		in.ListPages = append(in.ListPages, core.Page{Name: u, HTML: body})
	}

	links := Links(listURLs[target], listBodies[target])
	if len(links) == 0 {
		return nil, fmt.Errorf("crawl: %s: %w", listURLs[target], errNoLinks)
	}
	// Fetch the linked pages concurrently; results keep link order
	// (record order depends on it). Broken links happen on real sites
	// and are skipped rather than aborting the harvest.
	fetched := make([]string, len(links))
	ok := make([]bool, len(links))
	workers := h.Concurrency
	if workers <= 0 {
		workers = 8
	}
	if workers > len(links) {
		workers = len(links)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for li := range next {
				if body, err := h.Fetcher.Fetch(links[li]); err == nil {
					fetched[li], ok[li] = body, true
				}
			}
		}()
	}
	for li := range links {
		next <- li
	}
	close(next)
	wg.Wait()

	var linked [][]token.Token
	var bodies []string
	var urls []string
	for li, u := range links {
		if !ok[li] {
			continue
		}
		urls = append(urls, u)
		bodies = append(bodies, fetched[li])
		linked = append(linked, token.Tokenize(fetched[li]))
	}
	if len(linked) == 0 {
		return nil, fmt.Errorf("crawl: %s: every outgoing link failed", listURLs[target])
	}

	res := &Result{ListURL: listURLs[target]}
	selected := classify.DetailPages(linked, h.ClassifyThreshold)
	inSel := map[int]bool{}
	for _, idx := range selected {
		inSel[idx] = true
		res.DetailURLs = append(res.DetailURLs, urls[idx])
		in.DetailPages = append(in.DetailPages, core.Page{Name: urls[idx], HTML: bodies[idx]})
	}
	for i, u := range urls {
		if !inSel[i] {
			res.RejectedURLs = append(res.RejectedURLs, u)
		}
	}

	seg, err := core.SegmentContext(ctx, in, opts)
	if err != nil {
		return nil, err
	}
	res.Segmentation = seg
	return res, nil
}
