package crawl

import (
	"context"
	"fmt"
	"strings"

	"tableseg/internal/core"
	"tableseg/internal/htmlx"
	"tableseg/internal/relation"
)

// nextLabels are the anchor texts that conventionally lead to the next
// page of results.
var nextLabels = map[string]bool{
	"next":         true,
	"next page":    true,
	"more results": true,
	"more":         true,
	">>":           true,
}

// anchorTexts returns, for each <a> element in document order, its href
// and visible text.
type anchor struct {
	href, text string
}

func anchors(html string) []anchor {
	var out []anchor
	toks := htmlx.Tokenize(html)
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind != htmlx.StartTag || t.Data != "a" {
			continue
		}
		href, _ := t.Attr("href")
		var text strings.Builder
		for j := i + 1; j < len(toks); j++ {
			if toks[j].Kind == htmlx.EndTag && toks[j].Data == "a" {
				break
			}
			if toks[j].Kind == htmlx.Text {
				text.WriteString(toks[j].Data)
			}
		}
		out = append(out, anchor{href: href, text: strings.TrimSpace(text.String())})
	}
	return out
}

// NextLink returns the URL behind the page's "Next" anchor (resolved
// against pageURL), or "" when the page has none — §6.3's "simply
// follow the 'Next' link" heuristic.
func NextLink(pageURL, html string) string {
	for _, a := range anchors(html) {
		if a.href == "" {
			continue
		}
		if nextLabels[strings.ToLower(a.text)] {
			resolved := Links(pageURL, `<a href="`+a.href+`">x</a>`)
			if len(resolved) == 1 {
				return resolved[0]
			}
		}
	}
	return ""
}

// DiscoverListPages starts from one results page and follows Next links
// to collect the site's sample list pages, up to maxPages (0 selects a
// default of 5). The entry page is always first; cycles are broken.
func DiscoverListPages(f Fetcher, entryURL string, maxPages int) ([]string, []string, error) {
	if maxPages <= 0 {
		maxPages = 5
	}
	var urls, bodies []string
	seen := map[string]bool{}
	cur := entryURL
	for len(urls) < maxPages && cur != "" && !seen[cur] {
		body, err := f.Fetch(cur)
		if err != nil {
			if len(urls) == 0 {
				return nil, nil, fmt.Errorf("crawl: entry page %s: %w", cur, err)
			}
			break // a dead Next link ends discovery, not the harvest
		}
		seen[cur] = true
		urls = append(urls, cur)
		bodies = append(bodies, body)
		cur = NextLink(cur, body)
	}
	return urls, bodies, nil
}

// HarvestFrom runs the complete §3 vision from a single entry URL: it
// discovers the sample list pages by following Next links, then
// harvests the entry page.
func (h *Harvester) HarvestFrom(ctx context.Context, entryURL string) (*Result, error) {
	urls, _, err := DiscoverListPages(h.Fetcher, entryURL, 0)
	if err != nil {
		return nil, err
	}
	return h.Harvest(ctx, urls, 0)
}

// HarvestAll discovers the list pages from an entry URL, harvests every
// one of them, and merges the per-page segmentations into the site's
// relation (§6.3's "reconstruct the relational database behind the Web
// site"). The per-page results are returned alongside the table.
func (h *Harvester) HarvestAll(ctx context.Context, entryURL string) (*relation.Table, []*Result, error) {
	urls, _, err := DiscoverListPages(h.Fetcher, entryURL, 0)
	if err != nil {
		return nil, nil, err
	}
	var results []*Result
	var segs []*core.Segmentation
	for target := range urls {
		res, err := h.Harvest(ctx, urls, target)
		if err != nil {
			return nil, nil, fmt.Errorf("crawl: page %s: %w", urls[target], err)
		}
		results = append(results, res)
		segs = append(segs, res.Segmentation)
	}
	return relation.Merge(segs), results, nil
}
