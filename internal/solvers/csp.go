package solvers

import (
	"context"

	"tableseg/internal/csp"
	"tableseg/internal/stage"
)

// CSP is the §4 constraint-satisfaction solver: WSAT(OIP) local search
// over the strict pseudo-boolean encoding, descending the §6.3
// relaxation ladder on failure.
type CSP struct {
	Params csp.SolveParams
	// Columns enables §6.3 CSP column assignment after segmentation.
	Columns bool
}

// Name implements stage.Solver.
func (s *CSP) Name() string { return "csp" }

// Solve implements stage.Solver. A Failed status after the full
// relaxation ladder means no feasible assignment exists at all; the
// returned Assignment is marked Exhausted and the orchestrator reports
// the typed unsatisfiability error. Under NoRelax or with repair
// disabled (negative MaxCutRounds) a failure is the outcome those
// ablation configurations ask to observe, so the assignment is
// returned as-is with the failure visible in Details.
func (s *CSP) Solve(ctx context.Context, p *stage.Problem) (*stage.Assignment, error) {
	asg := newAssignment(len(p.Candidates))
	res, err := solveCSP(ctx, p, s.Params, asg)
	if err != nil {
		return nil, err
	}
	if res.Status == csp.Failed && !s.Params.NoRelax && s.Params.MaxCutRounds >= 0 {
		asg.Exhausted = true
		return asg, nil
	}
	copy(asg.Records, res.Records)
	if err := assignColumns(ctx, s.Columns, p, asg, s.Params.WSAT); err != nil {
		return nil, err
	}
	return asg, nil
}

// solveCSP runs one CSP segmentation solve and folds its diagnostics
// into the assignment (counters, Details). The record copy is the
// caller's: failure handling differs per solver.
func solveCSP(ctx context.Context, p *stage.Problem, params csp.SolveParams, asg *stage.Assignment) (*csp.SegmentResult, error) {
	sin := csp.SegmentInput{
		NumRecords:     p.NumRecords,
		Candidates:     p.Candidates,
		PositionGroups: p.PositionGroups,
	}
	res, err := csp.SolveSegmentationContext(ctx, sin, params)
	if err != nil {
		return nil, err
	}
	asg.Counters.Add(stage.Counters{
		WSATRestarts: res.Restarts,
		WSATFlips:    res.Flips,
		CutRounds:    res.CutRounds,
	})
	asg.Details = append(asg.Details, res)
	return res, nil
}

// assignColumns optionally runs §6.3 CSP column assignment over the
// solved records, writing into asg.Columns.
func assignColumns(ctx context.Context, enabled bool, p *stage.Problem, asg *stage.Assignment, params csp.WSATParams) error {
	if !enabled {
		return nil
	}
	cols, err := csp.AssignColumns(ctx, asg.Records, p.FirstTypes, params)
	if err != nil {
		return err
	}
	copy(asg.Columns, cols)
	return nil
}
