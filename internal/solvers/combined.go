package solvers

import (
	"context"

	"tableseg/internal/csp"
	"tableseg/internal/phmm"
	"tableseg/internal/stage"
)

// Combined is the paper's combination method: trust the CSP only when
// the strict constraints hold; any inconsistency hands the page to the
// probabilistic model. Its Details carry the strict CSP result first
// and, when the fallback fired, the PHMM result after it.
type Combined struct {
	CSP  csp.SolveParams
	PHMM phmm.Params
	// Columns enables §6.3 CSP column assignment on the CSP path.
	Columns bool
}

// Name implements stage.Solver.
func (s *Combined) Name() string { return "combined" }

// Solve implements stage.Solver.
func (s *Combined) Solve(ctx context.Context, p *stage.Problem) (*stage.Assignment, error) {
	asg := newAssignment(len(p.Candidates))
	params := s.CSP
	params.NoRelax = true
	res, err := solveCSP(ctx, p, params, asg)
	if err != nil {
		return nil, err
	}
	if res.Status == csp.Solved {
		copy(asg.Records, res.Records)
		if err := assignColumns(ctx, s.Columns, p, asg, s.CSP.WSAT); err != nil {
			return nil, err
		}
		return asg, nil
	}
	if err := solvePHMM(ctx, p, s.PHMM, asg); err != nil {
		return nil, err
	}
	return asg, nil
}
