// Package solvers implements the stage.Solver interface over the
// repository's segmentation algorithms and registers them in the stage
// solver registry. It is the single seam joining the algorithm
// packages (internal/csp, internal/phmm) to the algorithm-agnostic
// stage graph: internal/stage never imports an algorithm, the
// algorithm packages never import the stages, and anything that wants
// a solver by name goes through stage.NewSolver.
//
// Registered solvers:
//
//	csp            the §4 constraint-satisfaction method (WSAT(OIP)
//	               local search with the §6.3 relaxation ladder)
//	probabilistic  the §5 factored-HMM method (EM + MAP decode)
//	combined       the §7 combination: CSP where the strict
//	               constraints hold, probabilistic otherwise
//	exact          complete DFS over the strict encoding with lazy
//	               consecutiveness repair (certifies UNSAT)
//	greedy         evidence baseline: first-fit monotone assignment
//	               to each extract's earliest usable candidate
//	uniform        layout baseline: equal consecutive runs, ignoring
//	               detail-page evidence entirely
package solvers

import (
	"fmt"

	"tableseg/internal/csp"
	"tableseg/internal/phmm"
	"tableseg/internal/stage"
)

// Config parameterizes the built-in solver factories. Every registered
// factory accepts nil (defaults), Config or *Config.
type Config struct {
	// CSP configures the constraint solvers (csp, combined, exact).
	CSP csp.SolveParams
	// PHMM configures the probabilistic model (probabilistic,
	// combined).
	PHMM phmm.Params
	// CSPColumns enables §6.3's CSP-based column extraction after a
	// successful record segmentation (csp, combined, exact).
	CSPColumns bool
}

func asConfig(cfg any) (Config, error) {
	switch c := cfg.(type) {
	case nil:
		return Config{}, nil
	case Config:
		return c, nil
	case *Config:
		if c == nil {
			return Config{}, nil
		}
		return *c, nil
	default:
		return Config{}, fmt.Errorf("solvers: config type %T (want solvers.Config)", cfg)
	}
}

func init() {
	register := func(name string, build func(Config) stage.Solver) {
		stage.RegisterSolver(name, func(cfg any) (stage.Solver, error) {
			c, err := asConfig(cfg)
			if err != nil {
				return nil, err
			}
			return build(c), nil
		})
	}
	register("csp", func(c Config) stage.Solver {
		return &CSP{Params: c.CSP, Columns: c.CSPColumns}
	})
	register("probabilistic", func(c Config) stage.Solver {
		return &PHMM{Params: c.PHMM}
	})
	register("combined", func(c Config) stage.Solver {
		return &Combined{CSP: c.CSP, PHMM: c.PHMM, Columns: c.CSPColumns}
	})
	register("exact", func(c Config) stage.Solver {
		return &Exact{Params: c.CSP, Columns: c.CSPColumns}
	})
	register("greedy", func(Config) stage.Solver { return Greedy{} })
	register("uniform", func(Config) stage.Solver { return Uniform{} })
}

// newAssignment returns an Assignment with n slots: records zeroed for
// the solver to fill, columns and confidence at their -1 "unavailable"
// defaults.
func newAssignment(n int) *stage.Assignment {
	asg := &stage.Assignment{
		Records:    make([]int, n),
		Columns:    make([]int, n),
		Confidence: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		asg.Columns[i] = -1
		asg.Confidence[i] = -1
	}
	return asg
}
