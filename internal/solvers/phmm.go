package solvers

import (
	"context"
	"fmt"

	"tableseg/internal/phmm"
	"tableseg/internal/stage"
)

// PHMM is the §5 probabilistic solver: a factored hidden Markov model
// fit with EM, decoded with Viterbi for the MAP segmentation, column
// labels and per-extract posterior confidence.
type PHMM struct {
	Params phmm.Params
}

// Name implements stage.Solver.
func (s *PHMM) Name() string { return "probabilistic" }

// Solve implements stage.Solver.
func (s *PHMM) Solve(ctx context.Context, p *stage.Problem) (*stage.Assignment, error) {
	asg := newAssignment(len(p.Candidates))
	if err := solvePHMM(ctx, p, s.Params, asg); err != nil {
		return nil, err
	}
	return asg, nil
}

// solvePHMM runs one PHMM segmentation solve, writing the records,
// columns, confidence and diagnostics into the assignment.
func solvePHMM(ctx context.Context, p *stage.Problem, params phmm.Params, asg *stage.Assignment) error {
	inst := phmm.Instance{
		NumRecords: p.NumRecords,
		Candidates: p.Candidates,
		TypeVecs:   p.TypeVecs,
	}
	res, err := phmm.SegmentContext(ctx, inst, params)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("solvers: probabilistic segmentation: %w", err)
	}
	asg.Counters.Add(stage.Counters{EMIters: res.Iters})
	asg.Details = append(asg.Details, res)
	copy(asg.Records, res.Records)
	copy(asg.Columns, res.Columns)
	copy(asg.Confidence, res.Confidence)
	return nil
}
