package solvers

import (
	"context"
	"fmt"

	"tableseg/internal/csp"
	"tableseg/internal/stage"
)

// Exact is a complete solver over the strict encoding: depth-first
// search with bounds propagation, plus the same lazy consecutiveness
// repair the local-search pipeline uses. Unlike WSAT it certifies
// unsatisfiability, so a Failed outcome is a proof, not a timeout; it
// never relaxes. Intended for validating the local-search solvers on
// small instances and for the UNSAT side of Table 2's "no solution"
// rows.
type Exact struct {
	Params csp.SolveParams
	// Columns enables §6.3 CSP column assignment after segmentation.
	Columns bool
}

// exactDefaultCutRounds mirrors the local-search pipeline's default
// bound on lazy consecutiveness repair.
const exactDefaultCutRounds = 5

// Name implements stage.Solver.
func (s *Exact) Name() string { return "exact" }

// Solve implements stage.Solver. It encodes strictly, solves exactly,
// and on a solution with contiguity holes adds the violated
// consecutiveness cuts and re-solves, up to MaxCutRounds times.
// Provable unsatisfiability marks the assignment Exhausted.
func (s *Exact) Solve(ctx context.Context, p *stage.Problem) (*stage.Assignment, error) {
	asg := newAssignment(len(p.Candidates))
	enc := csp.Encode(csp.SegmentInput{
		NumRecords:     p.NumRecords,
		Candidates:     p.Candidates,
		PositionGroups: p.PositionGroups,
	}, csp.Strict)
	maxRounds := s.Params.MaxCutRounds
	if maxRounds == 0 {
		maxRounds = exactDefaultCutRounds
	}
	var records []int
	for round := 0; ; round++ {
		assign, sat, err := csp.SolveExact(ctx, enc.Problem, csp.ExactParams{})
		if err != nil {
			return nil, fmt.Errorf("solvers: exact segmentation: %w", err)
		}
		if !sat {
			asg.Exhausted = true
			return asg, nil
		}
		records = enc.Decode(assign)
		cuts := enc.ConsecutivenessCuts(records)
		if len(cuts) == 0 || round >= maxRounds {
			break
		}
		for _, c := range cuts {
			enc.Problem.Add(c)
		}
		asg.Counters.Add(stage.Counters{CutRounds: 1})
	}
	copy(asg.Records, records)
	if err := assignColumns(ctx, s.Columns, p, asg, s.Params.WSAT); err != nil {
		return nil, err
	}
	return asg, nil
}
