package solvers

import (
	"context"

	"tableseg/internal/stage"
)

// Greedy is an evidence-only baseline: scan the extracts in stream
// order and assign each to the earliest candidate record that keeps
// the sequence monotone, or leave it unassigned when none remains. It
// honors the detail-page evidence but enforces none of the paper's
// uniqueness or position constraints — the gap between it and the CSP
// measures what the constraints buy.
type Greedy struct{}

// Name implements stage.Solver.
func (Greedy) Name() string { return "greedy" }

// Solve implements stage.Solver.
func (Greedy) Solve(ctx context.Context, p *stage.Problem) (*stage.Assignment, error) {
	asg := newAssignment(len(p.Candidates))
	cur := 0
	for i, cands := range p.Candidates {
		asg.Records[i] = -1
		for _, r := range cands {
			if r >= cur {
				asg.Records[i] = r
				cur = r
				break
			}
		}
	}
	return asg, nil
}

// Uniform is a layout-only baseline: split the analyzed extracts into
// K equal consecutive runs, ignoring the detail-page evidence
// entirely. It is the "records are about the same size" prior with
// nothing else — the floor any evidence-driven method must beat.
type Uniform struct{}

// Name implements stage.Solver.
func (Uniform) Name() string { return "uniform" }

// Solve implements stage.Solver.
func (Uniform) Solve(ctx context.Context, p *stage.Problem) (*stage.Assignment, error) {
	n := len(p.Candidates)
	asg := newAssignment(n)
	if p.NumRecords <= 0 {
		for i := range asg.Records {
			asg.Records[i] = -1
		}
		return asg, nil
	}
	per := (n + p.NumRecords - 1) / p.NumRecords // ceil(n/K)
	if per == 0 {
		per = 1
	}
	for i := 0; i < n; i++ {
		r := i / per
		if r >= p.NumRecords {
			r = p.NumRecords - 1
		}
		asg.Records[i] = r
	}
	return asg, nil
}
