package labels

import (
	"testing"

	"tableseg/internal/extract"
	"tableseg/internal/token"
)

func build(listHTML string, detailHTML []string) (obs []extract.Observation, analyzed []int, details [][]token.Token) {
	list := token.Tokenize(listHTML)
	for _, d := range detailHTML {
		details = append(details, token.Tokenize(d))
	}
	ex := extract.Split(list, 0, len(list))
	obs = extract.Observe(ex, details, nil)
	analyzed = extract.InformativeSubset(obs, len(details))
	return obs, analyzed, details
}

func TestMineCaptionedLabels(t *testing.T) {
	obs, analyzed, details := build(
		`<p>Ann Lee</p><p>12 Oak St</p><p>Bob Day</p><p>99 Elm Rd</p>`,
		[]string{
			`<table><tr><td>Name:</td><td>Ann Lee</td></tr><tr><td>Address:</td><td>12 Oak St</td></tr></table>`,
			`<table><tr><td>Name:</td><td>Bob Day</td></tr><tr><td>Address:</td><td>99 Elm Rd</td></tr></table>`,
		})
	records := []int{0, 0, 1, 1}
	columns := []int{0, 1, 0, 1}
	got := Mine(details, obs, analyzed, records, columns)
	if len(got) != 2 || got[0] != "Name" || got[1] != "Address" {
		t.Errorf("labels = %v, want [Name Address]", got)
	}
}

func TestMineMajorityVote(t *testing.T) {
	// One record's value also occurs elsewhere on its page under a
	// different caption; the majority from the other records must win.
	obs, analyzed, details := build(
		`<p>Alpha</p><p>Beta</p><p>Gamma</p>`,
		[]string{
			`<p>Status: Alpha</p><p>Seen: Alpha</p>`,
			`<p>Status: Beta</p>`,
			`<p>Status: Gamma</p>`,
		})
	records := []int{0, 1, 2}
	columns := []int{0, 0, 0}
	got := Mine(details, obs, analyzed, records, columns)
	if len(got) != 1 || got[0] != "Status" {
		t.Errorf("labels = %v, want [Status]", got)
	}
}

func TestMineNoColumns(t *testing.T) {
	obs, analyzed, details := build(`<p>X1</p>`, []string{`<p>X1</p>`})
	if got := Mine(details, obs, analyzed, []int{0}, []int{-1}); got != nil {
		t.Errorf("no columns should give nil, got %v", got)
	}
}

func TestMineUncaptionedColumn(t *testing.T) {
	obs, analyzed, details := build(
		`<p>Val1x</p>`,
		[]string{`<p>lowercase before Val1x</p>`},
	)
	got := Mine(details, obs, analyzed, []int{0}, []int{0})
	// "before" is lowercase and not caption-shaped: no label.
	if len(got) != 1 || got[0] != "" {
		t.Errorf("labels = %v, want one empty label", got)
	}
}

func TestCaptionBefore(t *testing.T) {
	page := token.Tokenize(`<tr><td>Owner:</td><td>John Smith</td></tr>`)
	// Find the position of "John".
	pos := -1
	for i, tk := range page {
		if tk.Text == "John" {
			pos = i
		}
	}
	lbl, ok := captionBefore(page, pos)
	if !ok || lbl != "Owner" {
		t.Errorf("caption = %q, %v", lbl, ok)
	}
	if _, ok := captionBefore(page, 0); ok {
		t.Error("caption at page start should fail")
	}
}

func TestMineMultiWordCaption(t *testing.T) {
	obs, analyzed, details := build(
		`<p>03/15/1964</p><p>07/22/1970</p>`,
		[]string{
			`<p>Birth Date: 03/15/1964</p>`,
			`<p>Birth Date: 07/22/1970</p>`,
		})
	got := Mine(details, obs, analyzed, []int{0, 1}, []int{0, 0})
	if len(got) != 1 || got[0] != "Birth Date" {
		t.Errorf("labels = %v, want [Birth Date]", got)
	}
}

func TestExtendCaptionStopsAtSeparator(t *testing.T) {
	page := token.Tokenize(`<td>Unrelated</td><td>Date: 01/02/2003</td>`)
	pos := -1
	for i, tk := range page {
		if tk.Text == "01/02/2003" {
			pos = i
		}
	}
	lbl, ok := captionBefore(page, pos)
	if !ok || lbl != "Date" {
		t.Errorf("caption = %q, %v (must not absorb the previous cell)", lbl, ok)
	}
}
