// Package labels derives human-readable column names for extracted
// tables. §3.4 notes that the automatically numbered column labels
// L1..Lk can be given "more semantically meaningful labels" using the
// redundancy of the site itself: detail pages typically caption each
// field ("Owner:", "Phone:"), so the visible word immediately preceding
// a value's occurrence on its own detail page is a strong label
// candidate. Mining takes a majority vote per column across all records.
package labels

import (
	"strings"

	"tableseg/internal/extract"
	"tableseg/internal/token"
)

// Mine returns one label per column (index = column number). details
// are the tokenized detail pages; obs/analyzed identify the extracts;
// records and columns give each analyzed extract's assignment. Columns
// whose votes produce no usable caption get "".
func Mine(details [][]token.Token, obs []extract.Observation, analyzed []int, records, columns []int) []string {
	numCols := 0
	for _, c := range columns {
		if c+1 > numCols {
			numCols = c + 1
		}
	}
	if numCols == 0 {
		return nil
	}
	votes := make([]map[string]int, numCols)
	for c := range votes {
		votes[c] = map[string]int{}
	}
	for ai, oi := range analyzed {
		r, c := records[ai], columns[ai]
		if r < 0 || c < 0 {
			continue
		}
		for _, occ := range obs[oi].Occurrences {
			if occ.Page != r {
				continue
			}
			if lbl, ok := captionBefore(details[r], occ.Pos); ok {
				votes[c][lbl]++
			}
		}
	}
	out := make([]string, numCols)
	for c := range votes {
		best, bestN := "", 0
		for lbl, n := range votes[c] {
			if n > bestN || (n == bestN && lbl < best) {
				best, bestN = lbl, n
			}
		}
		out[c] = best
	}
	return out
}

// captionBefore scans backward from the token before pos for the
// nearest visible word and returns a cleaned caption. Only
// caption-shaped text qualifies: a word ending in ':' (optionally
// preceded by further capitalized words of the same caption, as in
// "Birth Date:"), or a capitalized word immediately adjacent — anything
// else (a previous field's trailing value) is rejected rather than
// mis-voted.
func captionBefore(page []token.Token, pos int) (string, bool) {
	seps := 0
	for i := pos - 1; i >= 0 && seps < 6; i-- {
		t := page[i]
		if extract.IsSeparator(t) {
			seps++
			continue
		}
		w := t.Text
		if strings.HasSuffix(w, ":") {
			return extendCaption(page, i, strings.TrimSuffix(w, ":")), true
		}
		// A plain word directly before the value (no separator gap)
		// may still be a caption ("Phone 555-1212") if capitalized.
		if seps == 0 && t.Type.Has(token.Capitalized) {
			return w, true
		}
		return "", false
	}
	return "", false
}

// extendCaption prepends the capitalized words that run contiguously
// (no intervening separators) before the colon word: "Birth Date:" is
// one caption, not "Date".
func extendCaption(page []token.Token, colonIdx int, caption string) string {
	for i := colonIdx - 1; i >= 0 && colonIdx-i <= 3; i-- {
		t := page[i]
		if extract.IsSeparator(t) || !t.Type.Has(token.Capitalized) {
			break
		}
		caption = t.Text + " " + caption
	}
	return caption
}
