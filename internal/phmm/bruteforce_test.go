package phmm

import (
	"math"
	"math/rand"
	"testing"

	"tableseg/internal/token"
)

// bruteForce enumerates every valid (R, C) path of the lattice and
// computes the exact total likelihood, per-position posteriors and the
// best path, using the same potentials as the production code but via
// independent, direct enumeration. It is the ground truth for
// forwardBackward and viterbi on tiny instances.
type bfResult struct {
	total   float64
	gamma   [][]float64 // [i][r*C+c]
	bestLP  float64
	bestRec []int
	bestCol []int
}

func bruteForce(lt *lattice) *bfResult {
	m, n, K, C := lt.m, lt.n, lt.m.K, lt.m.C
	skip := m.params.SkipPenalty
	haz := make([]float64, C)
	for c := 0; c < C; c++ {
		haz[c] = m.hazard(c)
	}

	res := &bfResult{
		gamma:  make([][]float64, n),
		bestLP: math.Inf(-1),
	}
	for i := range res.gamma {
		res.gamma[i] = make([]float64, K*C)
	}

	recs := make([]int, n)
	cols := make([]int, n)
	var walk func(i int, w float64)
	walk = func(i int, w float64) {
		if w == 0 {
			return
		}
		if i == n {
			// Close the final record.
			w *= haz[cols[n-1]]
			if w == 0 {
				return
			}
			res.total += w
			for k := 0; k < n; k++ {
				res.gamma[k][recs[k]*C+cols[k]] += w
			}
			if lp := math.Log(w); lp > res.bestLP {
				res.bestLP = lp
				res.bestRec = append(res.bestRec[:0], recs...)
				res.bestCol = append(res.bestCol[:0], cols...)
			}
			return
		}
		if i == 0 {
			for r := 0; r < K; r++ {
				recs[0], cols[0] = r, 0
				walk(1, w*lt.startWeight(r)*lt.emis[0][r*C])
			}
			return
		}
		rPrev, cPrev := recs[i-1], cols[i-1]
		pen := lt.contPenalty[i]
		// Continue the record: stall or advance.
		stay := w * (1 - haz[cPrev]) * pen
		recs[i] = rPrev
		cols[i] = cPrev
		walk(i+1, stay*stallWeight*lt.emis[i][rPrev*C+cPrev])
		for c := cPrev + 1; c < C; c++ {
			cols[i] = c
			walk(i+1, stay*m.Trans[cPrev][c]*lt.emis[i][rPrev*C+c])
		}
		// Start a new record (skipping empty records geometrically).
		for r := rPrev + 1; r < K; r++ {
			skipW := 1 - skip
			for k := 0; k < r-rPrev-1; k++ {
				skipW *= skip
			}
			recs[i], cols[i] = r, 0
			walk(i+1, w*haz[cPrev]*skipW*lt.emis[i][r*C])
		}
	}
	walk(0, 1)

	if res.total > 0 {
		for i := range res.gamma {
			for k := range res.gamma[i] {
				res.gamma[i][k] /= res.total
			}
		}
	}
	return res
}

// tinyInstance builds a random small instance for enumeration.
func tinyInstance(rng *rand.Rand) Instance {
	n := 3 + rng.Intn(3) // 3..5 extracts
	k := 2 + rng.Intn(2) // 2..3 records
	var inst Instance
	inst.NumRecords = k
	pool := []token.Type{
		token.TypeOf("Name"),
		token.TypeOf("123"),
		token.TypeOf("lower"),
		token.TypeOf("CAPS"),
	}
	for i := 0; i < n; i++ {
		inst.TypeVecs = append(inst.TypeVecs, pool[rng.Intn(len(pool))].Vector())
		// Random candidate subsets (possibly empty).
		var cands []int
		for r := 0; r < k; r++ {
			if rng.Intn(2) == 0 {
				cands = append(cands, r)
			}
		}
		inst.Candidates = append(inst.Candidates, cands)
	}
	return inst
}

// TestForwardBackwardMatchesEnumeration verifies that the structured
// forward–backward pass computes exactly the posteriors of the
// enumerated path distribution.
func TestForwardBackwardMatchesEnumeration(t *testing.T) {
	rng := testRNG(17)
	for trial := 0; trial < 30; trial++ {
		inst := tinyInstance(rng)
		p := DefaultParams()
		p.Seed = int64(trial)
		cols := deriveColumns(inst)
		m := NewModel(inst.NumRecords, cols, p)
		lt := newLattice(m, inst)

		bf := bruteForce(lt)
		if bf.total == 0 {
			continue // fully blocked lattice; nothing to compare
		}
		post := lt.forwardBackward()

		if wantLL := math.Log(bf.total); math.Abs(post.loglik-wantLL) > 1e-6*math.Abs(wantLL)+1e-9 {
			t.Fatalf("trial %d: loglik %.12f, enumeration %.12f", trial, post.loglik, wantLL)
		}
		for i := range bf.gamma {
			for k := range bf.gamma[i] {
				if math.Abs(post.gamma[i][k]-bf.gamma[i][k]) > 1e-8 {
					t.Fatalf("trial %d: gamma[%d][%d] = %.12f, enumeration %.12f",
						trial, i, k, post.gamma[i][k], bf.gamma[i][k])
				}
			}
		}
	}
}

// TestViterbiMatchesEnumeration verifies that Viterbi finds the exact
// maximum-probability path.
func TestViterbiMatchesEnumeration(t *testing.T) {
	rng := testRNG(23)
	for trial := 0; trial < 30; trial++ {
		inst := tinyInstance(rng)
		p := DefaultParams()
		p.Seed = int64(trial)
		cols := deriveColumns(inst)
		m := NewModel(inst.NumRecords, cols, p)
		lt := newLattice(m, inst)

		bf := bruteForce(lt)
		if math.IsInf(bf.bestLP, -1) {
			continue
		}
		recs, colsGot, lp := lt.viterbi()
		if math.Abs(lp-bf.bestLP) > 1e-6*math.Abs(bf.bestLP)+1e-9 {
			t.Fatalf("trial %d: viterbi score %.12f, enumeration %.12f\n viterbi %v/%v\n brute   %v/%v",
				trial, lp, bf.bestLP, recs, colsGot, bf.bestRec, bf.bestCol)
		}
		// The decoded path must score what viterbi claims (path
		// identity can differ only under exact ties).
		if pathScore(lt, recs, colsGot)-lp > 1e-9 || lp-pathScore(lt, recs, colsGot) > 1e-6*math.Abs(lp)+1e-9 {
			t.Fatalf("trial %d: decoded path scores %.12f, viterbi claims %.12f", trial, pathScore(lt, recs, colsGot), lp)
		}
	}
}

// pathScore recomputes the log-probability of a concrete (R, C) path.
func pathScore(lt *lattice, recs, cols []int) float64 {
	m := lt.m
	C := m.C
	skip := m.params.SkipPenalty
	haz := func(c int) float64 { return m.hazard(c) }
	logv := func(x float64) float64 {
		if x <= 0 {
			return math.Inf(-1)
		}
		return math.Log(x)
	}
	lp := logv(lt.startWeight(recs[0])) + logv(lt.emis[0][recs[0]*C+cols[0]])
	if cols[0] != 0 {
		return math.Inf(-1)
	}
	for i := 1; i < len(recs); i++ {
		rp, cp, r, c := recs[i-1], cols[i-1], recs[i], cols[i]
		switch {
		case r == rp && c == cp:
			lp += logv(1-haz(cp)) + logv(lt.contPenalty[i]) + logv(stallWeight)
		case r == rp && c > cp:
			lp += logv(1-haz(cp)) + logv(lt.contPenalty[i]) + logv(m.Trans[cp][c])
		case r > rp && c == 0:
			w := 1 - skip
			for k := 0; k < r-rp-1; k++ {
				w *= skip
			}
			lp += logv(haz(cp)) + logv(w)
		default:
			return math.Inf(-1)
		}
		lp += logv(lt.emis[i][r*C+c])
	}
	lp += logv(haz(cols[len(cols)-1]))
	return lp
}
