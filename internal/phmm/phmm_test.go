package phmm

import (
	"math"
	"testing"
	"testing/quick"

	"tableseg/internal/token"
)

// typeVec builds a T_i vector from a token type.
func typeVec(ty token.Type) [token.NumTypes]bool { return ty.Vector() }

// superpagesInstance mirrors the paper's Table 1 example: 11 extracts,
// 3 records, with name and phone values shared between records 1 and 2.
func superpagesInstance() Instance {
	name := typeVec(token.TypeOf("John") | token.TypeOf("Smith"))
	addr := typeVec(token.TypeOf("221") | token.TypeOf("Washington"))
	city := typeVec(token.TypeOf("New") | token.TypeOf("Holland"))
	phone := typeVec(token.TypeOf("(740)") | token.TypeOf("335-5555"))
	return Instance{
		NumRecords: 3,
		TypeVecs: [][token.NumTypes]bool{
			name, addr, city, phone,
			name, addr, city, phone,
			name, city, phone,
		},
		Candidates: [][]int{
			{0, 1}, {0}, {0}, {0, 1},
			{0, 1}, {1}, {1}, {0, 1},
			{2}, {2}, {2},
		},
	}
}

var wantSuperpages = []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2}

func TestSegmentSuperpages(t *testing.T) {
	res, err := segment(superpagesInstance(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range wantSuperpages {
		if res.Records[i] != want {
			t.Fatalf("E%d → r%d, want r%d (full: %v)", i+1, res.Records[i]+1, want+1, res.Records)
		}
	}
	// Record starts get column 0 (first column never missing, §5.1).
	for _, start := range []int{0, 4, 8} {
		if res.Columns[start] != 0 {
			t.Errorf("extract %d column = %d, want 0", start, res.Columns[start])
		}
	}
	// Columns strictly increase within a record.
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i] == res.Records[i-1] && res.Columns[i] <= res.Columns[i-1] {
			t.Errorf("columns not increasing within record at %d: %v / %v", i, res.Records, res.Columns)
		}
	}
}

func TestSegmentRecordsMonotone(t *testing.T) {
	res, err := segment(superpagesInstance(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i] < res.Records[i-1] {
			t.Fatalf("record numbers decreased at %d: %v", i, res.Records)
		}
	}
}

func TestSegmentToleratesDirtyData(t *testing.T) {
	// The Michigan scenario that breaks the CSP: one extract's D points
	// at an unrelated record. The soft model must still produce the
	// contextually correct segmentation.
	inst := superpagesInstance()
	inst.Candidates[9] = []int{0} // "Findlay, OH" polluted: seen only on r1's page
	res, err := segment(inst, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The surrounding context (E9 and E11 pin r3, consecutive) should
	// pull E10 into record 3 despite the bad evidence.
	if res.Records[8] != 2 || res.Records[10] != 2 {
		t.Fatalf("anchor extracts moved: %v", res.Records)
	}
	if res.Records[9] != 2 {
		t.Errorf("polluted extract → r%d, want r3 (soft evidence should tolerate): %v", res.Records[9]+1, res.Records)
	}
}

func TestEpsilonGovernsDirtyDataCost(t *testing.T) {
	// Even with near-hard evidence the sequential structure recovers
	// the right segmentation here (the polluted extract cannot jump
	// backward past monotone record numbers) — but the model must pay
	// for the inconsistency: the data likelihood under near-hard
	// evidence is far lower than under the soft default. This is the
	// quantitative face of the robustness the paper credits the
	// probabilistic approach with (§6.3).
	inst := superpagesInstance()
	inst.Candidates[9] = []int{0}

	soft, err := segment(inst, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Epsilon = 1e-12
	hard, err := segment(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if hard.Records[9] != 2 || soft.Records[9] != 2 {
		t.Fatalf("both variants should still recover E10→r3: soft %v hard %v", soft.Records, hard.Records)
	}
	if hard.LogLik >= soft.LogLik {
		t.Errorf("near-hard evidence loglik %.3f not below soft %.3f", hard.LogLik, soft.LogLik)
	}
}

func TestForcedStarts(t *testing.T) {
	cands := [][]int{{0}, {0, 1}, {1}, {2}, nil, {2}}
	got := forcedStarts(cands)
	want := []bool{false, false, false, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("forcedStarts[%d] = %v, want %v (cands=%v)", i, got[i], want[i], cands)
		}
	}
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 3}, []int{3, 5}, true},
		{[]int{1, 3}, []int{2, 4}, false},
		{nil, []int{1}, false},
		{[]int{0}, []int{0}, true},
	}
	for _, c := range cases {
		if got := intersects(c.a, c.b); got != c.want {
			t.Errorf("intersects(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestEvidence(t *testing.T) {
	if evidence([]int{1, 3}, 3, 0.01) != 1.0 {
		t.Error("member should get weight 1")
	}
	if evidence([]int{1, 3}, 2, 0.01) != 0.01 {
		t.Error("non-member should get epsilon")
	}
	if evidence(nil, 5, 0.01) != 1.0 {
		t.Error("empty D is uniform")
	}
}

func TestGammaNormalized(t *testing.T) {
	inst := superpagesInstance()
	p := DefaultParams()
	m := NewModel(inst.NumRecords, deriveColumns(inst), p)
	lt := newLattice(m, inst)
	post := lt.forwardBackward()
	for i, g := range post.gamma {
		s := 0.0
		for _, v := range g {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("gamma[%d] sums to %g", i, s)
		}
	}
	if math.IsNaN(post.loglik) || math.IsInf(post.loglik, 1) {
		t.Errorf("loglik = %v", post.loglik)
	}
}

func TestEMLikelihoodNondecreasing(t *testing.T) {
	inst := superpagesInstance()
	p := DefaultParams()
	m := NewModel(inst.NumRecords, deriveColumns(inst), p)
	prev := math.Inf(-1)
	for iter := 0; iter < 10; iter++ {
		lt := newLattice(m, inst)
		st, ll := m.estep(lt)
		if ll < prev-1e-6 {
			t.Fatalf("iteration %d: loglik decreased %.9f → %.9f", iter, prev, ll)
		}
		prev = ll
		m.mstep(st)
	}
}

func TestMStepDistributionsValid(t *testing.T) {
	inst := superpagesInstance()
	p := DefaultParams()
	m := NewModel(inst.NumRecords, deriveColumns(inst), p)
	lt := newLattice(m, inst)
	st, _ := m.estep(lt)
	m.mstep(st)
	for c := 0; c < m.C; c++ {
		for j := 0; j < token.NumTypes; j++ {
			if m.Theta[c][j] <= 0 || m.Theta[c][j] >= 1 {
				t.Errorf("Theta[%d][%d] = %g out of (0,1)", c, j, m.Theta[c][j])
			}
		}
		if c+1 < m.C {
			s := 0.0
			for c2 := c + 1; c2 < m.C; c2++ {
				s += m.Trans[c][c2]
				if m.Trans[c][c2] < 0 {
					t.Errorf("Trans[%d][%d] negative", c, c2)
				}
			}
			if math.Abs(s-1) > 1e-9 {
				t.Errorf("Trans[%d] sums to %g", c, s)
			}
		}
	}
	s := 0.0
	for _, v := range m.Pi {
		s += v
		if v < 0 {
			t.Error("negative Pi entry")
		}
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("Pi sums to %g", s)
	}
}

func TestPeriodModelLearnsLength(t *testing.T) {
	// 5 clean records of exactly 4 fields each: π must concentrate on
	// ending at column 3 (0-based).
	var inst Instance
	inst.NumRecords = 5
	fieldTypes := [][token.NumTypes]bool{
		typeVec(token.TypeOf("Name") | token.TypeOf("Here")),
		typeVec(token.TypeOf("123")),
		typeVec(token.TypeOf("City")),
		typeVec(token.TypeOf("555-1212")),
	}
	for r := 0; r < 5; r++ {
		for f := 0; f < 4; f++ {
			inst.TypeVecs = append(inst.TypeVecs, fieldTypes[f])
			inst.Candidates = append(inst.Candidates, []int{r})
		}
	}
	res, err := segment(inst, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	pi := res.Model.Pi
	best := 0
	for c := range pi {
		if pi[c] > pi[best] {
			best = c
		}
	}
	if best != 3 {
		t.Errorf("period mode at column %d, want 3 (π = %v)", best, pi)
	}
	for i := range inst.TypeVecs {
		if res.Records[i] != i/4 {
			t.Errorf("extract %d → record %d, want %d", i, res.Records[i], i/4)
		}
	}
}

func TestFigure2VariantStillSegments(t *testing.T) {
	p := DefaultParams()
	p.PeriodModel = false
	res, err := segment(superpagesInstance(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range wantSuperpages {
		if res.Records[i] != want {
			t.Fatalf("figure-2 variant: E%d → r%d, want r%d", i+1, res.Records[i]+1, want+1)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := validate(Instance{NumRecords: 0}); err == nil {
		t.Error("zero records must fail")
	}
	if err := validate(Instance{NumRecords: 1, TypeVecs: make([][token.NumTypes]bool, 2), Candidates: make([][]int, 1)}); err == nil {
		t.Error("length mismatch must fail")
	}
	if err := validate(Instance{NumRecords: 1, TypeVecs: make([][token.NumTypes]bool, 1), Candidates: [][]int{{5}}}); err == nil {
		t.Error("out-of-range record must fail")
	}
	if err := validate(Instance{NumRecords: 3, TypeVecs: make([][token.NumTypes]bool, 1), Candidates: [][]int{{2, 1}}}); err == nil {
		t.Error("unsorted candidates must fail")
	}
	if err := validate(superpagesInstance()); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestSegmentEmptyInstance(t *testing.T) {
	res, err := segment(Instance{NumRecords: 2}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Errorf("empty instance: %v", res.Records)
	}
}

func TestDeriveColumns(t *testing.T) {
	inst := superpagesInstance()
	if got := deriveColumns(inst); got != 6 {
		// Records 0 and 1 each observe 6 analyzed extracts.
		t.Errorf("deriveColumns = %d, want 6", got)
	}
	if got := deriveColumns(Instance{NumRecords: 1, Candidates: [][]int{{0}}}); got != 2 {
		t.Errorf("minimum clamp: %d", got)
	}
}

// Property: on randomly generated clean instances, the MAP segmentation
// recovers the true record boundaries.
func TestSegmentCleanRandomInstances(t *testing.T) {
	rng := testRNG(9)
	for trial := 0; trial < 15; trial++ {
		numRecords := 2 + rng.Intn(5)
		fields := 2 + rng.Intn(3)
		var inst Instance
		inst.NumRecords = numRecords
		var want []int
		baseTypes := []token.Type{
			token.TypeOf("Alpha") | token.TypeOf("Beta"),
			token.TypeOf("123"),
			token.TypeOf("lower"),
			token.TypeOf("CAPS"),
			token.TypeOf("Mixed1x"),
		}
		for r := 0; r < numRecords; r++ {
			for f := 0; f < fields; f++ {
				inst.TypeVecs = append(inst.TypeVecs, baseTypes[f%len(baseTypes)].Vector())
				inst.Candidates = append(inst.Candidates, []int{r})
				want = append(want, r)
			}
		}
		res, err := segment(inst, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if res.Records[i] != want[i] {
				t.Errorf("trial %d (K=%d F=%d): extract %d → %d, want %d", trial, numRecords, fields, i, res.Records[i], want[i])
				break
			}
		}
	}
}

// Property: the Viterbi path never violates structural invariants
// (monotone records, increasing columns, column 0 at starts) for any
// epsilon and skip penalty.
func TestViterbiStructuralInvariants(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := testRNG(seedRaw)
		inst := superpagesInstance()
		p := DefaultParams()
		p.Epsilon = 1e-4 + rng.Float64()*0.1
		p.SkipPenalty = 0.01 + rng.Float64()*0.3
		p.Seed = seedRaw
		res, err := segment(inst, p)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Records); i++ {
			if res.Records[i] < res.Records[i-1] {
				return false
			}
			if res.Records[i] == res.Records[i-1] && res.Columns[i] <= res.Columns[i-1] {
				return false
			}
			if res.Records[i] > res.Records[i-1] && res.Columns[i] != 0 {
				return false
			}
		}
		return res.Columns[0] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConfidenceCalibration(t *testing.T) {
	res, err := segment(superpagesInstance(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Confidence) != 11 {
		t.Fatalf("%d confidences", len(res.Confidence))
	}
	for i, c := range res.Confidence {
		if c < 0 || c > 1+1e-9 {
			t.Errorf("confidence[%d] = %f out of [0,1]", i, c)
		}
	}
	// Unambiguous extracts (single-candidate D) should be held with
	// high confidence.
	for _, i := range []int{1, 2, 8, 9, 10} { // E2, E3, E9, E10, E11
		if res.Confidence[i] < 0.8 {
			t.Errorf("unambiguous extract %d confidence %f", i, res.Confidence[i])
		}
	}
}

func TestConfidenceIsMAPPosterior(t *testing.T) {
	// Confidence must be exactly the fitted model's posterior mass at
	// the decoded MAP state. (Note: EM sharpens posteriors toward its
	// own fixed point, so even structurally ambiguous extracts end up
	// confident after fitting — the confidence is honest about the
	// fitted model, not about pre-fit ambiguity.)
	inst := superpagesInstance()
	params := DefaultParams()
	res, err := segment(inst, params)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute posteriors under the returned model.
	lt := newLattice(res.Model, inst)
	post := lt.forwardBackward()
	for i := range res.Records {
		want := post.gamma[i][res.Records[i]*res.Model.C+res.Columns[i]]
		if math.Abs(res.Confidence[i]-want) > 1e-12 {
			t.Errorf("confidence[%d] = %.15f, posterior %.15f", i, res.Confidence[i], want)
		}
	}
}

func TestParamsClamping(t *testing.T) {
	p := Params{Epsilon: -5, SkipPenalty: 3, MaxIter: -1, Tol: -1, MaxColumns: -2}.withDefaults()
	if p.Epsilon != 1e-3 || p.SkipPenalty != 0.95 || p.MaxIter != 30 || p.Tol != 1e-6 || p.MaxColumns != 0 {
		t.Errorf("clamped params: %+v", p)
	}
	big := Params{Epsilon: 7}.withDefaults()
	if big.Epsilon != 1 {
		t.Errorf("epsilon > 1 not clamped: %f", big.Epsilon)
	}
	// Degenerate params must not crash inference.
	res, err := segment(superpagesInstance(), Params{Epsilon: -1, SkipPenalty: 99})
	if err != nil || len(res.Records) != 11 {
		t.Errorf("degenerate params: %v, %v", res, err)
	}
}

func TestSegmentDegenerateShapes(t *testing.T) {
	one := typeVec(token.TypeOf("Solo"))
	// Single extract, single record.
	res, err := segment(Instance{
		NumRecords: 1,
		TypeVecs:   [][token.NumTypes]bool{one},
		Candidates: [][]int{{0}},
	}, DefaultParams())
	if err != nil || len(res.Records) != 1 || res.Records[0] != 0 || res.Columns[0] != 0 {
		t.Errorf("single extract: %+v, %v", res, err)
	}
	// One record, many extracts (longer than the column cap): the
	// stall transition must keep the lattice connected.
	var long Instance
	long.NumRecords = 1
	for i := 0; i < 20; i++ {
		long.TypeVecs = append(long.TypeVecs, one)
		long.Candidates = append(long.Candidates, []int{0})
	}
	res, err = segment(long, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Records {
		if r != 0 {
			t.Fatalf("extract %d → record %d on a 1-record instance", i, r)
		}
	}
	// Many records, one extract each, all with empty evidence.
	var blind Instance
	blind.NumRecords = 3
	for i := 0; i < 3; i++ {
		blind.TypeVecs = append(blind.TypeVecs, one)
		blind.Candidates = append(blind.Candidates, nil)
	}
	if _, err := segment(blind, DefaultParams()); err != nil {
		t.Errorf("evidence-free instance: %v", err)
	}
}
