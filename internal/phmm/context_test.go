package phmm

import (
	"context"
	"errors"
	"testing"

	"tableseg/internal/token"
)

// contextInstance is a small learnable instance for the cancellation
// tests.
func contextInstance() Instance {
	types := []token.Type{
		token.TypeOf("John") | token.TypeOf("Smith"),
		token.TypeOf("221") | token.TypeOf("Washington"),
	}
	var inst Instance
	inst.NumRecords = 5
	for r := 0; r < 5; r++ {
		for f := range types {
			inst.TypeVecs = append(inst.TypeVecs, types[f].Vector())
			inst.Candidates = append(inst.Candidates, []int{r})
		}
	}
	return inst
}

// TestFitContextCancelled verifies EM aborts at an iteration boundary
// with context.Canceled.
func TestFitContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inst := contextInstance()
	m := NewModel(inst.NumRecords, 2, DefaultParams())
	if _, iters, err := m.FitContext(ctx, inst); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	} else if iters != 0 {
		t.Fatalf("ran %d iterations under a cancelled context", iters)
	}
}

// TestSegmentContextCancelled verifies the full probabilistic solve
// surfaces ctx.Err().
func TestSegmentContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SegmentContext(ctx, contextInstance(), DefaultParams()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSegmentContextUncancelled verifies the context path reproduces
// the legacy entry point exactly.
func TestSegmentContextUncancelled(t *testing.T) {
	inst := contextInstance()
	want, err := segment(inst, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := SegmentContext(context.Background(), inst, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got.Iters != want.Iters || got.LogLik != want.LogLik {
		t.Errorf("context solve diverged: iters %d loglik %v vs iters %d loglik %v",
			got.Iters, got.LogLik, want.Iters, want.LogLik)
	}
	for i := range want.Records {
		if got.Records[i] != want.Records[i] || got.Columns[i] != want.Columns[i] {
			t.Fatalf("extract %d: (%d,%d) vs (%d,%d)", i,
				got.Records[i], got.Columns[i], want.Records[i], want.Columns[i])
		}
	}
}
