package phmm

import "context"

// segment is the test shim over the context-first entry point:
// production code must thread a caller's context (enforced by
// tableseglint), but table-driven tests have none to thread.
func segment(inst Instance, params Params) (*Result, error) {
	return SegmentContext(context.Background(), inst, params)
}
