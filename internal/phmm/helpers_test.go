package phmm

import (
	"context"
	"math/rand"
)

// segment is the test shim over the context-first entry point:
// production code must thread a caller's context (enforced by
// tableseglint), but table-driven tests have none to thread.
func segment(inst Instance, params Params) (*Result, error) {
	return SegmentContext(context.Background(), inst, params)
}

// testRNG is the single seeded-generator constructor for this
// package's tests, so every test RNG visibly derives from an explicit
// seed (the same provenance discipline rngflow enforces on the
// production packages).
func testRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
