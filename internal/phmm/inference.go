package phmm

import "math"

// stallWeight is a tiny probability of remaining in the same column for
// one step. The paper's model advances columns strictly, but degenerate
// inputs (whole-page fallback with very long runs) can otherwise exhaust
// the column set and disconnect the lattice; the stall keeps every
// position reachable at negligible probability.
const stallWeight = 1e-6

// lattice precomputes per-position emission tables and bootstrap masks
// for one instance under a model.
type lattice struct {
	m      *Model
	inst   Instance
	n      int
	forced []bool
	// contPenalty[i] multiplies within-record continuation into
	// position i: 1 normally, a small factor when the bootstrap says
	// S_i = true (D_{i-1} ∩ D_i = ∅). Softness keeps dirty data (whose
	// spurious disjointness can demand more record starts than records
	// exist) from making the whole lattice unreachable.
	contPenalty []float64
	// emis[i][r*C+c] = w_i(r) · P(T_i | C=c)
	emis [][]float64
}

func newLattice(m *Model, inst Instance) *lattice {
	n := len(inst.TypeVecs)
	lt := &lattice{m: m, inst: inst, n: n, forced: forcedStarts(inst.Candidates)}
	lt.contPenalty = make([]float64, n)
	soft := m.params.Epsilon
	if soft < 1e-12 {
		soft = 1e-12
	}
	for i := range lt.contPenalty {
		if lt.forced[i] {
			lt.contPenalty[i] = soft
		} else {
			lt.contPenalty[i] = 1
		}
	}
	lt.emis = make([][]float64, n)
	for i := 0; i < n; i++ {
		lt.emis[i] = make([]float64, m.K*m.C)
		typeP := make([]float64, m.C)
		for c := 0; c < m.C; c++ {
			typeP[c] = m.emitType(inst.TypeVecs[i], c)
		}
		for r := 0; r < m.K; r++ {
			w := evidence(inst.Candidates[i], r, m.params.Epsilon)
			for c := 0; c < m.C; c++ {
				lt.emis[i][r*m.C+c] = w * typeP[c]
			}
		}
	}
	return lt
}

// startWeight is the prior for the first observed record being r:
// geometric in the number of skipped leading records.
func (lt *lattice) startWeight(r int) float64 {
	skip := lt.m.params.SkipPenalty
	w := 1 - skip
	for k := 0; k < r; k++ {
		w *= skip
	}
	return w
}

// posteriors is the E-step output.
type posteriors struct {
	// gamma[i][r*C+c] = P(R_i=r, C_i=c | observations).
	gamma [][]float64
	// xiCont[c][c'] = expected count of within-record column
	// transitions c→c'.
	xiCont [][]float64
	// endC[c] = expected count of records ending at column c.
	endC []float64
	// loglik is the scaled-forward log-likelihood.
	loglik float64
}

// forwardBackward runs the structured forward–backward pass of §5.2.3.
// The record-skip transitions are aggregated with prefix/suffix
// recurrences so the pass costs O(n·K·C²) rather than O(n·(K·C)²).
func (lt *lattice) forwardBackward() *posteriors {
	m, n, K, C := lt.m, lt.n, lt.m.K, lt.m.C
	S := K * C
	skip := m.params.SkipPenalty

	haz := make([]float64, C)
	for c := 0; c < C; c++ {
		haz[c] = m.hazard(c)
	}

	alpha := make([][]float64, n)
	scale := make([]float64, n)

	// Forward.
	for i := 0; i < n; i++ {
		alpha[i] = make([]float64, S)
		if i == 0 {
			for r := 0; r < K; r++ {
				alpha[0][r*C] = lt.startWeight(r) * lt.emis[0][r*C]
			}
		} else {
			// Record-end mass per record at i-1.
			E := make([]float64, K)
			for r := 0; r < K; r++ {
				for c := 0; c < C; c++ {
					E[r] += alpha[i-1][r*C+c] * haz[c]
				}
			}
			// Aggregate new-record mass M(r) = Σ_{r0<r} E(r0)·skipW(r−r0−1).
			M := make([]float64, K)
			for r := 1; r < K; r++ {
				M[r] = skip*M[r-1] + (1-skip)*E[r-1]
			}
			pen := lt.contPenalty[i]
			for r := 0; r < K; r++ {
				// New record lands in column 0.
				alpha[i][r*C] = M[r] * lt.emis[i][r*C]
				// Within-record column advances (penalized when the
				// bootstrap demands a record start here).
				for cPrev := 0; cPrev < C; cPrev++ {
					a := alpha[i-1][r*C+cPrev]
					if zeroProb(a) {
						continue
					}
					stay := a * (1 - haz[cPrev]) * pen
					alpha[i][r*C+cPrev] += stay * stallWeight * lt.emis[i][r*C+cPrev]
					for c := cPrev + 1; c < C; c++ {
						tr := m.Trans[cPrev][c]
						if zeroProb(tr) {
							continue
						}
						alpha[i][r*C+c] += stay * tr * lt.emis[i][r*C+c]
					}
				}
			}
		}
		s := 0.0
		for _, v := range alpha[i] {
			s += v
		}
		if s <= 0 || math.IsNaN(s) {
			// Degenerate evidence (all-zero row): inject uniform mass
			// so the pass completes; the caller sees the -Inf-free
			// loglik degrade instead of a crash.
			for k := range alpha[i] {
				alpha[i][k] = 1.0 / float64(S)
			}
			s = 1e-300
		}
		scale[i] = s
		inv := 1.0 / s
		for k := range alpha[i] {
			alpha[i][k] *= inv
		}
	}

	// Backward, with the final-record closing factor h(c) at i = n−1.
	beta := make([][]float64, n)
	beta[n-1] = make([]float64, S)
	for r := 0; r < K; r++ {
		for c := 0; c < C; c++ {
			beta[n-1][r*C+c] = haz[c]
		}
	}
	for i := n - 2; i >= 0; i-- {
		beta[i] = make([]float64, S)
		next := i + 1
		// eb(r) = emis_{next}(r,0)·beta_{next}(r,0); suffix recurrence
		// B(r) = Σ_{r'>r} skipW(r'−r−1)·eb(r').
		B := make([]float64, K)
		for r := K - 2; r >= 0; r-- {
			eb := lt.emis[next][(r+1)*C] * beta[next][(r+1)*C]
			B[r] = skip*B[r+1] + (1-skip)*eb
		}
		inv := 1.0 / scale[next]
		pen := lt.contPenalty[next]
		for r := 0; r < K; r++ {
			for c := 0; c < C; c++ {
				v := haz[c] * B[r]
				cont := stallWeight * lt.emis[next][r*C+c] * beta[next][r*C+c]
				for c2 := c + 1; c2 < C; c2++ {
					tr := m.Trans[c][c2]
					if zeroProb(tr) {
						continue
					}
					cont += tr * lt.emis[next][r*C+c2] * beta[next][r*C+c2]
				}
				v += (1 - haz[c]) * pen * cont
				beta[i][r*C+c] = v * inv
			}
		}
	}

	post := &posteriors{
		gamma:  make([][]float64, n),
		xiCont: make([][]float64, C),
		endC:   make([]float64, C),
	}
	for c := 0; c < C; c++ {
		post.xiCont[c] = make([]float64, C)
	}
	for i := 0; i < n; i++ {
		post.loglik += math.Log(scale[i])
		g := make([]float64, S)
		z := 0.0
		for k := 0; k < S; k++ {
			g[k] = alpha[i][k] * beta[i][k]
			z += g[k]
		}
		if z > 0 {
			inv := 1.0 / z
			for k := range g {
				g[k] *= inv
			}
		}
		post.gamma[i] = g
	}
	// Closing mass contributes to the likelihood.
	closing := 0.0
	for k := 0; k < S; k++ {
		closing += alpha[n-1][k] * beta[n-1][k]
	}
	if closing > 0 {
		post.loglik += math.Log(closing)
	}

	// Transition posteriors (column advances and record ends).
	for i := 0; i < n-1; i++ {
		next := i + 1
		B := make([]float64, K)
		for r := K - 2; r >= 0; r-- {
			eb := lt.emis[next][(r+1)*C] * beta[next][(r+1)*C]
			B[r] = skip*B[r+1] + (1-skip)*eb
		}
		// Per-position normalizer: total transition mass.
		type cell struct {
			c1, c2 int
			v      float64
		}
		var contCells []cell
		endMass := make([]float64, C)
		z := 0.0
		pen := lt.contPenalty[next]
		for r := 0; r < K; r++ {
			for c := 0; c < C; c++ {
				a := alpha[i][r*C+c]
				if zeroProb(a) {
					continue
				}
				e := a * haz[c] * B[r] / scale[next]
				endMass[c] += e
				z += e
				stay := a * (1 - haz[c]) * pen / scale[next]
				for c2 := c + 1; c2 < C; c2++ {
					tr := m.Trans[c][c2]
					if zeroProb(tr) {
						continue
					}
					v := stay * tr * lt.emis[next][r*C+c2] * beta[next][r*C+c2]
					if v > 0 {
						contCells = append(contCells, cell{c, c2, v})
						z += v
					}
				}
			}
		}
		if z <= 0 {
			continue
		}
		inv := 1.0 / z
		for _, cc := range contCells {
			post.xiCont[cc.c1][cc.c2] += cc.v * inv
		}
		for c := 0; c < C; c++ {
			post.endC[c] += endMass[c] * inv
		}
	}
	// Final records end where the chain closes.
	for r := 0; r < K; r++ {
		for c := 0; c < C; c++ {
			post.endC[c] += post.gamma[n-1][r*C+c]
		}
	}
	return post
}

// viterbi computes the MAP (R, C) assignment (arg max P(R,C|T,D)).
func (lt *lattice) viterbi() (records, columns []int, logProb float64) {
	m, n, K, C := lt.m, lt.n, lt.m.K, lt.m.C
	S := K * C
	skip := m.params.SkipPenalty
	haz := make([]float64, C)
	for c := 0; c < C; c++ {
		haz[c] = m.hazard(c)
	}
	logv := func(x float64) float64 {
		if x <= 0 {
			return math.Inf(-1)
		}
		return math.Log(x)
	}

	delta := make([][]float64, n)
	back := make([][]int, n)
	for i := range delta {
		delta[i] = make([]float64, S)
		back[i] = make([]int, S)
		for k := range delta[i] {
			delta[i][k] = math.Inf(-1)
			back[i][k] = -1
		}
	}
	for r := 0; r < K; r++ {
		delta[0][r*C] = logv(lt.startWeight(r)) + logv(lt.emis[0][r*C])
	}
	logSkip, logStay := logv(skip), logv(1-skip)
	// endBest/endFrom: per record, the best record-closing score at the
	// previous position; M/MFrom: the max-plus prefix aggregation of
	// "start a new record at r" (mirrors the forward pass's linear-time
	// skip recurrence, keeping Viterbi O(n·K·C²)).
	endBest := make([]float64, K)
	endFrom := make([]int, K)
	M := make([]float64, K)
	MFrom := make([]int, K)
	for i := 1; i < n; i++ {
		for r0 := 0; r0 < K; r0++ {
			endBest[r0], endFrom[r0] = math.Inf(-1), -1
			for c0 := 0; c0 < C; c0++ {
				if v := delta[i-1][r0*C+c0] + logv(haz[c0]); v > endBest[r0] {
					endBest[r0], endFrom[r0] = v, r0*C+c0
				}
			}
		}
		M[0], MFrom[0] = math.Inf(-1), -1
		for r := 1; r < K; r++ {
			M[r], MFrom[r] = M[r-1]+logSkip, MFrom[r-1]
			if v := endBest[r-1] + logStay; v > M[r] {
				M[r], MFrom[r] = v, endFrom[r-1]
			}
		}
		for r := 0; r < K; r++ {
			// New record from any earlier record's end.
			if MFrom[r] >= 0 {
				delta[i][r*C] = M[r] + logv(lt.emis[i][r*C])
				back[i][r*C] = MFrom[r]
			}
			// Within-record advance (columns strictly increase, so
			// c ≥ 1 here and the cell starts at −Inf), penalized at
			// bootstrap-forced starts.
			penLog := logv(lt.contPenalty[i])
			for c := 0; c < C; c++ {
				emisLog := logv(lt.emis[i][r*C+c])
				bestV, bestFrom := delta[i][r*C+c], back[i][r*C+c]
				// Stall move (same column, tiny weight).
				if v := delta[i-1][r*C+c] + logv(1-haz[c]) + logv(stallWeight) + penLog + emisLog; v > bestV {
					bestV, bestFrom = v, r*C+c
				}
				for c0 := 0; c0 < c; c0++ {
					tr := m.Trans[c0][c]
					if zeroProb(tr) {
						continue
					}
					v := delta[i-1][r*C+c0] + logv(1-haz[c0]) + logv(tr) + penLog + emisLog
					if v > bestV {
						bestV, bestFrom = v, r*C+c0
					}
				}
				delta[i][r*C+c] = bestV
				back[i][r*C+c] = bestFrom
			}
		}
	}
	// Close the final record.
	bestEnd, bestK := math.Inf(-1), 0
	for r := 0; r < K; r++ {
		for c := 0; c < C; c++ {
			v := delta[n-1][r*C+c] + logv(haz[c])
			if v > bestEnd {
				bestEnd, bestK = v, r*C+c
			}
		}
	}
	records = make([]int, n)
	columns = make([]int, n)
	k := bestK
	for i := n - 1; i >= 0; i-- {
		records[i] = k / C
		columns[i] = k % C
		k = back[i][k]
	}
	return records, columns, bestEnd
}
