package phmm

import (
	"context"
	"math"

	"tableseg/internal/token"
)

// emStats accumulates the expected sufficient statistics of one E-step.
type emStats struct {
	// typeTrue[c][j] / colMass[c]: Bernoulli counts for Theta.
	typeTrue [][]float64
	colMass  []float64
	xiCont   [][]float64
	endC     []float64
}

// estep runs forward–backward and converts posteriors into sufficient
// statistics.
func (m *Model) estep(lt *lattice) (*emStats, float64) {
	post := lt.forwardBackward()
	st := &emStats{
		typeTrue: make([][]float64, m.C),
		colMass:  make([]float64, m.C),
		xiCont:   post.xiCont,
		endC:     post.endC,
	}
	for c := 0; c < m.C; c++ {
		st.typeTrue[c] = make([]float64, token.NumTypes)
	}
	for i, g := range post.gamma {
		tv := lt.inst.TypeVecs[i]
		for r := 0; r < m.K; r++ {
			for c := 0; c < m.C; c++ {
				w := g[r*m.C+c]
				if zeroProb(w) {
					continue
				}
				st.colMass[c] += w
				for j := 0; j < token.NumTypes; j++ {
					if tv[j] {
						st.typeTrue[c][j] += w
					}
				}
			}
		}
	}
	return st, post.loglik
}

// mstep re-estimates the parameters from the statistics (§5.2.3 steps
// 1–5: period, column transitions, emissions).
func (m *Model) mstep(st *emStats) {
	const (
		thetaPrior = 0.5  // Beta(½,½)-style smoothing on each type bit
		transPrior = 0.05 // Dirichlet smoothing on column advances
		piPrior    = 0.1  // Dirichlet smoothing on the period model
	)
	for c := 0; c < m.C; c++ {
		den := st.colMass[c] + 2*thetaPrior
		if zeroProb(den) {
			continue // unreachable while thetaPrior > 0; guards the division
		}
		for j := 0; j < token.NumTypes; j++ {
			m.Theta[c][j] = (st.typeTrue[c][j] + thetaPrior) / den
		}
	}
	for c := 0; c < m.C; c++ {
		total := 0.0
		for c2 := c + 1; c2 < m.C; c2++ {
			total += st.xiCont[c][c2] + transPrior
		}
		if total <= 0 {
			continue
		}
		for c2 := c + 1; c2 < m.C; c2++ {
			m.Trans[c][c2] = (st.xiCont[c][c2] + transPrior) / total
		}
	}
	if m.params.PeriodModel {
		total := 0.0
		for c := 0; c < m.C; c++ {
			total += st.endC[c] + piPrior
		}
		if zeroProb(total) {
			return // C == 0; nothing to normalize, and the division would be 0/0
		}
		for c := 0; c < m.C; c++ {
			m.Pi[c] = (st.endC[c] + piPrior) / total
		}
	}
}

// FitContext runs EM to convergence (or MaxIter) and returns the
// final log-likelihood and the iteration count. Cancellation is
// checked once per EM iteration, so an uncancelled run performs a
// deterministic iteration sequence while a cancelled one returns
// ctx.Err() within one iteration.
func (m *Model) FitContext(ctx context.Context, inst Instance) (loglik float64, iters int, err error) {
	prev := math.Inf(-1)
	for iters = 1; iters <= m.params.MaxIter; iters++ {
		if err := ctx.Err(); err != nil {
			return loglik, iters - 1, err
		}
		lt := newLattice(m, inst)
		st, ll := m.estep(lt)
		m.mstep(st)
		loglik = ll
		if !math.IsInf(prev, -1) {
			denom := math.Abs(prev)
			if denom < 1 {
				denom = 1
			}
			if math.Abs(ll-prev)/denom < m.params.Tol {
				break
			}
		}
		prev = ll
	}
	if iters > m.params.MaxIter {
		iters = m.params.MaxIter // loop exhausted the bound without converging
	}
	return loglik, iters, nil
}

// Result is the output of Segment: the MAP record segmentation and the
// column extraction of §3.4.
type Result struct {
	// Records[i] is the MAP record number R_i (0-based) of analyzed
	// extract i.
	Records []int
	// Columns[i] is the MAP column label C_i (0-based, L_1 = 0).
	Columns []int
	// LogLik is the training log-likelihood at convergence.
	LogLik float64
	// MAPLogProb is the Viterbi path score.
	MAPLogProb float64
	// Confidence[i] is the posterior probability P(R_i, C_i | T, D) of
	// extract i's MAP assignment — a calibrated per-extract confidence
	// in [0,1].
	Confidence []float64
	// Iters is the number of EM iterations performed.
	Iters int
	// Model exposes the learned parameters (period distribution,
	// emission and transition tables) for inspection.
	Model *Model
}

// SegmentContext learns a model for the instance with EM and returns
// the MAP segmentation — the probabilistic pipeline of §5 end to end.
// Cancellation aborts the EM loop at an iteration boundary and is
// re-checked before the final decode, returning ctx.Err().
func SegmentContext(ctx context.Context, inst Instance, params Params) (*Result, error) {
	if err := validate(inst); err != nil {
		return nil, err
	}
	params = params.withDefaults()
	if len(inst.TypeVecs) == 0 {
		return &Result{Model: NewModel(inst.NumRecords, 2, params)}, nil
	}
	cols := params.MaxColumns
	if cols == 0 {
		cols = deriveColumns(inst)
	}
	m := NewModel(inst.NumRecords, cols, params)
	ll, iters, err := m.FitContext(ctx, inst)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lt := newLattice(m, inst)
	records, columns, mapLP := lt.viterbi()
	post := lt.forwardBackward()
	confidence := make([]float64, len(records))
	for i := range records {
		confidence[i] = post.gamma[i][records[i]*m.C+columns[i]]
	}
	return &Result{
		Records:    records,
		Columns:    columns,
		LogLik:     ll,
		MAPLogProb: mapLP,
		Confidence: confidence,
		Iters:      iters,
		Model:      m,
	}, nil
}
