package phmm

// zeroProb reports whether a nonnegative probability mass p carries no
// weight. Probabilities in this package are products and sums of
// nonnegative terms, so "no mass" is p <= 0 rather than an exact
// floating-point equality (which tableseglint's floateq analyzer
// forbids: == on floats asserts two computations took the same
// instruction path, not a mathematical statement).
func zeroProb(p float64) bool { return p <= 0 }
