// Package phmm implements the probabilistic record-segmentation model of
// §5: a factored hidden Markov model over hidden record numbers R_i,
// column labels C_i and record-start flags S_i, with observed syntactic
// token-type vectors T_i and detail-page sets D_i. Parameters are learned
// unsupervised with EM (a structured forward–backward variant), using
// the detail-page observations to bootstrap the record posteriors and an
// explicit record-period model π (Figure 3) to structure the inference.
// Segmentation is the MAP assignment of (R, C) computed by Viterbi
// decoding.
package phmm

import (
	"errors"
	"fmt"

	"tableseg/internal/token"
)

// Instance is one record-segmentation problem: the analyzed extracts of
// a list page in stream order, each with its 8-bit syntactic type vector
// T_i and its detail-page candidate set D_i.
type Instance struct {
	// NumRecords is K, the number of detail pages.
	NumRecords int
	// TypeVecs[i] is T_i.
	TypeVecs [][token.NumTypes]bool
	// Candidates[i] is D_i (sorted 0-based record indices). An empty
	// set means the extract carries no detail-page evidence; such
	// extracts should normally be filtered out before building the
	// instance, but the model tolerates them (uniform R evidence).
	Candidates [][]int
}

// Params configures learning and inference.
type Params struct {
	// MaxColumns bounds the column label set L_1..L_k; 0 derives the
	// bound from the data (the paper: "the largest number of extracts
	// found on a detail page").
	MaxColumns int
	// Epsilon is the soft-evidence weight for assigning an extract to
	// a record outside its D_i. Zero reproduces the CSP's hard
	// semantics (and its brittleness); the small default tolerates the
	// data inconsistencies of §6.3. Default 1e-3.
	Epsilon float64
	// SkipPenalty is the geometric penalty for records with no
	// analyzed extracts (record numbers may skip). Default 0.05.
	SkipPenalty float64
	// MaxIter bounds EM iterations. Default 30.
	MaxIter int
	// Tol is the relative log-likelihood convergence tolerance.
	// Default 1e-6.
	Tol float64
	// PeriodModel enables the record-period model π of Figure 3; when
	// false the model falls back to a flat hazard (Figure 2).
	PeriodModel bool
	// Seed controls the deterministic symmetry-breaking jitter applied
	// to the initial emission parameters.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Epsilon <= 0 {
		p.Epsilon = 1e-3
	}
	if p.Epsilon > 1 {
		p.Epsilon = 1
	}
	if p.SkipPenalty <= 0 {
		p.SkipPenalty = 0.05
	}
	if p.SkipPenalty > 0.95 {
		p.SkipPenalty = 0.95
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 30
	}
	if p.Tol <= 0 {
		p.Tol = 1e-6
	}
	if p.MaxColumns < 0 {
		p.MaxColumns = 0
	}
	return p
}

// DefaultParams returns the configuration used throughout the paper
// reproduction (period model on, soft evidence).
func DefaultParams() Params {
	return Params{PeriodModel: true}.withDefaults()
}

// Model holds the learned parameters.
type Model struct {
	K int // records
	C int // columns

	// Theta[c][j] = P(T_j = true | C = c): independent Bernoulli per
	// syntactic type bit (the factored observation model).
	Theta [][]float64
	// Trans[c][c'] = P(C_{i} = c' | C_{i-1} = c, same record), c' > c.
	Trans [][]float64
	// Pi[c] = P(record's last column = c): the period model π in
	// last-column form. Hazard h(c) = Pi[c] / Σ_{c'≥c} Pi[c'].
	Pi []float64

	params Params
}

// NewModel initializes a model per §5.2.1: uniform type probabilities
// (with deterministic jitter to break EM symmetry), a forward-biased
// column-transition matrix, and a uniform (or flat-hazard) period model.
func NewModel(k, c int, params Params) *Model {
	m := &Model{K: k, C: c, params: params}
	m.Theta = make([][]float64, c)
	jitter := params.Seed
	for ci := 0; ci < c; ci++ {
		m.Theta[ci] = make([]float64, token.NumTypes)
		for j := 0; j < token.NumTypes; j++ {
			// The paper initializes P(T_j|C) = 1/8; a tiny column-
			// dependent perturbation lets EM specialize columns.
			jitter = jitter*6364136223846793005 + 1442695040888963407
			delta := float64((jitter>>33)%7-3) * 0.004
			m.Theta[ci][j] = 1.0/float64(token.NumTypes) + delta
			if m.Theta[ci][j] < 0.01 {
				m.Theta[ci][j] = 0.01
			}
		}
	}
	m.Trans = make([][]float64, c)
	for ci := 0; ci < c; ci++ {
		m.Trans[ci] = make([]float64, c)
		// Geometric preference for the immediate next column; skips
		// (missing fields) decay.
		total := 0.0
		for cj := ci + 1; cj < c; cj++ {
			w := 1.0
			for s := ci + 2; s <= cj; s++ {
				w *= 0.3
			}
			m.Trans[ci][cj] = w
			total += w
		}
		for cj := ci + 1; cj < c; cj++ {
			m.Trans[ci][cj] /= maxf(total, 1e-12)
		}
	}
	m.Pi = make([]float64, c)
	for ci := range m.Pi {
		m.Pi[ci] = 1.0 / float64(c)
	}
	return m
}

// hazard returns P(record ends | current column c).
func (m *Model) hazard(c int) float64 {
	if !m.params.PeriodModel {
		// Figure 2 variant: a flat, structure-free continuation model.
		return 1.0 / float64(m.C)
	}
	num := m.Pi[c]
	den := 0.0
	for ci := c; ci < m.C; ci++ {
		den += m.Pi[ci]
	}
	if den < 1e-12 {
		return 1.0
	}
	h := num / den
	// Keep the chain mixing: never fully absorb or fully forbid.
	if h < 1e-4 {
		h = 1e-4
	}
	if h > 1-1e-4 {
		h = 1 - 1e-4
	}
	return h
}

// emitType returns P(T_i | C = c) under the factored Bernoulli model.
func (m *Model) emitType(tv [token.NumTypes]bool, c int) float64 {
	p := 1.0
	for j := 0; j < token.NumTypes; j++ {
		th := m.Theta[c][j]
		if tv[j] {
			p *= th
		} else {
			p *= 1 - th
		}
	}
	return p
}

// evidence returns the detail-page factor w_i(r): 1 when r ∈ D_i,
// Epsilon otherwise (§5.2.1's bootstrap, softened for robustness). An
// empty D_i gives uniform evidence.
func evidence(cands []int, r int, eps float64) float64 {
	if len(cands) == 0 {
		return 1.0
	}
	for _, d := range cands {
		if d == r {
			return 1.0
		}
		if d > r {
			break
		}
	}
	return eps
}

// forcedStarts computes the bootstrap start flags of §5.2.1: S_i is
// certainly true when D_{i-1} ∩ D_i = ∅ (both non-empty).
func forcedStarts(cands [][]int) []bool {
	out := make([]bool, len(cands))
	for i := 1; i < len(cands); i++ {
		a, b := cands[i-1], cands[i]
		if len(a) == 0 || len(b) == 0 {
			continue
		}
		out[i] = !intersects(a, b)
	}
	return out
}

func intersects(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// deriveColumns implements the paper's bound on the column label count:
// the largest number of analyzed extracts observed on any single detail
// page, clamped to a practical range.
func deriveColumns(inst Instance) int {
	perPage := make([]int, inst.NumRecords)
	for _, cands := range inst.Candidates {
		for _, r := range cands {
			if r >= 0 && r < inst.NumRecords {
				perPage[r]++
			}
		}
	}
	best := 0
	for _, n := range perPage {
		if n > best {
			best = n
		}
	}
	if best < 2 {
		best = 2
	}
	if best > 12 {
		best = 12
	}
	return best
}

// validate sanity-checks an instance.
func validate(inst Instance) error {
	if inst.NumRecords <= 0 {
		return errors.New("phmm: instance has no records")
	}
	if len(inst.TypeVecs) != len(inst.Candidates) {
		return fmt.Errorf("phmm: %d type vectors but %d candidate sets", len(inst.TypeVecs), len(inst.Candidates))
	}
	for i, cands := range inst.Candidates {
		for k, r := range cands {
			if r < 0 || r >= inst.NumRecords {
				return fmt.Errorf("phmm: extract %d references record %d of %d", i, r, inst.NumRecords)
			}
			if k > 0 && cands[k-1] >= r {
				return fmt.Errorf("phmm: extract %d candidate set not sorted: %v", i, cands)
			}
		}
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
