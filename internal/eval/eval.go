// Package eval scores automatic record segmentations against generator
// ground truth using the paper's §6.2 protocol: each truth record is
// judged correctly segmented (Cor), incorrectly segmented (InCor) or
// unsegmented (FN), each predicted record matching no truth record is a
// non-record (FP), and precision/recall/F are computed as
//
//	P = Cor/(Cor+InCor+FP)   R = Cor/(Cor+FN)   F = 2PR/(P+R)
package eval

import (
	"fmt"

	"tableseg/internal/core"
	"tableseg/internal/sitegen"
)

// Counts are the §6.2 per-page (or aggregated) outcome counts.
type Counts struct {
	Cor, InCor, FN, FP int
}

// Add returns the element-wise sum.
func (c Counts) Add(o Counts) Counts {
	return Counts{c.Cor + o.Cor, c.InCor + o.InCor, c.FN + o.FN, c.FP + o.FP}
}

// Total returns the number of truth records covered by the counts.
func (c Counts) Total() int { return c.Cor + c.InCor + c.FN }

// Precision per §6.2.
func (c Counts) Precision() float64 {
	den := c.Cor + c.InCor + c.FP
	if den == 0 {
		return 0
	}
	return float64(c.Cor) / float64(den)
}

// Recall per §6.2.
func (c Counts) Recall() float64 {
	den := c.Cor + c.FN
	if den == 0 {
		return 0
	}
	return float64(c.Cor) / float64(den)
}

// F is the harmonic mean of precision and recall.
func (c Counts) F() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (c Counts) String() string {
	return fmt.Sprintf("Cor=%d InCor=%d FN=%d FP=%d (P=%.2f R=%.2f F=%.2f)",
		c.Cor, c.InCor, c.FN, c.FP, c.Precision(), c.Recall(), c.F())
}

// Score judges a segmentation against the ground-truth spans of the
// list page it was computed from.
//
// Every extract of every predicted record is located in the truth spans
// by its byte offset; extracts outside all spans (page boilerplate,
// sponsored junk) are ignorable padding. A truth record is Cor when
// exactly one predicted record touches it and that predicted record
// touches no other truth record; InCor when touched otherwise; FN when
// untouched. A predicted record touching no truth record at all is an
// FP (non-record).
func Score(seg *core.Segmentation, truth []sitegen.TruthRecord) Counts {
	// predsOf[t] = set of predicted-record indices touching truth t;
	// truthsOf[q] = set of truth indices touched by predicted q.
	predsOf := make([]map[int]bool, len(truth))
	for t := range predsOf {
		predsOf[t] = map[int]bool{}
	}
	truthsOf := make([]map[int]bool, len(seg.Records))
	for q := range truthsOf {
		truthsOf[q] = map[int]bool{}
	}
	for q := range seg.Records {
		for _, ex := range seg.Records[q].Extracts {
			t := locate(truth, ex.ByteStart)
			if t < 0 {
				continue
			}
			predsOf[t][q] = true
			truthsOf[q][t] = true
		}
	}

	var c Counts
	for t := range truth {
		switch len(predsOf[t]) {
		case 0:
			c.FN++
		case 1:
			q := firstKey(predsOf[t])
			if len(truthsOf[q]) == 1 {
				c.Cor++
			} else {
				c.InCor++
			}
		default:
			c.InCor++
		}
	}
	for q := range seg.Records {
		if len(truthsOf[q]) == 0 {
			c.FP++
		}
	}
	return c
}

// locate returns the index of the truth span containing byte offset
// off, or -1. Spans are disjoint and ordered, so a linear scan with
// early exit suffices (record counts are small).
func locate(truth []sitegen.TruthRecord, off int) int {
	for t := range truth {
		if off >= truth[t].Start && off < truth[t].End {
			return t
		}
		if truth[t].Start > off {
			break
		}
	}
	return -1
}

func firstKey(m map[int]bool) int {
	for k := range m {
		return k
	}
	return -1
}
