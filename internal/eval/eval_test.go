package eval

import (
	"math"
	"testing"

	"tableseg/internal/core"
	"tableseg/internal/extract"
	"tableseg/internal/sitegen"
)

func TestCountsMetrics(t *testing.T) {
	// The paper's overall probabilistic numbers: P=0.74, R=0.99 come
	// from the formulas P=Cor/(Cor+InCor+FP), R=Cor/(Cor+FN).
	c := Counts{Cor: 74, InCor: 25, FN: 1, FP: 1}
	if p := c.Precision(); math.Abs(p-0.74) > 1e-9 {
		t.Errorf("precision = %f", p)
	}
	if r := c.Recall(); math.Abs(r-74.0/75.0) > 1e-9 {
		t.Errorf("recall = %f", r)
	}
	f := c.F()
	p, r := c.Precision(), c.Recall()
	if math.Abs(f-2*p*r/(p+r)) > 1e-12 {
		t.Errorf("F = %f", f)
	}
	if c.Total() != 100 {
		t.Errorf("total = %d", c.Total())
	}
}

func TestCountsZero(t *testing.T) {
	var c Counts
	if c.Precision() != 0 || c.Recall() != 0 || c.F() != 0 {
		t.Error("zero counts must give zero metrics")
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{1, 2, 3, 4}
	b := Counts{10, 20, 30, 40}
	s := a.Add(b)
	if s != (Counts{11, 22, 33, 44}) {
		t.Errorf("Add = %+v", s)
	}
}

// seg builds a fake segmentation: each record is a list of byte offsets
// (one synthetic extract per offset).
func seg(records ...[]int) *core.Segmentation {
	s := &core.Segmentation{}
	for ri, offs := range records {
		rec := core.Record{Index: ri}
		for _, off := range offs {
			rec.Extracts = append(rec.Extracts, extract.Extract{ByteStart: off, ByteEnd: off + 1})
			rec.Columns = append(rec.Columns, -1)
			rec.Analyzed = append(rec.Analyzed, true)
		}
		s.Records = append(s.Records, rec)
	}
	return s
}

func truth(spans ...[2]int) []sitegen.TruthRecord {
	out := make([]sitegen.TruthRecord, len(spans))
	for i, sp := range spans {
		out[i] = sitegen.TruthRecord{Start: sp[0], End: sp[1], Values: []string{"x"}}
	}
	return out
}

func TestScorePerfect(t *testing.T) {
	tr := truth([2]int{0, 10}, [2]int{10, 20}, [2]int{20, 30})
	s := seg([]int{1, 5}, []int{12, 18}, []int{22})
	c := Score(s, tr)
	if c != (Counts{Cor: 3}) {
		t.Errorf("perfect segmentation scored %+v", c)
	}
}

func TestScoreMergedRecords(t *testing.T) {
	tr := truth([2]int{0, 10}, [2]int{10, 20})
	// One predicted record spans both truth records.
	s := seg([]int{1, 12})
	c := Score(s, tr)
	if c != (Counts{InCor: 2}) {
		t.Errorf("merged records scored %+v", c)
	}
}

func TestScoreSplitRecord(t *testing.T) {
	tr := truth([2]int{0, 10})
	// Two predicted records inside one truth record.
	s := seg([]int{1}, []int{5})
	c := Score(s, tr)
	if c != (Counts{InCor: 1}) {
		t.Errorf("split record scored %+v", c)
	}
}

func TestScoreFNAndFP(t *testing.T) {
	tr := truth([2]int{0, 10}, [2]int{10, 20})
	// Truth record 2 untouched; a junk-only predicted record at 100.
	s := seg([]int{1}, []int{100})
	c := Score(s, tr)
	if c != (Counts{Cor: 1, FN: 1, FP: 1}) {
		t.Errorf("scored %+v", c)
	}
}

func TestScoreEmptySegmentation(t *testing.T) {
	tr := truth([2]int{0, 10}, [2]int{10, 20})
	c := Score(&core.Segmentation{}, tr)
	if c != (Counts{FN: 2}) {
		t.Errorf("empty segmentation scored %+v", c)
	}
}

func TestScorePaddingIgnored(t *testing.T) {
	tr := truth([2]int{10, 20})
	// The predicted record has one extract in the span and one in page
	// boilerplate (outside all spans) — still correct.
	s := seg([]int{12, 500})
	c := Score(s, tr)
	if c != (Counts{Cor: 1}) {
		t.Errorf("padding changed the verdict: %+v", c)
	}
}

func TestCountsString(t *testing.T) {
	got := Counts{Cor: 1, InCor: 1, FN: 0, FP: 0}.String()
	if got == "" {
		t.Error("empty String()")
	}
}

func TestLocate(t *testing.T) {
	tr := truth([2]int{10, 20}, [2]int{30, 40})
	cases := map[int]int{5: -1, 10: 0, 19: 0, 20: -1, 35: 1, 40: -1, 100: -1}
	for off, want := range cases {
		if got := locate(tr, off); got != want {
			t.Errorf("locate(%d) = %d, want %d", off, got, want)
		}
	}
}
