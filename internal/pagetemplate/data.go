package pagetemplate

// TemplateData is the serializable projection of a Template: every
// field an induced template carries, exported so a codec outside this
// package can persist and reconstruct templates without reflection.
type TemplateData struct {
	// Skeleton is the ordered list of invariant token texts.
	Skeleton []string
	// Positions holds, per sample page, the position of each skeleton
	// token in that page's token stream (parallel to Skeleton).
	Positions [][]int
	// NumPages is the number of sample pages the template was induced
	// from.
	NumPages int
}

// Data exports the template's full state. The returned slices alias
// the template's internals and must be treated as read-only — codecs
// copy them into an encoded form rather than mutate them.
func (t *Template) Data() TemplateData {
	return TemplateData{Skeleton: t.Skeleton, Positions: t.positions, NumPages: t.numPages}
}

// FromData reconstructs a Template from its serialized projection.
// The data's slices are retained by reference, so a decoder must hand
// over freshly allocated slices.
func FromData(d TemplateData) *Template {
	return &Template{Skeleton: d.Skeleton, positions: d.Positions, numPages: d.NumPages}
}
