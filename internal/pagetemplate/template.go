// Package pagetemplate implements the page-template finding step of §3.1.
//
// Dynamically generated pages from one site share an invariant skeleton —
// the page template — interleaved with variable content ("slots"). Given
// two or more sample pages the inducer recovers the skeleton as the
// longest sequence of tokens that (a) occur exactly once on every page
// and (b) appear in the same relative order on every page. Anything
// between consecutive skeleton tokens is a slot. Table rows and table
// data occur more than once per page or vary across pages, so — exactly
// as the paper argues — the whole table lands inside a single slot, and
// the table slot is identified with the heuristic "the slot that contains
// the largest number of text tokens".
//
// The inducer also reproduces the paper's documented failure mode: when
// list entries are numbered ("1.", "2.", ...), the numbers occur exactly
// once per page and become skeleton tokens, shattering the table across
// many small slots. Quality reports how concentrated the page's text is
// in the best slot, so callers can fall back to using the whole page
// (the paper's workaround for Amazon, BNBooks, Minnesota, Yahoo and
// Superpages).
package pagetemplate

import (
	"fmt"

	"tableseg/internal/token"
)

// Template is an induced page template: an ordered token skeleton shared
// by all sample pages.
type Template struct {
	// Skeleton is the ordered list of invariant token texts.
	Skeleton []string
	// pages holds, for each sample page, the position of each skeleton
	// token in that page's token stream.
	positions [][]int
	numPages  int
}

// NumPages returns the number of sample pages the template was induced from.
func (t *Template) NumPages() int { return t.numPages }

// TextSkeletonLen returns the number of skeleton tokens that are text
// (not HTML tags). Structural tags (<html>, <body>, <h1>) are invariant
// on almost any pair of pages, so a template whose skeleton is tags-only
// carries no real layout information; callers treat a near-zero text
// skeleton as template-finding failure.
func (t *Template) TextSkeletonLen() int {
	n := 0
	for _, s := range t.Skeleton {
		if len(s) == 0 || s[0] != '<' {
			n++
		}
	}
	return n
}

// Slot is a maximal run of non-template tokens on a particular page,
// identified by its half-open token index range [Start, End).
type Slot struct {
	Start, End int
}

// Len returns the number of tokens in the slot.
func (s Slot) Len() int { return s.End - s.Start }

func (s Slot) String() string { return fmt.Sprintf("[%d,%d)", s.Start, s.End) }

// Induce derives a page template from two or more tokenized sample
// pages. With fewer than two pages there is nothing to compare and the
// returned template has an empty skeleton (every token is slot content).
func Induce(pages [][]token.Token) *Template {
	t := &Template{numPages: len(pages)}
	if len(pages) < 2 {
		return t
	}

	// A token text is a skeleton candidate iff it occurs exactly once on
	// every page. Count occurrences per page.
	counts := make([]map[string]int, len(pages))
	firstPos := make([]map[string]int, len(pages))
	for p, toks := range pages {
		counts[p] = make(map[string]int, len(toks))
		firstPos[p] = make(map[string]int, len(toks))
		for i, tk := range toks {
			counts[p][tk.Text]++
			if counts[p][tk.Text] == 1 {
				firstPos[p][tk.Text] = i
			}
		}
	}

	type cand struct {
		text string
		pos  []int // position on each page
	}
	var cands []cand
	for i, tk := range pages[0] {
		if counts[0][tk.Text] != 1 {
			continue
		}
		c := cand{text: tk.Text, pos: make([]int, len(pages))}
		c.pos[0] = i
		ok := true
		for p := 1; p < len(pages); p++ {
			if counts[p][tk.Text] != 1 {
				ok = false
				break
			}
			c.pos[p] = firstPos[p][tk.Text]
		}
		if ok && consistentContext(pages, c.pos) {
			cands = append(cands, c)
		}
	}

	// Candidates are already sorted by position on page 0. Keep the
	// longest subsequence whose positions are strictly increasing on
	// every page simultaneously (longest chain in the product order).
	posOnly := make([][]int, len(cands))
	for i := range cands {
		posOnly[i] = cands[i].pos
	}
	keep := longestChain(posOnly)
	t.Skeleton = make([]string, len(keep))
	t.positions = make([][]int, len(pages))
	for p := range t.positions {
		t.positions[p] = make([]int, len(keep))
	}
	for k, ci := range keep {
		t.Skeleton[k] = cands[ci].text
		for p := range pages {
			t.positions[p][k] = cands[ci].pos[p]
		}
	}
	return t
}

// consistentContext reports whether the token at the given per-page
// positions has identical neighbors on every page: the token before it
// and the token after it must each have the same text across all pages.
// Genuine template tokens sit in invariant runs of markup and
// boilerplate, so their contexts agree; a data value that happens to
// occur exactly once per page (the same city on two result pages) has
// differing neighbors and is pruned. Without this check such
// coincidences become skeleton tokens and shatter the table slot.
func consistentContext(pages [][]token.Token, pos []int) bool {
	var prev, next string
	for p, toks := range pages {
		i := pos[p]
		pv, nx := "^", "$"
		if i > 0 {
			pv = toks[i-1].Text
		}
		if i+1 < len(toks) {
			nx = toks[i+1].Text
		}
		if p == 0 {
			prev, next = pv, nx
			continue
		}
		if pv != prev || nx != next {
			return false
		}
	}
	return true
}

// longestChain returns indices into pos forming the longest subsequence
// that is strictly increasing in every page's position, in order.
// Quadratic DP; candidate counts are small (template tokens are the rare
// unique ones).
func longestChain(pos [][]int) []int {
	n := len(pos)
	if n == 0 {
		return nil
	}
	best := make([]int, n) // chain length ending at i
	prev := make([]int, n)
	argBest := 0
	for i := 0; i < n; i++ {
		best[i], prev[i] = 1, -1
		for j := 0; j < i; j++ {
			if best[j]+1 > best[i] && dominates(pos[j], pos[i]) {
				best[i] = best[j] + 1
				prev[i] = j
			}
		}
		if best[i] > best[argBest] {
			argBest = i
		}
	}
	var out []int
	for i := argBest; i >= 0; i = prev[i] {
		out = append(out, i)
	}
	// Reverse in place.
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return out
}

// dominates reports whether a < b componentwise (strictly).
func dominates(a, b []int) bool {
	for p := range a {
		if a[p] >= b[p] {
			return false
		}
	}
	return true
}

// SlotsOn computes the slots of a page that was one of the induction
// samples, identified by its index in the original pages slice.
func (t *Template) SlotsOn(pageIdx, pageLen int) []Slot {
	if pageIdx < 0 || pageIdx >= len(t.positions) {
		return []Slot{{0, pageLen}}
	}
	return slotsFromSkeleton(t.positions[pageIdx], pageLen)
}

// Match locates the skeleton on a new page (not necessarily an induction
// sample) and returns the slots it induces there. Skeleton tokens that do
// not occur on the page (in order) are skipped; matching is greedy
// left-to-right, which is exact when the page really was generated from
// the same template.
func (t *Template) Match(page []token.Token) []Slot {
	if len(t.Skeleton) == 0 {
		return []Slot{{0, len(page)}}
	}
	var hits []int
	i := 0
	for _, want := range t.Skeleton {
		for i < len(page) && page[i].Text != want {
			i++
		}
		if i >= len(page) {
			break
		}
		hits = append(hits, i)
		i++
	}
	return slotsFromSkeleton(hits, len(page))
}

func slotsFromSkeleton(hits []int, pageLen int) []Slot {
	var slots []Slot
	prevEnd := 0
	for _, h := range hits {
		if h > prevEnd {
			slots = append(slots, Slot{prevEnd, h})
		}
		prevEnd = h + 1
	}
	if prevEnd < pageLen {
		slots = append(slots, Slot{prevEnd, pageLen})
	}
	return slots
}

// TableSlot applies the paper's heuristic: the table lives in the slot
// with the largest number of text (non-HTML) tokens. It returns the
// chosen slot and the fraction of the page's slot-resident text tokens
// that fall inside it — a quality measure in [0,1]. A low fraction means
// the template shattered the table across slots (numbered entries) and
// the caller should fall back to the whole page.
func TableSlot(slots []Slot, page []token.Token) (Slot, float64) {
	bestIdx, bestCount, total := -1, 0, 0
	for si, s := range slots {
		n := 0
		for i := s.Start; i < s.End && i < len(page); i++ {
			if !page[i].IsHTML() {
				n++
			}
		}
		total += n
		if n > bestCount {
			bestCount, bestIdx = n, si
		}
	}
	if bestIdx < 0 {
		return Slot{0, len(page)}, 0
	}
	frac := 0.0
	if total > 0 {
		frac = float64(bestCount) / float64(total)
	}
	return slots[bestIdx], frac
}
