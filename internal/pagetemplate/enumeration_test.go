package pagetemplate

import (
	"fmt"
	"strings"
	"testing"

	"tableseg/internal/token"
)

func TestEnumValue(t *testing.T) {
	cases := []struct {
		s  string
		v  int
		ok bool
	}{
		{"7", 7, true},
		{"7.", 7, true},
		{"7)", 7, true},
		{"(7)", 7, true},
		{"10.", 10, true},
		{"123456.", 0, false}, // longer than the cap
		{"", 0, false},
		{"a.", 0, false},
		{"7a", 0, false},
		{".", 0, false},
		{"()", 0, false},
	}
	for _, c := range cases {
		v, ok := enumValue(c.s)
		if ok != c.ok || (ok && v != c.v) {
			t.Errorf("enumValue(%q) = %d,%v want %d,%v", c.s, v, ok, c.v, c.ok)
		}
	}
}

func numberedBookPages(rows int) [][]token.Token {
	render := func(words []string) []token.Token {
		var b strings.Builder
		b.WriteString("<html><body><h1>Numbered Books Result Listing</h1><p>Fine Titles Available Daily Here</p>")
		for i, w := range words {
			fmt.Fprintf(&b, `<p><b>%d.</b> <a href="d">%s Tome</a></p>`, i+1, w)
		}
		b.WriteString("<p>Copyright 2004 Numbered Books Inc Terms Privacy</p></body></html>")
		return token.Tokenize(b.String())
	}
	w1 := []string{"Alpha", "Beta", "Gamma", "Delta", "Epsilon"}[:rows]
	w2 := []string{"Zeta", "Etaq", "Theta", "Iotaq", "Kappa"}[:rows]
	return [][]token.Token{render(w1), render(w2)}
}

func TestStripEnumerationRestoresSlot(t *testing.T) {
	pages := numberedBookPages(5)
	tpl := Induce(pages)

	// Before stripping: the entry numbers "1." .. "5." are skeleton
	// tokens, shattering the table.
	entries := 0
	for _, s := range tpl.Skeleton {
		if strings.HasSuffix(s, ".") {
			if _, ok := enumValue(s); ok {
				entries++
			}
		}
	}
	if entries != 5 {
		t.Fatalf("expected the 5 entry numbers in the skeleton, got %d in %v", entries, tpl.Skeleton)
	}
	_, qBefore := TableSlot(tpl.SlotsOn(0, len(pages[0])), pages[0])

	stripped, n := tpl.StripEnumeration()
	if n != 5 {
		t.Errorf("stripped %d tokens, want the 5 entry numbers", n)
	}
	for _, s := range stripped.Skeleton {
		if strings.HasSuffix(s, ".") {
			if _, ok := enumValue(s); ok {
				t.Errorf("entry number %q survived stripping", s)
			}
		}
	}
	// The copyright year is numeric but not part of a +1 run: it must
	// survive (it is genuine template content).
	year := false
	for _, s := range stripped.Skeleton {
		if s == "2004" {
			year = true
		}
	}
	if !year {
		t.Error("copyright year wrongly stripped from the skeleton")
	}
	_, qAfter := TableSlot(stripped.SlotsOn(0, len(pages[0])), pages[0])
	if qAfter <= qBefore {
		t.Errorf("slot quality did not improve: %.2f -> %.2f", qBefore, qAfter)
	}
	if qAfter < 0.6 {
		t.Errorf("slot quality after stripping %.2f, want >= 0.6", qAfter)
	}
}

func TestStripEnumerationNoOp(t *testing.T) {
	// A page whose only numbers are a year and a count: no +1 run of
	// length >= 3, nothing stripped, the original template returned.
	p1 := token.Tokenize(`<html><body><h1>Plain Site Results</h1><p>Showing 10 Items Since 1998</p><table><tr><td>a b c</td></tr><tr><td>d e f</td></tr></table><p>Footer Words Here</p></body></html>`)
	p2 := token.Tokenize(`<html><body><h1>Plain Site Results</h1><p>Showing 10 Items Since 1998</p><table><tr><td>g h i</td></tr><tr><td>j k l</td></tr></table><p>Footer Words Here</p></body></html>`)
	tpl := Induce([][]token.Token{p1, p2})
	stripped, n := tpl.StripEnumeration()
	if n != 0 {
		t.Errorf("stripped %d tokens from an enumeration-free template (%v)", n, tpl.Skeleton)
	}
	if stripped != tpl {
		t.Error("no-op strip should return the original template")
	}
}

func TestStripEnumerationShortRunKept(t *testing.T) {
	// Two consecutive numbers are not an enumeration.
	t1 := &Template{
		Skeleton:  []string{"Header", "1.", "2.", "Footer"},
		positions: [][]int{{0, 1, 2, 3}},
		numPages:  1,
	}
	_, n := t1.StripEnumeration()
	if n != 0 {
		t.Errorf("stripped a run of 2 (%d tokens)", n)
	}
	t2 := &Template{
		Skeleton:  []string{"Header", "1.", "2.", "3.", "Footer"},
		positions: [][]int{{0, 1, 2, 3, 4}},
		numPages:  1,
	}
	s2, n2 := t2.StripEnumeration()
	if n2 != 3 {
		t.Errorf("run of 3: stripped %d", n2)
	}
	if len(s2.Skeleton) != 2 || s2.Skeleton[0] != "Header" || s2.Skeleton[1] != "Footer" {
		t.Errorf("remaining skeleton %v", s2.Skeleton)
	}
}

func TestStripEnumerationInterleaved(t *testing.T) {
	// Non-numeric skeleton tokens between entry numbers do not break
	// the run.
	tpl := &Template{
		Skeleton:  []string{"1.", "x", "2.", "y", "3."},
		positions: [][]int{{0, 1, 2, 3, 4}},
		numPages:  1,
	}
	s, n := tpl.StripEnumeration()
	if n != 3 {
		t.Fatalf("stripped %d, want 3 (skeleton %v)", n, s.Skeleton)
	}
	if len(s.Skeleton) != 2 || s.Skeleton[0] != "x" || s.Skeleton[1] != "y" {
		t.Errorf("remaining skeleton %v", s.Skeleton)
	}
}

func TestTextSkeletonLen(t *testing.T) {
	tpl := &Template{Skeleton: []string{"<html>", "Hello", "<td>", "World", "1."}}
	if got := tpl.TextSkeletonLen(); got != 3 {
		t.Errorf("TextSkeletonLen = %d, want 3", got)
	}
	if got := (&Template{}).TextSkeletonLen(); got != 0 {
		t.Errorf("empty skeleton text len = %d", got)
	}
}
