package pagetemplate

// Enumeration handling: the paper's template finder fails on sites that
// number their result entries ("1.", "2.", ...) because the numbers
// occur exactly once per page and become skeleton tokens, shattering the
// table across slots (§6.3 blames this for Amazon, BNBooks and
// Minnesota). §6.3 proposes, as future work, "to build a heuristic into
// the page template algorithm that finds enumerated entries"; this file
// implements that heuristic: detect increasing numeric runs in the
// skeleton and strip them, restoring a usable table slot.

// enumValue parses an enumeration token: "7", "7.", "7)" or "(7)".
// It returns the numeric value and whether the token qualifies.
func enumValue(s string) (int, bool) {
	if len(s) == 0 || len(s) > 6 {
		return 0, false
	}
	if s[0] == '(' && s[len(s)-1] == ')' {
		s = s[1 : len(s)-1]
	} else if last := s[len(s)-1]; last == '.' || last == ')' {
		s = s[:len(s)-1]
	}
	if s == "" {
		return 0, false
	}
	v := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
	}
	return v, true
}

// StripEnumeration returns a copy of the template with enumerated-entry
// skeleton tokens removed, plus the number of tokens stripped. A token
// is stripped when it belongs to a run of three or more consecutive
// skeleton tokens whose numeric values increase by exactly one ("1."
// "2." "3." ...). Other numeric skeleton tokens (years in a copyright
// line, a stable result count) are untouched. If nothing qualifies the
// original template is returned with count 0.
func (t *Template) StripEnumeration() (*Template, int) {
	n := len(t.Skeleton)
	vals := make([]int, n)
	isNum := make([]bool, n)
	for i, s := range t.Skeleton {
		vals[i], isNum[i] = enumValue(s)
	}

	strip := make([]bool, n)
	i := 0
	for i < n {
		if !isNum[i] {
			i++
			continue
		}
		// Extend a +1 run over the numeric skeleton tokens, allowing
		// non-numeric skeleton tokens in between (a stray template
		// token can sit between two entry numbers).
		runIdx := []int{i}
		j := i + 1
		for j < n {
			if !isNum[j] {
				j++
				continue
			}
			if vals[j] == vals[runIdx[len(runIdx)-1]]+1 {
				runIdx = append(runIdx, j)
				j++
				continue
			}
			break
		}
		if len(runIdx) >= 3 {
			for _, k := range runIdx {
				strip[k] = true
			}
		}
		i = runIdx[len(runIdx)-1] + 1
	}

	count := 0
	for _, s := range strip {
		if s {
			count++
		}
	}
	if count == 0 {
		return t, 0
	}

	out := &Template{numPages: t.numPages}
	out.positions = make([][]int, len(t.positions))
	for p := range t.positions {
		out.positions[p] = make([]int, 0, n-count)
	}
	for k := 0; k < n; k++ {
		if strip[k] {
			continue
		}
		out.Skeleton = append(out.Skeleton, t.Skeleton[k])
		for p := range t.positions {
			out.positions[p] = append(out.positions[p], t.positions[p][k])
		}
	}
	return out, count
}
