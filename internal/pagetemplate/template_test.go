package pagetemplate

import (
	"fmt"
	"strings"
	"testing"

	"tableseg/internal/token"
)

// listPage builds a small list page with a fixed header/footer and the
// given table rows.
func listPage(header string, rows []string) string {
	var b strings.Builder
	b.WriteString("<html><body><h1>" + header + "</h1><p>Results Page For You</p><table>")
	for _, r := range rows {
		b.WriteString("<tr><td>" + r + "</td></tr>")
	}
	b.WriteString("</table><p>Copyright Example Corp</p></body></html>")
	return b.String()
}

func TestInduceBasicTemplate(t *testing.T) {
	p1 := token.Tokenize(listPage("Search", []string{"John Smith", "Jane Doe", "Jim Beam"}))
	p2 := token.Tokenize(listPage("Search", []string{"Al Green", "Bo Diddley", "Cy Young"}))
	tpl := Induce([][]token.Token{p1, p2})

	if len(tpl.Skeleton) == 0 {
		t.Fatal("empty skeleton")
	}
	// The invariant words appear in the skeleton; table data must not.
	skel := strings.Join(tpl.Skeleton, " ")
	for _, want := range []string{"Search", "Copyright", "Results"} {
		if !strings.Contains(skel, want) {
			t.Errorf("skeleton missing %q: %v", want, tpl.Skeleton)
		}
	}
	for _, bad := range []string{"John", "Green", "<td>", "<tr>"} {
		if strings.Contains(skel, bad) {
			t.Errorf("skeleton wrongly contains %q", bad)
		}
	}
}

func TestInduceSkeletonOrderConsistent(t *testing.T) {
	p1 := token.Tokenize(listPage("Alpha", []string{"r1 r2", "r3"}))
	p2 := token.Tokenize(listPage("Alpha", []string{"x1", "x2 x3"}))
	tpl := Induce([][]token.Token{p1, p2})
	// Every skeleton token must occur on both pages and in order.
	for p, page := range [][]token.Token{p1, p2} {
		last := -1
		for _, want := range tpl.Skeleton {
			found := -1
			for i := last + 1; i < len(page); i++ {
				if page[i].Text == want {
					found = i
					break
				}
			}
			if found < 0 {
				t.Fatalf("page %d: skeleton token %q not found after %d", p, want, last)
			}
			last = found
		}
	}
}

func TestTableSlotHeuristic(t *testing.T) {
	rows := []string{"John Smith 100 Main St", "Jane Doe 200 Oak Ave", "Jim Beam 300 Elm Rd"}
	p1 := token.Tokenize(listPage("Query", rows))
	p2 := token.Tokenize(listPage("Query", []string{"A B C D E", "F G H I J", "K L M N O"}))
	tpl := Induce([][]token.Token{p1, p2})
	slots := tpl.SlotsOn(0, len(p1))
	slot, frac := TableSlot(slots, p1)
	if frac < 0.8 {
		t.Errorf("table slot fraction %.2f, want ≥0.8 (slot shattered)", frac)
	}
	// All row words must be inside the chosen slot.
	inSlot := map[string]bool{}
	for i := slot.Start; i < slot.End; i++ {
		inSlot[p1[i].Text] = true
	}
	for _, r := range rows {
		for _, w := range strings.Fields(r) {
			if !inSlot[w] {
				t.Errorf("table word %q outside table slot %v", w, slot)
			}
		}
	}
}

// Numbered entries become template tokens and shatter the table: the
// paper's documented failure mode. Quality must drop so callers fall
// back to the whole page.
func TestNumberedEntriesShatterTemplate(t *testing.T) {
	numberedPage := func(rows []string) string {
		var b strings.Builder
		b.WriteString("<html><body><h1>Books Found Today</h1><ol>")
		for i, r := range rows {
			// Numbers carry invariant markup context (<b>N.</b>), as on
			// the real book sites, so they survive context pruning.
			fmt.Fprintf(&b, "<li><b>%d.</b> %s</li>", i+1, r)
		}
		b.WriteString("</ol><p>Copyright Bookstore Example</p></body></html>")
		return b.String()
	}
	p1 := token.Tokenize(numberedPage([]string{"War and Peace", "Anna Karenina", "The Idiot", "Dead Souls"}))
	p2 := token.Tokenize(numberedPage([]string{"Moby Dick", "White Jacket", "Typee Tales", "Omoo Story"}))
	tpl := Induce([][]token.Token{p1, p2})

	foundNumber := false
	for _, s := range tpl.Skeleton {
		if s == "1." || s == "2." {
			foundNumber = true
		}
	}
	if !foundNumber {
		t.Fatalf("entry numbers did not become template tokens: %v", tpl.Skeleton)
	}
	slots := tpl.SlotsOn(0, len(p1))
	_, frac := TableSlot(slots, p1)
	if frac > 0.55 {
		t.Errorf("quality %.2f: expected shattered table (≤0.55)", frac)
	}
}

func TestInduceFewPages(t *testing.T) {
	p := token.Tokenize(listPage("X", []string{"a"}))
	tpl := Induce([][]token.Token{p})
	if len(tpl.Skeleton) != 0 {
		t.Errorf("single page must give empty skeleton, got %v", tpl.Skeleton)
	}
	slots := tpl.SlotsOn(0, len(p))
	if len(slots) != 1 || slots[0].Len() != len(p) {
		t.Errorf("empty skeleton must give whole-page slot, got %v", slots)
	}
	empty := Induce(nil)
	if len(empty.Skeleton) != 0 || empty.NumPages() != 0 {
		t.Errorf("nil input: %v", empty.Skeleton)
	}
}

func TestMatchOnNewPage(t *testing.T) {
	p1 := token.Tokenize(listPage("Zed", []string{"one two", "three four"}))
	p2 := token.Tokenize(listPage("Zed", []string{"five six", "seven eight"}))
	tpl := Induce([][]token.Token{p1, p2})
	p3 := token.Tokenize(listPage("Zed", []string{"nine ten", "eleven twelve"}))
	slots := Slots(tpl, p3)
	slot, frac := TableSlot(slots, p3)
	if frac < 0.6 {
		t.Errorf("match on fresh page: fraction %.2f", frac)
	}
	inSlot := map[string]bool{}
	for i := slot.Start; i < slot.End; i++ {
		inSlot[p3[i].Text] = true
	}
	for _, w := range []string{"nine", "twelve"} {
		if !inSlot[w] {
			t.Errorf("fresh page data %q outside slot", w)
		}
	}
}

// Slots is a test-local alias documenting the intended call pattern.
func Slots(t *Template, page []token.Token) []Slot { return t.Match(page) }

func TestSlotString(t *testing.T) {
	s := Slot{3, 9}
	if s.String() != "[3,9)" || s.Len() != 6 {
		t.Errorf("Slot rendering: %s len %d", s, s.Len())
	}
}

func TestTableSlotEmpty(t *testing.T) {
	slot, frac := TableSlot(nil, nil)
	if frac != 0 || slot.Len() != 0 {
		t.Errorf("empty input: slot %v frac %f", slot, frac)
	}
}

func TestSlotsOnOutOfRange(t *testing.T) {
	tpl := Induce(nil)
	slots := tpl.SlotsOn(5, 10)
	if len(slots) != 1 || slots[0] != (Slot{0, 10}) {
		t.Errorf("out-of-range page index: %v", slots)
	}
}
