package extract

import (
	"strings"
	"testing"

	"tableseg/internal/token"
)

func TestIsSeparator(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"<td>", true},
		{"</tr>", true},
		{"<br/>", true},
		{"|", true},
		{"*", true},
		{"~", true},
		{"-", false}, // in the safe set .,()-
		{"--", false},
		{"(", false},
		{".", false},
		{"word", false},
		{"123", false},
		{"a|b", false}, // contains letters: not pure punctuation
	}
	for _, c := range cases {
		toks := token.Tokenize(c.text)
		if len(toks) != 1 {
			t.Fatalf("%q tokenized to %d tokens", c.text, len(toks))
		}
		if got := IsSeparator(toks[0]); got != c.want {
			t.Errorf("IsSeparator(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestSplitBasic(t *testing.T) {
	page := token.Tokenize(`<tr><td>John Smith</td><td>New Holland</td><td>(740) 335-5555</td></tr>`)
	ex := Split(page, 0, len(page))
	want := []string{"John Smith", "New Holland", "(740) 335-5555"}
	if len(ex) != len(want) {
		t.Fatalf("got %d extracts, want %d: %+v", len(ex), len(want), ex)
	}
	for i, w := range want {
		if ex[i].Text() != w {
			t.Errorf("extract %d = %q, want %q", i, ex[i].Text(), w)
		}
		if ex[i].Index != i {
			t.Errorf("extract %d has Index %d", i, ex[i].Index)
		}
	}
}

func TestSplitPunctuationSeparators(t *testing.T) {
	// '~' and '|' are separators; ',' and '-' are not.
	page := token.Tokenize(`Findlay, OH ~ 419-423-1212 | Smith`)
	ex := Split(page, 0, len(page))
	want := []string{"Findlay, OH", "419-423-1212", "Smith"}
	if len(ex) != len(want) {
		t.Fatalf("got %v", texts(ex))
	}
	for i, w := range want {
		if ex[i].Text() != w {
			t.Errorf("extract %d = %q, want %q", i, ex[i].Text(), w)
		}
	}
}

func texts(ex []Extract) []string {
	out := make([]string, len(ex))
	for i := range ex {
		out[i] = ex[i].Text()
	}
	return out
}

func TestSplitRangeClamping(t *testing.T) {
	page := token.Tokenize(`a b c`)
	if got := Split(page, -5, 99); len(got) != 1 || got[0].Text() != "a b c" {
		t.Errorf("clamped split: %v", texts(got))
	}
	if got := Split(page, 2, 2); len(got) != 0 {
		t.Errorf("empty range: %v", texts(got))
	}
}

func TestSplitTokenRanges(t *testing.T) {
	page := token.Tokenize(`<b>x y</b><i>z</i>`)
	ex := Split(page, 0, len(page))
	if len(ex) != 2 {
		t.Fatalf("extracts: %v", texts(ex))
	}
	// Token ranges must index back into the page stream.
	if page[ex[0].TokenStart].Text != "x" || page[ex[0].TokenEnd-1].Text != "y" {
		t.Errorf("extract 0 range [%d,%d)", ex[0].TokenStart, ex[0].TokenEnd)
	}
	if page[ex[1].TokenStart].Text != "z" {
		t.Errorf("extract 1 range [%d,%d)", ex[1].TokenStart, ex[1].TokenEnd)
	}
}

func TestExtractTypeAccessors(t *testing.T) {
	page := token.Tokenize(`<b>John 335-5555</b>`)
	ex := Split(page, 0, len(page))
	if len(ex) != 1 {
		t.Fatal(texts(ex))
	}
	if !ex[0].FirstType().Has(token.Capitalized) {
		t.Errorf("FirstType = %v", ex[0].FirstType())
	}
	v := ex[0].TypeVector()
	// The union vector must include both Capitalized and Numeric bits.
	u := token.Capitalized | token.Numeric
	for _, bit := range u.Bits() {
		if !v[bit] {
			t.Errorf("type vector missing bit %d: %v", bit, v)
		}
	}
	var empty Extract
	if empty.FirstType() != 0 {
		t.Errorf("empty extract FirstType = %v", empty.FirstType())
	}
}

func TestDetailIndexFindIgnoresSeparators(t *testing.T) {
	// The paper's footnote: "FirstName LastName" on the list page must
	// match "FirstName <br> LastName" on the detail page.
	detail := token.Tokenize(`<html><body>John<br>Smith lives at<br>221 Washington</body></html>`)
	di := IndexDetail(detail)
	if !di.Contains([]string{"John", "Smith"}) {
		t.Error("separator-intervened match failed")
	}
	if !di.Contains([]string{"221", "Washington"}) {
		t.Error("plain match failed")
	}
	if di.Contains([]string{"Smith", "John"}) {
		t.Error("order must matter")
	}
	if di.Contains([]string{"Jane"}) {
		t.Error("absent string matched")
	}
	if di.Contains(nil) {
		t.Error("empty query must not match")
	}
}

func TestDetailIndexPositions(t *testing.T) {
	detail := token.Tokenize(`x John Smith y John Smith`)
	di := IndexDetail(detail)
	pos := di.Find([]string{"John", "Smith"})
	if len(pos) != 2 {
		t.Fatalf("positions: %v", pos)
	}
	if pos[0] >= pos[1] {
		t.Errorf("positions not ascending: %v", pos)
	}
}

func TestObserveSuperpagesExample(t *testing.T) {
	// Reconstruction of the paper's Table 1: 3 records; extracts
	// E1/E4/E5/E8 shared between records 1 and 2.
	list := token.Tokenize(`<table>` +
		`<tr><td>John Smith</td><td>221 Washington</td><td>New Holland</td><td>(740) 335-5555</td></tr>` +
		`<tr><td>John Smith</td><td>221R Washington</td><td>Washington</td><td>(740) 335-5555</td></tr>` +
		`<tr><td>George W. Smith</td><td>Findlay, OH</td><td>(419) 423-1212</td></tr>` +
		`</table>`)
	detail := func(fields ...string) []token.Token {
		return token.Tokenize(`<html><body><h2>Detail</h2><p>` + strings.Join(fields, `</p><p>`) + `</p></body></html>`)
	}
	details := [][]token.Token{
		detail("John Smith", "221 Washington", "New Holland", "(740) 335-5555"),
		detail("John Smith", "221R Washington", "Washington", "(740) 335-5555"),
		detail("George W. Smith", "Findlay, OH", "(419) 423-1212"),
	}
	ex := Split(list, 0, len(list))
	if len(ex) != 11 {
		t.Fatalf("want 11 extracts (E1..E11), got %d: %v", len(ex), texts(ex))
	}
	obs := Observe(ex, details, nil)

	wantPages := [][]int{
		{0, 1}, // E1 John Smith
		{0},    // E2 221 Washington
		{0},    // E3 New Holland
		{0, 1}, // E4 (740) 335-5555
		{0, 1}, // E5 John Smith
		{1},    // E6 221R Washington
		{0, 1}, // E7 Washington — also matches inside "221 Washington" on page 0
		{0, 1}, // E8 phone
		{2},    // E9 George W. Smith
		{2},    // E10 Findlay, OH
		{2},    // E11 (419) 423-1212
	}
	for i, want := range wantPages {
		got := obs[i].Pages
		if len(got) != len(want) {
			t.Errorf("E%d pages = %v, want %v", i+1, got, want)
			continue
		}
		for k := range want {
			if got[k] != want[k] {
				t.Errorf("E%d pages = %v, want %v", i+1, got, want)
			}
		}
	}
	// Observations must be informative (3 detail pages, none on all).
	analyzed := InformativeSubset(obs, len(details))
	if len(analyzed) != 11 {
		t.Errorf("analyzed = %v, want all 11", analyzed)
	}
}

func TestObserveFiltersBoilerplate(t *testing.T) {
	list := token.Tokenize(`<p>More Info</p><p>Alpha</p><p>Beta</p>`)
	otherList := token.Tokenize(`<p>More Info</p><p>Gamma</p>`)
	details := [][]token.Token{
		token.Tokenize(`<p>Alpha</p><p>More Info</p><p>Common Footer</p>`),
		token.Tokenize(`<p>Beta</p><p>More Info</p><p>Common Footer</p>`),
	}
	ex := Split(list, 0, len(list))
	obs := Observe(ex, details, [][]token.Token{otherList})

	byText := map[string]*Observation{}
	for i := range obs {
		byText[obs[i].Extract.Text()] = &obs[i]
	}
	if o := byText["More Info"]; !o.OnAllListPages {
		t.Error("More Info should be flagged on all list pages")
	}
	if o := byText["More Info"]; o.Informative(len(details)) {
		t.Error("More Info must be filtered (all list pages AND all detail pages)")
	}
	if o := byText["Alpha"]; !o.Informative(len(details)) {
		t.Errorf("Alpha should be informative: %+v", o)
	}
	if o := byText["Beta"]; len(o.Pages) != 1 || o.Pages[0] != 1 {
		t.Errorf("Beta pages = %v", o.Pages)
	}
}

func TestObservationOnPage(t *testing.T) {
	o := Observation{Pages: []int{0, 2, 5}}
	for _, j := range []int{0, 2, 5} {
		if !o.OnPage(j) {
			t.Errorf("OnPage(%d) = false", j)
		}
	}
	for _, j := range []int{1, 3, 4, 6, -1} {
		if o.OnPage(j) {
			t.Errorf("OnPage(%d) = true", j)
		}
	}
}

func TestPositionGroups(t *testing.T) {
	// Two detail pages; "John Smith" and "Jane Smith" both start at the
	// same token position on page 0 (they are alternatives for the same
	// field slot).
	d0 := token.Tokenize(`<p>John Smith</p>`)
	d1 := token.Tokenize(`<p>Jane Smith</p>`)
	list := token.Tokenize(`<p>John Smith</p><p>Jane Smith</p>`)
	ex := Split(list, 0, len(list))
	obs := Observe(ex, [][]token.Token{d0, d1}, nil)
	analyzed := InformativeSubset(obs, 2)
	groups := PositionGroups(obs, analyzed, 2)
	// Each page has only one extract, so no shared-position groups.
	if len(groups) != 0 {
		t.Errorf("unexpected groups: %v", groups)
	}

	// Now a page where two extracts genuinely collide: page contains
	// "John Smith" twice, and the list has two "John Smith" extracts.
	dd := token.Tokenize(`<p>John Smith</p><p>John Smith</p>`)
	list2 := token.Tokenize(`<p>John Smith</p><p>Jane Roe</p><p>John Smith</p>`)
	ex2 := Split(list2, 0, len(list2))
	obs2 := Observe(ex2, [][]token.Token{dd, d1}, nil)
	analyzed2 := InformativeSubset(obs2, 2)
	groups2 := PositionGroups(obs2, analyzed2, 2)
	if len(groups2[0]) == 0 {
		t.Fatalf("expected shared-position groups on page 0: %v", groups2)
	}
	for _, g := range groups2[0] {
		if len(g) < 2 {
			t.Errorf("degenerate group %v", g)
		}
	}
}

func TestInformativeEdgeCases(t *testing.T) {
	o := Observation{} // no pages
	if o.Informative(3) {
		t.Error("extract with empty D must be uninformative")
	}
	all := Observation{Pages: []int{0, 1, 2}}
	if all.Informative(3) {
		t.Error("extract on all detail pages must be uninformative")
	}
	some := Observation{Pages: []int{0, 1}}
	if !some.Informative(3) {
		t.Error("extract on a strict subset must be informative")
	}
}
