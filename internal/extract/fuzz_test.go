package extract

import (
	"testing"

	"tableseg/internal/token"
)

// FuzzExtracts drives the §3 extraction front end — tokenize, split
// into extracts, observe against a detail page — with arbitrary HTML
// and checks the structural invariants every downstream solver relies
// on: extracts are non-empty, ordered, non-overlapping, and their
// token/byte spans stay inside the page.
func FuzzExtracts(f *testing.F) {
	f.Add("<html><body><b>John Smith</b><br>221 Washington<br>(740) 335-5555</body></html>",
		"<html><body><p>John Smith</p><p>221 Washington</p></body></html>")
	f.Add("<div>a<div>b</div>c</div>", "<p>a b c</p>")
	f.Add("", "")
	f.Add("plain text, no tags & a (555) 123-4567 number", "<p>(555) 123-4567</p>")
	f.Add("<a href=\"x\">1. First</a><a href=\"y\">2. Second</a>", "<h1>First</h1>")

	f.Fuzz(func(t *testing.T, listHTML, detailHTML string) {
		page := token.Tokenize(listHTML)
		extracts := Split(page, 0, len(page))

		prevEnd := 0
		for i, e := range extracts {
			if e.Index != i {
				t.Fatalf("extract %d has Index %d", i, e.Index)
			}
			if len(e.Words) == 0 {
				t.Fatalf("extract %d is empty", i)
			}
			if len(e.Words) != len(e.Types) {
				t.Fatalf("extract %d: %d words but %d types", i, len(e.Words), len(e.Types))
			}
			if e.TokenStart < prevEnd || e.TokenEnd <= e.TokenStart || e.TokenEnd > len(page) {
				t.Fatalf("extract %d has span [%d,%d) (previous end %d, page %d tokens)",
					i, e.TokenStart, e.TokenEnd, prevEnd, len(page))
			}
			if e.ByteStart < 0 || e.ByteEnd < e.ByteStart || e.ByteEnd > len(listHTML) {
				t.Fatalf("extract %d has byte span [%d,%d) in a %d-byte page",
					i, e.ByteStart, e.ByteEnd, len(listHTML))
			}
			prevEnd = e.TokenEnd
		}

		// Observation against an arbitrary detail page must not panic
		// and must reference only that page (index 0).
		obs := Observe(extracts, [][]token.Token{token.Tokenize(detailHTML)}, nil)
		if len(obs) != len(extracts) {
			t.Fatalf("%d observations for %d extracts", len(obs), len(extracts))
		}
		for i, o := range obs {
			for _, p := range o.Pages {
				if p != 0 {
					t.Fatalf("observation %d references detail page %d (only page 0 exists)", i, p)
				}
			}
		}
		for _, ai := range InformativeSubset(obs, 1) {
			if ai < 0 || ai >= len(obs) {
				t.Fatalf("InformativeSubset index %d out of range [0,%d)", ai, len(obs))
			}
		}
	})
}
