package extract

import (
	"sort"

	"tableseg/internal/token"
)

// Occurrence records one sighting of an extract on a detail page.
type Occurrence struct {
	// Page is the detail-page index (record number candidate r_j).
	Page int
	// Pos is the position of the sighting: the page-stream token index
	// of the first matched word on the detail page (the pos_j^k of
	// Table 3).
	Pos int
}

// Observation couples an extract with everything the detail pages say
// about it.
type Observation struct {
	Extract Extract
	// Pages is D_i: the sorted set of detail-page indices on which the
	// extract was observed.
	Pages []int
	// Occurrences lists every sighting (a page may appear several
	// times if the string occurs at several positions on it).
	Occurrences []Occurrence
	// OnAllListPages is true when the extract's text appears on every
	// sample list page — boilerplate to be ignored per §3.2.
	OnAllListPages bool
}

// OnPage reports whether the extract was observed on detail page j.
func (o *Observation) OnPage(j int) bool {
	k := sort.SearchInts(o.Pages, j)
	return k < len(o.Pages) && o.Pages[k] == j
}

// Informative reports whether the observation should participate in
// record segmentation: §3.2 ignores extracts that appear on all list
// pages or on all detail pages, and extracts seen on no detail page
// carry no record evidence.
func (o *Observation) Informative(numDetailPages int) bool {
	if len(o.Pages) == 0 || o.OnAllListPages {
		return false
	}
	return len(o.Pages) < numDetailPages
}

// DetailIndex is a preprocessed detail page ready for extract matching.
// Matching ignores intervening separators (§3.2 footnote: "FirstName
// LastName" on the list page matches "FirstName <br> LastName" on the
// detail page), so the index keeps only the page's non-separator word
// tokens, remembering each word's original stream position.
type DetailIndex struct {
	words   []string
	streams []int            // original token index per word
	starts  map[string][]int // word text -> indices into words
}

// IndexDetail builds a matching index over a tokenized detail page.
func IndexDetail(page []token.Token) *DetailIndex {
	di := &DetailIndex{starts: make(map[string][]int)}
	for i, t := range page {
		if IsSeparator(t) {
			continue
		}
		di.starts[t.Text] = append(di.starts[t.Text], len(di.words))
		di.words = append(di.words, t.Text)
		di.streams = append(di.streams, i)
	}
	return di
}

// NumWords returns the number of visible words on the indexed page.
func (di *DetailIndex) NumWords() int { return len(di.words) }

// Find returns the original-stream positions at which the word sequence
// occurs contiguously in the page's visible text.
func (di *DetailIndex) Find(words []string) []int {
	if len(words) == 0 {
		return nil
	}
	var out []int
	for _, w0 := range di.starts[words[0]] {
		if w0+len(words) > len(di.words) {
			continue
		}
		ok := true
		for k := 1; k < len(words); k++ {
			if di.words[w0+k] != words[k] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, di.streams[w0])
		}
	}
	return out
}

// Contains reports whether the word sequence occurs on the page.
func (di *DetailIndex) Contains(words []string) bool {
	return len(di.Find(words)) > 0
}

// Observe builds observations for every extract of the target list page.
//
//	extracts     — the extracts of the target list page, in stream order
//	details      — tokenized detail pages, in record (link) order
//	otherLists   — tokenized sample list pages other than the target,
//	               used for the "appears on all list pages" filter
func Observe(extracts []Extract, details [][]token.Token, otherLists [][]token.Token) []Observation {
	idx := make([]*DetailIndex, len(details))
	for j, d := range details {
		idx[j] = IndexDetail(d)
	}
	otherIdx := make([]*DetailIndex, len(otherLists))
	for j, p := range otherLists {
		otherIdx[j] = IndexDetail(p)
	}

	obs := make([]Observation, len(extracts))
	for i, e := range extracts {
		o := Observation{Extract: e}
		for j := range idx {
			positions := idx[j].Find(e.Words)
			if len(positions) == 0 {
				continue
			}
			o.Pages = append(o.Pages, j)
			for _, p := range positions {
				o.Occurrences = append(o.Occurrences, Occurrence{Page: j, Pos: p})
			}
		}
		if len(otherIdx) > 0 {
			onAll := true
			for _, li := range otherIdx {
				if !li.Contains(e.Words) {
					onAll = false
					break
				}
			}
			o.OnAllListPages = onAll
		}
		obs[i] = o
	}
	return obs
}

// InformativeSubset returns the indices (into obs) of the observations
// that participate in segmentation, preserving stream order.
func InformativeSubset(obs []Observation, numDetailPages int) []int {
	var out []int
	for i := range obs {
		if obs[i].Informative(numDetailPages) {
			out = append(out, i)
		}
	}
	return out
}

// PositionGroups returns, for each detail page, the groups of analyzed
// extracts that share a position on that page. Each group is a set of
// indices into analyzed (which indexes obs); only groups with two or
// more members are returned, because singleton groups impose no
// position constraint (§4.2).
func PositionGroups(obs []Observation, analyzed []int, numDetailPages int) map[int][][]int {
	type key struct{ page, pos int }
	byKey := make(map[key][]int)
	for ai, oi := range analyzed {
		for _, occ := range obs[oi].Occurrences {
			k := key{occ.Page, occ.Pos}
			byKey[k] = append(byKey[k], ai)
		}
	}
	groups := make(map[int][][]int)
	for k, members := range byKey {
		if len(members) < 2 {
			continue
		}
		sort.Ints(members)
		members = dedupInts(members)
		if len(members) < 2 {
			continue
		}
		groups[k.page] = append(groups[k.page], members)
	}
	// Map iteration above is unordered; fix a canonical group order so
	// downstream constraint problems are byte-identical across runs
	// (local search is trajectory-sensitive).
	for page := range groups {
		sort.Slice(groups[page], func(a, b int) bool {
			ga, gb := groups[page][a], groups[page][b]
			for i := 0; i < len(ga) && i < len(gb); i++ {
				if ga[i] != gb[i] {
					return ga[i] < gb[i]
				}
			}
			return len(ga) < len(gb)
		})
	}
	return groups
}

func dedupInts(a []int) []int {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return out
}
