package extract

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tableseg/internal/token"
)

// htmlish generates pseudo-random HTML-looking documents for property
// tests, deterministically from a seed.
func htmlish(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	pieces := []string{
		"<td>", "</td>", "<tr>", "</tr>", "<br>", "<b>", "</b>", "|", "~",
		"word", "Word", "WORD", "123", "12.5", "a-b", "(555)", "x,y", "-", ".",
		" ", "\n",
	}
	var b strings.Builder
	n := 5 + rng.Intn(60)
	for i := 0; i < n; i++ {
		b.WriteString(pieces[rng.Intn(len(pieces))])
		b.WriteByte(' ')
	}
	return b.String()
}

// Split partitions the non-separator tokens: every non-separator token
// belongs to exactly one extract, extracts are non-empty, ordered,
// non-overlapping, and contain no separators.
func TestSplitPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		page := token.Tokenize(htmlish(seed))
		ex := Split(page, 0, len(page))
		covered := make([]int, len(page))
		prevEnd := 0
		for _, e := range ex {
			if e.TokenStart < prevEnd || e.TokenEnd <= e.TokenStart {
				return false
			}
			prevEnd = e.TokenEnd
			if len(e.Words) != e.TokenEnd-e.TokenStart {
				return false
			}
			for k := e.TokenStart; k < e.TokenEnd; k++ {
				covered[k]++
				if IsSeparator(page[k]) {
					return false
				}
			}
		}
		for k, tk := range page {
			want := 1
			if IsSeparator(tk) {
				want = 0
			}
			if covered[k] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Byte offsets are monotone and consistent with token offsets.
func TestSplitByteOffsetsProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := htmlish(seed)
		page := token.Tokenize(src)
		ex := Split(page, 0, len(page))
		prev := -1
		for _, e := range ex {
			if e.ByteStart <= prev || e.ByteEnd <= e.ByteStart {
				return false
			}
			prev = e.ByteStart
			if e.ByteStart != page[e.TokenStart].Offset {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// An extract always matches the detail index built over a page that
// embeds the same words, regardless of the separators around them.
func TestObserveSelfMatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		page := token.Tokenize(htmlish(seed))
		ex := Split(page, 0, len(page))
		if len(ex) == 0 {
			return true
		}
		// A detail page embedding every extract with <br> separators.
		var b strings.Builder
		b.WriteString("<html><body>")
		for _, e := range ex {
			b.WriteString(strings.Join(e.Words, "<br>") + "<hr>")
		}
		b.WriteString("</body></html>")
		detail := token.Tokenize(b.String())
		obs := Observe(ex, [][]token.Token{detail}, nil)
		for i := range obs {
			if len(obs[i].Pages) != 1 || obs[i].Pages[0] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Observation pages are always sorted and duplicate-free, and every
// occurrence's page appears in Pages.
func TestObservePagesInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		page := token.Tokenize(htmlish(seed))
		ex := Split(page, 0, len(page))
		var details [][]token.Token
		for d := 0; d < 3; d++ {
			details = append(details, token.Tokenize(htmlish(seed*7+int64(d)+int64(rng.Intn(5)))))
		}
		obs := Observe(ex, details, nil)
		for i := range obs {
			pages := obs[i].Pages
			for k := 1; k < len(pages); k++ {
				if pages[k] <= pages[k-1] {
					return false
				}
			}
			inPages := map[int]bool{}
			for _, p := range pages {
				inPages[p] = true
			}
			for _, occ := range obs[i].Occurrences {
				if !inPages[occ.Page] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
