// Package extract implements the data-extraction step of §3.2 and the
// observation tables of §3.2–§4.2: splitting the table slot of a list
// page into extracts (visible strings), matching each extract against
// the detail pages (ignoring intervening separators), and building the
// observation matrix D_i and the position index pos_j(E_i) that the CSP
// and probabilistic record-segmentation algorithms consume.
package extract

import (
	"strings"

	"tableseg/internal/token"
)

// safePunct is the set of punctuation characters that do NOT act as
// separators (§3.2: separators are "any character that is not in the set
// '.,()-'"). A standalone token made only of these characters is still
// part of an extract; any other pure-punctuation token is a separator.
const safePunct = ".,()-"

// IsSeparator reports whether a page token is a separator: an HTML tag,
// or a punctuation-only token containing a character outside safePunct.
func IsSeparator(t token.Token) bool {
	if t.IsHTML() {
		return true
	}
	if !t.Type.Has(token.Punct) {
		return false
	}
	for i := 0; i < len(t.Text); i++ {
		if !strings.ContainsRune(safePunct, rune(t.Text[i])) {
			return true
		}
	}
	return false
}

// Extract is one visible string from the table slot: a maximal run of
// non-separator tokens.
type Extract struct {
	// Index is the extract's ordinal on the list page (E_1, E_2, ...,
	// in text-stream order), assigned by Split.
	Index int
	// Words are the extract's word tokens in order.
	Words []string
	// Types are the syntactic type sets of the words.
	Types []token.Type
	// TokenStart and TokenEnd delimit the extract in the page token
	// stream (half-open, global page indices).
	TokenStart, TokenEnd int
	// ByteStart and ByteEnd delimit the extract in the page source
	// (half-open byte offsets), for alignment with external ground
	// truth.
	ByteStart, ByteEnd int
}

// Text returns the extract's words joined with single spaces; this is
// the canonical form used for matching against detail pages.
func (e *Extract) Text() string { return strings.Join(e.Words, " ") }

// FirstType returns the syntactic type of the first word (the paper's
// models key on the starting token type); zero if empty.
func (e *Extract) FirstType() token.Type {
	if len(e.Types) == 0 {
		return 0
	}
	return e.Types[0]
}

// TypeVector returns the union of the word type sets as the paper's
// 8-element T_i observation vector.
func (e *Extract) TypeVector() [token.NumTypes]bool {
	var u token.Type
	for _, t := range e.Types {
		u |= t
	}
	return u.Vector()
}

// Split segments the token range [start, end) of a page into extracts.
// Consecutive non-separator tokens form one extract; separators are
// dropped. Indices are assigned in stream order starting at 0.
func Split(page []token.Token, start, end int) []Extract {
	if start < 0 {
		start = 0
	}
	if end > len(page) {
		end = len(page)
	}
	var out []Extract
	i := start
	for i < end {
		for i < end && IsSeparator(page[i]) {
			i++
		}
		if i >= end {
			break
		}
		runStart := i
		for i < end && !IsSeparator(page[i]) {
			i++
		}
		e := Extract{
			Index:      len(out),
			TokenStart: runStart,
			TokenEnd:   i,
			ByteStart:  page[runStart].Offset,
			ByteEnd:    page[i-1].Offset + len(page[i-1].Text),
			Words:      make([]string, 0, i-runStart),
			Types:      make([]token.Type, 0, i-runStart),
		}
		for k := runStart; k < i; k++ {
			e.Words = append(e.Words, page[k].Text)
			e.Types = append(e.Types, page[k].Type)
		}
		out = append(out, e)
	}
	return out
}
