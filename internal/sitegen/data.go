// Package sitegen generates synthetic hidden-Web sites that stand in for
// the twelve 2004 sites of the paper's evaluation (§6.1). Each site
// profile reproduces the documented structure of its namesake — domain,
// layout style, record counts — and, crucially, its documented
// pathologies: numbered entries that break template finding, Amazon's
// browsing-history pollution and "et al" author abbreviation, Minnesota's
// list/detail case mismatch, Michigan's Parole/Parolee value mismatch
// with an unrelated-context confounder, and Canada411's missing town on
// a single detail page. Generation is fully deterministic for a given
// seed, and every list page carries exact ground-truth byte spans for
// scoring.
package sitegen

import "math/rand"

// Word pools for the four information domains. The values are synthetic
// but shaped like the real data (capitalized names, numeric parcel ids,
// phone formats) so the syntactic-type models see realistic T_i vectors.

var firstNames = []string{
	"John", "Mary", "Robert", "Patricia", "Michael", "Linda", "William",
	"Barbara", "David", "Elizabeth", "Richard", "Jennifer", "Charles",
	"Maria", "Joseph", "Susan", "Thomas", "Margaret", "Paul", "Dorothy",
	"Mark", "Lisa", "Donald", "Nancy", "George", "Karen", "Kenneth",
	"Betty", "Steven", "Helen", "Edward", "Sandra", "Brian", "Donna",
	"Ronald", "Carol", "Anthony", "Ruth", "Kevin", "Sharon", "Jason",
	"Michelle", "Jeffrey", "Laura", "Frank", "Sarah", "Scott", "Kimberly",
	"Eric", "Deborah", "Stephen", "Jessica", "Andrew", "Shirley",
	"Raymond", "Cynthia", "Gregory", "Angela", "Joshua", "Melissa",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Miller", "Davis",
	"Garcia", "Rodriguez", "Wilson", "Martinez", "Anderson", "Taylor",
	"Thomas", "Hernandez", "Moore", "Martin", "Jackson", "Thompson",
	"White", "Lopez", "Lee", "Gonzalez", "Harris", "Clark", "Lewis",
	"Robinson", "Walker", "Perez", "Hall", "Young", "Allen", "Sanchez",
	"Wright", "King", "Scott", "Green", "Baker", "Adams", "Nelson",
	"Hill", "Ramirez", "Campbell", "Mitchell", "Roberts", "Carter",
	"Phillips", "Evans", "Turner", "Torres", "Parker", "Collins",
	"Edwards", "Stewart", "Flores", "Morris", "Nguyen", "Murphy",
	"Rivera", "Cook",
}

var streets = []string{
	"Washington", "Main", "Oak", "Maple", "Cedar", "Elm", "Pine",
	"Lake", "Hill", "Park", "Walnut", "Spring", "North", "Ridge",
	"Church", "Chestnut", "Spruce", "Sunset", "Railroad", "Center",
	"Highland", "Forest", "Jackson", "River", "Willow", "Jefferson",
	"Madison", "Franklin", "Lincoln", "Adams", "Cherry", "Dogwood",
	"Hickory", "Magnolia", "Meadow", "Mill", "Orchard", "Prospect",
}

var streetSuffixes = []string{"St", "Ave", "Rd", "Dr", "Ln", "Blvd", "Ct", "Way"}

var cities = []string{
	"New Holland", "Findlay", "Springfield", "Fairview", "Georgetown",
	"Clinton", "Salem", "Madison", "Riverside", "Ashland", "Oxford",
	"Arlington", "Burlington", "Manchester", "Milton", "Newport",
	"Auburn", "Bristol", "Clayton", "Dayton", "Dover", "Franklin",
	"Greenville", "Hudson", "Jackson", "Kingston", "Lebanon", "Marion",
	"Milford", "Monroe", "Newark", "Princeton", "Quincy", "Richmond",
	"Sharon", "Troy", "Union City", "Vernon", "Warren", "Winchester",
}

var states = []string{"OH", "PA", "FL", "MI", "MN", "CA", "NY", "TX", "WA", "VA", "ON", "BC"}

var bookAdjectives = []string{
	"Silent", "Hidden", "Lost", "Golden", "Broken", "Distant", "Secret",
	"Burning", "Frozen", "Ancient", "Crimson", "Wandering", "Forgotten",
	"Shattered", "Endless", "Quiet", "Savage", "Gentle", "Hollow", "Iron",
}

var bookNouns = []string{
	"River", "Garden", "Empire", "Shadow", "Harvest", "Voyage", "Covenant",
	"Labyrinth", "Horizon", "Kingdom", "Winter", "Summer", "Mirror",
	"Fortress", "Island", "Prophecy", "Letter", "Symphony", "Orchard",
	"Lantern",
}

var bookFormats = []string{"Hardcover", "Paperback", "Audiobook", "Library Binding"}

var facilities = []string{
	"Marion Correctional", "Lebanon Correctional", "Pickaway Correctional",
	"Grafton Correctional", "Noble Correctional", "Ross Correctional",
	"Trumbull Correctional", "Belmont Correctional", "London Correctional",
	"Mansfield Correctional", "Richland Correctional", "Toledo Correctional",
}

var inmateStatuses = []string{"Incarcerated", "Parole", "Released", "Probation"}

// gen wraps a deterministic RNG with domain-value helpers. All site
// content flows through one gen so a single seed reproduces a site
// byte-for-byte.
type gen struct {
	rng *rand.Rand
	// usedPhones / usedIDs keep high-cardinality fields unique within
	// a site, mirroring real data.
	usedPhones map[string]bool
	usedIDs    map[string]bool
	// Per-site value pools. Real result pages cluster geographically:
	// a county site shows a handful of towns, so low-cardinality values
	// repeat within a page. (Values that occur exactly once on every
	// sample page would otherwise masquerade as template tokens.)
	cityPool, streetPool, statePool, facilityPool []string
}

func newGen(seed int64) *gen {
	g := &gen{
		rng:        rand.New(rand.NewSource(seed)),
		usedPhones: map[string]bool{},
		usedIDs:    map[string]bool{},
	}
	g.cityPool = g.subset(cities, 4)
	g.streetPool = g.subset(streets, 8)
	g.statePool = g.subset(states, 3)
	g.facilityPool = g.subset(facilities, 5)
	return g
}

// subset draws n distinct elements from pool.
func (g *gen) subset(pool []string, n int) []string {
	idx := g.rng.Perm(len(pool))[:n]
	out := make([]string, n)
	for i, k := range idx {
		out[i] = pool[k]
	}
	return out
}

func (g *gen) pick(pool []string) string { return pool[g.rng.Intn(len(pool))] }

func (g *gen) intn(n int) int { return g.rng.Intn(n) }

func (g *gen) prob(p float64) bool { return g.rng.Float64() < p }

// personName returns "First Last".
func (g *gen) personName() string {
	return g.pick(firstNames) + " " + g.pick(lastNames)
}

// address returns a street address like "221 Washington St".
func (g *gen) address() string {
	num := 100 + g.intn(9899)
	return itoa(num) + " " + g.pick(g.streetPool) + " " + g.pick(streetSuffixes)
}

// cityState returns "City, ST" from the site's local pools.
func (g *gen) cityState() string {
	return g.pick(g.cityPool) + ", " + g.pick(g.statePool)
}

// phone returns "(NNN) NNN-NNNN", unique within the site.
func (g *gen) phone() string {
	for {
		p := "(" + itoa(200+g.intn(799)) + ") " + itoa(200+g.intn(799)) + "-" + pad4(g.intn(10000))
		if !g.usedPhones[p] {
			g.usedPhones[p] = true
			return p
		}
	}
}

// bookTitle returns "The Adjective Noun" style titles, unique-ish.
func (g *gen) bookTitle() string {
	switch g.intn(3) {
	case 0:
		return "The " + g.pick(bookAdjectives) + " " + g.pick(bookNouns)
	case 1:
		return g.pick(bookAdjectives) + " " + g.pick(bookNouns)
	default:
		return "A " + g.pick(bookNouns) + " of " + g.pick(bookNouns) + "s"
	}
}

// price returns "$NN.99".
func (g *gen) price() string {
	return "$" + itoa(5+g.intn(45)) + "." + pad2(g.intn(100))
}

// parcelID returns a county parcel number like "0412-88-1234".
func (g *gen) parcelID() string {
	for {
		id := pad4(g.intn(10000)) + "-" + pad2(g.intn(100)) + "-" + pad4(g.intn(10000))
		if !g.usedIDs[id] {
			g.usedIDs[id] = true
			return id
		}
	}
}

// inmateID returns a DOC number like "A123456".
func (g *gen) inmateID() string {
	for {
		id := string(rune('A'+g.intn(6))) + pad6(g.intn(1000000))
		if !g.usedIDs[id] {
			g.usedIDs[id] = true
			return id
		}
	}
}

// dollars returns a formatted dollar amount like "$124,500".
func (g *gen) dollars(lo, hi int) string {
	v := lo + g.intn(hi-lo)
	s := itoa(v)
	// Insert thousands separators.
	out := ""
	for i, c := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			out += ","
		}
		out += string(c)
	}
	return "$" + out
}

// date returns "MM/DD/YYYY".
func (g *gen) date(yearLo, yearHi int) string {
	return pad2(1+g.intn(12)) + "/" + pad2(1+g.intn(28)) + "/" + itoa(yearLo+g.intn(yearHi-yearLo))
}

// itoa and friends avoid pulling strconv into every call site.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func pad2(v int) string { return padN(v, 2) }
func pad4(v int) string { return padN(v, 4) }
func pad6(v int) string { return padN(v, 6) }

func padN(v, n int) string {
	s := itoa(v % pow10(n))
	for len(s) < n {
		s = "0" + s
	}
	return s
}

func pow10(n int) int {
	out := 1
	for i := 0; i < n; i++ {
		out *= 10
	}
	return out
}
