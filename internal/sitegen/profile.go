package sitegen

import "fmt"

// Domain is one of the paper's four information domains.
type Domain int

const (
	// Books: online book sellers (Amazon, BNBooks).
	Books Domain = iota
	// PropertyTax: county property-tax lookups (Allegheny, Butler, Lee).
	PropertyTax
	// WhitePages: people-search sites (Superpages, Yahoo People,
	// Canada411, SprintCanada).
	WhitePages
	// Corrections: state inmate lookups (Ohio, Minnesota, Michigan).
	Corrections
)

func (d Domain) String() string {
	switch d {
	case Books:
		return "books"
	case PropertyTax:
		return "property-tax"
	case WhitePages:
		return "white-pages"
	case Corrections:
		return "corrections"
	default:
		return "unknown"
	}
}

// Layout is the list-page presentation style (§6.1 describes the range:
// grid-like tables, free-form blocks, numbered entries).
type Layout int

const (
	// Grid: a bordered <table> with one <tr> per record.
	Grid Layout = iota
	// FreeForm: per-record blocks separated by <hr>, fields on <br>
	// lines.
	FreeForm
	// Numbered: an <ol>-style list with literal "1." entry numbers
	// (the layout that breaks page-template finding).
	Numbered
)

func (l Layout) String() string {
	switch l {
	case Grid:
		return "grid"
	case FreeForm:
		return "free-form"
	default:
		return "numbered"
	}
}

// Profile describes one synthetic site: its namesake's domain, layout,
// record counts and pathologies.
type Profile struct {
	// Name is the paper's site name; Slug is a filesystem-safe id.
	Name, Slug string
	Domain     Domain
	Layout     Layout
	// RecordsPerList gives the record count of each of the two sampled
	// list pages, taken from Table 4's row sums.
	RecordsPerList [2]int
	// Notes echoes the paper's Table 4 note letters expected for the
	// site (a: template problem, b: entire page used, c: no CSP
	// solution, d: constraints relaxed).
	Notes string

	// Pathologies (§6.3):

	// BrowsingHistory puts the titles of earlier records on later
	// detail pages (Amazon's browsing-history box).
	BrowsingHistory bool
	// EtAl abbreviates multi-author lists on the list page ("A. B., et
	// al") while detail pages show all authors.
	EtAl bool
	// DiscountPrices shows a discounted price on the list page while
	// the detail page shows the full price (Amazon), so price extracts
	// carry no detail-page evidence.
	DiscountPrices bool
	// CaseMismatchName renders names ALL-CAPS on list pages but
	// capitalized on detail pages (Minnesota).
	CaseMismatchName bool
	// StatusMismatch renders one inmate's status as "Parole" on the
	// list page and "Parolee" on the detail page, with the bare word
	// "Parole" also planted on an unrelated detail page (Michigan).
	StatusMismatch bool
	// DateConfound formats one record's birth date differently on its
	// own detail page while planting the list-page form on an
	// unrelated record's detail page (Minnesota's value mismatch).
	DateConfound bool
	// MissingTownDetail drops the (shared) town from exactly one
	// record's detail page on the second list page (Canada411).
	MissingTownDetail bool
	// ContinuousNumbering makes the second list page's entry numbers
	// continue from the first ("11.", "12.", ...) instead of
	// restarting at "1.". §6.3 observes that the next page of results
	// then has different entry numbers, so the numbers never become
	// template tokens and the numbered-entry pathology dissolves.
	ContinuousNumbering bool
	// VolatileHeader randomizes header/footer content per page so no
	// useful page template exists (Yahoo People, Superpages).
	VolatileHeader bool
	// ListJunk adds sponsored content to the list page that also
	// appears on some detail pages (harmful under whole-page
	// fallback).
	ListJunk bool
	// SharedTown uses one town for every record on a page (Canada411's
	// uniform locality).
	SharedTown bool

	// MissingFieldRate is the probability that an optional field is
	// absent from a record.
	MissingFieldRate float64
	// DuplicateRate is the probability that a record reuses the
	// previous record's name and phone (the Superpages "John Smith"
	// example).
	DuplicateRate float64
	// PollutionRate is the probability that a record's detail page
	// carries another random record's leading field value (a
	// rate-controlled generalization of Amazon's browsing-history
	// pollution, used by the stress sweep).
	PollutionRate float64
}

// Profiles returns the twelve site profiles of the paper's evaluation,
// in the order of Table 4.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "Amazon Books", Slug: "amazon", Domain: Books, Layout: Numbered,
			RecordsPerList: [2]int{10, 10}, Notes: "a,b",
			BrowsingHistory: true, EtAl: true, ListJunk: true, DiscountPrices: true,
			MissingFieldRate: 0.1,
		},
		{
			Name: "BN Books", Slug: "bnbooks", Domain: Books, Layout: Numbered,
			RecordsPerList: [2]int{10, 10}, Notes: "a,b,c,d",
			EtAl: true, ListJunk: true, DiscountPrices: true,
			MissingFieldRate: 0.15,
		},
		{
			Name: "Allegheny County", Slug: "allegheny", Domain: PropertyTax, Layout: Grid,
			RecordsPerList: [2]int{20, 20},
		},
		{
			Name: "Butler County", Slug: "butler", Domain: PropertyTax, Layout: Grid,
			RecordsPerList: [2]int{15, 12},
		},
		{
			Name: "Lee County", Slug: "lee", Domain: PropertyTax, Layout: Grid,
			RecordsPerList: [2]int{16, 5},
		},
		{
			Name: "Michigan Corrections", Slug: "michigan", Domain: Corrections, Layout: Grid,
			RecordsPerList: [2]int{7, 16}, Notes: "c,d",
			StatusMismatch:   true,
			MissingFieldRate: 0.05,
		},
		{
			Name: "Minnesota Corrections", Slug: "minnesota", Domain: Corrections, Layout: Numbered,
			RecordsPerList: [2]int{11, 19}, Notes: "a,b,c,d",
			CaseMismatchName: true, DateConfound: true,
			MissingFieldRate: 0.05,
		},
		{
			Name: "Ohio Corrections", Slug: "ohio", Domain: Corrections, Layout: Grid,
			RecordsPerList:   [2]int{10, 10},
			MissingFieldRate: 0.05,
		},
		{
			Name: "Canada 411", Slug: "canada411", Domain: WhitePages, Layout: FreeForm,
			RecordsPerList: [2]int{25, 5}, Notes: "c,d",
			MissingTownDetail: true, SharedTown: true,
			MissingFieldRate: 0.08, DuplicateRate: 0.08,
		},
		{
			Name: "Sprint Canada", Slug: "sprintcanada", Domain: WhitePages, Layout: Grid,
			RecordsPerList:   [2]int{20, 20},
			MissingFieldRate: 0.3, DuplicateRate: 0.25,
		},
		{
			Name: "Yahoo People", Slug: "yahoo", Domain: WhitePages, Layout: FreeForm,
			RecordsPerList: [2]int{10, 10}, Notes: "a,b,c,d",
			VolatileHeader: true, ListJunk: true,
			MissingFieldRate: 0.1, DuplicateRate: 0.1,
		},
		{
			Name: "Superpages", Slug: "superpages", Domain: WhitePages, Layout: FreeForm,
			RecordsPerList: [2]int{3, 15}, Notes: "a,b",
			VolatileHeader: true, ListJunk: true,
			MissingFieldRate: 0.15, DuplicateRate: 0.15,
		},
	}
}

// ProfileBySlug finds a profile by its slug.
func ProfileBySlug(slug string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Slug == slug {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("sitegen: unknown site %q", slug)
}
