package sitegen

import (
	"fmt"
	"strings"
)

// GenerateVerticalDemo builds a site whose list pages lay the table out
// vertically: each <tr> holds one attribute across all records, so the
// records run down the columns. §3 notes this layout exists but is out
// of scope for the paper's methods; the internal/vertical extension
// detects it and transposes the extract stream. The demo site is not
// part of the twelve-site Table 4 corpus.
//
// Because a vertical record's list-page appearance is discontiguous,
// TruthRecord spans cannot describe it; Truth carries only the Values
// (Start/End are zero) and callers score by record content.
func GenerateVerticalDemo(seed int64, numRecords int) *Site {
	g := newGen(seed*7919 + 13)
	p := Profile{
		Name: "Vertical Demo Registry", Slug: "verticaldemo",
		Domain: WhitePages, Layout: Grid,
		RecordsPerList: [2]int{numRecords, numRecords},
	}
	site := &Site{Profile: p, Seed: seed}
	for pageIdx := 0; pageIdx < 2; pageIdx++ {
		records := make([]Record, numRecords)
		for i := range records {
			records[i] = verticalRecord(g)
		}
		lp := renderVerticalList(p, records)
		for ri := range records {
			lp.Details = append(lp.Details, renderDetailPage(p, g, &records[ri]))
		}
		site.Lists = append(site.Lists, lp)
	}
	return site
}

// verticalRecord uses high-cardinality fields only, so every cell's
// detail evidence points at its own record (a comparison layout of
// distinct entities, as real side-by-side views are).
func verticalRecord(g *gen) Record {
	name := g.personName()
	addr := g.address()
	id := g.parcelID()
	phone := g.phone()
	return Record{Fields: []Field{
		{Label: "Name:", ListValue: name, DetailValue: name},
		{Label: "Address:", ListValue: addr, DetailValue: addr},
		{Label: "Account:", ListValue: id, DetailValue: id},
		{Label: "Phone:", ListValue: phone, DetailValue: phone},
	}}
}

// renderVerticalList renders one attribute per table row, one record
// per column.
func renderVerticalList(p Profile, records []Record) ListPage {
	var b strings.Builder
	lp := ListPage{}
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n<h1>%s</h1>\n", p.Name, p.Name)
	b.WriteString("<p>Side By Side Comparison Of Matching Entries Below</p>\n")
	b.WriteString(`<table border="1">` + "\n")
	if len(records) > 0 {
		for fi := range records[0].Fields {
			fmt.Fprintf(&b, "<tr><th>%s</th>", strings.TrimSuffix(records[0].Fields[fi].Label, ":"))
			for ri := range records {
				v := records[ri].Fields[fi].ListValue
				if v == "" {
					v = "&nbsp;"
				}
				fmt.Fprintf(&b, "<td>%s</td>", v)
			}
			b.WriteString("</tr>\n")
		}
	}
	b.WriteString("</table>\n")
	b.WriteString("<p>Copyright 2004 Vertical Demo Registry Inc - Terms Privacy Contact</p>\n</body></html>\n")
	lp.HTML = b.String()
	for ri := range records {
		lp.Truth = append(lp.Truth, TruthRecord{Values: records[ri].ListValues()})
	}
	return lp
}
