package sitegen

import (
	"fmt"
	"strings"
	"testing"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 12 {
		t.Fatalf("got %d profiles, want 12", len(ps))
	}
	slugs := map[string]bool{}
	perDomain := map[Domain]int{}
	for _, p := range ps {
		if p.Name == "" || p.Slug == "" {
			t.Errorf("profile missing name/slug: %+v", p)
		}
		if slugs[p.Slug] {
			t.Errorf("duplicate slug %q", p.Slug)
		}
		slugs[p.Slug] = true
		perDomain[p.Domain]++
		for _, n := range p.RecordsPerList {
			if n <= 0 {
				t.Errorf("%s: non-positive record count", p.Slug)
			}
		}
	}
	// The paper's four domains: 2 book sellers, 3 property tax, 4 white
	// pages, 3 corrections.
	want := map[Domain]int{Books: 2, PropertyTax: 3, WhitePages: 4, Corrections: 3}
	for d, n := range want {
		if perDomain[d] != n {
			t.Errorf("domain %v has %d sites, want %d", d, perDomain[d], n)
		}
	}
}

func TestProfileBySlug(t *testing.T) {
	p, err := ProfileBySlug("superpages")
	if err != nil || p.Name != "Superpages" {
		t.Errorf("ProfileBySlug(superpages) = %v, %v", p.Name, err)
	}
	if _, err := ProfileBySlug("nope"); err == nil {
		t.Error("unknown slug must error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, p := range Profiles() {
		a := Generate(p, 7)
		b := Generate(p, 7)
		for li := range a.Lists {
			if a.Lists[li].HTML != b.Lists[li].HTML {
				t.Fatalf("%s: list %d differs between runs of the same seed", p.Slug, li)
			}
			for di := range a.Lists[li].Details {
				if a.Lists[li].Details[di] != b.Lists[li].Details[di] {
					t.Fatalf("%s: detail %d/%d differs between runs", p.Slug, li, di)
				}
			}
		}
		c := Generate(p, 8)
		if a.Lists[0].HTML == c.Lists[0].HTML {
			t.Errorf("%s: different seeds produced identical pages", p.Slug)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	for _, p := range Profiles() {
		site := Generate(p, 42)
		if len(site.Lists) != 2 {
			t.Fatalf("%s: %d list pages, want 2", p.Slug, len(site.Lists))
		}
		for li, lp := range site.Lists {
			wantN := p.RecordsPerList[li]
			if len(lp.Truth) != wantN {
				t.Errorf("%s list %d: %d truth records, want %d", p.Slug, li, len(lp.Truth), wantN)
			}
			if len(lp.Details) != wantN {
				t.Errorf("%s list %d: %d detail pages, want %d", p.Slug, li, len(lp.Details), wantN)
			}
		}
	}
}

func TestTruthSpansValid(t *testing.T) {
	for _, p := range Profiles() {
		site := Generate(p, 42)
		for li, lp := range site.Lists {
			prevEnd := 0
			for ti, tr := range lp.Truth {
				if tr.Start < prevEnd || tr.End <= tr.Start || tr.End > len(lp.HTML) {
					t.Fatalf("%s list %d record %d: bad span [%d,%d) after %d",
						p.Slug, li, ti, tr.Start, tr.End, prevEnd)
				}
				prevEnd = tr.End
				span := lp.HTML[tr.Start:tr.End]
				for _, v := range tr.Values {
					if !strings.Contains(span, v) {
						t.Errorf("%s list %d record %d: value %q not inside its span", p.Slug, li, ti, v)
					}
				}
				if len(tr.Values) == 0 {
					t.Errorf("%s list %d record %d: empty truth values", p.Slug, li, ti)
				}
			}
		}
	}
}

// Every record's list values (except known mismatch pathologies) must
// also appear on the corresponding detail page — that redundancy is the
// premise of the whole paper.
func TestListDetailRedundancy(t *testing.T) {
	site := Generate(mustProfile(t, "allegheny"), 42)
	for li, lp := range site.Lists {
		for ri, tr := range lp.Truth {
			detail := lp.Details[ri]
			for _, v := range tr.Values {
				if !strings.Contains(detail, v) {
					t.Errorf("list %d record %d: value %q missing from its detail page", li, ri, v)
				}
			}
		}
	}
}

func mustProfile(t *testing.T, slug string) Profile {
	t.Helper()
	p, err := ProfileBySlug(slug)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAmazonBrowsingHistory(t *testing.T) {
	site := Generate(mustProfile(t, "amazon"), 42)
	lp := site.Lists[0]
	cross := 0
	for ri, d := range lp.Details {
		if !strings.Contains(d, "Recently Viewed Items") {
			t.Fatalf("detail %d missing browsing-history box", ri)
		}
		for rj, tr := range lp.Truth {
			if rj == ri {
				continue
			}
			if strings.Contains(d, tr.Values[0]) {
				cross++
			}
		}
	}
	if cross < len(lp.Details) {
		t.Errorf("browsing history creates only %d cross-record title matches", cross)
	}
}

func TestMichiganStatusMismatch(t *testing.T) {
	site := Generate(mustProfile(t, "michigan"), 42)
	lp := site.Lists[1] // pathology applies to the second page
	if !strings.Contains(lp.HTML, ">Parole<") && !strings.Contains(lp.HTML, "Parole</td>") {
		t.Fatal("list page 2 has no Parole status")
	}
	parolee, confound := false, false
	for _, d := range lp.Details {
		if strings.Contains(d, "Parolee") {
			parolee = true
		}
		if strings.Contains(d, "Eligible for Parole review") {
			confound = true
		}
	}
	if !parolee {
		t.Error("no detail page shows Parolee")
	}
	if !confound {
		t.Error("no detail page carries the Parole confounder")
	}
	// Page 1 must NOT contain Parole (otherwise the all-list-pages
	// filter would neutralize the pathology).
	if strings.Contains(site.Lists[0].HTML, "Parole") {
		t.Error("Parole leaked onto list page 1")
	}
}

func TestMinnesotaCaseMismatch(t *testing.T) {
	site := Generate(mustProfile(t, "minnesota"), 42)
	lp := site.Lists[0]
	foundUpper := false
	for ri, tr := range lp.Truth {
		name := tr.Values[1] // Number, NAME, ...
		if name == strings.ToUpper(name) && strings.ContainsAny(name, "ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
			foundUpper = true
			if strings.Contains(lp.Details[ri], name) {
				t.Errorf("record %d: ALL-CAPS name %q appears verbatim on detail page (mismatch lost)", ri, name)
			}
		}
	}
	if !foundUpper {
		t.Error("no ALL-CAPS names on the Minnesota list page")
	}
}

func TestMinnesotaDateConfound(t *testing.T) {
	site := Generate(mustProfile(t, "minnesota"), 42)
	for li, lp := range site.Lists {
		found := false
		for _, d := range lp.Details {
			if strings.Contains(d, "Admission:") {
				found = true
			}
		}
		if !found {
			t.Errorf("list %d: no planted admission date", li)
		}
	}
}

func TestCanada411MissingTown(t *testing.T) {
	site := Generate(mustProfile(t, "canada411"), 42)
	lp := site.Lists[1]
	town := lp.Truth[0].Values[2] // shared town appears as the city field
	missing := 0
	for _, d := range lp.Details {
		if !strings.Contains(d, town) {
			missing++
		}
	}
	if missing != 1 {
		t.Errorf("town missing from %d detail pages, want exactly 1", missing)
	}
	// Page 1 keeps the town everywhere (it gets filtered as
	// appearing on all detail pages).
	lp0 := site.Lists[0]
	town0 := lp0.Truth[0].Values[2]
	for ri, d := range lp0.Details {
		if !strings.Contains(d, town0) {
			t.Errorf("page 1 detail %d unexpectedly missing town", ri)
		}
	}
}

func TestSuperpagesDisjunction(t *testing.T) {
	site := Generate(mustProfile(t, "superpages"), 42)
	found := false
	for _, lp := range site.Lists {
		if strings.Contains(lp.HTML, "street address not available") {
			found = true
		}
	}
	if !found {
		t.Error("no missing-address disjunction rendered (raise MissingFieldRate or reseed)")
	}
}

func TestAmazonDiscountPrices(t *testing.T) {
	site := Generate(mustProfile(t, "amazon"), 42)
	lp := site.Lists[0]
	mismatches := 0
	for ri, tr := range lp.Truth {
		for _, v := range tr.Values {
			if strings.HasPrefix(v, "$") && !strings.Contains(lp.Details[ri], v) {
				mismatches++
			}
		}
	}
	if mismatches < len(lp.Truth)/2 {
		t.Errorf("only %d list prices differ from detail prices", mismatches)
	}
}

func TestIsoDate(t *testing.T) {
	if got := isoDate("03/15/1964"); got != "1964-03-15" {
		t.Errorf("isoDate = %q", got)
	}
	if got := isoDate("garbage"); got != "garbage" {
		t.Errorf("malformed input altered: %q", got)
	}
}

func TestDomainLayoutStrings(t *testing.T) {
	if Books.String() != "books" || PropertyTax.String() != "property-tax" ||
		WhitePages.String() != "white-pages" || Corrections.String() != "corrections" ||
		Domain(99).String() != "unknown" {
		t.Error("domain strings")
	}
	if Grid.String() != "grid" || FreeForm.String() != "free-form" || Numbered.String() != "numbered" {
		t.Error("layout strings")
	}
}

func TestGenerateBySlug(t *testing.T) {
	s, err := GenerateBySlug("ohio", 1)
	if err != nil || s.Profile.Slug != "ohio" {
		t.Errorf("GenerateBySlug: %v %v", s, err)
	}
	if _, err := GenerateBySlug("nope", 1); err == nil {
		t.Error("unknown slug must error")
	}
}

func TestDataHelpers(t *testing.T) {
	g := newGen(3)
	phones := map[string]bool{}
	for i := 0; i < 50; i++ {
		p := g.phone()
		if phones[p] {
			t.Fatalf("duplicate phone %q", p)
		}
		phones[p] = true
	}
	ids := map[string]bool{}
	for i := 0; i < 50; i++ {
		id := g.parcelID()
		if ids[id] {
			t.Fatalf("duplicate parcel %q", id)
		}
		ids[id] = true
	}
	if d := g.dollars(1000, 2000); !strings.HasPrefix(d, "$1,") {
		t.Errorf("dollars formatting: %q", d)
	}
	if dt := g.date(1960, 1961); !strings.HasSuffix(dt, "/1960") {
		t.Errorf("date formatting: %q", dt)
	}
	if len(g.subset(cities, 4)) != 4 {
		t.Error("subset size")
	}
}

func TestItoaPad(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", 1234: "1234", -5: "-5"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q", v, got)
		}
	}
	if pad2(7) != "07" || pad4(42) != "0042" || pad6(123) != "000123" {
		t.Error("padding")
	}
	if pad2(123) != "23" {
		t.Errorf("pad2 overflow: %q", pad2(123))
	}
}

func TestListValues(t *testing.T) {
	r := Record{Fields: []Field{
		{ListValue: "a"}, {ListValue: ""}, {ListValue: "c"},
	}}
	got := r.ListValues()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("ListValues = %v", got)
	}
}

func TestSiteMap(t *testing.T) {
	site := Generate(mustProfile(t, "lee"), 42)
	m := site.SiteMap()
	if _, ok := m["/index.html"]; !ok {
		t.Error("no index page")
	}
	if _, ok := m["/list1.html"]; !ok {
		t.Error("no list1")
	}
	wantPages := 1 // index
	for li, lp := range site.Lists {
		wantPages += 1 + len(lp.Details) + len(lp.Ads)
		if m[fmt.Sprintf("/list%d.html", li+1)] != lp.HTML {
			t.Errorf("list %d body mismatch", li+1)
		}
	}
	if len(m) != wantPages {
		t.Errorf("site map has %d pages, want %d", len(m), wantPages)
	}
	// Every href on the list pages resolves within the map.
	for li := range site.Lists {
		html := m[fmt.Sprintf("/list%d.html", li+1)]
		for _, name := range []string{"_detail1.html", "_ad1.html"} {
			want := fmt.Sprintf("list%d%s", li+1, name)
			if !strings.Contains(html, want) {
				t.Errorf("list %d missing link to %s", li+1, want)
			}
			if _, ok := m["/"+want]; !ok {
				t.Errorf("site map missing %s", want)
			}
		}
	}
}

func TestGenerateVerticalDemo(t *testing.T) {
	site := GenerateVerticalDemo(3, 4)
	if len(site.Lists) != 2 {
		t.Fatalf("%d lists", len(site.Lists))
	}
	for li, lp := range site.Lists {
		if len(lp.Truth) != 4 || len(lp.Details) != 4 {
			t.Errorf("list %d: %d truth, %d details", li, len(lp.Truth), len(lp.Details))
		}
		for ti, tr := range lp.Truth {
			if len(tr.Values) != 4 {
				t.Errorf("list %d record %d: %d values", li, ti, len(tr.Values))
			}
			for _, v := range tr.Values {
				if !strings.Contains(lp.HTML, v) {
					t.Errorf("list %d record %d: value %q not on page", li, ti, v)
				}
				if !strings.Contains(lp.Details[ti], v) {
					t.Errorf("list %d record %d: value %q not on its detail page", li, ti, v)
				}
			}
		}
	}
	// Deterministic.
	if GenerateVerticalDemo(3, 4).Lists[0].HTML != site.Lists[0].HTML {
		t.Error("vertical demo not deterministic")
	}
}
