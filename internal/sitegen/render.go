package sitegen

import (
	"fmt"
	"strings"
)

// navLinks renders the Next/Previous anchors connecting the result
// pages (every real results site has them; §6.3 proposes following
// "Next" to collect sample pages automatically).
func navLinks(b *strings.Builder, pageIdx, numPages int) {
	b.WriteString("<p>")
	if pageIdx > 0 {
		fmt.Fprintf(b, `<a href="list%d.html">Previous</a> `, pageIdx)
	}
	if pageIdx+1 < numPages {
		fmt.Fprintf(b, `<a href="list%d.html">Next</a>`, pageIdx+2)
	}
	b.WriteString("</p>\n")
}

// renderListPage produces a list page's HTML plus per-record ground
// truth spans.
func renderListPage(p Profile, g *gen, pageIdx int, records []Record) ListPage {
	var b strings.Builder
	lp := ListPage{}

	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n", p.Name)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", p.Name)
	if p.VolatileHeader {
		// No stable text survives across pages: the per-page promo
		// content is unique, so template induction finds no usable
		// skeleton (the paper's "page template problem").
		fmt.Fprintf(&b, "<p>%s</p>\n", g.promoLine())
		fmt.Fprintf(&b, "<p>%s %d %s %s</p>\n", g.promoWord(), len(records), g.promoWord(), g.promoWord())
	} else {
		b.WriteString("<p>Search Results Below - Refine Query | Advanced Options | Saved Lists</p>\n")
		fmt.Fprintf(&b, "<p>Displaying %d Matching Listings</p>\n", len(records))
	}

	if p.ListJunk && len(records) >= 2 {
		// Sponsored content above the table that echoes record data:
		// harmless when the table slot is found, poisonous under the
		// whole-page fallback (the books/Yahoo pathology).
		// Sponsored wording churns per page (campaign ids, rotating
		// copy), so it never becomes template text.
		switch p.Domain {
		case Books:
			fmt.Fprintf(&b, "<p>Customers also bought <i>%s</i> %s %d</p>\n", records[1].Fields[0].DetailValue, g.promoWord(), g.intn(100000))
		default:
			fmt.Fprintf(&b, "<p>Sponsored %d - find neighbors of <i>%s</i> %s</p>\n", g.intn(100000), records[1].Fields[0].DetailValue, g.promoWord())
		}
	}

	switch p.Layout {
	case Grid:
		renderGrid(&b, &lp, p, pageIdx, records)
	case FreeForm:
		renderFreeForm(&b, &lp, pageIdx, records)
	case Numbered:
		renderNumbered(&b, &lp, p, pageIdx, records)
	}

	if p.ListJunk && len(records) >= 1 {
		switch p.Domain {
		case Books:
			fmt.Fprintf(&b, "<p>Readers who enjoyed <i>%s</i> wrote %d reviews %s</p>\n", records[0].Fields[0].DetailValue, g.intn(100000), g.promoWord())
		default:
			fmt.Fprintf(&b, "<p>Maps %d near <i>%s</i> %s provided</p>\n", g.intn(100000), records[0].Fields[2].DetailValue, g.promoWord())
		}
	}

	// Advertisement links sit next to the record links — the
	// extraneous links a crawler must classify away (§6.1).
	for a := 0; a < adsPerList; a++ {
		fmt.Fprintf(&b, `<p><a href="%s">Sponsored Link</a></p>`+"\n", adHref(pageIdx, a))
	}

	navLinks(&b, pageIdx, len(p.RecordsPerList))
	if p.VolatileHeader {
		fmt.Fprintf(&b, "<p>%s</p>\n", g.promoLine())
		fmt.Fprintf(&b, "<p>%s</p>\n", p.Name)
	} else {
		fmt.Fprintf(&b, "<p>Copyright 2004 %s Inc - Terms Privacy Contact Help About</p>\n", p.Name)
	}
	b.WriteString("</body></html>\n")

	lp.HTML = b.String()
	for i := range records {
		lp.Truth[i].Values = records[i].ListValues()
	}
	return lp
}

// beginRecord/endRecord capture ground-truth byte spans while rendering.
func beginRecord(b *strings.Builder, lp *ListPage) {
	lp.Truth = append(lp.Truth, TruthRecord{Start: b.Len()})
}

func endRecord(b *strings.Builder, lp *ListPage) {
	lp.Truth[len(lp.Truth)-1].End = b.Len()
}

// detailHref names the detail page linked from record ri of list page
// pageIdx. The scheme matches the file names cmd/sitegen writes, so a
// rendered corpus is directly crawlable from disk.
func detailHref(pageIdx, ri int) string {
	return fmt.Sprintf("list%d_detail%d.html", pageIdx+1, ri+1)
}

// adHref names an advertisement page linked from list page pageIdx.
func adHref(pageIdx, ai int) string {
	return fmt.Sprintf("list%d_ad%d.html", pageIdx+1, ai+1)
}

// renderGrid renders a bordered table with a header row of column
// labels, one <tr> per record (the property-tax and Sprint style).
func renderGrid(b *strings.Builder, lp *ListPage, p Profile, pageIdx int, records []Record) {
	b.WriteString(`<table border="1">` + "\n<tr>")
	if len(records) > 0 {
		for _, f := range records[0].Fields {
			fmt.Fprintf(b, "<th>%s</th>", strings.TrimSuffix(f.Label, ":"))
		}
	}
	b.WriteString("</tr>\n")
	for i := range records {
		beginRecord(b, lp)
		b.WriteString("<tr>")
		for fi, f := range records[i].Fields {
			v := f.ListValue
			if v == "" {
				v = "&nbsp;"
			}
			if fi == 0 {
				fmt.Fprintf(b, `<td><a href="%s">%s</a></td>`, detailHref(pageIdx, i), v)
			} else {
				fmt.Fprintf(b, "<td>%s</td>", v)
			}
		}
		b.WriteString("</tr>\n")
		endRecord(b, lp)
	}
	b.WriteString("</table>\n")
}

// renderFreeForm renders per-record blocks separated by <hr> (the
// white-pages style), with the Superpages missing-address disjunction:
// a gray note with different markup replaces an absent address.
func renderFreeForm(b *strings.Builder, lp *ListPage, pageIdx int, records []Record) {
	for i := range records {
		beginRecord(b, lp)
		b.WriteString(`<div class="rec">`)
		fields := records[i].Fields
		fmt.Fprintf(b, "<b>%s</b><br>", fields[0].ListValue)
		if fields[1].ListValue != "" {
			fmt.Fprintf(b, "%s<br>", fields[1].ListValue)
		} else {
			b.WriteString(`<font color="gray">street address not available</font><br>`)
		}
		fmt.Fprintf(b, "%s<br>", fields[2].ListValue)
		fmt.Fprintf(b, `%s <a href="%s">More Info</a>`, fields[3].ListValue, detailHref(pageIdx, i))
		b.WriteString("</div>\n")
		endRecord(b, lp)
		b.WriteString("<hr>\n")
	}
}

// renderNumbered renders an enumerated list with literal "1." prefixes —
// the layout whose numbers become spurious template tokens (Amazon,
// BNBooks, Minnesota).
func renderNumbered(b *strings.Builder, lp *ListPage, p Profile, pageIdx int, records []Record) {
	base := 0
	if p.ContinuousNumbering {
		for pi := 0; pi < pageIdx; pi++ {
			base += p.RecordsPerList[pi]
		}
	}
	for i := range records {
		// The entry number is list-page presentation, not record data:
		// the ground-truth span starts after it (a human judge scores
		// the record's fields, not its ordinal).
		fmt.Fprintf(b, "<p><b>%d.</b> ", base+i+1)
		beginRecord(b, lp)
		fields := records[i].Fields
		switch p.Domain {
		case Books:
			fmt.Fprintf(b, `<a href="%s">%s</a> by <i>%s</i><br>`, detailHref(pageIdx, i), fields[0].ListValue, fields[1].ListValue)
			fmt.Fprintf(b, "%s", fields[2].ListValue)
			if fields[3].ListValue != "" {
				fmt.Fprintf(b, " <i>%s</i>", fields[3].ListValue)
			}
		default: // corrections style
			fmt.Fprintf(b, `<a href="%s">%s</a> <b>%s</b><br>`, detailHref(pageIdx, i), fields[0].ListValue, fields[1].ListValue)
			rest := make([]string, 0, 3)
			for _, f := range fields[2:] {
				if f.ListValue != "" {
					rest = append(rest, f.ListValue)
				}
			}
			b.WriteString(strings.Join(rest, " | "))
		}
		b.WriteString("</p>\n")
		endRecord(b, lp)
	}
}

// renderDetailPage renders one record's detail page. All detail pages of
// a site share a fixed template, so page boilerplate appears on every
// detail page and is filtered out of the analysis (§3.2).
func renderDetailPage(p Profile, g *gen, r *Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s Record Detail</title></head><body>\n", p.Name)
	fmt.Fprintf(&b, "<h1>%s</h1>\n<h2>Full Record Information</h2>\n<table>\n", p.Name)
	for _, f := range r.Fields {
		if f.DetailValue == "" {
			continue
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td></tr>\n", f.Label, f.DetailValue)
	}
	b.WriteString("</table>\n")
	if len(r.HistoryTitles) > 0 {
		b.WriteString("<h3>Recently Viewed Items</h3>\n<ul>\n")
		for _, t := range r.HistoryTitles {
			fmt.Fprintf(&b, "<li>%s</li>\n", t)
		}
		b.WriteString("</ul>\n")
	}
	if r.ConfoundNote != "" {
		fmt.Fprintf(&b, "<p>%s</p>\n", r.ConfoundNote)
	}
	b.WriteString("<p>Maps Directions Printer Friendly Version Email This Listing</p>\n")
	fmt.Fprintf(&b, "<p>Copyright 2004 %s Inc - Terms Privacy Contact Help About</p>\n", p.Name)
	b.WriteString("</body></html>\n")
	return b.String()
}

// renderAdPage renders an advertisement page. Each ad has its own
// one-off structure and vocabulary, so ads neither resemble the site's
// detail pages nor each other — the property §6.1's classification
// approach relies on.
func renderAdPage(g *gen) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s %d</title></head><body>\n", g.promoWord(), g.intn(100000))
	n := 2 + g.intn(4)
	for i := 0; i < n; i++ {
		switch g.intn(3) {
		case 0:
			fmt.Fprintf(&b, "<h%d>%s</h%d>\n", 1+g.intn(3), g.promoLine(), 1+g.intn(3))
		case 1:
			fmt.Fprintf(&b, "<div><i>%s %s</i> %d</div>\n", g.promoWord(), g.promoWord(), g.intn(100000))
		default:
			fmt.Fprintf(&b, "<p>%s</p>\n", g.promoLine())
		}
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// promoLine emits a page-unique sponsored sentence (volatile headers).
func (g *gen) promoLine() string {
	words := make([]string, 0, 8)
	for k := 0; k < 4; k++ {
		words = append(words, g.promoWord(), itoa(10000+g.intn(90000)))
	}
	return strings.Join(words, " ")
}

var promoWords = []string{
	"Save", "Deals", "Offer", "Bonus", "Win", "Free", "Limited", "Special",
	"Discount", "Promo", "Today", "Exclusive", "Hot", "Featured", "Extra",
}

func (g *gen) promoWord() string { return g.pick(promoWords) }
