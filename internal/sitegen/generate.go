package sitegen

import (
	"fmt"
	"strings"
)

// Field is one attribute of a record as it appears in the two views.
type Field struct {
	// Label is the detail-page caption ("Owner:", "Phone:").
	Label string
	// ListValue is the string shown on the list page ("" = absent).
	ListValue string
	// DetailValue is the string shown on the detail page ("" = absent).
	DetailValue string
}

// Record is one generated database record plus its injected pathologies.
type Record struct {
	Fields []Field
	// HistoryTitles are earlier records' titles shown on this record's
	// detail page (Amazon's browsing-history pollution).
	HistoryTitles []string
	// ConfoundNote is an unrelated-context sentence planted on this
	// record's detail page (Michigan's "Parole" confounder).
	ConfoundNote string
}

// ListValues returns the record's non-empty list-page field values in
// display order (the scoring ground truth).
func (r *Record) ListValues() []string {
	var out []string
	for _, f := range r.Fields {
		if f.ListValue != "" {
			out = append(out, f.ListValue)
		}
	}
	return out
}

// TruthRecord is the scoring ground truth for one record on a list page.
type TruthRecord struct {
	// Values are the record's list-page field values in order.
	Values []string
	// Start and End are the byte offsets of the record's row in the
	// list page's HTML (half-open).
	Start, End int
}

// ListPage is one generated list page with its linked detail pages and
// ground truth.
type ListPage struct {
	// HTML is the list page source.
	HTML string
	// Details holds one detail page per record, in link order.
	Details []string
	// Ads holds advertisement pages also linked from the list page —
	// the extraneous links §6.1 says a real crawl must filter out.
	// They share no template with the detail pages.
	Ads []string
	// Truth holds one entry per record, in display order.
	Truth []TruthRecord
}

// adsPerList is the number of advertisement pages linked from each
// list page.
const adsPerList = 3

// Site is a fully generated synthetic site.
type Site struct {
	Profile Profile
	Seed    int64
	Lists   []ListPage
}

// SiteMap renders the site as a URL→HTML map rooted at "/" — an
// in-memory web site a crawler can walk. URLs follow the same naming
// scheme as the hrefs in the rendered pages (and the files cmd/sitegen
// writes): /listN.html, /listN_detailM.html, /listN_adA.html, plus an
// /index.html linking to the list pages.
func (s *Site) SiteMap() map[string]string {
	m := map[string]string{}
	var idx strings.Builder
	fmt.Fprintf(&idx, "<html><head><title>%s</title></head><body><h1>%s</h1><ul>\n", s.Profile.Name, s.Profile.Name)
	for li, lp := range s.Lists {
		listName := fmt.Sprintf("list%d.html", li+1)
		m["/"+listName] = lp.HTML
		fmt.Fprintf(&idx, `<li><a href="%s">Results Page %d</a></li>`+"\n", listName, li+1)
		for di, d := range lp.Details {
			m["/"+detailHref(li, di)] = d
		}
		for ai, a := range lp.Ads {
			m["/"+adHref(li, ai)] = a
		}
	}
	idx.WriteString("</ul></body></html>\n")
	m["/index.html"] = idx.String()
	return m
}

// Generate builds the synthetic site for a profile. The same (profile,
// seed) pair always yields byte-identical pages.
func Generate(p Profile, seed int64) *Site {
	g := newGen(seed*1000003 + int64(len(p.Slug))*7919 + int64(p.Slug[0]))
	site := &Site{Profile: p, Seed: seed}
	for pageIdx := 0; pageIdx < len(p.RecordsPerList); pageIdx++ {
		n := p.RecordsPerList[pageIdx]
		records := generateRecords(p, g, pageIdx, n)
		lp := renderListPage(p, g, pageIdx, records)
		for ri := range records {
			lp.Details = append(lp.Details, renderDetailPage(p, g, &records[ri]))
		}
		for a := 0; a < adsPerList; a++ {
			lp.Ads = append(lp.Ads, renderAdPage(g))
		}
		site.Lists = append(site.Lists, lp)
	}
	return site
}

// GenerateBySlug is a convenience wrapper.
func GenerateBySlug(slug string, seed int64) (*Site, error) {
	p, err := ProfileBySlug(slug)
	if err != nil {
		return nil, err
	}
	return Generate(p, seed), nil
}

// generateRecords builds the records of one list page, applying the
// profile's domain field schema and its pathologies.
func generateRecords(p Profile, g *gen, pageIdx, n int) []Record {
	records := make([]Record, n)
	sharedTown := g.cityState()
	for i := range records {
		switch p.Domain {
		case WhitePages:
			records[i] = whitePagesRecord(p, g, sharedTown)
			if p.DuplicateRate > 0 && i > 0 && g.prob(p.DuplicateRate) {
				// The Superpages "John Smith" case: same person, two
				// addresses — name and phone identical.
				records[i].Fields[0] = records[i-1].Fields[0]
				records[i].Fields[3] = records[i-1].Fields[3]
			}
		case Books:
			records[i] = bookRecord(p, g)
		case PropertyTax:
			records[i] = taxRecord(g)
		case Corrections:
			records[i] = correctionsRecord(p, g)
		}
	}

	// Pathologies that relate records to each other.
	if p.BrowsingHistory {
		// The Amazon browsing-history box reflects the *download*
		// order, not the list order: each detail page shows titles of
		// 2–3 arbitrary other records, earlier or later. Title extracts
		// then claim detail pages on both sides of their true record,
		// which is what "completely derailed the CSP algorithm" (§6.3).
		for i := 0; i < n; i++ {
			seen := map[int]bool{i: true}
			for len(records[i].HistoryTitles) < 2+g.intn(2) {
				k := g.intn(n)
				if seen[k] {
					continue
				}
				seen[k] = true
				records[i].HistoryTitles = append(records[i].HistoryTitles, records[k].Fields[0].DetailValue)
			}
		}
	}
	if p.PollutionRate > 0 && n >= 2 {
		// Rate-controlled cross-record pollution: a record's detail
		// page shows another record's leading field, so that extract's
		// D set points at the wrong record too.
		for i := range records {
			if !g.prob(p.PollutionRate) {
				continue
			}
			k := g.intn(n)
			if k == i {
				k = (k + 1) % n
			}
			records[i].HistoryTitles = append(records[i].HistoryTitles, records[k].Fields[0].DetailValue)
		}
	}
	if p.StatusMismatch && pageIdx == 1 && n >= 4 {
		// Record m is a parolee: "Parole" on the list page, "Parolee"
		// on its detail page — and the bare word "Parole" appears in an
		// unrelated context on a different record's detail page.
		m := 1 + g.intn(n/2)
		records[m].Fields[2].ListValue = "Parole"
		records[m].Fields[2].DetailValue = "Parolee"
		other := (m + 2 + g.intn(n-3)) % n
		if other == m {
			other = (other + 1) % n
		}
		records[other].ConfoundNote = "Eligible for Parole review hearing"
	}
	if p.DateConfound && n >= 4 {
		// Minnesota-style value inconsistency: one record's birth date
		// is formatted differently on its own detail page (so exact
		// matching fails), while the list-page form of the date appears
		// as an admission date on an unrelated record's detail page.
		// The extract's only supporting page is then the wrong record —
		// an unsatisfiable configuration for the strict CSP.
		i := g.intn(n)
		j := (i + 2 + g.intn(n-3)) % n
		if j == i {
			j = (j + 1) % n
		}
		dob := records[i].Fields[4]
		records[i].Fields[4].DetailValue = isoDate(dob.DetailValue)
		records[j].Fields = append(records[j].Fields, Field{Label: "Admission:", DetailValue: dob.ListValue})
	}
	if p.MissingTownDetail && pageIdx == 1 && n >= 2 {
		// One record's detail page omits the (shared) town even though
		// the list page shows it (Canada411).
		k := g.intn(n)
		records[k].Fields[2].DetailValue = ""
	}
	return records
}

// whitePagesRecord: Name, Address, City/State, Phone.
func whitePagesRecord(p Profile, g *gen, sharedTown string) Record {
	town := g.cityState()
	if p.SharedTown {
		town = sharedTown
	}
	addr := g.address()
	listAddr := addr
	if g.prob(p.MissingFieldRate) {
		// The Superpages disjunction: the list shows a gray
		// "street address not available" note instead of an address;
		// the detail page simply omits the field.
		addr = ""
		listAddr = ""
	}
	name := g.personName()
	phone := g.phone()
	return Record{Fields: []Field{
		{Label: "Name:", ListValue: name, DetailValue: name},
		{Label: "Address:", ListValue: listAddr, DetailValue: addr},
		{Label: "City:", ListValue: town, DetailValue: town},
		{Label: "Phone:", ListValue: phone, DetailValue: phone},
	}}
}

// bookRecord: Title, Author(s), Price, Format.
func bookRecord(p Profile, g *gen) Record {
	title := g.bookTitle()
	author := g.personName()
	listAuthor, detailAuthor := author, author
	if p.EtAl && g.prob(0.3) {
		// Multi-author work: abbreviated on the list page, spelled out
		// on the detail page (Amazon's "et al" case).
		full := author + ", " + g.personName() + ", " + g.personName()
		listAuthor = author + ", et al"
		detailAuthor = full
	}
	price := g.price()
	listPrice := price
	if p.DiscountPrices {
		// The list page advertises a discount, so the two views never
		// agree on the price string.
		listPrice = g.price()
	}
	format := g.pick(bookFormats)
	listFormat := format
	if g.prob(p.MissingFieldRate) {
		listFormat = ""
	}
	return Record{Fields: []Field{
		{Label: "Title:", ListValue: title, DetailValue: title},
		{Label: "Author:", ListValue: listAuthor, DetailValue: detailAuthor},
		{Label: "Price:", ListValue: listPrice, DetailValue: price},
		{Label: "Format:", ListValue: listFormat, DetailValue: format},
	}}
}

// taxRecord: Parcel, Owner, Property address, Assessed value, Annual tax.
func taxRecord(g *gen) Record {
	parcel := g.parcelID()
	owner := g.personName()
	addr := g.address()
	assessed := g.dollars(40000, 900000)
	tax := g.dollars(800, 20000)
	return Record{Fields: []Field{
		{Label: "Parcel:", ListValue: parcel, DetailValue: parcel},
		{Label: "Owner:", ListValue: owner, DetailValue: owner},
		{Label: "Property:", ListValue: addr, DetailValue: addr},
		{Label: "Assessed:", ListValue: assessed, DetailValue: assessed},
		{Label: "Tax:", ListValue: tax, DetailValue: tax},
	}}
}

// correctionsRecord: DOC number, Name, Status, Facility, Birth date.
func correctionsRecord(p Profile, g *gen) Record {
	id := g.inmateID()
	name := g.personName()
	listName := name
	if p.CaseMismatchName {
		// Minnesota's case mismatch: the list page is ALL-CAPS, the
		// detail page is capitalized — exact matching fails.
		listName = strings.ToUpper(name)
	}
	status := g.pick(inmateStatuses)
	if p.StatusMismatch && status == "Parole" {
		// Keep "Parole" exclusive to the planted mismatch record so
		// the confounder analysis stays exact.
		status = "Probation"
	}
	facility := g.pick(g.facilityPool)
	listFacility := facility
	if g.prob(p.MissingFieldRate) {
		listFacility = ""
	}
	dob := g.date(1950, 1986)
	return Record{Fields: []Field{
		{Label: "Number:", ListValue: id, DetailValue: id},
		{Label: "Name:", ListValue: listName, DetailValue: name},
		{Label: "Status:", ListValue: status, DetailValue: status},
		{Label: "Facility:", ListValue: listFacility, DetailValue: facility},
		{Label: "DOB:", ListValue: dob, DetailValue: dob},
	}}
}

// isoDate converts "MM/DD/YYYY" to "YYYY-MM-DD" (the alternate detail
// formatting used by the DateConfound pathology). Malformed input is
// returned unchanged.
func isoDate(mdy string) string {
	parts := strings.Split(mdy, "/")
	if len(parts) != 3 {
		return mdy
	}
	return parts[2] + "-" + parts[0] + "-" + parts[1]
}
