package csp

import (
	"math/rand"
	"testing"
)

// superpagesInput reproduces the paper's Table 1 observation matrix:
// 11 extracts, 3 records. Record indices are 0-based here (r1→0).
func superpagesInput() SegmentInput {
	return SegmentInput{
		NumRecords: 3,
		Candidates: [][]int{
			{0, 1}, // E1  John Smith
			{0},    // E2  221 Washington
			{0},    // E3  New Holland
			{0, 1}, // E4  (740) 335-5555
			{0, 1}, // E5  John Smith
			{1},    // E6  221R Washington
			{1},    // E7  Washington
			{0, 1}, // E8  (740) 335-5555
			{2},    // E9  George W. Smith
			{2},    // E10 Findlay, OH
			{2},    // E11 (419) 423-1212
		},
		// Table 3: on page r1, E1/E5 share position 730 and E4/E8 share
		// position 846; on page r2, E1/E5 share 536 and E4/E8 share 578.
		PositionGroups: map[int][][]int{
			0: {{0, 4}, {3, 7}},
			1: {{0, 4}, {3, 7}},
		},
	}
}

// wantSuperpages is the paper's Table 2 assignment.
var wantSuperpages = []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2}

func TestEncodeSuperpagesStructure(t *testing.T) {
	in := superpagesInput()
	enc := Encode(in, Strict)
	if got := enc.NumAssignVars(); got != 15 {
		t.Errorf("assignment vars = %d, want 15 (11 extracts, 4 with |D|=2)", got)
	}
	// Records 0 and 1 both have split candidate runs? Record 0's
	// candidates are E1..E5,E8 (gap at E6,E7): two blocks. Record 1's
	// candidates are E1,E4,E5..E8 (gap at E2,E3): two blocks.
	if enc.NumBlockVars() != 4 {
		t.Errorf("block vars = %d, want 4 (two blocks for r1, two for r2)", enc.NumBlockVars())
	}
	tags := map[string]int{}
	for _, c := range enc.Problem.Constraints {
		tags[c.Tag]++
	}
	if tags["uniq"] != 11 {
		t.Errorf("uniqueness constraints = %d, want 11", tags["uniq"])
	}
	if tags["pos"] != 4 {
		t.Errorf("position constraints = %d, want 4", tags["pos"])
	}
	if tags["consec"] == 0 {
		t.Error("no consecutiveness constraints")
	}
}

func TestSolveSuperpagesReproducesTable2(t *testing.T) {
	in := superpagesInput()
	for seed := int64(0); seed < 3; seed++ {
		res := solveSegmentation(in, SolveParams{WSAT: WSATParams{Seed: seed}, ExactCheck: true})
		if res.Status != Solved {
			t.Fatalf("seed %d: status %v", seed, res.Status)
		}
		for i, want := range wantSuperpages {
			if res.Records[i] != want {
				t.Errorf("seed %d: E%d → r%d, want r%d (full: %v)", seed, i+1, res.Records[i]+1, want+1, res.Records)
				break
			}
		}
	}
}

func TestSolveWithoutPositionConstraints(t *testing.T) {
	// Even without Table 3, consecutiveness + uniqueness forces the
	// Table 2 segmentation (the paper argues this in §3.3).
	in := superpagesInput()
	in.PositionGroups = nil
	res := solveSegmentation(in, SolveParams{WSAT: WSATParams{Seed: 5}, ExactCheck: true})
	if res.Status != Solved {
		t.Fatalf("status %v", res.Status)
	}
	for i, want := range wantSuperpages {
		if res.Records[i] != want {
			t.Fatalf("E%d → r%d, want r%d (full: %v)", i+1, res.Records[i]+1, want+1, res.Records)
		}
	}
}

func TestSolveDirtyDataRelaxes(t *testing.T) {
	// Michigan-style inconsistency: an extract (say the status of
	// record 2) was only observed on an unrelated detail page r0,
	// while its neighbors pin the segment to r2 — strict constraints
	// become unsatisfiable, the ladder must produce a partial
	// assignment instead of failing.
	in := SegmentInput{
		NumRecords: 3,
		Candidates: [][]int{
			{0}, {0}, // record 0's fields
			{1}, {1}, // record 1's fields
			{2}, {0}, {2}, // record 2: middle field polluted → claims r0
		},
	}
	res := solveSegmentation(in, SolveParams{WSAT: WSATParams{Seed: 1}, ExactCheck: true})
	if res.Status != SolvedRelaxed {
		t.Fatalf("status = %v, want SolvedRelaxed", res.Status)
	}
	if !res.Relaxed {
		t.Error("Relaxed flag not set")
	}
	// The polluted extract must be left unassigned; the clean ones
	// keep their records.
	if res.Records[5] != -1 {
		t.Errorf("polluted extract assigned to %d, want unassigned", res.Records[5])
	}
	for i, want := range []int{0, 0, 1, 1} {
		if res.Records[i] != want {
			t.Errorf("extract %d → %d, want %d", i, res.Records[i], want)
		}
	}
	// Extracts 4 and 6 straddle the polluted extract 5: under the
	// paper's consecutiveness definition only one of them can join r2
	// (the other stays unassigned in the partial solution).
	assigned := 0
	for _, i := range []int{4, 6} {
		switch res.Records[i] {
		case 2:
			assigned++
		case -1:
		default:
			t.Errorf("extract %d → %d, want 2 or unassigned", i, res.Records[i])
		}
	}
	if assigned != 1 {
		t.Errorf("extracts {4,6}: %d assigned to r2, want exactly 1 (consecutiveness)", assigned)
	}
}

func TestSolveUniquenessInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		in := randomCleanInstance(rng)
		res := solveSegmentation(in, SolveParams{WSAT: WSATParams{Seed: int64(trial)}, ExactCheck: true})
		if res.Status == Failed {
			t.Fatalf("trial %d: failed on clean instance", trial)
		}
		checkSegmentInvariants(t, in, res)
	}
}

// randomCleanInstance generates a noiseless segmentation instance:
// records laid out in order, each extract observed on its own record's
// page, with some extracts shared across a random subset of records.
func randomCleanInstance(rng *rand.Rand) SegmentInput {
	numRecords := 2 + rng.Intn(6)
	var cands [][]int
	for r := 0; r < numRecords; r++ {
		fields := 2 + rng.Intn(4)
		for f := 0; f < fields; f++ {
			d := []int{r}
			// A shared value (same name/phone) may also occur on a
			// later record's page.
			if rng.Intn(4) == 0 && r+1 < numRecords {
				d = append(d, r+1)
			}
			cands = append(cands, d)
		}
	}
	return SegmentInput{NumRecords: numRecords, Candidates: cands}
}

// checkSegmentInvariants verifies the §4.1 constraints on a result.
func checkSegmentInvariants(t *testing.T, in SegmentInput, res *SegmentResult) {
	t.Helper()
	// Uniqueness: each extract at most one record, and the record must
	// be a candidate.
	for i, r := range res.Records {
		if r < 0 {
			continue
		}
		if !containsInt(in.Candidates[i], r) {
			t.Errorf("extract %d assigned to non-candidate record %d (D=%v)", i, r, in.Candidates[i])
		}
	}
	// Consecutiveness: assigned extracts of each record form a
	// contiguous run among assigned positions.
	byRecord := map[int][]int{}
	for i, r := range res.Records {
		if r >= 0 {
			byRecord[r] = append(byRecord[r], i)
		}
	}
	for r, idxs := range byRecord {
		for k := 1; k < len(idxs); k++ {
			for n := idxs[k-1] + 1; n < idxs[k]; n++ {
				if res.Records[n] != -1 && res.Records[n] != r {
					t.Errorf("record %d not consecutive: extract %d (→%d) sits between %d and %d", r, n, res.Records[n], idxs[k-1], idxs[k])
				}
			}
		}
	}
}

func TestCandidateBlocks(t *testing.T) {
	cands := [][]int{{0}, {0, 1}, {2}, {0}, {0}}
	blocks := candidateBlocks(cands, 0)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v", blocks)
	}
	if len(blocks[0]) != 2 || blocks[0][0] != 0 || blocks[0][1] != 1 {
		t.Errorf("block 0 = %v", blocks[0])
	}
	if len(blocks[1]) != 2 || blocks[1][0] != 3 {
		t.Errorf("block 1 = %v", blocks[1])
	}
	if got := candidateBlocks(cands, 9); got != nil {
		t.Errorf("no-candidate record: %v", got)
	}
}

func TestConsecutivenessCutsDetectHoles(t *testing.T) {
	in := SegmentInput{
		NumRecords: 1,
		Candidates: [][]int{{0}, {0}, {0}},
	}
	enc := Encode(in, Relaxed)
	// Simulate a holey assignment: extracts 0 and 2 in record 0,
	// extract 1 unassigned.
	cuts := enc.ConsecutivenessCuts([]int{0, -1, 0})
	if len(cuts) != 1 {
		t.Fatalf("cuts = %v", cuts)
	}
	if cuts[0].Op != LE || cuts[0].RHS != 1 || len(cuts[0].Terms) != 3 {
		t.Errorf("cut shape: %v", cuts[0])
	}
	if got := enc.ConsecutivenessCuts([]int{0, 0, 0}); len(got) != 0 {
		t.Errorf("contiguous assignment produced cuts: %v", got)
	}
}

func TestDecodeUnassigned(t *testing.T) {
	in := SegmentInput{NumRecords: 2, Candidates: [][]int{{0}, {1}}}
	enc := Encode(in, Relaxed)
	assign := make([]bool, enc.Problem.NumVars())
	recs := enc.Decode(assign)
	if recs[0] != -1 || recs[1] != -1 {
		t.Errorf("all-false assignment decoded to %v", recs)
	}
}

func TestStatusAndLevelStrings(t *testing.T) {
	if Solved.String() != "solved" || SolvedRelaxed.String() != "solved-relaxed" || Failed.String() != "failed" {
		t.Error("status strings")
	}
	if Strict.String() != "strict" || Relaxed.String() != "relaxed" {
		t.Error("level strings")
	}
}

func TestSolveEmptyInstance(t *testing.T) {
	res := solveSegmentation(SegmentInput{NumRecords: 0}, SolveParams{})
	if res.Status != Solved || len(res.Records) != 0 {
		t.Errorf("empty instance: %+v", res)
	}
}

// Property: Encode's structure is sound for arbitrary instances — every
// assignment variable appears in exactly one uniqueness constraint, and
// Decode respects candidate sets for any assignment the solver could
// produce.
func TestEncodeStructureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		numRecords := 1 + rng.Intn(5)
		n := rng.Intn(12)
		in := SegmentInput{NumRecords: numRecords}
		for i := 0; i < n; i++ {
			var d []int
			for r := 0; r < numRecords; r++ {
				if rng.Intn(3) == 0 {
					d = append(d, r)
				}
			}
			in.Candidates = append(in.Candidates, d)
		}
		for _, level := range []RelaxLevel{Strict, Relaxed} {
			enc := Encode(in, level)
			// Count uniqueness memberships per assignment variable.
			seen := make(map[int]int)
			for _, c := range enc.Problem.Constraints {
				if c.Tag != "uniq" {
					continue
				}
				for _, term := range c.Terms {
					seen[term.Var]++
				}
			}
			for i := range in.Candidates {
				for j, v := range enc.varOf[i] {
					if seen[v] != 1 {
						t.Fatalf("trial %d level %v: x[%d,%d] in %d uniqueness constraints", trial, level, i, j, seen[v])
					}
				}
			}
			// Decode of a random assignment only yields candidates.
			assign := make([]bool, enc.Problem.NumVars())
			for k := range assign {
				assign[k] = rng.Intn(2) == 0
			}
			for i, r := range enc.Decode(assign) {
				if r >= 0 && !containsInt(in.Candidates[i], r) {
					t.Fatalf("trial %d: decoded non-candidate record %d for extract %d", trial, r, i)
				}
			}
		}
	}
}
