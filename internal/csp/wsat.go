package csp

import (
	"context"
	"math/rand"
)

// WSATParams tunes the local-search solver. Zero values select sensible
// defaults via (*WSATParams).withDefaults.
type WSATParams struct {
	// MaxFlips bounds the number of variable flips per restart.
	MaxFlips int
	// Restarts is the number of independent restarts.
	Restarts int
	// Noise is the probability of a random walk move instead of a
	// greedy one, in [0,1]. Walser recommends small non-zero noise.
	Noise float64
	// TabuTenure is the number of flips during which a just-flipped
	// variable may not be flipped back (0 disables tabu).
	TabuTenure int
	// HardWeight is the penalty multiplier for hard-constraint
	// violations relative to soft weights.
	HardWeight int
	// Seed seeds the solver's private RNG; runs are deterministic for
	// a fixed seed.
	Seed int64
	// DynamicWeights enables clause-weighting escape from local minima
	// (in the spirit of Walser's penalty adaptation): when the search
	// stagnates, the effective weight of currently violated hard
	// constraints grows, reshaping the landscape until a descent
	// direction opens. Weights reset at each restart.
	DynamicWeights bool
	// StagnationWindow is the number of flips without improvement that
	// triggers a weight bump (default 64; DynamicWeights only).
	StagnationWindow int
}

func (p WSATParams) withDefaults(problemSize int) WSATParams {
	if p.MaxFlips == 0 {
		p.MaxFlips = 2000 + 200*problemSize
	}
	if p.Restarts == 0 {
		p.Restarts = 8
	}
	if p.Noise <= 0 {
		p.Noise = 0.1
	}
	if p.TabuTenure == 0 {
		p.TabuTenure = 2
	}
	if p.HardWeight == 0 {
		p.HardWeight = 100
	}
	if p.StagnationWindow == 0 {
		p.StagnationWindow = 64
	}
	return p
}

// Solution is the outcome of a solver run.
type Solution struct {
	// Assign is the best assignment found.
	Assign []bool
	// Feasible is true when Assign satisfies every hard constraint.
	Feasible bool
	// HardViolation and SoftPenalty describe Assign's quality.
	HardViolation int
	SoftPenalty   int
	// Flips counts the total flips performed across restarts.
	Flips int
	// Restart records which restart produced the best assignment.
	Restart int
	// Restarts counts the restarts actually executed (the loop exits
	// early once a perfect assignment is found).
	Restarts int
}

// Score is the combined objective the search minimizes.
func (s *Solution) score(hardWeight int) int {
	return s.HardViolation*hardWeight + s.SoftPenalty
}

// SolveWSATContext runs a WSAT(OIP)-style local search: repeatedly
// pick an unsatisfied constraint and flip one of its variables,
// choosing the flip that most reduces the combined (hard-weighted)
// violation score, with probabilistic noise moves and a short tabu
// list, restarting from fresh random assignments. It returns the best
// assignment found; the caller decides what to do with an infeasible
// best (relax constraints, per §6.3). Cancellation is checked only at
// restart boundaries: an uncancelled run performs exactly the same
// flip sequence regardless of deadline (results stay deterministic
// for a fixed seed), while a cancelled one returns ctx.Err() within
// one restart's worth of flips.
func SolveWSATContext(ctx context.Context, p *Problem, params WSATParams) (*Solution, error) {
	params = params.withDefaults(p.NumVars())
	rng := rand.New(rand.NewSource(params.Seed))
	st := newSearchState(p, params)

	best := &Solution{Assign: make([]bool, p.NumVars()), HardViolation: 1 << 30, SoftPenalty: 1 << 30}
	totalFlips := 0
	for restart := 0; restart < params.Restarts; restart++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best.Restarts = restart + 1
		st.randomize(rng)
		st.recordBest(best, restart)
		if best.Feasible && best.SoftPenalty == 0 {
			break
		}
		stagnant := 0
		for flip := 0; flip < params.MaxFlips; flip++ {
			ci := st.pickViolated(rng)
			if ci < 0 { // all satisfied
				break
			}
			v := st.pickVar(ci, rng, totalFlips+flip)
			if v < 0 {
				continue
			}
			st.flip(v, totalFlips+flip)
			improved := false
			if st.trueScore() <= best.score(params.HardWeight) {
				improved = st.recordBest(best, restart)
				if best.Feasible && best.SoftPenalty == 0 {
					break
				}
			}
			if improved {
				stagnant = 0
			} else if params.DynamicWeights {
				stagnant++
				if stagnant >= params.StagnationWindow {
					st.bumpWeights()
					stagnant = 0
				}
			}
		}
		totalFlips += params.MaxFlips
		if best.Feasible && best.SoftPenalty == 0 {
			break
		}
	}
	best.Flips = totalFlips
	return best, nil
}

// searchState holds the incremental data structures of the local search:
// current assignment, per-constraint LHS values, violation totals, and
// the variable→constraint incidence index.
type searchState struct {
	p       *Problem
	params  WSATParams
	assign  []bool
	lhs     []int
	viol    []int // violation per constraint
	occ     [][]int
	violSet []int // indices of currently violated constraints (lazy, compacted on pick)
	inSet   []bool
	tabu    []int // last flip time per var

	hardViolation int
	softPenalty   int
	// Dynamic clause weights: dyn[ci] is the extra per-unit penalty on
	// hard constraint ci; dynPenalty aggregates viol[ci]*dyn[ci]. Both
	// shape the search score only — best-solution tracking uses the
	// true objective.
	dyn        []int
	dynPenalty int
}

func newSearchState(p *Problem, params WSATParams) *searchState {
	st := &searchState{
		p:      p,
		params: params,
		assign: make([]bool, p.NumVars()),
		lhs:    make([]int, len(p.Constraints)),
		viol:   make([]int, len(p.Constraints)),
		occ:    make([][]int, p.NumVars()),
		inSet:  make([]bool, len(p.Constraints)),
		tabu:   make([]int, p.NumVars()),
		dyn:    make([]int, len(p.Constraints)),
	}
	for ci := range p.Constraints {
		// Register each constraint once per distinct variable: the
		// flip routines already sum duplicate terms' coefficients, so
		// a duplicate occ entry would double-apply the update.
		seen := map[int]bool{}
		for _, t := range p.Constraints[ci].Terms {
			if seen[t.Var] {
				continue
			}
			seen[t.Var] = true
			st.occ[t.Var] = append(st.occ[t.Var], ci)
		}
	}
	return st
}

// trueScore is the unreshaped objective used for best-solution tracking.
// (Move selection never consults a global score: flipDelta evaluates
// the reshaped, dynamically weighted objective incrementally.)
func (st *searchState) trueScore() int {
	return st.hardViolation*st.params.HardWeight + st.softPenalty
}

func (st *searchState) randomize(rng *rand.Rand) {
	for i := range st.assign {
		st.assign[i] = rng.Intn(2) == 1
		st.tabu[i] = -1 << 30
	}
	for i := range st.dyn {
		st.dyn[i] = 0
	}
	st.dynPenalty = 0
	st.recompute()
}

// bumpWeights raises the dynamic weight of every currently violated
// hard constraint, reshaping the score surface to escape a local
// minimum.
func (st *searchState) bumpWeights() {
	inc := st.params.HardWeight/10 + 1
	for _, ci := range st.violSet {
		if st.viol[ci] == 0 || !st.p.Constraints[ci].Hard() {
			continue
		}
		st.dyn[ci] += inc
		st.dynPenalty += st.viol[ci] * inc
	}
}

func (st *searchState) recompute() {
	st.hardViolation, st.softPenalty = 0, 0
	st.violSet = st.violSet[:0]
	for ci := range st.p.Constraints {
		c := &st.p.Constraints[ci]
		st.lhs[ci] = c.LHS(st.assign)
		st.viol[ci] = c.violationOf(st.lhs[ci])
		st.inSet[ci] = false
		if st.viol[ci] > 0 {
			if c.Hard() {
				st.hardViolation += st.viol[ci]
			} else {
				st.softPenalty += st.viol[ci] * c.Weight
			}
			st.violSet = append(st.violSet, ci)
			st.inSet[ci] = true
		}
	}
}

// pickViolated returns a random violated constraint index, or -1 when
// everything is satisfied. Hard violations are preferred over soft ones.
func (st *searchState) pickViolated(rng *rand.Rand) int {
	// Compact the lazy violated set.
	w := 0
	for _, ci := range st.violSet {
		if st.viol[ci] > 0 {
			st.violSet[w] = ci
			w++
		} else {
			st.inSet[ci] = false
		}
	}
	st.violSet = st.violSet[:w]
	if w == 0 {
		return -1
	}
	// Prefer a violated hard constraint with probability proportional
	// to their share, but always pick hard when any exists and a fair
	// coin lands hard-side: this keeps pressure on feasibility.
	var hard []int
	for _, ci := range st.violSet {
		if st.p.Constraints[ci].Hard() {
			hard = append(hard, ci)
		}
	}
	if len(hard) > 0 && (len(hard) == w || rng.Float64() < 0.8) {
		return hard[rng.Intn(len(hard))]
	}
	return st.violSet[rng.Intn(w)]
}

// pickVar chooses which variable of constraint ci to flip: a noise move
// picks uniformly; otherwise the flip with the best score delta wins,
// subject to tabu (tabu is overridden when the flip would reach a new
// strictly better score — standard aspiration).
func (st *searchState) pickVar(ci int, rng *rand.Rand, now int) int {
	c := &st.p.Constraints[ci]
	if len(c.Terms) == 0 {
		return -1
	}
	if rng.Float64() < st.params.Noise {
		return c.Terms[rng.Intn(len(c.Terms))].Var
	}
	bestVar, bestDelta := -1, 1<<30
	for _, t := range c.Terms {
		d := st.flipDelta(t.Var)
		if now-st.tabu[t.Var] < st.params.TabuTenure && d >= 0 {
			continue // tabu without aspiration
		}
		if d < bestDelta || (d == bestDelta && bestVar >= 0 && rng.Intn(2) == 0) {
			bestDelta, bestVar = d, t.Var
		}
	}
	if bestVar < 0 { // everything tabu: random walk
		return c.Terms[rng.Intn(len(c.Terms))].Var
	}
	return bestVar
}

// flipDelta computes the score change if variable v were flipped.
func (st *searchState) flipDelta(v int) int {
	delta := 0
	dir := 1
	if st.assign[v] {
		dir = -1
	}
	for _, ci := range st.occ[v] {
		c := &st.p.Constraints[ci]
		var coef int
		for _, t := range c.Terms {
			if t.Var == v {
				coef += t.Coef
			}
		}
		newViol := c.violationOf(st.lhs[ci] + dir*coef)
		d := newViol - st.viol[ci]
		if c.Hard() {
			delta += d * (st.params.HardWeight + st.dyn[ci])
		} else {
			delta += d * c.Weight
		}
	}
	return delta
}

// flip applies the flip of variable v and updates incremental state.
func (st *searchState) flip(v, now int) {
	dir := 1
	if st.assign[v] {
		dir = -1
	}
	st.assign[v] = !st.assign[v]
	st.tabu[v] = now
	for _, ci := range st.occ[v] {
		c := &st.p.Constraints[ci]
		var coef int
		for _, t := range c.Terms {
			if t.Var == v {
				coef += t.Coef
			}
		}
		st.lhs[ci] += dir * coef
		newViol := c.violationOf(st.lhs[ci])
		d := newViol - st.viol[ci]
		if d != 0 {
			if c.Hard() {
				st.hardViolation += d
				st.dynPenalty += d * st.dyn[ci]
			} else {
				st.softPenalty += d * c.Weight
			}
		}
		st.viol[ci] = newViol
		if newViol > 0 && !st.inSet[ci] {
			st.violSet = append(st.violSet, ci)
			st.inSet[ci] = true
		}
	}
}

// recordBest keeps the first assignment reaching each true score (ties
// never replace an earlier best, so the result is stable against
// trajectory perturbations). It reports whether the best strictly
// improved.
func (st *searchState) recordBest(best *Solution, restart int) bool {
	if st.trueScore() < best.score(st.params.HardWeight) {
		copy(best.Assign, st.assign)
		best.HardViolation = st.hardViolation
		best.SoftPenalty = st.softPenalty
		best.Feasible = st.hardViolation == 0
		best.Restart = restart
		return true
	}
	return false
}
