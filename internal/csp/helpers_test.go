package csp

import (
	"context"
	"testing"

	"tableseg/internal/token"
)

// Test shims over the context-first solver entry points: production
// code must thread a caller's context (enforced by tableseglint), but
// table-driven tests have none to thread, and an uncancellable
// background context can never surface an error from the WSAT loop.

func solveWSAT(p *Problem, params WSATParams) *Solution {
	sol, err := SolveWSATContext(context.Background(), p, params)
	if err != nil {
		panic(err)
	}
	return sol
}

func solveSegmentation(in SegmentInput, params SolveParams) *SegmentResult {
	res, err := SolveSegmentationContext(context.Background(), in, params)
	if err != nil {
		panic(err)
	}
	return res
}

func solveExact(p *Problem, params ExactParams) ([]bool, bool, error) {
	return SolveExact(context.Background(), p, params)
}

func assignColumns(t *testing.T, records []int, types []token.Type, params WSATParams) []int {
	t.Helper()
	cols, err := AssignColumns(context.Background(), records, types, params)
	if err != nil {
		t.Fatal(err)
	}
	return cols
}
