package csp

import (
	"testing"

	"tableseg/internal/token"
)

func TestAssignColumnsCleanRecords(t *testing.T) {
	// Three records of three extracts each: Name (capitalized),
	// Address (numeric-ish), Phone (numeric). Columns must be 0,1,2
	// per record.
	name := token.TypeOf("John")
	num := token.TypeOf("221")
	records := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	types := []token.Type{name, num, num, name, num, num, name, num, num}
	cols := assignColumns(t, records, types, WSATParams{Seed: 1})
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("cols = %v, want %v", cols, want)
		}
	}
}

func TestAssignColumnsMissingField(t *testing.T) {
	// Record 1 misses its middle field (address): the phone extract
	// should align with the other records' phone column (2), not take
	// column 1, because its first token type matches theirs. The
	// address type must genuinely differ from the phone type ("221B"
	// is ALNUM only; "(740)" is ALNUM|NUMERIC) or the alignment pull
	// is tied.
	name := token.TypeOf("John")
	addr := token.TypeOf("221B")
	phone := token.TypeOf("(740)")
	records := []int{0, 0, 0, 1, 1, 2, 2, 2}
	types := []token.Type{name, addr, phone, name, phone, name, addr, phone}
	cols := assignColumns(t, records, types, WSATParams{Seed: 1})
	want := []int{0, 1, 2, 0, 2, 0, 1, 2}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("cols = %v, want %v (missing field should skip its column)", cols, want)
		}
	}
}

func TestAssignColumnsUnassignedExtracts(t *testing.T) {
	records := []int{0, -1, 0}
	types := []token.Type{token.TypeOf("A"), token.TypeOf("x"), token.TypeOf("1")}
	cols := assignColumns(t, records, types, WSATParams{Seed: 1})
	if cols[1] != -1 {
		t.Errorf("unassigned extract got column %d", cols[1])
	}
	if cols[0] != 0 || cols[2] != 1 {
		t.Errorf("cols = %v", cols)
	}
}

func TestAssignColumnsEmptyAndSingle(t *testing.T) {
	if got := assignColumns(t, nil, nil, WSATParams{}); len(got) != 0 {
		t.Error("empty input")
	}
	got := assignColumns(t, []int{-1, -1}, make([]token.Type, 2), WSATParams{})
	if got[0] != -1 || got[1] != -1 {
		t.Errorf("all-unassigned: %v", got)
	}
	one := assignColumns(t, []int{0}, []token.Type{token.TypeOf("A")}, WSATParams{})
	if one[0] != 0 {
		t.Errorf("single extract column = %d", one[0])
	}
}

func TestAssignColumnsFirstColumnForced(t *testing.T) {
	// Whatever the types, the first extract of each record gets L1.
	records := []int{0, 0, 1, 1, 1}
	types := []token.Type{token.TypeOf("1"), token.TypeOf("A"), token.TypeOf("A"), token.TypeOf("1"), token.TypeOf("x")}
	cols := assignColumns(t, records, types, WSATParams{Seed: 2})
	if cols[0] != 0 || cols[2] != 0 {
		t.Errorf("record starts not at column 0: %v", cols)
	}
	// Columns strictly increase within each record.
	if !(cols[0] < cols[1]) || !(cols[2] < cols[3] && cols[3] < cols[4]) {
		t.Errorf("columns not increasing: %v", cols)
	}
}

func TestAssignColumnsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	assignColumns(t, []int{0}, nil, WSATParams{})
}
