// Package csp implements the constraint-satisfaction machinery of §4: a
// pseudo-boolean (0/1 integer) constraint model, a WSAT(OIP)-style local
// search solver in the spirit of Walser's integer local search, an exact
// depth-first solver with propagation for small instances and UNSAT
// certification, and the encoder that turns record-segmentation
// observations into uniqueness, consecutiveness and position constraints.
package csp

import (
	"fmt"
	"strings"
)

// Op is a linear-constraint comparison operator.
type Op int

const (
	// LE means Σ aᵢxᵢ ≤ b.
	LE Op = iota
	// GE means Σ aᵢxᵢ ≥ b.
	GE
	// EQ means Σ aᵢxᵢ = b.
	EQ
)

func (op Op) String() string {
	switch op {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// Term is one aᵢ·xᵢ summand of a linear constraint.
type Term struct {
	Coef int
	Var  int
}

// Constraint is a linear pseudo-boolean constraint over 0/1 variables.
// Weight 0 marks a hard constraint; a positive weight marks a soft
// constraint whose violation is penalized but permitted (WSAT(OIP)'s
// over-constrained formulation).
type Constraint struct {
	Terms  []Term
	Op     Op
	RHS    int
	Weight int
	// Tag records the constraint's provenance ("uniq", "consec", "pos",
	// "cut") for diagnostics and relaxation decisions.
	Tag string
}

// Hard reports whether the constraint must be satisfied.
func (c *Constraint) Hard() bool { return c.Weight == 0 }

// LHS evaluates the constraint's left-hand side under an assignment.
func (c *Constraint) LHS(assign []bool) int {
	s := 0
	for _, t := range c.Terms {
		if assign[t.Var] {
			s += t.Coef
		}
	}
	return s
}

// Violation returns how far the constraint is from satisfaction under
// the assignment (0 when satisfied). For EQ it is |lhs−rhs|; for the
// inequalities it is the one-sided excess.
func (c *Constraint) Violation(assign []bool) int {
	return c.violationOf(c.LHS(assign))
}

func (c *Constraint) violationOf(lhs int) int {
	switch c.Op {
	case LE:
		if lhs > c.RHS {
			return lhs - c.RHS
		}
	case GE:
		if lhs < c.RHS {
			return c.RHS - lhs
		}
	case EQ:
		if lhs > c.RHS {
			return lhs - c.RHS
		}
		return c.RHS - lhs
	}
	return 0
}

// String renders the constraint in a readable algebraic form.
func (c *Constraint) String() string {
	var b strings.Builder
	for i, t := range c.Terms {
		if i > 0 {
			if t.Coef >= 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
			}
		} else if t.Coef < 0 {
			b.WriteString("-")
		}
		a := t.Coef
		if a < 0 {
			a = -a
		}
		if a != 1 {
			fmt.Fprintf(&b, "%d·", a)
		}
		fmt.Fprintf(&b, "x%d", t.Var)
	}
	fmt.Fprintf(&b, " %s %d", c.Op, c.RHS)
	if !c.Hard() {
		fmt.Fprintf(&b, " (soft w=%d)", c.Weight)
	}
	if c.Tag != "" {
		fmt.Fprintf(&b, " [%s]", c.Tag)
	}
	return b.String()
}

// Problem is a pseudo-boolean constraint problem.
type Problem struct {
	numVars     int
	names       []string
	Constraints []Constraint
}

// NewProblem creates an empty problem.
func NewProblem() *Problem { return &Problem{} }

// AddVar introduces a new 0/1 variable with a diagnostic name and
// returns its index.
func (p *Problem) AddVar(name string) int {
	p.names = append(p.names, name)
	p.numVars++
	return p.numVars - 1
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.numVars }

// VarName returns the diagnostic name of variable v.
func (p *Problem) VarName(v int) string {
	if v >= 0 && v < len(p.names) && p.names[v] != "" {
		return p.names[v]
	}
	return fmt.Sprintf("x%d", v)
}

// Add appends a constraint after validating its variable indices.
func (p *Problem) Add(c Constraint) {
	for _, t := range c.Terms {
		if t.Var < 0 || t.Var >= p.numVars {
			panic(fmt.Sprintf("csp: constraint references undeclared variable %d (have %d)", t.Var, p.numVars))
		}
	}
	p.Constraints = append(p.Constraints, c)
}

// AddHard is shorthand for adding a hard constraint.
func (p *Problem) AddHard(terms []Term, op Op, rhs int, tag string) {
	p.Add(Constraint{Terms: terms, Op: op, RHS: rhs, Tag: tag})
}

// AddSoft is shorthand for adding a weighted soft constraint.
func (p *Problem) AddSoft(terms []Term, op Op, rhs int, weight int, tag string) {
	if weight <= 0 {
		panic("csp: soft constraint requires positive weight")
	}
	p.Add(Constraint{Terms: terms, Op: op, RHS: rhs, Weight: weight, Tag: tag})
}

// Eval summarizes an assignment's feasibility: the total hard violation,
// the total weighted soft penalty, and the indices of violated hard
// constraints.
func (p *Problem) Eval(assign []bool) (hardViolation, softPenalty int, violatedHard []int) {
	for i := range p.Constraints {
		c := &p.Constraints[i]
		v := c.Violation(assign)
		if v == 0 {
			continue
		}
		if c.Hard() {
			hardViolation += v
			violatedHard = append(violatedHard, i)
		} else {
			softPenalty += v * c.Weight
		}
	}
	return hardViolation, softPenalty, violatedHard
}

// Feasible reports whether the assignment satisfies every hard constraint.
func (p *Problem) Feasible(assign []bool) bool {
	for i := range p.Constraints {
		c := &p.Constraints[i]
		if c.Hard() && c.Violation(assign) != 0 {
			return false
		}
	}
	return true
}
