package csp

import (
	"context"
	"fmt"

	"tableseg/internal/token"
)

// AssignColumns implements the §6.3 suggestion that column (attribute)
// assignment is obtainable in the CSP framework too, "by using the
// observation that different values of the same attribute should be
// similar in content, e.g., start with the same token type", expressed
// as constraints:
//
//   - each record-assigned extract takes exactly one column label;
//   - the first extract of a record takes column L1 (the paper's
//     first-column-never-missing assumption);
//   - columns increase strictly within a record (hard);
//   - extracts of neighboring records whose first word has the same
//     syntactic type prefer the same column (soft).
//
// records[i] is the record assignment of analyzed extract i (-1 =
// unassigned); firstTypes[i] is the syntactic type of the extract's
// first word. The result assigns a 0-based column to every
// record-assigned extract and -1 to the rest. Cancellation follows
// SolveWSATContext's restart-boundary polling and returns ctx.Err().
func AssignColumns(ctx context.Context, records []int, firstTypes []token.Type, params WSATParams) ([]int, error) {
	if len(records) != len(firstTypes) {
		panic(fmt.Sprintf("csp: %d record assignments but %d types", len(records), len(firstTypes)))
	}
	out := make([]int, len(records))
	for i := range out {
		out[i] = -1
	}

	// Group assigned extracts by record, in stream order.
	byRecord := map[int][]int{}
	var recOrder []int
	for i, r := range records {
		if r < 0 {
			continue
		}
		if _, ok := byRecord[r]; !ok {
			recOrder = append(recOrder, r)
		}
		byRecord[r] = append(byRecord[r], i)
	}
	if len(recOrder) == 0 {
		return out, nil
	}
	numCols := 0
	for _, idxs := range byRecord {
		if len(idxs) > numCols {
			numCols = len(idxs)
		}
	}
	if numCols == 1 {
		for _, idxs := range byRecord {
			out[idxs[0]] = 0
		}
		return out, nil
	}

	p := NewProblem()
	// yVar[i][c] — allocated only over each extract's feasible column
	// window: the k-th extract of an m-extract record can only take
	// columns in [k, numCols-(m-k)].
	yVar := make(map[int]map[int]int)
	for _, r := range recOrder {
		idxs := byRecord[r]
		m := len(idxs)
		for k, i := range idxs {
			lo, hi := k, numCols-(m-k)
			if k == 0 {
				hi = 0 // first column never missing
			}
			yVar[i] = map[int]int{}
			terms := make([]Term, 0, hi-lo+1)
			for c := lo; c <= hi; c++ {
				v := p.AddVar(fmt.Sprintf("y[%d,%d]", i, c))
				yVar[i][c] = v
				terms = append(terms, Term{1, v})
			}
			p.AddHard(terms, EQ, 1, "col-uniq")
		}
		// Strict increase between consecutive extracts of the record.
		// (Iterate columns in numeric order: constraint order must be
		// deterministic or the local search becomes run-dependent.)
		for k := 1; k < m; k++ {
			prev, cur := idxs[k-1], idxs[k]
			for cPrev := 0; cPrev < numCols; cPrev++ {
				vPrev, ok := yVar[prev][cPrev]
				if !ok {
					continue
				}
				for cCur := 0; cCur <= cPrev; cCur++ {
					if vCur, ok := yVar[cur][cCur]; ok {
						p.AddHard([]Term{{1, vPrev}, {1, vCur}}, LE, 1, "col-order")
					}
				}
			}
		}
	}

	// Soft alignment between neighboring records: same first token type
	// wants the same column.
	for ri := 1; ri < len(recOrder); ri++ {
		prev, cur := byRecord[recOrder[ri-1]], byRecord[recOrder[ri]]
		for _, i := range prev {
			for _, j := range cur {
				if firstTypes[i] != firstTypes[j] {
					continue
				}
				for c := 0; c < numCols; c++ {
					vi, ok := yVar[i][c]
					if !ok {
						continue
					}
					vj, ok := yVar[j][c]
					if !ok {
						continue
					}
					// |y_ic − y_jc| = 0 preferred.
					p.AddSoft([]Term{{1, vi}, {-1, vj}}, EQ, 0, 1, "col-align")
				}
			}
		}
	}

	sol, err := SolveWSATContext(ctx, p, params)
	if err != nil {
		return nil, err
	}
	if !sol.Feasible {
		// The hard constraints are always satisfiable (k-th extract →
		// column k is a witness); an infeasible local-search outcome
		// just means the search budget ran dry, so fall back to that
		// witness assignment.
		for _, idxs := range byRecord {
			for k, i := range idxs {
				out[i] = k
			}
		}
		return out, nil
	}
	for i, cols := range yVar {
		for c, v := range cols {
			if sol.Assign[v] {
				out[i] = c
				break
			}
		}
	}
	return out, nil
}
