package csp

import (
	"strings"
	"testing"
)

func TestConstraintViolation(t *testing.T) {
	c := Constraint{Terms: []Term{{1, 0}, {1, 1}, {1, 2}}, Op: EQ, RHS: 1}
	cases := []struct {
		assign []bool
		want   int
	}{
		{[]bool{false, false, false}, 1},
		{[]bool{true, false, false}, 0},
		{[]bool{true, true, false}, 1},
		{[]bool{true, true, true}, 2},
	}
	for _, cse := range cases {
		if got := c.Violation(cse.assign); got != cse.want {
			t.Errorf("EQ violation(%v) = %d, want %d", cse.assign, got, cse.want)
		}
	}

	le := Constraint{Terms: []Term{{1, 0}, {1, 1}}, Op: LE, RHS: 1}
	if le.Violation([]bool{true, true}) != 1 || le.Violation([]bool{false, false}) != 0 {
		t.Error("LE violation wrong")
	}
	ge := Constraint{Terms: []Term{{1, 0}, {1, 1}}, Op: GE, RHS: 1}
	if ge.Violation([]bool{false, false}) != 1 || ge.Violation([]bool{true, false}) != 0 {
		t.Error("GE violation wrong")
	}
	neg := Constraint{Terms: []Term{{1, 0}, {-1, 1}}, Op: LE, RHS: 0}
	if neg.Violation([]bool{true, false}) != 1 || neg.Violation([]bool{true, true}) != 0 {
		t.Error("negative coefficient violation wrong")
	}
}

func TestProblemAddValidation(t *testing.T) {
	p := NewProblem()
	v := p.AddVar("a")
	p.AddHard([]Term{{1, v}}, EQ, 1, "t")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on undeclared variable")
		}
	}()
	p.AddHard([]Term{{1, 99}}, EQ, 1, "bad")
}

func TestSoftWeightValidation(t *testing.T) {
	p := NewProblem()
	v := p.AddVar("a")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-positive soft weight")
		}
	}()
	p.AddSoft([]Term{{1, v}}, GE, 1, 0, "bad")
}

func TestEvalAndFeasible(t *testing.T) {
	p := NewProblem()
	a, b := p.AddVar("a"), p.AddVar("b")
	p.AddHard([]Term{{1, a}, {1, b}}, EQ, 1, "h")
	p.AddSoft([]Term{{1, a}}, GE, 1, 3, "s")

	hv, sp, viol := p.Eval([]bool{false, true})
	if hv != 0 || sp != 3 || len(viol) != 0 {
		t.Errorf("eval = %d,%d,%v", hv, sp, viol)
	}
	if !p.Feasible([]bool{false, true}) {
		t.Error("should be feasible")
	}
	hv, sp, viol = p.Eval([]bool{true, true})
	if hv != 1 || sp != 0 || len(viol) != 1 {
		t.Errorf("eval = %d,%d,%v", hv, sp, viol)
	}
	if p.Feasible([]bool{true, true}) {
		t.Error("should be infeasible")
	}
}

func TestConstraintString(t *testing.T) {
	p := NewProblem()
	a, b := p.AddVar("a"), p.AddVar("b")
	c := Constraint{Terms: []Term{{1, a}, {-2, b}}, Op: LE, RHS: 1, Tag: "demo"}
	s := c.String()
	for _, want := range []string{"x0", "2·x1", "<= 1", "[demo]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	soft := Constraint{Terms: []Term{{1, a}}, Op: GE, RHS: 1, Weight: 2}
	if !strings.Contains(soft.String(), "soft w=2") {
		t.Errorf("soft String() = %q", soft.String())
	}
}

func TestVarName(t *testing.T) {
	p := NewProblem()
	p.AddVar("x[0,1]")
	if p.VarName(0) != "x[0,1]" {
		t.Errorf("VarName(0) = %q", p.VarName(0))
	}
	if p.VarName(42) != "x42" {
		t.Errorf("VarName(42) = %q", p.VarName(42))
	}
}

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" || Op(9).String() != "?" {
		t.Error("op strings wrong")
	}
}
