package csp

import (
	"context"
	"errors"
)

// ErrSearchLimit is returned by SolveExact when the node budget is
// exhausted before the search space is covered; satisfiability is then
// unknown.
var ErrSearchLimit = errors.New("csp: exact search node limit exceeded")

// ExactParams tunes the exact solver.
type ExactParams struct {
	// MaxNodes bounds the number of search nodes explored; 0 selects a
	// default of 2,000,000.
	MaxNodes int
}

// SolveExact performs a complete depth-first search with bounds
// propagation over the hard constraints. It returns (assignment, true,
// nil) for a satisfying assignment of the hard constraints, (nil, false,
// nil) when provably unsatisfiable, or an ErrSearchLimit error when the
// node budget ran out. Soft constraints are ignored: the exact solver's
// job is feasibility and UNSAT certification (the paper's "no solution
// found" cases), not optimization. Cancellation is polled every few
// thousand search nodes and surfaces as ctx.Err(); an uncancelled run
// explores exactly the same node sequence regardless of deadline.
func SolveExact(ctx context.Context, p *Problem, params ExactParams) ([]bool, bool, error) {
	if params.MaxNodes == 0 {
		params.MaxNodes = 2_000_000
	}
	s := &exactSearch{p: p, maxNodes: params.MaxNodes, ctx: ctx}
	s.value = make([]int8, p.NumVars()) // -1 unknown is encoded as 2? no: use 2 for unset
	for i := range s.value {
		s.value[i] = unset
	}
	// Precompute hard-constraint incidence and coefficient bounds.
	for ci := range p.Constraints {
		if !p.Constraints[ci].Hard() {
			continue
		}
		s.hard = append(s.hard, ci)
	}
	s.occ = make([][]int, p.NumVars())
	for _, ci := range s.hard {
		for _, t := range p.Constraints[ci].Terms {
			s.occ[t.Var] = append(s.occ[t.Var], ci)
		}
	}
	ok := s.dfs()
	if s.cancelled != nil {
		return nil, false, s.cancelled
	}
	if s.limited {
		return nil, false, ErrSearchLimit
	}
	if !ok {
		return nil, false, nil
	}
	out := make([]bool, p.NumVars())
	for i, v := range s.value {
		out[i] = v == 1
	}
	return out, true, nil
}

const unset int8 = 2

type exactSearch struct {
	p         *Problem
	hard      []int
	occ       [][]int
	value     []int8
	nodes     int
	maxNodes  int
	limited   bool
	ctx       context.Context
	cancelled error
}

// feasibleBounds checks every hard constraint against the interval of
// achievable LHS values given the current partial assignment.
func (s *exactSearch) feasibleBounds() bool {
	for _, ci := range s.hard {
		if !s.constraintFeasible(ci) {
			return false
		}
	}
	return true
}

func (s *exactSearch) constraintFeasible(ci int) bool {
	c := &s.p.Constraints[ci]
	lo, hi := 0, 0
	for _, t := range c.Terms {
		switch s.value[t.Var] {
		case 1:
			lo += t.Coef
			hi += t.Coef
		case unset:
			if t.Coef > 0 {
				hi += t.Coef
			} else {
				lo += t.Coef
			}
		}
	}
	switch c.Op {
	case LE:
		return lo <= c.RHS
	case GE:
		return hi >= c.RHS
	case EQ:
		return lo <= c.RHS && hi >= c.RHS
	}
	return true
}

// propagate fixes forced variables: if setting a variable to one value
// makes some hard constraint infeasible by bounds, the other value is
// forced. Returns the list of fixed vars (for undo) and whether a
// contradiction was reached.
func (s *exactSearch) propagate(trail *[]int) bool {
	changed := true
	for changed {
		changed = false
		for _, ci := range s.hard {
			c := &s.p.Constraints[ci]
			if !s.constraintFeasible(ci) {
				return false
			}
			for _, t := range c.Terms {
				if s.value[t.Var] != unset {
					continue
				}
				forced := int8(unset)
				s.value[t.Var] = 0
				ok0 := s.constraintFeasible(ci)
				s.value[t.Var] = 1
				ok1 := s.constraintFeasible(ci)
				s.value[t.Var] = unset
				switch {
				case !ok0 && !ok1:
					return false
				case !ok0:
					forced = 1
				case !ok1:
					forced = 0
				}
				if forced != unset {
					s.value[t.Var] = forced
					*trail = append(*trail, t.Var)
					changed = true
				}
			}
		}
	}
	return true
}

// pickVar chooses the unset variable occurring in the most hard
// constraints (most-constrained-first).
func (s *exactSearch) pickVar() int {
	best, bestOcc := -1, -1
	for v := range s.value {
		if s.value[v] != unset {
			continue
		}
		if len(s.occ[v]) > bestOcc {
			best, bestOcc = v, len(s.occ[v])
		}
	}
	return best
}

func (s *exactSearch) dfs() bool {
	s.nodes++
	if s.nodes > s.maxNodes {
		s.limited = true
		return false
	}
	if s.nodes&0xfff == 0 {
		if err := s.ctx.Err(); err != nil {
			s.cancelled = err
			s.limited = true // reuse the abort plumbing of the node budget
			return false
		}
	}
	var trail []int
	if !s.propagate(&trail) {
		s.undo(trail)
		return false
	}
	v := s.pickVar()
	if v < 0 {
		// Fully assigned; bounds feasibility on full assignment is
		// exact satisfaction.
		if s.feasibleBounds() {
			return true
		}
		s.undo(trail)
		return false
	}
	for _, val := range [2]int8{1, 0} {
		s.value[v] = val
		if s.feasibleBounds() && s.dfs() {
			return true
		}
		if s.limited {
			s.value[v] = unset
			s.undo(trail)
			return false
		}
	}
	s.value[v] = unset
	s.undo(trail)
	return false
}

func (s *exactSearch) undo(trail []int) {
	for _, v := range trail {
		s.value[v] = unset
	}
}
