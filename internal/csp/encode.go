package csp

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// SegmentInput is the abstract record-segmentation instance of §4: the
// analyzed extracts of a list page (in stream order), their candidate
// record sets D_i derived from detail-page observations, and the groups
// of extracts sharing a position on some detail page.
type SegmentInput struct {
	// NumRecords is K, the number of detail pages (records).
	NumRecords int
	// Candidates[i] is D_i for analyzed extract i: the sorted record
	// indices (0-based) on whose detail pages extract i was observed.
	Candidates [][]int
	// PositionGroups maps a detail-page index j to groups of extract
	// indices that share a position on page j; each group of size g
	// contributes the §4.2 constraint "exactly (or at most) one of the
	// g extracts belongs to record j".
	PositionGroups map[int][][]int
}

// RelaxLevel is a rung of the paper's relaxation ladder (§6.3): strict
// equalities first; replaced with inequalities when WSAT(OIP) cannot
// satisfy all constraints, yielding a partial assignment.
type RelaxLevel int

const (
	// Strict: uniqueness Σ_j x_ij = 1 and position groups Σ x = 1.
	Strict RelaxLevel = iota
	// Relaxed: both become ≤ 1; a soft Σ_j x_ij ≥ 1 per extract makes
	// the solver prefer maximal partial assignments.
	Relaxed
)

func (r RelaxLevel) String() string {
	if r == Strict {
		return "strict"
	}
	return "relaxed"
}

// Encoding is a compiled segmentation instance: the pseudo-boolean
// problem plus the variable map to decode solutions.
type Encoding struct {
	Problem *Problem
	Level   RelaxLevel
	in      SegmentInput
	// varOf[i] maps candidate record j to the variable index of x_ij
	// for extract i (only records in D_i are present).
	varOf []map[int]int
	// blockVars counts auxiliary block-activation variables (stats).
	blockVars int
}

// NumAssignVars returns the number of x_ij assignment variables.
func (e *Encoding) NumAssignVars() int {
	n := 0
	for _, m := range e.varOf {
		n += len(m)
	}
	return n
}

// NumBlockVars returns the number of auxiliary block variables.
func (e *Encoding) NumBlockVars() int { return e.blockVars }

// Encode compiles a segmentation instance into a pseudo-boolean problem
// at the given relaxation level, constructing the uniqueness (§4.1),
// consecutiveness (§4.1) and position (§4.2) constraints.
func Encode(in SegmentInput, level RelaxLevel) *Encoding {
	p := NewProblem()
	e := &Encoding{Problem: p, Level: level, in: in, varOf: make([]map[int]int, len(in.Candidates))}

	// Assignment variables x_ij, only where r_j ∈ D_i.
	for i, cands := range in.Candidates {
		e.varOf[i] = make(map[int]int, len(cands))
		for _, j := range cands {
			e.varOf[i][j] = p.AddVar(fmt.Sprintf("x[%d,%d]", i, j))
		}
	}

	// Uniqueness: every extract belongs to exactly (or at most) one record.
	for i, cands := range in.Candidates {
		if len(cands) == 0 {
			continue
		}
		terms := make([]Term, 0, len(cands))
		for _, j := range cands {
			terms = append(terms, Term{1, e.varOf[i][j]})
		}
		if level == Strict {
			p.AddHard(terms, EQ, 1, "uniq")
		} else {
			p.AddHard(terms, LE, 1, "uniq")
			p.AddSoft(terms, GE, 1, 1, "assign") // prefer assigning every extract
		}
	}

	// Consecutiveness (block form): for each record j, the candidate
	// extracts split into maximal contiguous blocks (runs unbroken by
	// an extract that cannot belong to r_j). At most one block may be
	// active per record; x_ij implies its block is active.
	for j := 0; j < in.NumRecords; j++ {
		blocks := candidateBlocks(in.Candidates, j)
		if len(blocks) < 2 {
			continue
		}
		blockTerms := make([]Term, 0, len(blocks))
		for b, block := range blocks {
			y := p.AddVar(fmt.Sprintf("blk[%d,%d]", j, b))
			e.blockVars++
			blockTerms = append(blockTerms, Term{1, y})
			for _, i := range block {
				// x_ij − y_jb ≤ 0  (x implies block active)
				p.AddHard([]Term{{1, e.varOf[i][j]}, {-1, y}}, LE, 0, "consec")
			}
		}
		p.AddHard(blockTerms, LE, 1, "consec")
	}

	// Position constraints: extracts sharing a position on detail page
	// j occupy the same field slot of record j, so exactly (at most)
	// one of them belongs to r_j.
	pages := make([]int, 0, len(in.PositionGroups))
	for j := range in.PositionGroups {
		pages = append(pages, j)
	}
	sort.Ints(pages)
	for _, j := range pages {
		for _, group := range in.PositionGroups[j] {
			terms := make([]Term, 0, len(group))
			for _, i := range group {
				if v, ok := e.varOf[i][j]; ok {
					terms = append(terms, Term{1, v})
				}
			}
			if len(terms) < 2 {
				continue
			}
			if level == Strict {
				p.AddHard(terms, EQ, 1, "pos")
			} else {
				p.AddHard(terms, LE, 1, "pos")
			}
		}
	}
	return e
}

// candidateBlocks returns the maximal runs of consecutive extract
// indices whose candidate sets contain record j.
func candidateBlocks(candidates [][]int, j int) [][]int {
	var blocks [][]int
	var cur []int
	for i, cands := range candidates {
		if containsInt(cands, j) {
			cur = append(cur, i)
			continue
		}
		if len(cur) > 0 {
			blocks = append(blocks, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		blocks = append(blocks, cur)
	}
	return blocks
}

func containsInt(sorted []int, v int) bool {
	k := sort.SearchInts(sorted, v)
	return k < len(sorted) && sorted[k] == v
}

// Decode converts a solver assignment into per-extract record numbers
// (-1 for unassigned extracts, which occur under Relaxed).
func (e *Encoding) Decode(assign []bool) []int {
	out := make([]int, len(e.in.Candidates))
	for i := range out {
		out[i] = -1
		for j, v := range e.varOf[i] {
			if assign[v] {
				out[i] = j
				break
			}
		}
	}
	return out
}

// ConsecutivenessCuts inspects a decoded assignment for within-block
// contiguity violations — x_ij = 1, x_kj = 1 with an intermediate
// candidate n (i < n < k, r_j ∈ D_n) left out — and returns the lazy
// cuts x_ij + x_kj − x_nj ≤ 1 that forbid exactly those holes. An empty
// result certifies the assignment fully consecutive.
func (e *Encoding) ConsecutivenessCuts(records []int) []Constraint {
	var cuts []Constraint
	// For each record, the assigned extract indices in order.
	byRecord := make(map[int][]int)
	for i, r := range records {
		if r >= 0 {
			byRecord[r] = append(byRecord[r], i)
		}
	}
	// Emit cuts in ascending record order: byRecord is a map, and
	// constraint order steers the local search's flip sequence, so
	// iterating it directly would make solves run-dependent.
	recs := make([]int, 0, len(byRecord))
	for j := range byRecord {
		recs = append(recs, j)
	}
	sort.Ints(recs)
	for _, j := range recs {
		idxs := byRecord[j]
		if len(idxs) < 2 {
			continue
		}
		sort.Ints(idxs)
		lo, hi := idxs[0], idxs[len(idxs)-1]
		assigned := make(map[int]bool, len(idxs))
		for _, i := range idxs {
			assigned[i] = true
		}
		for n := lo + 1; n < hi; n++ {
			if assigned[n] {
				continue
			}
			vn, ok := e.varOf[n][j]
			if !ok {
				continue // handled statically by block constraints
			}
			// Find the tight straddling pair (previous and next assigned).
			i, k := lo, hi
			for _, a := range idxs {
				if a < n {
					i = a
				}
				if a > n {
					k = a
					break
				}
			}
			cuts = append(cuts, Constraint{
				Terms: []Term{{1, e.varOf[i][j]}, {1, e.varOf[k][j]}, {-1, vn}},
				Op:    LE, RHS: 1, Tag: "cut",
			})
		}
	}
	return cuts
}

// Status describes how a segmentation solve concluded.
type Status int

const (
	// Solved: all strict constraints satisfied.
	Solved Status = iota
	// SolvedRelaxed: strict constraints were unsatisfiable; the
	// relaxed encoding produced a (possibly partial) assignment.
	SolvedRelaxed
	// Failed: even the relaxed encoding found no feasible assignment.
	Failed
)

func (s Status) String() string {
	switch s {
	case Solved:
		return "solved"
	case SolvedRelaxed:
		return "solved-relaxed"
	default:
		return "failed"
	}
}

// SegmentResult is the outcome of SolveSegmentation.
type SegmentResult struct {
	// Records[i] is the record index assigned to analyzed extract i,
	// or -1 if unassigned.
	Records []int
	Status  Status
	// Relaxed is true when the relaxation ladder was used.
	Relaxed bool
	// CutRounds counts lazy consecutiveness-repair iterations.
	CutRounds int
	// Vars and Constraints are final problem sizes (diagnostics).
	Vars, Constraints int
	// Flips and Restarts total the local-search work across every WSAT
	// call of the solve (all rungs and cut rounds).
	Flips, Restarts int
}

// SolveParams configures SolveSegmentation.
type SolveParams struct {
	WSAT WSATParams
	// MaxCutRounds bounds lazy consecutiveness repair (default 5; a
	// negative value disables repair entirely, so a rung whose
	// solution has contiguity holes simply fails — the static-only
	// ablation of DESIGN.md).
	MaxCutRounds int
	// ExactCheck enables UNSAT certification with the exact solver
	// before relaxing, for instances up to ExactVarLimit variables.
	ExactCheck    bool
	ExactVarLimit int
	// NoRelax disables the relaxation ladder: if the strict encoding
	// is unsatisfiable the solve fails outright (the relaxation
	// ablation of DESIGN.md; the paper's §6.3 argues the ladder is
	// what rescues the dirty sites).
	NoRelax bool
}

func (sp SolveParams) withDefaults() SolveParams {
	if sp.MaxCutRounds == 0 {
		sp.MaxCutRounds = 5
	}
	if sp.ExactVarLimit == 0 {
		sp.ExactVarLimit = 120
	}
	return sp
}

// SolveSegmentationContext runs the paper's CSP pipeline end to end:
// encode strictly, solve with WSAT(OIP)-style local search (with lazy
// consecutiveness repair), and on failure descend the relaxation
// ladder and accept a partial assignment. Cancellation is honored at
// WSAT restart and cut-round boundaries, so the solve aborts promptly
// with ctx.Err() while uncancelled runs stay deterministic.
func SolveSegmentationContext(ctx context.Context, in SegmentInput, params SolveParams) (*SegmentResult, error) {
	params = params.withDefaults()
	res, ok, err := trySolve(ctx, in, Strict, params)
	if err != nil {
		return nil, err
	}
	if ok {
		res.Status = Solved
		return res, nil
	}
	flips, restarts := res.Flips, res.Restarts
	if !params.NoRelax {
		res, ok, err = trySolve(ctx, in, Relaxed, params)
		if err != nil {
			return nil, err
		}
		res.Flips += flips
		res.Restarts += restarts
		if ok {
			res.Status = SolvedRelaxed
			res.Relaxed = true
			return res, nil
		}
		flips, restarts = res.Flips, res.Restarts
	}
	return &SegmentResult{
		Records:  unassignedAll(len(in.Candidates)),
		Status:   Failed,
		Relaxed:  true,
		Flips:    flips,
		Restarts: restarts,
	}, nil
}

func unassignedAll(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	return out
}

// trySolve attempts one rung of the ladder, returning a result and
// whether a feasible, fully consecutive assignment was found. On
// failure the result still carries the Flips/Restarts spent, so the
// ladder can aggregate solver work across rungs.
func trySolve(ctx context.Context, in SegmentInput, level RelaxLevel, params SolveParams) (*SegmentResult, bool, error) {
	enc := Encode(in, level)
	spent := &SegmentResult{}
	rounds := 0
	for {
		sol, err := SolveWSATContext(ctx, enc.Problem, params.WSAT)
		if err != nil {
			return nil, false, err
		}
		spent.Flips += sol.Flips
		spent.Restarts += sol.Restarts
		if !sol.Feasible && params.ExactCheck && enc.Problem.NumVars() <= params.ExactVarLimit {
			// Local search failed; let the exact solver decide.
			exact, sat, exErr := SolveExact(ctx, enc.Problem, ExactParams{})
			switch {
			case exErr == nil && sat:
				sol = &Solution{Assign: exact, Feasible: true}
			case exErr == nil && !sat:
				return spent, false, nil // certified UNSAT at this rung
			case !errors.Is(exErr, ErrSearchLimit):
				return nil, false, exErr // context cancellation
			}
		}
		if !sol.Feasible {
			return spent, false, nil
		}
		records := enc.Decode(sol.Assign)
		cuts := enc.ConsecutivenessCuts(records)
		if len(cuts) == 0 {
			return &SegmentResult{
				Records:     records,
				CutRounds:   rounds,
				Vars:        enc.Problem.NumVars(),
				Constraints: len(enc.Problem.Constraints),
				Flips:       spent.Flips,
				Restarts:    spent.Restarts,
			}, true, nil
		}
		if rounds >= params.MaxCutRounds {
			return spent, false, nil
		}
		for _, c := range cuts {
			enc.Problem.Add(c)
		}
		rounds++
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
	}
}
