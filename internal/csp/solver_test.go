package csp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// plantInstance builds a random problem guaranteed satisfiable by
// constructing constraints consistent with a hidden planted assignment.
func plantInstance(rng *rand.Rand, nVars, nCons int) (*Problem, []bool) {
	p := NewProblem()
	hidden := make([]bool, nVars)
	for i := 0; i < nVars; i++ {
		p.AddVar("")
		hidden[i] = rng.Intn(2) == 1
	}
	for c := 0; c < nCons; c++ {
		k := rng.Intn(4) + 1
		terms := make([]Term, 0, k)
		lhs := 0
		seen := map[int]bool{}
		for len(terms) < k {
			v := rng.Intn(nVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			coef := rng.Intn(3) - 1
			if coef == 0 {
				coef = 1
			}
			terms = append(terms, Term{coef, v})
			if hidden[v] {
				lhs += coef
			}
		}
		switch rng.Intn(3) {
		case 0:
			p.AddHard(terms, EQ, lhs, "plant")
		case 1:
			p.AddHard(terms, LE, lhs+rng.Intn(2), "plant")
		default:
			p.AddHard(terms, GE, lhs-rng.Intn(2), "plant")
		}
	}
	return p, hidden
}

func TestWSATSolvesPlantedInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		p, _ := plantInstance(rng, 10+rng.Intn(20), 10+rng.Intn(30))
		sol := solveWSAT(p, WSATParams{Seed: int64(trial)})
		if !sol.Feasible {
			t.Errorf("trial %d: WSAT failed a satisfiable instance (hard violation %d)", trial, sol.HardViolation)
		} else if !p.Feasible(sol.Assign) {
			t.Errorf("trial %d: solver claims feasible but assignment violates constraints", trial)
		}
	}
}

func TestWSATDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, _ := plantInstance(rng, 15, 20)
	a := solveWSAT(p, WSATParams{Seed: 42})
	b := solveWSAT(p, WSATParams{Seed: 42})
	if len(a.Assign) != len(b.Assign) {
		t.Fatal("lengths differ")
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestWSATSoftObjective(t *testing.T) {
	// One hard constraint a+b ≤ 1, soft preferences for both: solver
	// must satisfy the hard one and exactly one soft.
	p := NewProblem()
	a, b := p.AddVar("a"), p.AddVar("b")
	p.AddHard([]Term{{1, a}, {1, b}}, LE, 1, "h")
	p.AddSoft([]Term{{1, a}}, GE, 1, 1, "sa")
	p.AddSoft([]Term{{1, b}}, GE, 1, 1, "sb")
	sol := solveWSAT(p, WSATParams{Seed: 1})
	if !sol.Feasible {
		t.Fatal("infeasible")
	}
	if sol.SoftPenalty != 1 {
		t.Errorf("soft penalty = %d, want 1 (exactly one preference satisfiable)", sol.SoftPenalty)
	}
	if sol.Assign[a] == sol.Assign[b] {
		t.Errorf("want exactly one of a,b true: %v %v", sol.Assign[a], sol.Assign[b])
	}
}

func TestWSATInfeasibleReportsViolation(t *testing.T) {
	p := NewProblem()
	a := p.AddVar("a")
	p.AddHard([]Term{{1, a}}, EQ, 1, "h1")
	p.AddHard([]Term{{1, a}}, EQ, 0, "h2")
	sol := solveWSAT(p, WSATParams{Seed: 1, MaxFlips: 200, Restarts: 2})
	if sol.Feasible {
		t.Error("claims feasible on contradictory constraints")
	}
	if sol.HardViolation < 1 {
		t.Errorf("hard violation = %d", sol.HardViolation)
	}
}

func TestExactSolvesAndCertifiesUNSAT(t *testing.T) {
	// Satisfiable.
	p := NewProblem()
	a, b, c := p.AddVar("a"), p.AddVar("b"), p.AddVar("c")
	p.AddHard([]Term{{1, a}, {1, b}, {1, c}}, EQ, 2, "")
	p.AddHard([]Term{{1, a}, {1, b}}, LE, 1, "")
	assign, sat, err := solveExact(p, ExactParams{})
	if err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	if !p.Feasible(assign) {
		t.Error("exact solution infeasible")
	}
	if !assign[c] {
		t.Error("c must be true (a+b≤1 and sum=2 forces c)")
	}

	// Unsatisfiable.
	q := NewProblem()
	x, y := q.AddVar("x"), q.AddVar("y")
	q.AddHard([]Term{{1, x}, {1, y}}, GE, 2, "")
	q.AddHard([]Term{{1, x}, {1, y}}, LE, 1, "")
	_, sat, err = solveExact(q, ExactParams{})
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Error("UNSAT instance reported satisfiable")
	}
}

// bruteForce enumerates all assignments (n ≤ 16) and reports whether any
// satisfies the hard constraints.
func bruteForce(p *Problem) ([]bool, bool) {
	n := p.NumVars()
	assign := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			assign[i] = mask&(1<<i) != 0
		}
		if p.Feasible(assign) {
			out := make([]bool, n)
			copy(out, assign)
			return out, true
		}
	}
	return nil, false
}

// The exact solver must agree with brute force on random small instances
// (both satisfiable and unsatisfiable ones).
func TestExactAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	satSeen, unsatSeen := 0, 0
	for trial := 0; trial < 120; trial++ {
		nv := 3 + rng.Intn(8)
		p := NewProblem()
		for i := 0; i < nv; i++ {
			p.AddVar("")
		}
		nc := 2 + rng.Intn(10)
		for c := 0; c < nc; c++ {
			k := 1 + rng.Intn(3)
			terms := make([]Term, 0, k)
			for j := 0; j < k; j++ {
				coef := rng.Intn(3) - 1
				if coef == 0 {
					coef = 1
				}
				terms = append(terms, Term{coef, rng.Intn(nv)})
			}
			rhs := rng.Intn(3) - 1
			p.AddHard(terms, Op(rng.Intn(3)), rhs, "")
		}
		_, wantSat := bruteForce(p)
		got, gotSat, err := solveExact(p, ExactParams{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if gotSat != wantSat {
			t.Fatalf("trial %d: exact=%v brute=%v", trial, gotSat, wantSat)
		}
		if gotSat {
			satSeen++
			if !p.Feasible(got) {
				t.Fatalf("trial %d: exact returned infeasible assignment", trial)
			}
		} else {
			unsatSeen++
		}
	}
	if satSeen == 0 || unsatSeen == 0 {
		t.Errorf("weak test coverage: sat=%d unsat=%d", satSeen, unsatSeen)
	}
}

// Property: whenever WSAT reports feasible, the assignment really
// satisfies every hard constraint.
func TestWSATFeasibilityIsSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := plantInstance(rng, 5+rng.Intn(10), 5+rng.Intn(15))
		sol := solveWSAT(p, WSATParams{Seed: seed, Restarts: 3, MaxFlips: 2000})
		if sol.Feasible {
			return p.Feasible(sol.Assign)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExactNodeLimit(t *testing.T) {
	// A hard pigeonhole-style instance with a 1-node budget must report
	// the limit error rather than a wrong answer.
	p := NewProblem()
	var vars []int
	for i := 0; i < 12; i++ {
		vars = append(vars, p.AddVar(""))
	}
	terms := make([]Term, len(vars))
	for i, v := range vars {
		terms[i] = Term{1, v}
	}
	p.AddHard(terms, EQ, 6, "")
	_, _, err := solveExact(p, ExactParams{MaxNodes: 1})
	if err != ErrSearchLimit {
		t.Errorf("err = %v, want ErrSearchLimit", err)
	}
}

// bruteForceOptimum finds the minimum weighted soft penalty among
// hard-feasible assignments (n <= 16).
func bruteForceOptimum(p *Problem) (int, bool) {
	n := p.NumVars()
	assign := make([]bool, n)
	best, found := 1<<30, false
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			assign[i] = mask&(1<<i) != 0
		}
		hv, sp, _ := p.Eval(assign)
		if hv != 0 {
			continue
		}
		found = true
		if sp < best {
			best = sp
		}
	}
	return best, found
}

// WSAT must reach the brute-force-optimal soft penalty on small
// weighted instances (it is an optimizer, not just a satisfier).
func TestWSATReachesSoftOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		nv := 3 + rng.Intn(7)
		p := NewProblem()
		for i := 0; i < nv; i++ {
			p.AddVar("")
		}
		// A few hard constraints from a planted assignment keep the
		// instance feasible.
		hidden := make([]bool, nv)
		for i := range hidden {
			hidden[i] = rng.Intn(2) == 1
		}
		for c := 0; c < 2+rng.Intn(3); c++ {
			k := 1 + rng.Intn(3)
			terms := make([]Term, 0, k)
			lhs := 0
			for j := 0; j < k; j++ {
				v := rng.Intn(nv)
				terms = append(terms, Term{1, v})
				if hidden[v] {
					lhs++
				}
			}
			p.AddHard(terms, LE, lhs+rng.Intn(2), "")
		}
		// Random soft constraints with varying weights.
		for c := 0; c < 3+rng.Intn(5); c++ {
			k := 1 + rng.Intn(3)
			terms := make([]Term, 0, k)
			for j := 0; j < k; j++ {
				coef := 1
				if rng.Intn(3) == 0 {
					coef = -1
				}
				terms = append(terms, Term{coef, rng.Intn(nv)})
			}
			p.AddSoft(terms, Op(rng.Intn(3)), rng.Intn(3)-1, 1+rng.Intn(4), "")
		}
		wantOpt, feasible := bruteForceOptimum(p)
		if !feasible {
			continue
		}
		sol := solveWSAT(p, WSATParams{Seed: int64(trial), Restarts: 12, MaxFlips: 6000})
		if !sol.Feasible {
			t.Fatalf("trial %d: feasible instance unsolved", trial)
		}
		if sol.SoftPenalty != wantOpt {
			t.Errorf("trial %d: soft penalty %d, optimum %d", trial, sol.SoftPenalty, wantOpt)
		}
	}
}

// High noise degrades efficiency, not soundness.
func TestWSATHighNoiseStillSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, _ := plantInstance(rng, 8, 10)
	sol := solveWSAT(p, WSATParams{Seed: 2, Noise: 0.9, Restarts: 20, MaxFlips: 20000})
	if !sol.Feasible {
		t.Error("high-noise search failed a small satisfiable instance")
	}
}

// A long tabu tenure must not wedge the search (aspiration allows
// improving flips through the tabu list).
func TestWSATLongTabu(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p, _ := plantInstance(rng, 10, 12)
	sol := solveWSAT(p, WSATParams{Seed: 3, TabuTenure: 50, Restarts: 10, MaxFlips: 10000})
	if !sol.Feasible {
		t.Error("long-tabu search failed a small satisfiable instance")
	}
}

// Dynamic weights must preserve soundness and optimality on the same
// weighted suite as the static search.
func TestWSATDynamicWeightsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		p, _ := plantInstance(rng, 10+rng.Intn(10), 10+rng.Intn(20))
		sol := solveWSAT(p, WSATParams{Seed: int64(trial), DynamicWeights: true})
		if !sol.Feasible {
			t.Errorf("trial %d: dynamic-weight search failed a satisfiable instance", trial)
		} else if !p.Feasible(sol.Assign) {
			t.Errorf("trial %d: claimed-feasible assignment violates constraints", trial)
		}
	}
}

// The reported solution quality must be the true objective, never the
// reshaped score (dynamic weights inflate the internal score only).
func TestWSATDynamicWeightsReportTrueScore(t *testing.T) {
	p := NewProblem()
	a, b := p.AddVar("a"), p.AddVar("b")
	p.AddHard([]Term{{1, a}, {1, b}}, LE, 1, "h")
	p.AddSoft([]Term{{1, a}}, GE, 1, 2, "sa")
	p.AddSoft([]Term{{1, b}}, GE, 1, 2, "sb")
	sol := solveWSAT(p, WSATParams{Seed: 9, DynamicWeights: true, StagnationWindow: 4})
	if !sol.Feasible || sol.SoftPenalty != 2 {
		t.Errorf("feasible=%v soft=%d, want feasible with soft 2", sol.Feasible, sol.SoftPenalty)
	}
	hv, sp, _ := p.Eval(sol.Assign)
	if hv != 0 || sp != sol.SoftPenalty {
		t.Errorf("reported (0,%d) but re-eval gives (%d,%d)", sol.SoftPenalty, hv, sp)
	}
}
