package csp

import (
	"context"
	"errors"
	"testing"
	"time"
)

// unsatProblem is x >= 1 together with x <= 0: no assignment satisfies
// both hard constraints, so WSAT burns through every restart.
func unsatProblem() *Problem {
	p := NewProblem()
	x := p.AddVar("x")
	p.AddHard([]Term{{Coef: 1, Var: x}}, GE, 1, "uniq")
	p.AddHard([]Term{{Coef: 1, Var: x}}, LE, 0, "uniq")
	return p
}

// TestSolveWSATContextCancelMidSolve proves a hopeless solve aborts
// promptly on cancellation instead of finishing its restart budget.
func TestSolveWSATContextCancelMidSolve(t *testing.T) {
	p := unsatProblem()
	params := WSATParams{Restarts: 1 << 30, MaxFlips: 1000, Seed: 1}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	sol, err := SolveWSATContext(ctx, p, params)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sol != nil {
		t.Fatalf("expected nil solution on cancellation, got %+v", sol)
	}
	// Generous bound: a restart on this 1-variable problem takes
	// microseconds, so anything near the 2^30-restart budget would run
	// for hours. Seconds of slack absorb race-detector overhead.
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestSolveWSATContextUncancelled verifies the context path returns the
// same solution as the legacy entry point for a fixed seed.
func TestSolveWSATContextUncancelled(t *testing.T) {
	p := unsatProblem()
	params := WSATParams{Restarts: 3, MaxFlips: 50, Seed: 7}
	want := solveWSAT(p, params)
	got, err := SolveWSATContext(context.Background(), p, params)
	if err != nil {
		t.Fatal(err)
	}
	if got.Feasible != want.Feasible || got.Restarts != want.Restarts {
		t.Errorf("context solve diverged: %+v vs %+v", got, want)
	}
	if want.Restarts != 3 {
		t.Errorf("Restarts = %d, want 3 (unsat problem exhausts the budget)", want.Restarts)
	}
}

// TestSolveSegmentationContextCancelled verifies the full segmentation
// solve surfaces ctx.Err().
func TestSolveSegmentationContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveSegmentationContext(ctx, SegmentInput{}, SolveParams{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res %+v), want context.Canceled", err, res)
	}
}
