// Package relation assembles the output of per-page segmentations into
// the relation behind a hidden-Web site — §6.3's endgame of
// "reconstruct[ing] the relational database behind the Web site". Rows
// from different result pages are merged, aligned by column label where
// labels were mined, and deduplicated (result pages frequently overlap
// when queries page through the same data).
package relation

import (
	"strings"

	"tableseg/internal/core"
	"tableseg/internal/pattern"
)

// Table is an assembled relation.
type Table struct {
	// Columns are the column names (mined labels, or L1.. defaults).
	Columns []string
	// Rows hold one record each, aligned to Columns.
	Rows [][]string
	// Sources counts the contributing pages per row (1 unless the row
	// was observed on several pages).
	Sources []int
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.Rows) }

// Schema describes each column with the most specific common pattern of
// its non-empty values (reference [16]'s specific-to-general token
// patterns): e.g. "NUMERIC CAPITALIZED St" for a street column. Columns
// with no values are described as "(empty)".
func (t *Table) Schema() []string {
	out := make([]string, len(t.Columns))
	for c := range t.Columns {
		var values []string
		for _, row := range t.Rows {
			if c < len(row) && row[c] != "" {
				values = append(values, row[c])
			}
		}
		out[c] = pattern.LearnStrings(values).String()
	}
	return out
}

// Merge assembles segmentations of several list pages from one site
// into a single relation. Column alignment uses the mined labels when
// every segmentation has them (positional otherwise); duplicate rows
// (same cells) collapse, with Sources counting the multiplicity.
func Merge(segs []*core.Segmentation) *Table {
	t := &Table{}
	if len(segs) == 0 {
		return t
	}

	// Column universe: union of mined labels in first-seen order, or
	// positional when any segmentation lacks labels.
	labeled := true
	for _, s := range segs {
		if len(s.ColumnLabels) == 0 {
			labeled = false
			break
		}
	}
	colIndex := map[string]int{}
	addCol := func(name string) int {
		if idx, ok := colIndex[name]; ok {
			return idx
		}
		colIndex[name] = len(t.Columns)
		t.Columns = append(t.Columns, name)
		return len(t.Columns) - 1
	}

	seen := map[string]int{} // row key -> row index
	for _, s := range segs {
		width := 0
		for _, rec := range s.Records {
			for _, c := range rec.Columns {
				if c+1 > width {
					width = c + 1
				}
			}
		}
		// Map this segmentation's columns into the table's.
		colMap := make([]int, width)
		for c := 0; c < width; c++ {
			name := defaultName(c)
			if labeled && c < len(s.ColumnLabels) && s.ColumnLabels[c] != "" {
				name = s.ColumnLabels[c]
			}
			colMap[c] = addCol(name)
		}
		for _, rec := range s.Records {
			row := make([]string, len(t.Columns))
			last := 0
			for k, ex := range rec.Extracts {
				c := rec.Columns[k]
				if c < 0 {
					c = last
				} else {
					last = c
				}
				if c >= len(colMap) {
					continue
				}
				cell := &row[colMap[c]]
				if *cell == "" {
					*cell = ex.Text()
				} else {
					*cell += " " + ex.Text()
				}
			}
			key := strings.Join(row, "\x00")
			if idx, ok := seen[key]; ok {
				t.Sources[idx]++
				continue
			}
			seen[key] = len(t.Rows)
			t.Rows = append(t.Rows, row)
			t.Sources = append(t.Sources, 1)
		}
	}

	// Rows appended before later pages widened the column set are
	// shorter; pad them.
	for i, row := range t.Rows {
		if len(row) < len(t.Columns) {
			padded := make([]string, len(t.Columns))
			copy(padded, row)
			t.Rows[i] = padded
		}
	}
	return t
}

func defaultName(c int) string {
	// L1, L2, ... (paper's §3.4 labels).
	digits := ""
	v := c + 1
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return "L" + digits
}
