package relation

import (
	"context"
	"strings"
	"testing"

	"tableseg/internal/core"
	"tableseg/internal/sitegen"
)

func segmentBoth(t *testing.T, slug string) (*core.Segmentation, *core.Segmentation, *sitegen.Site) {
	t.Helper()
	site, err := sitegen.GenerateBySlug(slug, 42)
	if err != nil {
		t.Fatal(err)
	}
	var segs []*core.Segmentation
	for pageIdx := range site.Lists {
		in := core.Input{Target: pageIdx}
		for _, l := range site.Lists {
			in.ListPages = append(in.ListPages, core.Page{HTML: l.HTML})
		}
		for _, d := range site.Lists[pageIdx].Details {
			in.DetailPages = append(in.DetailPages, core.Page{HTML: d})
		}
		seg, err := core.SegmentContext(context.Background(), in, core.DefaultOptions(core.Probabilistic))
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, seg)
	}
	return segs[0], segs[1], site
}

func TestMergeTwoPages(t *testing.T) {
	s0, s1, site := segmentBoth(t, "butler")
	table := Merge([]*core.Segmentation{s0, s1})
	wantRows := len(site.Lists[0].Truth) + len(site.Lists[1].Truth)
	if table.NumRows() != wantRows {
		t.Fatalf("%d rows, want %d (distinct records across pages)", table.NumRows(), wantRows)
	}
	joined := strings.Join(table.Columns, " ")
	for _, want := range []string{"Parcel", "Owner"} {
		if !strings.Contains(joined, want) {
			t.Errorf("columns %v missing %q", table.Columns, want)
		}
	}
	// Every truth record appears as a row prefix-matchable by its
	// first value.
	for li, lp := range site.Lists {
		for ri, tr := range lp.Truth {
			found := false
			for _, row := range table.Rows {
				if row[0] == tr.Values[0] {
					found = true
				}
			}
			if !found {
				t.Errorf("page %d record %d (%s) missing from relation", li, ri, tr.Values[0])
			}
		}
	}
	for _, n := range table.Sources {
		if n != 1 {
			t.Errorf("unexpected duplicate multiplicity %d", n)
		}
	}
}

func TestMergeDeduplicates(t *testing.T) {
	s0, _, _ := segmentBoth(t, "lee")
	table := Merge([]*core.Segmentation{s0, s0})
	single := Merge([]*core.Segmentation{s0})
	if table.NumRows() != single.NumRows() {
		t.Fatalf("duplicated input: %d rows vs %d", table.NumRows(), single.NumRows())
	}
	for _, n := range table.Sources {
		if n != 2 {
			t.Errorf("multiplicity %d, want 2", n)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	table := Merge(nil)
	if table.NumRows() != 0 || len(table.Columns) != 0 {
		t.Errorf("empty merge: %+v", table)
	}
}

func TestMergePositionalWithoutLabels(t *testing.T) {
	site, err := sitegen.GenerateBySlug("ohio", 42)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Input{Target: 0}
	for _, l := range site.Lists {
		in.ListPages = append(in.ListPages, core.Page{HTML: l.HTML})
	}
	for _, d := range site.Lists[0].Details {
		in.DetailPages = append(in.DetailPages, core.Page{HTML: d})
	}
	opts := core.DefaultOptions(core.Probabilistic)
	opts.MineLabels = false
	seg, err := core.SegmentContext(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	table := Merge([]*core.Segmentation{seg})
	if len(table.Columns) == 0 || !strings.HasPrefix(table.Columns[0], "L") {
		t.Errorf("positional columns = %v", table.Columns)
	}
	if table.NumRows() != len(site.Lists[0].Truth) {
		t.Errorf("%d rows", table.NumRows())
	}
}

func TestDefaultName(t *testing.T) {
	if defaultName(0) != "L1" || defaultName(10) != "L11" {
		t.Errorf("defaultName: %s %s", defaultName(0), defaultName(10))
	}
}

func TestSchema(t *testing.T) {
	s0, s1, _ := segmentBoth(t, "butler")
	table := Merge([]*core.Segmentation{s0, s1})
	schema := table.Schema()
	if len(schema) != len(table.Columns) {
		t.Fatalf("%d schema entries for %d columns", len(schema), len(table.Columns))
	}
	byName := map[string]string{}
	for c, name := range table.Columns {
		byName[name] = schema[c]
	}
	if got := byName["Parcel"]; got != "NUMERIC" {
		t.Errorf("Parcel schema = %q", got)
	}
	if got := byName["Owner"]; !strings.HasPrefix(got, "CAPITALIZED CAPITALIZED") {
		t.Errorf("Owner schema = %q", got)
	}
}
