package artifact

// Tiered fronts a slow store with a fast one: Gets try the fast tier
// first and promote slow-tier hits into it; Puts write through to
// both. The canonical composition is Memory over Disk — warm lookups
// stay in process, while the disk tier persists artifacts across
// restarts and shares them between processes pointed at one cache
// directory.
type Tiered struct {
	fast, slow Store
}

// NewTiered composes fast over slow.
func NewTiered(fast, slow Store) *Tiered {
	return &Tiered{fast: fast, slow: slow}
}

// Get implements Store.
func (t *Tiered) Get(k Key) ([]byte, bool) {
	if payload, ok := t.fast.Get(k); ok {
		return payload, true
	}
	payload, ok := t.slow.Get(k)
	if ok {
		t.fast.Put(k, payload)
	}
	return payload, ok
}

// Put implements Store.
func (t *Tiered) Put(k Key, payload []byte) {
	t.fast.Put(k, payload)
	t.slow.Put(k, payload)
}

// Stats implements Store: the fast tier's snapshot followed by the
// slow tier's.
func (t *Tiered) Stats() []Stats {
	return append(t.fast.Stats(), t.slow.Stats()...)
}
