package artifact

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultDiskBudget caps the disk tier when the caller does not set a
// budget: 1 GiB, enough for millions of journaled results or hundreds
// of thousands of tokenized pages.
const DefaultDiskBudget = 1 << 30

// diskMagic opens every artifact file; a file without it is treated as
// corrupt and deleted on read.
const diskMagic = "TSAF"

// diskHeaderLen is magic (4) + crc32 (4) + payload length (8).
const diskHeaderLen = 16

// diskExt suffixes every artifact file, so GC and the usage scan never
// touch foreign files in a shared directory.
const diskExt = ".art"

// Disk is a crash-tolerant on-disk store. Entries live at
//
//	<dir>/<kind>/v<version>/<hh>/<hash><ext>
//
// where <hh> is the first hash byte (256-way fan-out keeps directories
// small at corpus scale). Writes go to a temp file in the final
// directory and are renamed into place, so a killed process leaves
// either the old entry, the new entry, or a stray temp file — never a
// half-written payload under a valid name. Reads verify a CRC-32 and
// length header; a corrupt file is deleted and absorbed as a miss.
// When the store exceeds its byte budget the oldest-written entries
// are collected first.
type Disk struct {
	dir    string
	budget int64

	// mu guards the usage accounting and serializes GC.
	mu      sync.Mutex
	bytes   int64
	entries int64

	hits, misses, puts, evictions, errors atomic.Int64
}

// OpenDisk opens (creating if needed) a disk store rooted at dir,
// capped at budget bytes (0 selects DefaultDiskBudget). Stray temp
// files from a previous crash are removed and existing usage is
// scanned, so budgets hold across restarts.
func OpenDisk(dir string, budget int64) (*Disk, error) {
	if budget <= 0 {
		budget = DefaultDiskBudget
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open disk store: %w", err)
	}
	d := &Disk{dir: dir, budget: budget}
	ents := d.scan(true)
	for _, e := range ents {
		d.bytes += e.size
		d.entries++
	}
	return d, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// path maps a key to its file path.
func (d *Disk) path(k Key) string {
	h := hex.EncodeToString(k.Hash[:])
	return filepath.Join(d.dir, k.Kind.String(), fmt.Sprintf("v%d", k.Version), h[:2], h+diskExt)
}

// Get implements Store.
func (d *Disk) Get(k Key) ([]byte, bool) {
	path := d.path(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			d.errors.Add(1)
		}
		d.misses.Add(1)
		return nil, false
	}
	payload, ok := decodeDiskFile(raw)
	if !ok {
		// Corrupt (truncated write, bit rot): evict the file so the next
		// Put can repopulate it, and absorb the failure as a miss.
		d.removeEntry(path, int64(len(raw)))
		d.errors.Add(1)
		d.misses.Add(1)
		return nil, false
	}
	d.hits.Add(1)
	return payload, true
}

// decodeDiskFile validates a raw artifact file and returns its payload.
func decodeDiskFile(raw []byte) ([]byte, bool) {
	if len(raw) < diskHeaderLen || string(raw[:4]) != diskMagic {
		return nil, false
	}
	crc := binary.LittleEndian.Uint32(raw[4:8])
	n := binary.LittleEndian.Uint64(raw[8:16])
	payload := raw[diskHeaderLen:]
	if uint64(len(payload)) != n || crc32.ChecksumIEEE(payload) != crc {
		return nil, false
	}
	return payload, true
}

// Put implements Store.
func (d *Disk) Put(k Key, payload []byte) {
	d.puts.Add(1)
	path := d.path(k)
	if _, err := os.Stat(path); err == nil {
		// Content-addressed: the entry already holds this payload.
		return
	}
	size, ok := d.writeFile(path, payload)
	if !ok {
		d.errors.Add(1)
		return
	}
	d.mu.Lock()
	d.bytes += size
	d.entries++
	if d.bytes > d.budget {
		d.gcLocked(path)
	}
	d.mu.Unlock()
}

// writeFile writes header+payload to a temp file in path's directory
// and renames it into place. It reports the file's total size.
func (d *Disk) writeFile(path string, payload []byte) (int64, bool) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, false
	}
	f, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return 0, false
	}
	tmp := f.Name()
	var hdr [diskHeaderLen]byte
	copy(hdr[:4], diskMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	_, werr := f.Write(hdr[:])
	if werr == nil {
		_, werr = f.Write(payload)
	}
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp)
		return 0, false
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, false
	}
	return int64(diskHeaderLen + len(payload)), true
}

// removeEntry deletes a corrupt file and adjusts the accounting.
func (d *Disk) removeEntry(path string, size int64) {
	if os.Remove(path) != nil {
		return
	}
	d.mu.Lock()
	d.bytes -= size
	d.entries--
	if d.bytes < 0 {
		d.bytes = 0
	}
	if d.entries < 0 {
		d.entries = 0
	}
	d.mu.Unlock()
}

// diskEntry is one on-disk artifact seen by a scan.
type diskEntry struct {
	path  string
	size  int64
	mtime int64 // unix nanoseconds
}

// scan walks the store and returns every artifact file. When
// removeTemps is set, stray temp files from a crashed writer are
// deleted along the way.
func (d *Disk) scan(removeTemps bool) []diskEntry {
	var out []diskEntry
	filepath.WalkDir(d.dir, func(path string, ent fs.DirEntry, err error) error {
		if err != nil || ent.IsDir() {
			return nil
		}
		if removeTemps && strings.HasPrefix(ent.Name(), "tmp-") {
			os.Remove(path)
			return nil
		}
		if !strings.HasSuffix(ent.Name(), diskExt) {
			return nil
		}
		info, err := ent.Info()
		if err != nil {
			return nil
		}
		out = append(out, diskEntry{path: path, size: info.Size(), mtime: info.ModTime().UnixNano()})
		return nil
	})
	return out
}

// gcLocked re-walks the store (self-healing the accounting when other
// processes share the directory) and deletes the oldest-written
// entries until usage fits the budget. The just-written file is
// spared, so a single oversized artifact cannot evict itself. Callers
// hold d.mu.
func (d *Disk) gcLocked(spare string) {
	ents := d.scan(false)
	var total int64
	for _, e := range ents {
		total += e.size
	}
	count := int64(len(ents))
	if total > d.budget {
		sort.Slice(ents, func(i, j int) bool {
			if ents[i].mtime != ents[j].mtime {
				return ents[i].mtime < ents[j].mtime
			}
			return ents[i].path < ents[j].path
		})
		for _, e := range ents {
			if total <= d.budget {
				break
			}
			if e.path == spare {
				continue
			}
			if os.Remove(e.path) != nil {
				d.errors.Add(1)
				continue
			}
			total -= e.size
			count--
			d.evictions.Add(1)
		}
	}
	d.bytes = total
	d.entries = count
}

// Stats implements Store.
func (d *Disk) Stats() []Stats {
	d.mu.Lock()
	entries := d.entries
	bytes := d.bytes
	d.mu.Unlock()
	return []Stats{{
		Tier:      "disk",
		Hits:      d.hits.Load(),
		Misses:    d.misses.Load(),
		Puts:      d.puts.Load(),
		Evictions: d.evictions.Load(),
		Errors:    d.errors.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}}
}
