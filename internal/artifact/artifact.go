// Package artifact implements a content-addressed store for serialized
// pipeline artifacts: token streams, induced page templates, and
// journaled task results. Artifacts are addressed by a Key — artifact
// kind, codec version, and the SHA-256 hash of the content the artifact
// was derived from — so a store never returns a stale or mistyped
// payload: a codec-version bump changes the key and silently invalidates
// everything encoded under the old version.
//
// Three backends compose into the engine's cache hierarchy: a bounded
// in-memory LRU (Memory), a crash-tolerant disk store (Disk), and a
// Tiered front that promotes disk hits into memory. All backends are
// safe for concurrent use and absorb backend failures as misses — a
// corrupt or unreadable entry is evicted and counted in Stats.Errors,
// never surfaced to the pipeline.
package artifact

import "crypto/sha256"

// Kind tags what an artifact is. It participates in the store key, so
// two artifacts derived from the same content but of different kinds
// (a page's token stream vs. a task result keyed by the same input)
// never collide.
type Kind uint8

const (
	// KindTokens is a serialized token stream ([]token.Token), keyed by
	// the source page's HTML hash.
	KindTokens Kind = 1
	// KindTemplate is a serialized induced page template, keyed by the
	// site's ordered list-page content hash.
	KindTemplate Kind = 2
	// KindResult is a journaled task result (segmentation or typed
	// diagnostic error), keyed by the input hash plus an options
	// fingerprint.
	KindResult Kind = 3
)

// String names the kind for disk layout and diagnostics.
func (k Kind) String() string {
	switch k {
	case KindTokens:
		return "tokens"
	case KindTemplate:
		return "template"
	case KindResult:
		return "result"
	default:
		return "unknown"
	}
}

// Key addresses one artifact: content hash, artifact kind, and the
// codec version the payload was encoded under.
type Key struct {
	// Kind tags the artifact type.
	Kind Kind
	// Version is the codec version of the payload. Bumping the codec
	// version changes every key, so old payloads become unreachable
	// (and eventually GC'd) instead of misread.
	Version uint16
	// Hash is the SHA-256 of the content the artifact derives from.
	Hash [sha256.Size]byte
}

// Stats is one tier's counter snapshot.
type Stats struct {
	// Tier names the backend ("memory", "disk").
	Tier string
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Puts counts Put calls (including idempotent re-puts of a key the
	// tier already holds).
	Puts int64
	// Evictions counts entries dropped to respect the tier's size cap.
	Evictions int64
	// Errors counts absorbed backend failures: corrupt payloads,
	// unreadable or unwritable files. Each is also a miss.
	Errors int64
	// Entries and Bytes describe the tier's current contents.
	Entries, Bytes int64
}

// Store is a content-addressed artifact store. Implementations must be
// safe for concurrent use. Get returns the payload and true on a hit;
// backend failures are absorbed as misses (counted in Stats.Errors).
// Put is best-effort: a failed or over-budget write drops the payload
// silently — the store is a cache, and the caller always holds the
// computed artifact. Callers must treat payloads returned by Get as
// immutable, and must not mutate a payload after passing it to Put.
type Store interface {
	Get(k Key) ([]byte, bool)
	Put(k Key, payload []byte)
	Stats() []Stats
}
