package artifact

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func keyOf(kind Kind, version uint16, content string) Key {
	return Key{Kind: kind, Version: version, Hash: sha256.Sum256([]byte(content))}
}

func TestKindString(t *testing.T) {
	for kind, want := range map[Kind]string{
		KindTokens:   "tokens",
		KindTemplate: "template",
		KindResult:   "result",
		Kind(99):     "unknown",
	} {
		if got := kind.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", kind, got, want)
		}
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory(1 << 20)
	k := keyOf(KindTokens, 1, "page")
	if _, ok := m.Get(k); ok {
		t.Fatal("Get on empty store hit")
	}
	m.Put(k, []byte("payload"))
	got, ok := m.Get(k)
	if !ok || string(got) != "payload" {
		t.Fatalf("Get = %q, %v; want payload, true", got, ok)
	}
	// Same hash under a different kind or version is a distinct key.
	if _, ok := m.Get(keyOf(KindTemplate, 1, "page")); ok {
		t.Error("kind does not separate keys")
	}
	if _, ok := m.Get(keyOf(KindTokens, 2, "page")); ok {
		t.Error("version does not separate keys")
	}
	st := m.Stats()
	if len(st) != 1 || st[0].Tier != "memory" {
		t.Fatalf("Stats = %+v, want one memory tier", st)
	}
	if st[0].Hits != 1 || st[0].Misses != 3 || st[0].Puts != 1 || st[0].Entries != 1 {
		t.Errorf("Stats = %+v, want 1 hit / 3 misses / 1 put / 1 entry", st[0])
	}
}

func TestMemoryEvictsLRU(t *testing.T) {
	// Budget fits two entries (payload 100 + overhead each), not three.
	m := NewMemory(2 * (100 + memEntryOverhead))
	payload := bytes.Repeat([]byte("x"), 100)
	ka := keyOf(KindTokens, 1, "a")
	kb := keyOf(KindTokens, 1, "b")
	kc := keyOf(KindTokens, 1, "c")
	m.Put(ka, payload)
	m.Put(kb, payload)
	// Touch a so b is the least recently used.
	m.Get(ka)
	m.Put(kc, payload)
	if _, ok := m.Get(kb); ok {
		t.Error("least recently used entry survived eviction")
	}
	for _, k := range []Key{ka, kc} {
		if _, ok := m.Get(k); !ok {
			t.Error("recently used entry was evicted")
		}
	}
	if st := m.Stats()[0]; st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("Stats = %+v, want 1 eviction / 2 entries", st)
	}
}

func TestMemoryRejectsOversized(t *testing.T) {
	m := NewMemory(128)
	k := keyOf(KindTokens, 1, "big")
	m.Put(k, bytes.Repeat([]byte("x"), 256))
	if _, ok := m.Get(k); ok {
		t.Error("payload larger than the whole budget was retained")
	}
	if st := m.Stats()[0]; st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("Stats = %+v, want empty store", st)
	}
}

func TestMemoryDefaultBudget(t *testing.T) {
	if NewMemory(0).budget != DefaultMemoryBudget {
		t.Error("zero budget does not select the default")
	}
}

func TestDiskRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf(KindTemplate, 1, "site")
	d1.Put(k, []byte("template-bytes"))

	d2, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d2.Get(k)
	if !ok || string(got) != "template-bytes" {
		t.Fatalf("Get after reopen = %q, %v", got, ok)
	}
	if st := d2.Stats()[0]; st.Tier != "disk" || st.Entries != 1 || st.Bytes == 0 {
		t.Errorf("Stats after reopen = %+v, want scanned usage", st)
	}
}

func TestDiskCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf(KindTokens, 1, "page")
	d.Put(k, []byte("good payload"))
	path := d.path(k)

	for name, corrupt := range map[string]func([]byte) []byte{
		"flipped-bit": func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"truncated":   func(b []byte) []byte { return b[:len(b)-3] },
		"no-magic":    func(b []byte) []byte { copy(b, "XXXX"); return b },
		"empty":       func(b []byte) []byte { return nil },
	} {
		d.Put(k, []byte("good payload"))
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Get(k); ok {
			t.Errorf("%s: corrupt entry served as a hit", name)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s: corrupt file not evicted", name)
		}
	}
	if st := d.Stats()[0]; st.Errors != 4 {
		t.Errorf("Errors = %d, want 4", st.Errors)
	}
}

func TestDiskGCRespectsBudget(t *testing.T) {
	dir := t.TempDir()
	// Each entry is 16 (header) + 100 (payload) bytes; budget fits two.
	d, err := OpenDisk(dir, 2*(diskHeaderLen+100))
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 100)
	base := time.Now().Add(-time.Hour)
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = keyOf(KindResult, 1, fmt.Sprintf("input-%d", i))
		d.Put(keys[i], payload)
		// Pin write times so GC's oldest-first order is deterministic.
		if err := os.Chtimes(d.path(keys[i]), base.Add(time.Duration(i)*time.Minute), base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	// A fourth entry pushes usage over budget: the oldest two go.
	k3 := keyOf(KindResult, 1, "input-3")
	d.Put(k3, payload)
	if _, ok := d.Get(keys[0]); ok {
		t.Error("oldest entry survived GC")
	}
	if _, ok := d.Get(k3); !ok {
		t.Error("just-written entry was collected")
	}
	st := d.Stats()[0]
	if st.Bytes > 2*(diskHeaderLen+100) {
		t.Errorf("usage %d exceeds budget after GC", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("GC reported no evictions")
	}
}

func TestDiskCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "tokens", "v1", "ab")
	if err := os.MkdirAll(stray, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(stray, "tmp-crashed")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(dir, 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("stray temp file survived OpenDisk")
	}
}

func TestTieredPromotesAndWritesThrough(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory(1 << 20)
	tiered := NewTiered(mem, disk)

	k := keyOf(KindTokens, 1, "page")
	tiered.Put(k, []byte("tokens"))
	if _, ok := mem.Get(k); !ok {
		t.Error("Put did not reach the fast tier")
	}
	if _, ok := disk.Get(k); !ok {
		t.Error("Put did not reach the slow tier")
	}

	// A cold memory tier in front of a warm disk: the first Get promotes.
	mem2 := NewMemory(1 << 20)
	tiered2 := NewTiered(mem2, disk)
	if got, ok := tiered2.Get(k); !ok || string(got) != "tokens" {
		t.Fatalf("tiered Get = %q, %v", got, ok)
	}
	if _, ok := mem2.Get(k); !ok {
		t.Error("slow-tier hit was not promoted into the fast tier")
	}

	st := tiered2.Stats()
	if len(st) != 2 || st[0].Tier != "memory" || st[1].Tier != "disk" {
		t.Fatalf("tiered Stats = %+v, want memory then disk", st)
	}
}

func TestStoresConcurrentUse(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	stores := []Store{NewMemory(1 << 16), disk, NewTiered(NewMemory(1<<16), disk)}
	var wg sync.WaitGroup
	for _, s := range stores {
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(s Store, g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					k := keyOf(KindTokens, 1, fmt.Sprintf("page-%d", i%10))
					if got, ok := s.Get(k); ok && len(got) != 64 {
						t.Errorf("payload length %d, want 64", len(got))
					}
					s.Put(k, bytes.Repeat([]byte{byte(i % 10)}, 64))
					s.Stats()
				}
			}(s, g)
		}
	}
	wg.Wait()
	for _, s := range stores {
		for _, st := range s.Stats() {
			if st.Hits+st.Misses == 0 {
				t.Errorf("tier %s saw no lookups", st.Tier)
			}
		}
	}
}
