package artifact

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultMemoryBudget is the in-memory tier's byte budget when the
// caller does not set one: large enough for the paper's corpus-scale
// workloads (tens of thousands of tokenized pages), small enough that
// an engine embedded in a long-lived server cannot grow without bound.
const DefaultMemoryBudget = 64 << 20

// memEntryOverhead approximates the per-entry bookkeeping cost (key,
// list element, map bucket share) charged against the budget on top of
// the payload bytes, so a flood of tiny entries still respects the cap.
const memEntryOverhead = 96

// Memory is a bounded in-memory LRU store. A Get refreshes the entry's
// recency; once the byte budget is exceeded the least recently used
// entries are evicted. Payloads larger than the whole budget are not
// retained at all.
type Memory struct {
	budget int64

	mu    sync.Mutex
	order *list.List // front = most recent; values are *memEntry
	items map[Key]*list.Element
	bytes int64

	hits, misses, puts, evictions atomic.Int64
}

type memEntry struct {
	key     Key
	payload []byte
}

// NewMemory returns an in-memory LRU store bounded by budget bytes.
// A budget of 0 selects DefaultMemoryBudget; negative budgets are
// treated as 0 (callers validate earlier; the store stays safe).
func NewMemory(budget int64) *Memory {
	if budget <= 0 {
		budget = DefaultMemoryBudget
	}
	return &Memory{
		budget: budget,
		order:  list.New(),
		items:  make(map[Key]*list.Element),
	}
}

// Get implements Store.
func (m *Memory) Get(k Key) ([]byte, bool) {
	m.mu.Lock()
	el, ok := m.items[k]
	if ok {
		m.order.MoveToFront(el)
	}
	m.mu.Unlock()
	if !ok {
		m.misses.Add(1)
		return nil, false
	}
	m.hits.Add(1)
	return el.Value.(*memEntry).payload, true
}

// Put implements Store. The payload is retained by reference — the
// Store contract forbids the caller from mutating it afterwards.
func (m *Memory) Put(k Key, payload []byte) {
	m.puts.Add(1)
	cost := int64(len(payload)) + memEntryOverhead
	if cost > m.budget {
		return
	}
	m.mu.Lock()
	if el, ok := m.items[k]; ok {
		// Content-addressed: an existing entry already holds this
		// payload; just refresh recency.
		m.order.MoveToFront(el)
		m.mu.Unlock()
		return
	}
	m.items[k] = m.order.PushFront(&memEntry{key: k, payload: payload})
	m.bytes += cost
	var evicted int64
	for m.bytes > m.budget {
		back := m.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*memEntry)
		m.order.Remove(back)
		delete(m.items, ent.key)
		m.bytes -= int64(len(ent.payload)) + memEntryOverhead
		evicted++
	}
	m.mu.Unlock()
	if evicted > 0 {
		m.evictions.Add(evicted)
	}
}

// Stats implements Store.
func (m *Memory) Stats() []Stats {
	m.mu.Lock()
	entries := int64(len(m.items))
	bytes := m.bytes
	m.mu.Unlock()
	return []Stats{{
		Tier:      "memory",
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Puts:      m.puts.Load(),
		Evictions: m.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}}
}
