package core

import (
	"fmt"

	"tableseg/internal/stage"
)

// Validate rejects nonsensical configurations with ErrBadOptions before
// any pipeline work happens, so misconfiguration surfaces as one typed
// error instead of a mid-pipeline failure. Zero values that select
// documented defaults (MinSlotQuality 0, zero solver params) are valid.
func (o Options) Validate() error {
	switch o.Method {
	case CSP, Probabilistic, Combined:
	default:
		return fmt.Errorf("%w: unknown method %d", ErrBadOptions, o.Method)
	}
	if o.Solver != "" && !stage.HasSolver(o.Solver) {
		return fmt.Errorf("%w: unknown solver %q (registered: %v)", ErrBadOptions, o.Solver, stage.RegisteredSolvers())
	}
	if o.MinSlotQuality < 0 || o.MinSlotQuality > 1 {
		return fmt.Errorf("%w: MinSlotQuality %v outside [0,1]", ErrBadOptions, o.MinSlotQuality)
	}
	w := o.CSPParams.WSAT
	if w.Noise < 0 || w.Noise > 1 {
		return fmt.Errorf("%w: WSAT noise %v outside [0,1]", ErrBadOptions, w.Noise)
	}
	if w.MaxFlips < 0 || w.Restarts < 0 || w.TabuTenure < 0 || w.HardWeight < 0 {
		return fmt.Errorf("%w: negative WSAT parameter", ErrBadOptions)
	}
	p := o.PHMMParams
	if p.MaxColumns < 0 {
		return fmt.Errorf("%w: negative PHMM MaxColumns %d", ErrBadOptions, p.MaxColumns)
	}
	if p.Epsilon < 0 || p.Epsilon > 1 {
		return fmt.Errorf("%w: PHMM epsilon %v outside [0,1]", ErrBadOptions, p.Epsilon)
	}
	return nil
}
