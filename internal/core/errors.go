package core

import "errors"

// Sentinel errors for the pipeline's failure modes, matchable with
// errors.Is. Segment wraps them with %w and task-specific detail; the
// root package re-exports them so callers never need to import
// internal/core.
var (
	// ErrTooFewListPages: the input carried no list pages (at least one
	// is required; two or more enable cross-page template induction).
	ErrTooFewListPages = errors.New("core: too few list pages")
	// ErrNoListPages is a deprecated alias for ErrTooFewListPages kept
	// for callers of the original API.
	ErrNoListPages = ErrTooFewListPages
	// ErrNoDetailPages: the input carried no detail pages.
	ErrNoDetailPages = errors.New("core: no detail pages")
	// ErrBadTarget: the target index is outside the list-page slice.
	ErrBadTarget = errors.New("core: target list page out of range")
	// ErrNoTableSlot: the target page yielded no extracts at all — even
	// the whole-page fallback found nothing segmentable (an empty or
	// text-free document).
	ErrNoTableSlot = errors.New("core: no table slot: target page has no extracts")
	// ErrNoDetailEvidence: the table slot has extracts but none of them
	// appears on any detail page, so there is no evidence to segment
	// with. The returned Segmentation still carries diagnostics
	// (TemplateQuality, TotalExtracts, UsedWholePage).
	ErrNoDetailEvidence = errors.New("core: no extract carries detail-page evidence")
	// ErrCSPUnsatisfiable: the CSP method exhausted the relaxation
	// ladder without finding any feasible assignment. (Under
	// CSPParams.NoRelax or with repair disabled via a negative
	// MaxCutRounds — the ablation configurations that ask to observe
	// failures — the outcome is reported through
	// Segmentation.CSPStatus instead.)
	ErrCSPUnsatisfiable = errors.New("core: CSP unsatisfiable even after relaxation")
	// ErrBadOptions: Options.Validate rejected the configuration.
	ErrBadOptions = errors.New("core: invalid options")
)
