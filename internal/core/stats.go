package core

import "time"

// Stats records per-stage instrumentation of one Segment call — the
// pipeline's observability surface. All fields are measured on the
// task's own goroutine; a nil *Stats disables collection entirely.
type Stats struct {
	// TokenizeTime covers lexing the detail pages and (when no prepared
	// site was supplied) the list pages.
	TokenizeTime time.Duration
	// TemplateTime covers template induction, slot location and the
	// enumeration heuristic.
	TemplateTime time.Duration
	// ExtractTime covers extract splitting, the observation matrix and
	// the informative-subset filter (including the coverage retry).
	ExtractTime time.Duration
	// SolveTime covers the CSP solve and/or the EM learning plus MAP
	// decode of the probabilistic model.
	SolveTime time.Duration
	// WSATRestarts and WSATFlips count the local-search work done by
	// the CSP solve (0 for the probabilistic method).
	WSATRestarts, WSATFlips int
	// CutRounds counts lazy consecutiveness-repair iterations.
	CutRounds int
	// EMIters counts EM iterations (0 for the CSP method).
	EMIters int
}
