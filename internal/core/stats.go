package core

import (
	"time"

	"tableseg/internal/stage"
)

// Stats records per-stage instrumentation of one Segment call — the
// pipeline's observability surface. All fields are measured on the
// task's own goroutine; a nil *Stats disables collection entirely.
type Stats struct {
	// TokenizeTime covers lexing the detail pages and (when no prepared
	// site was supplied) the list pages.
	TokenizeTime time.Duration
	// TemplateTime covers template induction, slot location and the
	// enumeration heuristic.
	TemplateTime time.Duration
	// ExtractTime covers extract splitting, the observation matrix and
	// the informative-subset filter (including the coverage retry).
	ExtractTime time.Duration
	// SolveTime covers the CSP solve and/or the EM learning plus MAP
	// decode of the probabilistic model.
	SolveTime time.Duration
	// Stages breaks the call down by pipeline stage, in pipeline order.
	// The legacy fields above are aggregations of these entries.
	Stages []StageTiming
	// WSATRestarts and WSATFlips count the local-search work done by
	// the CSP solve (0 for the probabilistic method).
	WSATRestarts, WSATFlips int
	// CutRounds counts lazy consecutiveness-repair iterations.
	CutRounds int
	// EMIters counts EM iterations (0 for the CSP method).
	EMIters int
}

// StageTiming aggregates the invocations of one pipeline stage within
// a Stats collection window.
type StageTiming struct {
	// Name is the stage name (stage.StageTokenize, ...).
	Name string
	// Duration totals the stage's wall time across Calls invocations.
	Duration time.Duration
	// Calls counts invocations (the coverage retry re-runs Extract and
	// Observe).
	Calls int
}

// AddStage folds one stage invocation into the collection: entries
// merge by name in first-invocation order.
func (s *Stats) AddStage(name string, d time.Duration) {
	for i := range s.Stages {
		if s.Stages[i].Name == name {
			s.Stages[i].Duration += d
			s.Stages[i].Calls++
			return
		}
	}
	s.Stages = append(s.Stages, StageTiming{Name: name, Duration: d, Calls: 1})
}

// statsObserver folds stage.Observer callbacks into a Stats: the
// per-stage breakdown plus the legacy coarse buckets (template covers
// induction and slot location; extract covers splitting and
// observation, as before the stage-graph refactor).
type statsObserver struct {
	stats *Stats
}

func (o *statsObserver) OnStageStart(name string) {}

func (o *statsObserver) OnStageEnd(name string, d time.Duration, err error) {
	o.stats.AddStage(name, d)
	switch name {
	case stage.StageTokenize:
		o.stats.TokenizeTime += d
	case stage.StageInduceTemplate, stage.StageSelectSlot:
		o.stats.TemplateTime += d
	case stage.StageExtract, stage.StageObserve:
		o.stats.ExtractTime += d
	case stage.StageSegment:
		o.stats.SolveTime += d
	}
}
