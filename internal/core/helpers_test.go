package core

import "context"

// segment is the test shim over the context-first pipeline entry
// point: production code must thread a caller's context (enforced by
// tableseglint), but table-driven tests have none to thread.
func segment(in Input, opts Options) (*Segmentation, error) {
	return SegmentContext(context.Background(), in, opts)
}
