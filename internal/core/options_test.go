package core

import (
	"errors"
	"testing"
)

func TestOptionsValidate(t *testing.T) {
	for _, m := range []Method{CSP, Probabilistic, Combined} {
		if err := DefaultOptions(m).Validate(); err != nil {
			t.Errorf("DefaultOptions(%v).Validate() = %v", m, err)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero Options rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"unknown method", func(o *Options) { o.Method = 99 }},
		{"negative MinSlotQuality", func(o *Options) { o.MinSlotQuality = -0.1 }},
		{"MinSlotQuality above 1", func(o *Options) { o.MinSlotQuality = 1.5 }},
		{"WSAT noise above 1", func(o *Options) { o.CSPParams.WSAT.Noise = 1.5 }},
		{"negative WSAT noise", func(o *Options) { o.CSPParams.WSAT.Noise = -0.5 }},
		{"negative MaxFlips", func(o *Options) { o.CSPParams.WSAT.MaxFlips = -1 }},
		{"negative Restarts", func(o *Options) { o.CSPParams.WSAT.Restarts = -1 }},
		{"negative TabuTenure", func(o *Options) { o.CSPParams.WSAT.TabuTenure = -1 }},
		{"negative HardWeight", func(o *Options) { o.CSPParams.WSAT.HardWeight = -1 }},
		{"negative MaxColumns", func(o *Options) { o.PHMMParams.MaxColumns = -1 }},
		{"negative epsilon", func(o *Options) { o.PHMMParams.Epsilon = -1 }},
		{"epsilon above 1", func(o *Options) { o.PHMMParams.Epsilon = 2 }},
	}
	for _, tc := range cases {
		opts := DefaultOptions(CSP)
		tc.mutate(&opts)
		err := opts.Validate()
		if !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: Validate() = %v, want ErrBadOptions", tc.name, err)
		}
	}
}

// TestSegmentValidatesOptions checks that the pipeline entry point
// rejects a bad configuration before doing any work.
func TestSegmentValidatesOptions(t *testing.T) {
	opts := DefaultOptions(CSP)
	opts.MinSlotQuality = 2
	in := Input{
		ListPages:   []Page{{Name: "l", HTML: "<html><body>x</body></html>"}},
		DetailPages: []Page{{Name: "d", HTML: "<html><body>x</body></html>"}},
	}
	if _, err := segment(in, opts); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Segment with bad options: err = %v, want ErrBadOptions", err)
	}
}
