package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"tableseg/internal/stage"
)

// cancelObserver records every stage boundary and cancels the run's
// context as the after-th OnStageEnd fires (after=0 never cancels).
type cancelObserver struct {
	cancel  context.CancelFunc
	after   int
	started []string
	ended   []string
}

func (o *cancelObserver) OnStageStart(name string) {
	o.started = append(o.started, name)
}

func (o *cancelObserver) OnStageEnd(name string, _ time.Duration, _ error) {
	o.ended = append(o.ended, name)
	if len(o.ended) == o.after {
		o.cancel()
	}
}

// TestCancelAtEveryStageBoundary drives the Instrument contract through
// the whole pipeline: a context canceled as stage N completes must
// return a wrapped context.Canceled naming stage N+1 as not started,
// with exactly N stages started and none beyond. Canceling as the final
// stage completes must change nothing. The reference (uncancelled) run
// supplies the stage sequence, so the test adapts if the fallback
// ladder re-runs Extract/Observe.
func TestCancelAtEveryStageBoundary(t *testing.T) {
	in := contextInput()
	for _, m := range []Method{CSP, Probabilistic} {
		opts := DefaultOptions(m)

		ref := &cancelObserver{}
		if _, err := SegmentEnv(context.Background(), in, opts, Env{Observer: ref}); err != nil {
			t.Fatalf("%v: reference run failed: %v", m, err)
		}
		seq := ref.ended
		if len(seq) < len(stage.Names()) {
			t.Fatalf("%v: reference run hit %d stage boundaries %v, want at least %d",
				m, len(seq), seq, len(stage.Names()))
		}

		for n := 1; n < len(seq); n++ {
			ctx, cancel := context.WithCancel(context.Background())
			o := &cancelObserver{cancel: cancel, after: n}
			_, err := SegmentEnv(ctx, in, opts, Env{Observer: o})
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%v: cancel after stage %d (%s): err = %v, want context.Canceled", m, n, seq[n-1], err)
				continue
			}
			if want := fmt.Sprintf("stage: %s not started", seq[n]); !strings.Contains(err.Error(), want) {
				t.Errorf("%v: cancel after stage %d: err = %q, want mention of %q", m, n, err, want)
			}
			if !reflect.DeepEqual(o.started, seq[:n]) {
				t.Errorf("%v: cancel after stage %d: started %v, want %v", m, n, o.started, seq[:n])
			}
			if !reflect.DeepEqual(o.ended, seq[:n]) {
				t.Errorf("%v: cancel after stage %d: ended %v, want %v", m, n, o.ended, seq[:n])
			}
		}

		// Cancellation after the last stage boundary is a no-op: the run
		// has already produced its result.
		ctx, cancel := context.WithCancel(context.Background())
		o := &cancelObserver{cancel: cancel, after: len(seq)}
		seg, err := SegmentEnv(ctx, in, opts, Env{Observer: o})
		cancel()
		if err != nil {
			t.Errorf("%v: cancel after final stage: err = %v, want success", m, err)
		} else if len(seg.Records) == 0 {
			t.Errorf("%v: cancel after final stage: no records", m)
		}
	}
}
