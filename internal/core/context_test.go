package core

import (
	"context"
	"errors"
	"testing"
)

// contextInput is a minimal well-formed input for the cancellation
// tests.
func contextInput() Input {
	list := "<html><body><b>Alpha One</b> <b>Beta Two</b> <b>Gamma Three</b></body></html>"
	return Input{
		ListPages: []Page{{Name: "l1", HTML: list}},
		DetailPages: []Page{
			{Name: "d1", HTML: "<html><body>Alpha One is here</body></html>"},
			{Name: "d2", HTML: "<html><body>Beta Two is here</body></html>"},
		},
	}
}

// TestSegmentContextCancelled verifies an already-cancelled context
// aborts at the first stage boundary with context.Canceled.
func TestSegmentContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Method{CSP, Probabilistic} {
		if _, err := SegmentContext(ctx, contextInput(), DefaultOptions(m)); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", m, err)
		}
	}
}

// TestSegmentContextUncancelled verifies the context plumbing changes
// nothing for a live context: SegmentContext(Background) and Segment
// agree.
func TestSegmentContextUncancelled(t *testing.T) {
	in := contextInput()
	opts := DefaultOptions(CSP)
	want, err := segment(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SegmentContext(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) || got.CSPStatus != want.CSPStatus {
		t.Errorf("SegmentContext diverged from Segment: %d records (%v) vs %d (%v)",
			len(got.Records), got.CSPStatus, len(want.Records), want.CSPStatus)
	}
}
