package core

import (
	"strings"
	"testing"

	"tableseg/internal/csp"
	"tableseg/internal/sitegen"
)

func siteInput(t *testing.T, slug string, pageIdx int) (Input, *sitegen.Site) {
	t.Helper()
	site, err := sitegen.GenerateBySlug(slug, 42)
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Target: pageIdx}
	for _, l := range site.Lists {
		in.ListPages = append(in.ListPages, Page{HTML: l.HTML})
	}
	for _, d := range site.Lists[pageIdx].Details {
		in.DetailPages = append(in.DetailPages, Page{HTML: d})
	}
	return in, site
}

func TestCombinedUsesCSPOnCleanData(t *testing.T) {
	in, site := siteInput(t, "butler", 0)
	seg, err := segment(in, DefaultOptions(Combined))
	if err != nil {
		t.Fatal(err)
	}
	if seg.CSPStatus != csp.Solved {
		t.Errorf("clean site: CSP status %v, want Solved (combined should trust the CSP)", seg.CSPStatus)
	}
	if seg.PHMM != nil {
		t.Error("combined ran the probabilistic model on clean data")
	}
	if len(seg.Records) != len(site.Lists[0].Truth) {
		t.Errorf("%d records", len(seg.Records))
	}
	// CSP-based columns must be present.
	hasCols := false
	for _, rec := range seg.Records {
		for _, c := range rec.Columns {
			if c >= 0 {
				hasCols = true
			}
		}
	}
	if !hasCols {
		t.Error("no CSP column labels in combined output")
	}
}

func TestCombinedFallsBackOnDirtyData(t *testing.T) {
	in, site := siteInput(t, "michigan", 1) // Parole/Parolee page
	seg, err := segment(in, DefaultOptions(Combined))
	if err != nil {
		t.Fatal(err)
	}
	if seg.CSPStatus == csp.Solved {
		t.Fatal("dirty page unexpectedly satisfied the strict CSP; pathology lost")
	}
	if seg.PHMM == nil {
		t.Error("combined did not fall back to the probabilistic model")
	}
	if len(seg.Records) != len(site.Lists[1].Truth) {
		t.Errorf("%d records, want %d", len(seg.Records), len(site.Lists[1].Truth))
	}
}

func TestStripEnumerationOptionInPipeline(t *testing.T) {
	in, site := siteInput(t, "bnbooks", 0)
	opts := DefaultOptions(Probabilistic)
	opts.StripEnumeration = true
	seg, err := segment(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seg.EnumerationStripped == 0 {
		t.Fatal("enumeration heuristic did not fire on a numbered site")
	}
	if seg.UsedWholePage {
		t.Error("whole-page fallback fired despite enumeration stripping")
	}
	if len(seg.Records) != len(site.Lists[0].Truth) {
		t.Errorf("%d records, want %d", len(seg.Records), len(site.Lists[0].Truth))
	}

	// Without the option the same site uses the whole page.
	opts.StripEnumeration = false
	seg2, err := segment(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !seg2.UsedWholePage || seg2.EnumerationStripped != 0 {
		t.Error("baseline behaviour changed")
	}
}

func TestColumnLabelsMined(t *testing.T) {
	in, _ := siteInput(t, "allegheny", 0)
	for _, m := range []Method{CSP, Probabilistic} {
		seg, err := segment(in, DefaultOptions(m))
		if err != nil {
			t.Fatal(err)
		}
		if len(seg.ColumnLabels) == 0 {
			t.Fatalf("%v: no column labels", m)
		}
		joined := strings.Join(seg.ColumnLabels, " ")
		for _, want := range []string{"Parcel", "Owner"} {
			if !strings.Contains(joined, want) {
				t.Errorf("%v: labels %v missing %q", m, seg.ColumnLabels, want)
			}
		}
	}
	// Disabled mining yields no labels.
	opts := DefaultOptions(CSP)
	opts.MineLabels = false
	seg, err := segment(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seg.ColumnLabels != nil {
		t.Errorf("labels mined despite MineLabels=false: %v", seg.ColumnLabels)
	}
}

func TestMethodStringAll(t *testing.T) {
	cases := map[Method]string{
		CSP: "csp", Probabilistic: "probabilistic", Combined: "combined", Method(9): "unknown",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("Method(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestCoversAllPages(t *testing.T) {
	in, _ := siteInput(t, "butler", 0)
	seg, err := segment(in, DefaultOptions(CSP))
	if err != nil {
		t.Fatal(err)
	}
	// Clean grid: the table slot covers every detail page, so the
	// structural fallback must not have fired.
	if seg.UsedWholePage {
		t.Error("coverage fallback fired on a clean site")
	}
}

func TestConfidencePropagation(t *testing.T) {
	in, _ := siteInput(t, "butler", 0)
	seg, err := segment(in, DefaultOptions(Probabilistic))
	if err != nil {
		t.Fatal(err)
	}
	for ri, rec := range seg.Records {
		if len(rec.Confidence) != len(rec.Extracts) {
			t.Fatalf("record %d: %d confidences for %d extracts", ri, len(rec.Confidence), len(rec.Extracts))
		}
		for k, c := range rec.Confidence {
			if rec.Analyzed[k] {
				if c < 0 || c > 1+1e-9 {
					t.Errorf("record %d extract %d: confidence %f", ri, k, c)
				}
			} else if c != -1 {
				t.Errorf("record %d extract %d: attached extract has confidence %f", ri, k, c)
			}
		}
	}
	// CSP output carries no posterior confidences.
	cspSeg, err := segment(in, DefaultOptions(CSP))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range cspSeg.Records {
		for _, c := range rec.Confidence {
			if c != -1 {
				t.Errorf("CSP record has confidence %f", c)
			}
		}
	}
}
