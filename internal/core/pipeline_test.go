package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"tableseg/internal/csp"
)

// buildSite makes a small two-list-page site with grid rows and matching
// detail pages.
func buildSite(rows1, rows2 [][]string) (lists []Page, details []Page) {
	render := func(rows [][]string) string {
		var b strings.Builder
		b.WriteString("<html><body><h1>Test Site Directory</h1><p>Search Results Below Refine Query Advanced Options</p><table>")
		for _, r := range rows {
			b.WriteString("<tr>")
			for _, c := range r {
				b.WriteString("<td>" + c + "</td>")
			}
			b.WriteString("</tr>")
		}
		b.WriteString("</table><p>Copyright 2004 Test Site Inc Terms Privacy Contact</p></body></html>")
		return b.String()
	}
	lists = []Page{{Name: "l1", HTML: render(rows1)}, {Name: "l2", HTML: render(rows2)}}
	for i, r := range rows1 {
		details = append(details, Page{
			Name: fmt.Sprintf("d%d", i),
			HTML: "<html><body><h2>Detail View</h2><p>" + strings.Join(r, "</p><p>") + "</p><p>Common Detail Footer</p></body></html>",
		})
	}
	return lists, details
}

var rows1 = [][]string{
	{"Ann Lee", "12 Oak St", "(555) 283-9922"},
	{"Bob Day", "99 Elm Rd", "(555) 761-0301"},
	{"Cal Roe", "7 Pine Ave", "(555) 440-1188"},
}
var rows2 = [][]string{
	{"Dee Fox", "4 Elm Ct", "(555) 019-3321"},
	{"Eli Orr", "31 Ash Ln", "(555) 678-4410"},
}

func TestSegmentBothMethods(t *testing.T) {
	lists, details := buildSite(rows1, rows2)
	in := Input{ListPages: lists, Target: 0, DetailPages: details}
	for _, m := range []Method{CSP, Probabilistic} {
		seg, err := segment(in, DefaultOptions(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if seg.UsedWholePage {
			t.Errorf("%v: unexpected whole-page fallback (quality %.2f)", m, seg.TemplateQuality)
		}
		if len(seg.Records) != 3 {
			t.Fatalf("%v: %d records, want 3", m, len(seg.Records))
		}
		for ri, rec := range seg.Records {
			if rec.Index != ri {
				t.Errorf("%v: record %d has index %d", m, ri, rec.Index)
			}
			got := strings.Join(rec.Texts(), " ")
			want := strings.Join(rows1[ri], " ")
			if got != want {
				t.Errorf("%v: record %d = %q, want %q", m, ri, got, want)
			}
		}
	}
}

func TestSegmentColumnsFromPHMM(t *testing.T) {
	lists, details := buildSite(rows1, rows2)
	in := Input{ListPages: lists, Target: 0, DetailPages: details}
	seg, err := segment(in, DefaultOptions(Probabilistic))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range seg.Records {
		for i := 1; i < len(rec.Columns); i++ {
			if rec.Columns[i] <= rec.Columns[i-1] {
				t.Errorf("record %d columns not increasing: %v", rec.Index, rec.Columns)
			}
		}
		if rec.Columns[0] != 0 {
			t.Errorf("record %d starts at column %d", rec.Index, rec.Columns[0])
		}
	}
	if seg.PHMM == nil {
		t.Error("PHMM result not attached")
	}
}

func TestSegmentValidation(t *testing.T) {
	lists, details := buildSite(rows1, rows2)
	if _, err := segment(Input{}, DefaultOptions(CSP)); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := segment(Input{ListPages: lists, Target: 5, DetailPages: details}, DefaultOptions(CSP)); err == nil {
		t.Error("out-of-range target must fail")
	}
	if _, err := segment(Input{ListPages: lists, Target: 0}, DefaultOptions(CSP)); err == nil {
		t.Error("missing detail pages must fail")
	}
	if _, err := segment(Input{ListPages: lists, Target: 0, DetailPages: details}, Options{Method: Method(9)}); err == nil {
		t.Error("unknown method must fail")
	}
}

func TestSegmentSingleListPage(t *testing.T) {
	// With only one sample page, cross-page template induction is
	// impossible; the pipeline falls back to single-page row-structure
	// analysis, which on a grid page still bounds the table.
	lists, details := buildSite(rows1, rows2)
	in := Input{ListPages: lists[:1], Target: 0, DetailPages: details}
	seg, err := segment(in, DefaultOptions(Probabilistic))
	if err != nil {
		t.Fatal(err)
	}
	if seg.UsedWholePage {
		t.Error("repeated-row page should get a single-page slot, not the whole page")
	}
	if len(seg.Records) != 3 {
		t.Errorf("%d records, want 3", len(seg.Records))
	}
	for ri, rec := range seg.Records {
		got := strings.Join(rec.Texts(), " ")
		want := strings.Join(rows1[ri], " ")
		if got != want {
			t.Errorf("record %d = %q, want %q", ri, got, want)
		}
	}

	// A single page with no repeated row structure falls back to the
	// whole page; with a single detail page no extract is informative
	// (everything appears on all detail pages), which the redesigned
	// API reports as the typed ErrNoDetailEvidence while still
	// returning the diagnostics.
	oneOff := Page{HTML: `<html><body><p>Ann Lee</p><span>12 Oak St</span><i>(555) 283-9922</i></body></html>`}
	in2 := Input{ListPages: []Page{oneOff}, Target: 0, DetailPages: details[:1]}
	seg2, err := segment(in2, DefaultOptions(Probabilistic))
	if !errors.Is(err, ErrNoDetailEvidence) {
		t.Fatalf("err = %v, want ErrNoDetailEvidence", err)
	}
	if seg2 == nil || !seg2.UsedWholePage {
		t.Error("structureless page must use the whole page")
	}
}

func TestSegmentForceWholePage(t *testing.T) {
	lists, details := buildSite(rows1, rows2)
	in := Input{ListPages: lists, Target: 0, DetailPages: details}
	opts := DefaultOptions(CSP)
	opts.ForceWholePage = true
	seg, err := segment(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !seg.UsedWholePage {
		t.Error("ForceWholePage ignored")
	}
	if len(seg.Records) != 3 {
		t.Errorf("%d records, want 3", len(seg.Records))
	}
}

// The §6.2 attachment rule: a string with no detail-page evidence joins
// the record of the last assigned extract.
func TestAttachmentRule(t *testing.T) {
	// "view map" appears on the list page only (after each phone),
	// like the paper's "More Info"/"Send Flowers" extras — but only on
	// list page 1, so the all-list-pages filter does not remove it.
	r1 := [][]string{
		{"Ann Lee", "12 Oak St", "(555) 283-9922", "view map"},
		{"Bob Day", "99 Elm Rd", "(555) 761-0301", "view map"},
	}
	render := func(rows [][]string, footer string) string {
		var b strings.Builder
		b.WriteString("<html><body><h1>Test Site Directory</h1><p>Search Results Below Refine Query Advanced Options</p><table>")
		for _, r := range rows {
			b.WriteString("<tr>")
			for _, c := range r {
				b.WriteString("<td>" + c + "</td>")
			}
			b.WriteString("</tr>")
		}
		b.WriteString("</table>" + footer + "</body></html>")
		return b.String()
	}
	lists := []Page{
		{Name: "l1", HTML: render(r1, "<p>Copyright 2004 Test Site Inc Terms Privacy Contact</p>")},
		{Name: "l2", HTML: render([][]string{{"Dee Fox", "4 Elm Ct", "(555) 019-3321", "directions"}}, "<p>Copyright 2004 Test Site Inc Terms Privacy Contact</p>")},
	}
	details := []Page{
		{Name: "d0", HTML: "<html><body><h2>Detail View</h2><p>Ann Lee</p><p>12 Oak St</p><p>(555) 283-9922</p></body></html>"},
		{Name: "d1", HTML: "<html><body><h2>Detail View</h2><p>Bob Day</p><p>99 Elm Rd</p><p>(555) 761-0301</p></body></html>"},
	}
	in := Input{ListPages: lists, Target: 0, DetailPages: details}
	seg, err := segment(in, DefaultOptions(CSP))
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Records) != 2 {
		t.Fatalf("%d records", len(seg.Records))
	}
	for ri, rec := range seg.Records {
		texts := rec.Texts()
		if texts[len(texts)-1] != "view map" {
			t.Errorf("record %d: 'view map' not attached: %v", ri, texts)
		}
		// The attached extract must be flagged as non-analyzed.
		if rec.Analyzed[len(rec.Analyzed)-1] {
			t.Errorf("record %d: attached extract marked analyzed", ri)
		}
		if !rec.Analyzed[0] {
			t.Errorf("record %d: anchor extract not marked analyzed", ri)
		}
	}
}

func TestNumberedEntriesWholePageFallback(t *testing.T) {
	render := func(rows []string) string {
		var b strings.Builder
		b.WriteString("<html><body><h1>Numbered Books Store Results</h1><p>Many Fine Titles Available Here Daily</p>")
		for i, r := range rows {
			fmt.Fprintf(&b, "<p><b>%d.</b> <a href=\"d\">%s</a></p>", i+1, r)
		}
		b.WriteString("<p>Copyright 2004 Numbered Books Inc Terms Privacy</p></body></html>")
		return b.String()
	}
	lists := []Page{
		{Name: "l1", HTML: render([]string{"Alpha Tale", "Beta Story", "Gamma Saga", "Delta Myth"})},
		{Name: "l2", HTML: render([]string{"Epsilon Epic", "Zeta Fable", "Eta Legend", "Theta Yarn"})},
	}
	var details []Page
	for _, tl := range []string{"Alpha Tale", "Beta Story", "Gamma Saga", "Delta Myth"} {
		details = append(details, Page{HTML: "<html><body><h2>Book Detail</h2><p>" + tl + "</p></body></html>"})
	}
	in := Input{ListPages: lists, Target: 0, DetailPages: details}
	seg, err := segment(in, DefaultOptions(CSP))
	if err != nil {
		t.Fatal(err)
	}
	if !seg.UsedWholePage {
		t.Errorf("numbered entries should force whole-page fallback (quality %.2f)", seg.TemplateQuality)
	}
	if len(seg.Records) != 4 {
		t.Errorf("%d records, want 4", len(seg.Records))
	}
}

func TestCSPStatusPropagates(t *testing.T) {
	lists, details := buildSite(rows1, rows2)
	in := Input{ListPages: lists, Target: 0, DetailPages: details}
	seg, err := segment(in, DefaultOptions(CSP))
	if err != nil {
		t.Fatal(err)
	}
	if seg.CSPStatus != csp.Solved {
		t.Errorf("status %v, want Solved", seg.CSPStatus)
	}
	if seg.Relaxed {
		t.Error("clean input should not relax")
	}
}

func TestMethodString(t *testing.T) {
	if CSP.String() != "csp" || Probabilistic.String() != "probabilistic" {
		t.Error("method strings")
	}
}

func TestSentinelErrors(t *testing.T) {
	lists, details := buildSite(rows1, rows2)
	if _, err := segment(Input{DetailPages: details}, DefaultOptions(CSP)); !errors.Is(err, ErrNoListPages) {
		t.Errorf("err = %v, want ErrNoListPages", err)
	}
	if _, err := segment(Input{ListPages: lists, Target: 9, DetailPages: details}, DefaultOptions(CSP)); !errors.Is(err, ErrBadTarget) {
		t.Errorf("err = %v, want ErrBadTarget", err)
	}
	if _, err := segment(Input{ListPages: lists}, DefaultOptions(CSP)); !errors.Is(err, ErrNoDetailPages) {
		t.Errorf("err = %v, want ErrNoDetailPages", err)
	}
}

// Extracts before the first method-assigned extract belong to no record
// (page prologue); extracts after the last assigned one attach to it.
func TestPrologueDroppedEpilogueAttached(t *testing.T) {
	// The page has leading junk ("Intro Words Here") that matches no
	// detail page and trailing junk after the last record.
	list1 := `<html><body><p>Intro Words Here</p>` +
		`<table><tr><td>Ann Lee</td><td>(555) 283-9922</td></tr>` +
		`<tr><td>Bob Day</td><td>(555) 761-0301</td></tr></table>` +
		`<p>trailing epilogue words</p></body></html>`
	in := Input{
		ListPages: []Page{{HTML: list1}},
		Target:    0,
		DetailPages: []Page{
			{HTML: `<p>Ann Lee</p><p>(555) 283-9922</p>`},
			{HTML: `<p>Bob Day</p><p>(555) 761-0301</p>`},
		},
	}
	opts := DefaultOptions(CSP)
	opts.ForceWholePage = true // keep junk in scope deliberately
	seg, err := segment(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Records) != 2 {
		t.Fatalf("%d records", len(seg.Records))
	}
	joined0 := strings.Join(seg.Records[0].Texts(), " ")
	if strings.Contains(joined0, "Intro") {
		t.Errorf("prologue attached to record 1: %q", joined0)
	}
	joined1 := strings.Join(seg.Records[1].Texts(), " ")
	if !strings.Contains(joined1, "trailing epilogue words") {
		t.Errorf("epilogue not attached to last record: %q", joined1)
	}
}
