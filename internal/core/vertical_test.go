package core

import (
	"sort"
	"strings"
	"testing"

	"tableseg/internal/sitegen"
)

func verticalInput(t *testing.T, site *sitegen.Site, pageIdx int) Input {
	t.Helper()
	in := Input{Target: pageIdx}
	for _, l := range site.Lists {
		in.ListPages = append(in.ListPages, Page{HTML: l.HTML})
	}
	for _, d := range site.Lists[pageIdx].Details {
		in.DetailPages = append(in.DetailPages, Page{HTML: d})
	}
	return in
}

// recordValueSets extracts each predicted record's analyzed extract
// texts as a sorted set.
func recordValueSets(seg *Segmentation) []map[string]bool {
	out := make([]map[string]bool, len(seg.Records))
	for i, rec := range seg.Records {
		out[i] = map[string]bool{}
		for k, ex := range rec.Extracts {
			if rec.Analyzed[k] {
				out[i][ex.Text()] = true
			}
		}
	}
	return out
}

func TestVerticalTableDetectedAndSegmented(t *testing.T) {
	site := sitegen.GenerateVerticalDemo(11, 5)
	in := verticalInput(t, site, 0)
	for _, m := range []Method{CSP, Probabilistic} {
		opts := DefaultOptions(m)
		opts.DetectVertical = true
		seg, err := segment(in, opts)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !seg.Vertical {
			t.Fatalf("%v: vertical layout not detected", m)
		}
		if len(seg.Records) != 5 {
			t.Fatalf("%v: %d records, want 5", m, len(seg.Records))
		}
		// Every record must contain exactly its own ground-truth
		// values (vertical truth has no spans; judge by content).
		sets := recordValueSets(seg)
		for ri, truth := range site.Lists[0].Truth {
			// Find the predicted record matching by the unique phone
			// (last field).
			phone := truth.Values[len(truth.Values)-1]
			found := -1
			for pi, set := range sets {
				if set[phone] {
					found = pi
				}
			}
			if found < 0 {
				t.Fatalf("%v: record %d (phone %s) not found", m, ri, phone)
			}
			for _, v := range truth.Values {
				if !sets[found][v] {
					t.Errorf("%v: record %d missing value %q (got %v)", m, ri, v, keys(sets[found]))
				}
			}
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Without the extension, a vertical table confounds the standard
// horizontal machinery: consecutiveness cannot hold, so the CSP is
// forced to relax and shreds the records.
func TestVerticalTableWithoutExtension(t *testing.T) {
	site := sitegen.GenerateVerticalDemo(11, 5)
	in := verticalInput(t, site, 0)
	seg, err := segment(in, DefaultOptions(CSP))
	if err != nil {
		t.Fatal(err)
	}
	if seg.Vertical {
		t.Fatal("extension disabled but Vertical flag set")
	}
	intact := 0
	sets := recordValueSets(seg)
	for _, truth := range site.Lists[0].Truth {
		for _, set := range sets {
			all := true
			for _, v := range truth.Values {
				if !set[v] {
					all = false
					break
				}
			}
			if all {
				intact++
				break
			}
		}
	}
	if intact == len(site.Lists[0].Truth) {
		t.Error("horizontal machinery unexpectedly reconstructed every vertical record; the extension is redundant")
	}
}

// Horizontal sites must be unaffected when detection is on (no false
// positives).
func TestVerticalDetectionNoFalsePositive(t *testing.T) {
	site, err := sitegen.GenerateBySlug("butler", 42)
	if err != nil {
		t.Fatal(err)
	}
	in := verticalInput(t, site, 0)
	opts := DefaultOptions(CSP)
	opts.DetectVertical = true
	seg, err := segment(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Vertical {
		t.Error("horizontal site judged vertical")
	}
	if len(seg.Records) != 15 {
		t.Errorf("%d records, want 15", len(seg.Records))
	}
	for ri, rec := range seg.Records {
		got := strings.Join(rec.Texts(), " ")
		want := strings.Join(site.Lists[0].Truth[ri].Values, " ")
		if got != want {
			t.Errorf("record %d changed under DetectVertical: %q vs %q", ri, got, want)
		}
	}
}
