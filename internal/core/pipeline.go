// Package core orchestrates the paper's end-to-end pipeline (§3) as an
// explicit stage graph: Tokenize → InduceTemplate → SelectSlot →
// Extract → Observe → Segment → PostProcess. The stages themselves are
// pure functions over typed artifacts (internal/stage); the algorithms
// behind the Segment stage implement stage.Solver and live behind the
// solver registry (internal/solvers registers the built-ins). What
// remains here is the paper's control flow — input validation, the
// fallback and retry ladder (single-page row detection, shattered-slot
// whole-page fallback, coverage retry), error classification into the
// typed sentinels, and the mapping of solver diagnostics onto the
// public Segmentation.
package core

import (
	"context"
	"fmt"

	"tableseg/internal/baseline"
	"tableseg/internal/csp"
	"tableseg/internal/pagetemplate"
	"tableseg/internal/phmm"
	"tableseg/internal/solvers"
	"tableseg/internal/stage"
	"tableseg/internal/token"
)

// SitePrep holds the per-site artifacts of a segmentation task that do
// not depend on the target page or the detail pages: the tokenized
// sample list pages and the template induced from them. A SitePrep is
// immutable once built, so one prep may back many concurrent Segment
// calls for the same site (the engine's template cache relies on this).
type SitePrep struct {
	// ListToks are the tokenized list pages, parallel to the ListPages
	// the prep was built from.
	ListToks [][]token.Token
	// Tpl is the induced page template, nil when fewer than two sample
	// pages were available.
	Tpl *pagetemplate.Template
}

// PrepareSite tokenizes a site's sample list pages and induces their
// shared template, for reuse across every task that targets the site.
// A non-nil cache resolves tokenization through it (and retains the
// streams for later detail-page hits).
func PrepareSite(listPages []Page, cache stage.TokenCache) *SitePrep {
	prep := &SitePrep{ListToks: make([][]token.Token, len(listPages))}
	for i, p := range listPages {
		if cache != nil {
			prep.ListToks[i] = cache.Tokens(p)
		} else {
			prep.ListToks[i] = token.Tokenize(p.HTML)
		}
	}
	if len(listPages) >= 2 {
		prep.Tpl = pagetemplate.Induce(prep.ListToks)
	}
	return prep
}

// Env carries the batch-processing hooks of one Segment call. The zero
// Env is valid: no reuse, no observation, no collection.
type Env struct {
	// Prep, when non-nil, supplies the tokenized list pages and induced
	// template (it must have been built from the input's ListPages), so
	// repeated tasks against one site skip re-tokenization and
	// re-induction.
	Prep *SitePrep
	// Tokens, when non-nil, resolves page tokenization through a shared
	// content-addressed artifact cache (the engine shares detail pages
	// across tasks through it).
	Tokens stage.TokenCache
	// Observer, when non-nil, receives a callback at every stage
	// boundary, in addition to the Stats collection.
	Observer stage.Observer
	// Stats, when non-nil, receives per-stage wall times and solver
	// counters.
	Stats *Stats
}

// SegmentContext runs the full pipeline under a context: cancellation
// and deadlines are honored at stage boundaries and inside the solver
// hot loops (WSAT restarts, EM iterations), so a cancelled call returns
// ctx.Err() promptly while uncancelled runs stay deterministic.
func SegmentContext(ctx context.Context, in Input, opts Options) (*Segmentation, error) {
	return SegmentEnv(ctx, in, opts, Env{})
}

// SegmentPrepared is SegmentContext with the original batch hooks,
// kept for compatibility; new callers use SegmentEnv.
func SegmentPrepared(ctx context.Context, in Input, opts Options, prep *SitePrep, stats *Stats) (*Segmentation, error) {
	return SegmentEnv(ctx, in, opts, Env{Prep: prep, Stats: stats})
}

// SegmentEnv runs the stage graph over one input with the given
// environment hooks.
func SegmentEnv(ctx context.Context, in Input, opts Options, env Env) (*Segmentation, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(in.ListPages) == 0 {
		return nil, fmt.Errorf("%w: need at least one", ErrTooFewListPages)
	}
	if in.Target < 0 || in.Target >= len(in.ListPages) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadTarget, in.Target, len(in.ListPages))
	}
	if len(in.DetailPages) == 0 {
		return nil, ErrNoDetailPages
	}
	if opts.MinSlotQuality == 0 {
		opts.MinSlotQuality = 0.5
	}
	stats := env.Stats
	if stats == nil {
		stats = &Stats{} // discarded collector; keeps the hot path branch-free
	}
	var obs stage.Observer = &statsObserver{stats: stats}
	if env.Observer != nil {
		obs = stage.MultiObserver{obs, env.Observer}
	}
	solver, err := newSolver(opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Tokenize everything (through the prep and cache when supplied).
	var preparedLists [][]token.Token
	if env.Prep != nil {
		preparedLists = env.Prep.ListToks
	}
	toks, err := stage.Instrument(ctx, stage.StageTokenize, obs, stage.Tokenize, stage.TokenizeIn{
		ListPages: in.ListPages, DetailPages: in.DetailPages,
		PreparedLists: preparedLists, Cache: env.Tokens,
	})
	if err != nil {
		return nil, err
	}
	target := toks.Lists[in.Target].Tokens

	// Template induction over the sample list pages.
	var preparedTpl *pagetemplate.Template
	if env.Prep != nil {
		preparedTpl = env.Prep.Tpl
	}
	tpl, err := stage.Instrument(ctx, stage.StageInduceTemplate, obs, stage.InduceTemplate, stage.TemplateIn{
		Lists: toks.Lists, Prepared: preparedTpl,
	})
	if err != nil {
		return nil, err
	}

	// Table-slot location, with the paper's whole-page fallbacks.
	slot, err := stage.Instrument(ctx, stage.StageSelectSlot, obs, stage.SelectSlot, stage.SlotIn{
		Template: tpl, Lists: toks.Lists, Target: in.Target,
		MinSlotQuality: opts.MinSlotQuality, StripEnumeration: opts.StripEnumeration,
		ForceWholePage: opts.ForceWholePage,
	})
	if err != nil {
		return nil, err
	}
	// A single sample page cannot support cross-page template
	// induction; fall back to single-page row-repetition analysis (the
	// IEPAD-style detector) to bound the table region, and keep the
	// whole page when no repeated row structure exists.
	if !opts.ForceWholePage && len(in.ListPages) < 2 {
		if s, e, ok := baseline.TableSpan(target); ok {
			slot = stage.Slot{Start: s, End: e, Quality: 1}
		}
	}
	seg := &Segmentation{Method: opts.Method, Solver: solver.Name()}
	seg.UsedWholePage = slot.WholePage
	seg.TemplateQuality = slot.Quality
	seg.EnumerationStripped = slot.EnumerationStripped

	// Extracts and observations.
	var otherLists [][]token.Token
	for i := range toks.Lists {
		if i != in.Target {
			otherLists = append(otherLists, toks.Lists[i].Tokens)
		}
	}
	observe := func(slot stage.Slot) (stage.Extracts, *stage.ObservationMatrix, error) {
		exs, err := stage.Instrument(ctx, stage.StageExtract, obs, stage.Extract,
			stage.ExtractIn{Target: toks.Lists[in.Target], Slot: slot})
		if err != nil {
			return stage.Extracts{}, nil, err
		}
		matrix, err := stage.Instrument(ctx, stage.StageObserve, obs, stage.Observe, stage.ObserveIn{
			Extracts: exs, Details: toks.Details, OtherLists: otherLists,
			DetectVertical: opts.DetectVertical,
		})
		return exs, matrix, err
	}
	exs, matrix, err := observe(slot)
	if err != nil {
		return nil, err
	}
	// Structural sanity check: every detail page is a record of this
	// list page, so every detail page should support at least one
	// analyzed extract. If some pages are uncovered the table slot is
	// probably truncated (a data value masquerading as a template token
	// split the table) — retry with the whole page.
	if !slot.WholePage && !matrix.Covered {
		seg.UsedWholePage = true
		exs, matrix, err = observe(stage.Slot{Start: 0, End: len(target), WholePage: true})
		if err != nil {
			return nil, err
		}
	}
	seg.TotalExtracts = len(exs.Items)
	seg.Analyzed = len(matrix.Analyzed)
	if len(exs.Items) == 0 {
		return seg, fmt.Errorf("%w: %q", ErrNoTableSlot, in.ListPages[in.Target].Name)
	}
	if len(matrix.Analyzed) == 0 {
		// Nothing to segment: no extract appears on any detail page.
		// The segmentation still carries its diagnostics.
		return seg, fmt.Errorf("%w: %q (%d extracts)", ErrNoDetailEvidence, in.ListPages[in.Target].Name, len(exs.Items))
	}
	seg.Vertical = matrix.Vertical

	// Run the selected solver over the analyzed extracts.
	asg, err := stage.Instrument(ctx, stage.StageSegment, obs, stage.Segment, stage.SegmentIn{
		Problem: stage.BuildProblem(matrix), Solver: solver,
	})
	if err != nil {
		return nil, err
	}
	stats.WSATRestarts += asg.Counters.WSATRestarts
	stats.WSATFlips += asg.Counters.WSATFlips
	stats.CutRounds += asg.Counters.CutRounds
	stats.EMIters += asg.Counters.EMIters
	for _, d := range asg.Details {
		switch v := d.(type) {
		case *csp.SegmentResult:
			seg.CSPStatus = v.Status
			seg.Relaxed = v.Relaxed
		case *phmm.Result:
			seg.PHMM = v
		}
	}
	if asg.Exhausted {
		// The solver ran out of fallbacks without finding any feasible
		// assignment; report it as a typed error (the seg still carries
		// the diagnostics).
		return seg, fmt.Errorf("%w: %q", ErrCSPUnsatisfiable, in.ListPages[in.Target].Name)
	}

	// Attach the evidence-free remainder (§6.2), mine column labels.
	post, err := stage.Instrument(ctx, stage.StagePostProcess, obs, stage.PostProcess, stage.PostIn{
		Extracts: exs, Matrix: matrix, Assignment: asg,
		Details: toks.Details, MineLabels: opts.MineLabels,
	})
	if err != nil {
		return nil, err
	}
	seg.ColumnLabels = post.ColumnLabels
	seg.Records = post.Records
	return seg, nil
}

// newSolver resolves the options to a configured registry solver.
func newSolver(opts Options) (stage.Solver, error) {
	name := opts.Solver
	if name == "" {
		name = opts.Method.String()
	}
	s, err := stage.NewSolver(name, solvers.Config{
		CSP: opts.CSPParams, PHMM: opts.PHMMParams, CSPColumns: opts.CSPColumns,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadOptions, err)
	}
	return s, nil
}
