// Package core implements the paper's end-to-end pipeline (§3): given
// sample list pages from a site and the detail pages linked from one of
// them, it tokenizes the pages, induces the page template, locates the
// table slot, extracts the visible strings, builds the detail-page
// observation matrix, and segments the extracts into records with either
// the CSP method (§4) or the probabilistic method (§5). It also applies
// the paper's post-processing rule: table data that carries no
// detail-page evidence is attached to the record of the last assigned
// extract (§6.2).
package core

import (
	"context"
	"fmt"

	"tableseg/internal/baseline"
	"tableseg/internal/clock"
	"tableseg/internal/csp"
	"tableseg/internal/extract"
	"tableseg/internal/labels"
	"tableseg/internal/pagetemplate"
	"tableseg/internal/phmm"
	"tableseg/internal/token"
	"tableseg/internal/vertical"
)

// Page is one HTML document.
type Page struct {
	// Name identifies the page in diagnostics (a URL or file name).
	Name string
	// HTML is the raw document source.
	HTML string
}

// Input describes one segmentation task.
type Input struct {
	// ListPages are the sampled list pages from the site; at least two
	// are needed for template induction (§3.1). All are used for the
	// "appears on all list pages" filter.
	ListPages []Page
	// Target is the index into ListPages of the page to segment.
	Target int
	// DetailPages are the detail pages linked from the target list
	// page, in the order their links appear (record order).
	DetailPages []Page
}

// Method selects the segmentation algorithm.
type Method int

const (
	// CSP is the constraint-satisfaction method of §4.
	CSP Method = iota
	// Probabilistic is the factored-HMM method of §5.
	Probabilistic
	// Combined is the §7 suggestion that "both techniques (or a
	// combination of the two) are likely to be required": it trusts
	// the CSP where the strict constraints are satisfiable (clean
	// data, where the CSP is most reliable) and falls back to the
	// inconsistency-tolerant probabilistic model otherwise.
	Combined
)

func (m Method) String() string {
	switch m {
	case CSP:
		return "csp"
	case Probabilistic:
		return "probabilistic"
	case Combined:
		return "combined"
	default:
		return "unknown"
	}
}

// Options tunes the pipeline.
type Options struct {
	Method Method
	// MinSlotQuality is the threshold below which the template's table
	// slot is considered shattered and the whole page is used instead
	// (the paper's fallback for numbered entries). Default 0.5.
	MinSlotQuality float64
	// ForceWholePage skips template finding entirely (ablation).
	ForceWholePage bool
	// MineLabels enables §3.4's semantic column labeling: column names
	// are mined from the captions preceding each value on its detail
	// page.
	MineLabels bool
	// CSPColumns enables §6.3's CSP-based column extraction: after a
	// successful record segmentation, a second constraint problem
	// assigns column labels using content-similarity constraints.
	CSPColumns bool
	// DetectVertical enables vertical-table handling (an extension
	// beyond §3's horizontal-only scope): when adjacent extracts'
	// detail sets are mostly disjoint the table is judged vertical and
	// the extract stream is transposed into record-major order before
	// segmentation.
	DetectVertical bool
	// StripEnumeration enables the §6.3 future-work heuristic: detect
	// enumerated entries ("1.", "2.", ...) in the induced skeleton and
	// strip them before locating the table slot, instead of falling
	// back to the whole page. Off by default to keep the headline
	// Table 4 faithful to the paper.
	StripEnumeration bool
	// CSPParams configures the CSP solver.
	CSPParams csp.SolveParams
	// PHMMParams configures the probabilistic model.
	PHMMParams phmm.Params
}

// DefaultOptions returns the configuration used in the paper
// reproduction for the given method.
func DefaultOptions(m Method) Options {
	return Options{
		Method:         m,
		MinSlotQuality: 0.5,
		CSPParams:      csp.SolveParams{ExactCheck: true},
		CSPColumns:     true,
		MineLabels:     true,
		PHMMParams:     phmm.DefaultParams(),
	}
}

// Record is one segmented record.
type Record struct {
	// Index is the record number: the index of the detail page the
	// record corresponds to.
	Index int
	// Extracts are the record's extracts in stream order (both the
	// evidence-bearing ones and the attached remainder).
	Extracts []extract.Extract
	// Columns holds, per extract, the column label assigned by the
	// probabilistic method (§3.4), or -1 when unavailable.
	Columns []int
	// Analyzed marks, per extract, whether it was an informative
	// (evidence-bearing) extract; the rest were attached by the §6.2
	// rule.
	Analyzed []bool
	// Confidence holds, per extract, the probabilistic method's
	// posterior confidence in the assignment (-1 for attached extracts
	// or when the CSP method ran).
	Confidence []float64
}

// Texts returns the record's extract strings in order.
func (r *Record) Texts() []string {
	out := make([]string, len(r.Extracts))
	for i := range r.Extracts {
		out[i] = r.Extracts[i].Text()
	}
	return out
}

// Segmentation is the pipeline's result.
type Segmentation struct {
	// Records in record order. Records with no evidence on the list
	// page are absent.
	Records []Record
	// Method that produced the segmentation.
	Method Method
	// UsedWholePage is true when the template fallback fired (§6.2).
	UsedWholePage bool
	// EnumerationStripped counts the enumerated skeleton tokens removed
	// by the StripEnumeration heuristic (0 when disabled or not
	// needed).
	EnumerationStripped int
	// Vertical is true when the vertical-table extension detected a
	// vertically laid out table and transposed the extract stream.
	Vertical bool
	// TemplateQuality is the table-slot concentration measure.
	TemplateQuality float64
	// TotalExtracts and Analyzed count the table slot's extracts and
	// the informative subset used for inference.
	TotalExtracts, Analyzed int
	// CSPStatus reports the solver outcome for the CSP method.
	CSPStatus csp.Status
	// Relaxed is true when the CSP relaxation ladder fired.
	Relaxed bool
	// PHMM carries the learned model for the probabilistic method.
	PHMM *phmm.Result
	// ColumnLabels holds the mined semantic name of each column label
	// (index = column number, "" when no caption was found); nil when
	// label mining is disabled or no columns were assigned.
	ColumnLabels []string
}

// minTextSkeleton is the fewest invariant text tokens a credible page
// template must have; below it the induced skeleton is just structural
// tags and the pipeline falls back to the whole page.
const minTextSkeleton = 6

// SitePrep holds the per-site artifacts of a segmentation task that do
// not depend on the target page or the detail pages: the tokenized
// sample list pages and the template induced from them. A SitePrep is
// immutable once built, so one prep may back many concurrent Segment
// calls for the same site (the engine's template cache relies on this).
type SitePrep struct {
	// ListToks are the tokenized list pages, parallel to the ListPages
	// the prep was built from.
	ListToks [][]token.Token
	// Tpl is the induced page template, nil when fewer than two sample
	// pages were available.
	Tpl *pagetemplate.Template
}

// PrepareSite tokenizes a site's sample list pages and induces their
// shared template, for reuse across every task that targets the site.
func PrepareSite(listPages []Page) *SitePrep {
	prep := &SitePrep{ListToks: make([][]token.Token, len(listPages))}
	for i, p := range listPages {
		prep.ListToks[i] = token.Tokenize(p.HTML)
	}
	if len(listPages) >= 2 {
		prep.Tpl = pagetemplate.Induce(prep.ListToks)
	}
	return prep
}

// SegmentContext runs the full pipeline under a context: cancellation
// and deadlines are honored at stage boundaries and inside the solver
// hot loops (WSAT restarts, EM iterations), so a cancelled call returns
// ctx.Err() promptly while uncancelled runs stay deterministic.
func SegmentContext(ctx context.Context, in Input, opts Options) (*Segmentation, error) {
	return SegmentPrepared(ctx, in, opts, nil, nil)
}

// SegmentPrepared is SegmentContext with two batch-processing hooks:
// prep, when non-nil, supplies the tokenized list pages and induced
// template (it must have been built from in.ListPages) so repeated
// tasks against one site skip re-tokenization and re-induction; stats,
// when non-nil, receives per-stage wall times and solver counters.
func SegmentPrepared(ctx context.Context, in Input, opts Options, prep *SitePrep, stats *Stats) (*Segmentation, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(in.ListPages) == 0 {
		return nil, fmt.Errorf("%w: need at least one", ErrTooFewListPages)
	}
	if in.Target < 0 || in.Target >= len(in.ListPages) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadTarget, in.Target, len(in.ListPages))
	}
	if len(in.DetailPages) == 0 {
		return nil, ErrNoDetailPages
	}
	if opts.MinSlotQuality == 0 {
		opts.MinSlotQuality = 0.5
	}
	if stats == nil {
		stats = &Stats{} // discarded collector; keeps the hot path branch-free
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// 1. Tokenize everything (reusing the site prep when supplied).
	start := clock.Now()
	var listToks [][]token.Token
	if prep != nil {
		listToks = prep.ListToks
	} else {
		listToks = make([][]token.Token, len(in.ListPages))
		for i, p := range in.ListPages {
			listToks[i] = token.Tokenize(p.HTML)
		}
	}
	detailToks := make([][]token.Token, len(in.DetailPages))
	for i, p := range in.DetailPages {
		detailToks[i] = token.Tokenize(p.HTML)
	}
	target := listToks[in.Target]
	stats.TokenizeTime += clock.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// 2. Template induction and table-slot location.
	start = clock.Now()
	seg := &Segmentation{Method: opts.Method}
	slot := pagetemplate.Slot{Start: 0, End: len(target)}
	if opts.ForceWholePage {
		seg.UsedWholePage = true
	} else if len(in.ListPages) < 2 {
		// A single sample page cannot support cross-page template
		// induction; fall back to single-page row-repetition analysis
		// (the IEPAD-style detector) to bound the table region, and to
		// the whole page when no repeated row structure exists.
		if s, ok := singlePageSlot(target); ok {
			slot = s
			seg.TemplateQuality = 1
		} else {
			seg.UsedWholePage = true
		}
	} else {
		var tpl *pagetemplate.Template
		if prep != nil && prep.Tpl != nil {
			tpl = prep.Tpl
		} else {
			tpl = pagetemplate.Induce(listToks)
		}
		slots := tpl.SlotsOn(in.Target, len(target))
		tableSlot, quality := pagetemplate.TableSlot(slots, target)
		seg.TemplateQuality = quality
		// When the slot is shattered, optionally try the §6.3
		// enumerated-entries heuristic before giving up on the
		// template.
		if quality < opts.MinSlotQuality && opts.StripEnumeration {
			if stripped, n := tpl.StripEnumeration(); n > 0 {
				slots = stripped.SlotsOn(in.Target, len(target))
				if s2, q2 := pagetemplate.TableSlot(slots, target); q2 > quality {
					tpl, tableSlot, quality = stripped, s2, q2
					seg.EnumerationStripped = n
					seg.TemplateQuality = quality
				}
			}
		}
		// The fallback fires when the table is shattered across slots
		// (numbered entries) or the skeleton is too thin to be a real
		// template (volatile headers): the paper's "page template
		// problem; entire page used".
		if quality < opts.MinSlotQuality || tpl.TextSkeletonLen() < minTextSkeleton {
			seg.UsedWholePage = true
		} else {
			slot = tableSlot
		}
	}
	if seg.UsedWholePage {
		slot = pagetemplate.Slot{Start: 0, End: len(target)}
	}
	stats.TemplateTime += clock.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// 3. Extracts and observations.
	start = clock.Now()
	var otherLists [][]token.Token
	for i, lt := range listToks {
		if i != in.Target {
			otherLists = append(otherLists, lt)
		}
	}
	extracts := extract.Split(target, slot.Start, slot.End)
	obs := extract.Observe(extracts, detailToks, otherLists)
	analyzed := extract.InformativeSubset(obs, len(in.DetailPages))

	// Structural sanity check: every detail page is a record of this
	// list page, so every detail page should support at least one
	// analyzed extract. If some pages are uncovered the table slot is
	// probably truncated (a data value masquerading as a template
	// token split the table) — retry with the whole page.
	if !seg.UsedWholePage && !coversAllPages(obs, analyzed, len(in.DetailPages)) {
		seg.UsedWholePage = true
		slot = pagetemplate.Slot{Start: 0, End: len(target)}
		extracts = extract.Split(target, slot.Start, slot.End)
		obs = extract.Observe(extracts, detailToks, otherLists)
		analyzed = extract.InformativeSubset(obs, len(in.DetailPages))
	}
	seg.TotalExtracts = len(extracts)
	seg.Analyzed = len(analyzed)
	if len(extracts) == 0 {
		return seg, fmt.Errorf("%w: %q", ErrNoTableSlot, in.ListPages[in.Target].Name)
	}
	if len(analyzed) == 0 {
		// Nothing to segment: no extract appears on any detail page.
		// The segmentation still carries its diagnostics.
		return seg, fmt.Errorf("%w: %q (%d extracts)", ErrNoDetailEvidence, in.ListPages[in.Target].Name, len(extracts))
	}

	// Vertical-table extension: transpose the analyzed stream into
	// record-major order when the evidence says records run down the
	// columns. Everything downstream (consecutiveness, forced starts,
	// position groups) then applies unchanged.
	if opts.DetectVertical {
		cands := candidateSets(obs, analyzed)
		if vertical.IsVertical(cands) {
			if perm, ok := vertical.Transpose(cands, len(in.DetailPages)); ok {
				analyzed = vertical.Apply(perm, analyzed)
				seg.Vertical = true
			}
		}
	}
	stats.ExtractTime += clock.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// 4. Run the selected method over the analyzed extracts.
	start = clock.Now()
	records := make([]int, len(analyzed)) // record per analyzed extract
	columns := make([]int, len(analyzed))
	confidence := make([]float64, len(analyzed))
	for i := range columns {
		columns[i] = -1
		confidence[i] = -1
	}
	runCSP := func(params csp.SolveParams) (*csp.SegmentResult, error) {
		sin := csp.SegmentInput{
			NumRecords:     len(in.DetailPages),
			Candidates:     candidateSets(obs, analyzed),
			PositionGroups: extract.PositionGroups(obs, analyzed, len(in.DetailPages)),
		}
		res, err := csp.SolveSegmentationContext(ctx, sin, params)
		if err != nil {
			return nil, err
		}
		seg.CSPStatus = res.Status
		seg.Relaxed = res.Relaxed
		stats.WSATRestarts += res.Restarts
		stats.WSATFlips += res.Flips
		stats.CutRounds += res.CutRounds
		return res, nil
	}
	runPHMM := func() error {
		inst := phmm.Instance{
			NumRecords: len(in.DetailPages),
			Candidates: candidateSets(obs, analyzed),
		}
		inst.TypeVecs = make([][token.NumTypes]bool, len(analyzed))
		for ai, oi := range analyzed {
			inst.TypeVecs[ai] = obs[oi].Extract.TypeVector()
		}
		res, err := phmm.SegmentContext(ctx, inst, opts.PHMMParams)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("core: probabilistic segmentation: %w", err)
		}
		seg.PHMM = res
		stats.EMIters += res.Iters
		copy(records, res.Records)
		copy(columns, res.Columns)
		copy(confidence, res.Confidence)
		return nil
	}
	cspColumns := func() error {
		if !opts.CSPColumns {
			return nil
		}
		types := make([]token.Type, len(analyzed))
		for ai, oi := range analyzed {
			types[ai] = obs[oi].Extract.FirstType()
		}
		cols, err := csp.AssignColumns(ctx, records, types, opts.CSPParams.WSAT)
		if err != nil {
			return err
		}
		copy(columns, cols)
		return nil
	}
	switch opts.Method {
	case CSP:
		res, err := runCSP(opts.CSPParams)
		if err != nil {
			return nil, err
		}
		// A Failed status after the full relaxation ladder means no
		// feasible assignment exists at all; report it as a typed error
		// (the seg still carries the diagnostics). Under NoRelax or
		// with repair disabled (negative MaxCutRounds) a failure is the
		// outcome those ablation configurations ask to observe, not an
		// error.
		if res.Status == csp.Failed && !opts.CSPParams.NoRelax && opts.CSPParams.MaxCutRounds >= 0 {
			stats.SolveTime += clock.Since(start)
			return seg, fmt.Errorf("%w: %q", ErrCSPUnsatisfiable, in.ListPages[in.Target].Name)
		}
		copy(records, res.Records)
		if err := cspColumns(); err != nil {
			return nil, err
		}
	case Probabilistic:
		if err := runPHMM(); err != nil {
			return nil, err
		}
	case Combined:
		// Trust the CSP only when the strict constraints hold; any
		// inconsistency hands the page to the probabilistic model.
		params := opts.CSPParams
		params.NoRelax = true
		res, err := runCSP(params)
		if err != nil {
			return nil, err
		}
		if res.Status == csp.Solved {
			copy(records, res.Records)
			if err := cspColumns(); err != nil {
				return nil, err
			}
		} else if err := runPHMM(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown method %d", ErrBadOptions, opts.Method)
	}
	stats.SolveTime += clock.Since(start)

	// 5. Mine semantic column labels from the detail-page captions.
	if opts.MineLabels {
		seg.ColumnLabels = labels.Mine(detailToks, obs, analyzed, records, columns)
	}

	// 6. Attach the rest of the table data to the record of the last
	// assigned extract and assemble the output records.
	seg.Records = assemble(extracts, analyzed, records, columns, confidence)
	return seg, nil
}

// singlePageSlot bounds the table region of a page using repeated-row
// structure alone (no second sample page): the span from the first to
// the last row found by the tag-repetition detector.
func singlePageSlot(page []token.Token) (pagetemplate.Slot, bool) {
	rows, err := baseline.TagRepetition(page, 0, len(page))
	if err != nil || len(rows) < 2 {
		return pagetemplate.Slot{}, false
	}
	// Rows are sub-slices of page; recover their bounds by offset. The
	// detector's final row absorbs everything to the end of the range
	// (table close, page footer), so cap it at the longest non-final
	// row: rows of one table share their shape.
	first, last := rows[0], rows[len(rows)-1]
	maxLen := 0
	for _, r := range rows[:len(rows)-1] {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	if len(last) > maxLen {
		last = last[:maxLen]
	}
	start := tokenIndexOf(page, first[0].Offset)
	end := tokenIndexOf(page, last[len(last)-1].Offset) + 1
	if start < 0 || end <= start {
		return pagetemplate.Slot{}, false
	}
	return pagetemplate.Slot{Start: start, End: end}, true
}

// tokenIndexOf finds the index of the token with the given byte offset
// (offsets are strictly increasing).
func tokenIndexOf(page []token.Token, offset int) int {
	lo, hi := 0, len(page)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case page[mid].Offset == offset:
			return mid
		case page[mid].Offset < offset:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return -1
}

// coversAllPages reports whether every detail page supports at least
// one analyzed extract.
func coversAllPages(obs []extract.Observation, analyzed []int, numPages int) bool {
	covered := make([]bool, numPages)
	n := 0
	for _, oi := range analyzed {
		for _, p := range obs[oi].Pages {
			if !covered[p] {
				covered[p] = true
				n++
			}
		}
	}
	return n == numPages
}

// candidateSets projects the observations of the analyzed extracts to
// their D_i record candidate lists.
func candidateSets(obs []extract.Observation, analyzed []int) [][]int {
	out := make([][]int, len(analyzed))
	for ai, oi := range analyzed {
		out[ai] = obs[oi].Pages
	}
	return out
}

// assemble groups all extracts into records: each analyzed extract goes
// to its assigned record; every other extract (uninformative, or left
// unassigned by a relaxed CSP solve) joins the record of the last
// assigned extract before it. Extracts preceding the first assignment
// belong to no record (page prologue).
func assemble(extracts []extract.Extract, analyzed []int, records, columns []int, confidence []float64) []Record {
	// Assignment per extract index.
	recOf := make([]int, len(extracts))
	colOf := make([]int, len(extracts))
	confOf := make([]float64, len(extracts))
	assignedBy := make([]bool, len(extracts)) // method-assigned (not attached)
	for i := range recOf {
		recOf[i] = -1
		colOf[i] = -1
		confOf[i] = -1
	}
	for ai, oi := range analyzed {
		recOf[oi] = records[ai]
		colOf[oi] = columns[ai]
		confOf[oi] = confidence[ai]
		assignedBy[oi] = records[ai] >= 0
	}
	cur := -1
	for i := range extracts {
		if assignedBy[i] {
			cur = recOf[i]
		} else {
			recOf[i] = cur
			colOf[i] = -1
		}
	}
	byRecord := map[int]*Record{}
	var order []int
	for i := range extracts {
		r := recOf[i]
		if r < 0 {
			continue
		}
		rec, ok := byRecord[r]
		if !ok {
			rec = &Record{Index: r}
			byRecord[r] = rec
			order = append(order, r)
		}
		rec.Extracts = append(rec.Extracts, extracts[i])
		rec.Columns = append(rec.Columns, colOf[i])
		rec.Analyzed = append(rec.Analyzed, assignedBy[i])
		rec.Confidence = append(rec.Confidence, confOf[i])
	}
	out := make([]Record, 0, len(order))
	for _, r := range order {
		out = append(out, *byRecord[r])
	}
	return out
}
