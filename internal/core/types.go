package core

import (
	"tableseg/internal/csp"
	"tableseg/internal/phmm"
	"tableseg/internal/stage"
)

// Page is one HTML document. It is an alias of the stage artifact so
// values flow between the public API and the stage graph without
// conversion.
type Page = stage.Page

// Record is one segmented record (an alias of the stage artifact).
type Record = stage.Record

// Input describes one segmentation task.
type Input struct {
	// ListPages are the sampled list pages from the site; at least two
	// are needed for template induction (§3.1). All are used for the
	// "appears on all list pages" filter.
	ListPages []Page
	// Target is the index into ListPages of the page to segment.
	Target int
	// DetailPages are the detail pages linked from the target list
	// page, in the order their links appear (record order).
	DetailPages []Page
}

// Method selects the segmentation algorithm. It predates the solver
// registry and survives as a compatibility shim: each value simply
// names a registered solver (Options.Solver overrides it).
type Method int

const (
	// CSP is the constraint-satisfaction method of §4.
	CSP Method = iota
	// Probabilistic is the factored-HMM method of §5.
	Probabilistic
	// Combined is the §7 suggestion that "both techniques (or a
	// combination of the two) are likely to be required": it trusts
	// the CSP where the strict constraints are satisfiable (clean
	// data, where the CSP is most reliable) and falls back to the
	// inconsistency-tolerant probabilistic model otherwise.
	Combined
)

// String returns the method's solver-registry name.
func (m Method) String() string {
	switch m {
	case CSP:
		return "csp"
	case Probabilistic:
		return "probabilistic"
	case Combined:
		return "combined"
	default:
		return "unknown"
	}
}

// Options tunes the pipeline.
type Options struct {
	Method Method
	// Solver, when non-empty, names the registered solver to run and
	// overrides Method. Any solver registered with
	// stage.RegisterSolver is eligible ("exact", "greedy", "uniform",
	// or a caller's own registration).
	Solver string
	// MinSlotQuality is the threshold below which the template's table
	// slot is considered shattered and the whole page is used instead
	// (the paper's fallback for numbered entries). Default 0.5.
	MinSlotQuality float64
	// ForceWholePage skips template finding entirely (ablation).
	ForceWholePage bool
	// MineLabels enables §3.4's semantic column labeling: column names
	// are mined from the captions preceding each value on its detail
	// page.
	MineLabels bool
	// CSPColumns enables §6.3's CSP-based column extraction: after a
	// successful record segmentation, a second constraint problem
	// assigns column labels using content-similarity constraints.
	CSPColumns bool
	// DetectVertical enables vertical-table handling (an extension
	// beyond §3's horizontal-only scope): when adjacent extracts'
	// detail sets are mostly disjoint the table is judged vertical and
	// the extract stream is transposed into record-major order before
	// segmentation.
	DetectVertical bool
	// StripEnumeration enables the §6.3 future-work heuristic: detect
	// enumerated entries ("1.", "2.", ...) in the induced skeleton and
	// strip them before locating the table slot, instead of falling
	// back to the whole page. Off by default to keep the headline
	// Table 4 faithful to the paper.
	StripEnumeration bool
	// CSPParams configures the CSP solver.
	CSPParams csp.SolveParams
	// PHMMParams configures the probabilistic model.
	PHMMParams phmm.Params
}

// DefaultOptions returns the configuration used in the paper
// reproduction for the given method.
func DefaultOptions(m Method) Options {
	return Options{
		Method:         m,
		MinSlotQuality: 0.5,
		CSPParams:      csp.SolveParams{ExactCheck: true},
		CSPColumns:     true,
		MineLabels:     true,
		PHMMParams:     phmm.DefaultParams(),
	}
}

// Segmentation is the pipeline's result.
type Segmentation struct {
	// Records in record order. Records with no evidence on the list
	// page are absent.
	Records []Record
	// Method that produced the segmentation.
	Method Method
	// Solver is the registry name of the solver that actually ran
	// (Options.Solver, or Method's name when unset).
	Solver string
	// UsedWholePage is true when the template fallback fired (§6.2).
	UsedWholePage bool
	// EnumerationStripped counts the enumerated skeleton tokens removed
	// by the StripEnumeration heuristic (0 when disabled or not
	// needed).
	EnumerationStripped int
	// Vertical is true when the vertical-table extension detected a
	// vertically laid out table and transposed the extract stream.
	Vertical bool
	// TemplateQuality is the table-slot concentration measure.
	TemplateQuality float64
	// TotalExtracts and Analyzed count the table slot's extracts and
	// the informative subset used for inference.
	TotalExtracts, Analyzed int
	// CSPStatus reports the solver outcome for the CSP method.
	CSPStatus csp.Status
	// Relaxed is true when the CSP relaxation ladder fired.
	Relaxed bool
	// PHMM carries the learned model for the probabilistic method.
	PHMM *phmm.Result
	// ColumnLabels holds the mined semantic name of each column label
	// (index = column number, "" when no caption was found); nil when
	// label mining is disabled or no columns were assigned.
	ColumnLabels []string
}
