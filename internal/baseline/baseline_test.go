package baseline

import (
	"errors"
	"strings"
	"testing"

	"tableseg/internal/token"
)

const uniformGrid = `<table>
<tr><td>Ann Lee</td><td>12 Oak St</td></tr>
<tr><td>Bob Day</td><td>99 Elm Rd</td></tr>
<tr><td>Cal Roe</td><td>7 Pine Ave</td></tr>
</table>`

const disjunctGrid = `<div><b>Ann Lee</b><br>12 Oak St<br>x</div><hr>
<div><b>Bob Day</b><br><font color="gray">street address not available</font><br>x</div><hr>
<div><b>Cal Roe</b><br>7 Pine Ave<br>x</div><hr>`

func TestUnionFreeUniform(t *testing.T) {
	toks := token.Tokenize(uniformGrid)
	rows, err := UnionFree(toks, 0, len(toks))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	var words []string
	for _, tok := range rows[0] {
		if !tok.IsHTML() {
			words = append(words, tok.Text)
		}
	}
	if got := strings.Join(words, " "); got != "Ann Lee 12 Oak St" {
		t.Errorf("row 0 text = %q", got)
	}
}

func TestUnionFreeDisjunction(t *testing.T) {
	toks := token.Tokenize(disjunctGrid)
	_, err := UnionFree(toks, 0, len(toks))
	if !errors.Is(err, ErrDisjunction) {
		t.Fatalf("err = %v, want ErrDisjunction", err)
	}
}

func TestUnionFreeNoRows(t *testing.T) {
	toks := token.Tokenize(`<span>just one blob of text</span>`)
	_, err := UnionFree(toks, 0, len(toks))
	if !errors.Is(err, ErrNoRows) {
		t.Fatalf("err = %v, want ErrNoRows", err)
	}
}

func TestTagRepetitionPrefersRowOverCell(t *testing.T) {
	toks := token.Tokenize(uniformGrid)
	rows, err := TagRepetition(toks, 0, len(toks))
	if err != nil {
		t.Fatal(err)
	}
	// The maximal repeated pattern is the <tr> row (two cells), not the
	// individual <td> cell.
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 (rows split at cells?)", len(rows))
	}
}

func TestTagRepetitionToleratesDeviation(t *testing.T) {
	toks := token.Tokenize(disjunctGrid)
	rows, err := TagRepetition(toks, 0, len(toks))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
}

func TestRowSplitDropsHeader(t *testing.T) {
	toks := token.Tokenize(`<p>Header Text</p><tr><td>a</td></tr><tr><td>b</td></tr>`)
	rows := rowSplit(toks, 0, len(toks), "<tr>")
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		for _, tok := range r {
			if tok.Text == "Header" {
				t.Error("header text leaked into a row")
			}
		}
	}
}

func TestRunDispatch(t *testing.T) {
	toks := token.Tokenize(uniformGrid)
	for _, name := range []string{NameUnionFree, NameTagRepetition} {
		rows, err := Run(name, toks, 0, len(toks))
		if err != nil || len(rows) != 3 {
			t.Errorf("%s: %d rows, %v", name, len(rows), err)
		}
	}
	if _, err := Run("bogus", toks, 0, len(toks)); err == nil {
		t.Error("unknown baseline must error")
	}
}

func TestTagSignature(t *testing.T) {
	toks := token.Tokenize(`<tr><td>x y</td></tr>`)
	if sig := tagSignature(toks); sig != "<tr><td></td></tr>" {
		t.Errorf("signature %q", sig)
	}
}

func TestRowSplitKeepsEmptyRows(t *testing.T) {
	// Empty rows are the caller's concern (the experiments converter
	// drops them); the splitter reports the raw structure.
	toks := token.Tokenize(`<tr><td>a</td></tr><tr><td></td></tr>`)
	rows := rowSplit(toks, 0, len(toks), "<tr>")
	if len(rows) != 2 {
		t.Errorf("%d rows, want 2", len(rows))
	}
}
