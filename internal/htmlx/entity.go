package htmlx

import (
	"strconv"
	"strings"
)

// namedEntities maps HTML entity names (without '&' and ';') to their
// replacement text. The set covers the entities that occur on the kinds
// of pages the paper studies (yellow/white pages, government records,
// book stores); unknown entities are passed through unchanged so no
// content is ever lost.
var namedEntities = map[string]string{
	"amp":    "&",
	"lt":     "<",
	"gt":     ">",
	"quot":   `"`,
	"apos":   "'",
	"nbsp":   " ",
	"copy":   "(c)",
	"reg":    "(R)",
	"trade":  "(TM)",
	"middot": "*",
	"bull":   "*",
	"hellip": "...",
	"mdash":  "--",
	"ndash":  "-",
	"lsquo":  "'",
	"rsquo":  "'",
	"ldquo":  `"`,
	"rdquo":  `"`,
	"laquo":  "<<",
	"raquo":  ">>",
	"sect":   "S",
	"para":   "P",
	"deg":    "deg",
	"plusmn": "+/-",
	"frac12": "1/2",
	"frac14": "1/4",
	"times":  "x",
	"divide": "/",
	"cent":   "c",
	"pound":  "GBP",
	"yen":    "JPY",
	"euro":   "EUR",
	"iexcl":  "!",
	"iquest": "?",
}

// DecodeEntities converts HTML escape sequences in s to plain ASCII
// text, per §3.1 of the paper ("HTML escape sequences are converted to
// ASCII text"). Named entities are looked up in a fixed table; numeric
// entities (&#NN; and &#xNN;) in the ASCII range decode to the byte,
// while non-ASCII code points decode to '?' so downstream token typing
// stays byte-oriented. Malformed sequences are left untouched.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	i := amp
	for i < len(s) {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		rep, n := decodeOne(s[i:])
		if n == 0 {
			b.WriteByte(c)
			i++
			continue
		}
		b.WriteString(rep)
		i += n
	}
	return b.String()
}

// decodeOne decodes a single entity at the start of s (s[0] == '&').
// It returns the replacement and the number of source bytes consumed,
// or ("", 0) if s does not start with a recognizable entity.
func decodeOne(s string) (string, int) {
	// Longest plausible entity: &frac12; (8 bytes incl. & and ;).
	end := strings.IndexByte(s, ';')
	if end < 0 || end > 12 {
		return "", 0
	}
	body := s[1:end]
	if body == "" {
		return "", 0
	}
	if body[0] == '#' {
		num := body[1:]
		base := 10
		if len(num) > 0 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		v, err := strconv.ParseInt(num, base, 32)
		if err != nil || v <= 0 {
			return "", 0
		}
		if v < 128 {
			return string(rune(v)), end + 1
		}
		return "?", end + 1
	}
	if rep, ok := namedEntities[body]; ok {
		return rep, end + 1
	}
	// Case-insensitive fallback (&NBSP; appears in the wild).
	if rep, ok := namedEntities[strings.ToLower(body)]; ok {
		return rep, end + 1
	}
	return "", 0
}
