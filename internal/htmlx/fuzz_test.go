package htmlx

import (
	"strings"
	"testing"
)

// FuzzTokenize checks the lexer's totality invariant (concatenated Raw
// fields reproduce the input byte-for-byte) on arbitrary inputs. Run
// with `go test -fuzz=FuzzTokenize ./internal/htmlx` for exploration;
// the seed corpus runs as part of the normal test suite.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"<html><body>Hello</body></html>",
		"<a href='x y'>text</a>",
		`<td class="a" colspan=2>v</td>`,
		"<!-- comment --><!DOCTYPE html>",
		"<script>if(a<b){}</script>after",
		"3 < 5 and <b>bold</b>",
		"<><<>><a<b><",
		"&amp;&#65;&bogus;&",
		"<p>un终έ</p>", // multibyte content survives
		"<a href=\"",
		"</",
		"<style>p{}</style",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		var b strings.Builder
		for _, tok := range toks {
			b.WriteString(tok.Raw)
		}
		if b.String() != s {
			t.Fatalf("coverage broken: %q -> %q", s, b.String())
		}
	})
}

// FuzzDecodeEntities checks decoding never panics and preserves
// entity-free input.
func FuzzDecodeEntities(f *testing.F) {
	for _, s := range []string{"", "&amp;", "&#65;", "&#x41;", "&;", "&unknown;", "a&b&c", "&#xZZZZ;", strings.Repeat("&", 100)} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := DecodeEntities(s)
		if !strings.Contains(s, "&") && out != s {
			t.Fatalf("entity-free input altered: %q -> %q", s, out)
		}
	})
}
