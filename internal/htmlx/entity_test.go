package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDecodeEntitiesNamed(t *testing.T) {
	cases := map[string]string{
		"a&amp;b":          "a&b",
		"&lt;td&gt;":       "<td>",
		"Tom&nbsp;Jones":   "Tom Jones",
		"&quot;hi&quot;":   `"hi"`,
		"&copy; 2004":      "(c) 2004",
		"x&hellip;":        "x...",
		"5&ndash;10":       "5-10",
		"&NBSP;":           " ",
		"no entities here": "no entities here",
	}
	for in, want := range cases {
		if got := DecodeEntities(in); got != want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDecodeEntitiesNumeric(t *testing.T) {
	cases := map[string]string{
		"&#65;":           "A",
		"&#x41;":          "A",
		"&#X41;":          "A",
		"&#38;":           "&",
		"&#8212;":         "?", // non-ASCII decodes to placeholder
		"&#xE9;":          "?",
		"&#0;":            "&#0;", // invalid stays put
		"&#;":             "&#;",
		"&#xZZ;":          "&#xZZ;",
		"&#65;&#66;&#67;": "ABC",
	}
	for in, want := range cases {
		if got := DecodeEntities(in); got != want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDecodeEntitiesMalformed(t *testing.T) {
	cases := []string{"&", "&amp", "&;", "&unknown;", "& amp;", "&&amp;&"}
	for _, in := range cases {
		got := DecodeEntities(in)
		// Malformed sequences must not vanish; ampersands are preserved.
		if strings.Count(got, "&")+strings.Count(got, " ") < 1 && in != "" {
			t.Errorf("DecodeEntities(%q) = %q lost content", in, got)
		}
	}
	if got := DecodeEntities("&unknown;"); got != "&unknown;" {
		t.Errorf("unknown entity altered: %q", got)
	}
}

// Decoding entity-free strings is the identity.
func TestDecodeEntitiesIdentity(t *testing.T) {
	f := func(s string) bool {
		clean := strings.ReplaceAll(s, "&", "")
		return DecodeEntities(clean) == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Decoding never panics and never grows pathologically.
func TestDecodeEntitiesTotal(t *testing.T) {
	f := func(s string) bool {
		out := DecodeEntities(s)
		return len(out) <= len(s)+4*strings.Count(s, "&")+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
