// Package htmlx implements a small, dependency-free HTML lexer.
//
// The segmentation algorithms in this repository never build a DOM; the
// paper's pipeline (Lerman et al., SIGMOD 2004, §3.1) works on a flat
// token stream in which HTML tags are opaque single tokens and text is
// split into words. This lexer produces that stream: it recognizes start
// tags, end tags, comments, doctype declarations and text runs, and it
// decodes HTML entity escape sequences into ASCII text as the paper
// requires ("HTML escape sequences are converted to ASCII text").
//
// The lexer is intentionally forgiving: real 2004-era pages (and our
// synthetic reproductions of them) contain unquoted attributes, stray
// '<' characters and unterminated constructs. Any malformed input still
// lexes to *some* token stream; nothing ever fails.
package htmlx

import (
	"strings"
)

// Kind classifies a lexical token.
type Kind int

const (
	// Text is a run of character data between tags (entities decoded).
	Text Kind = iota
	// StartTag is an opening tag such as <td class="x">.
	StartTag
	// EndTag is a closing tag such as </td>.
	EndTag
	// SelfClosing is a self-closed tag such as <br/>.
	SelfClosing
	// Comment is an HTML comment <!-- ... -->.
	Comment
	// Doctype is a <!DOCTYPE ...> declaration.
	Doctype
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Text:
		return "Text"
	case StartTag:
		return "StartTag"
	case EndTag:
		return "EndTag"
	case SelfClosing:
		return "SelfClosing"
	case Comment:
		return "Comment"
	case Doctype:
		return "Doctype"
	default:
		return "Unknown"
	}
}

// Token is one lexical unit of an HTML document.
type Token struct {
	Kind Kind
	// Raw is the exact source text of the token, including angle
	// brackets for tags. For Text tokens, Raw is the undecoded source.
	Raw string
	// Data is the payload: the decoded text for Text tokens, the
	// lower-cased tag name for tags, the comment body for comments.
	Data string
	// Attrs holds tag attributes in source order (tags only).
	Attrs []Attr
	// Offset is the byte offset of the token in the input.
	Offset int
}

// Attr is a single name="value" attribute on a tag.
type Attr struct {
	Name  string // lower-cased
	Value string // entity-decoded; empty for valueless attributes
}

// Attr returns the value of the named attribute and whether it exists.
func (t *Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// TagName returns the lower-cased element name for tag tokens, "" otherwise.
func (t *Token) TagName() string {
	switch t.Kind {
	case StartTag, EndTag, SelfClosing:
		return t.Data
	}
	return ""
}

// rawTextTags lists elements whose content is raw text: the lexer must
// not interpret '<' inside them as markup until the matching end tag.
var rawTextTags = map[string]bool{
	"script": true,
	"style":  true,
}

// Tokenize lexes an entire HTML document into a token slice.
func Tokenize(src string) []Token {
	lx := &lexer{src: src}
	return lx.run()
}

type lexer struct {
	src    string
	pos    int
	tokens []Token
}

func (l *lexer) run() []Token {
	for l.pos < len(l.src) {
		if l.src[l.pos] == '<' {
			if !l.lexMarkup() {
				// A stray '<' that does not begin markup: treat it as text.
				l.lexText(true)
			}
		} else {
			l.lexText(false)
		}
	}
	return l.tokens
}

// lexMarkup attempts to lex a construct starting with '<' at l.pos.
// It reports whether it consumed anything.
func (l *lexer) lexMarkup() bool {
	start := l.pos
	rest := l.src[l.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		end := strings.Index(rest[4:], "-->")
		var raw, body string
		if end < 0 { // unterminated comment: consume to EOF
			raw, body = rest, rest[4:]
			l.pos = len(l.src)
		} else {
			raw, body = rest[:4+end+3], rest[4:4+end]
			l.pos += 4 + end + 3
		}
		l.tokens = append(l.tokens, Token{Kind: Comment, Raw: raw, Data: body, Offset: start})
		return true
	case strings.HasPrefix(rest, "<![CDATA["):
		// CDATA sections may contain '>' freely; they end only at "]]>".
		end := strings.Index(rest[9:], "]]>")
		var raw, body string
		if end < 0 {
			raw, body = rest, rest[9:]
			l.pos = len(l.src)
		} else {
			raw, body = rest[:9+end+3], rest[9:9+end]
			l.pos += 9 + end + 3
		}
		// CDATA content is character data.
		l.tokens = append(l.tokens, Token{Kind: Text, Raw: raw, Data: body, Offset: start})
		return true
	case strings.HasPrefix(rest, "<!"):
		end := strings.IndexByte(rest, '>')
		var raw string
		if end < 0 {
			raw = rest
			l.pos = len(l.src)
		} else {
			raw = rest[:end+1]
			l.pos += end + 1
		}
		body := raw[2:]
		body = strings.TrimSuffix(body, ">")
		l.tokens = append(l.tokens, Token{Kind: Doctype, Raw: raw, Data: strings.TrimSpace(body), Offset: start})
		return true
	case strings.HasPrefix(rest, "<?"):
		// Processing instruction (<?xml ...?>, PHP remnants): consume
		// to the next '>' and drop it as a comment-like token.
		end := strings.IndexByte(rest, '>')
		var raw string
		if end < 0 {
			raw = rest
			l.pos = len(l.src)
		} else {
			raw = rest[:end+1]
			l.pos += end + 1
		}
		l.tokens = append(l.tokens, Token{Kind: Comment, Raw: raw, Data: strings.Trim(raw, "<?>"), Offset: start})
		return true
	case strings.HasPrefix(rest, "</"):
		return l.lexTag(start, true)
	default:
		// A start tag must be followed by an ASCII letter.
		if len(rest) >= 2 && isTagNameStart(rest[1]) {
			return l.lexTag(start, false)
		}
		return false
	}
}

func isTagNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isTagNameByte(c byte) bool {
	return isTagNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == ':'
}

// lexTag lexes a start or end tag beginning at offset start.
func (l *lexer) lexTag(start int, closing bool) bool {
	i := start + 1
	if closing {
		i++
	}
	nameStart := i
	for i < len(l.src) && isTagNameByte(l.src[i]) {
		i++
	}
	if i == nameStart {
		return false
	}
	name := strings.ToLower(l.src[nameStart:i])

	// Scan attributes until '>' honoring quoted values.
	var attrs []Attr
	selfClose := false
	for i < len(l.src) && l.src[i] != '>' {
		c := l.src[i]
		switch {
		case c == '/' && i+1 < len(l.src) && l.src[i+1] == '>':
			selfClose = true
			i++
		case isSpace(c) || c == '/':
			i++
		default:
			var a Attr
			var ok bool
			a, i, ok = lexAttr(l.src, i)
			if !ok {
				i++ // skip one byte of garbage and keep going
			} else {
				attrs = append(attrs, a)
			}
		}
	}
	if i < len(l.src) {
		i++ // consume '>'
	}
	raw := l.src[start:i]
	kind := StartTag
	if closing {
		kind = EndTag
		attrs = nil
	} else if selfClose {
		kind = SelfClosing
	}
	l.pos = i
	l.tokens = append(l.tokens, Token{Kind: kind, Raw: raw, Data: name, Attrs: attrs, Offset: start})

	// Raw-text elements: emit their entire content as one Text token.
	if kind == StartTag && rawTextTags[name] {
		idx := indexCloseTag(l.src[l.pos:], name)
		if idx < 0 {
			idx = len(l.src) - l.pos
		}
		if idx > 0 {
			body := l.src[l.pos : l.pos+idx]
			l.tokens = append(l.tokens, Token{Kind: Text, Raw: body, Data: body, Offset: l.pos})
			l.pos += idx
		}
	}
	return true
}

// indexCloseTag finds the byte offset of "</name" in src,
// ASCII-case-insensitively, or -1. A byte-exact scan is required:
// lowering the haystack with strings.ToLower would re-encode invalid
// UTF-8 sequences and shift every offset after them.
func indexCloseTag(src, name string) int {
	n := len(name)
	for i := 0; i+2+n <= len(src); i++ {
		if src[i] != '<' || src[i+1] != '/' {
			continue
		}
		match := true
		for k := 0; k < n; k++ {
			c := src[i+2+k]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != name[k] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

// lexAttr lexes one attribute starting at i. Returns the attribute, the
// new position, and whether an attribute was recognized.
func lexAttr(src string, i int) (Attr, int, bool) {
	nameStart := i
	for i < len(src) && src[i] != '=' && src[i] != '>' && src[i] != '/' && !isSpace(src[i]) {
		i++
	}
	if i == nameStart {
		return Attr{}, i, false
	}
	a := Attr{Name: strings.ToLower(src[nameStart:i])}
	// Optional whitespace around '='.
	j := i
	for j < len(src) && isSpace(src[j]) {
		j++
	}
	if j >= len(src) || src[j] != '=' {
		return a, i, true // valueless attribute
	}
	j++
	for j < len(src) && isSpace(src[j]) {
		j++
	}
	if j >= len(src) {
		return a, j, true
	}
	switch src[j] {
	case '"', '\'':
		q := src[j]
		j++
		valStart := j
		for j < len(src) && src[j] != q {
			j++
		}
		a.Value = DecodeEntities(src[valStart:j])
		if j < len(src) {
			j++ // consume closing quote
		}
	default:
		valStart := j
		for j < len(src) && !isSpace(src[j]) && src[j] != '>' {
			j++
		}
		a.Value = DecodeEntities(src[valStart:j])
	}
	return a, j, true
}

// lexText lexes a text run starting at l.pos. If forceFirst is true the
// first byte is consumed unconditionally (used for stray '<').
func (l *lexer) lexText(forceFirst bool) {
	start := l.pos
	if forceFirst {
		l.pos++
	}
	for l.pos < len(l.src) && l.src[l.pos] != '<' {
		l.pos++
	}
	raw := l.src[start:l.pos]
	l.tokens = append(l.tokens, Token{Kind: Text, Raw: raw, Data: DecodeEntities(raw), Offset: start})
}
