package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeSimple(t *testing.T) {
	toks := Tokenize(`<html><body>Hello</body></html>`)
	want := []Kind{StartTag, StartTag, Text, EndTag, EndTag}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: kind %v, want %v", i, got[i], want[i])
		}
	}
	if toks[2].Data != "Hello" {
		t.Errorf("text data = %q, want Hello", toks[2].Data)
	}
}

func TestTokenizeTagNames(t *testing.T) {
	toks := Tokenize(`<TD Class="Big"><Br/></td>`)
	if toks[0].Data != "td" || toks[1].Data != "br" || toks[2].Data != "td" {
		t.Fatalf("tag names not lower-cased: %+v", toks)
	}
	if toks[1].Kind != SelfClosing {
		t.Errorf("br kind = %v, want SelfClosing", toks[1].Kind)
	}
	if v, ok := toks[0].Attr("class"); !ok || v != "Big" {
		t.Errorf("class attr = %q,%v want Big,true", v, ok)
	}
}

func TestTokenizeAttributes(t *testing.T) {
	cases := []struct {
		src        string
		name, want string
	}{
		{`<a href="x.html">`, "href", "x.html"},
		{`<a href='x.html'>`, "href", "x.html"},
		{`<a href=x.html>`, "href", "x.html"},
		{`<a href = "x.html">`, "href", "x.html"},
		{`<input disabled>`, "disabled", ""},
		{`<a href="a&amp;b">`, "href", "a&b"},
	}
	for _, c := range cases {
		toks := Tokenize(c.src)
		if len(toks) != 1 {
			t.Fatalf("%q: %d tokens", c.src, len(toks))
		}
		v, ok := toks[0].Attr(c.name)
		if !ok || v != c.want {
			t.Errorf("%q: attr %s = %q,%v, want %q", c.src, c.name, v, ok, c.want)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks := Tokenize(`a<!-- hidden <b> -->z`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if toks[1].Kind != Comment || toks[1].Data != " hidden <b> " {
		t.Errorf("comment token wrong: %+v", toks[1])
	}
}

func TestTokenizeDoctype(t *testing.T) {
	toks := Tokenize(`<!DOCTYPE html><p>x</p>`)
	if toks[0].Kind != Doctype {
		t.Fatalf("first token %v, want Doctype", toks[0].Kind)
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	toks := Tokenize(`<script>if (a<b) { x = "<td>"; }</script><p>after</p>`)
	if toks[0].Kind != StartTag || toks[0].Data != "script" {
		t.Fatalf("token 0: %+v", toks[0])
	}
	if toks[1].Kind != Text || !strings.Contains(toks[1].Data, `"<td>"`) {
		t.Fatalf("script body not raw text: %+v", toks[1])
	}
	if toks[2].Kind != EndTag || toks[2].Data != "script" {
		t.Fatalf("token 2: %+v", toks[2])
	}
}

func TestTokenizeStrayLt(t *testing.T) {
	toks := Tokenize(`3 < 5 and <b>bold</b>`)
	// The stray '<' must be treated as text, not markup.
	var text strings.Builder
	for _, tok := range toks {
		if tok.Kind == Text {
			text.WriteString(tok.Data)
		}
	}
	if !strings.Contains(text.String(), "<") {
		t.Errorf("stray < lost: %q", text.String())
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == StartTag && tok.Data == "b" {
			found = true
		}
	}
	if !found {
		t.Errorf("real <b> tag not found in %+v", toks)
	}
}

func TestTokenizeUnterminated(t *testing.T) {
	for _, src := range []string{"<", "<a", "<a href=", "<!--", "<!", "</", "text<"} {
		toks := Tokenize(src)
		if len(toks) == 0 && src != "" {
			t.Errorf("%q: no tokens", src)
		}
	}
}

func TestTokenizeOffsets(t *testing.T) {
	src := `<a>b</a>`
	toks := Tokenize(src)
	wantOff := []int{0, 3, 4}
	for i, w := range wantOff {
		if toks[i].Offset != w {
			t.Errorf("token %d offset = %d, want %d", i, toks[i].Offset, w)
		}
	}
}

// TestTokenizeCoversInput checks that every input byte is covered by
// exactly the concatenation of Raw fields (no bytes lost or duplicated),
// for any input. This is the lexer's core totality invariant.
func TestTokenizeCoversInput(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		var b strings.Builder
		for _, tok := range toks {
			b.WriteString(tok.Raw)
		}
		return b.String() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestTokenizeCoversHTMLish repeats the totality check on inputs biased
// toward HTML-looking strings, which random strings rarely produce.
func TestTokenizeCoversHTMLish(t *testing.T) {
	pieces := []string{"<td>", "</td>", "<br/>", "text", "&amp;", "<", ">", `<a href="x">`, "<!--c-->", " ", `"`, "'", "=", "<!DOCTYPE html>", "<sCrIpT>", "</script>"}
	// Deterministic pseudo-random composition.
	seed := 12345
	next := func(n int) int {
		seed = seed*1103515245 + 12345
		if seed < 0 {
			seed = -seed
		}
		return seed % n
	}
	for trial := 0; trial < 300; trial++ {
		var b strings.Builder
		for k := 0; k < next(20)+1; k++ {
			b.WriteString(pieces[next(len(pieces))])
		}
		s := b.String()
		toks := Tokenize(s)
		var r strings.Builder
		for _, tok := range toks {
			r.WriteString(tok.Raw)
		}
		if r.String() != s {
			t.Fatalf("coverage broken for %q: got %q", s, r.String())
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Text: "Text", StartTag: "StartTag", EndTag: "EndTag", SelfClosing: "SelfClosing", Comment: "Comment", Doctype: "Doctype", Kind(99): "Unknown"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTagNameNonTag(t *testing.T) {
	toks := Tokenize("plain")
	if got := toks[0].TagName(); got != "" {
		t.Errorf("TagName of text = %q, want empty", got)
	}
}

func TestTokenizeCDATA(t *testing.T) {
	toks := Tokenize(`a<![CDATA[raw <b> & stuff]]>z`)
	if len(toks) != 3 {
		t.Fatalf("%d tokens: %+v", len(toks), toks)
	}
	if toks[1].Kind != Text || toks[1].Data != "raw <b> & stuff" {
		t.Errorf("CDATA token: %+v", toks[1])
	}
	// Unterminated CDATA consumes to EOF without panicking.
	toks2 := Tokenize(`<![CDATA[never closed`)
	if len(toks2) != 1 || toks2[0].Data != "never closed" {
		t.Errorf("unterminated CDATA: %+v", toks2)
	}
}

func TestTokenizeProcessingInstruction(t *testing.T) {
	toks := Tokenize(`<?xml version="1.0"?><p>x</p>`)
	if toks[0].Kind != Comment {
		t.Fatalf("PI kind = %v", toks[0].Kind)
	}
	if toks[1].Kind != StartTag || toks[1].Data != "p" {
		t.Errorf("content after PI: %+v", toks[1])
	}
	if got := Tokenize(`<?broken`); len(got) != 1 {
		t.Errorf("unterminated PI: %+v", got)
	}
}
