// Package pattern implements the specific-to-general token patterns of
// Lerman & Minton's "Learning the Common Structure of Data" (the
// paper's reference [16], whose syntactic type system §3.1 adopts). A
// pattern describes a set of strings as a sequence of positions, each
// the most specific description common to all examples: a literal token
// where every example agrees, otherwise the most specific shared
// syntactic type. Patterns summarize learned columns ("NUMERIC
// CAPITALIZED Correctional") and power schema reports over extracted
// relations.
package pattern

import (
	"strings"

	"tableseg/internal/token"
)

// Item is one position of a pattern.
type Item struct {
	// Literal is the exact token, when every example agrees ("" when
	// generalized to a type class).
	Literal string
	// Type is the most specific syntactic type shared by the examples
	// at this position (used when Literal is empty; 0 = ANY).
	Type token.Type
}

// String renders the item: a quoted literal, a type-class name, or ANY.
func (it Item) String() string {
	if it.Literal != "" {
		return it.Literal
	}
	if it.Type == 0 {
		return "ANY"
	}
	return mostSpecificName(it.Type)
}

// specificity orders type bits from most to least specific in the §3.1
// lattice.
var specificity = []token.Type{
	token.Capitalized, token.Lowercase, token.AllCaps,
	token.Numeric, token.Alpha, token.Alnum, token.Punct, token.HTML,
}

func mostSpecificName(t token.Type) string {
	for _, bit := range specificity {
		if t.Has(bit) {
			return bit.String()
		}
	}
	return "ANY"
}

// mostSpecificBit reduces a shared mask to its most specific single bit.
func mostSpecificBit(t token.Type) token.Type {
	for _, bit := range specificity {
		if t.Has(bit) {
			return bit
		}
	}
	return 0
}

// Pattern describes a set of strings.
type Pattern struct {
	// Items describe the common prefix positions.
	Items []Item
	// MinWords and MaxWords record the example length range; when they
	// differ, Items cover only the common prefix (a variable-length
	// field such as a multi-word name).
	MinWords, MaxWords int
}

// String renders the pattern, with a trailing ellipsis for
// variable-length fields: `NUMERIC CAPITALIZED St` or `CAPITALIZED ...`.
func (p *Pattern) String() string {
	if p == nil || p.MaxWords == 0 {
		return "(empty)"
	}
	parts := make([]string, 0, len(p.Items)+1)
	for _, it := range p.Items {
		parts = append(parts, it.String())
	}
	if p.MinWords != p.MaxWords || len(p.Items) < p.MaxWords {
		parts = append(parts, "...")
	}
	return strings.Join(parts, " ")
}

// Learn induces the most specific common pattern of the example word
// sequences. Positionwise: a literal where all examples agree, else the
// most specific shared type; the pattern covers the longest prefix
// present in every example. Nil for no examples.
func Learn(examples [][]string) *Pattern {
	if len(examples) == 0 {
		return nil
	}
	p := &Pattern{MinWords: len(examples[0]), MaxWords: len(examples[0])}
	for _, ex := range examples[1:] {
		if len(ex) < p.MinWords {
			p.MinWords = len(ex)
		}
		if len(ex) > p.MaxWords {
			p.MaxWords = len(ex)
		}
	}
	for pos := 0; pos < p.MinWords; pos++ {
		lit := examples[0][pos]
		shared := token.TypeOf(lit)
		allEqual := true
		for _, ex := range examples[1:] {
			if ex[pos] != lit {
				allEqual = false
			}
			shared &= token.TypeOf(ex[pos])
		}
		if allEqual {
			p.Items = append(p.Items, Item{Literal: lit})
		} else {
			p.Items = append(p.Items, Item{Type: mostSpecificBit(shared)})
		}
	}
	return p
}

// LearnStrings is Learn over whitespace-split strings.
func LearnStrings(values []string) *Pattern {
	examples := make([][]string, 0, len(values))
	for _, v := range values {
		examples = append(examples, strings.Fields(v))
	}
	return Learn(examples)
}

// Matches reports whether a word sequence fits the pattern: its length
// within [MinWords, MaxWords] and each prefix position subsumed by the
// corresponding item (literal equality, or the word's type containing
// the item's type bit; ANY matches everything).
func (p *Pattern) Matches(words []string) bool {
	if p == nil {
		return false
	}
	if len(words) < p.MinWords || len(words) > p.MaxWords {
		return false
	}
	for pos, it := range p.Items {
		if pos >= len(words) {
			break
		}
		if it.Literal != "" {
			if words[pos] != it.Literal {
				return false
			}
			continue
		}
		if it.Type != 0 && !token.TypeOf(words[pos]).Has(it.Type) {
			return false
		}
	}
	return true
}

// MatchesString is Matches over a whitespace-split string.
func (p *Pattern) MatchesString(s string) bool {
	return p.Matches(strings.Fields(s))
}
