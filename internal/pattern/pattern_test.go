package pattern

import (
	"testing"
	"testing/quick"
)

func TestLearnLiteralsAndTypes(t *testing.T) {
	p := LearnStrings([]string{
		"221 Washington St",
		"99 Oak St",
		"7 Pine St",
	})
	if got := p.String(); got != "NUMERIC CAPITALIZED St" {
		t.Errorf("pattern = %q", got)
	}
	if p.MinWords != 3 || p.MaxWords != 3 {
		t.Errorf("lengths: %d..%d", p.MinWords, p.MaxWords)
	}
}

func TestLearnVariableLength(t *testing.T) {
	p := LearnStrings([]string{
		"John Smith",
		"Mary Jane Watson",
	})
	if p.MinWords != 2 || p.MaxWords != 3 {
		t.Errorf("lengths: %d..%d", p.MinWords, p.MaxWords)
	}
	if got := p.String(); got != "CAPITALIZED CAPITALIZED ..." {
		t.Errorf("pattern = %q", got)
	}
}

func TestLearnPhonePattern(t *testing.T) {
	p := LearnStrings([]string{"(740) 335-5555", "(555) 283-9922"})
	if got := p.String(); got != "NUMERIC NUMERIC" {
		t.Errorf("pattern = %q", got)
	}
}

func TestLearnMixedFallsToAny(t *testing.T) {
	p := LearnStrings([]string{"word", "123"})
	// lowercase & numeric share only ALNUM.
	if got := p.String(); got != "ALNUM" {
		t.Errorf("pattern = %q", got)
	}
	q := LearnStrings([]string{"word", "|"})
	// A word and pure punctuation share nothing.
	if got := q.String(); got != "ANY" {
		t.Errorf("pattern = %q", got)
	}
}

func TestLearnSingleExample(t *testing.T) {
	p := LearnStrings([]string{"Marion Correctional"})
	// Single example: every position is a literal.
	if got := p.String(); got != "Marion Correctional" {
		t.Errorf("pattern = %q", got)
	}
}

func TestLearnEmpty(t *testing.T) {
	if p := Learn(nil); p != nil {
		t.Errorf("nil examples gave %v", p)
	}
	if got := (*Pattern)(nil).String(); got != "(empty)" {
		t.Errorf("nil pattern String = %q", got)
	}
	if (*Pattern)(nil).MatchesString("x") {
		t.Error("nil pattern matched")
	}
}

// Every training example matches its own learned pattern.
func TestLearnSelfMatchProperty(t *testing.T) {
	pools := [][]string{
		{"John Smith", "Mary Jones", "Al Green Jr"},
		{"221 Oak St", "9 Elm Ave"},
		{"(555) 123-4567", "(740) 335-5555"},
		{"$12.99", "$45.00"},
		{"MARION", "LEBANON"},
	}
	f := func(pick uint8) bool {
		values := pools[int(pick)%len(pools)]
		p := LearnStrings(values)
		for _, v := range values {
			if !p.MatchesString(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMatchesRejects(t *testing.T) {
	p := LearnStrings([]string{"221 Oak St", "99 Elm St"})
	cases := map[string]bool{
		"77 Pine St":    true,
		"77 Pine Ave":   false, // literal "St" mismatch
		"Oak St":        false, // first word not numeric
		"221 Oak St St": false, // too long
		"221":           false, // too short
	}
	for s, want := range cases {
		if got := p.MatchesString(s); got != want {
			t.Errorf("Matches(%q) = %v, want %v (pattern %s)", s, got, want, p)
		}
	}
}

func TestMostSpecificPreference(t *testing.T) {
	// CAPITALIZED is more specific than ALPHA/ALNUM.
	p := LearnStrings([]string{"Alpha", "Beta"})
	if got := p.String(); got != "CAPITALIZED" {
		t.Errorf("pattern = %q", got)
	}
	q := LearnStrings([]string{"alpha", "Beta"})
	if got := q.String(); got != "ALPHA" {
		t.Errorf("pattern = %q", got)
	}
}
