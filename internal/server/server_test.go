package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	apiv1 "tableseg/api/v1"
	"tableseg/internal/core"
	"tableseg/internal/engine"
	"tableseg/internal/experiments"
	"tableseg/internal/sitegen"
	"tableseg/internal/stage"
)

// siteInput builds one corpus Input for a named synthetic site.
func siteInput(t testing.TB, slug string, pageIdx int) core.Input {
	t.Helper()
	p, err := sitegen.ProfileBySlug(slug)
	if err != nil {
		t.Fatal(err)
	}
	return experiments.BuildInput(sitegen.Generate(p, experiments.DefaultSeed), pageIdx)
}

// wireRequest converts a library Input into its wire shape.
func wireRequest(in core.Input, method string) *apiv1.SegmentRequest {
	req := &apiv1.SegmentRequest{Method: method, Target: in.Target}
	for _, p := range in.ListPages {
		req.ListPages = append(req.ListPages, apiv1.Page{Name: p.Name, HTML: p.HTML})
	}
	for _, p := range in.DetailPages {
		req.DetailPages = append(req.DetailPages, apiv1.Page{Name: p.Name, HTML: p.HTML})
	}
	return req
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if reflect.DeepEqual(cfg.Engine.Options, core.Options{}) {
		cfg.Engine.Options = core.DefaultOptions(core.Probabilistic)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

// postSegment posts a request and decodes either envelope. Transport
// and decoding failures panic (not t.Fatal) so the helper is safe to
// call from the goroutines several tests spawn.
func postSegment(t *testing.T, url string, req *apiv1.SegmentRequest, clientID string) (*http.Response, *apiv1.SegmentResponse, *apiv1.ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, url+apiv1.PathSegment, bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	if clientID != "" {
		httpReq.Header.Set("X-Client-Id", clientID)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out apiv1.SegmentResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			panic(err)
		}
		return resp, &out, nil
	}
	var out apiv1.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(fmt.Sprintf("status %d: decoding error envelope: %v", resp.StatusCode, err))
	}
	return resp, nil, &out
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// gateObserver blocks the first pipeline stage it sees until released,
// making "a computation is in flight right now" a deterministic test
// state instead of a race.
type gateObserver struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGate() *gateObserver {
	return &gateObserver{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateObserver) OnStageStart(name string) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
}

func (g *gateObserver) OnStageEnd(string, time.Duration, error) {}

// TestServeMatchesLibrary: the daemon's response mirrors a direct
// library segmentation of the same input — same records, table and
// counters — so remote and local callers cannot drift apart.
func TestServeMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := siteInput(t, "allegheny", 0)
	seg, err := core.SegmentContext(context.Background(), in, core.DefaultOptions(core.Probabilistic))
	if err != nil {
		t.Fatal(err)
	}
	req := wireRequest(in, "probabilistic")
	req.WantStats = true
	resp, got, _ := postSegment(t, ts.URL, req, "")
	if got == nil {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	want := apiv1.ResponseFromSegmentation(seg, nil)
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Error("served records differ from library segmentation")
	}
	if !reflect.DeepEqual(got.Table, want.Table) {
		t.Error("served table differs from library segmentation")
	}
	if got.AnalyzedExtracts != want.AnalyzedExtracts || got.TotalExtracts != want.TotalExtracts {
		t.Error("extract counters differ")
	}
	if got.Coalesced {
		t.Error("uncontended request reported coalesced")
	}
	if got.Stats == nil || len(got.Stats.Stages) == 0 {
		t.Error("wantStats did not produce per-stage timings")
	}
}

// TestCoalesceConcurrentIdentical is the tentpole acceptance check:
// two concurrent identical submissions perform ONE segmentation, the
// follower's response is marked coalesced, and /varz records exactly
// one hit and one miss.
func TestCoalesceConcurrentIdentical(t *testing.T) {
	gate := newGate()
	s, ts := newTestServer(t, Config{Engine: engineConfig(gate)})
	req := wireRequest(siteInput(t, "allegheny", 0), "")

	type reply struct {
		ok  *apiv1.SegmentResponse
		err *apiv1.ErrorResponse
	}
	results := make(chan reply, 2)
	post := func() {
		_, ok, werr := postSegment(t, ts.URL, req, "")
		results <- reply{ok, werr}
	}
	go post()
	<-gate.entered // leader is now inside the pipeline, holding the flight
	go post()
	waitUntil(t, "follower to join the flight", func() bool {
		return s.metrics.coalesceHits.Load() == 1
	})
	close(gate.release)

	var coalesced, fresh int
	for i := 0; i < 2; i++ {
		r := <-results
		if r.ok == nil {
			t.Fatalf("request failed: %+v", r.err)
		}
		if r.ok.Coalesced {
			coalesced++
		} else {
			fresh++
		}
	}
	if fresh != 1 || coalesced != 1 {
		t.Errorf("fresh=%d coalesced=%d, want 1 and 1", fresh, coalesced)
	}
	if n := s.metrics.tasksCompleted.Load(); n != 1 {
		t.Errorf("engine ran %d tasks, want 1", n)
	}
	m := s.Varz()
	if m.Coalesce.Hits != 1 || m.Coalesce.Misses != 1 {
		t.Errorf("varz coalesce = %+v, want hits=1 misses=1", m.Coalesce)
	}
	if m.Coalesce.InFlightKeys != 0 {
		t.Errorf("coalescing map holds %d keys after completion, want 0", m.Coalesce.InFlightKeys)
	}
}

func engineConfig(obs stage.Observer) engine.Config {
	return engine.Config{
		Options:  core.DefaultOptions(core.Probabilistic),
		Observer: obs,
	}
}

// TestRateLimit: a client that exhausts its bucket gets 429 with a
// Retry-After hint; an independent client is unaffected.
func TestRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{RatePerSec: 0.001, Burst: 1})
	req := wireRequest(siteInput(t, "allegheny", 0), "")
	if resp, ok, _ := postSegment(t, ts.URL, req, "alice"); ok == nil {
		t.Fatalf("first request: status %d, want 200", resp.StatusCode)
	}
	resp, _, werr := postSegment(t, ts.URL, req, "alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if werr.Error.Code != apiv1.CodeRateLimited {
		t.Errorf("code = %q, want rate_limited", werr.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if resp, ok, _ := postSegment(t, ts.URL, req, "bob"); ok == nil {
		t.Errorf("independent client: status %d, want 200", resp.StatusCode)
	}
}

// TestAdmissionQueueFull: with one slot held and the wait queue at
// capacity, the next non-identical request is rejected 429 queue_full.
func TestAdmissionQueueFull(t *testing.T) {
	gate := newGate()
	s, ts := newTestServer(t, Config{Engine: engineConfig(gate), MaxInFlight: 1, MaxQueue: 1})
	reqA := wireRequest(siteInput(t, "allegheny", 0), "")
	reqB := wireRequest(siteInput(t, "allegheny", 1), "")
	reqC := wireRequest(siteInput(t, "butler", 0), "")

	done := make(chan struct{}, 2)
	go func() {
		postSegment(t, ts.URL, reqA, "")
		done <- struct{}{}
	}()
	<-gate.entered
	go func() {
		postSegment(t, ts.URL, reqB, "")
		done <- struct{}{}
	}()
	waitUntil(t, "request B to queue", func() bool { return s.queued.Load() == 1 })

	resp, _, werr := postSegment(t, ts.URL, reqC, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue request: status %d, want 429", resp.StatusCode)
	}
	if werr.Error.Code != apiv1.CodeQueueFull {
		t.Errorf("code = %q, want queue_full", werr.Error.Code)
	}
	close(gate.release)
	<-done
	<-done
}

// TestDeadlineWhileQueued: a request whose deadline expires while
// waiting for an engine slot gets 504 deadline_exceeded.
func TestDeadlineWhileQueued(t *testing.T) {
	gate := newGate()
	_, ts := newTestServer(t, Config{Engine: engineConfig(gate), MaxInFlight: 1})
	go postSegment(t, ts.URL, wireRequest(siteInput(t, "allegheny", 0), ""), "")
	<-gate.entered

	req := wireRequest(siteInput(t, "butler", 0), "")
	req.TimeoutMillis = 50
	resp, _, werr := postSegment(t, ts.URL, req, "")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if werr.Error.Code != apiv1.CodeDeadlineExceeded {
		t.Errorf("code = %q, want deadline_exceeded", werr.Error.Code)
	}
	close(gate.release)
}

// TestGracefulDrain: during drain an in-flight request completes
// normally, a queued-but-unadmitted one is released with a clean 503,
// new arrivals are rejected 503, and /healthz flips to 503.
func TestGracefulDrain(t *testing.T) {
	gate := newGate()
	s, err := New(Config{Engine: engineConfig(gate), MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		status int
		code   apiv1.Code
	}
	results := make(chan result, 2)
	post := func(req *apiv1.SegmentRequest) {
		resp, ok, werr := postSegment(t, ts.URL, req, "")
		r := result{status: resp.StatusCode}
		if ok == nil && werr != nil {
			r.code = werr.Error.Code
		}
		results <- r
	}
	go post(wireRequest(siteInput(t, "allegheny", 0), "")) // in-flight
	<-gate.entered
	go post(wireRequest(siteInput(t, "butler", 0), "")) // queued
	waitUntil(t, "second request to queue", func() bool { return s.queued.Load() == 1 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// The queued request must be released promptly with 503.
	r := <-results
	if r.status != http.StatusServiceUnavailable || r.code != apiv1.CodeDraining {
		t.Errorf("queued request during drain: status=%d code=%q, want 503 draining", r.status, r.code)
	}
	// A brand-new arrival is rejected outright.
	resp, _, werr := postSegment(t, ts.URL, wireRequest(siteInput(t, "michigan", 0), ""), "")
	if resp.StatusCode != http.StatusServiceUnavailable || werr.Error.Code != apiv1.CodeDraining {
		t.Errorf("new request during drain: status=%d, want 503 draining", resp.StatusCode)
	}
	hz, err := http.Get(ts.URL + apiv1.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d, want 503", hz.StatusCode)
	}
	// The in-flight request runs to completion.
	close(gate.release)
	r = <-results
	if r.status != http.StatusOK {
		t.Errorf("in-flight request during drain: status=%d, want 200", r.status)
	}
	if err := <-drained; err != nil {
		t.Errorf("drain: %v", err)
	}
	// Idempotent.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestHealthzAndVarz: the operational endpoints serve liveness and a
// parseable metrics snapshot with per-stage histograms.
func TestHealthzAndVarz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hz, err := http.Get(ts.URL + apiv1.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hz.StatusCode)
	}

	if _, ok, _ := postSegment(t, ts.URL, wireRequest(siteInput(t, "allegheny", 0), ""), ""); ok == nil {
		t.Fatal("segmentation request failed")
	}
	vz, err := http.Get(ts.URL + apiv1.PathVarz)
	if err != nil {
		t.Fatal(err)
	}
	defer vz.Body.Close()
	var m apiv1.Metrics
	if err := json.NewDecoder(vz.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests.Total != 1 || m.Requests.OK != 1 {
		t.Errorf("request counters = %+v", m.Requests)
	}
	if m.Engine.TasksCompleted != 1 {
		t.Errorf("tasksCompleted = %d", m.Engine.TasksCompleted)
	}
	if len(m.Stages) == 0 {
		t.Fatal("varz has no stage histograms")
	}
	if m.Stages[0].Stage != stage.StageTokenize {
		t.Errorf("first histogram is %q, want pipeline order", m.Stages[0].Stage)
	}
	for _, h := range m.Stages {
		var sum int64
		for _, c := range h.Counts {
			sum += c
		}
		if sum+h.Overflow != h.Count {
			t.Errorf("stage %s: bucket sum %d+%d != count %d", h.Stage, sum, h.Overflow, h.Count)
		}
	}
	if m.UptimeSeconds <= 0 {
		t.Error("uptime not reported")
	}
}

// TestRequestErrors: malformed and unsegmentable requests map to their
// typed wire codes and statuses through the full HTTP stack.
func TestRequestErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+apiv1.PathSegment, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}

	get, err := http.Get(ts.URL + apiv1.PathSegment)
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: %d, want 405", get.StatusCode)
	}

	req := wireRequest(siteInput(t, "allegheny", 0), "quantum")
	r2, _, werr := postSegment(t, ts.URL, req, "")
	if r2.StatusCode != http.StatusBadRequest || werr.Error.Code != apiv1.CodeBadOptions {
		t.Errorf("unknown method: status=%d code=%q", r2.StatusCode, werr.Error.Code)
	}

	short := &apiv1.SegmentRequest{
		DetailPages: []apiv1.Page{{HTML: "<html><body>d</body></html>"}},
	}
	r3, _, werr3 := postSegment(t, ts.URL, short, "")
	if r3.StatusCode != http.StatusBadRequest || werr3.Error.Code != apiv1.CodeTooFewListPages {
		t.Errorf("no list pages: status=%d code=%q, want 400 too_few_list_pages", r3.StatusCode, werr3.Error.Code)
	}
}

// TestServerNoGoroutineLeak: a burst of mixed traffic followed by
// drain leaves no goroutines behind (and the coalescing map empty).
func TestServerNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		s, err := New(Config{Engine: engineConfig(nil), MaxInFlight: 2})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		var wg sync.WaitGroup
		req := wireRequest(siteInput(t, "allegheny", 0), "")
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				postSegment(t, ts.URL, req, "")
			}()
		}
		wg.Wait()
		if n := s.flights.size(); n != 0 {
			t.Errorf("coalescing map holds %d keys after burst", n)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}()
	if n := settledGoroutines(base); n > base {
		t.Errorf("goroutines: %d before, %d after drain", base, n)
	}
}

func settledGoroutines(base int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 200 && n > base; i++ {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestEffectiveTimeout pins deadline resolution: request deadlines are
// clamped to MaxTimeout and DefaultTimeout fills in absent ones.
func TestEffectiveTimeout(t *testing.T) {
	s := &Server{cfg: Config{DefaultTimeout: 2 * time.Second, MaxTimeout: 5 * time.Second}}
	cases := []struct {
		millis int64
		want   time.Duration
	}{
		{0, 2 * time.Second},
		{1000, time.Second},
		{60000, 5 * time.Second},
	}
	for _, c := range cases {
		if got := s.effectiveTimeout(c.millis); got != c.want {
			t.Errorf("effectiveTimeout(%d) = %v, want %v", c.millis, got, c.want)
		}
	}
	unclamped := &Server{cfg: Config{}}
	if got := unclamped.effectiveTimeout(0); got != 0 {
		t.Errorf("no default, no request deadline: %v, want 0", got)
	}
}

// TestLimiterRefill drives the token bucket with synthetic clocks.
func TestLimiterRefill(t *testing.T) {
	start := time.Unix(1000, 0)
	l := newLimiter(2, 2) // 2/s, burst 2
	if !l.allow("c", start) || !l.allow("c", start) {
		t.Fatal("burst tokens rejected")
	}
	if l.allow("c", start) {
		t.Fatal("empty bucket allowed a request")
	}
	if !l.allow("c", start.Add(500*time.Millisecond)) {
		t.Fatal("refilled token rejected")
	}
	if l.allow("c", start.Add(500*time.Millisecond)) {
		t.Fatal("double spend after single refill")
	}
}
