package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	apiv1 "tableseg/api/v1"
	"tableseg/internal/stage"
)

// metrics holds the daemon's cumulative counters. Hot-path counters
// are atomics; the per-code error map and the stage histograms take a
// short mutex on their own paths only.
type metrics struct {
	requests struct {
		total, ok                             atomic.Int64
		rateLimited, queueFull, drainRejected atomic.Int64
	}
	coalesceHits, coalesceMisses atomic.Int64
	tasksCompleted               atomic.Int64

	codeMu sync.Mutex
	byCode map[string]int64

	stages *stageObserver
}

func newMetrics() *metrics {
	return &metrics{
		byCode: make(map[string]int64),
		stages: newStageObserver(),
	}
}

func (m *metrics) countCode(c apiv1.Code) {
	m.codeMu.Lock()
	defer m.codeMu.Unlock()
	m.byCode[string(c)]++
}

// snapshot converts the counters to their wire shape. The caller
// (Server.Varz) fills in the gauges it owns.
func (m *metrics) snapshot() *apiv1.Metrics {
	out := &apiv1.Metrics{
		Requests: apiv1.RequestCounters{
			Total:         m.requests.total.Load(),
			OK:            m.requests.ok.Load(),
			RateLimited:   m.requests.rateLimited.Load(),
			QueueFull:     m.requests.queueFull.Load(),
			DrainRejected: m.requests.drainRejected.Load(),
		},
		Coalesce: apiv1.CoalesceCounters{
			Hits:   m.coalesceHits.Load(),
			Misses: m.coalesceMisses.Load(),
		},
		Engine: apiv1.EngineCounters{
			TasksCompleted: m.tasksCompleted.Load(),
		},
		Stages: m.stages.snapshot(),
	}
	m.codeMu.Lock()
	if len(m.byCode) > 0 {
		out.Requests.ByCode = make(map[string]int64, len(m.byCode))
		for k, v := range m.byCode {
			out.Requests.ByCode[k] = v
		}
	}
	m.codeMu.Unlock()
	return out
}

// histBoundsMillis are the fixed latency bucket upper bounds served in
// /varz stage histograms.
var histBoundsMillis = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// stageObserver aggregates per-stage latency histograms. It implements
// stage.Observer and is installed into the engine's observer chain, so
// every pipeline stage of every task feeds it; OnStageEnd may be
// called from many worker goroutines at once.
type stageObserver struct {
	mu sync.Mutex
	m  map[string]*stageHist
}

type stageHist struct {
	count    int64
	total    time.Duration
	buckets  []int64
	overflow int64
}

func newStageObserver() *stageObserver {
	return &stageObserver{m: make(map[string]*stageHist)}
}

func (o *stageObserver) OnStageStart(name string) {}

func (o *stageObserver) OnStageEnd(name string, dur time.Duration, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	h := o.m[name]
	if h == nil {
		h = &stageHist{buckets: make([]int64, len(histBoundsMillis))}
		o.m[name] = h
	}
	h.count++
	h.total += dur
	ms := float64(dur.Microseconds()) / 1e3
	for i, bound := range histBoundsMillis {
		if ms <= bound {
			h.buckets[i]++
			return
		}
	}
	h.overflow++
}

// snapshot renders the histograms in pipeline order (canonical stages
// first, any others sorted after), so /varz output is deterministic.
func (o *stageObserver) snapshot() []apiv1.StageHistogram {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.m) == 0 {
		return nil
	}
	names := make([]string, 0, len(o.m))
	seen := make(map[string]bool, len(o.m))
	for _, n := range stage.Names() {
		if _, ok := o.m[n]; ok {
			names = append(names, n)
			seen[n] = true
		}
	}
	extra := make([]string, 0)
	for n := range o.m {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	names = append(names, extra...)

	out := make([]apiv1.StageHistogram, 0, len(names))
	for _, n := range names {
		h := o.m[n]
		counts := make([]int64, len(h.buckets))
		copy(counts, h.buckets)
		out = append(out, apiv1.StageHistogram{
			Stage:        n,
			Count:        h.count,
			TotalMillis:  float64(h.total.Microseconds()) / 1e3,
			BoundsMillis: histBoundsMillis,
			Counts:       counts,
			Overflow:     h.overflow,
		})
	}
	return out
}
