package server

import (
	"sync"
	"time"
)

// limiter is a per-client token-bucket rate limiter. Each client key
// owns a bucket holding up to burst tokens, refilled continuously at
// rate tokens per second; a request spends one token or is rejected.
// Time is supplied by the caller (through the internal/clock seam), so
// tests drive the refill deterministically.
type limiter struct {
	rate  float64 // tokens per second; <= 0 disables the limiter
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the client map; stale buckets (full again, so
// indistinguishable from fresh ones) are evicted when it fills.
const maxBuckets = 4096

func newLimiter(ratePerSec float64, burst int) *limiter {
	if ratePerSec <= 0 {
		return &limiter{}
	}
	b := float64(burst)
	if b < 1 {
		// Default burst: one full second of rate, at least one token.
		b = ratePerSec
		if b < 1 {
			b = 1
		}
	}
	return &limiter{
		rate:    ratePerSec,
		burst:   b,
		buckets: make(map[string]*bucket),
	}
}

// allow reports whether the client identified by key may proceed at
// time now, spending one token if so.
func (l *limiter) allow(key string, now time.Time) bool {
	if l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxBuckets {
			l.evictFull(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// evictFull drops buckets that, projected to now, have refilled
// completely: a client whose bucket is full again behaves identically
// to an unseen one, so the entry carries no information. Called with
// mu held.
func (l *limiter) evictFull(now time.Time) {
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}
