package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"tableseg"
	apiv1 "tableseg/api/v1"
	"tableseg/internal/core"
	"tableseg/internal/experiments"
	"tableseg/internal/server"
	"tableseg/internal/server/client"
	"tableseg/internal/sitegen"
)

func startServer(t *testing.T) (*server.Server, *client.Client) {
	t.Helper()
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, client.New(ts.URL, nil)
}

func wireRequest(t *testing.T, slug string) (*apiv1.SegmentRequest, core.Input) {
	t.Helper()
	p, err := sitegen.ProfileBySlug(slug)
	if err != nil {
		t.Fatal(err)
	}
	in := experiments.BuildInput(sitegen.Generate(p, experiments.DefaultSeed), 0)
	req := &apiv1.SegmentRequest{Target: in.Target}
	for _, pg := range in.ListPages {
		req.ListPages = append(req.ListPages, apiv1.Page{Name: pg.Name, HTML: pg.HTML})
	}
	for _, pg := range in.DetailPages {
		req.DetailPages = append(req.DetailPages, apiv1.Page{Name: pg.Name, HTML: pg.HTML})
	}
	return req, in
}

// TestClientSegment round-trips a real segmentation through the full
// client -> HTTP -> server -> engine stack.
func TestClientSegment(t *testing.T) {
	_, c := startServer(t)
	req, in := wireRequest(t, "allegheny")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := c.Segment(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := tableseg.SegmentProbabilistic(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Records) != len(seg.Records) {
		t.Errorf("remote records = %d, local = %d", len(resp.Records), len(seg.Records))
	}
	if resp.Method != "probabilistic" {
		t.Errorf("method = %q", resp.Method)
	}
}

// TestClientErrorsAreSentinels: a server-side typed failure restores
// errors.Is classification on the client.
func TestClientErrorsAreSentinels(t *testing.T) {
	_, c := startServer(t)
	req, _ := wireRequest(t, "allegheny")
	req.Target = 99
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := c.Segment(ctx, req)
	if err == nil {
		t.Fatal("bad target accepted")
	}
	if !errors.Is(err, tableseg.ErrBadTarget) {
		t.Errorf("errors.Is(err, ErrBadTarget) = false for %v", err)
	}
	var werr *apiv1.Error
	if !errors.As(err, &werr) || werr.Code != apiv1.CodeBadTarget {
		t.Errorf("error is not the typed wire error: %v", err)
	}
}

// TestClientHealthzAndVarz exercise the operational endpoints,
// including the drain flip.
func TestClientHealthzAndVarz(t *testing.T) {
	s, c := startServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz while serving: %v", err)
	}
	req, _ := wireRequest(t, "allegheny")
	if _, err := c.Segment(ctx, req); err != nil {
		t.Fatal(err)
	}
	m, err := c.Varz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests.OK != 1 {
		t.Errorf("varz ok = %d, want 1", m.Requests.OK)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(ctx); err == nil {
		t.Error("healthz reports healthy while draining")
	}
}
