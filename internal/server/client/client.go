// Package client is the Go client for tablesegd's api/v1 wire surface.
// It shares the DTOs in tableseg/api/v1 with the server, so the two
// cannot drift, and it rehydrates wire errors into apiv1.Error values
// whose Unwrap restores the library sentinels — errors.Is(err,
// tableseg.ErrNoDetailEvidence) works on a remote failure exactly as
// it does on a local one.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	apiv1 "tableseg/api/v1"
)

// Client talks to one tablesegd instance.
type Client struct {
	base string
	http *http.Client
}

// New builds a client for the daemon at base (e.g.
// "http://localhost:8844"). A nil httpClient selects
// http.DefaultClient; deadlines are carried by the per-call contexts,
// not the transport.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// Segment posts one segmentation request. A server-side failure is
// returned as the decoded *apiv1.Error (with any partial diagnostics
// discarded); transport failures are returned as wrapped errors.
func (c *Client) Segment(ctx context.Context, req *apiv1.SegmentRequest) (*apiv1.SegmentResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+apiv1.PathSegment, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("client: POST %s: %w", apiv1.PathSegment, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var envelope apiv1.ErrorResponse
		if derr := json.NewDecoder(resp.Body).Decode(&envelope); derr != nil || envelope.Error == nil {
			return nil, fmt.Errorf("client: server returned status %d with undecodable body", resp.StatusCode)
		}
		return nil, envelope.Error
	}
	var out apiv1.SegmentResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &out, nil
}

// Healthz reports nil while the daemon serves traffic and an error
// once it is down or draining.
func (c *Client) Healthz(ctx context.Context) error {
	resp, err := c.get(ctx, apiv1.PathHealthz)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("client: healthz status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Varz fetches the daemon's metrics snapshot.
func (c *Client) Varz(ctx context.Context) (*apiv1.Metrics, error) {
	resp, err := c.get(ctx, apiv1.PathVarz)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: varz status %d", resp.StatusCode)
	}
	var m apiv1.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("client: decoding varz: %w", err)
	}
	return &m, nil
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: GET %s: %w", path, err)
	}
	return resp, nil
}
