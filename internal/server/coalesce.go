package server

import "sync"

// Request coalescing (singleflight over segmentations): identical
// concurrent requests — same input content hash, same normalized
// options fingerprint — share one engine computation. The first
// arrival for a key leads the flight (runs the segmentation and
// publishes the outcome); later arrivals for the same key wait on the
// flight's done channel and read the shared outcome. Entries never
// outlive their computation: the daemon coalesces concurrency, it does
// not cache results.

// flight is one in-flight computation.
type flight struct {
	// done is closed by the leader, strictly after out is set; waiters
	// read out only after done, so the close is the publication fence.
	done chan struct{}
	out  outcome
}

// flightGroup is the coalescing map. All operations hold mu only for
// map bookkeeping, never across the computation itself.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for key and whether the caller leads it
// (true when no identical computation was in flight).
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// complete publishes the leader's outcome and retires the flight. The
// entry is removed before done is closed, so a request arriving after
// completion always leads a fresh computation instead of reading a
// stale one.
func (g *flightGroup) complete(key string, f *flight, out outcome) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.out = out
	close(f.done)
}

// size reports the number of in-flight keys (for /varz; 0 when idle).
func (g *flightGroup) size() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int64(len(g.m))
}
