// Package server implements tablesegd's HTTP daemon over the
// concurrent segmentation engine: the versioned api/v1 wire surface,
// request coalescing keyed on the engine's input content hash,
// admission control (a bounded in-flight pool plus a bounded wait
// queue, rejections as 429 + Retry-After), per-client token-bucket
// rate limiting, per-request deadline propagation into the pipeline,
// /healthz and /varz operational endpoints, and graceful drain.
//
// The package is a deliberate showcase for the repository's own
// concurrency analyzers: every goroutine has a provable exit, no lock
// is held across a may-block call, every channel has a single closing
// owner, and no context is minted outside the daemon binary — `make
// lint-self` runs the full analyzer suite over it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	apiv1 "tableseg/api/v1"
	"tableseg/internal/clock"
	"tableseg/internal/core"
	"tableseg/internal/engine"
	"tableseg/internal/stage"
)

// Config configures New. The zero value of every field selects a
// sensible default; only Engine.Options is commonly set.
type Config struct {
	// Engine configures the shared segmentation engine (worker pool,
	// caches, default options). An Observer set here is preserved and
	// chained after the server's own metrics observer.
	Engine engine.Config
	// MaxInFlight bounds requests holding an engine slot concurrently.
	// Zero selects the engine's worker count.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot; arrivals beyond it
	// are rejected with 429 + Retry-After. Zero selects 4*MaxInFlight.
	MaxQueue int
	// RetryAfter is the backoff hint attached to 429 rejections.
	// Zero selects one second.
	RetryAfter time.Duration
	// RatePerSec and Burst configure per-client token buckets (clients
	// are keyed by X-Client-Id, falling back to the remote address).
	// RatePerSec zero disables rate limiting; Burst zero selects
	// max(1, ceil(RatePerSec)).
	RatePerSec float64
	Burst      int
	// DefaultTimeout is the per-request segmentation deadline applied
	// when the request carries none (zero = unbounded); MaxTimeout
	// clamps request-supplied deadlines (zero = no clamp).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes bounds the request body. Zero selects 64 MiB.
	MaxBodyBytes int64
}

// Server is the daemon: an http.Handler plus a drain lifecycle. Create
// one with New, mount Handler(), and call Drain on shutdown.
type Server struct {
	cfg   Config
	eng   *engine.Engine
	start time.Time

	// Admission: sem holds one token per in-flight segmentation,
	// queued counts admitted requests waiting for a token.
	sem    chan struct{}
	queued atomic.Int64

	// Drain lifecycle: draining flips exactly once under drainMu,
	// drainCh is closed at that moment, and handlers joins every
	// registered request.
	drainMu  sync.Mutex
	draining bool
	drainCh  chan struct{}
	handlers sync.WaitGroup

	flights *flightGroup
	limiter *limiter
	metrics *metrics
}

// New builds a Server and its engine after validating the
// configuration.
func New(cfg Config) (*Server, error) {
	m := newMetrics()
	// Chain the server's histogram observer before any caller-supplied
	// one, preserving the Config.Observer seam for embedders.
	if cfg.Engine.Observer != nil {
		cfg.Engine.Observer = stage.MultiObserver{m.stages, cfg.Engine.Observer}
	} else {
		cfg.Engine.Observer = m.stages
	}
	eng, err := engine.New(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = eng.Concurrency()
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	return &Server{
		cfg:     cfg,
		eng:     eng,
		start:   clock.Now(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		drainCh: make(chan struct{}),
		flights: newFlightGroup(),
		limiter: newLimiter(cfg.RatePerSec, cfg.Burst),
		metrics: m,
	}, nil
}

// Engine exposes the server's engine (for embedders that mix direct
// batch work with served traffic).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Handler returns the daemon's HTTP surface: POST apiv1.PathSegment,
// GET apiv1.PathHealthz and GET apiv1.PathVarz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(apiv1.PathSegment, s.handleSegment)
	mux.HandleFunc(apiv1.PathHealthz, s.handleHealthz)
	mux.HandleFunc(apiv1.PathVarz, s.handleVarz)
	return mux
}

// Drain begins graceful shutdown: new requests are rejected with 503,
// queued-but-unadmitted requests are released with 503, in-flight
// segmentations run to completion, and the engine is closed once the
// last handler returns. The context bounds the wait; on expiry the
// server keeps draining but Drain returns the context error. Drain is
// idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.beginDrain()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.handlers.Wait()
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
	// The handler wait above honors ctx; engine shutdown does not.
	// By this point every handler has returned, so the engine's
	// in-flight count is already zero and Close cannot park.
	//tableseglint:ignore ctxflow all handlers have drained, so the engine close returns without waiting
	return s.eng.Close()
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// beginDrain flips the draining flag exactly once and closes drainCh
// at that moment (the broadcast that releases queued waiters).
func (s *Server) beginDrain() {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if !already {
		close(s.drainCh)
	}
}

// register adds the calling handler to the drain join set, or reports
// false when the server is already draining. The add happens under the
// same lock that guards the draining flag, so Drain can never miss a
// registered handler.
func (s *Server) register() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.handlers.Add(1)
	return true
}

// handleSegment serves POST /v1/segment.
func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.register() {
		s.metrics.requests.drainRejected.Add(1)
		s.writeError(w, &apiv1.Error{Code: apiv1.CodeDraining, Message: "server is draining"}, nil)
		return
	}
	defer s.handlers.Done()
	s.metrics.requests.total.Add(1)

	if !s.limiter.allow(clientKey(r), clock.Now()) {
		s.metrics.requests.rateLimited.Add(1)
		s.writeError(w, &apiv1.Error{
			Code:              apiv1.CodeRateLimited,
			Message:           "client request rate exceeded",
			RetryAfterSeconds: s.retryAfterSeconds(),
		}, nil)
		return
	}

	var req apiv1.SegmentRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, &apiv1.Error{Code: apiv1.CodeBadRequest, Message: "decoding request: " + err.Error()}, nil)
		return
	}
	opts, err := req.Options()
	if err != nil {
		s.writeError(w, apiv1.FromError(err), nil)
		return
	}
	in := req.Input()

	ctx := r.Context()
	if d := s.effectiveTimeout(req.TimeoutMillis); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	key := engine.InputKey(in) + "|" + req.OptionsKey()
	f, leader := s.flights.join(key)
	if leader {
		s.flights.complete(key, f, s.compute(ctx, in, opts, req.WantStats))
		s.metrics.coalesceMisses.Add(1)
	} else {
		s.metrics.coalesceHits.Add(1)
	}

	select {
	case <-f.done:
	case <-ctx.Done():
		// This waiter's own deadline died while sharing another
		// request's computation; the flight itself keeps running for
		// the remaining waiters.
		s.writeError(w, apiv1.FromError(ctx.Err()), nil)
		return
	}
	out := f.out
	if out.werr != nil {
		s.writeError(w, out.werr, out.partial)
		return
	}
	resp := *out.resp // shallow per-waiter copy: Coalesced differs per waiter
	resp.Coalesced = !leader
	s.metrics.requests.ok.Add(1)
	s.writeJSON(w, http.StatusOK, &resp)
}

// outcome is one flight's terminal state: a response or a wire error
// (with optional partial diagnostics).
type outcome struct {
	resp    *apiv1.SegmentResponse
	werr    *apiv1.Error
	partial *apiv1.SegmentResponse
}

// compute runs one admitted segmentation end to end: admission
// (bounded queue, drain release), engine submission with the caller's
// deadline, and wire conversion of the result.
func (s *Server) compute(ctx context.Context, in core.Input, opts core.Options, wantStats bool) outcome {
	if s.queued.Load() >= int64(s.cfg.MaxQueue) {
		s.metrics.requests.queueFull.Add(1)
		return outcome{werr: &apiv1.Error{
			Code:              apiv1.CodeQueueFull,
			Message:           fmt.Sprintf("admission queue full (%d waiting)", s.cfg.MaxQueue),
			RetryAfterSeconds: s.retryAfterSeconds(),
		}}
	}
	s.queued.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
	case <-ctx.Done():
		s.queued.Add(-1)
		return outcome{werr: apiv1.FromError(ctx.Err())}
	case <-s.drainCh:
		s.queued.Add(-1)
		s.metrics.requests.drainRejected.Add(1)
		return outcome{werr: &apiv1.Error{Code: apiv1.CodeDraining, Message: "server is draining"}}
	}
	out := s.runTask(ctx, in, opts, wantStats)
	<-s.sem
	return out
}

// runTask submits one task to the engine and converts its result.
func (s *Server) runTask(ctx context.Context, in core.Input, opts core.Options, wantStats bool) outcome {
	ch, err := s.eng.Submit(ctx, engine.Task{Input: in, Options: &opts})
	if err != nil {
		// Submit only fails once the engine is closed, which drain
		// orders after the last handler; report it as draining anyway
		// rather than crash on a race with an embedder's Close.
		if errors.Is(err, engine.ErrClosed) {
			return outcome{werr: &apiv1.Error{Code: apiv1.CodeDraining, Message: "engine closed"}}
		}
		return outcome{werr: apiv1.FromError(err)}
	}
	res := <-ch
	s.metrics.tasksCompleted.Add(1)
	var stats *apiv1.TaskStats
	if wantStats {
		stats = apiv1.TaskStatsFromEngine(res.Stats)
	}
	if res.Err != nil {
		o := outcome{werr: apiv1.FromError(res.Err)}
		if res.Seg != nil {
			// Typed diagnostic failures attach a partial segmentation;
			// surface its counters to the client.
			o.partial = apiv1.ResponseFromSegmentation(res.Seg, stats)
		}
		return o
	}
	return outcome{resp: apiv1.ResponseFromSegmentation(res.Seg, stats)}
}

// effectiveTimeout resolves a request's wire deadline against the
// server's default and clamp.
func (s *Server) effectiveTimeout(millis int64) time.Duration {
	d := time.Duration(millis) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) retryAfterSeconds() int {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// handleHealthz serves liveness: 200 "ok" while serving, 503 while
// draining (so load balancers stop routing before connections die).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleVarz serves the metrics snapshot.
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Varz())
}

// Varz snapshots the daemon's operational counters.
func (s *Server) Varz() *apiv1.Metrics {
	m := s.metrics.snapshot()
	m.UptimeSeconds = clock.Since(s.start).Seconds()
	m.Draining = s.Draining()
	m.InFlight = int64(len(s.sem))
	m.QueueDepth = s.queued.Load()
	m.Coalesce.InFlightKeys = s.flights.size()
	cs := s.eng.CacheStats()
	m.Engine.TokenHits = cs.TokenHits
	m.Engine.TokenMisses = cs.TokenMisses
	m.Engine.TemplateHits = cs.TemplateHits
	m.Engine.TemplateMisses = cs.TemplateMisses
	m.Engine.CachedSites = int64(s.eng.CachedSites())
	m.Engine.ResultHits = cs.ResultHits
	m.Engine.ResultMisses = cs.ResultMisses
	for _, t := range cs.Tiers {
		m.Engine.Tiers = append(m.Engine.Tiers, apiv1.CacheTier{
			Tier:      t.Tier,
			Hits:      t.Hits,
			Misses:    t.Misses,
			Puts:      t.Puts,
			Evictions: t.Evictions,
			Errors:    t.Errors,
			Entries:   t.Entries,
			Bytes:     t.Bytes,
		})
	}
	return m
}

// writeError serves an api/v1 error envelope with its mapped status
// and Retry-After header when the error carries a hint.
func (s *Server) writeError(w http.ResponseWriter, werr *apiv1.Error, partial *apiv1.SegmentResponse) {
	if werr.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(werr.RetryAfterSeconds))
	}
	s.metrics.countCode(werr.Code)
	s.writeJSON(w, werr.Code.HTTPStatus(), &apiv1.ErrorResponse{Error: werr, Partial: partial})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure here means the client went away mid-body; the
	// status line is already written, so there is nothing left to do.
	_ = json.NewEncoder(w).Encode(body)
}

// clientKey identifies a client for rate limiting: an explicit
// X-Client-Id header, else the remote address without its port.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return id
	}
	host := r.RemoteAddr
	for i := len(host) - 1; i >= 0; i-- {
		if host[i] == ':' {
			return host[:i]
		}
	}
	return host
}
