package token

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeOfBasic(t *testing.T) {
	cases := []struct {
		s    string
		want Type
	}{
		{"Smith", Alnum | Alpha | Capitalized},
		{"smith", Alnum | Alpha | Lowercase},
		{"SMITH", Alnum | Alpha | AllCaps},
		{"OH", Alnum | Alpha | AllCaps},
		{"221", Alnum | Numeric},
		{"335-5555", Alnum | Numeric},
		{"(740)", Alnum | Numeric},
		{"221R", Alnum},
		{"|", Punct},
		{"...", Punct},
		{"$12.99", Alnum},
		{"O'Brien", Alnum | Alpha}, // mixed case after apostrophe: no case class
		{"anti-virus", Alnum | Alpha | Lowercase},
		{"Jr.", Alnum | Alpha | Capitalized},
		{"McDonald", Alnum | Alpha}, // mixed case: alpha but no case class
		{"", 0},
	}
	for _, c := range cases {
		if got := TypeOf(c.s); got != c.want {
			t.Errorf("TypeOf(%q) = %v, want %v", c.s, got, c.want)
		}
	}
}

// Lattice invariants from §3.1: the refinements imply their parents and
// the case classes are mutually exclusive.
func TestTypeLatticeInvariants(t *testing.T) {
	f := func(s string) bool {
		ty := TypeOf(s)
		if ty.Has(Numeric) && !ty.Has(Alnum) {
			return false
		}
		if ty.Has(Alpha) && !ty.Has(Alnum) {
			return false
		}
		for _, c := range []Type{Capitalized, Lowercase, AllCaps} {
			if ty.Has(c) && !ty.Has(Alpha) {
				return false
			}
		}
		// Case classes mutually exclusive.
		n := 0
		for _, c := range []Type{Capitalized, Lowercase, AllCaps} {
			if ty.Has(c) {
				n++
			}
		}
		if n > 1 {
			return false
		}
		// Numeric and Alpha mutually exclusive.
		if ty.Has(Numeric) && ty.Has(Alpha) {
			return false
		}
		// Punct excludes Alnum and vice versa.
		if ty.Has(Punct) && ty.Has(Alnum) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	if got := TypeOf("Smith").String(); got != "ALNUM|ALPHA|CAPITALIZED" {
		t.Errorf("String() = %q", got)
	}
	if got := Type(0).String(); got != "NONE" {
		t.Errorf("zero type String() = %q", got)
	}
}

func TestTypeVectorAndBits(t *testing.T) {
	ty := TypeOf("221")
	v := ty.Vector()
	bits := ty.Bits()
	n := 0
	for i, b := range v {
		if b {
			n++
			found := false
			for _, bi := range bits {
				if bi == i {
					found = true
				}
			}
			if !found {
				t.Errorf("bit %d set in vector but missing from Bits()", i)
			}
		}
	}
	if n != len(bits) {
		t.Errorf("vector has %d set bits, Bits() has %d", n, len(bits))
	}
}

func TestTokenizePage(t *testing.T) {
	src := `<html><body><table><tr><td>John Smith</td><td>(740) 335-5555</td></tr></table></body></html>`
	toks := Tokenize(src)
	var words, tags []string
	for _, tk := range toks {
		if tk.IsHTML() {
			tags = append(tags, tk.Text)
		} else {
			words = append(words, tk.Text)
		}
	}
	wantWords := []string{"John", "Smith", "(740)", "335-5555"}
	if strings.Join(words, " ") != strings.Join(wantWords, " ") {
		t.Errorf("words = %v, want %v", words, wantWords)
	}
	if tags[0] != "<html>" || tags[len(tags)-1] != "</html>" {
		t.Errorf("tags = %v", tags)
	}
}

func TestTokenizeDropsAttributes(t *testing.T) {
	a := Tokenize(`<td class="odd" bgcolor="#fff">x</td>`)
	b := Tokenize(`<td class="even">x</td>`)
	if len(a) != len(b) {
		t.Fatalf("token counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Errorf("token %d: %q vs %q — attribute leak into canonical form", i, a[i].Text, b[i].Text)
		}
	}
}

func TestTokenizeSkipsScriptStyleComments(t *testing.T) {
	src := `<script>var hidden = "SECRET";</script><style>.x{color:red}</style><!-- GONE -->visible`
	toks := Tokenize(src)
	for _, tk := range toks {
		if !tk.IsHTML() && (strings.Contains(tk.Text, "SECRET") || strings.Contains(tk.Text, "GONE") || strings.Contains(tk.Text, "color")) {
			t.Errorf("invisible content leaked: %q", tk.Text)
		}
	}
	found := false
	for _, tk := range toks {
		if tk.Text == "visible" {
			found = true
		}
	}
	if !found {
		t.Error("visible text missing")
	}
}

func TestTokenizeEntityDecoding(t *testing.T) {
	toks := Tokenize(`a&nbsp;b&amp;c`)
	var words []string
	for _, tk := range toks {
		words = append(words, tk.Text)
	}
	// &nbsp; becomes a space and splits; &amp; joins b and c as "b&c".
	want := []string{"a", "b&c"}
	if strings.Join(words, "|") != strings.Join(want, "|") {
		t.Errorf("words = %v, want %v", words, want)
	}
}

func TestTokenizeSelfClosingCanonical(t *testing.T) {
	toks := Tokenize(`x<br/>y<br>z`)
	if toks[1].Text != "<br/>" {
		t.Errorf("self-closing canonical = %q", toks[1].Text)
	}
	if toks[3].Text != "<br>" {
		t.Errorf("start tag canonical = %q", toks[3].Text)
	}
}

func TestJoinAndTexts(t *testing.T) {
	toks := Tokenize(`<b>Hi there</b>`)
	if got := Join(toks); got != "<b> Hi there </b>" {
		t.Errorf("Join = %q", got)
	}
	ts := Texts(toks)
	if len(ts) != 4 || ts[1] != "Hi" {
		t.Errorf("Texts = %v", ts)
	}
}

// Word tokens never contain whitespace, and all tokens are non-empty.
func TestTokenizeNoWhitespaceTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tk := range Tokenize(s) {
			if tk.Text == "" {
				return false
			}
			if !tk.IsHTML() && strings.ContainsAny(tk.Text, " \t\n\r\f\v") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
