package token

import (
	"strings"

	"tableseg/internal/htmlx"
)

// Token is one element of the flat page stream: either an HTML tag
// (opaque, typed HTML) or a single word of visible text.
type Token struct {
	// Text is the token's canonical text: the word itself for word
	// tokens, or the normalized tag form ("<td>", "</tr>", "<br/>")
	// for HTML tokens. Tag attributes are deliberately dropped: page
	// templates must match across pages that differ only in generated
	// attribute values (session ids, row colors).
	Text string
	// Type is the syntactic type bitmask.
	Type Type
	// Offset is the byte offset of the token in the source document.
	Offset int
}

// IsHTML reports whether the token is an HTML tag.
func (t Token) IsHTML() bool { return t.Type.Has(HTML) }

// Tokenize converts an HTML document into the paper's flat token stream:
// tags become single HTML-typed tokens, text runs are entity-decoded and
// split on whitespace into word tokens, and each word token is assigned
// its syntactic type set. Comments, doctypes, and script/style bodies
// produce no tokens (they are invisible).
func Tokenize(src string) []Token {
	raw := htmlx.Tokenize(src)
	out := make([]Token, 0, len(raw)*2)
	skipText := 0 // >0 while inside <script>/<style>
	for _, rt := range raw {
		switch rt.Kind {
		case htmlx.Comment, htmlx.Doctype:
			continue
		case htmlx.StartTag, htmlx.EndTag, htmlx.SelfClosing:
			name := rt.TagName()
			switch rt.Kind {
			case htmlx.StartTag:
				if name == "script" || name == "style" {
					skipText++
				}
			case htmlx.EndTag:
				if (name == "script" || name == "style") && skipText > 0 {
					skipText--
				}
			}
			out = append(out, Token{Text: canonicalTag(rt), Type: HTML, Offset: rt.Offset})
		case htmlx.Text:
			if skipText > 0 {
				continue
			}
			out = appendWords(out, rt.Data, rt.Offset)
		}
	}
	return out
}

// canonicalTag renders a tag token in its canonical attribute-free form.
func canonicalTag(rt htmlx.Token) string {
	switch rt.Kind {
	case htmlx.EndTag:
		return "</" + rt.Data + ">"
	case htmlx.SelfClosing:
		return "<" + rt.Data + "/>"
	default:
		return "<" + rt.Data + ">"
	}
}

// appendWords splits text on whitespace and appends one typed token per
// word. Offsets are approximate within the run (start offset + index of
// the word in the decoded text), which is sufficient for ordering.
func appendWords(out []Token, text string, base int) []Token {
	i := 0
	for i < len(text) {
		for i < len(text) && isWS(text[i]) {
			i++
		}
		if i >= len(text) {
			break
		}
		start := i
		for i < len(text) && !isWS(text[i]) {
			i++
		}
		w := text[start:i]
		out = append(out, Token{Text: w, Type: TypeOf(w), Offset: base + start})
	}
	return out
}

func isWS(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v'
}

// Texts projects a token slice to its text strings (testing helper and
// template-induction input).
func Texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

// Join renders tokens back to a readable string with single spaces,
// useful in diagnostics and examples.
func Join(toks []Token) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
	}
	return b.String()
}
