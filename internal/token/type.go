// Package token implements the syntactic token-type system of the paper
// (§3.1, following Lerman & Minton 2000) and the page tokenizer that
// turns an HTML document into a flat stream of typed tokens.
//
// Each token carries a set of non-mutually-exclusive syntactic types.
// The paper's eight types are: HTML, punctuation, alphanumeric, and —
// refinements of alphanumeric — numeric, alphabetic, capitalized,
// lowercased and allcaps. A token such as "Main" is simultaneously
// ALNUM, ALPHA and CAPITALIZED; the type set forms a small lattice and
// is represented here as a bitmask.
package token

import "strings"

// Type is a bitmask of syntactic token types.
type Type uint16

// The eight syntactic types of §3.1. They are not mutually exclusive:
// an alphabetic token always also carries ALNUM and ALPHA bits.
const (
	HTML        Type = 1 << iota // an HTML tag (opaque)
	Punct                        // punctuation characters only
	Alnum                        // contains letters and/or digits
	Numeric                      // digits (with optional .,- characters)
	Alpha                        // letters only (plus '.' or '-' or '\'')
	Capitalized                  // Alpha starting uppercase, rest lowercase
	Lowercase                    // Alpha, all lowercase
	AllCaps                      // Alpha, all uppercase (len > 1 or single cap letter)
)

// NumTypes is the number of distinct syntactic types (the paper's 8).
const NumTypes = 8

// typeNames in bit order.
var typeNames = [NumTypes]string{
	"HTML", "PUNCT", "ALNUM", "NUMERIC", "ALPHA", "CAPITALIZED", "LOWERCASE", "ALLCAPS",
}

// String renders the type set as a '|'-joined list, e.g. "ALNUM|ALPHA|CAPITALIZED".
func (t Type) String() string {
	if t == 0 {
		return "NONE"
	}
	var parts []string
	for i := 0; i < NumTypes; i++ {
		if t&(1<<i) != 0 {
			parts = append(parts, typeNames[i])
		}
	}
	return strings.Join(parts, "|")
}

// Has reports whether t contains every bit of q.
func (t Type) Has(q Type) bool { return t&q == q }

// Bits returns the indices (0..7) of the set type bits, for use as
// feature indices in the probabilistic model's T_i vector.
func (t Type) Bits() []int {
	var out []int
	for i := 0; i < NumTypes; i++ {
		if t&(1<<i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// Vector returns the token type as the 8-element boolean vector
// (T_i1..T_i8) used by the probabilistic model of §5.1.
func (t Type) Vector() [NumTypes]bool {
	var v [NumTypes]bool
	for i := 0; i < NumTypes; i++ {
		v[i] = t&(1<<i) != 0
	}
	return v
}

// TypeOf computes the syntactic type set for a single word token (not an
// HTML tag). HTML tags get their type from the tokenizer directly.
func TypeOf(s string) Type {
	if s == "" {
		return 0
	}
	var (
		hasLetter, hasDigit, hasOther bool
		hasUpper, hasLower            bool
	)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
			hasLetter, hasLower = true, true
		case c >= 'A' && c <= 'Z':
			hasLetter, hasUpper = true, true
		case c >= '0' && c <= '9':
			hasDigit = true
		default:
			hasOther = true
		}
	}
	if !hasLetter && !hasDigit {
		return Punct
	}
	t := Alnum
	if hasDigit && !hasLetter && !hasOtherBeyondNumericPunct(s, hasOther) {
		t |= Numeric
	}
	if hasLetter && !hasDigit && !hasOtherBeyondWordPunct(s, hasOther) {
		t |= Alpha
		switch {
		case hasUpper && !hasLower:
			t |= AllCaps
		case !hasUpper && hasLower:
			t |= Lowercase
		case isCapitalized(s):
			t |= Capitalized
		}
	}
	return t
}

// hasOtherBeyondNumericPunct reports whether s contains non-digit
// characters other than the punctuation conventionally embedded in
// numbers, phone numbers and dates ('.', ',', '-', '(', ')', '/', ':').
func hasOtherBeyondNumericPunct(s string, hasOther bool) bool {
	if !hasOther {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= '0' && c <= '9' {
			continue
		}
		switch c {
		case '.', ',', '-', '(', ')', '/', ':':
			continue
		}
		return true
	}
	return false
}

// hasOtherBeyondWordPunct reports whether s contains non-alphanumeric
// characters other than the intra-word punctuation commonly embedded in
// names and words (period, hyphen, apostrophe), e.g. "O'Brien",
// "anti-virus", "Jr.".
func hasOtherBeyondWordPunct(s string, hasOther bool) bool {
	if !hasOther {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			continue
		}
		if c == '.' || c == '-' || c == '\'' {
			continue
		}
		return true
	}
	return false
}

// isCapitalized reports whether the first letter of s is uppercase and
// every subsequent letter is lowercase.
func isCapitalized(s string) bool {
	first := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		isUp := c >= 'A' && c <= 'Z'
		isLo := c >= 'a' && c <= 'z'
		if !isUp && !isLo {
			continue
		}
		if first {
			if !isUp {
				return false
			}
			first = false
			continue
		}
		if isUp {
			return false
		}
	}
	return !first
}
