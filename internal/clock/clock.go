// Package clock is the repository's single audited seam to the wall
// clock. The solver packages (core, csp, phmm, engine, experiments)
// are forbidden by tableseglint's determinism analyzer from calling
// time.Now directly — wall-clock reads in a solver path are how
// nondeterminism sneaks into otherwise seeded, order-stable code — so
// the per-stage timings they report flow through this package instead.
// Timings are diagnostics only: they never influence segmentation
// output, and tests can freeze them with SetForTest.
package clock

import "time"

var now = time.Now

// Now returns the current wall-clock time.
func Now() time.Time { return now() }

// Since returns the elapsed time since t.
func Since(t time.Time) time.Duration { return now().Sub(t) }

// SetForTest replaces the clock's time source and returns a function
// restoring the previous one. Not safe for concurrent use with Now;
// intended for sequential tests.
func SetForTest(f func() time.Time) (restore func()) {
	prev := now
	now = f
	return func() { now = prev }
}
