package clock

import (
	"testing"
	"time"
)

func TestSetForTestFreezesAndRestores(t *testing.T) {
	frozen := time.Date(2004, 6, 17, 0, 0, 0, 0, time.UTC)
	restore := SetForTest(func() time.Time { return frozen })
	if got := Now(); !got.Equal(frozen) {
		t.Fatalf("Now() = %v, want frozen %v", got, frozen)
	}
	if got := Since(frozen.Add(-time.Minute)); got != time.Minute {
		t.Fatalf("Since = %v, want 1m", got)
	}
	restore()
	if Now().Year() < 2020 {
		t.Fatal("restore did not reinstate the real clock")
	}
}
