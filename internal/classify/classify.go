// Package classify identifies detail pages among the pages linked from
// a list page. §6.1 leaves automatic detail-page identification to
// future work and sketches the solution implemented here: "download all
// the pages that are linked on the list pages, and then use a
// classification algorithm to find a subset that contains the detail
// pages only. The detail pages, generated from the same template, will
// look similar to one another and different from advertisement pages."
//
// Similarity is structural: the Jaccard overlap of the pages' token
// vocabularies, which is dominated by template boilerplate (tags,
// captions, footers) rather than record data. Pages are clustered
// greedily by average similarity to cluster members; the largest
// cluster is declared the detail-page set.
package classify

import "tableseg/internal/token"

// Similarity returns the Jaccard overlap of two pages' token-text sets,
// in [0,1]. Pages generated from one template share their boilerplate
// vocabulary and score high even when every data value differs.
func Similarity(a, b []token.Token) float64 {
	return jaccard(vocabulary(a), vocabulary(b))
}

func vocabulary(page []token.Token) map[string]bool {
	v := make(map[string]bool, len(page))
	for _, t := range page {
		v[t.Text] = true
	}
	return v
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for w := range a {
		if b[w] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// DefaultThreshold is the cluster-membership similarity threshold.
const DefaultThreshold = 0.5

// DetailPages selects the indices (in input order) of the pages that
// form the largest structural cluster among the linked pages — the
// detail-page set. threshold <= 0 selects DefaultThreshold.
func DetailPages(linked [][]token.Token, threshold float64) []int {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	n := len(linked)
	if n == 0 {
		return nil
	}
	vocab := make([]map[string]bool, n)
	for i, p := range linked {
		vocab[i] = vocabulary(p)
	}

	assigned := make([]int, n)
	for i := range assigned {
		assigned[i] = -1
	}
	var clusters [][]int
	for i := 0; i < n; i++ {
		if assigned[i] >= 0 {
			continue
		}
		cluster := []int{i}
		assigned[i] = len(clusters)
		for j := i + 1; j < n; j++ {
			if assigned[j] >= 0 {
				continue
			}
			// Average similarity to current members.
			total := 0.0
			for _, m := range cluster {
				total += jaccard(vocab[m], vocab[j])
			}
			if total/float64(len(cluster)) >= threshold {
				cluster = append(cluster, j)
				assigned[j] = len(clusters)
			}
		}
		clusters = append(clusters, cluster)
	}

	best := 0
	for ci := 1; ci < len(clusters); ci++ {
		if len(clusters[ci]) > len(clusters[best]) {
			best = ci
		}
	}
	return clusters[best]
}
