package classify

import (
	"testing"

	"tableseg/internal/sitegen"
	"tableseg/internal/token"
)

func TestSimilaritySameTemplate(t *testing.T) {
	a := token.Tokenize(`<html><body><h1>Site</h1><p>Name: Ann Lee</p><p>Phone: 555-1234</p></body></html>`)
	b := token.Tokenize(`<html><body><h1>Site</h1><p>Name: Bob Day</p><p>Phone: 555-9876</p></body></html>`)
	c := token.Tokenize(`<div><i>Buy Cheap Deals 48213</i></div>`)
	if s := Similarity(a, b); s < 0.5 {
		t.Errorf("same-template similarity %.2f, want >= 0.5", s)
	}
	if s := Similarity(a, c); s > 0.2 {
		t.Errorf("cross-template similarity %.2f, want <= 0.2", s)
	}
	if s := Similarity(a, a); s != 1 {
		t.Errorf("self similarity %.2f", s)
	}
	if s := Similarity(nil, nil); s != 1 {
		t.Errorf("empty similarity %.2f", s)
	}
}

func TestDetailPagesOnGeneratedSites(t *testing.T) {
	for _, slug := range []string{"superpages", "allegheny", "amazon", "ohio"} {
		site, err := sitegen.GenerateBySlug(slug, 42)
		if err != nil {
			t.Fatal(err)
		}
		lp := site.Lists[0]
		// Interleave ads among the details, remembering which is which.
		var linked [][]token.Token
		isDetail := map[int]bool{}
		ai := 0
		for di, d := range lp.Details {
			if di%4 == 1 && ai < len(lp.Ads) {
				linked = append(linked, token.Tokenize(lp.Ads[ai]))
				ai++
			}
			isDetail[len(linked)] = true
			linked = append(linked, token.Tokenize(d))
		}
		for ; ai < len(lp.Ads); ai++ {
			linked = append(linked, token.Tokenize(lp.Ads[ai]))
		}

		got := DetailPages(linked, 0)
		tp, fp := 0, 0
		for _, idx := range got {
			if isDetail[idx] {
				tp++
			} else {
				fp++
			}
		}
		if fp != 0 {
			t.Errorf("%s: %d ad pages classified as details", slug, fp)
		}
		if tp != len(lp.Details) {
			t.Errorf("%s: found %d of %d detail pages", slug, tp, len(lp.Details))
		}
		// Selection must preserve link order.
		for k := 1; k < len(got); k++ {
			if got[k] <= got[k-1] {
				t.Errorf("%s: selection out of order: %v", slug, got)
			}
		}
	}
}

func TestDetailPagesEmpty(t *testing.T) {
	if got := DetailPages(nil, 0); got != nil {
		t.Errorf("empty input: %v", got)
	}
}

func TestDetailPagesSingleton(t *testing.T) {
	p := token.Tokenize(`<p>only page</p>`)
	got := DetailPages([][]token.Token{p}, 0)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("singleton: %v", got)
	}
}
