package stage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"tableseg/internal/artifact"
	"tableseg/internal/extract"
	"tableseg/internal/pagetemplate"
	"tableseg/internal/token"
)

// CodecVersion is the version of the artifact wire format below. It
// participates in every artifact.Key, so bumping it when the format
// (or any encoded struct's meaning) changes makes old payloads
// unreachable — a version bump invalidates, never misreads.
const CodecVersion = 1

// codecMagic opens every encoded artifact, ahead of the kind and
// version bytes, so a decoder handed bytes of the wrong shape fails
// fast instead of misparsing.
const codecMagic = "TSC"

// ErrCodec is the sentinel wrapped by every artifact-codec decode
// failure: wrong magic, kind or version, truncated or corrupt payload.
var ErrCodec = errors.New("stage: artifact codec")

// Encoder builds an encoded artifact payload. The format is not
// self-describing beyond its header — Encoder and Decoder calls must
// mirror each other exactly, which the round-trip and fuzz tests pin.
type Encoder struct {
	buf []byte
}

// NewEncoder starts a payload of the given kind under the given codec
// version (stage artifacts pass CodecVersion; the engine's result
// journal layers its own version on top).
func NewEncoder(kind artifact.Kind, version uint16) *Encoder {
	e := &Encoder{buf: make([]byte, 0, 64)}
	e.buf = append(e.buf, codecMagic...)
	e.buf = append(e.buf, byte(kind))
	e.Uint(uint64(version))
	return e
}

// Uint appends an unsigned varint.
func (e *Encoder) Uint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Int appends a signed (zigzag) varint.
func (e *Encoder) Int(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.Uint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bool appends one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float appends a float64 as its fixed 8-byte IEEE-754 bit pattern,
// so every value (including NaNs and signed zeros) round-trips
// bit-exactly.
func (e *Encoder) Float(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// Len appends a slice length with nil-ness preserved: nil encodes as
// 0, a non-nil slice of length n as n+1. Decoders recover the
// distinction, so encoded artifacts round-trip nil-vs-empty exactly —
// required for byte-identical resumed output.
func (e *Encoder) Len(n int, isNil bool) {
	if isNil {
		e.Uint(0)
		return
	}
	e.Uint(uint64(n) + 1)
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Decoder reads an encoded artifact payload. Every method returns an
// error wrapping ErrCodec on malformed input; none panic, whatever the
// bytes.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder validates the header (magic, kind, version) and positions
// the decoder at the payload.
func NewDecoder(data []byte, kind artifact.Kind, version uint16) (*Decoder, error) {
	d := &Decoder{buf: data}
	if len(data) < len(codecMagic)+1 || string(data[:len(codecMagic)]) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCodec)
	}
	d.off = len(codecMagic)
	if got := artifact.Kind(data[d.off]); got != kind {
		return nil, fmt.Errorf("%w: kind %s, want %s", ErrCodec, got, kind)
	}
	d.off++
	v, err := d.Uint()
	if err != nil {
		return nil, err
	}
	if v != uint64(version) {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCodec, v, version)
	}
	return d, nil
}

// Uint reads an unsigned varint.
func (d *Decoder) Uint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated uvarint at %d", ErrCodec, d.off)
	}
	d.off += n
	return v, nil
}

// Int reads a signed varint.
func (d *Decoder) Int() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at %d", ErrCodec, d.off)
	}
	d.off += n
	return v, nil
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() (string, error) {
	n, err := d.Uint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.off) {
		return "", fmt.Errorf("%w: string length %d exceeds remaining %d", ErrCodec, n, len(d.buf)-d.off)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// Bool reads one byte.
func (d *Decoder) Bool() (bool, error) {
	if d.off >= len(d.buf) {
		return false, fmt.Errorf("%w: truncated bool at %d", ErrCodec, d.off)
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		return false, fmt.Errorf("%w: bad bool %d at %d", ErrCodec, b, d.off-1)
	}
	return b == 1, nil
}

// Float reads a fixed 8-byte IEEE-754 float64.
func (d *Decoder) Float() (float64, error) {
	if len(d.buf)-d.off < 8 {
		return 0, fmt.Errorf("%w: truncated float at %d", ErrCodec, d.off)
	}
	bits := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(bits), nil
}

// Len reads a slice length written by Encoder.Len. The reported
// length is bounded by the remaining payload (every element costs at
// least one byte), so a corrupted count cannot drive a giant
// allocation.
func (d *Decoder) Len() (n int, isNil bool, err error) {
	v, err := d.Uint()
	if err != nil {
		return 0, false, err
	}
	if v == 0 {
		return 0, true, nil
	}
	v--
	if v > uint64(len(d.buf)-d.off) {
		return 0, false, fmt.Errorf("%w: count %d exceeds remaining %d bytes", ErrCodec, v, len(d.buf)-d.off)
	}
	return int(v), false, nil
}

// Finish errors when payload bytes remain unread — a corrupted or
// foreign payload that happened to parse must not be accepted.
func (d *Decoder) Finish() error {
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(d.buf)-d.off)
	}
	return nil
}

// EncodeTokens serializes a page's token stream (the cacheable half of
// a TokenizedPage — the name is diagnostic and lives outside the
// content-addressed payload).
func EncodeTokens(toks []token.Token) []byte {
	e := NewEncoder(artifact.KindTokens, CodecVersion)
	e.Len(len(toks), toks == nil)
	for _, t := range toks {
		e.Str(t.Text)
		e.Uint(uint64(t.Type))
		e.Int(int64(t.Offset))
	}
	return e.Bytes()
}

// DecodeTokens reverses EncodeTokens.
func DecodeTokens(data []byte) ([]token.Token, error) {
	d, err := NewDecoder(data, artifact.KindTokens, CodecVersion)
	if err != nil {
		return nil, err
	}
	n, isNil, err := d.Len()
	if err != nil {
		return nil, err
	}
	var toks []token.Token
	if !isNil {
		toks = make([]token.Token, n)
		for i := range toks {
			if toks[i].Text, err = d.Str(); err != nil {
				return nil, err
			}
			ty, err := d.Uint()
			if err != nil {
				return nil, err
			}
			if ty > math.MaxUint16 {
				return nil, fmt.Errorf("%w: token type %d out of range", ErrCodec, ty)
			}
			toks[i].Type = token.Type(ty)
			off, err := d.Int()
			if err != nil {
				return nil, err
			}
			toks[i].Offset = int(off)
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return toks, nil
}

// EncodeTemplate serializes the InduceTemplate stage's artifact.
func EncodeTemplate(t Template) []byte {
	e := NewEncoder(artifact.KindTemplate, CodecVersion)
	e.Bool(t.Tpl != nil)
	if t.Tpl == nil {
		return e.Bytes()
	}
	data := t.Tpl.Data()
	e.Len(len(data.Skeleton), data.Skeleton == nil)
	for _, s := range data.Skeleton {
		e.Str(s)
	}
	e.Len(len(data.Positions), data.Positions == nil)
	for _, page := range data.Positions {
		e.Len(len(page), page == nil)
		for _, pos := range page {
			e.Int(int64(pos))
		}
	}
	e.Int(int64(data.NumPages))
	return e.Bytes()
}

// DecodeTemplate reverses EncodeTemplate.
func DecodeTemplate(data []byte) (Template, error) {
	d, err := NewDecoder(data, artifact.KindTemplate, CodecVersion)
	if err != nil {
		return Template{}, err
	}
	present, err := d.Bool()
	if err != nil {
		return Template{}, err
	}
	if !present {
		if err := d.Finish(); err != nil {
			return Template{}, err
		}
		return Template{}, nil
	}
	var td pagetemplate.TemplateData
	n, isNil, err := d.Len()
	if err != nil {
		return Template{}, err
	}
	if !isNil {
		td.Skeleton = make([]string, n)
		for i := range td.Skeleton {
			if td.Skeleton[i], err = d.Str(); err != nil {
				return Template{}, err
			}
		}
	}
	n, isNil, err = d.Len()
	if err != nil {
		return Template{}, err
	}
	if !isNil {
		td.Positions = make([][]int, n)
		for i := range td.Positions {
			m, pageNil, err := d.Len()
			if err != nil {
				return Template{}, err
			}
			if pageNil {
				continue
			}
			td.Positions[i] = make([]int, m)
			for j := range td.Positions[i] {
				pos, err := d.Int()
				if err != nil {
					return Template{}, err
				}
				td.Positions[i][j] = int(pos)
			}
		}
	}
	np, err := d.Int()
	if err != nil {
		return Template{}, err
	}
	td.NumPages = int(np)
	if err := d.Finish(); err != nil {
		return Template{}, err
	}
	return Template{Tpl: pagetemplate.FromData(td)}, nil
}

// EncodeRecords serializes the PostProcess stage's artifact: the final
// segmented records, including every extract field, so a journaled
// task result reconstructs byte-identical JSON/CSV output.
func EncodeRecords(recs []Record) []byte {
	e := NewEncoder(artifact.KindResult, CodecVersion)
	e.Len(len(recs), recs == nil)
	for i := range recs {
		encodeRecord(e, &recs[i])
	}
	return e.Bytes()
}

func encodeRecord(e *Encoder, r *Record) {
	e.Int(int64(r.Index))
	e.Len(len(r.Extracts), r.Extracts == nil)
	for j := range r.Extracts {
		encodeExtract(e, &r.Extracts[j])
	}
	e.Len(len(r.Columns), r.Columns == nil)
	for _, c := range r.Columns {
		e.Int(int64(c))
	}
	e.Len(len(r.Analyzed), r.Analyzed == nil)
	for _, a := range r.Analyzed {
		e.Bool(a)
	}
	e.Len(len(r.Confidence), r.Confidence == nil)
	for _, c := range r.Confidence {
		e.Float(c)
	}
}

func encodeExtract(e *Encoder, x *extract.Extract) {
	e.Int(int64(x.Index))
	e.Len(len(x.Words), x.Words == nil)
	for _, w := range x.Words {
		e.Str(w)
	}
	e.Len(len(x.Types), x.Types == nil)
	for _, t := range x.Types {
		e.Uint(uint64(t))
	}
	e.Int(int64(x.TokenStart))
	e.Int(int64(x.TokenEnd))
	e.Int(int64(x.ByteStart))
	e.Int(int64(x.ByteEnd))
}

// DecodeRecords reverses EncodeRecords.
func DecodeRecords(data []byte) ([]Record, error) {
	d, err := NewDecoder(data, artifact.KindResult, CodecVersion)
	if err != nil {
		return nil, err
	}
	recs, err := decodeRecordList(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return recs, nil
}

// DecodeRecordsFrom reads a record list mid-payload (the engine's
// result journal embeds one inside its own envelope).
func DecodeRecordsFrom(d *Decoder) ([]Record, error) {
	return decodeRecordList(d)
}

// EncodeRecordsInto appends a record list to an existing payload.
func EncodeRecordsInto(e *Encoder, recs []Record) {
	e.Len(len(recs), recs == nil)
	for i := range recs {
		encodeRecord(e, &recs[i])
	}
}

func decodeRecordList(d *Decoder) ([]Record, error) {
	n, isNil, err := d.Len()
	if err != nil {
		return nil, err
	}
	if isNil {
		return nil, nil
	}
	recs := make([]Record, n)
	for i := range recs {
		if err := decodeRecord(d, &recs[i]); err != nil {
			return nil, err
		}
	}
	return recs, nil
}

func decodeRecord(d *Decoder, r *Record) error {
	idx, err := d.Int()
	if err != nil {
		return err
	}
	r.Index = int(idx)
	n, isNil, err := d.Len()
	if err != nil {
		return err
	}
	if !isNil {
		r.Extracts = make([]extract.Extract, n)
		for j := range r.Extracts {
			if err := decodeExtract(d, &r.Extracts[j]); err != nil {
				return err
			}
		}
	}
	n, isNil, err = d.Len()
	if err != nil {
		return err
	}
	if !isNil {
		r.Columns = make([]int, n)
		for j := range r.Columns {
			v, err := d.Int()
			if err != nil {
				return err
			}
			r.Columns[j] = int(v)
		}
	}
	n, isNil, err = d.Len()
	if err != nil {
		return err
	}
	if !isNil {
		r.Analyzed = make([]bool, n)
		for j := range r.Analyzed {
			if r.Analyzed[j], err = d.Bool(); err != nil {
				return err
			}
		}
	}
	n, isNil, err = d.Len()
	if err != nil {
		return err
	}
	if !isNil {
		r.Confidence = make([]float64, n)
		for j := range r.Confidence {
			if r.Confidence[j], err = d.Float(); err != nil {
				return err
			}
		}
	}
	return nil
}

func decodeExtract(d *Decoder, x *extract.Extract) error {
	idx, err := d.Int()
	if err != nil {
		return err
	}
	x.Index = int(idx)
	n, isNil, err := d.Len()
	if err != nil {
		return err
	}
	if !isNil {
		x.Words = make([]string, n)
		for i := range x.Words {
			if x.Words[i], err = d.Str(); err != nil {
				return err
			}
		}
	}
	n, isNil, err = d.Len()
	if err != nil {
		return err
	}
	if !isNil {
		x.Types = make([]token.Type, n)
		for i := range x.Types {
			v, err := d.Uint()
			if err != nil {
				return err
			}
			if v > math.MaxUint16 {
				return fmt.Errorf("%w: token type %d out of range", ErrCodec, v)
			}
			x.Types[i] = token.Type(v)
		}
	}
	for _, dst := range []*int{&x.TokenStart, &x.TokenEnd, &x.ByteStart, &x.ByteEnd} {
		v, err := d.Int()
		if err != nil {
			return err
		}
		*dst = int(v)
	}
	return nil
}
