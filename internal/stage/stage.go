// Package stage decomposes the paper's pipeline (§3–§6) into an
// explicit stage graph: each stage is a pure function over exported
// artifact types, and the segmentation algorithms behind the Segment
// stage implement a single Solver interface resolved through a
// registry. The stages, in pipeline order, and the paper sections they
// reproduce:
//
//	Tokenize       §3.1  pages -> token streams
//	InduceTemplate §3.1  sample list pages -> page template
//	SelectSlot     §3.1  template + target page -> table slot
//	Extract        §3.2  table slot -> extracts
//	Observe        §3.2  extracts x detail pages -> observation matrix
//	Segment        §4/§5 problem -> record assignment (via a Solver)
//	PostProcess    §6.2  assignment -> records (+ §3.4 column labels)
//
// The package deliberately knows nothing about the algorithms: it may
// not import the solver packages (internal/csp, internal/phmm,
// internal/baseline) — an invariant enforced by tableseglint's
// stagepurity analyzer — so any algorithm that can express itself over
// a Problem plugs in without touching the stages. Orchestration
// (fallbacks, retries, error classification) lives in internal/core;
// artifact caching and concurrency live in internal/engine.
//
// Every stage has the shape func(ctx, In) (Out, error). Run them
// through Instrument to get per-stage wall times (via the audited
// internal/clock seam) delivered to an Observer, and a guaranteed
// context check between stages: a context canceled after stage N
// returns a wrapped, errors.Is-able ctx.Err() without invoking stage
// N+1.
package stage

import (
	"context"
	"fmt"
	"time"

	"tableseg/internal/clock"
)

// Canonical stage names, as reported to Observers and displayed by the
// CLIs. They appear in pipeline order.
const (
	StageTokenize       = "Tokenize"
	StageInduceTemplate = "InduceTemplate"
	StageSelectSlot     = "SelectSlot"
	StageExtract        = "Extract"
	StageObserve        = "Observe"
	StageSegment        = "Segment"
	StagePostProcess    = "PostProcess"
)

// Names lists the canonical stage names in pipeline order.
func Names() []string {
	return []string{
		StageTokenize, StageInduceTemplate, StageSelectSlot,
		StageExtract, StageObserve, StageSegment, StagePostProcess,
	}
}

// Observer receives per-stage instrumentation. Durations are measured
// through internal/clock, the repository's audited wall-clock seam, so
// observers never influence segmentation output. Implementations must
// be safe for use from the goroutine running the pipeline (the engine
// gives every task its own observer).
type Observer interface {
	// OnStageStart fires immediately before the stage function runs.
	OnStageStart(name string)
	// OnStageEnd fires after the stage function returns, with its wall
	// time and error (nil on success).
	OnStageEnd(name string, dur time.Duration, err error)
}

// MultiObserver fans instrumentation out to several observers in
// order. Nil entries are skipped; an empty MultiObserver is valid.
type MultiObserver []Observer

func (m MultiObserver) OnStageStart(name string) {
	for _, o := range m {
		if o != nil {
			o.OnStageStart(name)
		}
	}
}

func (m MultiObserver) OnStageEnd(name string, dur time.Duration, err error) {
	for _, o := range m {
		if o != nil {
			o.OnStageEnd(name, dur, err)
		}
	}
}

// Instrument runs one stage function under an observer. It checks the
// context first — a canceled context returns a wrapped ctx.Err()
// without invoking the stage (so cancellation between stages never
// starts the next one) — then times the stage through internal/clock
// and reports to obs (which may be nil).
func Instrument[In, Out any](ctx context.Context, name string, obs Observer, fn func(context.Context, In) (Out, error), in In) (Out, error) {
	var zero Out
	if err := ctx.Err(); err != nil {
		return zero, fmt.Errorf("stage: %s not started: %w", name, err)
	}
	if obs != nil {
		obs.OnStageStart(name)
	}
	start := clock.Now()
	out, err := fn(ctx, in)
	if obs != nil {
		obs.OnStageEnd(name, clock.Since(start), err)
	}
	return out, err
}
