package stage

import (
	"tableseg/internal/extract"
	"tableseg/internal/pagetemplate"
	"tableseg/internal/token"
)

// Page is one HTML document (a list page or a detail page). It is the
// pipeline's raw input artifact; internal/core and the root package
// alias it so the public API type is identical.
type Page struct {
	// Name identifies the page in diagnostics (a URL or file name).
	Name string
	// HTML is the raw document source.
	HTML string
}

// TokenizedPage is the Tokenize stage's artifact: one page lexed into
// the paper's eight syntactic token types (§3.1).
type TokenizedPage struct {
	// Name echoes the source page's name.
	Name string
	// Tokens is the page's token stream.
	Tokens []token.Token
}

// TokensOf projects a slice of tokenized pages to their raw token
// streams (the shape the lower-level packages consume).
func TokensOf(pages []TokenizedPage) [][]token.Token {
	out := make([][]token.Token, len(pages))
	for i := range pages {
		out[i] = pages[i].Tokens
	}
	return out
}

// Template is the InduceTemplate stage's artifact: the page template
// shared by a site's sample list pages (§3.1).
type Template struct {
	// Tpl is the induced template, nil when fewer than two sample
	// pages were available (cross-page induction needs at least two).
	Tpl *pagetemplate.Template
}

// Slot is the SelectSlot stage's artifact: the token span of the
// target page holding the table, plus the diagnostics the fallback
// decisions were made from.
type Slot struct {
	// Start and End bound the table slot in the target page's token
	// stream (half-open).
	Start, End int
	// Quality is the table-slot concentration measure (0 when no
	// template was available).
	Quality float64
	// WholePage is true when the paper's fallback fired and the slot
	// spans the entire page ("page template problem; entire page
	// used", §6.2).
	WholePage bool
	// EnumerationStripped counts the enumerated skeleton tokens
	// removed by the §6.3 strip-enumeration heuristic (0 when disabled
	// or not needed).
	EnumerationStripped int
}

// Extracts is the Extract stage's artifact: the visible strings of the
// table slot in stream order (§3.2).
type Extracts struct {
	// Items are the slot's extracts.
	Items []extract.Extract
}

// ObservationMatrix is the Observe stage's artifact: everything the
// detail pages say about the extracts (Table 1), the informative
// subset chosen for inference, and the structural diagnostics the
// orchestrator's retry decisions are made from.
type ObservationMatrix struct {
	// Obs is the per-extract observation row, parallel to the Extract
	// stage's Items.
	Obs []extract.Observation
	// Analyzed indexes the informative (evidence-bearing) extracts in
	// Obs, in the order inference will see them. The vertical-table
	// extension may have permuted it into record-major order.
	Analyzed []int
	// NumDetailPages is K, the record count.
	NumDetailPages int
	// Covered is true when every detail page supports at least one
	// analyzed extract; a false value signals a truncated table slot
	// (the orchestrator retries with the whole page).
	Covered bool
	// Vertical is true when the vertical-table extension detected a
	// vertically laid out table and transposed Analyzed.
	Vertical bool
}

// Candidates projects the analyzed extracts' observations to their D_i
// record-candidate lists (the CSP's domains, the PHMM's evidence).
func (m *ObservationMatrix) Candidates() [][]int {
	out := make([][]int, len(m.Analyzed))
	for ai, oi := range m.Analyzed {
		out[ai] = m.Obs[oi].Pages
	}
	return out
}

// Problem is the solver-facing artifact: the common intermediate
// format every segmentation algorithm consumes. It carries only plain
// data — record count, candidate sets, position groups, token-type
// evidence — so solvers depend on artifacts, never on the stages or on
// each other.
type Problem struct {
	// NumRecords is K, the number of detail pages (records).
	NumRecords int
	// Candidates[i] is D_i for analyzed extract i: the sorted record
	// indices on whose detail pages the extract was observed.
	Candidates [][]int
	// PositionGroups maps a detail-page index j to groups of extract
	// indices sharing a position on page j (the §4.2 position
	// constraints).
	PositionGroups map[int][][]int
	// TypeVecs[i] is the token-type vector of analyzed extract i (the
	// §5 emission evidence).
	TypeVecs [][token.NumTypes]bool
	// FirstTypes[i] is the first token type of analyzed extract i (the
	// §6.3 column-assignment evidence).
	FirstTypes []token.Type
}

// Counters aggregates a solver's effort, whatever its family.
type Counters struct {
	// WSATRestarts and WSATFlips count local-search work (CSP family).
	WSATRestarts, WSATFlips int
	// CutRounds counts lazy consecutiveness-repair iterations.
	CutRounds int
	// EMIters counts EM iterations (probabilistic family).
	EMIters int
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.WSATRestarts += other.WSATRestarts
	c.WSATFlips += other.WSATFlips
	c.CutRounds += other.CutRounds
	c.EMIters += other.EMIters
}

// Assignment is the Segment stage's artifact: one record (and
// optionally column) per analyzed extract, plus solver diagnostics.
type Assignment struct {
	// Records[i] is the record assigned to analyzed extract i, or -1
	// when the solver left it unassigned (relaxed CSP solutions).
	Records []int
	// Columns[i] is the column label of analyzed extract i, or -1 when
	// the solver does not assign columns.
	Columns []int
	// Confidence[i] is the solver's posterior confidence in the
	// assignment, or -1 when unavailable.
	Confidence []float64
	// Exhausted is true when the solver ran out of fallbacks without
	// finding any feasible assignment — the orchestrator classifies it
	// as a typed unsatisfiability error. Solvers whose configuration
	// asks to observe failures (ablations) leave it false and report
	// through Details instead.
	Exhausted bool
	// Counters totals the solver's effort.
	Counters Counters
	// Details carries solver-specific diagnostics in the order they
	// were produced (e.g. a *csp.SegmentResult, a *phmm.Result); the
	// orchestrator type-switches to surface them on the Segmentation.
	Details []any
}

// Record is the PostProcess stage's artifact: one segmented record.
// internal/core and the root package alias it so the public API type
// is identical.
type Record struct {
	// Index is the record number: the index of the detail page the
	// record corresponds to.
	Index int
	// Extracts are the record's extracts in stream order (both the
	// evidence-bearing ones and the attached remainder).
	Extracts []extract.Extract
	// Columns holds, per extract, the column label assigned by the
	// probabilistic method (§3.4), or -1 when unavailable.
	Columns []int
	// Analyzed marks, per extract, whether it was an informative
	// (evidence-bearing) extract; the rest were attached by the §6.2
	// rule.
	Analyzed []bool
	// Confidence holds, per extract, the probabilistic method's
	// posterior confidence in the assignment (-1 for attached extracts
	// or when the CSP method ran).
	Confidence []float64
}

// Texts returns the record's extract strings in order.
func (r *Record) Texts() []string {
	out := make([]string, len(r.Extracts))
	for i := range r.Extracts {
		out[i] = r.Extracts[i].Text()
	}
	return out
}

// TokenCache resolves a page's token stream through a caller-owned
// artifact cache, so repeated tokenization of byte-identical pages
// (shared detail pages, re-submitted sites) is computed once.
// Implementations must be safe for concurrent use and must return
// streams that callers treat as immutable. A nil TokenCache in a stage
// input means "tokenize directly".
type TokenCache interface {
	// Tokens returns the token stream of the page, computing and
	// retaining it on first sight.
	Tokens(p Page) []token.Token
}
