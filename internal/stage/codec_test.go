package stage

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"tableseg/internal/artifact"
	"tableseg/internal/extract"
	"tableseg/internal/pagetemplate"
	"tableseg/internal/token"
)

const codecTestPage = `<html><body><h1>Books</h1><table>
<tr><td><a href="/b/1">War and Peace</a></td><td>Tolstoy</td><td>$12.50</td></tr>
<tr><td><a href="/b/2">Anna Karenina</a></td><td>Tolstoy</td><td>$9.99</td></tr>
</table></body></html>`

func TestTokensRoundTrip(t *testing.T) {
	cases := map[string][]token.Token{
		"nil":       nil,
		"empty":     {},
		"real-page": token.Tokenize(codecTestPage),
		"edge-values": {
			{Text: "", Type: 0, Offset: 0},
			{Text: "héllo\x00world", Type: math.MaxUint16, Offset: -1},
			{Text: "plain", Type: token.Alpha, Offset: 1 << 40},
		},
	}
	for name, toks := range cases {
		got, err := DecodeTokens(EncodeTokens(toks))
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(got, toks) {
			t.Errorf("%s: round trip = %#v, want %#v", name, got, toks)
		}
	}
}

func TestTemplateRoundTrip(t *testing.T) {
	p1 := token.Tokenize(codecTestPage)
	p2 := token.Tokenize(codecTestPage + "<p>extra trailing chrome</p>")
	cases := map[string]Template{
		"nil-template":  {},
		"induced":       {Tpl: pagetemplate.Induce([][]token.Token{p1, p2})},
		"single-page":   {Tpl: pagetemplate.Induce([][]token.Token{p1})},
		"zero-pages":    {Tpl: pagetemplate.Induce(nil)},
		"hand-built":    {Tpl: pagetemplate.FromData(pagetemplate.TemplateData{Skeleton: []string{"<html>", "x"}, Positions: [][]int{{0, 3}, nil, {}}, NumPages: 3})},
		"empty-content": {Tpl: pagetemplate.FromData(pagetemplate.TemplateData{})},
	}
	for name, tpl := range cases {
		got, err := DecodeTemplate(EncodeTemplate(tpl))
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if (got.Tpl == nil) != (tpl.Tpl == nil) {
			t.Errorf("%s: Tpl nil-ness changed", name)
			continue
		}
		if tpl.Tpl != nil && !reflect.DeepEqual(got.Tpl.Data(), tpl.Tpl.Data()) {
			t.Errorf("%s: round trip = %#v, want %#v", name, got.Tpl.Data(), tpl.Tpl.Data())
		}
	}
}

func codecTestRecords() []Record {
	return []Record{
		{
			Index: 0,
			Extracts: []extract.Extract{
				{Index: 1, Words: []string{"War", "and", "Peace"}, Types: []token.Type{token.Alpha, token.Alpha, token.Alpha}, TokenStart: 4, TokenEnd: 7, ByteStart: 40, ByteEnd: 53},
				{Index: 2, Words: nil, Types: []token.Type{}, TokenStart: -1, TokenEnd: 0, ByteStart: 0, ByteEnd: 0},
			},
			Columns:    []int{0, -1},
			Analyzed:   []bool{true, false},
			Confidence: []float64{0.875, -1},
		},
		{
			Index:      7,
			Extracts:   []extract.Extract{},
			Columns:    nil,
			Analyzed:   []bool{},
			Confidence: []float64{math.Inf(1), math.Inf(-1), math.Copysign(0, -1), math.SmallestNonzeroFloat64},
		},
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	cases := map[string][]Record{
		"nil":   nil,
		"empty": {},
		"full":  codecTestRecords(),
	}
	for name, recs := range cases {
		got, err := DecodeRecords(EncodeRecords(recs))
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(got, recs) {
			t.Errorf("%s: round trip = %#v, want %#v", name, got, recs)
		}
	}
	// NaN confidence round-trips bit-exactly (DeepEqual rejects NaN).
	recs := []Record{{Confidence: []float64{math.NaN()}}}
	got, err := DecodeRecords(EncodeRecords(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Confidence) != 1 || !math.IsNaN(got[0].Confidence[0]) {
		t.Errorf("NaN confidence did not round-trip: %#v", got)
	}
}

func TestDecodeRejectsWrongKindAndVersion(t *testing.T) {
	toks := EncodeTokens(token.Tokenize("<p>hi</p>"))
	if _, err := DecodeTemplate(toks); !errors.Is(err, ErrCodec) {
		t.Errorf("cross-kind decode err = %v, want ErrCodec", err)
	}
	// A payload written under a different codec version must be
	// rejected outright, never reinterpreted.
	e := NewEncoder(artifact.KindTokens, CodecVersion+1)
	e.Len(0, true)
	if _, err := DecodeTokens(e.Bytes()); !errors.Is(err, ErrCodec) {
		t.Errorf("cross-version decode err = %v, want ErrCodec", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data := append(EncodeTokens(nil), 0xFF)
	if _, err := DecodeTokens(data); !errors.Is(err, ErrCodec) {
		t.Errorf("trailing bytes err = %v, want ErrCodec", err)
	}
}

// TestDecodeTruncationsError feeds every strict prefix of valid
// encodings to the decoders: each must return an error (wrapping
// ErrCodec) and none may panic.
func TestDecodeTruncationsError(t *testing.T) {
	encodings := map[string][]byte{
		"tokens":   EncodeTokens(token.Tokenize(codecTestPage)),
		"template": EncodeTemplate(Template{Tpl: pagetemplate.Induce([][]token.Token{token.Tokenize(codecTestPage), token.Tokenize(codecTestPage + "<hr>")})}),
		"records":  EncodeRecords(codecTestRecords()),
	}
	decode := map[string]func([]byte) error{
		"tokens":   func(b []byte) error { _, err := DecodeTokens(b); return err },
		"template": func(b []byte) error { _, err := DecodeTemplate(b); return err },
		"records":  func(b []byte) error { _, err := DecodeRecords(b); return err },
	}
	for name, data := range encodings {
		for i := 0; i < len(data); i++ {
			if err := decode[name](data[:i]); !errors.Is(err, ErrCodec) {
				t.Fatalf("%s: prefix of %d/%d bytes: err = %v, want ErrCodec", name, i, len(data), err)
			}
		}
		if err := decode[name](data); err != nil {
			t.Errorf("%s: full payload failed: %v", name, err)
		}
	}
}

// FuzzArtifactCodec drives every decoder with arbitrary bytes (decode
// must error or succeed, never panic) and checks the round-trip
// property decode(encode(x)) == x on artifacts derived from the fuzz
// input.
func FuzzArtifactCodec(f *testing.F) {
	f.Add([]byte(codecTestPage))
	f.Add([]byte{})
	f.Add(EncodeTokens(token.Tokenize("<p>seed</p>")))
	f.Add(EncodeTemplate(Template{}))
	f.Add(EncodeRecords(codecTestRecords()))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes: decoders may reject but must not panic.
		if toks, err := DecodeTokens(data); err == nil {
			redata := EncodeTokens(toks)
			if toks2, err := DecodeTokens(redata); err != nil || !tokensEquivalent(toks, toks2) {
				t.Fatalf("accepted tokens payload does not re-encode stably: %v", err)
			}
		}
		if tpl, err := DecodeTemplate(data); err == nil {
			if _, err := DecodeTemplate(EncodeTemplate(tpl)); err != nil {
				t.Fatalf("accepted template payload does not re-encode: %v", err)
			}
		}
		if _, err := DecodeRecords(data); err == nil { //nolint:staticcheck // reject-or-accept, never panic
			_ = err
		}

		// Round trip artifacts derived from the input.
		toks := token.Tokenize(string(data))
		got, err := DecodeTokens(EncodeTokens(toks))
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if !reflect.DeepEqual(got, toks) {
			t.Fatalf("tokens round trip mismatch: %#v != %#v", got, toks)
		}
		tpl := Template{Tpl: pagetemplate.Induce([][]token.Token{toks, token.Tokenize(string(data) + "<hr>")})}
		gotTpl, err := DecodeTemplate(EncodeTemplate(tpl))
		if err != nil {
			t.Fatalf("template round trip decode: %v", err)
		}
		if !reflect.DeepEqual(gotTpl.Tpl.Data(), tpl.Tpl.Data()) {
			t.Fatal("template round trip mismatch")
		}
	})
}

// tokensEquivalent compares token slices treating nil and empty as
// equal (re-encoded foreign payloads need not preserve that bit).
func tokensEquivalent(a, b []token.Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
