package stage

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Solver is the single interface every segmentation algorithm
// implements: given a Problem, produce an Assignment. Implementations
// must be deterministic for a fixed Problem and configuration (any
// randomness seeded per solve), must honor ctx at their natural
// boundaries (restarts, iterations), and may not mutate the Problem.
type Solver interface {
	// Name is the solver's registry name (e.g. "csp", "probabilistic").
	Name() string
	// Solve segments the problem. On context cancellation it returns
	// ctx.Err() (possibly wrapped) promptly.
	Solve(ctx context.Context, p *Problem) (*Assignment, error)
}

// SolverFactory builds a configured Solver. The cfg value is opaque to
// this package — each factory documents the configuration type it
// accepts (a nil cfg must yield the solver's defaults) — so the
// registry stays free of algorithm-package imports.
type SolverFactory func(cfg any) (Solver, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]SolverFactory{}
)

// RegisterSolver adds a solver factory under a unique name. It is
// intended for package init time (internal/solvers registers the
// built-ins); registering a duplicate name panics, surfacing wiring
// mistakes at startup rather than as silently shadowed algorithms.
func RegisterSolver(name string, factory SolverFactory) {
	if name == "" || factory == nil {
		panic("stage: RegisterSolver with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("stage: solver %q registered twice", name))
	}
	registry[name] = factory
}

// NewSolver builds the named registered solver with the given
// configuration (nil for defaults).
func NewSolver(name string, cfg any) (Solver, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("stage: unknown solver %q (registered: %v)", name, RegisteredSolvers())
	}
	return factory(cfg)
}

// HasSolver reports whether a solver name is registered.
func HasSolver(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// RegisteredSolvers lists the registered solver names, sorted.
func RegisteredSolvers() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
