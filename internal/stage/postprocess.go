package stage

import (
	"context"

	"tableseg/internal/extract"
	"tableseg/internal/labels"
)

// PostIn feeds the PostProcess stage.
type PostIn struct {
	// Extracts are all the table slot's extracts in stream order.
	Extracts Extracts
	// Matrix is the observation matrix the assignment was made over.
	Matrix *ObservationMatrix
	// Assignment is the solver's output over Matrix.Analyzed.
	Assignment *Assignment
	// Details are the tokenized detail pages (caption mining input).
	Details []TokenizedPage
	// MineLabels enables §3.4's semantic column labeling: column names
	// are mined from the captions preceding each value on its detail
	// page.
	MineLabels bool
}

// PostOut is the PostProcess stage's result.
type PostOut struct {
	// Records are the assembled records in record order.
	Records []Record
	// ColumnLabels holds the mined semantic name of each column label
	// (index = column number, "" when no caption was found); nil when
	// label mining is disabled or no columns were assigned.
	ColumnLabels []string
}

// PostProcess applies the paper's §6.2 rule — table data that carries
// no detail-page evidence is attached to the record of the last
// assigned extract — assembling the final records, and optionally
// mines semantic column labels from the detail-page captions (§3.4).
func PostProcess(ctx context.Context, in PostIn) (PostOut, error) {
	var out PostOut
	if in.MineLabels {
		out.ColumnLabels = labels.Mine(
			TokensOf(in.Details), in.Matrix.Obs, in.Matrix.Analyzed,
			in.Assignment.Records, in.Assignment.Columns)
	}
	out.Records = assemble(in.Extracts.Items, in.Matrix.Analyzed,
		in.Assignment.Records, in.Assignment.Columns, in.Assignment.Confidence)
	return out, nil
}

// assemble groups all extracts into records: each analyzed extract goes
// to its assigned record; every other extract (uninformative, or left
// unassigned by a relaxed CSP solve) joins the record of the last
// assigned extract before it. Extracts preceding the first assignment
// belong to no record (page prologue).
func assemble(extracts []extract.Extract, analyzed []int, records, columns []int, confidence []float64) []Record {
	// Assignment per extract index.
	recOf := make([]int, len(extracts))
	colOf := make([]int, len(extracts))
	confOf := make([]float64, len(extracts))
	assignedBy := make([]bool, len(extracts)) // method-assigned (not attached)
	for i := range recOf {
		recOf[i] = -1
		colOf[i] = -1
		confOf[i] = -1
	}
	for ai, oi := range analyzed {
		recOf[oi] = records[ai]
		colOf[oi] = columns[ai]
		confOf[oi] = confidence[ai]
		assignedBy[oi] = records[ai] >= 0
	}
	cur := -1
	for i := range extracts {
		if assignedBy[i] {
			cur = recOf[i]
		} else {
			recOf[i] = cur
			colOf[i] = -1
		}
	}
	byRecord := map[int]*Record{}
	var order []int
	for i := range extracts {
		r := recOf[i]
		if r < 0 {
			continue
		}
		rec, ok := byRecord[r]
		if !ok {
			rec = &Record{Index: r}
			byRecord[r] = rec
			order = append(order, r)
		}
		rec.Extracts = append(rec.Extracts, extracts[i])
		rec.Columns = append(rec.Columns, colOf[i])
		rec.Analyzed = append(rec.Analyzed, assignedBy[i])
		rec.Confidence = append(rec.Confidence, confOf[i])
	}
	out := make([]Record, 0, len(order))
	for _, r := range order {
		out = append(out, *byRecord[r])
	}
	return out
}
