package stage

import (
	"context"
	"fmt"

	"tableseg/internal/extract"
	"tableseg/internal/pagetemplate"
	"tableseg/internal/token"
	"tableseg/internal/vertical"
)

// minTextSkeleton is the fewest invariant text tokens a credible page
// template must have; below it the induced skeleton is just structural
// tags and SelectSlot falls back to the whole page.
const minTextSkeleton = 6

// TokenizeIn feeds the Tokenize stage.
type TokenizeIn struct {
	// ListPages are the site's sample list pages; DetailPages are the
	// pages linked from the target list page, in record order.
	ListPages, DetailPages []Page
	// PreparedLists, when non-nil, supplies already-tokenized list
	// pages (from a cached site preparation) and skips list
	// tokenization. Must be parallel to ListPages.
	PreparedLists [][]token.Token
	// Cache, when non-nil, resolves tokenization through the caller's
	// artifact cache (content-hash keyed, shared across tasks).
	Cache TokenCache
}

// TokenizeOut is the Tokenize stage's result.
type TokenizeOut struct {
	Lists, Details []TokenizedPage
}

// Tokenize lexes every input page into the paper's eight syntactic
// token types (§3.1), reusing prepared or cached streams when offered.
func Tokenize(ctx context.Context, in TokenizeIn) (TokenizeOut, error) {
	out := TokenizeOut{
		Lists:   make([]TokenizedPage, len(in.ListPages)),
		Details: make([]TokenizedPage, len(in.DetailPages)),
	}
	lex := func(p Page) []token.Token {
		if in.Cache != nil {
			return in.Cache.Tokens(p)
		}
		return token.Tokenize(p.HTML)
	}
	for i, p := range in.ListPages {
		if in.PreparedLists != nil {
			out.Lists[i] = TokenizedPage{Name: p.Name, Tokens: in.PreparedLists[i]}
			continue
		}
		//tableseglint:ignore ctxflow the token cache joins duplicate tokenization via Once; the wait is bounded by one page's tokenize
		out.Lists[i] = TokenizedPage{Name: p.Name, Tokens: lex(p)}
	}
	for i, p := range in.DetailPages {
		//tableseglint:ignore ctxflow the token cache joins duplicate tokenization via Once; the wait is bounded by one page's tokenize
		out.Details[i] = TokenizedPage{Name: p.Name, Tokens: lex(p)}
	}
	// PreparedLists (and cache-returned token slices) are shared by
	// contract: token slices are write-once after tokenization, and
	// copying every page's tokens would defeat the prepared-input seam.
	// Audited against the escape/borrow model: tokens own their text
	// today (Token.Text is a copied string, dataflow.CarriesRefs is
	// false for it), so no borrowed []byte view rides through this
	// alias. When the zero-copy refactor gives Token a []byte view of
	// the page buffer, borrowflow takes over at this exact boundary —
	// Tokenize is exported and stage-shaped, so a view in the returned
	// artifact becomes a hard finding, not a judgement call — and this
	// ignore stays scoped to the slice-header alias only.
	//tableseglint:ignore aliasflow prepared token slices are immutable by contract and shared deliberately; tokens carry no borrowed views (borrowflow polices that at this boundary)
	return out, nil
}

// TemplateIn feeds the InduceTemplate stage.
type TemplateIn struct {
	// Lists are the tokenized sample list pages.
	Lists []TokenizedPage
	// Prepared, when non-nil, supplies a previously induced template
	// for these pages and skips induction.
	Prepared *pagetemplate.Template
}

// InduceTemplate induces the page template shared by the sample list
// pages (§3.1). With fewer than two samples the template is nil —
// cross-page induction is undefined — and downstream stages fall back.
func InduceTemplate(ctx context.Context, in TemplateIn) (Template, error) {
	if in.Prepared != nil {
		// The prepared template is handed through untouched: induction
		// output is immutable once built, so the alias is the contract.
		// Audited against the escape/borrow model: the template stores
		// token streams whose text is owned (copied strings), so the
		// alias shares no borrowed buffer; if induction ever starts
		// retaining []byte views, borrowflow flags InduceTemplate's
		// return at this stage boundary independently of this ignore.
		//tableseglint:ignore aliasflow prepared templates are immutable after induction and shared deliberately; they hold no borrowed views (borrowflow polices that at this boundary)
		return Template{Tpl: in.Prepared}, nil
	}
	if len(in.Lists) < 2 {
		return Template{}, nil
	}
	return Template{Tpl: pagetemplate.Induce(TokensOf(in.Lists))}, nil
}

// SlotIn feeds the SelectSlot stage.
type SlotIn struct {
	// Template is the induced page template (Tpl may be nil).
	Template Template
	// Lists are the tokenized list pages; Target indexes the page to
	// segment.
	Lists  []TokenizedPage
	Target int
	// MinSlotQuality is the threshold below which the table slot is
	// considered shattered and the whole page is used instead.
	MinSlotQuality float64
	// StripEnumeration enables the §6.3 enumerated-entries heuristic
	// before giving up on a shattered slot.
	StripEnumeration bool
	// ForceWholePage skips slot location entirely (ablation).
	ForceWholePage bool
}

// SelectSlot locates the table slot on the target page (§3.1): the
// template slot with the highest concentration of page content. The
// paper's fallback fires — the whole page is used — when the slot is
// shattered (quality below threshold), the skeleton is too thin to be
// a real template, or no template exists.
func SelectSlot(ctx context.Context, in SlotIn) (Slot, error) {
	if in.Target < 0 || in.Target >= len(in.Lists) {
		return Slot{}, fmt.Errorf("stage: SelectSlot target %d of %d lists", in.Target, len(in.Lists))
	}
	target := in.Lists[in.Target].Tokens
	whole := Slot{Start: 0, End: len(target), WholePage: true}
	if in.ForceWholePage || in.Template.Tpl == nil {
		return whole, nil
	}
	tpl := in.Template.Tpl
	slots := tpl.SlotsOn(in.Target, len(target))
	tableSlot, quality := pagetemplate.TableSlot(slots, target)
	stripped := 0
	// When the slot is shattered, optionally try the §6.3
	// enumerated-entries heuristic before giving up on the template.
	if quality < in.MinSlotQuality && in.StripEnumeration {
		if st, n := tpl.StripEnumeration(); n > 0 {
			slots = st.SlotsOn(in.Target, len(target))
			if s2, q2 := pagetemplate.TableSlot(slots, target); q2 > quality {
				tpl, tableSlot, quality = st, s2, q2
				stripped = n
			}
		}
	}
	// The fallback fires when the table is shattered across slots
	// (numbered entries) or the skeleton is too thin to be a real
	// template (volatile headers): the paper's "page template problem;
	// entire page used".
	if quality < in.MinSlotQuality || tpl.TextSkeletonLen() < minTextSkeleton {
		whole.Quality = quality
		whole.EnumerationStripped = stripped
		return whole, nil
	}
	return Slot{
		Start: tableSlot.Start, End: tableSlot.End,
		Quality: quality, EnumerationStripped: stripped,
	}, nil
}

// ExtractIn feeds the Extract stage.
type ExtractIn struct {
	// Target is the tokenized list page to segment.
	Target TokenizedPage
	// Slot bounds the table region.
	Slot Slot
}

// Extract splits the table slot into extracts: maximal runs of visible
// text between separators (§3.2).
func Extract(ctx context.Context, in ExtractIn) (Extracts, error) {
	return Extracts{Items: extract.Split(in.Target.Tokens, in.Slot.Start, in.Slot.End)}, nil
}

// ObserveIn feeds the Observe stage.
type ObserveIn struct {
	// Extracts are the table slot's extracts.
	Extracts Extracts
	// Details are the tokenized detail pages, in record order.
	Details []TokenizedPage
	// OtherLists are the tokenized sample list pages other than the
	// target (the "appears on all list pages" boilerplate filter).
	OtherLists [][]token.Token
	// DetectVertical enables the vertical-table extension: when
	// adjacent extracts' detail sets are mostly disjoint the analyzed
	// stream is transposed into record-major order.
	DetectVertical bool
}

// Observe builds the detail-page observation matrix (Table 1), selects
// the informative subset used for inference (§3.2), checks that every
// detail page is covered by at least one analyzed extract (a false
// Covered signals a truncated table slot), and optionally applies the
// vertical-table transposition.
func Observe(ctx context.Context, in ObserveIn) (*ObservationMatrix, error) {
	m := &ObservationMatrix{NumDetailPages: len(in.Details)}
	details := TokensOf(in.Details)
	m.Obs = extract.Observe(in.Extracts.Items, details, in.OtherLists)
	m.Analyzed = extract.InformativeSubset(m.Obs, m.NumDetailPages)
	m.Covered = coversAllPages(m.Obs, m.Analyzed, m.NumDetailPages)
	if in.DetectVertical && len(m.Analyzed) > 0 {
		cands := m.Candidates()
		if vertical.IsVertical(cands) {
			if perm, ok := vertical.Transpose(cands, m.NumDetailPages); ok {
				m.Analyzed = vertical.Apply(perm, m.Analyzed)
				m.Vertical = true
			}
		}
	}
	return m, nil
}

// coversAllPages reports whether every detail page supports at least
// one analyzed extract.
func coversAllPages(obs []extract.Observation, analyzed []int, numPages int) bool {
	covered := make([]bool, numPages)
	n := 0
	for _, oi := range analyzed {
		for _, p := range obs[oi].Pages {
			if !covered[p] {
				covered[p] = true
				n++
			}
		}
	}
	return n == numPages
}

// BuildProblem assembles the solver-facing Problem from an observation
// matrix: candidate sets, position groups and token-type evidence for
// the analyzed extracts.
func BuildProblem(m *ObservationMatrix) *Problem {
	p := &Problem{
		NumRecords:     m.NumDetailPages,
		Candidates:     m.Candidates(),
		PositionGroups: extract.PositionGroups(m.Obs, m.Analyzed, m.NumDetailPages),
		TypeVecs:       make([][token.NumTypes]bool, len(m.Analyzed)),
		FirstTypes:     make([]token.Type, len(m.Analyzed)),
	}
	for ai, oi := range m.Analyzed {
		p.TypeVecs[ai] = m.Obs[oi].Extract.TypeVector()
		p.FirstTypes[ai] = m.Obs[oi].Extract.FirstType()
	}
	return p
}

// SegmentIn feeds the Segment stage.
type SegmentIn struct {
	// Problem is the solver input.
	Problem *Problem
	// Solver is the algorithm to run (from the registry or custom).
	Solver Solver
}

// Segment runs the selected Solver over the Problem (§4/§5): the one
// stage whose behavior is pluggable.
func Segment(ctx context.Context, in SegmentIn) (*Assignment, error) {
	if in.Solver == nil {
		return nil, fmt.Errorf("stage: Segment needs a Solver")
	}
	if in.Problem == nil {
		return nil, fmt.Errorf("stage: Segment needs a Problem")
	}
	return in.Solver.Solve(ctx, in.Problem)
}
