package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRunClassificationPerfect(t *testing.T) {
	if testing.Short() {
		t.Skip("classification study in -short mode")
	}
	rows, err := RunClassification(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 {
		t.Fatalf("%d rows, want 24", len(rows))
	}
	for _, r := range rows {
		if r.Linked <= r.Details {
			t.Errorf("%s (%d): no ads interleaved (linked=%d details=%d)", r.Site, r.Page, r.Linked, r.Details)
		}
		if r.FalsePos != 0 {
			t.Errorf("%s (%d): %d ads classified as details", r.Site, r.Page, r.FalsePos)
		}
		if r.Recall() < 1 {
			t.Errorf("%s (%d): recall %.2f", r.Site, r.Page, r.Recall())
		}
	}
	out := RenderClassification(rows)
	if !strings.Contains(out, "TOTAL precision") {
		t.Error("rendering incomplete")
	}
}

func TestClassifyRowMetrics(t *testing.T) {
	r := ClassifyRow{Details: 10, Selected: 8, TruePos: 8}
	if r.Precision() != 1 || r.Recall() != 0.8 {
		t.Errorf("P=%f R=%f", r.Precision(), r.Recall())
	}
	var zero ClassifyRow
	if zero.Precision() != 0 || zero.Recall() != 0 {
		t.Error("zero row metrics")
	}
}

func TestRunWrapperTransferShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wrapper study in -short mode")
	}
	rows, err := RunWrapperTransfer(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	transferred := 0
	var totalCor, totalRecords int
	for _, r := range rows {
		totalRecords += r.Counts.Total()
		totalCor += r.Counts.Cor
		if r.Err == "" {
			transferred++
			if r.Signature == "" {
				t.Errorf("%s: empty signature", r.Site)
			}
		}
	}
	if transferred < 9 {
		t.Errorf("wrapper transferred on only %d/12 sites", transferred)
	}
	if float64(totalCor)/float64(totalRecords) < 0.8 {
		t.Errorf("wrapper transfer Cor rate %.2f", float64(totalCor)/float64(totalRecords))
	}
	if out := RenderWrapperTransfer(rows); !strings.Contains(out, "TOTAL") {
		t.Error("rendering incomplete")
	}
}

func TestRunVerticalExtension(t *testing.T) {
	rows, err := RunVertical(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Extension {
			if !r.Detected || r.Intact != r.Records {
				t.Errorf("%s with extension: detected=%v intact=%d/%d", r.Method, r.Detected, r.Intact, r.Records)
			}
		} else {
			if r.Detected {
				t.Errorf("%s without extension: Detected set", r.Method)
			}
			if r.Intact == r.Records {
				t.Errorf("%s without extension: vertical table segmented perfectly; extension redundant", r.Method)
			}
		}
	}
	if out := RenderVertical(rows); !strings.Contains(out, "transposition") {
		t.Error("rendering incomplete")
	}
}

func TestRunSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep in -short mode")
	}
	prob, cspRes, err := RunSeedSweep(context.Background(), []int64{42, 43})
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Rows) != 2 || len(cspRes.Rows) != 2 {
		t.Fatalf("rows: %d/%d", len(prob.Rows), len(cspRes.Rows))
	}
	for _, row := range prob.Rows {
		if row.Counts.F() < 0.85 {
			t.Errorf("%s: probabilistic F %.2f", row.Label, row.Counts.F())
		}
	}
	for _, row := range cspRes.Rows {
		if row.Counts.F() < 0.85 {
			t.Errorf("%s: CSP F %.2f", row.Label, row.Counts.F())
		}
	}
}

func TestRunAllAblationsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite in -short mode")
	}
	abls, err := RunAllAblations(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(abls) != 8 {
		t.Fatalf("%d ablations, want 8", len(abls))
	}
	names := map[string]bool{}
	for _, a := range abls {
		if len(a.Rows) < 2 {
			t.Errorf("%s: only %d rows", a.Name, len(a.Rows))
		}
		names[a.Name] = true
		if out := a.Render(); !strings.Contains(out, "configuration") {
			t.Errorf("%s: rendering incomplete", a.Name)
		}
	}
	for _, want := range []string{"epsilon", "period", "template", "relaxation", "consecutiveness", "enumerated", "numbered entries", "method comparison"} {
		found := false
		for n := range names {
			if strings.Contains(strings.ToLower(n), want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no ablation matching %q", want)
		}
	}
}

func TestMethodComparisonOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("method comparison in -short mode")
	}
	res, err := RunMethodComparison(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range res.Rows {
		byName[r.Label] = r.Counts.F()
	}
	// The §7 combination must never lose to the CSP alone (it only
	// replaces the CSP where strict constraints already failed).
	if byName["combined"] < byName["csp"]-1e-9 {
		t.Errorf("combined F %.3f below csp %.3f", byName["combined"], byName["csp"])
	}
}

func TestRunScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling study in -short mode")
	}
	rows, err := RunScale(context.Background(), DefaultSeed, []int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.PerPage <= 0 {
			t.Errorf("%d/%s: non-positive duration", r.Records, r.Method)
		}
		if r.Counts.F() < 0.99 {
			t.Errorf("%d/%s: F %.2f", r.Records, r.Method, r.Counts.F())
		}
	}
	if out := RenderScale(rows); !strings.Contains(out, "time/page") {
		t.Error("rendering incomplete")
	}
}

func TestStressSweepDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep in -short mode")
	}
	rows, err := RunStressSweep(context.Background(), DefaultSeed, []float64{0, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	f := map[string]map[float64]float64{}
	for _, r := range rows {
		if f[r.Method] == nil {
			f[r.Method] = map[float64]float64{}
		}
		f[r.Method][r.Rate] = r.Counts.F()
	}
	// Clean data: both perfect.
	if f["csp"][0] < 0.999 || f["probabilistic"][0] < 0.999 {
		t.Errorf("clean point not perfect: csp %.3f prob %.3f", f["csp"][0], f["probabilistic"][0])
	}
	// Heavy pollution: the CSP must degrade more than the probabilistic
	// method (§6.3's robustness contrast, quantified).
	if f["csp"][0.8] >= f["probabilistic"][0.8] {
		t.Errorf("at 80%% pollution csp F %.3f not below probabilistic %.3f", f["csp"][0.8], f["probabilistic"][0.8])
	}
	if f["csp"][0.8] > 0.99 {
		t.Errorf("pollution toothless: csp F %.3f at 80%%", f["csp"][0.8])
	}
	if out := RenderStressSweep(rows); !strings.Contains(out, "pollution") {
		t.Error("rendering incomplete")
	}
}
