package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"tableseg/internal/classify"
	"tableseg/internal/clock"
	"tableseg/internal/core"
	"tableseg/internal/eval"
	"tableseg/internal/sitegen"
	"tableseg/internal/token"
	"tableseg/internal/wrapper"
)

// ClassifyRow summarizes detail-page identification on one list page.
type ClassifyRow struct {
	Site     string
	Page     int
	Linked   int // pages linked from the list page (details + ads)
	Details  int // true detail pages
	Selected int // pages the classifier selected
	TruePos  int
	FalsePos int
}

// Precision of the selection.
func (r ClassifyRow) Precision() float64 {
	if r.Selected == 0 {
		return 0
	}
	return float64(r.TruePos) / float64(r.Selected)
}

// Recall of the selection.
func (r ClassifyRow) Recall() float64 {
	if r.Details == 0 {
		return 0
	}
	return float64(r.TruePos) / float64(r.Details)
}

// RunClassification evaluates §6.1's detail-page identification sketch:
// the pages linked from each list page (details interleaved with
// advertisement pages) are clustered structurally and the largest
// cluster is taken as the detail set.
func RunClassification(ctx context.Context, seed int64) ([]ClassifyRow, error) {
	var rows []ClassifyRow
	for _, profile := range sitegen.Profiles() {
		site := sitegen.Generate(profile, seed)
		for pageIdx, lp := range site.Lists {
			var linked [][]token.Token
			isDetail := map[int]bool{}
			ai := 0
			for di, d := range lp.Details {
				if di%5 == 2 && ai < len(lp.Ads) {
					linked = append(linked, token.Tokenize(lp.Ads[ai]))
					ai++
				}
				isDetail[len(linked)] = true
				linked = append(linked, token.Tokenize(d))
			}
			for ; ai < len(lp.Ads); ai++ {
				linked = append(linked, token.Tokenize(lp.Ads[ai]))
			}
			sel := classify.DetailPages(linked, 0)
			row := ClassifyRow{
				Site: profile.Name, Page: pageIdx + 1,
				Linked: len(linked), Details: len(lp.Details), Selected: len(sel),
			}
			for _, idx := range sel {
				if isDetail[idx] {
					row.TruePos++
				} else {
					row.FalsePos++
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderClassification formats the study.
func RenderClassification(rows []ClassifyRow) string {
	var b strings.Builder
	b.WriteString("Detail-page identification (§6.1 future work): structural clustering of linked pages\n\n")
	tp, fp, det := 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s linked=%2d details=%2d selected=%2d  P=%.2f R=%.2f\n",
			fmt.Sprintf("%s (%d)", r.Site, r.Page), r.Linked, r.Details, r.Selected, r.Precision(), r.Recall())
		tp += r.TruePos
		fp += r.FalsePos
		det += r.Details
	}
	fmt.Fprintf(&b, "  TOTAL precision %.3f recall %.3f over %d pages\n",
		float64(tp)/float64(tp+fp), float64(tp)/float64(det), len(rows))
	return b.String()
}

// WrapperRow summarizes wrapper learning on page 1 and transfer to
// page 2 of one site.
type WrapperRow struct {
	Site      string
	Err       string
	Signature string
	Counts    eval.Counts
}

// RunWrapperTransfer learns a wrapper from each site's first list page
// (segmented with the probabilistic method) and applies it to the
// second page — extraction with no detail-page fetches at all. This is
// the bridge from the paper's unsupervised segmentation to conventional
// wrapper-based extraction (§1's framing).
func RunWrapperTransfer(ctx context.Context, seed int64) ([]WrapperRow, error) {
	var rows []WrapperRow
	for _, profile := range sitegen.Profiles() {
		site := sitegen.Generate(profile, seed)
		row := WrapperRow{Site: profile.Name}
		seg, err := core.SegmentContext(ctx, BuildInput(site, 0), core.DefaultOptions(core.Probabilistic))
		if err != nil {
			return nil, err
		}
		page0 := token.Tokenize(site.Lists[0].HTML)
		w, err := wrapper.Learn(page0, seg)
		if err != nil {
			row.Err = err.Error()
			row.Counts = eval.Counts{FN: len(site.Lists[1].Truth)}
			rows = append(rows, row)
			continue
		}
		row.Signature = strings.Join(w.Signature, "")
		page1 := token.Tokenize(site.Lists[1].HTML)
		row.Counts = eval.Score(w.Extract(page1), site.Lists[1].Truth)
		rows = append(rows, row)
	}
	return rows, nil
}

// ScaleRow is one point of the scaling study.
type ScaleRow struct {
	Records int
	Method  string
	PerPage time.Duration
	Counts  eval.Counts
}

// RunScale measures per-page wall time as list pages grow from the
// paper's sizes (tens of records) to an order of magnitude beyond —
// grounding §6.1's "the algorithms were exceedingly fast, taking only a
// few seconds to run in all cases" with a growth curve.
func RunScale(ctx context.Context, seed int64, sizes []int) ([]ScaleRow, error) {
	if len(sizes) == 0 {
		sizes = []int{20, 50, 100, 200}
	}
	var rows []ScaleRow
	for _, n := range sizes {
		profile := sitegen.Profile{
			Name: fmt.Sprintf("Scale %d Registry", n), Slug: "scale",
			Domain: sitegen.PropertyTax, Layout: sitegen.Grid,
			RecordsPerList: [2]int{n, n},
		}
		site := sitegen.Generate(profile, seed)
		in := BuildInput(site, 0)
		for _, m := range []core.Method{core.CSP, core.Probabilistic} {
			opts := core.DefaultOptions(m)
			start := clock.Now()
			seg, err := core.SegmentContext(ctx, in, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ScaleRow{
				Records: n,
				Method:  m.String(),
				PerPage: clock.Since(start),
				Counts:  eval.Score(seg, site.Lists[0].Truth),
			})
		}
	}
	return rows, nil
}

// RenderScale formats the scaling study.
func RenderScale(rows []ScaleRow) string {
	var b strings.Builder
	b.WriteString("Scaling: per-page wall time vs record count (§6.1's timing claim)\n\n")
	fmt.Fprintf(&b, "%8s %-14s %12s %8s\n", "records", "method", "time/page", "F")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %-14s %12s %8.2f\n", r.Records, r.Method, r.PerPage.Round(time.Millisecond), r.Counts.F())
	}
	return b.String()
}

// StressRow is one point of the degradation sweep.
type StressRow struct {
	Rate   float64
	Method string
	Counts eval.Counts
}

// RunStressSweep pushes a white-pages profile's degradation knobs —
// missing fields, duplicated name/phone pairs, and above all
// cross-record detail-page pollution — well past the levels of the
// twelve-site corpus and maps both methods' accuracy. The paper only
// observes its sites' fixed noise levels; the sweep locates the
// robustness boundary. (Missing fields and duplicates alone do not bend
// either method: the sequential structure disambiguates them. Pollution
// corrupts the D_i evidence itself.)
func RunStressSweep(ctx context.Context, seed int64, rates []float64) ([]StressRow, error) {
	if len(rates) == 0 {
		rates = []float64{0, 0.2, 0.4, 0.6, 0.8}
	}
	// Aggregate each point over several generator seeds: a single site
	// draw is too small to resolve the curve.
	const seedsPerPoint = 5
	var rows []StressRow
	for _, rate := range rates {
		profile := sitegen.Profile{
			Name: fmt.Sprintf("Stress %.0f%% Directory", rate*100), Slug: "stress",
			Domain: sitegen.WhitePages, Layout: sitegen.FreeForm,
			RecordsPerList:   [2]int{15, 15},
			MissingFieldRate: rate / 2,
			DuplicateRate:    rate / 2,
			PollutionRate:    rate,
		}
		for _, m := range []core.Method{core.CSP, core.Probabilistic} {
			var counts eval.Counts
			for s := int64(0); s < seedsPerPoint; s++ {
				site := sitegen.Generate(profile, seed+s)
				for pageIdx := range site.Lists {
					seg, err := core.SegmentContext(ctx, BuildInput(site, pageIdx), core.DefaultOptions(m))
					if err != nil {
						return nil, err
					}
					counts = counts.Add(eval.Score(seg, site.Lists[pageIdx].Truth))
				}
			}
			rows = append(rows, StressRow{Rate: rate, Method: m.String(), Counts: counts})
		}
	}
	return rows, nil
}

// RenderStressSweep formats the sweep.
func RenderStressSweep(rows []StressRow) string {
	var b strings.Builder
	b.WriteString("Stress sweep: accuracy vs detail-page pollution rate (white pages;\nmissing-field and duplicate rates track at rate/2; 5 seeds per point)\n\n")
	fmt.Fprintf(&b, "%6s %-14s %5s %5s %5s %5s   %5s %5s %5s\n", "rate", "method", "Cor", "InC", "FN", "FP", "P", "R", "F")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5.0f%% %-14s %5d %5d %5d %5d   %5.2f %5.2f %5.2f\n",
			r.Rate*100, r.Method, r.Counts.Cor, r.Counts.InCor, r.Counts.FN, r.Counts.FP,
			r.Counts.Precision(), r.Counts.Recall(), r.Counts.F())
	}
	return b.String()
}

// VerticalRow summarizes the vertical-table extension on the demo site.
type VerticalRow struct {
	Method    string
	Extension bool
	Detected  bool
	// Intact counts records whose full value set landed in a single
	// predicted record (vertical truth has no byte spans, so scoring
	// is content-based).
	Intact, Records int
}

// RunVertical measures the vertical-table extension (§3 scopes vertical
// layout out of the paper; internal/vertical transposes it back into
// scope) on the demo site, with and without the extension.
func RunVertical(ctx context.Context, seed int64) ([]VerticalRow, error) {
	site := sitegen.GenerateVerticalDemo(seed, 6)
	in := BuildInput(site, 0)
	truth := site.Lists[0].Truth
	var rows []VerticalRow
	for _, m := range []core.Method{core.CSP, core.Probabilistic} {
		for _, ext := range []bool{false, true} {
			opts := core.DefaultOptions(m)
			opts.DetectVertical = ext
			seg, err := core.SegmentContext(ctx, in, opts)
			if err != nil {
				return nil, err
			}
			row := VerticalRow{Method: m.String(), Extension: ext, Detected: seg.Vertical, Records: len(truth)}
			for _, tr := range truth {
				for _, rec := range seg.Records {
					if containsAll(rec, tr.Values) {
						row.Intact++
						break
					}
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func containsAll(rec core.Record, values []string) bool {
	set := map[string]bool{}
	for _, ex := range rec.Extracts {
		set[ex.Text()] = true
	}
	for _, v := range values {
		if !set[v] {
			return false
		}
	}
	return true
}

// RenderVertical formats the study.
func RenderVertical(rows []VerticalRow) string {
	var b strings.Builder
	b.WriteString("Vertical-table extension (records in columns; out of the paper's §3 scope)\n\n")
	for _, r := range rows {
		mode := "horizontal machinery only"
		if r.Extension {
			mode = "with transposition extension"
		}
		fmt.Fprintf(&b, "  %-14s %-30s detected=%-5v intact records %d/%d\n",
			r.Method, mode, r.Detected, r.Intact, r.Records)
	}
	return b.String()
}

// RenderWrapperTransfer formats the study.
func RenderWrapperTransfer(rows []WrapperRow) string {
	var b strings.Builder
	b.WriteString("Wrapper transfer: learn on page 1 (unsupervised), extract page 2 with layout only\n\n")
	var total eval.Counts
	for _, r := range rows {
		status := fmt.Sprintf("sig=%-24s %s", r.Signature, r.Counts)
		if r.Err != "" {
			status = "FAILED: " + r.Err
		}
		fmt.Fprintf(&b, "  %-24s %s\n", r.Site, status)
		total = total.Add(r.Counts)
	}
	fmt.Fprintf(&b, "  TOTAL %s\n", total)
	return b.String()
}
