package experiments

import (
	"context"
	"fmt"
	"strings"

	"tableseg/internal/csp"
	"tableseg/internal/extract"
	"tableseg/internal/token"
)

// The worked example of §3–§4: the Superpages list page of Figure 1 with
// the three records of Table 1 (two "John Smith" entries sharing a phone
// number, plus "George W. Smith"). Reproducing Tables 1, 2 and 3 runs
// the real pipeline over these pages.

// superpagesExampleList is the list page; the three rows carry the
// extracts E1..E11 of Table 1.
const superpagesExampleList = `<html><head><title>Superpages</title></head><body>
<h1>Superpages</h1><p>Results - 3 Matching Listings</p>
<div><b>John Smith</b><br>221 Washington<br>New Holland<br>(740) 335-5555 <a href="d1">More Info</a></div>
<div><b>John Smith</b><br>221R Washington<br>Washington<br>(740) 335-5555 <a href="d2">More Info</a></div>
<div><b>George W. Smith</b><br>Findlay, OH<br>(419) 423-1212 <a href="d3">More Info</a></div>
<p>Copyright Superpages</p></body></html>`

// superpagesExampleDetails are the three detail pages r1..r3.
var superpagesExampleDetails = []string{
	`<html><body><h1>Superpages</h1><h2>Listing Detail</h2><p>John Smith</p><p>221 Washington</p><p>New Holland</p><p>(740) 335-5555</p><p>Map It</p></body></html>`,
	`<html><body><h1>Superpages</h1><h2>Listing Detail</h2><p>John Smith</p><p>221R Washington</p><p>Washington</p><p>(740) 335-5555</p><p>Map It</p></body></html>`,
	`<html><body><h1>Superpages</h1><h2>Listing Detail</h2><p>George W. Smith</p><p>Findlay, OH</p><p>(419) 423-1212</p><p>Map It</p></body></html>`,
}

// Example bundles the worked-example artifacts.
type Example struct {
	Extracts     []extract.Extract
	Observations []extract.Observation
	Analyzed     []int
	Input        csp.SegmentInput
	Result       *csp.SegmentResult
}

// RunExample executes the §3 pipeline on the worked example and solves
// the §4 CSP, reproducing Tables 1–3 (observations, assignment,
// positions). The error is non-nil only when ctx is cancelled.
func RunExample(ctx context.Context) (*Example, error) {
	list := token.Tokenize(superpagesExampleList)
	details := make([][]token.Token, len(superpagesExampleDetails))
	for i, d := range superpagesExampleDetails {
		details[i] = token.Tokenize(d)
	}
	ex := &Example{}
	ex.Extracts = extract.Split(list, 0, len(list))
	ex.Observations = extract.Observe(ex.Extracts, details, nil)
	ex.Analyzed = extract.InformativeSubset(ex.Observations, len(details))
	ex.Input = csp.SegmentInput{
		NumRecords:     len(details),
		Candidates:     make([][]int, len(ex.Analyzed)),
		PositionGroups: extract.PositionGroups(ex.Observations, ex.Analyzed, len(details)),
	}
	for ai, oi := range ex.Analyzed {
		ex.Input.Candidates[ai] = ex.Observations[oi].Pages
	}
	res, err := csp.SolveSegmentationContext(ctx, ex.Input, csp.SolveParams{ExactCheck: true})
	if err != nil {
		return nil, err
	}
	ex.Result = res
	return ex, nil
}

// RenderTable1 formats the observation matrix (extracts × detail pages).
func (ex *Example) RenderTable1() string {
	var b strings.Builder
	b.WriteString("Table 1: observations of extracts on detail pages\n\n")
	for ai, oi := range ex.Analyzed {
		o := &ex.Observations[oi]
		pages := make([]string, 0, len(o.Pages))
		for _, p := range o.Pages {
			pages = append(pages, fmt.Sprintf("r%d", p+1))
		}
		fmt.Fprintf(&b, "E%-3d %-22s D = {%s}\n", ai+1, o.Extract.Text(), strings.Join(pages, ","))
	}
	return b.String()
}

// RenderTable2 formats the record assignment found by the CSP.
func (ex *Example) RenderTable2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: assignment of extracts to records (status: %s)\n\n", ex.Result.Status)
	for ai, oi := range ex.Analyzed {
		r := ex.Result.Records[ai]
		lbl := "-"
		if r >= 0 {
			lbl = fmt.Sprintf("r%d", r+1)
		}
		fmt.Fprintf(&b, "E%-3d %-22s -> %s\n", ai+1, ex.Observations[oi].Extract.Text(), lbl)
	}
	return b.String()
}

// RenderTable3 formats the position index (which extracts share a
// position on which detail page).
func (ex *Example) RenderTable3() string {
	var b strings.Builder
	b.WriteString("Table 3: shared positions of extracts on detail pages\n\n")
	for page := 0; page < ex.Input.NumRecords; page++ {
		groups := ex.Input.PositionGroups[page]
		for _, grp := range groups {
			names := make([]string, 0, len(grp))
			for _, ai := range grp {
				names = append(names, fmt.Sprintf("E%d", ai+1))
			}
			fmt.Fprintf(&b, "page r%d: {%s} occupy one field slot\n", page+1, strings.Join(names, ","))
		}
	}
	if b.Len() == 0 {
		b.WriteString("(no shared positions)\n")
	}
	return b.String()
}

// ExamplePages exposes the worked-example HTML (Figure 1's list/detail
// pair) for the sitegen CLI and documentation.
func ExamplePages() (list string, details []string) {
	return superpagesExampleList, append([]string(nil), superpagesExampleDetails...)
}
