package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"tableseg/internal/core"
	"tableseg/internal/engine"
	"tableseg/internal/sitegen"
)

// TimingReport aggregates the stage-graph instrumentation of a full
// Table 4 workload: per-stage wall time summed across every task, the
// engine's artifact-cache counters, and the end-to-end task wall time.
// Unlike the tables, the report is a performance diagnostic — its
// durations vary run to run and it is not part of the checked-in
// reference outputs.
type TimingReport struct {
	// Tasks is the number of engine tasks that ran (48: 24 pages under
	// both methods).
	Tasks int
	// Wall sums the tasks' end-to-end wall times (CPU-seconds spent in
	// workers, not elapsed time).
	Wall time.Duration
	// Stages aggregates each pipeline stage across every task, in
	// pipeline order.
	Stages []core.StageTiming
	// Cache is the engine's aggregate cache-counter snapshot.
	Cache engine.CacheStats
}

// RunTiming runs the Table 4 workload through the batch engine and
// aggregates its per-stage instrumentation.
func RunTiming(ctx context.Context, seed int64) (*TimingReport, error) {
	type job struct {
		site    *sitegen.Site
		pageIdx int
	}
	var jobs []job
	for _, profile := range sitegen.Profiles() {
		site := sitegen.Generate(profile, seed)
		for pageIdx := range site.Lists {
			jobs = append(jobs, job{site, pageIdx})
		}
	}
	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.Probabilistic)})
	if err != nil {
		return nil, err
	}
	probOpts := core.DefaultOptions(core.Probabilistic)
	cspOpts := core.DefaultOptions(core.CSP)
	tasks := make([]engine.Task, 2*len(jobs))
	for ji, j := range jobs {
		in := BuildInput(j.site, j.pageIdx)
		id := fmt.Sprintf("%s-%d", j.site.Profile.Slug, j.pageIdx)
		tasks[2*ji] = engine.Task{ID: id + "-prob", Input: in, Options: &probOpts}
		tasks[2*ji+1] = engine.Task{ID: id + "-csp", Input: in, Options: &cspOpts}
	}
	results := eng.RunTasks(ctx, tasks)

	rep := &TimingReport{Tasks: len(results)}
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("timing task %s: %w", r.ID, r.Err)
		}
		rep.Wall += r.Stats.Wall
		for _, s := range r.Stats.Stages {
			rep.Stages = mergeStage(rep.Stages, s)
		}
	}
	rep.Cache = eng.CacheStats()
	return rep, nil
}

// mergeStage folds one stage aggregate into the report, merging by
// name in first-appearance (pipeline) order.
func mergeStage(stages []core.StageTiming, s core.StageTiming) []core.StageTiming {
	for i := range stages {
		if stages[i].Name == s.Name {
			stages[i].Duration += s.Duration
			stages[i].Calls += s.Calls
			return stages
		}
	}
	return append(stages, s)
}

// RenderTiming formats the report as a fixed-width table.
func RenderTiming(r *TimingReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stage timing over the Table 4 workload (%d tasks, %v total task wall time)\n",
		r.Tasks, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-16s %8s %12s %12s\n", "stage", "calls", "total", "per call")
	for _, s := range r.Stages {
		per := time.Duration(0)
		if s.Calls > 0 {
			per = s.Duration / time.Duration(s.Calls)
		}
		fmt.Fprintf(&b, "%-16s %8d %12s %12s\n", s.Name, s.Calls,
			s.Duration.Round(time.Microsecond), per.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "cache: token %d hits / %d misses; template %d hits / %d misses\n",
		r.Cache.TokenHits, r.Cache.TokenMisses, r.Cache.TemplateHits, r.Cache.TemplateMisses)
	return b.String()
}
