package experiments

import (
	"context"
	"strings"
	"testing"

	"tableseg/internal/csp"
	"tableseg/internal/sitegen"
)

// The worked example must reproduce the paper's Tables 1–3 exactly.
func TestExampleReproducesPaperTables(t *testing.T) {
	ex, exErr := RunExample(context.Background())
	if exErr != nil {
		t.Fatal(exErr)
	}
	if len(ex.Analyzed) != 11 {
		t.Fatalf("%d analyzed extracts, want 11 (E1..E11)", len(ex.Analyzed))
	}
	// Table 1: the D_i sets.
	wantD := [][]int{
		{0, 1}, {0}, {0}, {0, 1},
		{0, 1}, {1}, {0, 1}, {0, 1},
		{2}, {2}, {2},
	}
	for i, want := range wantD {
		got := ex.Input.Candidates[i]
		if len(got) != len(want) {
			t.Errorf("E%d: D = %v, want %v", i+1, got, want)
			continue
		}
		for k := range want {
			if got[k] != want[k] {
				t.Errorf("E%d: D = %v, want %v", i+1, got, want)
			}
		}
	}
	// Table 2: the assignment.
	wantR := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2}
	if ex.Result.Status != csp.Solved {
		t.Fatalf("status %v", ex.Result.Status)
	}
	for i, want := range wantR {
		if ex.Result.Records[i] != want {
			t.Errorf("E%d -> r%d, want r%d", i+1, ex.Result.Records[i]+1, want+1)
		}
	}
	// Table 3: shared positions on pages r1 and r2.
	if len(ex.Input.PositionGroups[0]) == 0 || len(ex.Input.PositionGroups[1]) == 0 {
		t.Errorf("position groups missing: %v", ex.Input.PositionGroups)
	}
	// Renderings are non-empty and mention the key extracts.
	if s := ex.RenderTable1(); !strings.Contains(s, "John Smith") {
		t.Error("Table 1 rendering incomplete")
	}
	if s := ex.RenderTable2(); !strings.Contains(s, "-> r3") {
		t.Error("Table 2 rendering incomplete")
	}
	if s := ex.RenderTable3(); !strings.Contains(s, "E1") {
		t.Error("Table 3 rendering incomplete")
	}
}

func TestExamplePages(t *testing.T) {
	list, details := ExamplePages()
	if !strings.Contains(list, "More Info") || len(details) != 3 {
		t.Error("example pages malformed")
	}
}

func TestRunTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	res, err := RunTable4(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 24 {
		t.Fatalf("%d rows, want 24 (12 sites x 2 pages)", len(res.Rows))
	}
	// Total records must match the per-profile counts.
	wantRecords := 0
	for _, p := range sitegen.Profiles() {
		wantRecords += p.RecordsPerList[0] + p.RecordsPerList[1]
	}
	if got := res.ProbTotal.Total(); got != wantRecords {
		t.Errorf("probabilistic covers %d records, want %d", got, wantRecords)
	}
	if got := res.CSPTotal.Total(); got != wantRecords {
		t.Errorf("CSP covers %d records, want %d", got, wantRecords)
	}

	// Shape assertions mirroring the paper's qualitative claims:
	// both methods work well overall...
	if f := res.ProbTotal.F(); f < 0.85 {
		t.Errorf("probabilistic F = %.2f, want >= 0.85", f)
	}
	if f := res.CSPTotal.F(); f < 0.85 {
		t.Errorf("CSP F = %.2f, want >= 0.85", f)
	}
	// ...the probabilistic method has near-perfect recall (paper: 0.99)...
	if r := res.ProbTotal.Recall(); r < 0.95 {
		t.Errorf("probabilistic recall = %.2f, want >= 0.95", r)
	}
	// ...and the CSP is near-perfect on the clean subset (paper: P=0.99).
	if p := res.CleanCSP.Precision(); p < 0.95 {
		t.Errorf("clean-subset CSP precision = %.2f, want >= 0.95", p)
	}
	if res.CleanPages < 6 {
		t.Errorf("only %d clean pages; dirty-site injection too aggressive", res.CleanPages)
	}
	if res.CleanPages > 20 {
		t.Errorf("%d clean pages; pathologies not firing", res.CleanPages)
	}

	// The dirty sites must show their Table 4 notes.
	notes := map[string]string{}
	for _, row := range res.Rows {
		if row.Notes != "" {
			notes[row.Site] += row.Notes + ";"
		}
	}
	for _, site := range []string{"Amazon Books", "BN Books", "Minnesota Corrections", "Yahoo People", "Superpages"} {
		if !strings.Contains(notes[site], "b") {
			t.Errorf("%s: no whole-page note (got %q)", site, notes[site])
		}
	}
	for _, site := range []string{"Michigan Corrections", "Canada 411", "Minnesota Corrections"} {
		if !strings.Contains(notes[site], "d") {
			t.Errorf("%s: no relaxation note (got %q)", site, notes[site])
		}
	}

	out := RenderTable4(res)
	for _, want := range []string{"Amazon Books (1)", "Superpages (2)", "Clean subset"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestRunTable4Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	a, err := RunTable4(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTable4(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if RenderTable4(a) != RenderTable4(b) {
		t.Error("Table 4 is not deterministic for a fixed seed")
	}
}

func TestRelaxationAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	res, err := RunRelaxationAblation(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	withLadder, strictOnly := res.Rows[0].Counts, res.Rows[1].Counts
	// The ladder is what rescues recall on dirty sites (§6.3): strict-
	// only must lose recall badly while keeping precision.
	if strictOnly.Recall() >= withLadder.Recall() {
		t.Errorf("strict-only recall %.2f not below ladder %.2f", strictOnly.Recall(), withLadder.Recall())
	}
	if strictOnly.FN == 0 {
		t.Error("strict-only produced no unsegmented pages on dirty sites")
	}
	if strictOnly.Precision() < 0.95 {
		t.Errorf("strict-only precision %.2f; failures should be silent, not wrong", strictOnly.Precision())
	}
}

func TestBaselinesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("baselines in -short mode")
	}
	results, err := RunBaselines(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d baselines", len(results))
	}
	unionFree, tagRep := results[0], results[1]
	// Union-free inference must fail on a substantial share of pages
	// (the §6.3 disjunction argument) and the free-form white pages in
	// particular.
	if unionFree.Failed < 6 {
		t.Errorf("union-free failed on only %d pages", unionFree.Failed)
	}
	failedSites := map[string]bool{}
	for _, row := range unionFree.Rows {
		if row.Failed {
			failedSites[row.Site] = true
		}
	}
	if !failedSites["Superpages"] {
		t.Error("union-free did not fail on Superpages (the paper's central example)")
	}
	// Property-tax grids are union-free-friendly.
	for _, row := range unionFree.Rows {
		if row.Site == "Allegheny County" && row.Failed {
			t.Error("union-free failed on a clean grid site")
		}
	}
	// The tag-repetition fallback always segments but is less precise
	// than the content-based methods.
	if tagRep.Failed != 0 {
		t.Errorf("tag-repetition failed on %d pages", tagRep.Failed)
	}
	if out := RenderBaselines(results); !strings.Contains(out, "roadrunner-lite") {
		t.Error("baseline rendering incomplete")
	}
}

func TestBuildInput(t *testing.T) {
	site := sitegen.Generate(mustProfile(t, "ohio"), 1)
	in := BuildInput(site, 1)
	if in.Target != 1 || len(in.ListPages) != 2 {
		t.Errorf("input: %+v", in.Target)
	}
	if len(in.DetailPages) != len(site.Lists[1].Details) {
		t.Error("detail count mismatch")
	}
}

func mustProfile(t *testing.T, slug string) sitegen.Profile {
	t.Helper()
	p, err := sitegen.ProfileBySlug(slug)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAblationRender(t *testing.T) {
	a := &AblationResult{Name: "demo", Rows: []AblationRow{{Label: "x"}}}
	if out := a.Render(); !strings.Contains(out, "demo") || !strings.Contains(out, "x") {
		t.Errorf("render: %q", out)
	}
}

// The books-domain degradation direction must match the paper: on the
// polluted Amazon site the CSP loses at least as much as the
// probabilistic method (it was "completely derailed" in the paper).
func TestAmazonDegradationDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("study in -short mode")
	}
	res, err := RunTable4(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	var probCor, cspCor int
	for _, row := range res.Rows {
		if row.Site != "Amazon Books" {
			continue
		}
		probCor += row.Prob.Cor
		cspCor += row.CSP.Cor
		if row.Notes == "" {
			t.Errorf("Amazon page %d carries no pathology notes", row.Page)
		}
	}
	if cspCor > probCor {
		t.Errorf("Amazon: CSP Cor %d exceeds probabilistic %d (paper direction reversed)", cspCor, probCor)
	}
	if cspCor == 20 {
		t.Error("Amazon CSP unscathed; browsing-history pollution toothless")
	}
}
