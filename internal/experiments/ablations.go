package experiments

import (
	"context"
	"fmt"
	"strings"

	"tableseg/internal/core"
	"tableseg/internal/eval"
	"tableseg/internal/sitegen"
)

// AblationRow is one configuration's aggregate score over a site set.
type AblationRow struct {
	Label  string
	Counts eval.Counts
}

// AblationResult is a named set of configuration rows.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// Render formats an ablation as an aligned text table.
func (a *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n\n", a.Name)
	fmt.Fprintf(&b, "%-34s %5s %5s %5s %5s   %5s %5s %5s\n", "configuration", "Cor", "InC", "FN", "FP", "P", "R", "F")
	for _, row := range a.Rows {
		fmt.Fprintf(&b, "%-34s %5d %5d %5d %5d   %5.2f %5.2f %5.2f\n",
			row.Label, row.Counts.Cor, row.Counts.InCor, row.Counts.FN, row.Counts.FP,
			row.Counts.Precision(), row.Counts.Recall(), row.Counts.F())
	}
	return b.String()
}

// runAll scores one options configuration over every page of the named
// sites (all sites when slugs is empty).
func runAll(ctx context.Context, seed int64, opts core.Options, slugs ...string) (eval.Counts, error) {
	want := map[string]bool{}
	for _, s := range slugs {
		want[s] = true
	}
	var total eval.Counts
	for _, profile := range sitegen.Profiles() {
		if len(want) > 0 && !want[profile.Slug] {
			continue
		}
		site := sitegen.Generate(profile, seed)
		for pageIdx := range site.Lists {
			in := BuildInput(site, pageIdx)
			seg, err := core.SegmentContext(ctx, in, opts)
			if err != nil {
				return total, fmt.Errorf("%s page %d: %w", profile.Slug, pageIdx, err)
			}
			total = total.Add(eval.Score(seg, site.Lists[pageIdx].Truth))
		}
	}
	return total, nil
}

// dirtySites are the profiles with injected §6.3 inconsistencies; the
// robustness ablations focus on them.
var dirtySites = []string{"amazon", "bnbooks", "michigan", "minnesota", "canada411"}

// RunEpsilonAblation sweeps the probabilistic model's soft-evidence
// weight over the dirty sites (DESIGN.md ablation 2: hard zeros
// reproduce CSP brittleness, smoothing buys the §6.3 robustness).
func RunEpsilonAblation(ctx context.Context, seed int64) (*AblationResult, error) {
	res := &AblationResult{Name: "PHMM soft-evidence epsilon (dirty sites)"}
	for _, eps := range []float64{1e-12, 1e-6, 1e-3, 1e-2, 1e-1} {
		opts := core.DefaultOptions(core.Probabilistic)
		opts.PHMMParams.Epsilon = eps
		counts, err := runAll(ctx, seed, opts, dirtySites...)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{Label: fmt.Sprintf("epsilon = %.0e", eps), Counts: counts})
	}
	return res, nil
}

// RunPeriodAblation compares the Figure 3 period model against the
// Figure 2 flat-hazard variant over all sites (DESIGN.md ablation 3).
func RunPeriodAblation(ctx context.Context, seed int64) (*AblationResult, error) {
	res := &AblationResult{Name: "record-period model pi (Figure 3 vs Figure 2)"}
	for _, period := range []bool{true, false} {
		opts := core.DefaultOptions(core.Probabilistic)
		opts.PHMMParams.PeriodModel = period
		counts, err := runAll(ctx, seed, opts)
		if err != nil {
			return nil, err
		}
		label := "with period model (Fig. 3)"
		if !period {
			label = "flat hazard (Fig. 2)"
		}
		res.Rows = append(res.Rows, AblationRow{Label: label, Counts: counts})
	}
	return res, nil
}

// RunTemplateAblation compares template-driven table slots against the
// whole-page fallback on every site (DESIGN.md ablation 4: the paper
// used the entire page when template finding failed and observed
// precision loss).
func RunTemplateAblation(ctx context.Context, seed int64) (*AblationResult, error) {
	res := &AblationResult{Name: "page template vs whole-page fallback (probabilistic)"}
	for _, force := range []bool{false, true} {
		opts := core.DefaultOptions(core.Probabilistic)
		opts.ForceWholePage = force
		counts, err := runAll(ctx, seed, opts)
		if err != nil {
			return nil, err
		}
		label := "template finding enabled"
		if force {
			label = "entire page used"
		}
		res.Rows = append(res.Rows, AblationRow{Label: label, Counts: counts})
	}
	return res, nil
}

// RunRelaxationAblation measures the CSP relaxation ladder's
// contribution on the dirty sites (DESIGN.md ablation 5).
func RunRelaxationAblation(ctx context.Context, seed int64) (*AblationResult, error) {
	res := &AblationResult{Name: "CSP relaxation ladder (dirty sites)"}
	for _, noRelax := range []bool{false, true} {
		opts := core.DefaultOptions(core.CSP)
		opts.CSPParams.NoRelax = noRelax
		counts, err := runAll(ctx, seed, opts, dirtySites...)
		if err != nil {
			return nil, err
		}
		label := "with relaxation ladder"
		if noRelax {
			label = "strict only (fail on UNSAT)"
		}
		res.Rows = append(res.Rows, AblationRow{Label: label, Counts: counts})
	}
	return res, nil
}

// RunCutAblation compares lazy consecutiveness repair against the
// static-only encoding (DESIGN.md ablation 1).
func RunCutAblation(ctx context.Context, seed int64) (*AblationResult, error) {
	res := &AblationResult{Name: "consecutiveness: lazy repair cuts vs static blocks only"}
	for _, disable := range []bool{false, true} {
		opts := core.DefaultOptions(core.CSP)
		if disable {
			opts.CSPParams.MaxCutRounds = -1
		}
		counts, err := runAll(ctx, seed, opts)
		if err != nil {
			return nil, err
		}
		label := "lazy repair enabled"
		if disable {
			label = "static blocks only"
		}
		res.Rows = append(res.Rows, AblationRow{Label: label, Counts: counts})
	}
	return res, nil
}

// RunEnumerationAblation measures the §6.3 future-work heuristic —
// stripping enumerated entries from the skeleton — on the numbered
// sites whose templates the paper could not use.
func RunEnumerationAblation(ctx context.Context, seed int64) (*AblationResult, error) {
	res := &AblationResult{Name: "enumerated-entry heuristic (numbered sites, probabilistic)"}
	numbered := []string{"amazon", "bnbooks", "minnesota"}
	for _, strip := range []bool{false, true} {
		opts := core.DefaultOptions(core.Probabilistic)
		opts.StripEnumeration = strip
		counts, err := runAll(ctx, seed, opts, numbered...)
		if err != nil {
			return nil, err
		}
		label := "paper behaviour (whole-page fallback)"
		if strip {
			label = "strip enumeration from skeleton"
		}
		res.Rows = append(res.Rows, AblationRow{Label: label, Counts: counts})
	}
	return res, nil
}

// RunNumberingAblation contrasts the three resolutions of the
// numbered-entry pathology on a BN-style site: (i) restarting numbers
// with the paper's whole-page fallback, (ii) restarting numbers with
// the §6.3 enumeration-stripping heuristic, and (iii) §6.3's other
// observation — pages sampled by following "Next" carry *different*
// entry numbers, so the template never breaks in the first place.
func RunNumberingAblation(ctx context.Context, seed int64) (*AblationResult, error) {
	res := &AblationResult{Name: "numbered entries: fallback vs stripping vs Next-page numbering"}
	base, err := sitegen.ProfileBySlug("bnbooks")
	if err != nil {
		return nil, err
	}
	type variant struct {
		label      string
		continuous bool
		strip      bool
	}
	for _, v := range []variant{
		{"restarting numbers, whole-page fallback", false, false},
		{"restarting numbers, strip enumeration", false, true},
		{"continuous numbers (Next-page sampling)", true, false},
	} {
		profile := base
		profile.ContinuousNumbering = v.continuous
		site := sitegen.Generate(profile, seed)
		opts := core.DefaultOptions(core.Probabilistic)
		opts.StripEnumeration = v.strip
		var counts eval.Counts
		wholePages := 0
		for pageIdx := range site.Lists {
			seg, err := core.SegmentContext(ctx, BuildInput(site, pageIdx), opts)
			if err != nil {
				return nil, err
			}
			if seg.UsedWholePage {
				wholePages++
			}
			counts = counts.Add(eval.Score(seg, site.Lists[pageIdx].Truth))
		}
		res.Rows = append(res.Rows, AblationRow{
			Label:  fmt.Sprintf("%s (whole-page on %d/2)", v.label, wholePages),
			Counts: counts,
		})
	}
	return res, nil
}

// RunMethodComparison scores the two paper methods and the §7 combined
// method over the full twelve-site study.
func RunMethodComparison(ctx context.Context, seed int64) (*AblationResult, error) {
	res := &AblationResult{Name: "method comparison over all 24 pages (incl. §7 combined)"}
	for _, m := range []core.Method{core.CSP, core.Probabilistic, core.Combined} {
		counts, err := runAll(ctx, seed, core.DefaultOptions(m))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{Label: m.String(), Counts: counts})
	}
	return res, nil
}

// RunAllAblations executes every ablation.
func RunAllAblations(ctx context.Context, seed int64) ([]*AblationResult, error) {
	type runner func(context.Context, int64) (*AblationResult, error)
	var out []*AblationResult
	for _, run := range []runner{RunEpsilonAblation, RunPeriodAblation, RunTemplateAblation, RunRelaxationAblation, RunCutAblation, RunEnumerationAblation, RunNumberingAblation, RunMethodComparison} {
		r, err := run(ctx, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunSeedSweep re-runs Table 4 over several generator seeds and reports
// the aggregate per seed, exposing the variance of the synthetic-data
// substitution.
func RunSeedSweep(ctx context.Context, seeds []int64) (*AblationResult, *AblationResult, error) {
	prob := &AblationResult{Name: "Table 4 totals across generator seeds (probabilistic)"}
	cspRes := &AblationResult{Name: "Table 4 totals across generator seeds (CSP)"}
	for _, seed := range seeds {
		t4, err := RunTable4(ctx, seed)
		if err != nil {
			return nil, nil, err
		}
		prob.Rows = append(prob.Rows, AblationRow{Label: fmt.Sprintf("seed %d", seed), Counts: t4.ProbTotal})
		cspRes.Rows = append(cspRes.Rows, AblationRow{Label: fmt.Sprintf("seed %d", seed), Counts: t4.CSPTotal})
	}
	return prob, cspRes, nil
}
