// Package experiments reproduces every table and figure of the paper's
// evaluation (§6): the Superpages worked example of Tables 1–3, the
// twelve-site segmentation study of Table 4 (with the clean-subset
// metrics of §6.3), and the ablations DESIGN.md calls out. The same
// entry points back cmd/experiments and the benchmark suite.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"tableseg/internal/core"
	"tableseg/internal/csp"
	"tableseg/internal/engine"
	"tableseg/internal/eval"
	"tableseg/internal/sitegen"
)

// DefaultSeed is the fixed generator seed used for the headline tables,
// so every run of the harness reproduces the same numbers.
const DefaultSeed = 42

// BuildInput assembles a core.Input for one page of a generated site.
func BuildInput(site *sitegen.Site, pageIdx int) core.Input {
	in := core.Input{Target: pageIdx}
	for li := range site.Lists {
		in.ListPages = append(in.ListPages, core.Page{
			Name: fmt.Sprintf("%s-list%d", site.Profile.Slug, li),
			HTML: site.Lists[li].HTML,
		})
	}
	for di, d := range site.Lists[pageIdx].Details {
		in.DetailPages = append(in.DetailPages, core.Page{
			Name: fmt.Sprintf("%s-detail%d", site.Profile.Slug, di),
			HTML: d,
		})
	}
	return in
}

// PageRow is one row of Table 4: one list page scored under both
// methods.
type PageRow struct {
	Site string
	Page int
	Prob eval.Counts
	CSP  eval.Counts
	// Notes uses the paper's letters: a = page template problem,
	// b = entire page used, c = no strict CSP solution, d = constraints
	// relaxed.
	Notes         string
	UsedWholePage bool
	CSPStatus     csp.Status
}

// Table4Result aggregates the full study.
type Table4Result struct {
	Rows      []PageRow
	ProbTotal eval.Counts
	CSPTotal  eval.Counts
	// Clean subset: the pages on which the strict CSP succeeded
	// (§6.3 excludes the pages where the CSP could find no solution).
	CleanProb, CleanCSP eval.Counts
	CleanPages          int
}

// RunTable4 reproduces Table 4 for a generator seed. The 48 runs
// (24 list pages, each scored under both methods) go through the batch
// engine: the two runs of a page share one cached site preparation, and
// the pool keeps every core busy. Each run is pure for a fixed seed, so
// the aggregated result is deterministic regardless of scheduling.
func RunTable4(ctx context.Context, seed int64) (*Table4Result, error) {
	type job struct {
		site    *sitegen.Site
		pageIdx int
	}
	var jobs []job
	for _, profile := range sitegen.Profiles() {
		site := sitegen.Generate(profile, seed)
		for pageIdx := range site.Lists {
			jobs = append(jobs, job{site, pageIdx})
		}
	}

	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.Probabilistic)})
	if err != nil {
		return nil, err
	}
	probOpts := core.DefaultOptions(core.Probabilistic)
	cspOpts := core.DefaultOptions(core.CSP)
	tasks := make([]engine.Task, 2*len(jobs))
	for ji, j := range jobs {
		in := BuildInput(j.site, j.pageIdx)
		id := fmt.Sprintf("%s-%d", j.site.Profile.Slug, j.pageIdx)
		tasks[2*ji] = engine.Task{ID: id + "-prob", Input: in, Options: &probOpts}
		tasks[2*ji+1] = engine.Task{ID: id + "-csp", Input: in, Options: &cspOpts}
	}
	results := eng.RunTasks(ctx, tasks)

	res := &Table4Result{}
	for ji, j := range jobs {
		prob, cspRes := results[2*ji], results[2*ji+1]
		if prob.Err != nil {
			return nil, fmt.Errorf("%s page %d: %w", j.site.Profile.Slug, j.pageIdx, prob.Err)
		}
		if cspRes.Err != nil {
			return nil, fmt.Errorf("%s page %d: %w", j.site.Profile.Slug, j.pageIdx, cspRes.Err)
		}
		probSeg, cspSeg := prob.Seg, cspRes.Seg
		truth := j.site.Lists[j.pageIdx].Truth
		row := PageRow{
			Site:          j.site.Profile.Name,
			Page:          j.pageIdx + 1,
			Prob:          eval.Score(probSeg, truth),
			CSP:           eval.Score(cspSeg, truth),
			UsedWholePage: probSeg.UsedWholePage,
			CSPStatus:     cspSeg.CSPStatus,
		}
		var notes []string
		if probSeg.UsedWholePage || cspSeg.UsedWholePage {
			notes = append(notes, "a", "b")
		}
		switch cspSeg.CSPStatus {
		case csp.SolvedRelaxed:
			notes = append(notes, "c", "d")
		case csp.Failed:
			notes = append(notes, "c")
		}
		row.Notes = strings.Join(notes, ",")

		res.Rows = append(res.Rows, row)
		res.ProbTotal = res.ProbTotal.Add(row.Prob)
		res.CSPTotal = res.CSPTotal.Add(row.CSP)
		if row.CSPStatus == csp.Solved {
			res.CleanProb = res.CleanProb.Add(row.Prob)
			res.CleanCSP = res.CleanCSP.Add(row.CSP)
			res.CleanPages++
		}
	}
	return res, nil
}

// RenderTable4 formats the study in the layout of the paper's Table 4.
func RenderTable4(r *Table4Result) string {
	var b strings.Builder
	b.WriteString("Table 4: automatic record segmentation, probabilistic vs CSP\n\n")
	fmt.Fprintf(&b, "%-28s | %-22s | %-22s | %s\n", "", "Probabilistic", "CSP", "")
	fmt.Fprintf(&b, "%-28s | %4s %4s %4s %4s | %4s %4s %4s %4s | %s\n",
		"Site (page)", "Cor", "InC", "FN", "FP", "Cor", "InC", "FN", "FP", "notes")
	b.WriteString(strings.Repeat("-", 92) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s | %4d %4d %4d %4d | %4d %4d %4d %4d | %s\n",
			fmt.Sprintf("%s (%d)", row.Site, row.Page),
			row.Prob.Cor, row.Prob.InCor, row.Prob.FN, row.Prob.FP,
			row.CSP.Cor, row.CSP.InCor, row.CSP.FN, row.CSP.FP,
			row.Notes)
	}
	b.WriteString(strings.Repeat("-", 92) + "\n")
	fmt.Fprintf(&b, "%-28s | P=%.2f R=%.2f F=%.2f | P=%.2f R=%.2f F=%.2f |\n",
		"All 24 pages",
		r.ProbTotal.Precision(), r.ProbTotal.Recall(), r.ProbTotal.F(),
		r.CSPTotal.Precision(), r.CSPTotal.Recall(), r.CSPTotal.F())
	fmt.Fprintf(&b, "%-28s | P=%.2f R=%.2f F=%.2f | P=%.2f R=%.2f F=%.2f |\n",
		fmt.Sprintf("Clean subset (%d pages)", r.CleanPages),
		r.CleanProb.Precision(), r.CleanProb.Recall(), r.CleanProb.F(),
		r.CleanCSP.Precision(), r.CleanCSP.Recall(), r.CleanCSP.F())
	b.WriteString("\nPaper reference: probabilistic P=0.74 R=0.99 F=0.85; CSP P=0.85 R=0.84 F=0.84.\n")
	b.WriteString("Clean 17-page subset: CSP P=0.99 R=0.92 F=0.95; probabilistic P=0.78 R=1.0 F=0.88.\n")
	b.WriteString("Notes: a page-template problem, b entire page used, c no strict CSP solution, d constraints relaxed.\n")
	return b.String()
}
