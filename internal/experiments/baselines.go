package experiments

import (
	"context"
	"fmt"
	"strings"

	"tableseg/internal/baseline"
	"tableseg/internal/core"
	"tableseg/internal/eval"
	"tableseg/internal/extract"
	"tableseg/internal/pagetemplate"
	"tableseg/internal/sitegen"
	"tableseg/internal/token"
)

// BaselineRow summarizes one layout baseline on one list page.
type BaselineRow struct {
	Site   string
	Page   int
	Failed bool
	Reason string
	Counts eval.Counts
}

// BaselineResult aggregates a baseline over the full study.
type BaselineResult struct {
	Name   string
	Rows   []BaselineRow
	Total  eval.Counts
	Failed int
}

// RunBaselines runs both layout-only baselines over the twelve sites,
// reproducing the §6.3 argument: union-free inference fails wherever a
// field has alternate formatting, while the content-based methods of
// Table 4 are unaffected.
func RunBaselines(ctx context.Context, seed int64) ([]*BaselineResult, error) {
	var out []*BaselineResult
	for _, name := range []string{baseline.NameUnionFree, baseline.NameTagRepetition} {
		res := &BaselineResult{Name: name}
		for _, profile := range sitegen.Profiles() {
			site := sitegen.Generate(profile, seed)
			for pageIdx, lp := range site.Lists {
				row := BaselineRow{Site: profile.Name, Page: pageIdx + 1}
				toks := token.Tokenize(lp.HTML)
				start, end := tableRange(site, pageIdx, toks)
				rows, err := baseline.Run(name, toks, start, end)
				if err != nil {
					row.Failed = true
					row.Reason = err.Error()
					res.Failed++
					// An extraction failure leaves every record
					// unsegmented.
					row.Counts = eval.Counts{FN: len(lp.Truth)}
				} else {
					row.Counts = eval.Score(rowsToSegmentation(rows), lp.Truth)
				}
				res.Rows = append(res.Rows, row)
				res.Total = res.Total.Add(row.Counts)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// rowsToSegmentation converts baseline rows into a core.Segmentation so
// the shared scorer applies. Rows with no extracts are dropped.
func rowsToSegmentation(rows [][]token.Token) *core.Segmentation {
	seg := &core.Segmentation{}
	for ri, row := range rows {
		ex := extract.Split(row, 0, len(row))
		if len(ex) == 0 {
			continue
		}
		rec := core.Record{Index: ri}
		rec.Extracts = append(rec.Extracts, ex...)
		for range ex {
			rec.Columns = append(rec.Columns, -1)
			rec.Analyzed = append(rec.Analyzed, true)
			rec.Confidence = append(rec.Confidence, -1)
		}
		seg.Records = append(seg.Records, rec)
		seg.TotalExtracts += len(ex)
	}
	seg.Analyzed = seg.TotalExtracts
	return seg
}

// tableRange locates the table slot for a baseline using the same
// template machinery as the main pipeline, falling back to the whole
// page.
func tableRange(site *sitegen.Site, pageIdx int, toks []token.Token) (int, int) {
	pages := make([][]token.Token, len(site.Lists))
	for i := range site.Lists {
		if i == pageIdx {
			pages[i] = toks
		} else {
			pages[i] = token.Tokenize(site.Lists[i].HTML)
		}
	}
	tpl := pagetemplate.Induce(pages)
	slots := tpl.SlotsOn(pageIdx, len(toks))
	slot, quality := pagetemplate.TableSlot(slots, toks)
	if quality < 0.5 || tpl.TextSkeletonLen() < 6 {
		return 0, len(toks)
	}
	return slot.Start, slot.End
}

// RenderBaselines formats the comparison.
func RenderBaselines(results []*BaselineResult) string {
	var b strings.Builder
	b.WriteString("Layout-only baselines (cf. §6.3 RoadRunner discussion)\n\n")
	for _, res := range results {
		fmt.Fprintf(&b, "%s — %d/%d pages failed\n", res.Name, res.Failed, len(res.Rows))
		for _, row := range res.Rows {
			status := row.Counts.String()
			if row.Failed {
				status = "FAILED: " + row.Reason
			}
			fmt.Fprintf(&b, "  %-28s %s\n", fmt.Sprintf("%s (%d)", row.Site, row.Page), status)
		}
		fmt.Fprintf(&b, "  TOTAL %s\n\n", res.Total)
	}
	return b.String()
}
