package wrapper

import (
	"context"
	"errors"
	"strings"
	"testing"

	"tableseg/internal/core"
	"tableseg/internal/eval"
	"tableseg/internal/extract"
	"tableseg/internal/sitegen"
	"tableseg/internal/token"
)

func segmentPage(t *testing.T, site *sitegen.Site, pageIdx int) (*core.Segmentation, []token.Token) {
	t.Helper()
	in := core.Input{Target: pageIdx}
	for _, l := range site.Lists {
		in.ListPages = append(in.ListPages, core.Page{HTML: l.HTML})
	}
	for _, d := range site.Lists[pageIdx].Details {
		in.DetailPages = append(in.DetailPages, core.Page{HTML: d})
	}
	seg, err := core.SegmentContext(context.Background(), in, core.DefaultOptions(core.Probabilistic))
	if err != nil {
		t.Fatal(err)
	}
	return seg, token.Tokenize(site.Lists[pageIdx].HTML)
}

func TestLearnAndTransferGrid(t *testing.T) {
	site, err := sitegen.GenerateBySlug("butler", 42)
	if err != nil {
		t.Fatal(err)
	}
	seg0, page0 := segmentPage(t, site, 0)
	w, err := Learn(page0, seg0)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Signature) == 0 {
		t.Fatal("empty signature")
	}

	// Apply to the second list page — no detail pages involved.
	page1 := token.Tokenize(site.Lists[1].HTML)
	got := w.Extract(page1)
	counts := eval.Score(got, site.Lists[1].Truth)
	if counts.Cor != len(site.Lists[1].Truth) {
		t.Errorf("wrapper transfer: %v (want all %d correct)", counts, len(site.Lists[1].Truth))
	}
}

func TestLearnAndTransferFreeForm(t *testing.T) {
	site, err := sitegen.GenerateBySlug("canada411", 42)
	if err != nil {
		t.Fatal(err)
	}
	seg0, page0 := segmentPage(t, site, 0)
	w, err := Learn(page0, seg0)
	if err != nil {
		t.Fatal(err)
	}
	page1 := token.Tokenize(site.Lists[1].HTML)
	counts := eval.Score(w.Extract(page1), site.Lists[1].Truth)
	if counts.Recall() < 0.9 {
		t.Errorf("free-form wrapper recall %.2f: %v", counts.Recall(), counts)
	}
}

func TestLearnRequiresRecords(t *testing.T) {
	_, err := Learn(nil, &core.Segmentation{})
	if err == nil {
		t.Error("learning from zero records must fail")
	}
}

func TestLearnNoSignature(t *testing.T) {
	// Two records whose first extracts sit at word tokens with no
	// preceding separator tags: no signature can be learned.
	page := token.Tokenize(`alpha one beta two`)
	segs := &core.Segmentation{}
	for _, start := range []int{0, 2} {
		rec := core.Record{}
		rec.Extracts = append(rec.Extracts, extract.Extract{TokenStart: start, Words: []string{page[start].Text}})
		segs.Records = append(segs.Records, rec)
	}
	_, err := Learn(page, segs)
	if !errors.Is(err, ErrNoSignature) {
		t.Errorf("err = %v, want ErrNoSignature", err)
	}
}

func TestMajoritySuffix(t *testing.T) {
	got := majoritySuffix([][]string{
		{"</tr>", "<tr>", "<td>"},
		{"<tr>", "<td>"},
		{"<hr>", "<tr>", "<td>"},
	}, 1.0)
	if strings.Join(got, " ") != "<tr> <td>" {
		t.Errorf("unanimous suffix = %v", got)
	}
	// One outlier must not block a 70%-support signature.
	got = majoritySuffix([][]string{
		{"<div>", "<b>"},
		{"<div>", "<b>"},
		{"<div>", "<b>"},
		{"<i>"},
	}, 0.7)
	if strings.Join(got, " ") != "<div> <b>" {
		t.Errorf("majority suffix = %v", got)
	}
	if got := majoritySuffix([][]string{{"<a>"}, {"<b>"}}, 0.7); got != nil {
		t.Errorf("disjoint suffix = %v", got)
	}
	if got := majoritySuffix(nil, 0.7); got != nil {
		t.Errorf("empty input = %v", got)
	}
}

func TestJoinSplitTokens(t *testing.T) {
	toks := []string{"<tr>", "<td>", "<a>"}
	if got := splitTokens(joinTokens(toks)); strings.Join(got, " ") != strings.Join(toks, " ") {
		t.Errorf("round trip = %v", got)
	}
}

func TestPrecedingSeparators(t *testing.T) {
	page := token.Tokenize(`word <tr><td>value</td></tr>`)
	// Find "value".
	pos := -1
	for i, tk := range page {
		if tk.Text == "value" {
			pos = i
		}
	}
	got := precedingSeparators(page, pos)
	if strings.Join(got, " ") != "<tr> <td>" {
		t.Errorf("separators = %v", got)
	}
	if got := precedingSeparators(page, 0); len(got) != 0 {
		t.Errorf("page start separators = %v", got)
	}
}
