package wrapper

import (
	"strings"
	"testing"

	"tableseg/internal/sitegen"
	"tableseg/internal/token"
)

func TestVerifyHealthyTransfer(t *testing.T) {
	site, err := sitegen.GenerateBySlug("butler", 42)
	if err != nil {
		t.Fatal(err)
	}
	seg0, page0 := segmentPage(t, site, 0)
	w, err := Learn(page0, seg0)
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	for _, rec := range seg0.Records {
		counts = append(counts, len(rec.Extracts))
	}
	w.Calibrate(counts)

	page1 := token.Tokenize(site.Lists[1].HTML)
	got := w.Extract(page1)
	var counts1 []int
	for _, rec := range got.Records {
		counts1 = append(counts1, len(rec.Extracts))
	}
	rep := w.Verify(counts1)
	if !rep.OK {
		t.Errorf("healthy transfer flagged: %s", rep)
	}
}

func TestVerifyFlagsSiteRedesign(t *testing.T) {
	site, err := sitegen.GenerateBySlug("butler", 42)
	if err != nil {
		t.Fatal(err)
	}
	seg0, page0 := segmentPage(t, site, 0)
	w, err := Learn(page0, seg0)
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	for _, rec := range seg0.Records {
		counts = append(counts, len(rec.Extracts))
	}
	w.Calibrate(counts)

	// The site redesigns: rows become <div> blocks, the old <tr>-based
	// signature matches nothing.
	redesigned := strings.ReplaceAll(site.Lists[1].HTML, "<tr>", "<div>")
	redesigned = strings.ReplaceAll(redesigned, "</tr>", "</div>")
	got := w.Extract(token.Tokenize(redesigned))
	var counts1 []int
	for _, rec := range got.Records {
		counts1 = append(counts1, len(rec.Extracts))
	}
	rep := w.Verify(counts1)
	if rep.OK {
		t.Errorf("redesign not flagged (extracted %d records)", len(got.Records))
	}
	if rep.String() == "wrapper healthy" {
		t.Error("report string inconsistent")
	}
}

func TestVerifyUncalibrated(t *testing.T) {
	w := &Wrapper{Signature: []string{"<td>"}}
	if rep := w.Verify([]int{3, 3, 3}); !rep.OK {
		t.Errorf("uncalibrated non-empty extraction flagged: %s", rep)
	}
	if rep := w.Verify(nil); rep.OK {
		t.Error("empty extraction not flagged")
	}
}

func TestVerifyFlagsExplodedRecords(t *testing.T) {
	w := &Wrapper{Signature: []string{"<td>"}}
	w.Calibrate([]int{4, 4, 4, 5})
	rep := w.Verify([]int{4, 40, 4})
	if rep.OK {
		t.Error("exploded record not flagged")
	}
}

func TestProfileOf(t *testing.T) {
	p := profileOf([]int{5, 3, 4})
	if p.Records != 3 || p.MedianExtracts != 4 || p.MinExtracts != 3 || p.MaxExtracts != 5 {
		t.Errorf("profile = %+v", p)
	}
	if z := profileOf(nil); z.Records != 0 {
		t.Errorf("empty profile = %+v", z)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	w := &Wrapper{Signature: []string{"<tr>", "<td>", "<a>"}}
	w.Calibrate([]int{5, 5, 4})
	var buf strings.Builder
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got.Signature, "") != strings.Join(w.Signature, "") {
		t.Errorf("signature round trip: %v", got.Signature)
	}
	if got.Healthy != w.Healthy {
		t.Errorf("profile round trip: %+v vs %+v", got.Healthy, w.Healthy)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"version": 99, "signature": ["<a>"]}`,
		`{"version": 1, "signature": []}`,
	}
	for _, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("Load(%q) succeeded", in)
		}
	}
}
