package wrapper

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// wireFormat is the persisted wrapper representation. A version field
// guards against loading wrappers written by incompatible builds — a
// wrapper is a long-lived asset that outlives the process that learned
// it.
type wireFormat struct {
	Version   int      `json:"version"`
	Signature []string `json:"signature"`
	Healthy   Profile  `json:"healthy,omitempty"`
}

// wireVersion is the current serialization version.
const wireVersion = 1

// ErrBadWrapperFile is wrapped into Load errors for malformed or
// incompatible wrapper files.
var ErrBadWrapperFile = errors.New("wrapper: bad wrapper file")

// Save writes the wrapper as JSON.
func (w *Wrapper) Save(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(wireFormat{
		Version:   wireVersion,
		Signature: w.Signature,
		Healthy:   w.Healthy,
	})
}

// Load reads a wrapper previously written by Save.
func Load(in io.Reader) (*Wrapper, error) {
	var wf wireFormat
	dec := json.NewDecoder(in)
	if err := dec.Decode(&wf); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadWrapperFile, err)
	}
	if wf.Version != wireVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadWrapperFile, wf.Version, wireVersion)
	}
	if len(wf.Signature) == 0 {
		return nil, fmt.Errorf("%w: empty signature", ErrBadWrapperFile)
	}
	return &Wrapper{Signature: wf.Signature, Healthy: wf.Healthy}, nil
}
