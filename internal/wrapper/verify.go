package wrapper

import (
	"fmt"
	"sort"
)

// The paper's group frames wrappers as assets that decay: "Maintaining
// wrappers so that they continue to extract information correctly as
// Web sites change, requires significant effort" (§1, citing their
// wrapper-maintenance work). This file implements the verification half
// of that loop: a learned wrapper remembers what healthy extractions
// looked like at learning time and can check later extractions against
// that profile, signalling when the site has drifted and the
// unsupervised segmentation should be re-run to relearn the wrapper.

// Profile captures the shape of a healthy extraction.
type Profile struct {
	// Records is the record count seen at learning time.
	Records int
	// MedianExtracts is the median number of extracts per record.
	MedianExtracts int
	// MinExtracts/MaxExtracts bound the per-record extract counts.
	MinExtracts, MaxExtracts int
}

// VerifyReport is the outcome of a drift check.
type VerifyReport struct {
	OK      bool
	Reasons []string
	// Profile of the checked extraction.
	Observed Profile
}

func (r *VerifyReport) String() string {
	if r.OK {
		return "wrapper healthy"
	}
	return fmt.Sprintf("wrapper drift: %v", r.Reasons)
}

// profileOf summarizes per-record extract counts.
func profileOf(counts []int) Profile {
	p := Profile{Records: len(counts)}
	if len(counts) == 0 {
		return p
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	p.MedianExtracts = sorted[len(sorted)/2]
	p.MinExtracts = sorted[0]
	p.MaxExtracts = sorted[len(sorted)-1]
	return p
}

// Calibrate records the healthy-extraction profile from the learning
// page's segmentation (call after Learn, with the same segmentation).
func (w *Wrapper) Calibrate(recordExtractCounts []int) {
	w.Healthy = profileOf(recordExtractCounts)
}

// Verify checks a later extraction against the calibrated profile. It
// flags drift when the wrapper found no records, when the typical
// record shape changed beyond tolerance, or when record sizes exploded
// (the signature now matches non-record content). An uncalibrated
// wrapper only checks for emptiness.
func (w *Wrapper) Verify(recordExtractCounts []int) *VerifyReport {
	rep := &VerifyReport{OK: true, Observed: profileOf(recordExtractCounts)}
	fail := func(format string, args ...any) {
		rep.OK = false
		rep.Reasons = append(rep.Reasons, fmt.Sprintf(format, args...))
	}
	if rep.Observed.Records == 0 {
		fail("no records extracted")
		return rep
	}
	if w.Healthy.Records == 0 {
		return rep // uncalibrated
	}
	h := w.Healthy
	if rep.Observed.MedianExtracts > 2*h.MedianExtracts || rep.Observed.MedianExtracts*2 < h.MedianExtracts {
		fail("median record size changed %d -> %d", h.MedianExtracts, rep.Observed.MedianExtracts)
	}
	if rep.Observed.MaxExtracts > 4*maxInt(h.MaxExtracts, 1) {
		fail("a record grew to %d extracts (healthy max %d): signature likely matching non-records", rep.Observed.MaxExtracts, h.MaxExtracts)
	}
	return rep
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
