// Package wrapper turns one automatically segmented list page into a
// reusable extraction wrapper for the site. The paper situates itself in
// the web-wrapper literature (§1): once the unsupervised segmentation
// has labeled a sample page, the layout context of its record
// boundaries is exactly the training signal a conventional wrapper
// needs. Learning here recovers the record-start separator signature
// (the run of tags immediately preceding each record's first extract)
// and applies it to new pages from the same site — pages for which no
// detail pages need to be fetched at all.
package wrapper

import (
	"errors"
	"fmt"

	"tableseg/internal/core"
	"tableseg/internal/extract"
	"tableseg/internal/token"
)

// ErrNoSignature is returned when the segmented records share no common
// record-start separator context.
var ErrNoSignature = errors.New("wrapper: records share no record-start tag signature")

// maxSignature caps the learned signature length.
const maxSignature = 6

// Wrapper is a learned record-start signature.
type Wrapper struct {
	// Signature is the separator-token sequence that precedes every
	// record's first extract, innermost token last.
	Signature []string
	// Healthy is the extraction profile captured by Calibrate; used by
	// Verify for drift detection. Zero value = uncalibrated.
	Healthy Profile
}

func (w *Wrapper) String() string {
	return fmt.Sprintf("Wrapper%v", w.Signature)
}

// minSupport is the fraction of records that must share the learned
// signature. Unsupervised segmentations occasionally absorb sponsored
// junk into a record's head, so requiring unanimity would let one
// outlier record block learning.
const minSupport = 0.7

// Learn derives a wrapper from a page and its segmentation. The
// signature is the longest separator-run suffix (up to maxSignature
// tokens) shared by at least minSupport of the records' record-start
// contexts.
func Learn(page []token.Token, seg *core.Segmentation) (*Wrapper, error) {
	if len(seg.Records) < 2 {
		return nil, errors.New("wrapper: need at least two segmented records to learn")
	}
	var runs [][]string
	for _, rec := range seg.Records {
		if len(rec.Extracts) == 0 {
			continue
		}
		runs = append(runs, precedingSeparators(page, rec.Extracts[0].TokenStart))
	}
	sig := majoritySuffix(runs, minSupport)
	if len(sig) == 0 {
		return nil, ErrNoSignature
	}
	return &Wrapper{Signature: sig}, nil
}

// majoritySuffix returns the suffix with the highest record support (at
// least the given fraction), preferring longer suffixes at equal
// support and breaking remaining ties lexicographically. Support comes
// first because a longer suffix that excludes a page's first record
// (whose preceding context includes the table header) silently loses
// that record on every future page.
func majoritySuffix(runs [][]string, support float64) []string {
	need := int(float64(len(runs))*support + 0.999999)
	if need < 2 {
		need = 2
	}
	best, bestN, bestLen := "", 0, 0
	for length := 1; length <= maxSignature; length++ {
		counts := map[string]int{}
		for _, r := range runs {
			if len(r) < length {
				continue
			}
			counts[joinTokens(r[len(r)-length:])]++
		}
		for sig, n := range counts {
			if n < need {
				continue
			}
			if n > bestN || (n == bestN && length > bestLen) ||
				(n == bestN && length == bestLen && sig < best) {
				best, bestN, bestLen = sig, n, length
			}
		}
	}
	if bestN == 0 {
		return nil
	}
	return splitTokens(best)
}

// joinTokens/splitTokens encode a token sequence as a map key. Token
// texts never contain '\x00'.
func joinTokens(toks []string) string {
	out := ""
	for i, t := range toks {
		if i > 0 {
			out += "\x00"
		}
		out += t
	}
	return out
}

func splitTokens(key string) []string {
	var out []string
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return append(out, key[start:])
}

// precedingSeparators collects the separator tokens immediately before
// token index start, in document order, capped at maxSignature.
func precedingSeparators(page []token.Token, start int) []string {
	var rev []string
	for i := start - 1; i >= 0 && len(rev) < maxSignature; i-- {
		if !extract.IsSeparator(page[i]) {
			break
		}
		rev = append(rev, page[i].Text)
	}
	// Reverse into document order.
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

// Extract applies the wrapper to a new page from the same site: every
// match of the signature that is directly followed by visible text
// starts a record; each record runs until the next match. The result is
// a Segmentation scorable with the shared evaluator (no detail pages
// involved).
func (w *Wrapper) Extract(page []token.Token) *core.Segmentation {
	var starts []int
	for i := 0; i+len(w.Signature) <= len(page); i++ {
		if !matchAt(page, i, w.Signature) {
			continue
		}
		next := i + len(w.Signature)
		if next < len(page) && !extract.IsSeparator(page[next]) {
			starts = append(starts, next)
		}
	}
	seg := &core.Segmentation{}
	for si, start := range starts {
		end := len(page)
		if si+1 < len(starts) {
			// The next record begins before its signature.
			end = starts[si+1] - len(w.Signature)
		}
		ex := extract.Split(page, start, end)
		if len(ex) == 0 {
			continue
		}
		rec := core.Record{Index: si}
		rec.Extracts = append(rec.Extracts, ex...)
		for range ex {
			rec.Columns = append(rec.Columns, -1)
			rec.Analyzed = append(rec.Analyzed, true)
		}
		seg.Records = append(seg.Records, rec)
		seg.TotalExtracts += len(ex)
	}
	seg.Analyzed = seg.TotalExtracts
	return seg
}

func matchAt(page []token.Token, i int, sig []string) bool {
	for k, s := range sig {
		if page[i+k].Text != s {
			return false
		}
	}
	return true
}
