package vertical

import (
	"testing"
	"testing/quick"
)

func TestIsVerticalSignatures(t *testing.T) {
	// Horizontal: record-contiguous candidates.
	horizontal := [][]int{{0}, {0}, {0}, {1}, {1}, {1}, {2}, {2}, {2}}
	if IsVertical(horizontal) {
		t.Error("horizontal stream judged vertical")
	}
	// Vertical: row-major over attributes (records 0,1,2 per row).
	verticalC := [][]int{{0}, {1}, {2}, {0}, {1}, {2}, {0}, {1}, {2}}
	if !IsVertical(verticalC) {
		t.Error("vertical stream judged horizontal")
	}
	if IsVertical(nil) {
		t.Error("empty stream judged vertical")
	}
}

func TestTransposeCleanStream(t *testing.T) {
	cands := [][]int{{0}, {1}, {2}, {0}, {1}, {2}}
	perm, ok := Transpose(cands, 3)
	if !ok {
		t.Fatal("transpose rejected a clean vertical stream")
	}
	want := []int{0, 3, 1, 4, 2, 5}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
	// After applying, candidates are record-contiguous.
	re := Apply(perm, cands)
	wantRe := [][]int{{0}, {0}, {1}, {1}, {2}, {2}}
	for i := range wantRe {
		if re[i][0] != wantRe[i][0] {
			t.Fatalf("reordered = %v", re)
		}
	}
}

func TestTransposeRejectsBadShapes(t *testing.T) {
	if _, ok := Transpose([][]int{{0}, {1}, {0}}, 2); ok {
		// 3 extracts, 2 records: not divisible.
		t.Error("accepted non-divisible stream")
	}
	if _, ok := Transpose(nil, 3); ok {
		t.Error("accepted empty stream")
	}
	if _, ok := Transpose([][]int{{0}, {1}}, 1); ok {
		t.Error("accepted single-record table")
	}
	// Evidence contradicts the stride hypothesis badly.
	contradict := [][]int{{1}, {0}, {1}, {0}}
	if _, ok := Transpose(contradict, 2); ok {
		t.Error("accepted stream contradicting the stride hypothesis")
	}
}

func TestTransposeToleratesAmbiguity(t *testing.T) {
	// Some extracts carry multi-record evidence (duplicate values);
	// the stride hypothesis still holds.
	cands := [][]int{{0, 1}, {1}, {0}, {0, 1}}
	perm, ok := Transpose(cands, 2)
	if !ok {
		t.Fatalf("rejected ambiguous but consistent stream")
	}
	if len(perm) != 4 {
		t.Fatalf("perm = %v", perm)
	}
}

func TestInvertProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%7) + 1
		k := 1
		for k < n {
			if n%k == 0 && k > 1 {
				break
			}
			k++
		}
		// Build any perm via Transpose on a synthetic clean stream.
		cands := make([][]int, n*3)
		for i := range cands {
			cands[i] = []int{i % n}
		}
		perm, ok := Transpose(cands, n)
		if !ok {
			return n <= 1
		}
		inv := Invert(perm)
		for orig, tr := range inv {
			if perm[tr] != orig {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestApplyGeneric(t *testing.T) {
	perm := []int{2, 0, 1}
	got := Apply(perm, []string{"a", "b", "c"})
	if got[0] != "c" || got[1] != "a" || got[2] != "b" {
		t.Errorf("Apply = %v", got)
	}
}
