// Package vertical handles vertically laid out tables. §3 restricts the
// paper's methods to horizontal tables ("the records are on separate
// rows") and notes that vertical layout — records in different columns,
// one attribute per row — exists but is rare. This package detects the
// vertical case from the same detail-page observations the segmenters
// use and computes the permutation that rewrites the extract stream
// into record-major (horizontal) order, after which the §4/§5 machinery
// applies unchanged.
//
// Detection exploits the defining signature of each layout: reading a
// horizontal table, adjacent extracts usually belong to the same record
// (their detail sets intersect); reading a vertical table, adjacent
// extracts belong to different records (their detail sets are almost
// always disjoint).
package vertical

import "sort"

// breakFraction returns the fraction of adjacent analyzed-extract pairs
// whose candidate sets are disjoint (both non-empty).
func breakFraction(candidates [][]int) float64 {
	pairs, breaks := 0, 0
	for i := 1; i < len(candidates); i++ {
		a, b := candidates[i-1], candidates[i]
		if len(a) == 0 || len(b) == 0 {
			continue
		}
		pairs++
		if !intersects(a, b) {
			breaks++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(breaks) / float64(pairs)
}

func intersects(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// DetectThreshold is the adjacent-disjointness fraction above which a
// table is judged vertical. A horizontal table with K records and n
// extracts has about K/n disjoint adjacencies; a vertical one has
// nearly (n-rows)/n.
const DetectThreshold = 0.6

// IsVertical reports whether the observations look like a vertical
// table.
func IsVertical(candidates [][]int) bool {
	return breakFraction(candidates) > DetectThreshold
}

// Transpose computes the permutation that rewrites a vertical extract
// stream into record-major order, assuming the common clean form: the
// stream is row-major with every row holding exactly one extract per
// record (rows of length K, n divisible by K). perm[k] gives the
// original index of the k-th extract in transposed order. ok is false
// when the stream does not fit that form or the reordering contradicts
// the detail-page evidence.
func Transpose(candidates [][]int, numRecords int) (perm []int, ok bool) {
	n := len(candidates)
	if numRecords <= 1 || n == 0 || n%numRecords != 0 {
		return nil, false
	}
	rows := n / numRecords
	perm = make([]int, 0, n)
	for j := 0; j < numRecords; j++ {
		for row := 0; row < rows; row++ {
			perm = append(perm, row*numRecords+j)
		}
	}
	// Verify against the evidence: in transposed order, the extracts
	// of column j must all admit record j.
	bad := 0
	total := 0
	for k, orig := range perm {
		j := k / rows
		if len(candidates[orig]) == 0 {
			continue
		}
		total++
		if !contains(candidates[orig], j) {
			bad++
		}
	}
	if total == 0 || float64(bad)/float64(total) > 0.2 {
		return nil, false
	}
	return perm, true
}

func contains(sorted []int, v int) bool {
	k := sort.SearchInts(sorted, v)
	return k < len(sorted) && sorted[k] == v
}

// Apply permutes a candidate matrix (or any per-extract slice index
// mapping) into transposed order.
func Apply[T any](perm []int, items []T) []T {
	out := make([]T, len(perm))
	for k, orig := range perm {
		out[k] = items[orig]
	}
	return out
}

// Invert returns the inverse permutation: inv[orig] = transposed index.
func Invert(perm []int) []int {
	inv := make([]int, len(perm))
	for k, orig := range perm {
		inv[orig] = k
	}
	return inv
}
